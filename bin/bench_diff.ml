(* bench_diff: compare two benchmark result files and gate regressions.

   Exit status: 0 when the new results are acceptable (only informational
   deltas), 1 when a deterministic counter changed or a wall-time median
   regressed beyond the threshold, 2 on usage or parse errors. *)

open Cmdliner
module Bench_result = Dstress_obs.Bench_result
module Bench_diff = Dstress_obs.Bench_diff

let read path =
  match Bench_result.read_file path with
  | Ok doc -> doc
  | Error msg ->
      Printf.eprintf "bench_diff: %s: %s\n" path msg;
      exit 2

let run old_path new_path threshold counters_only =
  if threshold <= 0.0 then begin
    Printf.eprintf "bench_diff: --threshold must be positive\n";
    exit 2
  end;
  let old_doc = read old_path and new_doc = read new_path in
  let report = Bench_diff.compare_docs ~threshold ~counters_only old_doc new_doc in
  Format.printf "%a@." Bench_diff.pp report;
  if Bench_diff.ok report then 0 else 1

let old_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD.json" ~doc:"Baseline results.")

let new_arg =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW.json" ~doc:"New results.")

let threshold_arg =
  Arg.(
    value & opt float 0.25
    & info [ "threshold" ] ~docv:"FRACTION"
        ~doc:
          "Fractional wall-time median increase tolerated before a row fails \
           (default 0.25 = 25%). Deterministic counters are always gated exactly.")

let counters_only_arg =
  Arg.(
    value & flag
    & info [ "counters-only" ]
        ~doc:
          "Gate only deterministic counters; ignore wall-time and throughput \
           deltas entirely. Use when comparing runs from different machines.")

let cmd =
  let doc = "compare two dstress benchmark JSON files and flag regressions" in
  Cmd.v
    (Cmd.info "bench_diff" ~doc)
    Term.(const run $ old_arg $ new_arg $ threshold_arg $ counters_only_arg)

let () = exit (Cmd.eval' cmd)
