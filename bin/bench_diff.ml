(* bench_diff: compare two benchmark result files and gate regressions.

   Exit status: 0 when the new results are acceptable (only informational
   deltas), 1 when a deterministic counter changed or a wall-time median
   regressed beyond the threshold, 2 on usage or parse errors. *)

open Cmdliner
module Bench_result = Dstress_obs.Bench_result
module Bench_diff = Dstress_obs.Bench_diff

let read path =
  match Bench_result.read_file path with
  | Ok doc -> doc
  | Error msg ->
      Printf.eprintf "bench_diff: %s: %s\n" path msg;
      exit 2

let run old_path new_path threshold counters_only write_baseline =
  if threshold <= 0.0 then begin
    Printf.eprintf "bench_diff: --threshold must be positive\n";
    exit 2
  end;
  let old_doc = read old_path and new_doc = read new_path in
  let report = Bench_diff.compare_docs ~threshold ~counters_only old_doc new_doc in
  Format.printf "%a@." Bench_diff.pp report;
  if write_baseline then begin
    (* Rewrite the baseline in place from the new results, keeping its
       scope: only the suites the baseline already tracks are taken from
       NEW, so refreshing a one-suite BENCH_<name>.json from a full
       bench run stays a one-suite baseline. *)
    let tracked = List.map (fun s -> s.Bench_result.suite) old_doc.Bench_result.suites in
    let suites =
      List.filter
        (fun (s : Bench_result.suite) -> List.mem s.Bench_result.suite tracked)
        new_doc.Bench_result.suites
    in
    if suites = [] then begin
      Printf.eprintf "bench_diff: --write-baseline: %s has none of %s's suites\n" new_path
        old_path;
      exit 2
    end;
    Bench_result.write_file old_path
      { Bench_result.mode = new_doc.Bench_result.mode; suites };
    Printf.printf "baseline %s rewritten from %s\n" old_path new_path
  end;
  if Bench_diff.ok report then 0 else 1

let old_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD.json" ~doc:"Baseline results.")

let new_arg =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW.json" ~doc:"New results.")

let threshold_arg =
  Arg.(
    value & opt float 0.25
    & info [ "threshold" ] ~docv:"FRACTION"
        ~doc:
          "Fractional wall-time median increase tolerated before a row fails \
           (default 0.25 = 25%). Deterministic counters are always gated exactly.")

let counters_only_arg =
  Arg.(
    value & flag
    & info [ "counters-only" ]
        ~doc:
          "Gate only deterministic counters; ignore wall-time and throughput \
           deltas entirely. Use when comparing runs from different machines.")

let write_baseline_arg =
  Arg.(
    value & flag
    & info [ "write-baseline" ]
        ~doc:
          "After printing the comparison, rewrite OLD.json in place from \
           NEW.json, restricted to the suites OLD.json already tracks — one \
           command to refresh a committed bench/baselines/BENCH_<name>.json \
           after an intentional counter change. The exit status still \
           reflects the comparison, so a refresh that changed counters \
           exits 1 (rerun to confirm the new baseline is stable).")

let cmd =
  let doc = "compare two dstress benchmark JSON files and flag regressions" in
  Cmd.v
    (Cmd.info "bench_diff" ~doc)
    Term.(
      const run $ old_arg $ new_arg $ threshold_arg $ counters_only_arg
      $ write_baseline_arg)

let () = exit (Cmd.eval' cmd)
