#!/bin/sh
# CI driver: everything must build (including benches and examples) and
# every test suite must pass — under both runtime executors. Run from
# anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @check =="
dune build @check

echo "== dune build =="
dune build

echo "== dune runtest (sequential executor) =="
DSTRESS_JOBS=1 dune runtest

# DSTRESS_JOBS switches every Engine.default_config to the domain-pool
# executor; --force re-runs suites the sequential pass already cached.
echo "== dune runtest (parallel executor, 4 domains) =="
DSTRESS_JOBS=4 dune runtest --force

echo "== bench smoke (fig3-left + executor + gmw-slice, quick) =="
dune exec bench/main.exe -- --quick fig3-left executor gmw-slice

echo "CI OK"
