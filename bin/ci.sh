#!/bin/sh
# CI driver: everything must build (including benches and examples) and
# every test suite must pass. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @check =="
dune build @check

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "CI OK"
