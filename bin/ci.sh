#!/bin/sh
# CI driver: everything must build (including benches and examples) and
# every test suite must pass — under both runtime executors. Run from
# anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @check =="
dune build @check

echo "== dune build =="
dune build

echo "== dune runtest (sequential executor) =="
DSTRESS_JOBS=1 dune runtest

# DSTRESS_JOBS switches every Engine.default_config to the domain-pool
# executor; --force re-runs suites the sequential pass already cached.
echo "== dune runtest (parallel executor, 4 domains) =="
DSTRESS_JOBS=4 dune runtest --force

echo "== bench smoke (fig3-left + executor + gmw-slice, quick) =="
dune exec bench/main.exe -- --quick fig3-left executor gmw-slice

# Observability smoke: the same faulty run under both executors must
# export byte-identical trace/metrics files, and both must parse as JSON.
echo "== obs smoke (trace/metrics determinism across executors) =="
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
for jobs in 1 4; do
  dune exec bin/dstress.exe -- stress --core 2 --periphery 3 -i 2 \
    --fault-crashes 2 --jobs "$jobs" --slice-width 64 --obs-level full \
    --trace "$OBS_TMP/trace.$jobs.json" --metrics "$OBS_TMP/metrics.$jobs.json" \
    > /dev/null
done
cmp "$OBS_TMP/trace.1.json" "$OBS_TMP/trace.4.json"
cmp "$OBS_TMP/metrics.1.json" "$OBS_TMP/metrics.4.json"
dune exec test/json_check.exe -- \
  "$OBS_TMP/trace.1.json" "$OBS_TMP/metrics.1.json"

echo "CI OK"
