#!/bin/sh
# CI driver: everything must build (including benches and examples) and
# every test suite must pass — under both runtime executors. Run from
# anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @check =="
dune build @check

echo "== dune build =="
dune build

echo "== dune runtest (sequential executor) =="
DSTRESS_JOBS=1 dune runtest

# DSTRESS_JOBS switches every Engine.default_config to the domain-pool
# executor; --force re-runs suites the sequential pass already cached.
echo "== dune runtest (parallel executor, 4 domains) =="
DSTRESS_JOBS=4 dune runtest --force

CI_TMP="$(mktemp -d)"
trap 'rm -rf "$CI_TMP"' EXIT

# The full quick suite, exported through the typed result schema. The
# export must decode as a dstress-bench/1 document, a self-compare must
# report zero deltas, and the seed-deterministic counters (AND gates,
# OT batches, traffic bytes, ...) must exactly match the committed
# baselines — wall-clock numbers are machine-dependent and not gated
# here (see bin/bench_diff.ml --threshold for same-machine gating).
echo "== bench (quick, all suites, --json) =="
dune exec bench/main.exe -- --quick --json "$CI_TMP/bench.json"
dune exec test/json_check.exe -- --bench "$CI_TMP/bench.json"

echo "== bench_diff self-compare =="
dune exec bin/bench_diff.exe -- "$CI_TMP/bench.json" "$CI_TMP/bench.json"

echo "== bench_diff counter drift vs committed baselines =="
# To refresh a committed baseline after an intentional counter change,
# rewrite it in place from a fresh quick run (one command, no manual
# copying — the flag keeps the baseline's one-suite scope):
#   dune exec bench/main.exe -- --quick --json /tmp/bench.json
#   dune exec bin/bench_diff.exe -- --write-baseline \
#     bench/baselines/BENCH_<name>.json /tmp/bench.json
for baseline in bench/baselines/BENCH_*.json; do
  echo "-- $baseline"
  dune exec bin/bench_diff.exe -- --counters-only "$baseline" "$CI_TMP/bench.json"
done

# Crypto backend smoke: a tiny EN run with real (Crypto-mode) base OTs on
# the RFC 7919 2048-bit group — the full batched hot path (fixed-base
# windows, block re-randomization, shared-c1 decryption, OT key exchange)
# at production parameters. Sized to ~6 session pairs so it stays around
# a minute.
echo "== crypto backend smoke (--ot crypto --group ffdhe2048) =="
dune exec bin/dstress.exe -- stress --core 2 --periphery 1 -i 1 -k 1 \
  --ot crypto --group ffdhe2048 > /dev/null

# Observability smoke: the same faulty run under every executor backend —
# including the multi-process distributed one — must export byte-identical
# trace/metrics files, and they must parse as JSON.
echo "== obs smoke (trace/metrics determinism across executors) =="
OBS_TMP="$CI_TMP"
for exec in sequential parallel:4 distributed:2; do
  tag="$(echo "$exec" | tr ':' '.')"
  dune exec bin/dstress.exe -- stress --core 2 --periphery 3 -i 2 \
    --fault-crashes 2 --executor "$exec" --slice-width 64 --obs-level full \
    --trace "$OBS_TMP/trace.$tag.json" --metrics "$OBS_TMP/metrics.$tag.json" \
    > /dev/null
done
cmp "$OBS_TMP/trace.sequential.json" "$OBS_TMP/trace.parallel.4.json"
cmp "$OBS_TMP/trace.sequential.json" "$OBS_TMP/trace.distributed.2.json"
cmp "$OBS_TMP/metrics.sequential.json" "$OBS_TMP/metrics.parallel.4.json"
cmp "$OBS_TMP/metrics.sequential.json" "$OBS_TMP/metrics.distributed.2.json"
dune exec test/json_check.exe -- \
  "$OBS_TMP/trace.sequential.json" "$OBS_TMP/metrics.sequential.json"

# Offline/online smoke: an EN run with preprocessing (and the on-disk
# triple cache) must be observationally identical to the inline run —
# the tick-domain trace/metrics exports byte-compare. The third run
# starts a fresh process against the populated cache dir, so it proves
# the disk-reload path too (--triple-cache implies --preprocess).
echo "== preprocess smoke (offline/online observational identity) =="
dune exec bin/dstress.exe -- stress --core 2 --periphery 3 -i 2 \
  --slice-width 64 --obs-level full \
  --trace "$CI_TMP/trace.inline.json" --metrics "$CI_TMP/metrics.inline.json" \
  > /dev/null
dune exec bin/dstress.exe -- stress --core 2 --periphery 3 -i 2 \
  --slice-width 64 --obs-level full --preprocess \
  --triple-cache "$CI_TMP/triples" \
  --trace "$CI_TMP/trace.pre.json" --metrics "$CI_TMP/metrics.pre.json" \
  > /dev/null
cmp "$CI_TMP/trace.inline.json" "$CI_TMP/trace.pre.json"
cmp "$CI_TMP/metrics.inline.json" "$CI_TMP/metrics.pre.json"
dune exec bin/dstress.exe -- stress --core 2 --periphery 3 -i 2 \
  --slice-width 64 --obs-level full --triple-cache "$CI_TMP/triples" \
  --trace "$CI_TMP/trace.reload.json" --metrics "$CI_TMP/metrics.reload.json" \
  > /dev/null
cmp "$CI_TMP/trace.inline.json" "$CI_TMP/trace.reload.json"
cmp "$CI_TMP/metrics.inline.json" "$CI_TMP/metrics.reload.json"

# Distributed smoke: the two-process transport demo (real exec'd worker
# over a named socket), then one engine run per wire-fault kind — each
# must recover (respawn/fence/degrade onto live workers) and still print
# a report, with the wall-domain counters exported separately.
echo "== distributed smoke (transport demo + wire-fault matrix) =="
dune exec bin/dstress.exe -- transport --pings 100 > /dev/null
for kind in disconnect stall partition; do
  echo "-- wire fault: $kind"
  dune exec bin/dstress.exe -- stress --core 2 --periphery 3 -i 2 \
    --executor distributed:2 --wire-faults "$kind" \
    --transport-metrics "$CI_TMP/transport.$kind.json" > /dev/null
  dune exec test/json_check.exe -- "$CI_TMP/transport.$kind.json"
done

# Service smoke: a daemon with a persistent worker pool serves three
# concurrent requests; each response's tick-domain trace/metrics must
# byte-match a solo `stress` run of the same seeded config, and SIGTERM
# must drain the daemon cleanly (exit 0). The daemon binary is invoked
# directly (not through `dune exec`) so $! is the daemon's own pid and
# the TERM signal reaches it, not a wrapper.
echo "== service smoke (daemon + concurrent requests + drain) =="
dune exec bin/dstress.exe -- stress --core 2 --periphery 3 -i 2 \
  --slice-width 64 --obs-level full \
  --trace "$CI_TMP/solo.trace.json" --metrics "$CI_TMP/solo.metrics.json" \
  > /dev/null
SVC_SOCK="$CI_TMP/dstress-ci.sock"
_build/default/bin/dstress.exe serve --socket "$SVC_SOCK" --service-workers 2 \
  --log-level debug > "$CI_TMP/serve.log" 2> "$CI_TMP/serve.err" &
SVC_PID=$!
REQ_PIDS=""
for i in 1 2 3; do
  _build/default/bin/dstress.exe request --socket "$SVC_SOCK" \
    --core 2 --periphery 3 -i 2 --slice-width 64 \
    --trace "$CI_TMP/svc.$i.trace.json" --metrics "$CI_TMP/svc.$i.metrics.json" \
    > /dev/null &
  REQ_PIDS="$REQ_PIDS $!"
done
for pid in $REQ_PIDS; do wait "$pid"; done
for i in 1 2 3; do
  cmp "$CI_TMP/solo.trace.json" "$CI_TMP/svc.$i.trace.json"
  cmp "$CI_TMP/solo.metrics.json" "$CI_TMP/svc.$i.metrics.json"
done
# Telemetry scrape mid-run: the Stats admin request must answer on the
# same socket, its JSON document must validate, and the Prometheus text
# must report exactly the three requests just served. The structured
# log on stderr must carry their trace IDs end to end.
echo "== stats scrape =="
_build/default/bin/dstress.exe stats --socket "$SVC_SOCK" \
  --json "$CI_TMP/stats.json" > "$CI_TMP/stats.prom"
dune exec test/json_check.exe -- "$CI_TMP/stats.json"
grep -q '^dstress_service_requests_enqueued 3$' "$CI_TMP/stats.prom"
grep -q '^dstress_service_requests_completed 3$' "$CI_TMP/stats.prom"
grep -q '^dstress_service_request_s_count 3$' "$CI_TMP/stats.prom"
grep '^dstress_service_request_s{quantile="0.99"} ' "$CI_TMP/stats.prom" | grep -qv ' 0$'
grep -q '^dstress_worker_up{worker="0"' "$CI_TMP/stats.prom"
grep -q 'trace=3 msg="request finished"' "$CI_TMP/serve.err"
kill -TERM "$SVC_PID"
wait "$SVC_PID"

echo "CI OK"
