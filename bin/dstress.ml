(* The dstress command-line tool: run private stress tests on synthetic
   banking networks, inspect the privacy accounting, and produce
   scalability projections. `dstress --help` lists the commands. *)

open Cmdliner
module Prng = Dstress_util.Prng
module Group = Dstress_crypto.Group
module Graph = Dstress_runtime.Graph
module Engine = Dstress_runtime.Engine
module Reference = Dstress_risk.Reference
module En_program = Dstress_risk.En_program
module Egj_program = Dstress_risk.Egj_program
module Topology = Dstress_graphgen.Topology
module Banking = Dstress_graphgen.Banking
module Projection = Dstress_costmodel.Projection
module Utility = Dstress_costmodel.Utility
module Edge_privacy = Dstress_transfer.Edge_privacy
module Matmul = Dstress_baseline.Matmul
module Fault = Dstress_faults.Fault

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"INT" ~doc:"PRNG seed for the run.")

(* The accepted names and the help text both come from Group.names, so a
   group added to the registry shows up here automatically. *)
let group_arg =
  Arg.(
    value
    & opt (enum (List.map (fun n -> (n, n)) Group.names)) "toy"
    & info [ "group" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf "ElGamal group: one of %s."
             (String.concat ", " Group.names)))

let k_arg =
  Arg.(
    value & opt int 2
    & info [ "k" ] ~docv:"INT" ~doc:"Collusion bound; blocks have k+1 members.")

let ot_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("simulation", Dstress_crypto.Ot_ext.Simulation);
             ("crypto", Dstress_crypto.Ot_ext.Crypto);
           ])
        Dstress_crypto.Ot_ext.Simulation
    & info [ "ot" ] ~docv:"MODE"
        ~doc:
          "Oblivious-transfer backend for the GMW computation step: simulation \
           (cost-model only) or crypto (real base OTs + IKNP extension).")

let core_arg =
  Arg.(value & opt int 3 & info [ "core" ] ~docv:"INT" ~doc:"Core banks in the network.")

let periphery_arg =
  Arg.(
    value & opt int 5 & info [ "periphery" ] ~docv:"INT" ~doc:"Peripheral (regional) banks.")

let iterations_arg =
  Arg.(value & opt int 5 & info [ "iterations"; "i" ] ~docv:"INT" ~doc:"Protocol rounds.")

let epsilon_arg =
  Arg.(value & opt float 1.0 & info [ "epsilon" ] ~docv:"FLOAT" ~doc:"Query privacy cost.")

let shock_arg =
  Arg.(
    value
    & opt (enum [ ("absorbed", Banking.Absorbed); ("cascade", Banking.Cascade) ])
        Banking.Cascade
    & info [ "shock" ] ~docv:"SCENARIO" ~doc:"Stress scenario: absorbed or cascade.")

let reference_only_arg =
  Arg.(
    value & flag
    & info [ "reference-only" ] ~doc:"Skip MPC; run only the cleartext oracle.")

let fault_rate_arg =
  Arg.(
    value & opt float 0.0
    & info [ "fault-rate" ] ~docv:"FLOAT"
        ~doc:
          "Per-(edge, round) probability of injecting a dropped, delayed or corrupted \
           transfer and of forcing a decryption-table miss. 0 disables injection.")

let fault_crashes_arg =
  Arg.(
    value & opt int 0
    & info [ "fault-crashes" ] ~docv:"INT"
        ~doc:"Crash that many distinct block members at random mid-run rounds.")

let max_retries_arg =
  Arg.(
    value & opt int 2
    & info [ "max-retries" ] ~docv:"INT"
        ~doc:
          "Transfer retries after a decryption failure, before escalating to the \
           widened lookup table.")

let backoff_arg =
  Arg.(
    value & opt float 0.05
    & info [ "backoff" ] ~docv:"SECONDS"
        ~doc:"Base simulated retry backoff; doubles on every retry.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"INT"
        ~doc:
          "Worker domains for the block/edge task batches. 1 runs sequentially; \
           results are identical for every value.")

let executor_of_jobs jobs =
  if jobs < 1 then invalid_arg "dstress: --jobs must be >= 1"
  else Dstress_runtime.Executor.parallel ~jobs

module Executor = Dstress_runtime.Executor
module Distributed = Dstress_runtime.Distributed
module Transport = Dstress_runtime.Transport

let executor_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "executor" ] ~docv:"SPEC"
        ~doc:
          "Execution backend: sequential, parallel[:N] (domain pool) or \
           distributed[:N] (forked worker processes behind the fault-tolerant \
           transport). Overrides --jobs. Tick-domain results and exports are \
           identical for every backend.")

let socket_dir_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "socket-dir" ] ~docv:"DIR"
        ~doc:
          "With --executor distributed[:N]: use named Unix sockets under DIR \
           (listen/connect with bounded jittered backoff) instead of anonymous \
           socketpairs.")

let wire_fault_rate_arg =
  Arg.(
    value & opt float 0.0
    & info [ "wire-fault-rate" ] ~docv:"FLOAT"
        ~doc:
          "Per-(worker, dispatch batch) probability of injecting a transport \
           fault (disconnect, stall or partition) into a distributed run. \
           Requires --executor distributed[:N]; 0 disables injection.")

let wire_faults_arg =
  Arg.(
    value
    & opt (list (enum [ ("disconnect", `Disconnect); ("stall", `Stall); ("partition", `Partition) ])) []
    & info [ "wire-faults" ] ~docv:"KINDS"
        ~doc:
          "Comma-separated wire-fault kinds to inject deterministically (one \
           fault each on early dispatch batches): disconnect, stall, partition. \
           Requires --executor distributed[:N].")

let transport_metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "transport-metrics" ] ~docv:"FILE"
        ~doc:
          "Write the run's wall-domain transport/pool counters (frames, \
           reconnects, backoff sleeps, respawns, suspicions, fenced frames) to \
           FILE: CSV when FILE ends in .csv, JSON otherwise. Only produced by \
           --executor distributed[:N] — these counters are deliberately not in \
           the deterministic --metrics export.")

(* --executor wins over the legacy --jobs; --socket-dir re-homes a
   distributed backend onto named sockets. *)
let resolve_executor ~spec ~jobs ~socket_dir =
  let exec =
    match spec with
    | None -> executor_of_jobs jobs
    | Some s -> (
        match Executor.of_string s with
        | Ok e -> e
        | Error m -> invalid_arg ("dstress: --executor " ^ m))
  in
  match (socket_dir, Executor.distributed_ctx exec) with
  | None, _ -> exec
  | Some _, None -> invalid_arg "dstress: --socket-dir requires --executor distributed[:N]"
  | Some dir, Some ctx ->
      let o = Distributed.opts ctx in
      Executor.distributed
        ~opts:{ o with Distributed.socket_dir = Some dir }
        ~workers:o.Distributed.workers ()

let wire_plan ~exec ~seed ~iterations ~wire_fault_rate ~wire_faults =
  if wire_fault_rate = 0.0 && wire_faults = [] then Fault.empty
  else
    match Executor.distributed_ctx exec with
    | None ->
        invalid_arg "dstress: wire faults require --executor distributed[:N]"
    | Some ctx ->
        let workers = (Distributed.opts ctx).Distributed.workers in
        (* Every engine phase is at most two dispatch batches per round. *)
        let batches = (2 * (iterations + 1)) + 2 in
        (if wire_fault_rate > 0.0 then
           Fault.random_wire_plan ~seed ~workers ~batches
             {
               Fault.disconnect = wire_fault_rate;
               stall = wire_fault_rate;
               partition = wire_fault_rate;
             }
         else Fault.empty)
        @ List.map
            (function
              | `Disconnect -> Fault.Disconnect_worker { worker = 0; batch = 1 }
              | `Stall ->
                  Fault.Stall_worker { worker = 1 mod workers; batch = 2; seconds = 0.15 }
              | `Partition ->
                  Fault.Partition_worker { worker = 0; from_batch = 3; until_batch = 4 })
            wire_faults

let export_transport_metrics path (report : Engine.report) =
  Option.iter
    (fun path ->
      match report.Engine.transport_metrics with
      | Some m ->
          let contents =
            if Filename.check_suffix path ".csv" then Dstress_obs.Obs.Metrics.to_csv m
            else Dstress_obs.Json.to_string (Dstress_obs.Obs.Metrics.to_json m)
          in
          let oc = open_out path in
          output_string oc contents;
          close_out oc
      | None ->
          prerr_endline
            "dstress: --transport-metrics ignored (no distributed transport in this run)")
    path

(* A degraded distributed run is an expected, typed outcome: report it
   and exit distinctly rather than crash with a backtrace. *)
let degraded_exit = 3

let catch_degraded f =
  try f () with
  | Distributed.Degraded d ->
      Format.eprintf "dstress: distributed run degraded: %a@." Distributed.pp_degradation d;
      exit degraded_exit
  | Distributed.Task_failed { index; message } ->
      Format.eprintf "dstress: worker task %d failed: %s@." index message;
      exit degraded_exit

let slice_width_arg =
  Arg.(
    value & opt int 64
    & info [ "slice-width" ] ~docv:"INT"
        ~doc:
          "Vertices per bitsliced GMW batch in a computation step (1-64). 1 \
           selects the scalar per-vertex evaluator; results are identical \
           for every value.")

let preprocess_arg =
  Arg.(
    value & flag
    & info [ "preprocess" ]
        ~doc:
          "Run the offline phase: generate (or load from --triple-cache) each \
           block's correlated randomness for the whole run before the timed \
           online rounds. Outputs, traffic and tick-domain observability are \
           identical either way; only wall-clock moves offline.")

let triple_cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "triple-cache" ] ~docv:"DIR"
        ~doc:
          "Persist preprocessed correlated randomness under DIR (created on \
           demand) so later runs — including other processes — reuse it. \
           Implies --preprocess.")

(* ------------------------------------------------------------------ *)
(* Observability arguments                                              *)
(* ------------------------------------------------------------------ *)

module Obs = Dstress_obs.Obs
module Prof = Dstress_obs.Prof

let obs_level_arg =
  Arg.(
    value
    & opt (enum [ ("off", Obs.Off); ("basic", Obs.Basic); ("full", Obs.Full) ]) Obs.Off
    & info [ "obs-level" ] ~docv:"LEVEL"
        ~doc:
          "Observability level: off (zero-cost), basic (metrics + phase spans), full \
           (adds per-vertex, per-transfer and per-attempt spans). Implied full when \
           --trace or --metrics is given without an explicit level.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write the run's span trace as Chrome trace_event JSON (load it in \
           about://tracing or Perfetto). The timeline is simulated — 1 tick per wire \
           byte — so the file is bit-identical across --jobs and --slice-width.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the run's metrics registry to FILE: CSV when FILE ends in .csv, \
           JSON otherwise.")

let trace_wall_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-wall" ] ~docv:"FILE"
        ~doc:
          "Write the run's span trace on the measured wall-clock timeline instead \
           of simulated ticks. Unlike --trace this output varies run to run; it is \
           only produced when this flag is given.")

let profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Aggregate span wall-times into a hot-spot profile: a human table when \
           FILE is -, JSON otherwise (per-label self/total seconds and counts).")

(* An export flag without --obs-level means the user wants the data:
   collect everything rather than silently writing empty exports. *)
let effective_obs_level level ~trace ~metrics ~trace_wall ~profile =
  if
    level = Obs.Off
    && (trace <> None || metrics <> None || trace_wall <> None || profile <> None)
  then Obs.Full
  else level

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let export_obs ~trace ~metrics ~trace_wall ~profile report =
  let obs = report.Engine.obs in
  Option.iter (fun path -> write_file path (Obs.trace_json obs)) trace;
  Option.iter
    (fun path ->
      let contents =
        if Filename.check_suffix path ".csv" then Obs.metrics_csv obs
        else Obs.metrics_json obs
      in
      write_file path contents)
    metrics;
  Option.iter (fun path -> write_file path (Prof.trace_wall_json obs)) trace_wall;
  Option.iter
    (fun path ->
      let prof = Prof.of_obs obs in
      if path = "-" then Format.printf "%a@." (Prof.pp_table ?top_n:None) prof
      else write_file path (Dstress_obs.Json.to_string (Prof.to_json prof)))
    profile

(* Fault plans are drawn against the concrete graph, so this runs after
   graph construction, just before the engine starts. *)
let protocol_plan ~graph ~iterations ~seed ~fault_rate ~fault_crashes =
  let rounds = iterations + 1 in
  let nodes = Graph.n graph in
  (if fault_rate > 0.0 then
     let rates =
       { Fault.no_faults with
         drop = fault_rate;
         delay = fault_rate;
         corrupt = fault_rate;
         miss = fault_rate;
       }
     in
     Fault.random_plan ~seed ~rounds ~nodes ~edges:(Graph.edges graph) rates
   else Fault.empty)
  @
  if fault_crashes > 0 then Fault.random_crashes ~seed ~nodes ~rounds ~count:fault_crashes
  else Fault.empty

(* ------------------------------------------------------------------ *)
(* stress command                                                      *)
(* ------------------------------------------------------------------ *)

let make_network ~seed ~core ~periphery ~shock =
  let prng = Prng.of_int seed in
  let topo = Topology.core_periphery prng ~core ~periphery () in
  let inst = Banking.en_of_topology prng topo () in
  (Banking.shock_en prng inst topo shock, topo)

let make_egj_network ~seed ~core ~periphery ~shock =
  let prng = Prng.of_int seed in
  let topo = Topology.core_periphery prng ~core ~periphery () in
  let inst = Banking.egj_of_topology prng topo () in
  (Banking.shock_egj prng inst topo shock, topo)

(* Fixed-point encoding parameters are part of the protocol, not user
   knobs: both the solo path and the daemon must agree on them for a
   served request to reproduce a solo run bit for bit. *)
let en_scale = 0.25
let egj_frac = 6
let egj_scale = 4.0

(* One seeded clearing run — shared verbatim by the stress command and
   the daemon's request handler, so a request served by `dstress serve`
   is the same computation (same network draws, same engine config, same
   tick-domain exports) as a solo `dstress stress` of that config.
   Returns the report and the decoded TDS. *)
let run_model model ~grp ~k ~epsilon ~iterations ~seed ~core ~periphery ~shock ~ot_mode
    ~slice_width ~preprocess ~triple_cache ~executor ~obs_level ~fault_plan ~max_retries
    ~backoff =
  let base_cfg ~degree =
    { (Engine.default_config grp ~k ~degree_bound:degree ~seed:(string_of_int seed)) with
      Engine.executor;
      ot_mode;
      slice_width;
      preprocess;
      triple_cache;
      obs_level;
      fault_plan;
      max_retries;
      backoff;
    }
  in
  match model with
  | `En ->
      let inst, _ = make_network ~seed ~core ~periphery ~shock in
      let l = 12 and scale = en_scale in
      let graph = En_program.graph_of_instance inst in
      let degree = Graph.max_degree graph in
      let p = En_program.make ~epsilon ~sensitivity:20 ~l ~degree ~iterations () in
      let states = En_program.encode_instance inst ~graph ~l ~degree ~scale in
      let report = Engine.run (base_cfg ~degree) p ~graph ~initial_states:states in
      (report, En_program.decode_output ~scale report.Engine.output)
  | `Egj ->
      let inst, _ = make_egj_network ~seed ~core ~periphery ~shock in
      let l = 16 and frac = egj_frac and scale = egj_scale in
      let graph = Egj_program.graph_of_instance inst in
      let degree = Graph.max_degree graph in
      let p = Egj_program.make ~epsilon ~sensitivity:20 ~l ~frac ~degree ~iterations () in
      let states = Egj_program.encode_instance inst ~graph ~l ~frac ~degree ~scale in
      let report = Engine.run (base_cfg ~degree) p ~graph ~initial_states:states in
      (report, Egj_program.decode_output ~scale ~frac report.Engine.output)

let stress model seed grpname ot_mode k core periphery iterations epsilon shock
    reference_only fault_rate fault_crashes max_retries backoff jobs executor_spec
    socket_dir wire_fault_rate wire_faults transport_metrics slice_width preprocess
    triple_cache obs_level trace metrics trace_wall profile =
  let grp = Group.by_name grpname in
  let preprocess = preprocess || triple_cache <> None in
  let obs_level = effective_obs_level obs_level ~trace ~metrics ~trace_wall ~profile in
  let exec = resolve_executor ~spec:executor_spec ~jobs ~socket_dir in
  let wire = wire_plan ~exec ~seed ~iterations ~wire_fault_rate ~wire_faults in
  let finish ~graph ~tds report =
    ignore graph;
    Printf.printf "DStress noised TDS:   $%.2f\n" tds;
    Format.printf "%a@." Engine.pp_report report;
    export_obs ~trace ~metrics ~trace_wall ~profile report;
    export_transport_metrics transport_metrics report
  in
  let mpc graph_of_model =
    let graph = graph_of_model () in
    let fault_plan =
      protocol_plan ~graph ~iterations ~seed ~fault_rate ~fault_crashes @ wire
    in
    let report, tds =
      catch_degraded (fun () ->
          run_model model ~grp ~k ~epsilon ~iterations ~seed ~core ~periphery ~shock
            ~ot_mode ~slice_width ~preprocess ~triple_cache ~executor:exec ~obs_level
            ~fault_plan ~max_retries ~backoff)
    in
    finish ~graph ~tds report
  in
  match model with
  | `En ->
      let inst, _ = make_network ~seed ~core ~periphery ~shock in
      let oracle = Reference.eisenberg_noe ~iterations inst in
      Printf.printf "cleartext oracle TDS: $%.2f (converged at round %d)\n"
        oracle.Reference.en_tds oracle.Reference.en_rounds_to_converge;
      if not reference_only then mpc (fun () -> En_program.graph_of_instance inst)
  | `Egj ->
      let inst, _ = make_egj_network ~seed ~core ~periphery ~shock in
      let oracle = Reference.elliott_golub_jackson ~iterations inst in
      Printf.printf "cleartext oracle TDS: $%.2f (%d failed banks, monotone: %b)\n"
        oracle.Reference.egj_tds
        (Array.fold_left (fun a f -> if f then a + 1 else a) 0 oracle.Reference.failed)
        oracle.Reference.monotone;
      if not reference_only then mpc (fun () -> Egj_program.graph_of_instance inst)

let model_arg =
  Arg.(
    value
    & opt (enum [ ("en", `En); ("egj", `Egj) ]) `En
    & info [ "model" ] ~docv:"MODEL" ~doc:"Systemic-risk model: en or egj.")

let stress_cmd =
  let doc = "Run a private systemic-risk stress test on a synthetic network." in
  Cmd.v
    (Cmd.info "stress" ~doc)
    Term.(
      const stress $ model_arg $ seed_arg $ group_arg $ ot_arg $ k_arg $ core_arg
      $ periphery_arg
      $ iterations_arg $ epsilon_arg $ shock_arg $ reference_only_arg $ fault_rate_arg
      $ fault_crashes_arg $ max_retries_arg $ backoff_arg $ jobs_arg $ executor_arg
      $ socket_dir_arg $ wire_fault_rate_arg $ wire_faults_arg $ transport_metrics_arg
      $ slice_width_arg $ preprocess_arg $ triple_cache_arg $ obs_level_arg $ trace_arg
      $ metrics_arg $ trace_wall_arg $ profile_arg)

(* ------------------------------------------------------------------ *)
(* project command                                                     *)
(* ------------------------------------------------------------------ *)

let project grpname n d k l =
  let grp = Group.by_name grpname in
  let units = Projection.measure_units grp ~seed:"cli" in
  let params = { Projection.n; d; k; l; iterations = None; tree_fanout = 100 } in
  Format.printf "%a@." Projection.pp (Projection.project units params)

let project_cmd =
  let doc = "Project end-to-end cost for a network size (Figure 6 methodology)." in
  let n = Arg.(value & opt int 1750 & info [ "n" ] ~docv:"INT" ~doc:"Banks.") in
  let d = Arg.(value & opt int 100 & info [ "d" ] ~docv:"INT" ~doc:"Degree bound.") in
  let k = Arg.(value & opt int 19 & info [ "k" ] ~docv:"INT" ~doc:"Collusion bound.") in
  let l = Arg.(value & opt int 16 & info [ "l" ] ~docv:"INT" ~doc:"Message bits.") in
  Cmd.v (Cmd.info "project" ~doc) Term.(const project $ group_arg $ n $ d $ k $ l)

(* ------------------------------------------------------------------ *)
(* privacy command                                                     *)
(* ------------------------------------------------------------------ *)

let privacy () =
  let p = Utility.paper_policy in
  let eps = Utility.epsilon_for_accuracy p in
  Printf.printf "output privacy (§4.5):\n";
  Printf.printf "  eps_max = %.4f, eps_query = %.4f, runs/year = %d\n" p.Utility.epsilon_max
    eps (Utility.runs_per_year p);
  Printf.printf "  Laplace scale = $%.1fB for a +-$%.0fB accuracy target\n\n"
    (Utility.noise_scale_dollars p ~epsilon:eps /. 1e9)
    (p.Utility.accuracy_dollars /. 1e9);
  Printf.printf "edge privacy (Appendix B):\n";
  Format.printf "%a@." Edge_privacy.pp_report (Edge_privacy.analyze Edge_privacy.paper_example)

let privacy_cmd =
  let doc = "Print the privacy-budget accounting (output + edge privacy)." in
  Cmd.v (Cmd.info "privacy" ~doc) Term.(const privacy $ const ())

(* ------------------------------------------------------------------ *)
(* baseline command                                                    *)
(* ------------------------------------------------------------------ *)

let baseline grpname max_n =
  let grp = Group.by_name grpname in
  let sizes = List.filter (fun n -> n <= max_n) [ 3; 4; 5; 6; 8; 10 ] in
  let ms =
    List.map
      (fun n ->
        let m = Matmul.measure grp ~parties:3 ~n ~bits:12 ~seed:("cli" ^ string_of_int n) in
        Printf.printf "N=%2d: %.2f s (%d AND gates)\n" n m.Matmul.seconds m.Matmul.and_count;
        m)
      sizes
  in
  let c = Matmul.fit_cubic ms in
  Printf.printf "extrapolation: EN on 1750 banks as one MPC = %.1f years\n"
    (Matmul.years (Matmul.extrapolate_seconds ~c ~n:1750 ~powers:11))

let baseline_cmd =
  let doc = "Benchmark the naive monolithic-MPC baseline (§5.5)." in
  let max_n =
    Arg.(value & opt int 6 & info [ "max-n" ] ~docv:"INT" ~doc:"Largest matrix size.")
  in
  Cmd.v (Cmd.info "baseline" ~doc) Term.(const baseline $ group_arg $ max_n)

(* ------------------------------------------------------------------ *)
(* scenarios command                                                   *)
(* ------------------------------------------------------------------ *)

let scenarios seed iterations =
  Printf.printf "%-10s %12s %14s %16s\n" "scenario" "TDS" "impaired core" "converged round";
  List.iter
    (fun (name, shock) ->
      let inst, topo = Banking.appendix_c_network (Prng.of_int seed) shock in
      let r = Reference.eisenberg_noe ~iterations inst in
      let impaired =
        List.length
          (List.filter (fun c -> r.Reference.prorate.(c) < 0.999) topo.Dstress_graphgen.Topology.core)
      in
      Printf.printf "%-10s %12.2f %11d/10 %16d\n" name r.Reference.en_tds impaired
        r.Reference.en_rounds_to_converge)
    [ ("absorbed", Banking.Absorbed); ("cascade", Banking.Cascade) ]

let scenarios_cmd =
  let doc = "Compare the Appendix-C contagion scenarios on a 50-bank network." in
  let iters =
    Arg.(value & opt int 40 & info [ "iterations" ] ~docv:"INT" ~doc:"Solver rounds.")
  in
  Cmd.v (Cmd.info "scenarios" ~doc) Term.(const scenarios $ seed_arg $ iters)

(* ------------------------------------------------------------------ *)
(* transport command                                                   *)
(* ------------------------------------------------------------------ *)

(* A true two-process demo of the wire layer: the coordinator re-execs
   this same binary as an echo worker (no fork-snapshot sharing — the
   frames on the socket are the only channel), then measures frame RTTs
   and prints the transport counters. This is also the CI smoke test for
   the listen/connect/backoff path. *)

let transport_worker path =
  let conn = Transport.connect ~attempts:20 ~backoff:0.01 ~path () in
  let rec loop () =
    match Transport.recv conn ~timeout:30.0 with
    | None -> exit 1
    | Some fr when fr.Transport.kind = Transport.Kind.shutdown -> exit 0
    | Some fr when fr.Transport.kind = Transport.Kind.ping ->
        ignore (Transport.send conn ~kind:Transport.Kind.echo ~epoch:fr.Transport.epoch fr.Transport.payload);
        loop ()
    | Some _ -> loop ()
  in
  loop ()

let transport_run pings payload_bytes =
  if pings < 1 then invalid_arg "dstress transport: --pings must be >= 1";
  let dir = Filename.get_temp_dir_name () in
  let path = Filename.concat dir (Printf.sprintf "dstress-transport-%d.sock" (Unix.getpid ())) in
  let lfd = Transport.listen ~path in
  let pid =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; "transport"; "--connect"; path |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      | _ | (exception Unix.Unix_error _) -> ())
    (fun () ->
      let conn = Transport.accept ~deadline:10.0 lfd in
      let payload = Bytes.make payload_bytes 'p' in
      let rtts =
        Array.init pings (fun _ ->
            let t0 = Unix.gettimeofday () in
            ignore (Transport.send conn ~kind:Transport.Kind.ping ~epoch:0 payload);
            match Transport.recv conn ~timeout:10.0 with
            | Some fr when fr.Transport.kind = Transport.Kind.echo ->
                Unix.gettimeofday () -. t0
            | _ -> failwith "dstress transport: echo did not arrive")
      in
      ignore (Transport.send conn ~kind:Transport.Kind.shutdown ~epoch:0 Bytes.empty);
      let wpid, status = Unix.waitpid [] pid in
      Array.sort compare rtts;
      let pct p = rtts.(min (pings - 1) (p * pings / 100)) in
      Printf.printf "transport echo over %s\n" path;
      Printf.printf "  worker pid %d exited %s\n" wpid
        (match status with
        | Unix.WEXITED c -> Printf.sprintf "with code %d" c
        | Unix.WSIGNALED s -> Printf.sprintf "on signal %d" s
        | Unix.WSTOPPED s -> Printf.sprintf "stopped by %d" s);
      Printf.printf "  %d pings of %d B: rtt p50 %.1f us, p95 %.1f us, max %.1f us\n" pings
        payload_bytes
        (pct 50 *. 1e6)
        (pct 95 *. 1e6)
        (rtts.(pings - 1) *. 1e6);
      let m = Transport.metrics conn in
      Printf.printf "  frames sent %d (%d B), received %d (%d B)\n"
        (Dstress_obs.Obs.Metrics.counter m "transport.frames_sent")
        (Dstress_obs.Obs.Metrics.counter m "transport.bytes_sent")
        (Dstress_obs.Obs.Metrics.counter m "transport.frames_received")
        (Dstress_obs.Obs.Metrics.counter m "transport.bytes_received");
      Transport.close conn)

let transport pings payload connect =
  match connect with
  | Some path -> transport_worker path
  | None -> transport_run pings payload

let transport_cmd =
  let doc = "Exercise the fault-tolerant transport against a real worker process." in
  let pings =
    Arg.(value & opt int 200 & info [ "pings" ] ~docv:"INT" ~doc:"Ping frames to send.")
  in
  let payload =
    Arg.(value & opt int 64 & info [ "payload" ] ~docv:"BYTES" ~doc:"Ping payload size.")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"PATH"
          ~doc:"Internal: run as the echo worker, connecting to PATH.")
  in
  Cmd.v (Cmd.info "transport" ~doc) Term.(const transport $ pings $ payload $ connect)

(* ------------------------------------------------------------------ *)
(* serve / request commands (daemon mode)                              *)
(* ------------------------------------------------------------------ *)

module Service = Dstress_runtime.Service
module Log = Dstress_obs.Log

let rejected_exit = 4

let default_socket = Filename.concat (Filename.get_temp_dir_name ()) "dstress.sock"

let parse_host_port spec =
  match String.rindex_opt spec ':' with
  | None -> invalid_arg (Printf.sprintf "dstress: %S is not HOST:PORT" spec)
  | Some i -> (
      let host = String.sub spec 0 i in
      let port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p <= 0xffff && host <> "" -> (host, p)
      | _ -> invalid_arg (Printf.sprintf "dstress: %S is not HOST:PORT" spec))

(* The daemon side of run_model: rebuild the engine config from the wire
   request and return the per-request tick-domain exports. Runs inside a
   persistent worker, so it must never exit the process — engine
   exceptions propagate and become a typed error frame (-> Degraded). *)
let service_handler ~grpname ~epsilon ~shock ~triple_cache (req : Service.request) =
  let grp = Group.by_name grpname in
  let executor =
    match Service.request_executor req with Ok e -> e | Error m -> failwith m
  in
  let model = match req.Service.workload with Service.En -> `En | Service.Egj -> `Egj in
  let preprocess = req.Service.preprocess || triple_cache <> None in
  let report, _tds =
    run_model model ~grp ~k:req.Service.k ~epsilon ~iterations:req.Service.iterations
      ~seed:req.Service.seed ~core:req.Service.core ~periphery:req.Service.periphery
      ~shock ~ot_mode:req.Service.ot_mode ~slice_width:req.Service.slice_width
      ~preprocess ~triple_cache ~executor ~obs_level:Obs.Full ~fault_plan:Fault.empty
      ~max_retries:2 ~backoff:0.05
  in
  {
    Service.output = report.Engine.output;
    mpc_rounds = report.Engine.mpc_rounds;
    mpc_and_gates = report.Engine.mpc_and_gates;
    mpc_ots = report.Engine.mpc_ots;
    trace = Obs.trace_json report.Engine.obs;
    metrics = Obs.metrics_json report.Engine.obs;
  }

let serve socket listen workers queue_depth log_level slow_request grpname epsilon shock
    triple_cache =
  let listen_addr =
    match listen with
    | Some spec ->
        let host, port = parse_host_port spec in
        Service.Tcp (host, port)
    | None -> Service.Unix_socket socket
  in
  let listener, addr = Service.bind_listener listen_addr in
  let pool_opts =
    { Service.default_pool_opts with
      Service.workers;
      queue_depth;
      slow_request_s = slow_request;
    }
  in
  let log =
    match log_level with
    | None -> Log.nop
    | Some level -> Log.create ~level ~capacity:256 ~sink:Log.stderr_sink ()
  in
  let handler = service_handler ~grpname ~epsilon ~shock ~triple_cache in
  Service.serve ~pool_opts ~log
    ~ready:(fun ~addr ->
      Printf.printf "dstress: serving on %s (%d persistent workers, queue depth %d)\n%!"
        addr workers queue_depth)
    ~handler ~listener ~addr ();
  print_endline "dstress: drained"

let serve_cmd =
  let doc =
    "Run a clearing daemon: a persistent worker pool (forked once, reused across \
     requests) serving concurrent DSTRESS-REQ/1 requests over a Unix socket or TCP."
  in
  let socket =
    Arg.(
      value & opt string default_socket
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket to listen on.")
  in
  let listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"HOST:PORT"
          ~doc:"Listen on TCP instead of the Unix socket; port 0 picks an ephemeral one.")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "service-workers" ] ~docv:"INT"
          ~doc:"Persistent worker processes, forked once at startup.")
  in
  let queue_depth =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"INT"
          ~doc:
            "Bound on requests queued for dispatch; submissions past it are rejected \
             with typed backpressure.")
  in
  let log_level =
    let levels =
      ("off", None)
      :: List.map
           (fun l -> (Log.level_name l, Some l))
           [ Log.Error; Log.Warn; Log.Info; Log.Debug ]
    in
    Arg.(
      value
      & opt (enum levels) (Some Log.Info)
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Structured-log threshold for the daemon's wall-domain event log \
             (logfmt lines on stderr, last 256 kept for the stats endpoint): off, \
             error, warn, info or debug. Tick-domain request exports are \
             byte-identical at every level.")
  in
  let slow_request =
    Arg.(
      value
      & opt float Service.default_pool_opts.Service.slow_request_s
      & info [ "slow-request" ] ~docv:"SECONDS"
          ~doc:
            "Log a request at warn level when its end-to-end time (submit to \
             reply) exceeds this many seconds.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const serve $ socket $ listen $ workers $ queue_depth $ log_level $ slow_request
      $ group_arg $ epsilon_arg $ shock_arg $ triple_cache_arg)

let request socket connect model seed core periphery iterations k slice_width ot_mode
    preprocess executor_spec timeout trace metrics =
  let conn =
    match connect with
    | Some spec ->
        let host, port = parse_host_port spec in
        Transport.connect_tcp ~attempts:20 ~backoff:0.02 ~host ~port ()
    | None -> Transport.connect ~attempts:20 ~backoff:0.02 ~path:socket ()
  in
  let req =
    {
      Service.workload = (match model with `En -> Service.En | `Egj -> Service.Egj);
      core;
      periphery;
      iterations;
      k;
      seed;
      slice_width;
      ot_mode;
      preprocess;
      executor = Option.value executor_spec ~default:"";
    }
  in
  let response = Fun.protect ~finally:(fun () -> Transport.close conn) (fun () ->
      Service.call ~timeout conn req)
  in
  match response with
  | Service.Completed s ->
      let tds =
        match model with
        | `En -> En_program.decode_output ~scale:en_scale s.Service.output
        | `Egj ->
            Egj_program.decode_output ~scale:egj_scale ~frac:egj_frac s.Service.output
      in
      Printf.printf "DStress noised TDS:   $%.2f\n" tds;
      Printf.printf "rounds: %d  AND gates: %d  OTs: %d\n" s.Service.mpc_rounds
        s.Service.mpc_and_gates s.Service.mpc_ots;
      Option.iter (fun path -> write_file path s.Service.trace) trace;
      Option.iter (fun path -> write_file path s.Service.metrics) metrics
  | Service.Rejected msg ->
      Printf.eprintf "dstress: request rejected: %s\n" msg;
      exit rejected_exit
  | Service.Degraded msg ->
      Printf.eprintf "dstress: request degraded: %s\n" msg;
      exit degraded_exit

let request_cmd =
  let doc =
    "Submit one clearing request to a running daemon and print the result. Exit \
     status: 0 completed, 3 degraded, 4 rejected."
  in
  let socket =
    Arg.(
      value & opt string default_socket
      & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon Unix socket.")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"HOST:PORT" ~doc:"Connect over TCP instead.")
  in
  let timeout =
    Arg.(
      value & opt float 120.0
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Wait this long for the response.")
  in
  Cmd.v
    (Cmd.info "request" ~doc)
    Term.(
      const request $ socket $ connect $ model_arg $ seed_arg $ core_arg $ periphery_arg
      $ iterations_arg $ k_arg $ slice_width_arg $ ot_arg $ preprocess_arg $ executor_arg
      $ timeout $ trace_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* stats command                                                       *)
(* ------------------------------------------------------------------ *)

let stats socket connect timeout json =
  (* A scrape must fail fast when no daemon is listening: 5 attempts of
     jittered-exponential backoff stay under a second, unlike the
     request client's patient retry (which tolerates a daemon that is
     still starting up). *)
  let conn =
    try
      match connect with
      | Some spec ->
          let host, port = parse_host_port spec in
          Transport.connect_tcp ~attempts:5 ~backoff:0.02 ~host ~port ()
      | None -> Transport.connect ~attempts:5 ~backoff:0.02 ~path:socket ()
    with Transport.Error err ->
      Printf.eprintf "dstress: cannot reach daemon: %s\n"
        (Transport.error_message err);
      exit 1
  in
  let st =
    Fun.protect
      ~finally:(fun () -> Transport.close conn)
      (fun () -> Service.fetch_stats ~timeout conn)
  in
  Option.iter
    (fun path -> write_file path (Dstress_obs.Json.to_string (Service.stats_to_json st)))
    json;
  print_string (Service.stats_prometheus st)

let stats_cmd =
  let doc =
    "Scrape a running daemon's live telemetry — uptime, per-worker state, queue \
     depth, request counters and latency quantiles — as Prometheus-style text on \
     stdout. The stats request is answered even while the daemon is draining."
  in
  let socket =
    Arg.(
      value & opt string default_socket
      & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon Unix socket.")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"HOST:PORT" ~doc:"Connect over TCP instead.")
  in
  let timeout =
    Arg.(
      value & opt float 10.0
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Wait this long for the snapshot.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the snapshot as a dstress-stats/1 JSON document to FILE.")
  in
  Cmd.v
    (Cmd.info "stats" ~doc)
    Term.(const stats $ socket $ connect $ timeout $ json)

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc = "differentially private computations on distributed graphs" in
  Cmd.group
    (Cmd.info "dstress" ~version:"1.0.0" ~doc)
    [
      stress_cmd;
      project_cmd;
      privacy_cmd;
      baseline_cmd;
      scenarios_cmd;
      transport_cmd;
      serve_cmd;
      request_cmd;
      stats_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
