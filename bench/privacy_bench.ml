(* Privacy analytics: the §4.5 utility computation, the Appendix B
   edge-privacy budget, and the Appendix C contagion scenarios. These are
   analytic/Monte-Carlo reproductions of the paper's numbers. *)

open Bench_util
module Utility = Dstress_costmodel.Utility
module Edge_privacy = Dstress_transfer.Edge_privacy
module Reference = Dstress_risk.Reference
module Banking = Dstress_graphgen.Banking

let utility ~quick () =
  header "Utility analysis (§4.5)";
  let p = Utility.paper_policy in
  let eps = Utility.epsilon_for_accuracy p in
  Printf.printf "policy: eps_max = ln 2 = %.4f, T = $%.0fB, s = %.0f, target +-$%.0fB @ %.0f%%\n"
    p.Utility.epsilon_max (p.Utility.granularity_dollars /. 1e9) p.Utility.sensitivity
    (p.Utility.accuracy_dollars /. 1e9)
    (100.0 *. p.Utility.confidence);
  Printf.printf "  eps_query           = %.4f   (paper: 0.23)\n" eps;
  Printf.printf "  runs per year       = %d        (paper: ~3)\n" (Utility.runs_per_year p);
  Printf.printf "  noise scale         = $%.1fB\n"
    (Utility.noise_scale_dollars p ~epsilon:eps /. 1e9);
  let samples = if quick then 20_000 else 200_000 in
  let stats = Utility.monte_carlo (Prng.of_int 0x7171) p ~epsilon:eps ~samples in
  Printf.printf "  Monte Carlo (%d draws): mean |err| $%.1fB, p95 $%.1fB, within target %.1f%%\n"
    samples
    (stats.Utility.mean_abs_error /. 1e9)
    (stats.Utility.p95_abs_error /. 1e9)
    (100.0 *. stats.Utility.within_target);
  (* Early-warning utility: 2015 DFAST-scale TDS (~$500B, considered
     safe) vs a $1.5T crisis, flagged at $1T. *)
  let tp, fp =
    Utility.detection_rate (Prng.of_int 0x7272) p ~epsilon:eps ~crisis_tds:1500e9
      ~calm_tds:500e9 ~threshold:1000e9 ~samples
  in
  Printf.printf "  crisis detection at $1T threshold: TPR %.3f, FPR %.3f\n" tp fp;
  record "utility"
    ~params:[ ("samples", Json.Int samples) ]
    ~counters:[ ("runs_per_year", Utility.runs_per_year p) ]
    ~floats:
      [
        ("eps_query", eps);
        ("mean_abs_error_b", stats.Utility.mean_abs_error /. 1e9);
        ("p95_abs_error_b", stats.Utility.p95_abs_error /. 1e9);
        ("within_target", stats.Utility.within_target);
        ("tpr", tp);
        ("fpr", fp);
      ]

let appendix_b ~quick:_ () =
  header "Edge-privacy budget (Appendix B)";
  let report = Edge_privacy.analyze Edge_privacy.paper_example in
  Format.printf "%a@." Edge_privacy.pp_report report;
  Printf.printf
    "(paper's concrete example: Delta = 20, N_q ~ 370 billion, eps/iteration ~ 0.0014,\n\
    \ ~0.0469 of the alpha-budget per year)\n";
  (* Paper's own N_l estimate (230M entries) for direct comparison. *)
  let cfg = Edge_privacy.paper_example in
  let alpha = Edge_privacy.max_alpha cfg ~table_entries:230e6 in
  record "budget"
    ~floats:
      [
        ("alpha_max", alpha);
        ("eps_per_iteration", Edge_privacy.per_iteration_epsilon cfg ~alpha);
      ];
  Printf.printf "with the paper's N_l = 230e6: alpha_max = %.9f (paper: 0.999999766), eps/iter = %.4f\n"
    alpha
    (Edge_privacy.per_iteration_epsilon cfg ~alpha)

let appendix_c ~quick:_ () =
  header "Contagion scenarios on the two-tier network (Appendix C)";
  Printf.printf "(50 banks: 10 densely connected core + 40 regional, Eisenberg-Noe)\n\n";
  Printf.printf "%-10s %12s %18s %22s\n" "scenario" "TDS" "converged round" "TDS at I=log2(n)+2";
  List.iter
    (fun (name, shock) ->
      let inst, _topo = Banking.appendix_c_network (Prng.of_int 0xAC) shock in
      let full = Reference.eisenberg_noe ~iterations:60 inst in
      let short = Reference.eisenberg_noe ~iterations:8 inst in
      record name
        ~counters:[ ("rounds_to_converge", full.Reference.en_rounds_to_converge) ]
        ~floats:
          [ ("tds", full.Reference.en_tds); ("tds_short", short.Reference.en_tds) ];
      Printf.printf "%-10s %12.2f %18d %16.2f (%.1f%%)\n" name full.Reference.en_tds
        full.Reference.en_rounds_to_converge short.Reference.en_tds
        (100.0 *. short.Reference.en_tds /. Float.max full.Reference.en_tds 1e-9))
    [ ("absorbed", Banking.Absorbed); ("cascade", Banking.Cascade) ];
  Printf.printf
    "\nShape targets: shocks either stay in the periphery (absorbed) or take the core\n\
     down (cascade, TDS an order of magnitude larger); I = log2 N iterations suffice.\n";
  (* TDS vs iteration count: the convergence trajectory. *)
  subheader "TDS vs iteration count (cascade)";
  let inst, _ = Banking.appendix_c_network (Prng.of_int 0xAC) Banking.Cascade in
  List.iter
    (fun i ->
      let r = Reference.eisenberg_noe ~iterations:i inst in
      Printf.printf "  I=%2d: TDS %.2f\n" i r.Reference.en_tds)
    [ 1; 2; 3; 4; 6; 8; 12; 20; 40 ]
