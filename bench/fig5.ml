(* Figure 5: end-to-end runs of Eisenberg–Noe and Elliott–Golub–Jackson,
   with per-phase time and per-node traffic, as a function of block size.

   The paper runs N = 100 banks with D = 10 and I = 7; all 100 EC2 nodes
   work in parallel. This testbed simulates every node on one core, so the
   default downscales the network (documented in EXPERIMENTS.md) while
   keeping the x-axis — the block size — at the paper's values. The shape
   targets are: total time growing roughly quadratically in the block
   size (k+1 memberships x linear per-block cost) and per-node traffic
   roughly linear. *)

open Bench_util
module Engine = Dstress_runtime.Engine
module Graph = Dstress_runtime.Graph
module Obs = Dstress_obs.Obs
module En_program = Dstress_risk.En_program
module Egj_program = Dstress_risk.Egj_program
module Topology = Dstress_graphgen.Topology
module Banking = Dstress_graphgen.Banking

let l = 10

let network ~quick =
  let prng = Prng.of_int 0xF15 in
  (* Full mode needs n > largest block size (a block of k+1 distinct nodes
     must exist). *)
  let n = if quick then 8 else 21 in
  let topo = Topology.erdos_renyi prng ~n ~avg_degree:2.0 ~max_degree:3 in
  (prng, topo)

let run_en ~iterations ~k topo prng =
  let inst = Banking.en_of_topology prng topo () in
  let inst =
    { inst with Dstress_risk.Reference.cash = Array.map (fun c -> c *. 0.3) inst.Dstress_risk.Reference.cash }
  in
  let graph = En_program.graph_of_instance inst in
  let d = max 1 (Graph.max_degree graph) in
  let p = En_program.make ~l ~degree:d ~iterations () in
  let states = En_program.encode_instance inst ~graph ~l ~degree:d ~scale:0.25 in
  let cfg =
    { (Engine.default_config grp ~k ~degree_bound:d ~seed:"fig5-en") with
      Engine.obs_level = Obs.Basic }
  in
  Engine.run cfg p ~graph ~initial_states:states

let run_egj ~iterations ~k topo prng =
  let inst = Banking.egj_of_topology prng topo () in
  let inst =
    { inst with
      Dstress_risk.Reference.base_assets =
        Array.map (fun c -> c *. 0.5) inst.Dstress_risk.Reference.base_assets }
  in
  let graph = Egj_program.graph_of_instance inst in
  let d = max 1 (Graph.max_degree graph) in
  let p = Egj_program.make ~l:12 ~frac:5 ~degree:d ~iterations () in
  let states = Egj_program.encode_instance inst ~graph ~l:12 ~frac:5 ~degree:d ~scale:4.0 in
  let cfg =
    { (Engine.default_config grp ~k ~degree_bound:d ~seed:"fig5-egj") with
      Engine.obs_level = Obs.Basic }
  in
  Engine.run cfg p ~graph ~initial_states:states

(* Wall-clock comes from the report (it is deliberately kept out of the
   deterministic registry); every byte figure is read back from the run's
   metrics registry, exercising the same counters `--metrics` exports. *)
let emit_run name ~block (r : Engine.report) =
  let m = Obs.metrics r.Engine.obs in
  let total = List.fold_left (fun a (_, s) -> a +. s) 0.0 r.Engine.phase_seconds in
  emit
    (Bench_result.make_result
       ~params:[ ("block", Json.Int block) ]
       ~wall:{ Bench_result.median_s = total; min_s = total; p10_s = total; p90_s = total }
       ~counters:(Bench_result.counters_of_metrics m)
       ~floats:
         (Bench_result.floats_of_metrics m
         @ List.map
             (fun (ph, s) -> ("phase." ^ Engine.phase_name ph ^ ".s", s))
             r.Engine.phase_seconds)
       name)

let print_run label ~block (r : Engine.report) =
  let m = Obs.metrics r.Engine.obs in
  let phase_s p = List.assoc p r.Engine.phase_seconds in
  let phase_mb p =
    float_of_int (Obs.Metrics.counter m ("phase." ^ Engine.phase_name p ^ ".bytes"))
    /. 1048576.0
  in
  Printf.printf
    "%-6s %8d | init %6.2f comp %8.2f comm %8.2f agg %7.2f s | total %8.2f s | %8.2f \
     MB/node (comp %.2f comm %.2f MB)\n"
    label block
    (phase_s Engine.Initialization) (phase_s Engine.Computation)
    (phase_s Engine.Communication) (phase_s Engine.Aggregation)
    (List.fold_left (fun a (_, s) -> a +. s) 0.0 r.Engine.phase_seconds)
    (Obs.Metrics.sum m "traffic.mean_node_bytes" /. 1048576.0)
    (phase_mb Engine.Computation) (phase_mb Engine.Communication)

let run ~quick () =
  header "Figure 5: end-to-end EN and EGJ runs vs block size";
  let prng, topo = network ~quick in
  let iterations = 2 in
  let blocks = if quick then [ 4; 8 ] else [ 8; 12; 16; 20 ] in
  Printf.printf
    "(downscaled: N=%d, D<=3, I=%d vs paper's N=100, D=10, I=7 — one core simulates all nodes)\n\n"
    topo.Topology.n iterations;
  Printf.printf "%-6s %8s | %-45s | %10s | %s\n" "model" "block" "phase seconds" "total"
    "traffic";
  let en_totals =
    List.map
      (fun block ->
        let r = run_en ~iterations ~k:(block - 1) topo prng in
        print_run "EN" ~block r;
        emit_run "en" ~block r;
        let t = List.fold_left (fun a (_, s) -> a +. s) 0.0 r.Engine.phase_seconds in
        (block, t))
      blocks
  in
  print_newline ();
  List.iter
    (fun block ->
      let r = run_egj ~iterations ~k:(block - 1) topo prng in
      print_run "EGJ" ~block r;
      emit_run "egj" ~block r)
    blocks;
  (match (en_totals, List.rev en_totals) with
  | (b0, t0) :: _, (b1, t1) :: _ ->
      let time_growth = t1 /. t0 in
      let block_growth = float_of_int b1 /. float_of_int b0 in
      Printf.printf
        "\n  -> EN total time grew x%.1f for a x%.1f block-size increase (paper: ~O(k^2), i.e. x%.1f)\n"
        time_growth block_growth (block_growth *. block_growth)
  | _ -> ())
