(* Offline/online split: the correlated-randomness preprocessing pipeline
   (Gmw.generate_material + attach) vs the single-phase inline path, on
   the paper's EN and EGJ update circuits, both OT backends, scalar and
   64-wide bitsliced evaluation.

   Each configuration emits three rows:

     <tag>-combined   the current single-phase path (setup + OT-extension
                      draws + evaluation, all on the critical path)
     <tag>-offline    generating the material (what moves off the
                      critical path — base-OT setup, colgen draws,
                      per-pair mask bits, PRG snapshots)
     <tag>-online     attaching the material and evaluating: the latency
                      a clearing query actually pays once preprocessing
                      has run

   The combined and online paths must be observationally identical —
   output shares, traffic matrices, round/AND/OT counters — which this
   bench enforces before reporting (the counters also land in the rows,
   so bench_diff gates them exactly against the committed baselines).
   The online row carries the combined/online speedup as a float; the
   EN / simulation / slice-64 point is the headline number (target:
   >= 3x, checked in EXPERIMENTS.md and warned about below). *)

open Bench_util
module Sharing = Dstress_mpc.Sharing
module Plan = Dstress_mpc.Plan
module Egj_program = Dstress_risk.Egj_program
module En_program = Dstress_risk.En_program

let circuit_for ~quick = function
  | `En ->
      let l = if quick then 8 else 10 in
      let p = En_program.make ~l ~degree:2 ~iterations:1 () in
      Vertex_program.update_circuit p ~degree:2
  | `Egj ->
      let l = if quick then 8 else 12 in
      let p = Egj_program.make ~l ~frac:3 ~degree:2 ~iterations:1 () in
      Vertex_program.update_circuit p ~degree:2

let mode_tag = function Ot_ext.Simulation -> "sim" | Ot_ext.Crypto -> "crypto"
let model_tag = function `En -> "en" | `Egj -> "egj"

(* One configuration: [count] independent sessions, [batches] successive
   evaluations each (material is generated for all of them). Returns the
   combined/online speedup. *)
let run_config ~quick ~model ~mode ~width =
  let parties = match mode with Ot_ext.Crypto -> 2 | Ot_ext.Simulation -> 3 in
  let count =
    match (mode, width) with
    | _, 1 -> if quick then 4 else 8
    | Ot_ext.Crypto, _ -> if quick then 2 else 4
    | Ot_ext.Simulation, _ -> if quick then 16 else 64
  in
  let batches = 2 in
  let circuit = circuit_for ~quick model in
  let plan = Plan.of_circuit circuit in
  let tag = Printf.sprintf "%s-%s-w%d" (model_tag model) (mode_tag mode) width in
  let seed i = Printf.sprintf "preprocess-bench:%s:%d" tag i in
  let sessions () =
    Array.init count (fun i -> Gmw.create_session ~mode grp ~parties ~seed:(seed i))
  in
  let dealer = Prg.of_string ("preprocess-bench-inputs:" ^ tag) in
  let inputs =
    Array.init batches (fun _ ->
        Array.init count (fun _ ->
            Sharing.share dealer ~parties (Prg.bits dealer circuit.Circuit.num_inputs)))
  in
  let eval_batch ss batch =
    if width = 1 then Array.mapi (fun i s -> Gmw.eval s circuit ~input_shares:batch.(i)) ss
    else Gmw.eval_many ss circuit ~input_shares:batch
  in
  let combined_sessions = sessions () in
  let combined_out, combined_s =
    time (fun () -> Array.map (fun batch -> eval_batch combined_sessions batch) inputs)
  in
  let mats, offline_s =
    time (fun () ->
        Array.init count (fun i ->
            Gmw.generate_material ~mode grp ~parties ~seed:(seed i) ~slice_width:width
              ~evals:batches plan))
  in
  let online_sessions = sessions () in
  let online_out, online_s =
    time (fun () ->
        Array.iteri (fun i s -> Gmw.attach_material s mats.(i)) online_sessions;
        Array.map (fun batch -> eval_batch online_sessions batch) inputs)
  in
  (* The online path must be observationally indistinguishable. *)
  for b = 0 to batches - 1 do
    for i = 0 to count - 1 do
      for party = 0 to parties - 1 do
        if not (Bitvec.equal combined_out.(b).(i).(party) online_out.(b).(i).(party)) then
          failwith (tag ^ ": output shares differ between combined and online paths")
      done
    done
  done;
  for i = 0 to count - 1 do
    let a = combined_sessions.(i) and b = online_sessions.(i) in
    if not (Traffic.equal (Gmw.traffic a) (Gmw.traffic b)) then
      failwith (tag ^ ": traffic matrices differ between combined and online paths");
    if
      Gmw.rounds a <> Gmw.rounds b
      || Gmw.and_gates_evaluated a <> Gmw.and_gates_evaluated b
      || Gmw.ots_performed a <> Gmw.ots_performed b
    then failwith (tag ^ ": round/AND/OT counters differ")
  done;
  let speedup = combined_s /. online_s in
  let params =
    [
      ("model", Json.Str (model_tag model));
      ("ot", Json.Str (mode_tag mode));
      ("width", Json.Int width);
      ("instances", Json.Int count);
      ("batches", Json.Int batches);
      ("parties", Json.Int parties);
    ]
  in
  let counters_of session =
    [
      ("and_gates", Gmw.and_gates_evaluated session);
      ("ots", Gmw.ots_performed session);
      ("rounds", Gmw.rounds session);
      ("traffic.total_bytes", Traffic.total (Gmw.traffic session));
    ]
  in
  let wall seconds =
    { Bench_result.median_s = seconds; min_s = seconds; p10_s = seconds; p90_s = seconds }
  in
  emit
    (Bench_result.make_result ~params ~wall:(wall combined_s)
       ~counters:(counters_of combined_sessions.(0))
       (tag ^ "-combined"));
  emit
    (Bench_result.make_result ~params ~wall:(wall offline_s)
       ~counters:[ ("evals_generated", count * batches) ]
       (tag ^ "-offline"));
  emit
    (Bench_result.make_result ~params ~wall:(wall online_s)
       ~counters:(counters_of online_sessions.(0))
       ~floats:[ ("speedup_vs_combined", speedup) ]
       (tag ^ "-online"));
  Printf.printf "%-14s %4d inst  %9.3f s  %9.3f s  %9.3f s  %6.2fx\n" tag count combined_s
    offline_s online_s speedup;
  (tag, speedup)

let run ~quick () =
  header "Offline/online split: preprocessing vs single-phase GMW";
  Printf.printf "%-14s %9s  %11s  %11s  %11s  %7s\n" "config" "" "combined" "offline"
    "online" "speedup";
  let speedups =
    List.concat_map
      (fun model ->
        List.concat_map
          (fun mode ->
            List.map (fun width -> run_config ~quick ~model ~mode ~width) [ 1; 64 ])
          [ Ot_ext.Simulation; Ot_ext.Crypto ])
      [ `En; `Egj ]
  in
  (match List.assoc_opt "en-sim-w64" speedups with
  | Some s when s < 3.0 ->
      Printf.printf
        "\n(en-sim-w64 online speedup %.2fx below the 3x target — expected only under \
         --quick or heavy load)\n"
        s
  | Some s -> Printf.printf "\nen-sim-w64 online path %.2fx faster than combined (target 3x)\n" s
  | None -> ())
