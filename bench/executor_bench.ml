(* Sequential vs parallel executor on an end-to-end EN run: the outputs
   must be identical (the runtime's determinism is schedule-independent),
   and on a multi-core machine the compute-heavy phases should speed up
   with the domain count. Records the numbers behind the executor section
   of EXPERIMENTS.md. *)

open Bench_util
module Graph = Dstress_runtime.Graph
module Engine = Dstress_runtime.Engine
module Executor = Dstress_runtime.Executor
module En_program = Dstress_risk.En_program
module Topology = Dstress_graphgen.Topology
module Banking = Dstress_graphgen.Banking

let run ~quick () =
  header "Executor scaling: sequential vs domain pool (EN, N=20, k=2)";
  let n = if quick then 10 else 20 in
  let t = Prng.of_int 0xE8EC in
  let topo = Topology.erdos_renyi t ~n ~avg_degree:1.5 ~max_degree:3 in
  let inst = Banking.en_of_topology t topo () in
  let graph = En_program.graph_of_instance inst in
  let d = max 1 (Graph.max_degree graph) in
  let iterations = 2 in
  let p = En_program.make ~epsilon:1.0 ~sensitivity:1 ~noise_max:30 ~l:10 ~degree:d ~iterations () in
  let states = En_program.encode_instance inst ~graph ~l:10 ~degree:d ~scale:0.25 in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "N=%d, D=%d, k=2, %d iterations; %d core(s) recommended by the runtime\n\n"
    n d iterations cores;
  Printf.printf "%-14s %12s %12s %12s %10s\n" "executor" "wall time" "compute" "communicate"
    "output";
  let measure name executor =
    let cfg =
      { (Engine.default_config grp ~k:2 ~degree_bound:d ~seed:"exec-bench") with
        Engine.executor }
    in
    let r, seconds = time (fun () -> Engine.run cfg p ~graph ~initial_states:states) in
    (* The jobs count is machine-dependent, so it stays out of the row's
       identity; the output counter must match across executors anyway. *)
    emit
      (Bench_result.make_result
         ~wall:
           { Bench_result.median_s = seconds; min_s = seconds; p10_s = seconds;
             p90_s = seconds }
         ~counters:[ ("output", r.Engine.output) ]
         ~floats:
           [
             ("compute_s", List.assoc Engine.Computation r.Engine.phase_seconds);
             ("communicate_s", List.assoc Engine.Communication r.Engine.phase_seconds);
           ]
         name);
    Printf.printf "%-14s %10.2f s %10.2f s %10.2f s %10d\n%!" (Executor.name executor)
      seconds
      (List.assoc Engine.Computation r.Engine.phase_seconds)
      (List.assoc Engine.Communication r.Engine.phase_seconds)
      r.Engine.output;
    r
  in
  let seq = measure "sequential" Executor.sequential in
  (* The forked backend must run before the domain pool: OCaml 5 forbids
     Unix.fork once any domain has been spawned in the process. *)
  let dist = measure "distributed" (Executor.distributed ~workers:2 ()) in
  let jobs = if cores > 1 then min cores 4 else 4 in
  let par = measure "parallel" (Executor.parallel ~jobs) in
  List.iter
    (fun (label, r) ->
      if seq.Engine.output <> r.Engine.output then
        failwith ("executor_bench: " ^ label ^ " backend disagrees on the output");
      if seq.Engine.phase_bytes <> r.Engine.phase_bytes then
        failwith ("executor_bench: " ^ label ^ " backend disagrees on phase traffic"))
    [ ("parallel", par); ("distributed", dist) ];
  let phase ph r = List.assoc ph r.Engine.phase_seconds in
  Printf.printf
    "\nidentical outputs and per-phase traffic; compute-phase speedup %.2fx on %d worker(s)\n"
    (phase Engine.Computation seq /. phase Engine.Computation par)
    jobs;
  Printf.printf "distributed backend (2 forked workers) compute-phase ratio %.2fx vs sequential\n"
    (phase Engine.Computation dist /. phase Engine.Computation seq);
  if cores = 1 then
    Printf.printf "(single-core machine: domain-pool overhead, no speedup expected)\n"
