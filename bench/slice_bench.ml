(* Bitsliced GMW fast path: scalar per-instance evaluation vs 64-wide
   int64 packing (Gmw.eval_many) on the paper's EN update circuit. Every
   vertex of a block runs the same circuit per computation step, so the
   engine packs up to 64 of them into one sliced evaluation; this bench
   isolates that kernel and checks the contract — byte-identical output
   shares, traffic matrices and round/AND/OT counters — while measuring
   the speedup. Records the numbers behind the gmw-slice section of
   EXPERIMENTS.md. *)

open Bench_util
module Sharing = Dstress_mpc.Sharing

let run ~quick () =
  let count = if quick then 16 else 64 in
  let block = 8 in
  let l = 10 and degree = 2 in
  header
    (Printf.sprintf "Bitsliced GMW: %d EN-step instances, block %d (Simulation OT)" count
       block);
  let p = Dstress_risk.En_program.make ~l ~degree ~iterations:1 () in
  let circuit = Vertex_program.update_circuit p ~degree in
  let stats = Circuit.stats circuit in
  Printf.printf "update circuit: %d gates, %d ANDs, AND depth %d, %d parties\n\n"
    stats.Circuit.gates stats.Circuit.ands stats.Circuit.depth block;
  let sessions () =
    Array.init count (fun i ->
        Gmw.create_session ~mode:Ot_ext.Simulation grp ~parties:block
          ~seed:(Printf.sprintf "slice-bench:%d" i))
  in
  let dealer = Prg.of_string "slice-bench-inputs" in
  let inputs =
    Array.init count (fun _ ->
        Sharing.share dealer ~parties:block (Prg.bits dealer circuit.Circuit.num_inputs))
  in
  let scalar_sessions = sessions () and sliced_sessions = sessions () in
  let scalar, scalar_s =
    time (fun () ->
        Array.mapi (fun i s -> Gmw.eval s circuit ~input_shares:inputs.(i)) scalar_sessions)
  in
  let sliced, sliced_s =
    time (fun () -> Gmw.eval_many sliced_sessions circuit ~input_shares:inputs)
  in
  (* The sliced path must be observably indistinguishable per instance. *)
  for i = 0 to count - 1 do
    for party = 0 to block - 1 do
      if not (Bitvec.equal scalar.(i).(party) sliced.(i).(party)) then
        failwith "slice_bench: output shares differ"
    done;
    let a = scalar_sessions.(i) and b = sliced_sessions.(i) in
    if not (Traffic.equal (Gmw.traffic a) (Gmw.traffic b)) then
      failwith "slice_bench: traffic matrices differ";
    if
      Gmw.rounds a <> Gmw.rounds b
      || Gmw.and_gates_evaluated a <> Gmw.and_gates_evaluated b
      || Gmw.ots_performed a <> Gmw.ots_performed b
    then failwith "slice_bench: round/AND/OT counters differ"
  done;
  let emit_path name seconds session =
    emit
      (Bench_result.make_result
         ~params:[ ("instances", Json.Int count); ("block", Json.Int block) ]
         ~wall:
           { Bench_result.median_s = seconds; min_s = seconds; p10_s = seconds;
             p90_s = seconds }
         ~throughput:("instances", float_of_int count /. seconds)
         ~counters:
           [
             ("and_gates", Gmw.and_gates_evaluated session);
             ("ots", Gmw.ots_performed session);
             ("rounds", Gmw.rounds session);
             ("traffic.total_bytes", Traffic.total (Gmw.traffic session));
           ]
         name)
  in
  emit_path "scalar" scalar_s scalar_sessions.(0);
  emit_path "sliced" sliced_s sliced_sessions.(0);
  Printf.printf "%-10s %12s %16s\n" "path" "wall time" "per instance";
  Printf.printf "%-10s %10.3f s %13.2f ms\n" "scalar" scalar_s
    (1000.0 *. scalar_s /. float_of_int count);
  Printf.printf "%-10s %10.3f s %13.2f ms\n" "sliced" sliced_s
    (1000.0 *. sliced_s /. float_of_int count);
  let speedup = scalar_s /. sliced_s in
  Printf.printf
    "\nidentical outputs, traffic matrices and counters across %d instances; speedup %.2fx\n"
    count speedup;
  if speedup < 4.0 then
    Printf.printf "(below the 4x target — expected only under --quick or heavy load)\n"
