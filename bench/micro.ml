(* Bechamel microbenchmarks of the cryptographic primitives — the unit
   costs everything else is built from. *)

open Bench_util
module Nat = Dstress_bignum.Nat
module Exp_elgamal = Dstress_crypto.Exp_elgamal
module Sha256 = Dstress_crypto.Sha256

let make_tests () =
  let open Bechamel in
  let prg = Prg.of_string "micro" in
  let exponent = Group.random_exponent prg grp in
  let grp_std = Group.by_name "standard" in
  let exponent_std = Group.random_exponent prg grp_std in
  let g_std = Group.g grp_std in
  let _, pk = Exp_elgamal.keygen prg grp in
  let msg = Bytes.make 64 'x' in
  [
    Test.make ~name:"modexp-64bit-group" (Staged.stage (fun () -> Group.pow_g grp exponent));
    Test.make ~name:"modexp-256bit-group"
      (Staged.stage (fun () -> Group.pow_g grp_std exponent_std));
    (* Same base and exponent through the generic square-and-multiply
       path: the gap is what the fixed-base window table buys. *)
    Test.make ~name:"modexp-256bit-generic"
      (Staged.stage (fun () -> Group.pow grp_std g_std exponent_std));
    Test.make ~name:"exp-elgamal-encrypt"
      (Staged.stage (fun () -> Exp_elgamal.encrypt prg grp pk 5));
    Test.make ~name:"sha256-64B" (Staged.stage (fun () -> Sha256.digest msg));
  ]

let run ~quick:_ () =
  header "Microbenchmarks (Bechamel)";
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 200) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"crypto" (make_tests ())) in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) i raw) instances
  in
  let merged = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instances results in
  let estimates = ref [] in
  Hashtbl.iter
    (fun name tbl ->
      Hashtbl.iter
        (fun test result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] ->
              estimates := (test ^ ".ns_per_op", est) :: !estimates;
              Printf.printf "%-40s %12.1f ns/op (%s)\n" test est name
          | _ -> Printf.printf "%-40s (no estimate)\n" test)
        tbl)
    merged;
  record "primitives" ~floats:!estimates
