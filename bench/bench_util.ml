(* Shared plumbing for the figure-reproduction harness.

   Besides the human-oriented table printers, this module is the funnel
   every benchmark reports through: [measure]/[emit] append typed
   {!Bench_result.result} rows to the suite opened by [begin_suite], and
   [main.ml] collects the finished suites into one machine-comparable
   JSON document (see Bench_result for the schema and Bench_diff for the
   regression gate). *)

module Bitvec = Dstress_util.Bitvec
module Prng = Dstress_util.Prng
module Prg = Dstress_crypto.Prg
module Group = Dstress_crypto.Group
module Ot_ext = Dstress_crypto.Ot_ext
module Circuit = Dstress_circuit.Circuit
module Gmw = Dstress_mpc.Gmw
module Traffic = Dstress_mpc.Traffic
module Vertex_program = Dstress_runtime.Vertex_program
module Obs = Dstress_obs.Obs
module Json = Dstress_obs.Json
module Bench_result = Dstress_obs.Bench_result

let grp = Group.by_name "toy"

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let mb bytes = float_of_int bytes /. 1048576.0

let header title =
  Printf.printf "\n=== %s ===\n%!" title

let subheader title = Printf.printf "--- %s ---\n%!" title

(* ------------------------------------------------------------------ *)
(* Result collection                                                   *)
(* ------------------------------------------------------------------ *)

let current : (string * Bench_result.result list ref) option ref = ref None
let collected : Bench_result.suite list ref = ref []

let begin_suite name = current := Some (name, ref [])

let end_suite () =
  match !current with
  | None -> ()
  | Some (name, rows) ->
      collected :=
        { Bench_result.suite = name; results = List.rev !rows } :: !collected;
      current := None

(* Append a row to the open suite. A bench invoked outside the harness
   (no open suite) just prints its tables; emission is a no-op. *)
let emit row =
  match !current with None -> () | Some (_, rows) -> rows := row :: !rows

let collected_doc ~mode = { Bench_result.mode; suites = List.rev !collected }

(* [measure ~name f] times [f] ([warmup] untimed runs, then [repeats]
   timed ones), emits a row summarising the wall samples, and returns the
   last run's value. [telemetry] turns that value into the row's
   (counters, floats); [items = (unit, count)] derives a throughput from
   the median repeat. Stateful benches that cannot re-run keep the
   default [repeats = 1]. *)
let measure ?(repeats = 1) ?(warmup = 0) ?(params = []) ?items ?telemetry ~name
    f =
  for _ = 1 to warmup do
    ignore (f ())
  done;
  let samples = ref [] and last = ref None in
  for _ = 1 to repeats do
    let v, s = time f in
    samples := s :: !samples;
    last := Some v
  done;
  let v = match !last with Some v -> v | None -> invalid_arg "measure: repeats < 1" in
  let wall = Bench_result.wall_of_samples !samples in
  let throughput =
    match items with
    | Some (unit_, count) when wall.Bench_result.median_s > 0.0 ->
        Some (unit_, count /. wall.Bench_result.median_s)
    | _ -> None
  in
  let counters, floats =
    match telemetry with None -> ([], []) | Some t -> t v
  in
  emit
    (Bench_result.make_result ~params ~repeats ~warmup ~wall ?throughput
       ~counters ~floats name);
  v

(* Row without its own timing — analytic results, closed forms, numbers
   extracted from an engine report. *)
let record ?(params = []) ?(counters = []) ?(floats = []) name =
  emit (Bench_result.make_result ~params ~counters ~floats name)

(* ------------------------------------------------------------------ *)
(* GMW circuit points                                                  *)
(* ------------------------------------------------------------------ *)

(* Evaluate one circuit under GMW with [block] parties on random shared
   inputs; returns (simulated seconds, per-party mean bytes). The
   simulated time serializes all parties; the per-party wall-clock
   estimate divides the pairwise work among the block. *)
type mpc_point = {
  block : int;
  sim_seconds : float;
  per_party_seconds : float;
  per_party_mb : float;
  total_bytes : int;
  ands : int;
}

let run_mpc_circuit ?(seed = "bench") circuit ~block =
  let session = Gmw.create_session ~mode:Ot_ext.Simulation grp ~parties:block ~seed in
  let prng = Prng.of_int (Hashtbl.hash seed) in
  let inputs = Bitvec.random prng circuit.Circuit.num_inputs in
  let input_shares = Gmw.share_input session inputs in
  let _, sim_seconds = time (fun () -> ignore (Gmw.eval session circuit ~input_shares)) in
  let traffic = Gmw.traffic session in
  {
    block;
    sim_seconds;
    per_party_seconds = sim_seconds *. 2.0 /. float_of_int block;
    per_party_mb = Traffic.mean_per_node traffic /. 1048576.0;
    total_bytes = Traffic.total traffic;
    ands = Circuit.and_count circuit;
  }

(* The typed-row counterpart of [print_mpc_table]: AND count and traffic
   bytes are deterministic counters, the timing split informational. *)
let emit_mpc_point ?(params = []) name p =
  emit
    (Bench_result.make_result
       ~params:(("block", Json.Int p.block) :: params)
       ~wall:
         {
           Bench_result.median_s = p.sim_seconds;
           min_s = p.sim_seconds;
           p10_s = p.sim_seconds;
           p90_s = p.sim_seconds;
         }
       ~counters:[ ("and_gates", p.ands); ("traffic.total_bytes", p.total_bytes) ]
       ~floats:
         [
           ("per_party_s", p.per_party_seconds); ("per_party_mb", p.per_party_mb);
         ]
       name)

let print_mpc_table ~label points =
  Printf.printf "%-28s %8s %10s %12s %12s %10s\n" label "block" "ANDs" "sim time" "time/party"
    "MB/party";
  List.iter
    (fun p ->
      Printf.printf "%-28s %8d %10d %10.2f s %10.2f s %10.3f\n" "" p.block p.ands
        p.sim_seconds p.per_party_seconds p.per_party_mb)
    points;
  print_newline ()

(* Linear-shape check used in the printed commentary: ratio of the cost
   at the largest parameter to the smallest, versus the parameter ratio. *)
let growth_factor points value =
  match (points, List.rev points) with
  | first :: _, last :: _ -> value last /. value first
  | _ -> nan
