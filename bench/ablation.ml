(* Design-choice ablations called out in DESIGN.md: aggregation topology
   and degree bucketing (§3.7). The transfer-protocol strawman ablation
   lives in Transfer_bench. *)

open Bench_util
module Engine = Dstress_runtime.Engine
module Graph = Dstress_runtime.Graph
module En_program = Dstress_risk.En_program
module Topology = Dstress_graphgen.Topology
module Banking = Dstress_graphgen.Banking
module Projection = Dstress_costmodel.Projection

let aggregation ~quick () =
  header "Ablation: single aggregation block vs two-level tree (§3.6)";
  let prng = Prng.of_int 0xAB1 in
  let n = if quick then 8 else 12 in
  let topo = Topology.erdos_renyi prng ~n ~avg_degree:2.0 ~max_degree:4 in
  let inst = Banking.en_of_topology prng topo () in
  let graph = En_program.graph_of_instance inst in
  let d = max 1 (Graph.max_degree graph) in
  let p = En_program.make ~l:12 ~degree:d ~iterations:1 () in
  let states = En_program.encode_instance inst ~graph ~l:12 ~degree:d ~scale:0.25 in
  Printf.printf "%-22s %12s %14s %10s\n" "aggregation" "agg time" "agg bytes" "output";
  List.iter
    (fun (name, label, agg) ->
      let cfg =
        { (Engine.default_config grp ~k:3 ~degree_bound:d ~seed:"ablation-agg") with
          Engine.aggregation = agg }
      in
      let r = Engine.run cfg p ~graph ~initial_states:states in
      let agg_s = List.assoc Engine.Aggregation r.Engine.phase_seconds in
      emit
        (Bench_result.make_result
           ~wall:
             { Bench_result.median_s = agg_s; min_s = agg_s; p10_s = agg_s;
               p90_s = agg_s }
           ~counters:
             [
               ("agg_bytes", List.assoc Engine.Aggregation r.Engine.phase_bytes);
               ("output", r.Engine.output);
             ]
           name);
      Printf.printf "%-22s %10.3f s %12d B %10d\n" label agg_s
        (List.assoc Engine.Aggregation r.Engine.phase_bytes)
        r.Engine.output)
    [
      ("single-block", "single block", Engine.Single_block);
      ("two-level", "two-level (fanout 4)", Engine.Two_level 4);
    ];
  Printf.printf
    "\nThe root block's circuit shrinks from N inputs to N/fanout, trading total\n\
     bytes for parallel leaf evaluations — the paper's fix for the aggregation\n\
     bottleneck at large N.\n"

let degree_bucketing ~quick:_ () =
  header "Ablation: degree bucketing vs a single conservative bound (§3.7)";
  (* A conservative D=100 bound forces every bank into the big circuit;
     two buckets let low-degree banks run a much smaller one. Closed-form
     AND counts make the trade-off concrete. *)
  let l = 12 in
  let small = Projection.update_ands ~l ~d:10 in
  let big = Projection.update_ands ~l ~d:100 in
  Printf.printf "update-circuit AND gates: D=10 -> %d, D=100 -> %d (x%.1f)\n" small big
    (float_of_int big /. float_of_int small);
  (* Suppose 90%% of banks have degree <= 10 (the two-tier structure). *)
  let blended = (0.9 *. float_of_int small) +. (0.1 *. float_of_int big) in
  record "buckets"
    ~counters:[ ("ands_d10", small); ("ands_d100", big) ]
    ~floats:[ ("blended_ands", blended) ];
  Printf.printf
    "with 90%% of banks in a D=10 bucket: mean %.0f ANDs per step, x%.1f cheaper than\n\
     the uniform D=100 bound — at the cost of revealing each bank's bucket.\n"
    blended
    (float_of_int big /. blended)

let twopc ~quick () =
  header "Garbled circuits (2PC) vs two-party GMW (§6 related work)";
  (* The paper argues full MPC is orders of magnitude slower than 2PC but
     2PC cannot give the same guarantees for >2 parties; this comparison
     makes the per-circuit cost difference concrete on our own backends. *)
  let d = if quick then 5 else 10 in
  let p = En_program.make ~l:12 ~degree:d ~iterations:1 () in
  let circuit = Dstress_runtime.Vertex_program.update_circuit p ~degree:d in
  let inputs_bits = circuit.Circuit.num_inputs in
  let prng = Prng.of_int 0x2BC in
  let inputs = Bitvec.random prng inputs_bits in
  let half = inputs_bits / 2 in
  (* Garbled 2PC. *)
  let meter = Dstress_crypto.Xfer.create () in
  let garble_result, garble_secs =
    time (fun () ->
        Dstress_crypto.Garble.execute ~mode:Ot_ext.Simulation grp meter circuit
          ~garbler_bits:half
          ~garbler_input:(Bitvec.sub inputs ~pos:0 ~len:half)
          ~evaluator_input:(Bitvec.sub inputs ~pos:half ~len:(inputs_bits - half))
          ~seed:"2pc")
  in
  (* Two-party GMW on the same circuit. *)
  let session = Gmw.create_session ~mode:Ot_ext.Simulation grp ~parties:2 ~seed:"2pc-gmw" in
  let shares = Gmw.share_input session inputs in
  let _, gmw_secs = time (fun () -> ignore (Gmw.eval session circuit ~input_shares:shares)) in
  let gmw_bytes = Traffic.total (Gmw.traffic session) in
  Printf.printf "EN step circuit (D=%d): %d AND gates, depth %d\n\n" d
    (Circuit.and_count circuit) (Circuit.and_depth circuit);
  let wall_of s =
    { Bench_result.median_s = s; min_s = s; p10_s = s; p90_s = s }
  in
  emit
    (Bench_result.make_result ~wall:(wall_of garble_secs)
       ~params:[ ("d", Json.Int d) ]
       ~counters:
         [
           ("bytes", Dstress_crypto.Xfer.total meter);
           ("and_gates", Circuit.and_count circuit);
         ]
       "garbled");
  emit
    (Bench_result.make_result ~wall:(wall_of gmw_secs)
       ~params:[ ("d", Json.Int d) ]
       ~counters:[ ("bytes", gmw_bytes); ("rounds", Gmw.rounds session) ]
       "gmw-2pc");
  Printf.printf "%-18s %12s %14s %10s\n" "backend" "time" "bytes" "rounds";
  Printf.printf "%-18s %9.3f s %12d B %10s\n" "garbled (Yao)" garble_secs
    (Dstress_crypto.Xfer.total meter) "O(1)";
  Printf.printf "%-18s %9.3f s %12d B %10d\n" "GMW (2 parties)" gmw_secs gmw_bytes
    (Gmw.rounds session);
  ignore garble_result;
  Printf.printf
    "\nGarbling ships 64 B per AND once and runs in constant rounds; GMW pays OT\n\
     traffic per AND but generalizes to k+1 parties — which is what DStress's\n\
     collusion bound requires (a 2PC backend cannot hide the graph from the two\n\
     parties themselves, cf. GraphSC).\n"
