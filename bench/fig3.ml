(* Figures 3 and 4: microbenchmarks of the five MPC circuit types.

   Left side: cost vs block size at fixed shape (EN/EGJ step at D = 100,
   aggregation at N = 100, noising). Right side: cost vs degree bound D
   and vs aggregation width N at fixed block size. Each run reports both
   computation time (Figure 3) and per-node traffic (Figure 4), since one
   execution yields both measurements. *)

open Bench_util
module En_program = Dstress_risk.En_program
module Egj_program = Dstress_risk.Egj_program

let l = 12

let en_step_circuit ~d =
  let p = En_program.make ~l ~degree:d ~iterations:1 () in
  Vertex_program.update_circuit p ~degree:d

let egj_step_circuit ~d =
  let p = Egj_program.make ~l ~frac:6 ~degree:d ~iterations:1 () in
  Vertex_program.update_circuit p ~degree:d

let agg_circuit ~n =
  let p = En_program.make ~l ~degree:1 ~iterations:1 () in
  Vertex_program.aggregate_circuit p ~count:n

let noising_circuit ~magnitude =
  let p = En_program.make ~noise_max:magnitude ~l ~degree:1 ~iterations:1 () in
  Vertex_program.combine_circuit p ~count:1 ~noised:true

(* The initialization step is not an MPC in this implementation: each node
   locally XOR-shares its state and D no-op messages and sends one share
   per block member. We report its (tiny) local cost and traffic for
   completeness. *)
let init_point ~d ~block =
  let bits = En_program.state_bits ~l ~degree:d + (d * l) in
  let prg = Prg.of_string "bench-init" in
  let v = Prg.bits prg bits in
  let (_ : Bitvec.t array), seconds =
    time (fun () -> Dstress_mpc.Sharing.share prg ~parties:block v)
  in
  let bytes = (block - 1) * (((bits + 7) / 8) + Group.element_bytes grp) in
  { block; sim_seconds = seconds; per_party_seconds = seconds;
    per_party_mb = mb bytes; total_bytes = bytes; ands = 0 }

let left ~quick () =
  header "Figure 3 (left) + Figure 4: MPC cost vs block size";
  let blocks = if quick then [ 4; 8; 12 ] else [ 8; 12; 16; 20 ] in
  let d = if quick then 30 else 100 in
  let n_agg = if quick then 40 else 100 in
  let magnitude = if quick then 200 else 600 in
  Printf.printf "(parameters: L=%d, D=%d for steps, N=%d for aggregation)\n" l d n_agg;
  let bench ~name ~params label circuit =
    let points =
      List.map
        (fun block ->
          let p = run_mpc_circuit circuit ~block in
          emit_mpc_point ~params name p;
          p)
        blocks
    in
    print_mpc_table ~label points;
    let g = growth_factor points (fun p -> p.per_party_seconds) in
    Printf.printf "  -> per-party time growth x%.1f across block sizes (paper: roughly linear)\n\n" g
  in
  (* Initialization is local sharing in this implementation (the paper
     runs it as a small MPC); its cost is reported directly. *)
  Printf.printf "%-28s %8s %12s %12s\n" "Initialization (share)" "block" "time" "MB/node";
  List.iter
    (fun block ->
      let p = init_point ~d ~block in
      emit_mpc_point "init-share" p;
      Printf.printf "%-28s %8d %10.4f s %10.4f\n" "" block p.sim_seconds p.per_party_mb)
    blocks;
  print_newline ();
  bench ~name:"en-step" ~params:[ ("d", Json.Int d) ]
    (Printf.sprintf "EN step (D=%d)" d) (en_step_circuit ~d);
  bench ~name:"egj-step" ~params:[ ("d", Json.Int d) ]
    (Printf.sprintf "EGJ step (D=%d)" d) (egj_step_circuit ~d);
  bench ~name:"aggregation" ~params:[ ("n", Json.Int n_agg) ]
    (Printf.sprintf "Aggregation (N=%d)" n_agg) (agg_circuit ~n:n_agg);
  bench ~name:"noising" ~params:[ ("magnitude", Json.Int magnitude) ] "Noising"
    (noising_circuit ~magnitude)

let right ~quick () =
  header "Figure 3 (right): MPC step cost vs degree bound and network size";
  let block = if quick then 8 else 20 in
  let ds = if quick then [ 10; 25; 40 ] else [ 10; 40; 70; 100 ] in
  let ns = if quick then [ 25; 50; 75 ] else [ 50; 100; 150; 200 ] in
  Printf.printf "(block size %d)\n\n" block;
  let table ~name label circuits param_name params =
    Printf.printf "%-24s %8s %10s %12s %12s\n" label param_name "ANDs" "sim time" "time/party";
    List.iter2
      (fun param circuit ->
        let p = run_mpc_circuit circuit ~block in
        emit_mpc_point ~params:[ (String.lowercase_ascii param_name, Json.Int param) ]
          name p;
        Printf.printf "%-24s %8d %10d %10.2f s %10.2f s\n" "" param p.ands p.sim_seconds
          p.per_party_seconds)
      params circuits;
    print_newline ()
  in
  table ~name:"en-step" "EN step" (List.map (fun d -> en_step_circuit ~d) ds) "D" ds;
  table ~name:"egj-step" "EGJ step" (List.map (fun d -> egj_step_circuit ~d) ds) "D" ds;
  table ~name:"aggregation" "Aggregation" (List.map (fun n -> agg_circuit ~n) ns) "N" ns;
  Printf.printf "Shape target: near-linear growth in D and in N (paper Fig. 3 right).\n"
