(* Daemon-mode economics: what a request costs once workers are forked
   once at startup and kept warm, versus the fork-per-batch pool that
   pays its dispatch tax (fork, snapshot page-faults, marshal) on every
   batch.

   The headline row is deterministic: [dispatch-speedup] emits the
   counter [speedup_floor_5x_met], which bench_diff --counters-only
   gates — the persistent pool's per-request dispatch overhead must stay
   at least 5x below the fork-per-batch baseline (~ms/task), or the
   daemon has lost its reason to exist. The wall latencies around it are
   machine-dependent telemetry.

   Fork-before-domain ordering: both pools fork worker processes, so
   this suite runs before any suite that spawns domains (see the
   ordering note in main.ml). The coordinator side here never spawns
   domains at all. *)

open Bench_util
module Transport = Dstress_runtime.Transport
module Distributed = Dstress_runtime.Distributed
module Service = Dstress_runtime.Service
module Engine = Dstress_runtime.Engine
module Graph = Dstress_runtime.Graph
module Metrics = Dstress_obs.Obs.Metrics
module Reference = Dstress_risk.Reference
module En_program = Dstress_risk.En_program

(* ------------------------------------------------------------------ *)
(* Requests and handlers                                               *)
(* ------------------------------------------------------------------ *)

let base_request =
  {
    Service.workload = Service.En;
    core = 2;
    periphery = 2;
    iterations = 2;
    k = 2;
    seed = 1;
    slice_width = 64;
    ot_mode = Dstress_crypto.Ot_ext.Simulation;
    preprocess = false;
    executor = "";
  }

(* A handler that does no work: everything the row measures is dispatch
   tax — queueing, the request frame out, the worker's decode/encode,
   the result frame back, epoch bookkeeping. *)
let noop_handler (req : Service.request) =
  {
    Service.output = req.Service.seed;
    mpc_rounds = 0;
    mpc_and_gates = 0;
    mpc_ots = 0;
    trace = "[]";
    metrics = "{}";
  }

let small_economy =
  {
    Reference.en_n = 4;
    cash = [| 0.0; 12.0; 20.0; 8.0 |];
    debts = [ (0, 1, 15.0); (1, 2, 10.0); (2, 3, 12.0); (3, 0, 4.0) ];
  }

(* A real handler: one small seeded EN clearing run per request, with
   preprocessing on so repeated requests hit the worker's in-memory
   triple cache (the cache key includes the seed, so identical requests
   are warm hits). *)
let en_handler (req : Service.request) =
  let graph = En_program.graph_of_instance small_economy in
  let d = Graph.max_degree graph in
  let p =
    En_program.make ~epsilon:50.0 ~sensitivity:1 ~noise_max:2 ~l:12 ~degree:d
      ~iterations:req.Service.iterations ()
  in
  let states =
    En_program.encode_instance small_economy ~graph ~l:12 ~degree:d ~scale:0.25
  in
  let executor =
    match Service.request_executor req with Ok e -> e | Error m -> failwith m
  in
  let cfg =
    { (Engine.default_config grp ~k:req.Service.k ~degree_bound:d
         ~seed:(string_of_int req.Service.seed))
      with
      Engine.executor;
      ot_mode = req.Service.ot_mode;
      slice_width = req.Service.slice_width;
      preprocess = req.Service.preprocess;
    }
  in
  let report = Engine.run cfg p ~graph ~initial_states:states in
  {
    Service.output = report.Engine.output;
    mpc_rounds = report.Engine.mpc_rounds;
    mpc_and_gates = report.Engine.mpc_and_gates;
    mpc_ots = report.Engine.mpc_ots;
    trace = "";
    metrics = "";
  }

(* Push [n] requests through the pool and step until every callback has
   fired; returns the completed count (callers assert it equals [n]). *)
let drain_requests pool reqs =
  let done_ = ref 0 and total = List.length reqs in
  List.iter
    (fun req ->
      match Service.submit pool req (fun _ -> incr done_) with
      | `Queued -> ()
      | `Queue_full | `No_workers -> failwith "service_bench: submit rejected")
    reqs;
  let deadline = Unix.gettimeofday () +. 60.0 in
  while !done_ < total do
    if Unix.gettimeofday () > deadline then failwith "service_bench: pool drain stuck";
    Service.pool_step pool ~timeout:0.01
  done;
  !done_

(* ------------------------------------------------------------------ *)
(* Dispatch tax: persistent pool vs fork-per-batch                     *)
(* ------------------------------------------------------------------ *)

let bench_dispatch ~requests =
  let opts = { Service.default_pool_opts with Service.queue_depth = requests + 1 } in
  let pool = Service.create_pool ~opts ~handler:noop_handler () in
  let reqs =
    List.init requests (fun i -> { base_request with Service.seed = 1000 + i })
  in
  let persistent =
    measure ~repeats:3 ~warmup:1 ~name:"persistent-dispatch"
      ~params:[ ("workers", Json.Int opts.Service.workers) ]
      ~items:("req", float_of_int requests)
      ~telemetry:(fun (n, _) ->
        ( [
            ("requests_per_batch", n);
            ("requests_rejected",
             Metrics.counter (Service.pool_metrics pool) "service.requests_rejected");
          ],
          [] ))
      (fun () ->
        (* Time the whole batch, not one request at a time: concurrent
           submissions are the daemon's operating point, and per-batch is
           exactly what the forked baseline below can measure. *)
        let t0 = Unix.gettimeofday () in
        let n = drain_requests pool reqs in
        (n, Unix.gettimeofday () -. t0))
  in
  let _, persistent_batch_s = persistent in
  Service.shutdown_pool pool;
  let ctx =
    Distributed.create
      ~opts:{ Distributed.default_opts with Distributed.workers = 2 }
      ()
  in
  let forked =
    measure ~repeats:3 ~warmup:1 ~name:"forked-pool-dispatch"
      ~params:[ ("workers", Json.Int 2) ]
      ~items:("task", float_of_int requests)
      ~telemetry:(fun (n, _) -> ([ ("tasks_per_batch", n) ], []))
      (fun () ->
        let t0 = Unix.gettimeofday () in
        let r = Distributed.map ctx requests (fun i -> i) in
        (Array.length r, Unix.gettimeofday () -. t0))
  in
  let _, forked_batch_s = forked in
  let per_req_us = persistent_batch_s /. float_of_int requests *. 1e6 in
  let per_task_us = forked_batch_s /. float_of_int requests *. 1e6 in
  let speedup = per_task_us /. per_req_us in
  record "dispatch-speedup"
    ~counters:[ ("speedup_floor_5x_met", if speedup >= 5.0 then 1 else 0) ]
    ~floats:
      [
        ("speedup_x", speedup);
        ("persistent_us_per_req", per_req_us);
        ("forked_us_per_task", per_task_us);
      ];
  Printf.printf
    "dispatch: persistent %.0f us/req vs fork-per-batch %.0f us/task (%.1fx)\n%!"
    per_req_us per_task_us speedup

(* ------------------------------------------------------------------ *)
(* TCP loopback RTT: the daemon's --listen path                        *)
(* ------------------------------------------------------------------ *)

let bench_tcp_rtt ~pings =
  let m = Metrics.create () in
  let lfd, port = Transport.listen_tcp ~host:"127.0.0.1" ~port:0 () in
  let a = Transport.connect_tcp ~metrics:m ~host:"127.0.0.1" ~port () in
  let b = Transport.accept ~metrics:m ~deadline:5.0 lfd in
  let payload = Bytes.make 64 'x' in
  let roundtrips () =
    for _ = 1 to pings do
      ignore (Transport.send a ~kind:Transport.Kind.ping ~epoch:0 payload);
      (match Transport.recv b ~timeout:5.0 with
      | Some fr ->
          ignore (Transport.send b ~kind:Transport.Kind.echo ~epoch:0 fr.Transport.payload)
      | None -> failwith "service_bench: tcp ping lost");
      match Transport.recv a ~timeout:5.0 with
      | Some _ -> ()
      | None -> failwith "service_bench: tcp echo lost"
    done;
    pings
  in
  let _ =
    measure ~repeats:3 ~warmup:1 ~name:"rtt-tcp"
      ~params:[ ("payload_bytes", Json.Int 64) ]
      ~items:("rtt", float_of_int pings)
      ~telemetry:(fun n ->
        ( [
            ("roundtrips_per_run", n);
            ("crc_failures", Metrics.counter m "transport.crc_failures");
            ("framing_errors", Metrics.counter m "transport.framing_errors");
          ],
          [] ))
      roundtrips
  in
  Transport.close a;
  Transport.close b;
  Unix.close lfd;
  Printf.printf "tcp loopback: %d round trips per run, clean wire\n%!" pings

(* ------------------------------------------------------------------ *)
(* Warm requests: repeated EN clearings against a persistent worker     *)
(* ------------------------------------------------------------------ *)

let bench_warm_requests ~requests =
  let pool =
    Service.create_pool
      ~opts:{ Service.default_pool_opts with Service.workers = 1 }
      ~handler:en_handler ()
  in
  let req = { base_request with Service.seed = 7; preprocess = true } in
  let outputs = ref [] in
  let run_one () =
    let got = ref None in
    (match Service.submit pool req (fun r -> got := Some r) with
    | `Queued -> ()
    | `Queue_full | `No_workers -> failwith "service_bench: warm submit rejected");
    let deadline = Unix.gettimeofday () +. 60.0 in
    while !got = None do
      if Unix.gettimeofday () > deadline then failwith "service_bench: warm run stuck";
      Service.pool_step pool ~timeout:0.01
    done;
    match !got with
    | Some (Service.Completed s) ->
        outputs := s.Service.output :: !outputs;
        s.Service.output
    | Some (Service.Rejected m) | Some (Service.Degraded m) ->
        failwith ("service_bench: warm request failed: " ^ m)
    | None -> assert false
  in
  let _, cold_s = time run_one in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to requests do
    ignore (run_one ())
  done;
  let warm_mean_s = (Unix.gettimeofday () -. t0) /. float_of_int requests in
  let identical =
    match !outputs with [] -> false | o :: rest -> List.for_all (( = ) o) rest
  in
  record "en-request-warm"
    ~params:[ ("iterations", Json.Int req.Service.iterations) ]
    ~counters:
      [ ("warm_requests", requests); ("outputs_identical", if identical then 1 else 0) ]
    ~floats:[ ("cold_s", cold_s); ("warm_mean_s", warm_mean_s) ];
  Service.shutdown_pool pool;
  Printf.printf
    "warm EN requests: cold %.3f s, then %.3f s mean over %d repeats (same output: %b)\n%!"
    cold_s warm_mean_s requests identical

let run ~quick () =
  header "Service: persistent-pool dispatch, TCP RTT and warm requests";
  let requests = if quick then 32 else 256 in
  let pings = if quick then 300 else 3000 in
  let warm = if quick then 5 else 20 in
  bench_dispatch ~requests;
  bench_tcp_rtt ~pings;
  bench_warm_requests ~requests:warm;
  Printf.printf
    "\nnote: the dispatch-speedup counter is the acceptance gate — a daemon\n\
     request must cost at least 5x less dispatch overhead than a fork-per-batch\n\
     task, or persistent workers are not paying for their complexity.\n"
