(* Telemetry overhead: what the wall-domain observability layer costs
   the hot paths it instruments.

   The headline row is [telemetry-tax]: the per-request cost of
   everything the service pool's request path adds — the log lines, the
   three latency-sketch observations and the queue/uptime gauge writes —
   measured directly and compared against the measured per-request cost
   of persistent-pool dispatch itself. The counter
   [overhead_within_5pct] gates the ratio under bench_diff
   --counters-only: telemetry must stay below 5% of dispatch, or
   logging has crept onto the hot path.

   [sketch-add] additionally gates [rel_err_ok]: the p50/p99 estimates
   of a deterministic pseudo-random latency stream must stay within the
   sketch's advertised relative-error bound of the exact order
   statistics — a cheap end-to-end accuracy check on the same build the
   timings come from.

   Fork-before-domain ordering: the dispatch measurement forks pool
   workers, so this suite runs in the fork-safe region (with transport
   and service, before the executor suite's domain pool). *)

open Bench_util
module Service = Dstress_runtime.Service
module Metrics = Dstress_obs.Obs.Metrics
module Sketch = Dstress_obs.Sketch
module Log = Dstress_obs.Log
module Prng = Dstress_util.Prng

(* Deterministic latency-like stream: log-uniform over ~[50us, 500ms]. *)
let latency_stream n =
  let t = Prng.of_int 0x7e1e in
  Array.init n (fun _ ->
      5e-5 *. (10.0 ** (4.0 *. Prng.float t)))

let exact_quantile sorted q =
  sorted.(int_of_float (q *. float_of_int (Array.length sorted - 1)))

let bench_sketch_add ~n =
  let values = latency_stream n in
  let s = ref (Sketch.create ()) in
  let _ =
    measure ~repeats:3 ~warmup:1 ~name:"sketch-add"
      ~params:[ ("alpha", Json.Num Sketch.default_alpha) ]
      ~items:("add", float_of_int n)
      ~telemetry:(fun () ->
        let sorted = Array.copy values in
        Array.sort compare sorted;
        let ok q =
          let exact = exact_quantile sorted q in
          let est = Sketch.quantile_or ~default:nan !s q in
          Float.abs (est -. exact) <= (Sketch.default_alpha +. 1e-9) *. exact
        in
        ( [ ("rel_err_ok", if ok 0.5 && ok 0.99 then 1 else 0) ],
          [
            ("p50_est_s", Sketch.quantile_or ~default:0.0 !s 0.5);
            ("p99_est_s", Sketch.quantile_or ~default:0.0 !s 0.99);
          ] ))
      (fun () ->
        let fresh = Sketch.create () in
        Array.iter (Sketch.add fresh) values;
        s := fresh)
  in
  ()

let bench_log_append ~n =
  let log = Log.create ~level:Log.Debug ~capacity:256 () in
  let _ =
    measure ~repeats:3 ~warmup:1 ~name:"log-append"
      ~params:[ ("ring", Json.Int 256) ]
      ~items:("event", float_of_int n)
      ~telemetry:(fun elapsed ->
        (* The nop logger is the default on every hot path: re-run the
           same loop against it so the report shows what "logging off"
           costs (the [enabled] branch only). *)
        let t0 = Unix.gettimeofday () in
        for i = 1 to n do
          Log.debug Log.nop "request dispatched"
            [ ("id", Log.Int i); ("worker", Log.Int (i land 1)) ]
        done;
        let nop_s = Unix.gettimeofday () -. t0 in
        ( [ ("ring_dropped_bounded", if Log.dropped log <= Log.total log then 1 else 0) ],
          [
            ("enabled_ns_per_event", elapsed /. float_of_int n *. 1e9);
            ("nop_ns_per_event", nop_s /. float_of_int n *. 1e9);
          ] ))
      (fun () ->
        let t0 = Unix.gettimeofday () in
        for i = 1 to n do
          Log.debug log "request dispatched"
            [ ("id", Log.Int i); ("worker", Log.Int (i land 1)) ]
        done;
        Unix.gettimeofday () -. t0)
  in
  ()

(* ------------------------------------------------------------------ *)
(* The gate: telemetry cost vs persistent-dispatch cost                *)
(* ------------------------------------------------------------------ *)

let noop_handler (req : Service.request) =
  {
    Service.output = req.Service.seed;
    mpc_rounds = 0;
    mpc_and_gates = 0;
    mpc_ots = 0;
    trace = "[]";
    metrics = "{}";
  }

let base_request =
  {
    Service.workload = Service.En;
    core = 2;
    periphery = 2;
    iterations = 2;
    k = 2;
    seed = 1;
    slice_width = 64;
    ot_mode = Dstress_crypto.Ot_ext.Simulation;
    preprocess = false;
    executor = "";
  }

let drain_requests pool reqs =
  let done_ = ref 0 and total = List.length reqs in
  List.iter
    (fun req ->
      match Service.submit pool req (fun _ -> incr done_) with
      | `Queued -> ()
      | `Queue_full | `No_workers -> failwith "telemetry_bench: submit rejected")
    reqs;
  let deadline = Unix.gettimeofday () +. 60.0 in
  while !done_ < total do
    if Unix.gettimeofday () > deadline then failwith "telemetry_bench: pool drain stuck";
    Service.pool_step pool ~timeout:0.01
  done;
  !done_

(* The request path's own telemetry, replayed in isolation: the log
   lines a Debug-level request lifecycle emits (enqueue, dispatch,
   finish), the three latency-sketch observations and the two gauge
   writes. Measured per iteration, this is the tax one request pays. *)
let per_request_telemetry_chunk_s log m ~first ~iters =
  let t0 = Unix.gettimeofday () in
  for i = first to first + iters - 1 do
    if Log.enabled log Log.Debug then
      Log.debug log ~trace:(Int64.of_int i) "request enqueued"
        [ ("id", Log.Int i); ("queue_depth", Log.Int 1) ];
    if Log.enabled log Log.Debug then
      Log.debug log ~trace:(Int64.of_int i) "request dispatched"
        [ ("id", Log.Int i); ("worker", Log.Int (i land 1)); ("attempt", Log.Int 1) ];
    Metrics.observe_sketch m "service.queue_wait_s" 1e-5;
    Metrics.observe_sketch m "service.dispatch_s" 5e-4;
    Metrics.observe_sketch m "service.request_s" 6e-4;
    Metrics.set m "service.queue_depth" 0.0;
    Metrics.set m "service.queue_high_water" 1.0;
    if Log.enabled log Log.Info then
      Log.info log ~trace:(Int64.of_int i) "request finished"
        [ ("id", Log.Int i); ("outcome", Log.Str "completed"); ("seconds", Log.Float 6e-4) ]
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int iters

(* Min over sub-timeslice chunks: the gate compares two machine-
   dependent costs as a ratio, and scheduler preemptions inside the
   loop can flip it on a loaded CI machine. Contention only ever
   inflates a measurement, so the per-iteration minimum over chunks
   short enough (~250 iters, well under a scheduler timeslice) that
   some run preemption-free estimates the intrinsic cost even when the
   machine is busy. *)
let per_request_telemetry_s ~iters =
  let log = Log.create ~level:Log.Debug ~capacity:256 () in
  let m = Metrics.create () in
  let chunk = 250 in
  let best = ref infinity in
  let first = ref 1 in
  while !first + chunk <= iters do
    best := Float.min !best (per_request_telemetry_chunk_s log m ~first:!first ~iters:chunk);
    first := !first + chunk
  done;
  !best

let bench_telemetry_tax ~requests ~tax_iters =
  let opts = { Service.default_pool_opts with Service.queue_depth = requests + 1 } in
  let log = Log.create ~level:Log.Debug ~capacity:256 () in
  let pool = Service.create_pool ~opts ~log ~handler:noop_handler () in
  let reqs =
    List.init requests (fun i -> { base_request with Service.seed = 2000 + i })
  in
  let best_batch_s = ref infinity in
  let _ =
    measure ~repeats:5 ~warmup:1 ~name:"instrumented-dispatch"
      ~params:[ ("workers", Json.Int opts.Service.workers) ]
      ~items:("req", float_of_int requests)
      ~telemetry:(fun n ->
        ( [
            ("requests_per_batch", n);
            ("requests_rejected",
             Metrics.counter (Service.pool_metrics pool) "service.requests_rejected");
          ],
          [] ))
      (fun () ->
        let t0 = Unix.gettimeofday () in
        let n = drain_requests pool reqs in
        best_batch_s := Float.min !best_batch_s (Unix.gettimeofday () -. t0);
        n)
  in
  Service.shutdown_pool pool;
  let dispatch_us = !best_batch_s /. float_of_int requests *. 1e6 in
  let tax_us = per_request_telemetry_s ~iters:tax_iters *. 1e6 in
  let fraction = tax_us /. dispatch_us in
  record "telemetry-tax"
    ~counters:[ ("overhead_within_5pct", if fraction < 0.05 then 1 else 0) ]
    ~floats:
      [
        ("tax_us_per_req", tax_us);
        ("dispatch_us_per_req", dispatch_us);
        ("overhead_fraction", fraction);
      ];
  Printf.printf
    "telemetry: %.2f us/req of logging+sketches on a %.0f us/req dispatch (%.2f%%)\n%!"
    tax_us dispatch_us (fraction *. 100.0)

let run ~quick () =
  bench_sketch_add ~n:(if quick then 50_000 else 200_000);
  bench_log_append ~n:(if quick then 20_000 else 100_000);
  bench_telemetry_tax
    ~requests:(if quick then 32 else 128)
    ~tax_iters:(if quick then 20_000 else 100_000)
