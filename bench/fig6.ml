(* Figure 6: scalability projection for the full U.S. banking system,
   calibrated from microbenchmarks (§5.5), with real-run validation
   points. Also the headline estimate at N = 1750, D = 100. *)

open Bench_util
module Projection = Dstress_costmodel.Projection
module Engine = Dstress_runtime.Engine
module Graph = Dstress_runtime.Graph
module En_program = Dstress_risk.En_program
module Topology = Dstress_graphgen.Topology
module Banking = Dstress_graphgen.Banking

let run ~quick () =
  header "Figure 6: projected end-to-end cost vs network size";
  let units = Projection.measure_units grp ~seed:"fig6" in
  (* Calibration and projections are machine-dependent by construction:
     informational floats, never gated counters. *)
  record "calibration"
    ~floats:
      [
        ("ot_us_per_and_pair", units.Projection.ot_seconds_per_and_per_pair *. 1e6);
        ("bytes_per_and_pair", units.Projection.mpc_bytes_per_and_per_pair);
        ("exp_us", units.Projection.exp_seconds *. 1e6);
      ];
  Printf.printf
    "calibration: %.2f us/AND/pair, %.1f B/AND/pair, %.1f us/exp (toy group, simulation OT)\n\n"
    (units.Projection.ot_seconds_per_and_per_pair *. 1e6)
    units.Projection.mpc_bytes_per_and_per_pair
    (units.Projection.exp_seconds *. 1e6);
  let ns = if quick then [ 250; 1000; 1750 ] else [ 100; 250; 500; 750; 1000; 1250; 1500; 1750; 2000 ] in
  let ds = if quick then [ 10; 100 ] else [ 10; 40; 70; 100 ] in
  Printf.printf "%8s" "N";
  List.iter (fun d -> Printf.printf " | D=%-3d time  traffic" d) ds;
  Printf.printf "\n";
  List.iter
    (fun n ->
      Printf.printf "%8d" n;
      List.iter
        (fun d ->
          let p =
            { Projection.n; d; k = 19; l = 16; iterations = None; tree_fanout = 100 }
          in
          let pr = Projection.project units p in
          record "projection"
            ~params:[ ("n", Json.Int n); ("d", Json.Int d) ]
            ~floats:
              [
                ("total_s", pr.Projection.total_seconds);
                ("mb_per_node", pr.Projection.total_bytes_per_node /. 1048576.0);
              ];
          Printf.printf " | %7.1f min %6.0f MB" (pr.Projection.total_seconds /. 60.0)
            (pr.Projection.total_bytes_per_node /. 1048576.0))
        ds;
      Printf.printf "\n")
    ns;
  (* Headline: the paper's 4.8 h / 750 MB point. *)
  let headline = Projection.project units Projection.paper_scale in
  record "headline"
    ~floats:
      [
        ("total_hours", headline.Projection.total_seconds /. 3600.0);
        ("mb_per_node", headline.Projection.total_bytes_per_node /. 1048576.0);
      ];
  Printf.printf "\nheadline (N=1750, D=100, k=19):\n";
  Format.printf "%a@." Projection.pp headline;
  Printf.printf
    "(paper: ~4.8 h and ~750 MB on 2013 hardware with secp384r1 + SHA-based OT;\n\
    \ this build uses the simulation OT backend and a 64-bit group, so absolute\n\
    \ numbers shrink — the N/D scaling shape is the reproduction target)\n";
  (* Validation: a real end-to-end run compared against the projection at
     the same (downscaled) parameters. *)
  if not quick then begin
    subheader "validation point (real run vs model)";
    let n = 20 and iterations = 3 and k = 11 in
    let prng = Prng.of_int 0xF16 in
    let topo = Topology.erdos_renyi prng ~n ~avg_degree:2.5 ~max_degree:5 in
    let inst = Banking.en_of_topology prng topo () in
    let graph = En_program.graph_of_instance inst in
    let d = max 1 (Graph.max_degree graph) in
    let p = En_program.make ~l:12 ~degree:d ~iterations () in
    let states = En_program.encode_instance inst ~graph ~l:12 ~degree:d ~scale:0.25 in
    let cfg = Engine.default_config grp ~k ~degree_bound:d ~seed:"fig6-val" in
    let report, wall = time (fun () -> Engine.run cfg p ~graph ~initial_states:states) in
    let params =
      { Projection.n; d; k; l = 12; iterations = Some iterations; tree_fanout = 100 }
    in
    let pr = Projection.project units params in
    (* The simulation serializes all N blocks; the projection models
       parallel nodes, so compare per-node quantities. *)
    let sim_per_node = wall /. float_of_int n *. float_of_int (k + 1) in
    emit
      (Bench_result.make_result
         ~params:[ ("n", Json.Int n); ("d", Json.Int d); ("k", Json.Int k) ]
         ~wall:
           { Bench_result.median_s = wall; min_s = wall; p10_s = wall; p90_s = wall }
         ~floats:
           [
             ("model_total_s", pr.Projection.total_seconds);
             ("real_mb_per_node",
              Dstress_mpc.Traffic.mean_per_node report.Engine.traffic /. 1048576.0);
           ]
         "validation");
    Printf.printf
      "real run: N=%d D=%d k=%d I=%d: wall %.1f s (~%.1f s node-serialized), %.1f MB/node\n"
      n d k iterations wall sim_per_node
      (Dstress_mpc.Traffic.mean_per_node report.Engine.traffic /. 1048576.0);
    Printf.printf "model:    %.1f s, %.1f MB/node\n"
      pr.Projection.total_seconds
      (pr.Projection.total_bytes_per_node /. 1048576.0)
  end
