(* Fault-rate sweep: how the engine degrades as injected faults ramp up.

   For each fault rate the same EN fixture runs with a random fault plan
   (drops, delays, corruptions and forced decryption misses on edge
   transfers, plus node crashes at the higher rates). The run uses a huge
   epsilon so the release noise is negligible and the output must equal
   the plaintext reference exactly whenever every failure was recovered —
   which is what the "ok" column checks. The table reports the recovery
   machinery's cost: retries, the extra edge-privacy budget they consume,
   and the simulated backoff delay. *)

open Bench_util
module Engine = Dstress_runtime.Engine
module Graph = Dstress_runtime.Graph
module Fault = Dstress_faults.Fault
module En_program = Dstress_risk.En_program
module Topology = Dstress_graphgen.Topology
module Banking = Dstress_graphgen.Banking

let iterations = 2
let exact_epsilon = 50.0

let fixture ~quick =
  let prng = Prng.of_int 0xFA17 in
  let n = if quick then 8 else 14 in
  let topo = Topology.erdos_renyi prng ~n ~avg_degree:1.5 ~max_degree:3 in
  let inst = Banking.en_of_topology prng topo () in
  let inst =
    { inst with
      Dstress_risk.Reference.cash =
        Array.map (fun c -> c *. 0.3) inst.Dstress_risk.Reference.cash }
  in
  let graph = En_program.graph_of_instance inst in
  let d = max 1 (Graph.max_degree graph) in
  let p = En_program.make ~epsilon:exact_epsilon ~l:10 ~degree:d ~iterations () in
  let states = En_program.encode_instance inst ~graph ~l:10 ~degree:d ~scale:0.25 in
  (graph, d, p, states)

let run ~quick () =
  header "Fault sweep: recovery cost vs injected fault rate";
  let graph, d, p, states = fixture ~quick in
  let expected = Engine.run_plaintext p ~degree_bound:d ~graph ~initial_states:states in
  let rates = if quick then [ 0.0; 0.05 ] else [ 0.0; 0.02; 0.05; 0.10; 0.20 ] in
  Printf.printf
    "(N=%d, D<=%d, I=%d, k=3; rate applies to drop/corrupt/miss per (edge, round);\n\
    \ crashes only at rate >= 0.1; plaintext reference = %d)\n\n"
    (Graph.n graph) d iterations expected;
  Printf.printf "%6s | %8s %7s %9s %11s | %9s %9s | %5s\n" "rate" "injected" "retries"
    "recovered" "unrecovered" "extra-eps" "backoff-s" "ok";
  List.iter
    (fun rate ->
      let plan =
        let transfer_rates =
          { Fault.no_faults with drop = rate; corrupt = rate /. 2.0; miss = rate; delay = rate }
        in
        let base =
          Fault.random_plan ~seed:(int_of_float (rate *. 1000.0)) ~rounds:(iterations + 1)
            ~nodes:(Graph.n graph) ~edges:(Graph.edges graph) transfer_rates
        in
        if rate >= 0.1 then
          base
          @ Fault.random_crashes ~seed:17 ~nodes:(Graph.n graph) ~rounds:(iterations + 1)
              ~count:1
        else base
      in
      let cfg =
        { (Engine.default_config grp ~k:3 ~degree_bound:d ~seed:"fault-sweep") with
          Engine.fault_plan = plan }
      in
      let r = Engine.run cfg p ~graph ~initial_states:states in
      let injected = List.fold_left (fun a (_, c) -> a + c) 0 r.Engine.faults_injected in
      let backoff =
        List.fold_left (fun a (_, s) -> a +. s) 0.0 r.Engine.recovery_seconds
      in
      let ok = r.Engine.unrecovered_failures = 0 && r.Engine.output = expected in
      record "sweep"
        ~params:[ ("rate_pct", Json.Int (int_of_float (rate *. 100.0))) ]
        ~counters:
          [
            ("injected", injected);
            ("retries", r.Engine.transfer_retries);
            ("recovered", r.Engine.recovered_failures);
            ("unrecovered", r.Engine.unrecovered_failures);
            ("output", r.Engine.output);
            ("ok", if ok then 1 else 0);
          ]
        ~floats:[ ("extra_eps", r.Engine.retry_epsilon); ("backoff_s", backoff) ];
      Printf.printf "%6.2f | %8d %7d %9d %11d | %9.4f %9.3f | %5s\n" rate injected
        r.Engine.transfer_retries r.Engine.recovered_failures r.Engine.unrecovered_failures
        r.Engine.retry_epsilon backoff
        (if ok then "yes" else "NO");
      if injected > 0 then begin
        Printf.printf "       | by kind:";
        List.iter
          (fun (k, c) -> if c > 0 then Printf.printf " %s=%d" (Fault.kind_name k) c)
          r.Engine.faults_injected;
        print_newline ()
      end)
    rates;
  Printf.printf
    "\n  -> every row should read ok=yes: retries + table escalation recover all\n\
    \     injected faults, at the cost of the listed extra edge-privacy budget.\n"
