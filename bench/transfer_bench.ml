(* §5.2/§5.3 message-transfer microbenchmarks: end-to-end latency of a
   single L-bit transfer for different block sizes, and the per-role
   traffic breakdown (relay-out node i, senders in B_i, receivers in B_j),
   validated against the closed-form expectations. Also the strawman
   ablation of §3.5. *)

open Bench_util
module Setup = Dstress_transfer.Setup
module Protocol = Dstress_transfer.Protocol
module Exp_elgamal = Dstress_crypto.Exp_elgamal
module Sharing = Dstress_mpc.Sharing

let l = 12

let run_one ~k ~variant =
  let n = k + 3 in
  let setup = Setup.run (Prg.of_string "bench-transfer") grp ~n ~k ~degree_bound:2 ~bits:l in
  let table = Exp_elgamal.Table.make grp ~lo:(-150) ~hi:(k + 1 + 150) in
  let params = { Protocol.alpha = 0.5; table } in
  let m = Bitvec.of_int ~bits:l 0xABC in
  let shares = Sharing.share (Prg.of_string "bench-msg") ~parties:(k + 1) m in
  let traffic = Traffic.create n in
  let outcome, seconds =
    time (fun () ->
        Protocol.transfer params ~prg:(Prg.of_string "bench-run") ~noise:(Prng.of_int 7)
          ~traffic ~variant ~setup ~sender:0 ~receiver:1 ~neighbor_slot:0 ~shares)
  in
  assert (Bitvec.equal m (Sharing.reconstruct outcome.Protocol.shares));
  (seconds, traffic)

let latency ~quick () =
  header "Message transfer latency vs block size (§5.2)";
  let ks = if quick then [ 3; 7 ] else [ 7; 11; 15; 19 ] in
  Printf.printf "(single %d-bit transfer, toy group; paper: 285 ms at block 8 -> 610 ms at block 20 over secp384r1)\n\n" l;
  Printf.printf "%8s %12s %14s\n" "block" "latency" "total bytes";
  let points =
    List.map
      (fun k ->
        let seconds, traffic = run_one ~k ~variant:Protocol.Final in
        emit
          (Bench_result.make_result
             ~params:[ ("block", Json.Int (k + 1)) ]
             ~wall:
               { Bench_result.median_s = seconds; min_s = seconds;
                 p10_s = seconds; p90_s = seconds }
             ~counters:[ ("traffic.total_bytes", Traffic.total traffic) ]
             "transfer");
        Printf.printf "%8d %9.1f ms %12d B\n" (k + 1) (seconds *. 1000.0)
          (Traffic.total traffic);
        (k, seconds))
      ks
  in
  (match (points, List.rev points) with
  | (k0, s0) :: _, (k1, s1) :: _ ->
      Printf.printf "\n  -> latency grew x%.1f while block size grew x%.1f (paper: ~linear in k)\n"
        (s1 /. s0)
        (float_of_int (k1 + 1) /. float_of_int (k0 + 1))
  | _ -> ())

let traffic_roles ~quick () =
  header "Message transfer traffic by role (§5.3)";
  let ks = if quick then [ 3; 7 ] else [ 7; 11; 15; 19 ] in
  Printf.printf "%8s | %18s | %18s | %18s\n" "block" "sender member (B)" "relay i recv (B)"
    "receiver member (B)";
  List.iter
    (fun k ->
      let _, traffic = run_one ~k ~variant:Protocol.Final in
      (* Node 0 is the relay-out i; nodes of B_0 send to it; node 1 is j;
         B_1 members receive from 1. Extract roles from the matrix. *)
      let setup = Setup.run (Prg.of_string "bench-transfer") grp ~n:(k + 3) ~k ~degree_bound:2 ~bits:l in
      let bi = Setup.block_of setup 0 and bj = Setup.block_of setup 1 in
      let sender_member = Traffic.sent_by traffic bi.(1) in
      let relay_recv = Traffic.received_by traffic 0 in
      let receiver_member = Traffic.received_by traffic bj.(1) in
      let e_sender, _, e_receiver, _ =
        Protocol.expected_bytes Protocol.Final ~k ~bits:l
          ~element_bytes:(Group.element_bytes grp)
      in
      record "roles"
        ~params:[ ("block", Json.Int (k + 1)) ]
        ~counters:
          [
            ("sender_member_bytes", sender_member);
            ("relay_recv_bytes", relay_recv);
            ("receiver_member_bytes", receiver_member);
            ("expected_sender_bytes", e_sender);
            ("expected_receiver_bytes", e_receiver);
          ];
      Printf.printf "%8d | %9d (=%d calc) | %18d | %8d (=%d calc)\n" (k + 1) sender_member
        e_sender relay_recv receiver_member e_receiver)
    ks;
  Printf.printf "\nShape targets (paper): relay i receives (k+1)^2 subshares (quadratic);\n";
  Printf.printf "sender members linear in k; receiver members constant in k.\n"

let strawman_ablation ~quick:_ () =
  header "Ablation: transfer protocol variants (§3.5 strawmen)";
  let k = 7 in
  Printf.printf "(block size %d, L=%d)\n\n" (k + 1) l;
  Printf.printf "%-12s %12s %14s %s\n" "variant" "latency" "total bytes" "leak";
  List.iter
    (fun (name, variant, leak) ->
      let seconds, traffic = run_one ~k ~variant in
      emit
        (Bench_result.make_result
           ~params:[ ("block", Json.Int (k + 1)) ]
           ~wall:
             { Bench_result.median_s = seconds; min_s = seconds;
               p10_s = seconds; p90_s = seconds }
           ~counters:[ ("traffic.total_bytes", Traffic.total traffic) ]
           name);
      Printf.printf "%-12s %9.1f ms %12d B %s\n" name (seconds *. 1000.0)
        (Traffic.total traffic) leak)
    [
      ("strawman1", Protocol.Strawman1, "collusion breaks value privacy");
      ("strawman2", Protocol.Strawman2, "subshare recognition reveals edges");
      ("strawman3", Protocol.Strawman3, "exact bit-sums leak edges (App. B)");
      ("final", Protocol.Final, "eps-DP side channel");
    ];
  Printf.printf
    "\nKurosawa multi-recipient optimization (closed form, block 20, L=16):\n";
  let eb = Group.element_bytes grp in
  let with_opt = Exp_elgamal.multi_ciphertext_bytes grp (20 * 16) in
  let without = 20 * 16 * 2 * eb in
  record "kurosawa"
    ~counters:[ ("bundle_bytes_shared", with_opt); ("bundle_bytes_naive", without) ];
  Printf.printf "  one sender bundle: %d B with shared ephemeral vs %d B without (x%.2f)\n"
    with_opt without
    (float_of_int without /. float_of_int with_opt)
