(* Wire-layer cost of the distributed runtime: frame round-trip latency
   (in-process loopback and against a real forked echo process), the
   connect/accept path, bounded-backoff cost against a dead socket, and
   the per-task overhead of the fork-per-batch worker pool.

   The cost model (lib/costmodel) projects end-to-end runs assuming the
   network adds no latency beyond the bytes themselves; the RTT rows
   here are the measured correction term for that assumption on a local
   Unix socket (see EXPERIMENTS.md, "Transport"). Counters emitted by
   every row (frames, attempts, sleeps, zero integrity failures) are
   deterministic and gated by bench_diff --counters-only; the latencies
   are machine-dependent telemetry. *)

open Bench_util
module Transport = Dstress_runtime.Transport
module Distributed = Dstress_runtime.Distributed
module Metrics = Dstress_obs.Obs.Metrics

let payload_bytes = 64

(* One in-process round trip: coordinator frame out, echo frame back.
   No scheduler handoff — this isolates framing + CRC + syscall cost. *)
let bench_loopback ~pings =
  let m = Metrics.create () in
  let a, b = Transport.pair ~metrics:m () in
  let payload = Bytes.make payload_bytes 'x' in
  let roundtrips () =
    let f0 = Metrics.counter m "transport.frames_sent" in
    for _ = 1 to pings do
      ignore (Transport.send a ~kind:Transport.Kind.ping ~epoch:0 payload);
      (match Transport.recv b ~timeout:5.0 with
      | Some fr -> ignore (Transport.send b ~kind:Transport.Kind.echo ~epoch:0 fr.Transport.payload)
      | None -> failwith "transport_bench: loopback ping lost");
      match Transport.recv a ~timeout:5.0 with
      | Some _ -> ()
      | None -> failwith "transport_bench: loopback echo lost"
    done;
    Metrics.counter m "transport.frames_sent" - f0
  in
  let frames =
    measure ~repeats:3 ~warmup:1 ~name:"rtt-loopback"
      ~params:[ ("payload_bytes", Dstress_obs.Json.Int payload_bytes) ]
      ~items:("rtt", float_of_int pings)
      ~telemetry:(fun frames ->
        ( [
            ("frames_per_run", frames);
            ("crc_failures", Metrics.counter m "transport.crc_failures");
            ("framing_errors", Metrics.counter m "transport.framing_errors");
          ],
          [] ))
      roundtrips
  in
  Transport.close a;
  Transport.close b;
  Printf.printf "loopback: %d round trips per run, %d frames, clean wire\n%!" pings frames

(* The same ping/echo against a forked worker: a real process boundary
   and scheduler handoff per direction — the number that actually bounds
   a distributed dispatch batch. *)
let bench_process_echo ~pings =
  let m = Metrics.create () in
  let a, b = Transport.pair ~metrics:m () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (try Unix.close (Transport.fd a) with Unix.Unix_error _ -> ());
      let rec loop () =
        match Transport.recv b ~timeout:30.0 with
        | None -> Unix._exit 1
        | Some fr when fr.Transport.kind = Transport.Kind.shutdown -> Unix._exit 0
        | Some fr ->
            ignore (Transport.send b ~kind:Transport.Kind.echo ~epoch:0 fr.Transport.payload);
            loop ()
      in
      (try loop () with _ -> Unix._exit 1)
  | pid ->
      (try Unix.close (Transport.fd b) with Unix.Unix_error _ -> ());
      let payload = Bytes.make payload_bytes 'x' in
      let roundtrips () =
        for _ = 1 to pings do
          ignore (Transport.send a ~kind:Transport.Kind.ping ~epoch:0 payload);
          match Transport.recv a ~timeout:10.0 with
          | Some _ -> ()
          | None -> failwith "transport_bench: process echo lost"
        done;
        pings
      in
      let _ =
        measure ~repeats:3 ~warmup:1 ~name:"rtt-process"
          ~params:[ ("payload_bytes", Dstress_obs.Json.Int payload_bytes) ]
          ~items:("rtt", float_of_int pings)
          ~telemetry:(fun n ->
            ( [
                ("roundtrips_per_run", n);
                ("crc_failures", Metrics.counter m "transport.crc_failures");
                ("dup_dropped", Metrics.counter m "transport.dup_dropped");
              ],
              [] ))
          roundtrips
      in
      ignore (Transport.send a ~kind:Transport.Kind.shutdown ~epoch:0 Bytes.empty);
      ignore (Unix.waitpid [] pid);
      Transport.close a;
      Printf.printf "process echo: %d round trips per run across a fork boundary\n%!" pings

(* Named-socket connect/accept, and the bounded-backoff path against a
   socket that does not exist — the reconnect cost a respawned worker
   pays before it can take over a slot. *)
let bench_connect ~conns =
  let dir = Filename.get_temp_dir_name () in
  let path = Filename.concat dir (Printf.sprintf "dstress-bench-%d.sock" (Unix.getpid ())) in
  let lfd = Transport.listen ~path in
  let m = Metrics.create () in
  let connect_cycle () =
    for _ = 1 to conns do
      let c = Transport.connect ~metrics:m ~attempts:1 ~path () in
      let s = Transport.accept ~deadline:5.0 lfd in
      Transport.close c;
      Transport.close s
    done;
    conns
  in
  let _ =
    measure ~repeats:3 ~warmup:1 ~name:"connect-accept"
      ~items:("conn", float_of_int conns)
      ~telemetry:(fun n -> ([ ("conns_per_run", n) ], []))
      connect_cycle
  in
  Unix.close lfd;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  (* Dead peer: every attempt fails, every retry sleeps. The counters pin
     the retry policy (attempts, sleeps); the wall row prices it. *)
  let dead = Filename.concat dir (Printf.sprintf "dstress-bench-dead-%d.sock" (Unix.getpid ())) in
  (try Unix.unlink dead with Unix.Unix_error _ -> ());
  let md = Metrics.create () in
  let attempts = 3 in
  let failed_connect () =
    let a0 = Metrics.counter md "transport.connect_attempts" in
    (match Transport.connect ~metrics:md ~attempts ~backoff:0.002 ~path:dead () with
    | _ -> failwith "transport_bench: connect to a dead socket succeeded"
    | exception Transport.Error (Transport.Timeout _) -> ());
    Metrics.counter md "transport.connect_attempts" - a0
  in
  let per_give_up =
    measure ~repeats:3 ~name:"connect-backoff-dead"
      ~telemetry:(fun a ->
        ( [ ("attempts_per_give_up", a); ("sleeps_per_give_up", a - 1) ],
          [ ("backoff_sleep_s_total", Metrics.sum md "transport.backoff_sleep_s") ] ))
      failed_connect
  in
  Printf.printf
    "connect: %d accept cycles per run; giving up on a dead peer costs %d attempts\n%!"
    conns per_give_up

(* Fork-per-batch pool overhead on trivial tasks: everything here is
   dispatch tax (fork, snapshot page-faults, marshal, frames), nothing
   is work. *)
let bench_pool ~tasks =
  let ctx = Distributed.create ~opts:{ Distributed.default_opts with Distributed.workers = 2 } () in
  let dispatch () =
    let r = Distributed.map ctx tasks (fun i -> i) in
    Array.length r
  in
  let _ =
    measure ~repeats:3 ~warmup:1 ~name:"pool-dispatch"
      ~params:[ ("workers", Dstress_obs.Json.Int 2) ]
      ~items:("task", float_of_int tasks)
      ~telemetry:(fun n -> ([ ("tasks_per_batch", n) ], []))
      dispatch
  in
  Printf.printf "pool: %d no-op tasks per batch on 2 forked workers\n%!" tasks

let run ~quick () =
  header "Transport: RTT, connect/backoff and pool dispatch cost";
  let pings = if quick then 300 else 3000 in
  let conns = if quick then 20 else 100 in
  let tasks = if quick then 32 else 256 in
  bench_loopback ~pings;
  bench_process_echo ~pings;
  bench_connect ~conns;
  bench_pool ~tasks;
  Printf.printf
    "\nnote: lib/costmodel projections assume a zero-latency wire; the rtt rows\n\
     above are the measured per-frame correction on a local Unix socket.\n"
