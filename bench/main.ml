(* DStress benchmark harness: regenerates every table and figure of the
   paper's evaluation section (see DESIGN.md §4 for the experiment index).

   Usage:
     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- --quick      -- smaller parameters
     dune exec bench/main.exe -- fig5 fig6    -- selected experiments
     dune exec bench/main.exe -- --list       -- list experiment names *)

let experiments : (string * string * (quick:bool -> unit -> unit)) list =
  [
    ("micro", "Bechamel microbenchmarks of the crypto primitives", Micro.run);
    ("fig3-left", "Fig 3 (left) + Fig 4: MPC cost vs block size", Fig3.left);
    ("fig3-right", "Fig 3 (right): MPC cost vs D and N", Fig3.right);
    ("transfer-micro", "§5.2: transfer latency vs block size", Transfer_bench.latency);
    ("transfer-traffic", "§5.3: transfer traffic by role", Transfer_bench.traffic_roles);
    ("transfer-ablation", "§3.5: strawman protocol ablation", Transfer_bench.strawman_ablation);
    ("fig5", "Fig 5: end-to-end EN/EGJ runs vs block size", Fig5.run);
    ("fig6", "Fig 6: scalability projection + validation", Fig6.run);
    ("baseline", "§5.5: monolithic-MPC baseline", Baseline_bench.run);
    ("utility", "§4.5: utility analysis", Privacy_bench.utility);
    ("appendix-b", "Appendix B: edge-privacy budget", Privacy_bench.appendix_b);
    ("appendix-c", "Appendix C: contagion scenarios", Privacy_bench.appendix_c);
    ("ablation-aggregation", "§3.6: aggregation tree ablation", Ablation.aggregation);
    ("ablation-buckets", "§3.7: degree bucketing ablation", Ablation.degree_bucketing);
    ("2pc-comparison", "§6: garbled circuits vs GMW", Ablation.twopc);
    ("fault-sweep", "§3.8: recovery cost vs injected fault rate", Fault_bench.run);
    ("executor", "runtime: sequential vs domain-pool executor", Executor_bench.run);
    ("gmw-slice", "bitsliced GMW: scalar vs 64-wide sliced evaluation", Slice_bench.run);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let listed = List.mem "--list" args in
  let selected = List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--")) args in
  if listed then begin
    List.iter (fun (name, descr, _) -> Printf.printf "%-22s %s\n" name descr) experiments;
    exit 0
  end;
  let unknown = List.filter (fun s -> not (List.exists (fun (n, _, _) -> n = s) experiments)) selected in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment(s): %s (try --list)\n" (String.concat ", " unknown);
    exit 1
  end;
  let to_run =
    if selected = [] then experiments
    else List.filter (fun (n, _, _) -> List.mem n selected) experiments
  in
  let t0 = Unix.gettimeofday () in
  Printf.printf "DStress benchmark harness (%s mode, %d experiment(s))\n"
    (if quick then "quick" else "full")
    (List.length to_run);
  List.iter (fun (_, _, f) -> f ~quick ()) to_run;
  Printf.printf "\nAll benchmarks finished in %.1f s.\n" (Unix.gettimeofday () -. t0)
