(* DStress benchmark harness: regenerates every table and figure of the
   paper's evaluation section (see DESIGN.md §4 for the experiment index),
   and doubles as the perf telemetry source — every experiment reports
   typed rows through Bench_util, exported as one dstress-bench/1 JSON
   document for bin/bench_diff to gate regressions against.

   Usage:
     dune exec bench/main.exe                   -- run everything
     dune exec bench/main.exe -- --quick        -- smaller parameters
     dune exec bench/main.exe -- fig5 fig6      -- selected experiments
     dune exec bench/main.exe -- --filter 'fig' -- name regex selection
     dune exec bench/main.exe -- --json out.json      -- machine-readable results
     dune exec bench/main.exe -- --baseline DIR -- per-suite BENCH_<name>.json
     dune exec bench/main.exe -- --list         -- list experiment names

   A sub-bench that raises is reported, the remaining suites still run
   (and the JSON still gets written), and the exit code is nonzero. *)

let experiments : (string * string * (quick:bool -> unit -> unit)) list =
  [
    ("micro", "Bechamel microbenchmarks of the crypto primitives", Micro.run);
    ("bignum", "2048-bit kernel micro + EN end-to-end on ffdhe2048", Bignum_bench.run);
    ("fig3-left", "Fig 3 (left) + Fig 4: MPC cost vs block size", Fig3.left);
    ("fig3-right", "Fig 3 (right): MPC cost vs D and N", Fig3.right);
    ("transfer-micro", "§5.2: transfer latency vs block size", Transfer_bench.latency);
    ("transfer-traffic", "§5.3: transfer traffic by role", Transfer_bench.traffic_roles);
    ("transfer-ablation", "§3.5: strawman protocol ablation", Transfer_bench.strawman_ablation);
    ("fig5", "Fig 5: end-to-end EN/EGJ runs vs block size", Fig5.run);
    ("fig6", "Fig 6: scalability projection + validation", Fig6.run);
    ("baseline", "§5.5: monolithic-MPC baseline", Baseline_bench.run);
    ("utility", "§4.5: utility analysis", Privacy_bench.utility);
    ("appendix-b", "Appendix B: edge-privacy budget", Privacy_bench.appendix_b);
    ("appendix-c", "Appendix C: contagion scenarios", Privacy_bench.appendix_c);
    ("ablation-aggregation", "§3.6: aggregation tree ablation", Ablation.aggregation);
    ("ablation-buckets", "§3.7: degree bucketing ablation", Ablation.degree_bucketing);
    ("2pc-comparison", "§6: garbled circuits vs GMW", Ablation.twopc);
    ("fault-sweep", "§3.8: recovery cost vs injected fault rate", Fault_bench.run);
    (* transport forks worker processes and must run before any suite that
       spawns domains (OCaml 5 forbids fork after Domain.spawn), so it sits
       ahead of the executor suite's domain pool. *)
    ("transport", "distributed runtime: frame RTT, backoff, pool dispatch", Transport_bench.run);
    ("service", "daemon mode: persistent pool vs fork-per-batch dispatch", Service_bench.run);
    ("telemetry", "observability: sketch/log cost and the dispatch telemetry tax", Telemetry_bench.run);
    ("executor", "runtime: sequential vs domain-pool executor", Executor_bench.run);
    ("gmw-slice", "bitsliced GMW: scalar vs 64-wide sliced evaluation", Slice_bench.run);
    ("preprocess", "offline/online split: preprocessed vs inline GMW", Preprocess_bench.run);
  ]

let usage () =
  prerr_endline
    "usage: main.exe [--quick] [--list] [--json FILE] [--baseline DIR] \
     [--filter REGEX] [NAME...]";
  exit 2

(* Minimal flag parsing: flags with arguments consume the next word,
   anything else is an experiment name. *)
let parse_args args =
  let quick = ref false and listed = ref false in
  let json = ref None and baseline = ref None and filter = ref None in
  let names = ref [] in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        go rest
    | "--list" :: rest ->
        listed := true;
        go rest
    | "--json" :: file :: rest ->
        json := Some file;
        go rest
    | "--baseline" :: dir :: rest ->
        baseline := Some dir;
        go rest
    | "--filter" :: re :: rest ->
        filter := Some re;
        go rest
    | ("--json" | "--baseline" | "--filter") :: [] -> usage ()
    | a :: _ when String.length a >= 2 && String.sub a 0 2 = "--" ->
        Printf.eprintf "unknown flag %s\n" a;
        usage ()
    | name :: rest ->
        names := name :: !names;
        go rest
  in
  go args;
  (!quick, !listed, !json, !baseline, !filter, List.rev !names)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick, listed, json, baseline, filter, selected = parse_args args in
  if listed then begin
    List.iter (fun (name, descr, _) -> Printf.printf "%-22s %s\n" name descr) experiments;
    exit 0
  end;
  let unknown =
    List.filter (fun s -> not (List.exists (fun (n, _, _) -> n = s) experiments)) selected
  in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment(s): %s (try --list)\n" (String.concat ", " unknown);
    exit 1
  end;
  let to_run =
    if selected = [] then experiments
    else List.filter (fun (n, _, _) -> List.mem n selected) experiments
  in
  let to_run =
    match filter with
    | None -> to_run
    | Some pat ->
        let re =
          match Re.Posix.compile_pat pat with
          | re -> re
          | exception Re.Posix.Parse_error | (exception Re.Posix.Not_supported) ->
              Printf.eprintf "bad --filter regex %S\n" pat;
              exit 2
        in
        List.filter (fun (n, _, _) -> Re.execp re n) to_run
  in
  if to_run = [] then begin
    prerr_endline "no experiments selected (try --list)";
    exit 1
  end;
  let t0 = Unix.gettimeofday () in
  Printf.printf "DStress benchmark harness (%s mode, %d experiment(s))\n"
    (if quick then "quick" else "full")
    (List.length to_run);
  let failures =
    List.filter_map
      (fun (name, _, f) ->
        Bench_util.begin_suite name;
        let outcome =
          match f ~quick () with
          | () -> None
          | exception e ->
              Printf.eprintf "\n!! %s failed: %s\n%!" name (Printexc.to_string e);
              Some name
        in
        Bench_util.end_suite ();
        outcome)
      to_run
  in
  let mode = if quick then "quick" else "full" in
  let doc = Bench_util.collected_doc ~mode in
  Option.iter
    (fun file ->
      Dstress_obs.Bench_result.write_file file doc;
      Printf.printf "\nresults written to %s\n" file)
    json;
  Option.iter
    (fun dir ->
      (* Create the output dir rather than scattering BENCH_*.json
         wherever the invocation cwd happens to be when it is missing. *)
      let rec ensure d =
        if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
          ensure (Filename.dirname d);
          Sys.mkdir d 0o755
        end
      in
      ensure dir;
      List.iter
        (fun (s : Dstress_obs.Bench_result.suite) ->
          let file = Filename.concat dir ("BENCH_" ^ s.suite ^ ".json") in
          Dstress_obs.Bench_result.write_file file
            { Dstress_obs.Bench_result.mode; suites = [ s ] };
          Printf.printf "baseline written to %s\n" file)
        doc.Dstress_obs.Bench_result.suites)
    baseline;
  Printf.printf "\nAll benchmarks finished in %.1f s.\n" (Unix.gettimeofday () -. t0);
  if failures <> [] then begin
    Printf.eprintf "failed experiment(s): %s\n" (String.concat ", " failures);
    exit 1
  end
