(* §5.5 baseline: systemic risk as one monolithic MPC. We time N x N
   matrix multiplications under GMW for growing N, observe the cubic
   blow-up, and extrapolate to the full banking system — then compare
   against the DStress projection computed with the *same* unit costs, so
   the headline ratio ("hours vs years") is backend-independent. *)

open Bench_util
module Matmul = Dstress_baseline.Matmul
module Projection = Dstress_costmodel.Projection

let run ~quick () =
  header "Baseline: monolithic-MPC matrix multiplication (§5.5)";
  let sizes = if quick then [ 3; 4; 5 ] else [ 4; 6; 8; 10 ] in
  let bits = 12 and parties = 3 in
  Printf.printf "(N x N matrices of %d-bit entries, %d-party GMW; paper: 1.8 min at N=10,\n" bits parties;
  Printf.printf " 40 min at N=25 in Wysteria, out of memory beyond)\n\n";
  Printf.printf "%8s %12s %12s %14s\n" "N" "ANDs" "time" "total MB";
  let measurements =
    List.map
      (fun n ->
        let m = Matmul.measure grp ~parties ~n ~bits ~seed:("baseline" ^ string_of_int n) in
        emit
          (Bench_result.make_result
             ~params:[ ("n", Json.Int n) ]
             ~wall:
               { Bench_result.median_s = m.Matmul.seconds; min_s = m.Matmul.seconds;
                 p10_s = m.Matmul.seconds; p90_s = m.Matmul.seconds }
             ~counters:
               [
                 ("and_gates", m.Matmul.and_count);
                 ("traffic.total_bytes", m.Matmul.total_bytes);
               ]
             "matmul");
        Printf.printf "%8d %12d %10.2f s %12.2f\n" n m.Matmul.and_count m.Matmul.seconds
          (mb m.Matmul.total_bytes);
        m)
      sizes
  in
  let c = Matmul.fit_cubic measurements in
  Printf.printf "\ncubic fit: time = %.3g * N^3 seconds\n" c;
  let n_banks = 1750 and powers = 11 in
  let naive_seconds = Matmul.extrapolate_seconds ~c ~n:n_banks ~powers in
  Printf.printf "extrapolated: raising a %dx%d matrix to the %dth power takes %.1f years\n"
    n_banks n_banks (powers + 1)
    (Matmul.years naive_seconds);
  (* DStress with the same unit costs. *)
  let units = Projection.measure_units grp ~seed:"baseline-units" in
  let dstress = Projection.project units Projection.paper_scale in
  Printf.printf "DStress projection at the same scale: %.2f hours\n"
    (dstress.Projection.total_seconds /. 3600.0);
  record "extrapolation"
    ~floats:
      [
        ("cubic_fit_c", c);
        ("naive_years", Matmul.years naive_seconds);
        ("dstress_hours", dstress.Projection.total_seconds /. 3600.0);
        ("ratio", naive_seconds /. dstress.Projection.total_seconds);
      ];
  Printf.printf "  -> naive MPC / DStress ratio: x%.0f (paper: ~287 years vs ~4.8 h, x%.0f)\n"
    (naive_seconds /. dstress.Projection.total_seconds)
    (287.0 *. 365.25 *. 24.0 /. 4.8)
