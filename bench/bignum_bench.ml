(* Microbenchmarks of the rebuilt bignum/crypto hot path at real 2048-bit
   parameters, plus one end-to-end EN run on ffdhe2048 — the workload the
   kernel refactor exists to make feasible.

   The speedup yardstick is a seed-faithful reference exponentiation
   embedded below: the pre-refactor kernel shape (26-bit limbs, a fresh
   buffer allocated per multiplication, a fresh Montgomery context per
   call). Wall times and speedup ratios are informational floats; the
   gated counters are the mismatch counts of each fast path against the
   reference (always 0) and the deterministic outputs of the EN run. *)

open Bench_util
module Nat = Dstress_bignum.Nat
module Elgamal = Dstress_crypto.Elgamal
module Engine = Dstress_runtime.Engine
module Executor = Dstress_runtime.Executor
module Graph = Dstress_runtime.Graph
module En_program = Dstress_risk.En_program
module Topology = Dstress_graphgen.Topology
module Banking = Dstress_graphgen.Banking

(* ------------------------------------------------------------------ *)
(* Seed-faithful reference: allocating 26-bit CIOS Montgomery ladder    *)
(* ------------------------------------------------------------------ *)

module Ref = struct
  let limb_bits = 26
  let mask = (1 lsl limb_bits) - 1

  (* Big-endian bytes of a Nat, viewed as a little-endian bit string. *)
  let bit_of_bytes b i =
    let nbytes = Bytes.length b in
    let byte = nbytes - 1 - (i / 8) in
    if byte < 0 then 0 else (Char.code (Bytes.get b byte) lsr (i mod 8)) land 1

  let limbs_of_nat k v =
    let b = Nat.to_bytes_be v in
    Array.init k (fun j ->
        let acc = ref 0 in
        for t = limb_bits - 1 downto 0 do
          acc := (!acc lsl 1) lor bit_of_bytes b ((j * limb_bits) + t)
        done;
        !acc)

  let nat_of_limbs limbs =
    Array.fold_right
      (fun limb acc -> Nat.add (Nat.shift_left acc limb_bits) (Nat.of_int limb))
      limbs Nat.zero

  (* -m^-1 mod 2^26 by Newton-Hensel iteration. *)
  let m0' m0 =
    let x = ref 1 in
    for _ = 1 to 5 do
      x := !x * (2 - (m0 * !x)) land mask
    done;
    (- !x) land mask

  let ge_limbs a b =
    let rec go i =
      if i < 0 then true
      else if a.(i) > b.(i) then true
      else if a.(i) < b.(i) then false
      else go (i - 1)
    in
    go (Array.length a - 1)

  let sub_limbs a b =
    let k = Array.length a in
    let r = Array.make k 0 in
    let borrow = ref 0 in
    for i = 0 to k - 1 do
      let x = a.(i) - b.(i) - !borrow in
      if x < 0 then (r.(i) <- x + mask + 1; borrow := 1)
      else (r.(i) <- x; borrow := 0)
    done;
    r

  (* One Montgomery multiplication, allocating its working buffer and its
     result — the per-op allocation pattern of the seed kernel. *)
  let mont_mul k m m0' a b =
    let t = Array.make (k + 1) 0 in
    for i = 0 to k - 1 do
      let ai = a.(i) in
      let t0 = t.(0) + (ai * b.(0)) in
      let mu = t0 * m0' land mask in
      let c = ref ((t0 + (mu * m.(0))) lsr limb_bits) in
      for j = 1 to k - 1 do
        let x = t.(j) + (ai * b.(j)) + (mu * m.(j)) + !c in
        t.(j - 1) <- x land mask;
        c := x lsr limb_bits
      done;
      let x = t.(k) + !c in
      t.(k - 1) <- x land mask;
      t.(k) <- x lsr limb_bits
    done;
    let r = Array.sub t 0 k in
    if t.(k) > 0 || ge_limbs r m then sub_limbs r m else r

  (* Generic modular exponentiation the way the seed did it: fresh
     context per call, 4-bit window, allocating multiplications. *)
  let mod_pow ~base ~exp ~m =
    let k = (Nat.num_bits m + limb_bits - 1) / limb_bits in
    let ml = limbs_of_nat k m in
    let m0' = m0' ml.(0) in
    let r2 =
      limbs_of_nat k (Nat.rem (Nat.shift_left Nat.one (2 * limb_bits * k)) m)
    in
    let one_r = limbs_of_nat k (Nat.rem (Nat.shift_left Nat.one (limb_bits * k)) m) in
    let mul = mont_mul k ml m0' in
    let bm = mul (limbs_of_nat k (Nat.rem base m)) r2 in
    (* 4-bit window table bm^1 .. bm^15 *)
    let table = Array.make 16 one_r in
    table.(1) <- bm;
    for i = 2 to 15 do
      table.(i) <- mul table.(i - 1) bm
    done;
    let eb = Nat.to_bytes_be exp in
    let ebits = Nat.num_bits exp in
    let ndigits = (ebits + 3) / 4 in
    let digit i =
      (bit_of_bytes eb ((4 * i) + 3) lsl 3)
      lor (bit_of_bytes eb ((4 * i) + 2) lsl 2)
      lor (bit_of_bytes eb ((4 * i) + 1) lsl 1)
      lor bit_of_bytes eb (4 * i)
    in
    let acc = ref one_r in
    for i = ndigits - 1 downto 0 do
      for _ = 1 to 4 do
        acc := mul !acc !acc
      done;
      let d = digit i in
      if d <> 0 then acc := mul !acc table.(d)
    done;
    nat_of_limbs (mul !acc (limbs_of_nat k Nat.one))
end

(* ------------------------------------------------------------------ *)
(* Suite                                                               *)
(* ------------------------------------------------------------------ *)

let mismatch expected got = if Nat.equal expected got then 0 else 1

let run ~quick () =
  header "bignum kernel (2048-bit hot path)";
  let grp2048 = Group.by_name "ffdhe2048" in
  let p = Group.p grp2048 in
  let bits = Nat.num_bits p in
  let prg = Prg.of_string "bignum-bench" in
  let rand_elt () = Group.pow_g grp2048 (Group.random_exponent prg grp2048) in
  let repeats = if quick then 3 else 5 in
  (* mont-mul: the kernel everything reduces to. *)
  let ctx = Nat.Mont.create p in
  let a = rand_elt () and b = rand_elt () in
  let am = Nat.Mont.to_mont ctx a and bm = Nat.Mont.to_mont ctx b in
  let mul_iters = 2000 in
  ignore
    (measure ~repeats ~warmup:1 ~name:"mont-mul"
       ~params:[ ("bits", Json.Int bits) ]
       ~items:("mul", float_of_int mul_iters)
       ~telemetry:(fun r ->
         ([ ("mismatch", mismatch (Nat.mod_mul a b ~m:p) r) ], []))
       (fun () ->
         let acc = ref am in
         for _ = 1 to mul_iters do
           acc := Nat.Mont.mul ctx am bm
         done;
         Nat.Mont.from_mont ctx !acc));
  (* The yardstick: seed-shaped generic exponentiation. *)
  let e = Group.random_exponent prg grp2048 in
  let g = Group.g grp2048 in
  let ref_pow = measure ~repeats ~warmup:1 ~name:"generic-pow-ref"
      ~params:[ ("bits", Json.Int bits) ]
      (fun () -> Ref.mod_pow ~base:g ~exp:e ~m:p)
  in
  let ref_s =
    let _, s = time (fun () -> ignore (Ref.mod_pow ~base:g ~exp:e ~m:p)) in
    s
  in
  (* Current generic path (fresh Montgomery context per call). *)
  ignore
    (measure ~repeats ~warmup:1 ~name:"generic-pow"
       ~params:[ ("bits", Json.Int bits) ]
       ~telemetry:(fun r -> ([ ("mismatch", mismatch ref_pow r) ], []))
       (fun () -> Nat.mod_pow ~base:g ~exp:e ~m:p));
  (* Fixed-base path through the group's window table. *)
  let fb, fb_s = time (fun () -> Group.pow_g grp2048 e) in
  ignore
    (measure ~repeats ~warmup:1 ~name:"fixed-base-pow"
       ~params:[ ("bits", Json.Int bits) ]
       ~telemetry:(fun r ->
         ( [ ("mismatch", mismatch ref_pow r) ],
           [ ("speedup_vs_ref", ref_s /. fb_s) ] ))
       (fun () -> Group.pow_g grp2048 e));
  ignore fb;
  Printf.printf "fixed-base vs seed generic: %.1fx\n" (ref_s /. fb_s);
  (* Multi-exponentiation product at batch sizes 1 / 16 / 64. *)
  List.iter
    (fun n ->
      let pairs =
        Array.init n (fun _ -> (rand_elt (), Group.random_exponent prg grp2048))
      in
      let expected =
        Array.fold_left
          (fun acc (b, e) -> Group.mul grp2048 acc (Group.pow grp2048 b e))
          Nat.one pairs
      in
      ignore
        (measure ~repeats ~warmup:1
           ~name:(Printf.sprintf "multi-exp-%d" n)
           ~params:[ ("bits", Json.Int bits); ("batch", Json.Int n) ]
           ~items:("exp", float_of_int n)
           ~telemetry:(fun r ->
             let _, s = time (fun () -> ignore (Group.multi_pow grp2048 pairs)) in
             ( [ ("mismatch", mismatch expected r) ],
               [ ("speedup_vs_ref_per_exp", float_of_int n *. ref_s /. s) ] ))
           (fun () -> Group.multi_pow grp2048 pairs)))
    [ 1; 16; 64 ];
  (* Block re-randomization of 64 ciphertexts under one key — the §3.5
     transfer shape. The batch must be draw-for-draw identical to the
     scalar loop, so the mismatch counter replays both from one seed. *)
  let block = 64 in
  let sk, pk = Elgamal.keygen prg grp2048 in
  ignore sk;
  let cts =
    Array.init block (fun _ -> { Elgamal.c1 = rand_elt (); c2 = rand_elt () })
  in
  let scalar_of_seed seed =
    let t = Prg.of_string seed in
    Array.map (fun c -> Elgamal.rerandomize t grp2048 pk c) cts
  in
  let batch_of_seed seed =
    let t = Prg.of_string seed in
    Elgamal.rerandomize_many t grp2048 pk cts
  in
  let expected = scalar_of_seed "rerand" in
  ignore
    (measure ~repeats ~warmup:1 ~name:(Printf.sprintf "block-rerand-%d" block)
       ~params:[ ("bits", Json.Int bits); ("batch", Json.Int block) ]
       ~items:("ct", float_of_int block)
       ~telemetry:(fun r ->
         let bad = ref 0 in
         Array.iteri
           (fun i c -> if not (Elgamal.ciphertext_equal expected.(i) c) then incr bad)
           r;
         let _, s = time (fun () -> ignore (batch_of_seed "rerand")) in
         ( [ ("mismatch", !bad) ],
           (* a scalar re-randomization costs two seed-generic pows per
              ciphertext *)
           [ ("speedup_vs_ref", 2.0 *. ref_s *. float_of_int block /. s) ] ))
       (fun () -> batch_of_seed "rerand"));
  (* End-to-end: an EN run at N = 100 with real 2048-bit parameters —
     infeasible before the kernel refactor, now a bench row. Sequential
     executor (this suite runs before any fork-sensitive ordering
     concerns) and the deterministic outputs gate the run. *)
  subheader "EN end-to-end on ffdhe2048 (N=100)";
  let n = 100 and iterations = 1 and k = 1 and l = 8 in
  let topo = Topology.ring ~n in
  let prng = Prng.of_int 0xB16 in
  let inst = Banking.en_of_topology prng topo () in
  let graph = En_program.graph_of_instance inst in
  let d = max 1 (Graph.max_degree graph) in
  let program = En_program.make ~l ~degree:d ~iterations () in
  let states = En_program.encode_instance inst ~graph ~l ~degree:d ~scale:0.25 in
  let cfg =
    { (Engine.default_config grp2048 ~k ~degree_bound:d ~seed:"bignum-en") with
      Engine.executor = Executor.sequential }
  in
  let report, wall = time (fun () -> Engine.run cfg program ~graph ~initial_states:states) in
  emit
    (Bench_result.make_result
       ~params:
         [
           ("n", Json.Int n); ("d", Json.Int d); ("k", Json.Int k); ("l", Json.Int l);
           ("group", Json.Str "ffdhe2048");
         ]
       ~wall:{ Bench_result.median_s = wall; min_s = wall; p10_s = wall; p90_s = wall }
       ~counters:
         [
           ("output", report.Engine.output);
           ("traffic.total_bytes", Dstress_mpc.Traffic.total report.Engine.traffic);
           ("and_gates", report.Engine.mpc_and_gates);
           ("unrecovered", report.Engine.unrecovered_failures);
         ]
       "en-ffdhe2048");
  Printf.printf "EN N=%d D=%d k=%d l=%d on ffdhe2048: wall %.1f s, output %d, %.1f MB total\n"
    n d k l wall report.Engine.output
    (mb (Dstress_mpc.Traffic.total report.Engine.traffic))
