(* Sliced-vs-scalar GMW equivalence.

   Gmw.eval_many packs up to 64 protocol instances into int64 wire words;
   its contract is that every per-instance observable — output shares,
   traffic matrix, rounds/AND/OT counters, PRG state — is bit-identical to
   running Gmw.eval per instance. These tests pin that contract on random
   circuits, the paper's EN and EGJ update circuits, the aggregation
   circuit, both OT backends, and through the engine (slice_width 1 vs
   grouped) under both executors. *)

open Dstress_mpc
module Bitvec = Dstress_util.Bitvec
module Prng = Dstress_util.Prng
module Prg = Dstress_crypto.Prg
module Group = Dstress_crypto.Group
module Ot_ext = Dstress_crypto.Ot_ext
module Circuit = Dstress_circuit.Circuit
module Builder = Dstress_circuit.Builder
module Word = Dstress_circuit.Word
module Fault = Dstress_faults.Fault
module En_program = Dstress_risk.En_program
module Egj_program = Dstress_risk.Egj_program
open Dstress_runtime

let grp = Group.by_name "toy"

(* ------------------------------------------------------------------ *)
(* Gmw.eval_many vs per-instance Gmw.eval                              *)
(* ------------------------------------------------------------------ *)

(* Two session arrays built from the same seeds are clones: running the
   scalar path on one and the sliced path on the other compares the two
   evaluators on identical protocol states. *)
let make_sessions ?(mode = Ot_ext.Simulation) ~parties ~count tag =
  Array.init count (fun i ->
      Gmw.create_session ~mode grp ~parties ~seed:(Printf.sprintf "slice:%s:%d" tag i))

let make_inputs ~parties ~count tag (circuit : Circuit.t) =
  let dealer = Prg.of_string ("slice-inputs:" ^ tag) in
  Array.init count (fun _ ->
      Sharing.share dealer ~parties (Prg.bits dealer circuit.Circuit.num_inputs))

let check_equiv ?mode ~parties ~count circuit tag =
  let a = make_sessions ?mode ~parties ~count tag in
  let b = make_sessions ?mode ~parties ~count tag in
  let inputs = make_inputs ~parties ~count tag circuit in
  let scalar = Array.mapi (fun i s -> Gmw.eval s circuit ~input_shares:inputs.(i)) a in
  let sliced = Gmw.eval_many b circuit ~input_shares:inputs in
  Alcotest.(check int) (tag ^ ": result count") count (Array.length sliced);
  for i = 0 to count - 1 do
    for p = 0 to parties - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "%s: instance %d party %d output" tag i p)
        true
        (Bitvec.equal scalar.(i).(p) sliced.(i).(p))
    done;
    Alcotest.(check bool)
      (Printf.sprintf "%s: instance %d traffic" tag i)
      true
      (Traffic.equal (Gmw.traffic a.(i)) (Gmw.traffic b.(i)));
    Alcotest.(check int)
      (Printf.sprintf "%s: instance %d rounds" tag i)
      (Gmw.rounds a.(i)) (Gmw.rounds b.(i));
    Alcotest.(check int)
      (Printf.sprintf "%s: instance %d AND gates" tag i)
      (Gmw.and_gates_evaluated a.(i))
      (Gmw.and_gates_evaluated b.(i));
    Alcotest.(check int)
      (Printf.sprintf "%s: instance %d OTs" tag i)
      (Gmw.ots_performed a.(i)) (Gmw.ots_performed b.(i));
    (* And both must be *correct*: reconstruction matches plaintext. *)
    let cleartext = Sharing.reconstruct inputs.(i) in
    let expected =
      Circuit.eval circuit (Array.of_list (Bitvec.to_bool_list cleartext))
      |> Array.to_list |> Bitvec.of_bool_list
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s: instance %d matches plaintext" tag i)
      true
      (Bitvec.equal expected (Sharing.reconstruct sliced.(i)))
  done

let random_circuit prng ~num_inputs ~gates =
  let rev = ref [] in
  let wires = ref 0 in
  let push g =
    rev := g :: !rev;
    incr wires
  in
  for k = 0 to num_inputs - 1 do
    push (Circuit.Input k)
  done;
  for _ = 1 to gates do
    let w () = Prng.int prng !wires in
    match Prng.int prng 10 with
    | 0 -> push (Circuit.Const (Prng.bool prng))
    | 1 | 2 -> push (Circuit.Not (w ()))
    | 3 | 4 | 5 -> push (Circuit.Xor (w (), w ()))
    | _ -> push (Circuit.And (w (), w ()))
  done;
  let n = !wires in
  let outputs = Array.init (min 16 n) (fun i -> n - 1 - i) in
  Circuit.make ~gates:(Array.of_list (List.rev !rev)) ~num_inputs ~outputs

let test_random_circuits () =
  let prng = Prng.of_int 424242 in
  for case = 0 to 4 do
    let c = random_circuit prng ~num_inputs:(4 + Prng.int prng 8) ~gates:(30 + Prng.int prng 40) in
    let count = Prng.pick prng [| 1; 2; 5; 11 |] in
    let parties = 2 + Prng.int prng 3 in
    check_equiv ~parties ~count c (Printf.sprintf "random-%d" case)
  done

let adder_circuit bits =
  let b = Builder.create () in
  let x = Word.inputs b ~bits in
  let y = Word.inputs b ~bits in
  Builder.finish b ~outputs:(Word.add b x y)

let test_full_and_overfull_slices () =
  (* 64 instances fill a word exactly; 70 forces a second chunk. *)
  let c = adder_circuit 4 in
  check_equiv ~parties:2 ~count:64 c "full-word";
  check_equiv ~parties:2 ~count:70 c "chunked"

let test_en_step () =
  let l = 8 and degree = 2 in
  let p = En_program.make ~l ~degree ~iterations:1 () in
  let c = Vertex_program.update_circuit p ~degree in
  check_equiv ~parties:3 ~count:5 c "en-step"

let test_egj_step () =
  let l = 8 and frac = 3 and degree = 2 in
  let p = Egj_program.make ~l ~frac ~degree ~iterations:1 () in
  let c = Vertex_program.update_circuit p ~degree in
  check_equiv ~parties:3 ~count:4 c "egj-step"

let test_aggregation_circuit () =
  let p = En_program.make ~l:8 ~degree:2 ~iterations:1 () in
  let c = Vertex_program.aggregate_circuit p ~count:3 in
  check_equiv ~parties:4 ~count:3 c "aggregation"

let test_crypto_mode () =
  (* The Crypto backend takes the faithful lane-by-lane path through
     extend_bits; equivalence must hold there too. *)
  let c = adder_circuit 4 in
  check_equiv ~mode:Ot_ext.Crypto ~parties:2 ~count:2 c "crypto"

let test_eval_many_rejects_mismatches () =
  let c = adder_circuit 4 in
  let s = make_sessions ~parties:2 ~count:2 "reject" in
  Alcotest.check_raises "share-set count"
    (Invalid_argument "Gmw.eval_many: need one input-share set per session") (fun () ->
      ignore (Gmw.eval_many s c ~input_shares:[||]));
  let mixed =
    [| s.(0); Gmw.create_session ~mode:Ot_ext.Simulation grp ~parties:3 ~seed:"odd" |]
  in
  Alcotest.check_raises "party count"
    (Invalid_argument "Gmw.eval_many: sessions must agree on party count and OT mode")
    (fun () ->
      ignore (Gmw.eval_many mixed c ~input_shares:(make_inputs ~parties:2 ~count:2 "reject" c)))

(* ------------------------------------------------------------------ *)
(* Plan compilation                                                    *)
(* ------------------------------------------------------------------ *)

let test_plan_partition () =
  let prng = Prng.of_int 7 in
  for case = 0 to 3 do
    let c = random_circuit prng ~num_inputs:6 ~gates:50 in
    let plan = Plan.compile c in
    Alcotest.(check int)
      (Printf.sprintf "case %d: depth" case)
      (Circuit.and_depth c) (Plan.depth plan);
    Alcotest.(check int)
      (Printf.sprintf "case %d: AND count" case)
      (Circuit.and_count c) (Plan.and_count plan);
    Alcotest.(check int)
      (Printf.sprintf "case %d: wires" case)
      (Circuit.num_gates c) (Plan.num_wires plan);
    (* The AND batch of round r holds exactly the AND gates at level r+1,
       in wire order. *)
    let levels = Circuit.and_levels c in
    Array.iteri
      (fun r (lv : Plan.level) ->
        let expected =
          c.Circuit.gates
          |> Array.to_seqi
          |> Seq.filter (fun (i, g) ->
                 match g with Circuit.And _ -> levels.(i) = r + 1 | _ -> false)
          |> Seq.map fst |> Array.of_seq
        in
        Alcotest.(check (array int))
          (Printf.sprintf "case %d round %d: batch" case r)
          expected lv.Plan.and_dst)
      (Plan.levels plan)
  done

let test_plan_memoized () =
  let c = adder_circuit 6 in
  Alcotest.(check bool) "same circuit, same plan" true
    (Plan.of_circuit c == Plan.of_circuit c)

(* ------------------------------------------------------------------ *)
(* Engine: slice_width must not be observable in the report            *)
(* ------------------------------------------------------------------ *)

let token_program ~l ~iterations =
  {
    Vertex_program.name = "token";
    state_bits = l;
    message_bits = l;
    iterations;
    sensitivity = 1;
    epsilon = 0.5;
    noise_max_magnitude = 40;
    agg_bits = l + 6;
    build_update =
      (fun b ~state ~incoming ->
        let total =
          Word.truncate (Word.sum b ~bits:(l + 4) (Array.to_list incoming)) ~bits:l
        in
        (total, Array.map (fun _ -> state) incoming));
    build_aggregand = (fun b ~state -> Word.zero_extend b state ~bits:(l + 6));
  }

let ring_graph n = Graph.create ~n ~edges:(List.init n (fun i -> (i, (i + 1) mod n)))

let check_same_report label (a : Engine.report) (b : Engine.report) =
  let phases l = List.map (fun (p, v) -> (Engine.phase_name p, v)) l in
  Alcotest.(check int) (label ^ ": output") a.Engine.output b.Engine.output;
  Alcotest.(check (list (pair string int))) (label ^ ": phase bytes")
    (phases a.Engine.phase_bytes) (phases b.Engine.phase_bytes);
  Alcotest.(check bool) (label ^ ": traffic matrix") true
    (Traffic.equal a.Engine.traffic b.Engine.traffic);
  Alcotest.(check int) (label ^ ": failures") a.Engine.transfer_failures
    b.Engine.transfer_failures;
  Alcotest.(check int) (label ^ ": retries") a.Engine.transfer_retries
    b.Engine.transfer_retries;
  Alcotest.(check int) (label ^ ": crash recoveries") a.Engine.crash_recoveries
    b.Engine.crash_recoveries;
  Alcotest.(check bool) (label ^ ": fault counters") true
    (a.Engine.faults_injected = b.Engine.faults_injected);
  Alcotest.(check (float 0.0)) (label ^ ": retry epsilon") a.Engine.retry_epsilon
    b.Engine.retry_epsilon;
  Alcotest.(check (list (pair string (float 0.0)))) (label ^ ": recovery seconds")
    (phases a.Engine.recovery_seconds)
    (phases b.Engine.recovery_seconds)
  |> ignore;
  Alcotest.(check int) (label ^ ": mpc rounds") a.Engine.mpc_rounds b.Engine.mpc_rounds;
  Alcotest.(check int) (label ^ ": mpc ANDs") a.Engine.mpc_and_gates b.Engine.mpc_and_gates;
  Alcotest.(check int) (label ^ ": mpc OTs") a.Engine.mpc_ots b.Engine.mpc_ots

let test_engine_slice_widths_agree () =
  let n = 9 and l = 8 in
  let g = ring_graph n in
  let p = token_program ~l ~iterations:3 in
  let states =
    let prng = Prng.of_int 17 in
    Array.init n (fun _ -> Bitvec.of_int ~bits:l (1 + Prng.int prng 10))
  in
  (* Crash faults exercise the per-vertex recovery accounting inside
     grouped tasks. *)
  let plan = Fault.random_crashes ~seed:5 ~nodes:n ~rounds:4 ~count:2 in
  let run ~slice_width ~executor =
    let cfg =
      { (Engine.default_config grp ~k:2 ~degree_bound:2 ~seed:"slice-eq") with
        Engine.executor; slice_width; fault_plan = plan }
    in
    Engine.run cfg p ~graph:g ~initial_states:states
  in
  let base = run ~slice_width:1 ~executor:Executor.sequential in
  check_same_report "scalar vs 64 (seq)" base (run ~slice_width:64 ~executor:Executor.sequential);
  check_same_report "scalar vs 7 (seq, uneven groups)" base
    (run ~slice_width:7 ~executor:Executor.sequential);
  check_same_report "scalar vs 64 (par)" base
    (run ~slice_width:64 ~executor:(Executor.parallel ~jobs:4));
  check_same_report "scalar (par) vs scalar (seq)" base
    (run ~slice_width:1 ~executor:(Executor.parallel ~jobs:4))

let test_engine_rejects_bad_slice_width () =
  let bad w =
    let cfg = { (Engine.default_config grp ~k:1 ~degree_bound:2) with Engine.slice_width = w } in
    Alcotest.check_raises
      (Printf.sprintf "slice_width %d" w)
      (Invalid_argument "Engine.run: slice_width must be in [1, 64]")
      (fun () -> Engine.validate_config cfg)
  in
  bad 0;
  bad 65

let () =
  Alcotest.run "slice"
    [
      ( "gmw-equivalence",
        [
          Alcotest.test_case "random circuits" `Quick test_random_circuits;
          Alcotest.test_case "full + chunked slices" `Quick test_full_and_overfull_slices;
          Alcotest.test_case "EN update step" `Quick test_en_step;
          Alcotest.test_case "EGJ update step" `Quick test_egj_step;
          Alcotest.test_case "aggregation circuit" `Quick test_aggregation_circuit;
          Alcotest.test_case "crypto OT backend" `Quick test_crypto_mode;
          Alcotest.test_case "rejects mismatches" `Quick test_eval_many_rejects_mismatches;
        ] );
      ( "plan",
        [
          Alcotest.test_case "level partition" `Quick test_plan_partition;
          Alcotest.test_case "memoized per circuit" `Quick test_plan_memoized;
        ] );
      ( "engine",
        [
          Alcotest.test_case "slice widths agree" `Quick test_engine_slice_widths_agree;
          Alcotest.test_case "rejects bad slice width" `Quick
            test_engine_rejects_bad_slice_width;
        ] );
    ]
