(* Daemon mode: the DSTRESS-REQ/1 codec, the persistent worker pool and
   the serve loop.

   Layers under test:

   - wire format: golden byte fixtures for request/response encodings,
     qcheck round-trip properties, and rejection of malformed payloads
     (bad magic, bad version, unknown tags, truncated and oversized
     bodies) plus frame-level garbage and CRC corruption against a live
     daemon;
   - pool differential: concurrent requests through the persistent pool
     must return summaries — output, counters and tick-domain Obs export
     bytes — identical to a solo sequential run of the same seeded
     config, whichever in-worker executor the request names;
   - lifecycle chaos: a seeded soak killing/stalling/partitioning
     persistent workers mid-request; every submission must terminate
     with a typed outcome (never a hang), and completed ones must still
     match the solo oracle byte for byte;
   - daemon end-to-end: concurrent clients over Unix-socket and TCP
     listeners, typed backpressure, and graceful SIGTERM drain (the
     in-flight request completes, the daemon exits 0).

   Fork-before-domain ordering: everything here forks (pool workers,
   daemon children) and nothing spawns a domain in the test process
   itself — solo oracles always run on the sequential executor, and
   parallel[:N] requests spawn their domains inside a forked worker. *)

module Hex = Dstress_util.Hex
module Group = Dstress_crypto.Group
module Ot_ext = Dstress_crypto.Ot_ext
module Fault = Dstress_faults.Fault
module Obs = Dstress_obs.Obs
module Metrics = Dstress_obs.Obs.Metrics
module Reference = Dstress_risk.Reference
module En_program = Dstress_risk.En_program
module Egj_program = Dstress_risk.Egj_program
open Dstress_runtime

let grp = Group.by_name "toy"

let contains_substring ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Wire format: golden fixtures                                        *)
(* ------------------------------------------------------------------ *)

let golden_request =
  {
    Service.workload = Service.Egj;
    core = 3;
    periphery = 5;
    iterations = 4;
    k = 2;
    seed = 42;
    slice_width = 16;
    ot_mode = Ot_ext.Crypto;
    preprocess = true;
    executor = "parallel:3";
  }

(* DREQ | version 1 | workload egj | ot crypto | flags preprocess |
   seed 42 | core 3 | periphery 5 | iterations 4 | k 2 | slice 16 |
   len 10 | "parallel:3" — all little-endian. *)
let golden_request_hex =
  "44524551" ^ "01" ^ "01" ^ "01" ^ "01" ^ "2a00000000000000" ^ "03000000" ^ "05000000"
  ^ "04000000" ^ "02000000" ^ "10000000" ^ "0a00" ^ "706172616c6c656c3a33"

let golden_summary =
  {
    Service.output = 7;
    mpc_rounds = 2;
    mpc_and_gates = 3;
    mpc_ots = 4;
    trace = "[]";
    metrics = "{}";
  }

(* DRSP | version 1 | status completed | output 7 | rounds 2 | gates 3 |
   OTs 4 | trace "[]" | metrics "{}". *)
let golden_completed_hex =
  "44525350" ^ "01" ^ "00" ^ "0700000000000000" ^ "0200000000000000" ^ "0300000000000000"
  ^ "0400000000000000" ^ "02000000" ^ "5b5d" ^ "02000000" ^ "7b7d"

(* DRSP | version 1 | status rejected | message "nope". *)
let golden_rejected_hex = "44525350" ^ "01" ^ "01" ^ "04000000" ^ "6e6f7065"

let test_golden_request () =
  Alcotest.(check string)
    "request bytes" golden_request_hex
    (Hex.encode (Service.encode_request golden_request));
  match Service.decode_request (Hex.decode golden_request_hex) with
  | Ok r -> Alcotest.(check bool) "golden decodes back" true (r = golden_request)
  | Error e -> Alcotest.failf "golden request must decode: %s" e

let test_golden_response () =
  Alcotest.(check string)
    "completed bytes" golden_completed_hex
    (Hex.encode (Service.encode_response (Service.Completed golden_summary)));
  Alcotest.(check string)
    "rejected bytes" golden_rejected_hex
    (Hex.encode (Service.encode_response (Service.Rejected "nope")));
  (match Service.decode_response (Hex.decode golden_completed_hex) with
  | Ok (Service.Completed s) ->
      Alcotest.(check bool) "summary round" true (s = golden_summary)
  | _ -> Alcotest.fail "golden completed must decode");
  match Service.decode_response (Hex.decode golden_rejected_hex) with
  | Ok (Service.Rejected m) -> Alcotest.(check string) "message" "nope" m
  | _ -> Alcotest.fail "golden rejected must decode"

(* ------------------------------------------------------------------ *)
(* Wire format: malformed payloads                                     *)
(* ------------------------------------------------------------------ *)

let expect_decode_error label what = function
  | Error e ->
      Alcotest.(check bool)
        (label ^ ": mentions " ^ what)
        true (contains_substring ~sub:what e)
  | Ok _ -> Alcotest.failf "%s: malformed payload must be rejected" label

let with_byte b i v =
  let c = Bytes.copy b in
  Bytes.set c i (Char.chr v);
  c

let test_malformed_request () =
  let good = Service.encode_request golden_request in
  expect_decode_error "bad magic" "magic"
    (Service.decode_request (with_byte good 0 0x58));
  expect_decode_error "bad version" "version"
    (Service.decode_request (with_byte good 4 9));
  expect_decode_error "unknown workload" "workload"
    (Service.decode_request (with_byte good 5 7));
  expect_decode_error "unknown ot" "OT mode" (Service.decode_request (with_byte good 6 9));
  (* Truncations at every prefix length must reject, never read junk. *)
  for len = 0 to Bytes.length good - 1 do
    match Service.decode_request (Bytes.sub good 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation to %d bytes must be rejected" len
  done;
  expect_decode_error "trailing bytes" "trailing"
    (Service.decode_request (Bytes.cat good (Bytes.make 1 'x')))

let test_malformed_response () =
  let good = Service.encode_response (Service.Completed golden_summary) in
  expect_decode_error "bad magic" "magic"
    (Service.decode_response (with_byte good 0 0x58));
  expect_decode_error "bad version" "version"
    (Service.decode_response (with_byte good 4 9));
  expect_decode_error "unknown status" "status"
    (Service.decode_response (with_byte good 5 9));
  for len = 0 to Bytes.length good - 1 do
    match Service.decode_response (Bytes.sub good 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation to %d bytes must be rejected" len
  done;
  expect_decode_error "trailing bytes" "trailing"
    (Service.decode_response (Bytes.cat good (Bytes.make 1 'x')))

let test_validate_request () =
  let ok r = Service.validate_request r = Ok () in
  Alcotest.(check bool) "golden valid" true (ok golden_request);
  Alcotest.(check bool) "zero core" false (ok { golden_request with Service.core = 0 });
  Alcotest.(check bool) "zero iterations" false
    (ok { golden_request with Service.iterations = 0 });
  Alcotest.(check bool) "slice 0" false
    (ok { golden_request with Service.slice_width = 0 });
  Alcotest.(check bool) "slice 65" false
    (ok { golden_request with Service.slice_width = 65 });
  Alcotest.(check bool) "huge network" false
    (ok { golden_request with Service.core = 4096; periphery = 4096 });
  Alcotest.(check bool) "bogus executor" false
    (ok { golden_request with Service.executor = "bogus:seven" });
  Alcotest.(check bool) "empty executor means sequential" true
    (ok { golden_request with Service.executor = "" })

(* ------------------------------------------------------------------ *)
(* Wire format: qcheck round trips                                     *)
(* ------------------------------------------------------------------ *)

let gen_request =
  QCheck2.Gen.(
    let* workload = oneofl [ Service.En; Service.Egj ] in
    let* ot_mode = oneofl [ Ot_ext.Simulation; Ot_ext.Crypto ] in
    let* preprocess = bool in
    let* seed = int_range (-1000000) 1000000 in
    let* core = int_range 1 64 in
    let* periphery = int_range 1 64 in
    let* iterations = int_range 1 32 in
    let* k = int_range 1 8 in
    let* slice_width = int_range 1 64 in
    let* executor = oneofl [ ""; "sequential"; "parallel:3"; "distributed:2" ] in
    return
      {
        Service.workload;
        core;
        periphery;
        iterations;
        k;
        seed;
        slice_width;
        ot_mode;
        preprocess;
        executor;
      })

let prop_request_roundtrip =
  QCheck2.Test.make ~name:"DSTRESS-REQ/1 request roundtrip" ~count:300 gen_request
    (fun r -> Service.decode_request (Service.encode_request r) = Ok r)

let gen_response =
  QCheck2.Gen.(
    let* tag = int_bound 2 in
    match tag with
    | 0 ->
        let* output = int_range (-1000000) 1000000 in
        let* mpc_rounds = int_bound 100000 in
        let* mpc_and_gates = int_bound 100000 in
        let* mpc_ots = int_bound 100000 in
        let* trace = string_size (int_bound 200) in
        let* metrics = string_size (int_bound 200) in
        return
          (Service.Completed
             { Service.output; mpc_rounds; mpc_and_gates; mpc_ots; trace; metrics })
    | 1 ->
        let* m = string_size (int_bound 100) in
        return (Service.Rejected m)
    | _ ->
        let* m = string_size (int_bound 100) in
        return (Service.Degraded m))

let prop_response_roundtrip =
  QCheck2.Test.make ~name:"DSTRESS-REQ/1 response roundtrip" ~count:300 gen_response
    (fun r -> Service.decode_response (Service.encode_response r) = Ok r)

(* ------------------------------------------------------------------ *)
(* A real engine handler over the small EN/EGJ fixtures                *)
(* ------------------------------------------------------------------ *)

let small_economy =
  {
    Reference.en_n = 4;
    cash = [| 0.0; 12.0; 20.0; 8.0 |];
    debts = [ (0, 1, 15.0); (1, 2, 10.0); (2, 3, 12.0); (3, 0, 4.0) ];
  }

let en_fixture ~iterations =
  let graph = En_program.graph_of_instance small_economy in
  let d = Graph.max_degree graph in
  let p =
    En_program.make ~epsilon:50.0 ~sensitivity:1 ~noise_max:2 ~l:12 ~degree:d ~iterations
      ()
  in
  let states =
    En_program.encode_instance small_economy ~graph ~l:12 ~degree:d ~scale:0.25
  in
  (graph, d, p, states)

let egj_fixture () =
  let inst =
    {
      Reference.egj_n = 3;
      base_assets = [| 20.0; 70.0; 60.0 |];
      orig_val = [| 100.0; 100.0; 90.0 |];
      threshold = [| 80.0; 80.0; 72.0 |];
      penalty = [| 10.0; 10.0; 10.0 |];
      holdings = [ (0, 1, 0.3); (1, 0, 0.3); (1, 2, 0.2); (2, 1, 0.2) ];
    }
  in
  let graph = Egj_program.graph_of_instance inst in
  let d = max 1 (Graph.max_degree graph) in
  let p =
    Egj_program.make ~epsilon:50.0 ~sensitivity:1 ~noise_max:2 ~l:14 ~frac:4 ~degree:d
      ~iterations:2 ()
  in
  let states = Egj_program.encode_instance inst ~graph ~l:14 ~frac:4 ~degree:d ~scale:1.0 in
  (graph, d, p, states)

(* The handler the persistent workers inherit: one ordinary engine run
   per request on the small fixtures, every request-visible knob (seed,
   iterations, k, slice width, OT mode, preprocess, executor) honored. *)
let handler (req : Service.request) =
  let graph, d, p, states =
    match req.Service.workload with
    | Service.En -> en_fixture ~iterations:req.Service.iterations
    | Service.Egj -> egj_fixture ()
  in
  let executor =
    match Service.request_executor req with Ok e -> e | Error m -> failwith m
  in
  let cfg =
    { (Engine.default_config grp ~k:req.Service.k ~degree_bound:d
         ~seed:(string_of_int req.Service.seed))
      with
      Engine.executor;
      ot_mode = req.Service.ot_mode;
      slice_width = req.Service.slice_width;
      preprocess = req.Service.preprocess;
      obs_level = Obs.Full;
    }
  in
  let report = Engine.run cfg p ~graph ~initial_states:states in
  {
    Service.output = report.Engine.output;
    mpc_rounds = report.Engine.mpc_rounds;
    mpc_and_gates = report.Engine.mpc_and_gates;
    mpc_ots = report.Engine.mpc_ots;
    trace = Obs.trace_json report.Engine.obs;
    metrics = Obs.metrics_json report.Engine.obs;
  }

let base_request =
  {
    Service.workload = Service.En;
    core = 2;
    periphery = 2;
    iterations = 2;
    k = 2;
    seed = 1;
    slice_width = 64;
    ot_mode = Ot_ext.Simulation;
    preprocess = false;
    executor = "";
  }

(* The solo oracle: the same request run sequentially in this process.
   Tick-domain exports are executor-invariant, so this is the expected
   answer for every in-worker executor spec. *)
let oracle req = handler { req with Service.executor = "" }

let check_summary_equal label (want : Service.summary) (got : Service.summary) =
  Alcotest.(check int) (label ^ ": output") want.Service.output got.Service.output;
  Alcotest.(check int) (label ^ ": rounds") want.Service.mpc_rounds got.Service.mpc_rounds;
  Alcotest.(check int)
    (label ^ ": AND gates")
    want.Service.mpc_and_gates got.Service.mpc_and_gates;
  Alcotest.(check int) (label ^ ": OTs") want.Service.mpc_ots got.Service.mpc_ots;
  Alcotest.(check string) (label ^ ": trace bytes") want.Service.trace got.Service.trace;
  Alcotest.(check string)
    (label ^ ": metrics bytes")
    want.Service.metrics got.Service.metrics

(* Keep the default heartbeat cadence and phi: a service task is a whole
   CPU-bound engine run, during which the worker's heartbeat thread only
   gets scheduled at the OCaml thread tick (~50 ms), so a tight
   phi-4/20ms detector false-positives under load and burns the respawn
   budget on healthy workers. *)
let quick_opts =
  {
    Service.default_pool_opts with
    Service.workers = 2;
    poll_interval = 0.02;
    request_deadline = 60.0;
  }

let run_pool_until pool ~pending ~deadline =
  let until = Unix.gettimeofday () +. deadline in
  while !pending > 0 && Unix.gettimeofday () < until do
    Service.pool_step pool ~timeout:0.05
  done;
  Alcotest.(check int) "every request terminated with a typed outcome" 0 !pending

(* ------------------------------------------------------------------ *)
(* Pool differential: persistent workers == solo sequential            *)
(* ------------------------------------------------------------------ *)

let test_pool_differential () =
  let pool = Service.create_pool ~opts:quick_opts ~handler () in
  (* Mixed workloads, seeds and in-worker executors, all in flight at
     once over 2 persistent workers — plus a duplicated config (seeds 21
     and 21) that must produce identical bytes. *)
  let reqs =
    [
      { base_request with Service.seed = 21 };
      { base_request with Service.seed = 21; executor = "parallel:2" };
      { base_request with Service.seed = 22; executor = "distributed:2" };
      { base_request with Service.seed = 23; slice_width = 1 };
      { base_request with Service.workload = Service.Egj; seed = 24 };
      { base_request with Service.seed = 25; preprocess = true };
    ]
  in
  let n = List.length reqs in
  let results = Array.make n None in
  let pending = ref n in
  List.iteri
    (fun i r ->
      match
        Service.submit pool r (fun resp ->
            results.(i) <- Some resp;
            decr pending)
      with
      | `Queued -> ()
      | `Queue_full | `No_workers -> Alcotest.failf "submit %d rejected" i)
    reqs;
  run_pool_until pool ~pending ~deadline:120.0;
  List.iteri
    (fun i r ->
      match results.(i) with
      | Some (Service.Completed s) ->
          check_summary_equal (Printf.sprintf "request %d" i) (oracle r) s
      | Some (Service.Rejected m) -> Alcotest.failf "request %d rejected: %s" i m
      | Some (Service.Degraded m) -> Alcotest.failf "request %d degraded: %s" i m
      | None -> Alcotest.failf "request %d never resolved" i)
    reqs;
  let m = Service.pool_metrics pool in
  Alcotest.(check int) "all completed" n (Metrics.counter m "service.requests_completed");
  Alcotest.(check bool) "dispatches counted" true
    (Metrics.counter m "service.requests_dispatched" >= n);
  Service.shutdown_pool pool

let test_pool_queue_backpressure () =
  let opts = { quick_opts with Service.workers = 1; queue_depth = 2 } in
  let pool = Service.create_pool ~opts ~handler () in
  let pending = ref 0 in
  let submit r =
    Service.submit pool r (fun _ -> decr pending)
  in
  (* Nothing is stepped yet, so the queue fills: depth 2, then typed
     backpressure without invoking the callback. *)
  Alcotest.(check bool) "first queued" true (submit base_request = `Queued);
  incr pending;
  Alcotest.(check bool) "second queued" true
    (submit { base_request with Service.seed = 2 } = `Queued);
  incr pending;
  Alcotest.(check bool) "third rejected" true
    (submit { base_request with Service.seed = 3 } = `Queue_full);
  let m = Service.pool_metrics pool in
  Alcotest.(check int) "rejection counted" 1 (Metrics.counter m "service.requests_rejected");
  run_pool_until pool ~pending ~deadline:120.0;
  Service.shutdown_pool pool

let test_pool_handler_failure_is_typed () =
  let pool =
    Service.create_pool ~opts:quick_opts
      ~handler:(fun req ->
        if req.Service.seed = 13 then failwith "unlucky" else handler req)
      ()
  in
  let outcome = ref None and pending = ref 2 in
  let ok = ref None in
  ignore
    (Service.submit pool { base_request with Service.seed = 13 } (fun r ->
         outcome := Some r;
         decr pending));
  ignore
    (Service.submit pool { base_request with Service.seed = 14 } (fun r ->
         ok := Some r;
         decr pending));
  run_pool_until pool ~pending ~deadline:120.0;
  (match !outcome with
  | Some (Service.Degraded m) ->
      Alcotest.(check bool) "message surfaced" true (contains_substring ~sub:"unlucky" m)
  | _ -> Alcotest.fail "handler exception must degrade that request");
  (match !ok with
  | Some (Service.Completed s) ->
      (* The worker survives its handler's exception: the next request on
         the same pool still completes and still matches the oracle. *)
      check_summary_equal "after failure" (oracle { base_request with Service.seed = 14 }) s
  | _ -> Alcotest.fail "pool must keep serving after a handler failure");
  Service.shutdown_pool pool

(* ------------------------------------------------------------------ *)
(* Lifecycle chaos: wire faults against persistent workers             *)
(* ------------------------------------------------------------------ *)

let test_pool_chaos_soak () =
  let opts =
    {
      quick_opts with
      Service.request_deadline = 20.0;
      max_respawns_per_slot = 8;
      max_attempts_per_request = 4;
    }
  in
  let pool = Service.create_pool ~opts ~handler () in
  let plan =
    Fault.random_wire_plan ~seed:0xD5 ~workers:2 ~batches:10
      { Fault.disconnect = 0.12; stall = 0.10; partition = 0.08 }
  in
  let inj = Fault.Injector.create plan in
  (* Guarantee at least one of each kind fires on top of the random
     plan, so the soak always exercises disconnect, stall and fence. *)
  Service.set_pool_fault_source pool (fun ~request_index ~worker ->
      let extra =
        match (request_index, worker) with
        | 0, 0 -> [ Fault.Disconnect_worker { worker = 0; batch = 0 } ]
        | 1, 1 -> [ Fault.Stall_worker { worker = 1; batch = 1; seconds = 0.15 } ]
        | 2, _ ->
            [ Fault.Partition_worker { worker; from_batch = 2; until_batch = 3 } ]
        | _ -> []
      in
      extra @ Fault.Injector.wire_faults inj ~batch:request_index ~worker);
  let n = 8 in
  let results = Array.make n None in
  let pending = ref n in
  for i = 0 to n - 1 do
    let r = { base_request with Service.seed = 100 + i } in
    match
      Service.submit pool r (fun resp ->
          results.(i) <- Some resp;
          decr pending)
    with
    | `Queued -> ()
    | `Queue_full | `No_workers -> Alcotest.failf "submit %d rejected" i
  done;
  let t0 = Unix.gettimeofday () in
  run_pool_until pool ~pending ~deadline:180.0;
  Alcotest.(check bool) "terminated well before the test deadline" true
    (Unix.gettimeofday () -. t0 < 170.0);
  let completed = ref 0 and degraded = ref [] in
  for i = 0 to n - 1 do
    match results.(i) with
    | Some (Service.Completed s) ->
        incr completed;
        check_summary_equal
          (Printf.sprintf "chaos request %d" i)
          (oracle { base_request with Service.seed = 100 + i })
          s
    | Some (Service.Degraded m) -> degraded := Printf.sprintf "%d: %s" i m :: !degraded
    | Some (Service.Rejected m) -> Alcotest.failf "chaos request %d rejected: %s" i m
    | None -> Alcotest.failf "chaos request %d hung" i
  done;
  (* The redispatch machinery must pull most requests through. *)
  if !completed * 2 < n then
    Alcotest.failf "too few completed (%d/%d); degrades: %s" !completed n
      (String.concat " | " (List.rev !degraded));
  let m = Service.pool_metrics pool in
  Alcotest.(check bool) "faults actually fired" true
    (Metrics.counter m "pool.worker_disconnects"
     + Metrics.counter m "pool.suspicions"
     + Metrics.counter m "pool.request_timeouts"
    > 0);
  Service.shutdown_pool pool

(* ------------------------------------------------------------------ *)
(* Daemon end-to-end: forked server, concurrent clients, drain         *)
(* ------------------------------------------------------------------ *)

let fork_daemon ?(opts = quick_opts) addr_spec =
  let listener, addr = Service.bind_listener addr_spec in
  flush stdout;
  flush stderr;
  let pid = Unix.fork () in
  if pid = 0 then begin
    (try Service.serve ~pool_opts:opts ~handler ~listener ~addr () with
    | _ -> Unix._exit 1);
    Unix._exit 0
  end;
  Unix.close listener;
  (pid, addr)

let svc_socket_path tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "dstress-svc-%s-%d.sock" tag (Unix.getpid ()))

let wait_child pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> code
  | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> -1

(* A failed assertion mid-test must not leak a daemon (and its worker
   pool) into the rest of the suite — stray busy processes skew the
   heartbeat timing of every later test. *)
let with_daemon ?opts addr_spec f =
  let pid, addr = fork_daemon ?opts addr_spec in
  Fun.protect
    ~finally:(fun () ->
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (wait_child pid)
      | _ -> ()
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ())
    (fun () -> f pid addr)

let connect_unix path = Transport.connect ~attempts:50 ~backoff:0.02 ~path ()

let test_daemon_concurrent_unix () =
  let path = svc_socket_path "conc" in
  with_daemon (Service.Unix_socket path) @@ fun pid _addr ->
  let reqs =
    [|
      { base_request with Service.seed = 31 };
      { base_request with Service.seed = 31 };
      { base_request with Service.seed = 32; executor = "parallel:2" };
      { base_request with Service.workload = Service.Egj; seed = 33 };
    |]
  in
  (* One connection per client, every request frame sent before any
     response is read: all four are in flight at the daemon at once.
     (No client threads — this process forks more daemons later, and a
     fork after Thread.create would leave the children's thread runtime
     broken, the same hazard as fork-after-Domain.spawn.) *)
  let conns = Array.map (fun _ -> connect_unix path) reqs in
  Array.iteri
    (fun i r ->
      ignore
        (Transport.send conns.(i) ~kind:Transport.Kind.request ~epoch:0
           (Service.encode_request r)))
    reqs;
  let results = Array.make (Array.length reqs) None in
  let deadline = Unix.gettimeofday () +. 120.0 in
  let remaining () = Array.exists (fun r -> r = None) results in
  while remaining () && Unix.gettimeofday () < deadline do
    Array.iteri
      (fun i conn ->
        if results.(i) = None then
          match Transport.recv conn ~timeout:0.05 with
          | Some fr when fr.Transport.kind = Transport.Kind.response -> (
              match Service.decode_response fr.Transport.payload with
              | Ok resp -> results.(i) <- Some resp
              | Error e -> Alcotest.failf "client %d: bad response: %s" i e)
          | Some _ | None -> ())
      conns
  done;
  Array.iter Transport.close conns;
  Array.iteri
    (fun i r ->
      match results.(i) with
      | Some (Service.Completed s) ->
          check_summary_equal (Printf.sprintf "client %d" i) (oracle r) s
      | Some (Service.Rejected m) -> Alcotest.failf "client %d rejected: %s" i m
      | Some (Service.Degraded m) -> Alcotest.failf "client %d degraded: %s" i m
      | None -> Alcotest.failf "client %d got no response" i)
    reqs;
  (* Identical seeded requests answered concurrently are byte-identical. *)
  (match (results.(0), results.(1)) with
  | Some (Service.Completed a), Some (Service.Completed b) ->
      check_summary_equal "same seed, same bytes" a b
  | _ -> Alcotest.fail "expected both same-seed requests to complete");
  Unix.kill pid Sys.sigterm;
  Alcotest.(check int) "daemon drains to exit 0" 0 (wait_child pid)

let test_daemon_malformed_and_garbage () =
  let path = svc_socket_path "mal" in
  with_daemon (Service.Unix_socket path) @@ fun pid _addr ->
  (* A well-framed request whose payload is not DSTRESS-REQ/1 gets a
     typed reject and the connection stays usable. *)
  let conn = connect_unix path in
  ignore
    (Transport.send conn ~kind:Transport.Kind.request ~epoch:0
       (Bytes.of_string "not a request"));
  (match Service.call ~timeout:30.0 conn base_request with
  | exception Transport.Error _ -> Alcotest.fail "connection must survive a bad payload"
  | _ -> ());
  Transport.close conn;
  (* An invalid request (validated, not just parsed) is rejected. *)
  let conn = connect_unix path in
  (match Service.call ~timeout:30.0 conn { base_request with Service.slice_width = 99 } with
  | Service.Rejected m ->
      Alcotest.(check bool) "names the field" true
        (contains_substring ~sub:"slice_width" m)
  | _ -> Alcotest.fail "invalid request must be rejected");
  Transport.close conn;
  (* Raw garbage (bad frame magic) breaks framing: the daemon drops the
     connection rather than guess at the byte stream. *)
  let conn = connect_unix path in
  let junk = Bytes.of_string "XXXXGARBAGEGARBAGEGARBAGEGARBAGEGARBAGE" in
  ignore (Unix.write (Transport.fd conn) junk 0 (Bytes.length junk));
  (match Transport.recv conn ~timeout:10.0 with
  | exception Transport.Error (Transport.Closed _) -> ()
  | None -> Alcotest.fail "daemon must close a corrupted connection"
  | Some _ -> Alcotest.fail "daemon must not answer garbage");
  Transport.close conn;
  (* A corrupted CRC is an integrity violation: same drop. *)
  let conn = connect_unix path in
  let payload = Service.encode_request base_request in
  let frame = Bytes.create (36 + Bytes.length payload) in
  Bytes.blit_string "DSTR" 0 frame 0 4;
  Bytes.set frame 4 '\002';
  Bytes.set frame 5 (Char.chr Transport.Kind.request);
  Bytes.set_int32_le frame 8 0l (* epoch *);
  Bytes.set_int64_le frame 12 0L (* seq *);
  Bytes.set_int64_le frame 20 0L (* trace *);
  Bytes.set_int32_le frame 28 (Int32.of_int (Bytes.length payload));
  Bytes.set_int32_le frame 32 0xDEADl (* wrong CRC *);
  Bytes.blit payload 0 frame 36 (Bytes.length payload);
  ignore (Unix.write (Transport.fd conn) frame 0 (Bytes.length frame));
  (match Transport.recv conn ~timeout:10.0 with
  | exception Transport.Error (Transport.Closed _) -> ()
  | None -> Alcotest.fail "daemon must close on CRC mismatch"
  | Some _ -> Alcotest.fail "daemon must not answer a corrupt frame");
  Transport.close conn;
  (* After all that abuse, the daemon still serves and still drains. *)
  let conn = connect_unix path in
  (match Service.call ~timeout:120.0 conn base_request with
  | Service.Completed s -> check_summary_equal "still serving" (oracle base_request) s
  | Service.Rejected m -> Alcotest.failf "still-serving request rejected: %s" m
  | Service.Degraded m -> Alcotest.failf "still-serving request degraded: %s" m);
  Transport.close conn;
  Unix.kill pid Sys.sigterm;
  Alcotest.(check int) "clean drain" 0 (wait_child pid)

let test_daemon_tcp () =
  with_daemon (Service.Tcp ("127.0.0.1", 0)) @@ fun pid addr ->
  let port =
    match String.rindex_opt addr ':' with
    | Some i -> int_of_string (String.sub addr (i + 1) (String.length addr - i - 1))
    | None -> Alcotest.failf "unexpected bound address %S" addr
  in
  Alcotest.(check bool) "ephemeral port bound" true (port > 0);
  let conn = Transport.connect_tcp ~attempts:50 ~backoff:0.02 ~host:"127.0.0.1" ~port () in
  (match Service.call ~timeout:120.0 conn { base_request with Service.seed = 41 } with
  | Service.Completed s ->
      check_summary_equal "tcp == solo" (oracle { base_request with Service.seed = 41 }) s
  | Service.Rejected m -> Alcotest.failf "tcp request rejected: %s" m
  | Service.Degraded m -> Alcotest.failf "tcp request degraded: %s" m);
  Transport.close conn;
  Unix.kill pid Sys.sigterm;
  Alcotest.(check int) "tcp daemon drains to exit 0" 0 (wait_child pid)

let test_daemon_sigterm_drains_inflight () =
  let path = svc_socket_path "drain" in
  with_daemon (Service.Unix_socket path) @@ fun pid _addr ->
  let conn = connect_unix path in
  let req = { base_request with Service.seed = 51; iterations = 3 } in
  ignore
    (Transport.send conn ~kind:Transport.Kind.request ~epoch:0
       (Service.encode_request req));
  (* Let the daemon dispatch it, then ask for shutdown mid-request. *)
  Unix.sleepf 0.15;
  Unix.kill pid Sys.sigterm;
  let deadline = Unix.gettimeofday () +. 120.0 in
  let rec await () =
    if Unix.gettimeofday () > deadline then
      Alcotest.fail "no response before the drain deadline"
    else
      match Transport.recv conn ~timeout:1.0 with
      | Some fr when fr.Transport.kind = Transport.Kind.response -> fr
      | Some _ -> await ()
      | None -> await ()
  in
  let fr = await () in
  (match Service.decode_response fr.Transport.payload with
  | Ok (Service.Completed s) ->
      (* The in-flight request finished during the drain, correctly. *)
      check_summary_equal "drained request" (oracle req) s
  | Ok (Service.Degraded m) ->
      (* Acceptable only as the typed shutdown outcome, never a hang. *)
      if not (contains_substring ~sub:"shutting down" m) then
        Alcotest.failf "unexpected degrade during drain: %s" m
  | Ok (Service.Rejected m) -> Alcotest.failf "in-flight request rejected: %s" m
  | Error e -> Alcotest.failf "bad response: %s" e);
  Transport.close conn;
  Alcotest.(check int) "drain exits 0" 0 (wait_child pid)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest [ prop_request_roundtrip; prop_response_roundtrip ]
  in
  Alcotest.run "service"
    [
      ( "wire format",
        [
          Alcotest.test_case "golden request" `Quick test_golden_request;
          Alcotest.test_case "golden response" `Quick test_golden_response;
          Alcotest.test_case "malformed request" `Quick test_malformed_request;
          Alcotest.test_case "malformed response" `Quick test_malformed_response;
          Alcotest.test_case "validate request" `Quick test_validate_request;
        ]
        @ qsuite );
      ( "pool",
        [
          Alcotest.test_case "differential vs solo" `Slow test_pool_differential;
          Alcotest.test_case "queue backpressure" `Quick test_pool_queue_backpressure;
          Alcotest.test_case "handler failure typed" `Slow test_pool_handler_failure_is_typed;
        ] );
      ( "chaos",
        [ Alcotest.test_case "wire-fault soak" `Slow test_pool_chaos_soak ] );
      ( "daemon",
        [
          Alcotest.test_case "concurrent clients" `Slow test_daemon_concurrent_unix;
          Alcotest.test_case "malformed traffic" `Slow test_daemon_malformed_and_garbage;
          Alcotest.test_case "tcp listener" `Slow test_daemon_tcp;
          Alcotest.test_case "sigterm drains in-flight" `Slow
            test_daemon_sigterm_drains_inflight;
        ] );
    ]
