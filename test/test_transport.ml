(* The distributed runtime's wire layer and worker pool.

   Layers under test:

   - Transport: frame round-trips (magic/version/CRC), per-operation
     deadlines, duplicate suppression by sequence number, bounded
     jittered-backoff connect, retransmission across a reconnect with
     epoch-fencing state carryover, and the wire-fault injection hook;
   - Failure_detector: suspicion timeline under an injected clock —
     fully deterministic, no sleeps;
   - Distributed: the fork-per-batch worker pool — index-ordered results,
     worker exceptions surfacing as typed Task_failed, graceful
     degradation (typed Degraded, never a hang) when every slot is
     partitioned, and recovery through stall/disconnect faults without
     double-applying a straggler's late reply;
   - the engine differential: Distributed tick-domain Obs exports must be
     byte-identical to Sequential on EN and EGJ (wall-domain transport
     metrics live in a separate registry);
   - chaos soak: EN at N=20 under random wire-fault plans (disconnect +
     stall + partition) on top of protocol faults must terminate with
     either an exact output or a typed fast-fail, with protocol-level
     recovery accounting identical to the same plan replayed in-process. *)

module Bitvec = Dstress_util.Bitvec
module Prng = Dstress_util.Prng
module Group = Dstress_crypto.Group
module Fault = Dstress_faults.Fault
module Obs = Dstress_obs.Obs
module Metrics = Dstress_obs.Obs.Metrics
module Reference = Dstress_risk.Reference
module En_program = Dstress_risk.En_program
module Egj_program = Dstress_risk.Egj_program
open Dstress_runtime

let grp = Group.by_name "toy"

(* ------------------------------------------------------------------ *)
(* Transport framing                                                   *)
(* ------------------------------------------------------------------ *)

let test_frame_roundtrip () =
  let m = Metrics.create () in
  let a, b = Transport.pair ~metrics:m () in
  let payload = Bytes.of_string "forty-two" in
  let seq = Transport.send a ~kind:Transport.Kind.task ~epoch:7 payload in
  Alcotest.(check int64) "first seq" 0L seq;
  (match Transport.recv b ~timeout:1.0 with
  | Some fr ->
      Alcotest.(check int) "kind" Transport.Kind.task fr.Transport.kind;
      Alcotest.(check int) "epoch" 7 fr.Transport.epoch;
      Alcotest.(check int64) "seq" 0L fr.Transport.seq;
      Alcotest.(check string) "payload" "forty-two" (Bytes.to_string fr.Transport.payload)
  | None -> Alcotest.fail "frame did not arrive");
  ignore (Transport.send a ~kind:Transport.Kind.ping ~epoch:7 Bytes.empty);
  (match Transport.recv b ~timeout:1.0 with
  | Some fr -> Alcotest.(check int64) "seq increments" 1L fr.Transport.seq
  | None -> Alcotest.fail "second frame did not arrive");
  Alcotest.(check int) "frames counted" 2 (Metrics.counter m "transport.frames_sent");
  Alcotest.(check bool) "bytes counted" true (Metrics.counter m "transport.bytes_sent" > 0);
  Transport.close a;
  Transport.close b

let test_recv_timeout_and_eof () =
  let a, b = Transport.pair () in
  let t0 = Unix.gettimeofday () in
  Alcotest.(check bool) "empty recv times out to None" true
    (Transport.recv b ~timeout:0.05 = None);
  Alcotest.(check bool) "timeout respected" true (Unix.gettimeofday () -. t0 < 1.0);
  Transport.close a;
  (match Transport.recv b ~timeout:0.5 with
  | exception Transport.Error (Transport.Closed _) -> ()
  | _ -> Alcotest.fail "EOF must raise Closed");
  Transport.close b

let test_integrity_rejected () =
  let a, b = Transport.pair () in
  (* Write garbage straight onto the socket: the header check must refuse
     it rather than interpret it. *)
  let junk = Bytes.of_string "XXXXGARBAGEGARBAGEGARBAGEGARBAGEGARBAGE" in
  ignore (Unix.write (Transport.fd a) junk 0 (Bytes.length junk));
  (match Transport.recv b ~timeout:1.0 with
  | exception Transport.Error (Transport.Integrity msg) ->
      Alcotest.(check string) "bad magic detected" "bad magic" msg
  | _ -> Alcotest.fail "garbage must raise Integrity");
  Alcotest.(check int) "framing error counted" 1
    (Metrics.counter (Transport.metrics b) "transport.framing_errors");
  Transport.close a;
  Transport.close b

let test_dedup_drops_replay () =
  let m = Metrics.create () in
  let a0, b = Transport.pair ~metrics:m () in
  (* Model a sender that retains frames, then replays them (as after a
     reconnect): the receiver must deliver each seq exactly once. *)
  let a = Transport.of_fd ~metrics:m ~retain:true (Transport.fd a0) in
  ignore (Transport.send a ~kind:Transport.Kind.task ~epoch:1 (Bytes.of_string "one"));
  ignore (Transport.send a ~kind:Transport.Kind.task ~epoch:1 (Bytes.of_string "two"));
  let recv_payload () =
    match Transport.recv b ~timeout:1.0 with
    | Some fr -> Bytes.to_string fr.Transport.payload
    | None -> Alcotest.fail "expected a frame"
  in
  Alcotest.(check string) "first" "one" (recv_payload ());
  Alcotest.(check string) "second" "two" (recv_payload ());
  Alcotest.(check int) "replayed both" 2 (Transport.retransmit_from a (-1L));
  Alcotest.(check bool) "replay suppressed" true (Transport.recv b ~timeout:0.2 = None);
  Alcotest.(check int) "dups counted" 2 (Metrics.counter m "transport.dup_dropped");
  (* Acking prunes the replay buffer. *)
  Transport.ack b (Transport.last_delivered b);
  Alcotest.(check bool) "ack consumed" true (Transport.recv a ~timeout:0.5 = None);
  Alcotest.(check int) "nothing left to replay" 0 (Transport.retransmit_from a (-1L));
  Transport.close a;
  Transport.close b

let test_connect_backoff_bounded () =
  let m = Metrics.create () in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "dstress-no-such.sock" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let t0 = Unix.gettimeofday () in
  (match Transport.connect ~metrics:m ~attempts:3 ~backoff:0.005 ~path () with
  | exception Transport.Error (Transport.Timeout _) -> ()
  | _ -> Alcotest.fail "connect to nothing must raise Timeout");
  Alcotest.(check bool) "bounded retry returns promptly" true
    (Unix.gettimeofday () -. t0 < 2.0);
  Alcotest.(check int) "three attempts" 3 (Metrics.counter m "transport.connect_attempts");
  Alcotest.(check int) "two backoff sleeps" 2 (Metrics.counter m "transport.backoff_sleeps");
  Alcotest.(check bool) "sleep time recorded" true
    (Metrics.sum m "transport.backoff_sleep_s" > 0.0)

let test_fault_hook_stall_and_sever () =
  let a, b = Transport.pair () in
  let stalled = ref 0 in
  Transport.set_fault_hook a (fun ~kind:_ ~seq ->
      if seq = 0L then Transport.Stall 0.02
      else if seq = 1L then Transport.Sever
      else Transport.Pass);
  let t0 = Unix.gettimeofday () in
  ignore (Transport.send a ~kind:Transport.Kind.task ~epoch:0 Bytes.empty);
  if Unix.gettimeofday () -. t0 >= 0.02 then incr stalled;
  Alcotest.(check int) "stall slept" 1 !stalled;
  let ma = Transport.metrics a in
  Alcotest.(check int) "stall counted" 1 (Metrics.counter ma "transport.stalls_injected");
  (* The stall's tick-equivalent uses the one Fault rounding rule. *)
  Alcotest.(check int) "stall ticks via Fault.delay_ticks" (Fault.delay_ticks 0.02)
    (Metrics.counter ma "transport.stall_ticks");
  (match Transport.send a ~kind:Transport.Kind.task ~epoch:0 Bytes.empty with
  | exception Transport.Error (Transport.Closed _) -> ()
  | _ -> Alcotest.fail "sever must raise Closed");
  Alcotest.(check int) "sever counted" 1 (Metrics.counter ma "transport.severs_injected");
  Transport.close b

let test_named_socket_reconnect_replay () =
  let m = Metrics.create () in
  let dir = Filename.get_temp_dir_name () in
  let path = Filename.concat dir (Printf.sprintf "dstress-test-%d.sock" (Unix.getpid ())) in
  let lfd = Transport.listen ~path in
  let client = Transport.connect ~metrics:m ~retain:true ~path () in
  let server = Transport.accept ~deadline:2.0 lfd in
  ignore (Transport.send client ~kind:Transport.Kind.task ~epoch:3 (Bytes.of_string "a"));
  ignore (Transport.send client ~kind:Transport.Kind.task ~epoch:3 (Bytes.of_string "b"));
  (match Transport.recv server ~timeout:1.0 with
  | Some fr -> Alcotest.(check string) "pre-crash delivery" "a" (Bytes.to_string fr.Transport.payload)
  | None -> Alcotest.fail "no frame");
  (* The server acks "a", then the connection dies before "b" arrives. *)
  Transport.ack server 0L;
  Alcotest.(check bool) "ack arrives" true (Transport.recv client ~timeout:1.0 = None);
  Transport.close server;
  (match Transport.recv client ~timeout:1.0 with
  | exception Transport.Error (Transport.Closed _) -> ()
  | _ -> ());
  Transport.close client;
  (* Reconnect, carry the sequencing state over, replay the unacked tail. *)
  let client2 = Transport.connect ~metrics:m ~retain:true ~path () in
  let server2 = Transport.accept ~deadline:2.0 lfd in
  Transport.takeover ~old:client client2;
  Alcotest.(check int) "only the unacked frame replays" 1
    (Transport.retransmit_from client2 0L);
  (match Transport.recv server2 ~timeout:1.0 with
  | Some fr ->
      Alcotest.(check string) "tail delivered" "b" (Bytes.to_string fr.Transport.payload);
      Alcotest.(check int64) "original seq preserved" 1L fr.Transport.seq
  | None -> Alcotest.fail "replayed frame did not arrive");
  Alcotest.(check int) "reconnect counted" 1 (Metrics.counter m "transport.reconnects");
  Alcotest.(check int) "retransmit counted" 1 (Metrics.counter m "transport.retransmits");
  Transport.close client2;
  Transport.close server2;
  Unix.close lfd;
  (try Unix.unlink path with Unix.Unix_error _ -> ())

let contains_substring ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* TCP listener/connector: same frames, same deadline semantics        *)
(* ------------------------------------------------------------------ *)

let test_tcp_roundtrip () =
  let m = Metrics.create () in
  let lfd, port = Transport.listen_tcp ~host:"127.0.0.1" ~port:0 () in
  Alcotest.(check bool) "ephemeral port assigned" true (port > 0);
  let client = Transport.connect_tcp ~metrics:m ~host:"127.0.0.1" ~port () in
  let server = Transport.accept ~deadline:2.0 lfd in
  ignore (Transport.send client ~kind:Transport.Kind.request ~epoch:5 (Bytes.of_string "over tcp"));
  (match Transport.recv server ~timeout:2.0 with
  | Some fr ->
      Alcotest.(check int) "kind" Transport.Kind.request fr.Transport.kind;
      Alcotest.(check int) "epoch" 5 fr.Transport.epoch;
      Alcotest.(check string) "payload survives CRC" "over tcp"
        (Bytes.to_string fr.Transport.payload)
  | None -> Alcotest.fail "frame did not arrive over TCP");
  ignore (Transport.send server ~kind:Transport.Kind.response ~epoch:5 (Bytes.of_string "back"));
  (match Transport.recv client ~timeout:2.0 with
  | Some fr -> Alcotest.(check string) "reply" "back" (Bytes.to_string fr.Transport.payload)
  | None -> Alcotest.fail "reply did not arrive over TCP");
  (* Both ends of the loopback connection got TCP_NODELAY. *)
  Alcotest.(check bool) "client nodelay" true
    (Unix.getsockopt (Transport.fd client) Unix.TCP_NODELAY);
  Alcotest.(check bool) "server nodelay" true
    (Unix.getsockopt (Transport.fd server) Unix.TCP_NODELAY);
  Alcotest.(check int) "one connect attempt" 1 (Metrics.counter m "transport.connect_attempts");
  Transport.close client;
  Transport.close server;
  Unix.close lfd

let test_tcp_accept_deadline () =
  (* A listener nobody connects to: accept must expire at its deadline —
     the exact behavior the daemon's select loop leans on — not hang. *)
  let lfd, _port = Transport.listen_tcp ~host:"127.0.0.1" ~port:0 () in
  let t0 = Unix.gettimeofday () in
  (match Transport.accept ~deadline:0.1 lfd with
  | exception Transport.Error (Transport.Timeout what) ->
      Alcotest.(check string) "typed accept timeout" "accept" what
  | _ -> Alcotest.fail "accept with no client must raise Timeout");
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "deadline respected" true (elapsed >= 0.09 && elapsed < 1.0);
  Unix.close lfd

let test_tcp_connect_backoff_bounded () =
  (* Bind then close to get a port that actively refuses connections;
     the retry loop must pay the same bounded, counted backoff as the
     Unix-socket connector. *)
  let lfd, port = Transport.listen_tcp ~host:"127.0.0.1" ~port:0 () in
  Unix.close lfd;
  let m = Metrics.create () in
  let t0 = Unix.gettimeofday () in
  (match Transport.connect_tcp ~metrics:m ~attempts:3 ~backoff:0.005 ~host:"127.0.0.1" ~port () with
  | exception Transport.Error (Transport.Timeout _) -> ()
  | _ -> Alcotest.fail "connect to a closed port must raise Timeout");
  Alcotest.(check bool) "bounded retry returns promptly" true
    (Unix.gettimeofday () -. t0 < 2.0);
  Alcotest.(check int) "three attempts" 3 (Metrics.counter m "transport.connect_attempts");
  Alcotest.(check int) "two backoff sleeps" 2 (Metrics.counter m "transport.backoff_sleeps");
  Alcotest.(check bool) "sleep time recorded" true
    (Metrics.sum m "transport.backoff_sleep_s" > 0.0);
  (* Unknown host is not transient: typed Closed, no retry burn. *)
  match Transport.connect_tcp ~host:"no-such-host-dstress.invalid" ~port:1 () with
  | exception Transport.Error (Transport.Closed msg) ->
      Alcotest.(check bool) "names the host" true
        (contains_substring ~sub:"no-such-host-dstress.invalid" msg)
  | _ -> Alcotest.fail "unresolvable host must raise Closed"

(* ------------------------------------------------------------------ *)
(* Failure detector (injected clock — no sleeps)                       *)
(* ------------------------------------------------------------------ *)

let test_detector_suspicion_timeline () =
  let det = Failure_detector.create ~phi:8.0 ~expected_interval:0.1 () in
  Alcotest.(check (float 0.0)) "silent before start" 0.0
    (Failure_detector.suspicion det ~now:100.0);
  Failure_detector.start det ~now:0.0;
  Alcotest.(check bool) "grace period" false (Failure_detector.suspected det ~now:0.5);
  Alcotest.(check bool) "no hello ever -> suspected" true
    (Failure_detector.suspected det ~now:1.0);
  let det = Failure_detector.create ~phi:8.0 ~expected_interval:0.1 () in
  Failure_detector.start det ~now:0.0;
  (* Regular heartbeats keep suspicion near 1. *)
  for i = 1 to 20 do
    Failure_detector.observe det ~now:(0.1 *. float_of_int i)
  done;
  Alcotest.(check bool) "healthy peer low" true
    (Failure_detector.suspicion det ~now:2.1 < 2.0);
  Alcotest.(check bool) "estimate near interval" true
    (abs_float (Failure_detector.interval_estimate det -. 0.1) < 0.02);
  (* Then silence: suspicion crosses phi after ~phi * interval. *)
  Alcotest.(check bool) "not yet" false (Failure_detector.suspected det ~now:2.5);
  Alcotest.(check bool) "suspected after silence" true
    (Failure_detector.suspected det ~now:3.0);
  (match Failure_detector.last_heard det with
  | Some t -> Alcotest.(check (float 1e-9)) "last heard" 2.0 t
  | None -> Alcotest.fail "expected arrivals")

let test_detector_burst_floor_and_clamp () =
  let det = Failure_detector.create ~phi:4.0 ~expected_interval:0.1 () in
  Failure_detector.start det ~now:0.0;
  (* A burst of instant heartbeats must not collapse the estimate below
     the floor (expected/4) and hair-trigger the detector... *)
  for _ = 1 to 50 do
    Failure_detector.observe det ~now:1.0
  done;
  Alcotest.(check bool) "estimate floored" true
    (Failure_detector.interval_estimate det >= 0.025 -. 1e-9);
  (* ...and a non-monotone arrival is clamped, never a negative gap. *)
  Failure_detector.observe det ~now:0.5;
  Alcotest.(check bool) "clock step clamped" true
    (Failure_detector.suspicion det ~now:1.0 >= 0.0);
  Alcotest.check_raises "phi <= 1 rejected"
    (Invalid_argument "Failure_detector.create: phi <= 1") (fun () ->
      ignore (Failure_detector.create ~phi:1.0 ~expected_interval:0.1 ()))

(* ------------------------------------------------------------------ *)
(* Distributed pool                                                    *)
(* ------------------------------------------------------------------ *)

let quick_opts =
  {
    Distributed.default_opts with
    Distributed.workers = 3;
    heartbeat_interval = 0.02;
    (* phi 6 over 20 ms heartbeats still suspects a stalled worker in
       well under a second, but tolerates scheduler hiccups on loaded CI
       machines that made phi 4 falsely suspect healthy workers. *)
    phi = 6.0;
    batch_deadline = 30.0;
  }

let test_pool_map_matches_sequential () =
  let ctx = Distributed.create ~opts:quick_opts () in
  let f i = (i, i * i, Printf.sprintf "task-%d" i) in
  let got = Distributed.map ctx 31 f in
  let want = Array.init 31 f in
  Alcotest.(check bool) "index-ordered results" true (got = want);
  Alcotest.(check int) "one batch" 1 (Distributed.batches_dispatched ctx);
  Alcotest.(check bool) "every task dispatched at least once" true
    (Metrics.counter (Distributed.metrics ctx) "pool.tasks_dispatched" >= 31);
  (* Empty batches don't fork anything. *)
  Alcotest.(check bool) "empty map" true (Distributed.map ctx 0 f = [||])

let test_pool_task_exception_is_typed () =
  let ctx = Distributed.create ~opts:{ quick_opts with Distributed.workers = 2 } () in
  (match Distributed.map ctx 6 (fun i -> if i = 4 then failwith "boom" else i) with
  | _ -> Alcotest.fail "expected Task_failed"
  | exception Distributed.Task_failed { index; message } ->
      Alcotest.(check int) "failing index" 4 index;
      Alcotest.(check bool) "message round-tripped" true
        (contains_substring ~sub:"boom" message))

let test_pool_degraded_fast_fail () =
  let opts =
    {
      quick_opts with
      Distributed.workers = 2;
      max_respawns_per_slot = 1;
      max_respawns_total = 6;
      batch_deadline = 20.0;
    }
  in
  let ctx = Distributed.create ~opts () in
  (* Every slot is partitioned for every batch: the pool must abandon all
     slots and fail fast with the typed report — not hang. *)
  Distributed.set_fault_source ctx (fun ~batch:_ ~worker ->
      [ Fault.Partition_worker { worker; from_batch = 0; until_batch = max_int } ]);
  let t0 = Unix.gettimeofday () in
  (match Distributed.map ctx 4 (fun i -> i) with
  | _ -> Alcotest.fail "expected Degraded"
  | exception Distributed.Degraded d ->
      Alcotest.(check int) "batch 0" 0 d.Distributed.batch;
      Alcotest.(check int) "nothing completed" 0 d.Distributed.completed;
      Alcotest.(check int) "count recorded" 4 d.Distributed.count;
      Alcotest.(check bool) "respawns attempted" true (d.Distributed.respawns > 0));
  Alcotest.(check bool) "failed fast, not at the deadline" true
    (Unix.gettimeofday () -. t0 < 15.0);
  let m = Distributed.metrics ctx in
  Alcotest.(check bool) "suspicions recorded" true (Metrics.counter m "pool.suspicions" > 0)

let test_pool_recovers_from_stall_and_disconnect () =
  let opts =
    {
      quick_opts with
      Distributed.workers = 2;
      max_respawns_per_slot = 2;
      max_respawns_total = 8;
    }
  in
  let ctx = Distributed.create ~opts () in
  (* Worker 0 severs its socket on its first task; worker 1 stalls well
     past the suspicion threshold (phi * 20ms = 80ms), so its slot is
     fenced and respawned while the straggler finishes in the background.
     Either way every task must complete exactly once, with the right
     value — a double-applied late reply would corrupt nothing here, but
     a fenced-epoch bug would surface as a wrong or missing result. *)
  Distributed.set_fault_source ctx (fun ~batch:_ ~worker ->
      if worker = 0 then [ Fault.Disconnect_worker { worker; batch = 0 } ]
      else [ Fault.Stall_worker { worker; batch = 0; seconds = 0.3 } ]);
  let f i =
    Unix.sleepf 0.01;
    i * 7
  in
  let got = Distributed.map ctx 24 f in
  Alcotest.(check bool) "all recovered" true (got = Array.init 24 (fun i -> i * 7));
  let m = Distributed.metrics ctx in
  Alcotest.(check bool) "disconnect seen" true
    (Metrics.counter m "pool.worker_disconnects" > 0);
  Alcotest.(check bool) "stall tripped suspicion" true
    (Metrics.counter m "pool.suspicions" > 0);
  Alcotest.(check bool) "slots respawned" true (Metrics.counter m "pool.respawns" > 0)

let test_pool_named_sockets () =
  let dir =
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "dstress-pool-%d" (Unix.getpid ()))
    in
    (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let ctx =
    Distributed.create
      ~opts:{ quick_opts with Distributed.workers = 2; socket_dir = Some dir }
      ()
  in
  let got = Distributed.map ctx 8 (fun i -> i + 100) in
  Alcotest.(check bool) "named-socket pool works" true (got = Array.init 8 (fun i -> i + 100));
  Alcotest.(check bool) "sockets cleaned up" true (Sys.readdir dir = [||]);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Engine differential: Distributed == Sequential in the tick domain   *)
(* ------------------------------------------------------------------ *)

let small_economy =
  {
    Reference.en_n = 4;
    cash = [| 0.0; 12.0; 20.0; 8.0 |];
    debts = [ (0, 1, 15.0); (1, 2, 10.0); (2, 3, 12.0); (3, 0, 4.0) ];
  }

let en_fixture ?(iterations = 2) () =
  let graph = En_program.graph_of_instance small_economy in
  let d = Graph.max_degree graph in
  let p = En_program.make ~epsilon:50.0 ~sensitivity:1 ~noise_max:2 ~l:12 ~degree:d ~iterations () in
  let states = En_program.encode_instance small_economy ~graph ~l:12 ~degree:d ~scale:0.25 in
  (graph, d, p, states)

let egj_fixture () =
  let inst =
    {
      Reference.egj_n = 3;
      base_assets = [| 20.0; 70.0; 60.0 |];
      orig_val = [| 100.0; 100.0; 90.0 |];
      threshold = [| 80.0; 80.0; 72.0 |];
      penalty = [| 10.0; 10.0; 10.0 |];
      holdings = [ (0, 1, 0.3); (1, 0, 0.3); (1, 2, 0.2); (2, 1, 0.2) ];
    }
  in
  let graph = Egj_program.graph_of_instance inst in
  let d = max 1 (Graph.max_degree graph) in
  let p = Egj_program.make ~epsilon:50.0 ~sensitivity:1 ~noise_max:2 ~l:14 ~frac:4 ~degree:d ~iterations:2 () in
  let states = Egj_program.encode_instance inst ~graph ~l:14 ~frac:4 ~degree:d ~scale:1.0 in
  (graph, d, p, states)

let run_with ~executor ~seed ?(fault_plan = Fault.empty) (graph, d, p, states) =
  let cfg =
    { (Engine.default_config grp ~k:2 ~degree_bound:d ~seed) with
      Engine.executor; fault_plan; obs_level = Obs.Full }
  in
  Engine.run cfg p ~graph ~initial_states:states

let check_exports_equal label (a : Engine.report) (b : Engine.report) =
  Alcotest.(check int) (label ^ ": output") a.Engine.output b.Engine.output;
  Alcotest.(check string) (label ^ ": trace bytes") (Obs.trace_json a.Engine.obs)
    (Obs.trace_json b.Engine.obs);
  Alcotest.(check string) (label ^ ": metrics bytes") (Obs.metrics_json a.Engine.obs)
    (Obs.metrics_json b.Engine.obs);
  Alcotest.(check string) (label ^ ": metrics csv") (Obs.metrics_csv a.Engine.obs)
    (Obs.metrics_csv b.Engine.obs)

let distributed_exec ?(workers = 2) () =
  Executor.distributed ~opts:{ quick_opts with Distributed.workers } ()

let test_differential_en () =
  let fx = en_fixture () in
  let seq = run_with ~executor:Executor.sequential ~seed:"dist-diff-en" fx in
  let dist = run_with ~executor:(distributed_exec ()) ~seed:"dist-diff-en" fx in
  check_exports_equal "EN dist=seq" seq dist;
  (* Wall-domain transport counters exist, but in their own registry. *)
  (match dist.Engine.transport_metrics with
  | Some m -> Alcotest.(check bool) "frames flowed" true (Metrics.counter m "transport.frames_sent" > 0)
  | None -> Alcotest.fail "distributed run must expose transport metrics");
  Alcotest.(check bool) "sequential has no transport metrics" true
    (seq.Engine.transport_metrics = None)

let test_differential_egj () =
  let fx = egj_fixture () in
  let seq = run_with ~executor:Executor.sequential ~seed:"dist-diff-egj" fx in
  let dist = run_with ~executor:(distributed_exec ~workers:3 ()) ~seed:"dist-diff-egj" fx in
  check_exports_equal "EGJ dist=seq" seq dist

(* ------------------------------------------------------------------ *)
(* Chaos soak: EN N=20 under combined wire + protocol fault plans      *)
(* ------------------------------------------------------------------ *)

let n20_fixture () =
  let t = Prng.of_int 0x20AC in
  let topo = Dstress_graphgen.Topology.erdos_renyi t ~n:20 ~avg_degree:1.5 ~max_degree:3 in
  let inst = Dstress_graphgen.Banking.en_of_topology t topo () in
  let graph = En_program.graph_of_instance inst in
  let d = max 1 (Graph.max_degree graph) in
  let p = En_program.make ~epsilon:50.0 ~sensitivity:1 ~noise_max:2 ~l:10 ~degree:d ~iterations:2 () in
  let states = En_program.encode_instance inst ~graph ~l:10 ~degree:d ~scale:0.25 in
  (graph, d, p, states)

let protocol_counts (r : Engine.report) =
  List.filter (fun (k, _) -> not (Fault.is_wire k)) r.Engine.faults_injected

let test_chaos_soak () =
  let ((graph, _, _, _) as fx) = n20_fixture () in
  (* Protocol faults recovered by the §3.5/§3.6 machinery... *)
  let protocol_plan =
    Fault.random_plan ~seed:23 ~rounds:3 ~nodes:20 ~edges:(Graph.edges graph)
      { Fault.no_faults with miss = 0.05; drop = 0.03 }
    @ [ Fault.Crash_node { node = 3; from_round = 2; until_round = 3 } ]
  in
  (* ...the in-process oracle for what the distributed runs must still
     compute in the tick domain. *)
  let oracle = run_with ~executor:Executor.sequential ~seed:"soak" ~fault_plan:protocol_plan fx in
  let deadline = Unix.gettimeofday () +. 240.0 in
  let wire_fired = ref 0 in
  List.iter
    (fun seed ->
        if Unix.gettimeofday () > deadline then
          Alcotest.failf "chaos soak overran its test-level deadline (seed %d)" seed;
        let wire_plan =
          Fault.random_wire_plan ~seed ~workers:3 ~batches:8
            { Fault.disconnect = 0.06; stall = 0.05; partition = 0.04 }
        in
        let executor =
          Executor.distributed
            ~opts:
              {
                quick_opts with
                Distributed.workers = 3;
                max_respawns_per_slot = 1;
                max_respawns_total = 10;
                batch_deadline = 60.0;
              }
            ()
        in
        match
          run_with ~executor ~seed:"soak" ~fault_plan:(protocol_plan @ wire_plan) fx
        with
        | r ->
            (* Success: the run absorbed the wire faults without a trace —
               byte-identical tick-domain exports and identical protocol
               recovery accounting. *)
            check_exports_equal (Printf.sprintf "soak seed %d" seed) oracle r;
            Alcotest.(check bool)
              (Printf.sprintf "soak seed %d: protocol accounting matches" seed)
              true
              (protocol_counts oracle = protocol_counts r);
            (* Wire firings never exceed the plan, and are consistent with
               replaying the same plan: a planned fault fires at most once. *)
            let planned k =
              List.length (List.filter (fun f -> Fault.kind_of f = k) wire_plan)
            in
            List.iter
              (fun (k, c) ->
                if Fault.is_wire k then begin
                  wire_fired := !wire_fired + c;
                  Alcotest.(check bool)
                    (Printf.sprintf "soak seed %d: %s firings within plan" seed
                       (Fault.kind_name k))
                    true (c <= planned k)
                end)
              r.Engine.faults_injected
        | exception Distributed.Degraded d ->
            (* Typed fast-fail is an acceptable outcome — but it must be a
               real degradation report, produced before the deadline. *)
            incr wire_fired;
            Alcotest.(check bool)
              (Printf.sprintf "soak seed %d: degradation is populated" seed)
              true
              (d.Distributed.reason <> "" && d.Distributed.count > 0))
    [ 1; 2; 3 ];
  Alcotest.(check bool) "the soak actually exercised wire faults" true (!wire_fired > 0)

let () =
  Alcotest.run "transport"
    [
      ( "framing",
        [
          Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "recv timeout and EOF" `Quick test_recv_timeout_and_eof;
          Alcotest.test_case "integrity rejected" `Quick test_integrity_rejected;
          Alcotest.test_case "dedup drops replay" `Quick test_dedup_drops_replay;
          Alcotest.test_case "connect backoff bounded" `Quick test_connect_backoff_bounded;
          Alcotest.test_case "fault hook stall/sever" `Quick test_fault_hook_stall_and_sever;
          Alcotest.test_case "reconnect replay" `Quick test_named_socket_reconnect_replay;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "loopback round-trip" `Quick test_tcp_roundtrip;
          Alcotest.test_case "accept deadline expiry" `Quick test_tcp_accept_deadline;
          Alcotest.test_case "connect backoff bounded" `Quick test_tcp_connect_backoff_bounded;
        ] );
      ( "failure detector",
        [
          Alcotest.test_case "suspicion timeline" `Quick test_detector_suspicion_timeline;
          Alcotest.test_case "burst floor and clamp" `Quick test_detector_burst_floor_and_clamp;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick test_pool_map_matches_sequential;
          Alcotest.test_case "typed task failure" `Quick test_pool_task_exception_is_typed;
          Alcotest.test_case "degraded fast fail" `Quick test_pool_degraded_fast_fail;
          Alcotest.test_case "stall + disconnect recovery" `Quick
            test_pool_recovers_from_stall_and_disconnect;
          Alcotest.test_case "named sockets" `Quick test_pool_named_sockets;
        ] );
      ( "engine differential",
        [
          Alcotest.test_case "EN exports byte-identical" `Quick test_differential_en;
          Alcotest.test_case "EGJ exports byte-identical" `Quick test_differential_egj;
        ] );
      ("chaos", [ Alcotest.test_case "EN n20 wire-fault soak" `Slow test_chaos_soak ]);
    ]
