(* Fault injection and recovery: plan determinism, the injector's
   book-keeping, the transfer protocol's retry machinery, and whole-engine
   degradation under crashes and lossy edges. The engine tests run with a
   huge epsilon so the release noise is zero and full recovery is
   observable as exact agreement with the plaintext reference. *)

module Bitvec = Dstress_util.Bitvec
module Prng = Dstress_util.Prng
module Group = Dstress_crypto.Group
module Prg = Dstress_crypto.Prg
module Exp_elgamal = Dstress_crypto.Exp_elgamal
module Traffic = Dstress_mpc.Traffic
module Sharing = Dstress_mpc.Sharing
module Setup = Dstress_transfer.Setup
module Protocol = Dstress_transfer.Protocol
module Edge_privacy = Dstress_transfer.Edge_privacy
module Fault = Dstress_faults.Fault
module Graph = Dstress_runtime.Graph
module Engine = Dstress_runtime.Engine
module Reference = Dstress_risk.Reference
module En_program = Dstress_risk.En_program
module Egj_program = Dstress_risk.Egj_program

let grp = Group.by_name "toy"

(* ------------------------------------------------------------------ *)
(* Fault plans                                                         *)
(* ------------------------------------------------------------------ *)

let some_edges = [ (0, 1); (1, 2); (2, 3); (3, 0); (1, 3) ]

let test_random_plan_deterministic () =
  let rates = { Fault.crash = 0.2; drop = 0.1; delay = 0.1; corrupt = 0.1; miss = 0.1 } in
  let draw () = Fault.random_plan ~seed:7 ~rounds:4 ~nodes:6 ~edges:some_edges rates in
  Alcotest.(check bool) "same seed, same plan" true (draw () = draw ());
  let other = Fault.random_plan ~seed:8 ~rounds:4 ~nodes:6 ~edges:some_edges rates in
  Alcotest.(check bool) "different seed, different plan" true (draw () <> other)

let test_random_plan_rejects_bad_rates () =
  let check_bad rates =
    Alcotest.(check bool) "rejected" true
      (try
         ignore (Fault.random_plan ~seed:1 ~rounds:2 ~nodes:3 ~edges:some_edges rates);
         false
       with Invalid_argument _ -> true)
  in
  check_bad { Fault.no_faults with drop = -0.1 };
  check_bad { Fault.no_faults with miss = 1.5 };
  Alcotest.(check bool) "rounds < 1 rejected" true
    (try
       ignore (Fault.random_plan ~seed:1 ~rounds:0 ~nodes:3 ~edges:[] Fault.no_faults);
       false
     with Invalid_argument _ -> true)

let test_random_crashes_distinct () =
  let plan = Fault.random_crashes ~seed:3 ~nodes:10 ~rounds:5 ~count:4 in
  Alcotest.(check int) "count" 4 (List.length plan);
  let victims =
    List.map (function Fault.Crash_node { node; _ } -> node | _ -> Alcotest.fail "not a crash") plan
  in
  Alcotest.(check int) "distinct victims" 4 (List.length (List.sort_uniq compare victims))

let test_injector_counts_only_fired () =
  let plan =
    [
      Fault.Drop_transfer { src = 0; dst = 1; round = 1 };
      Fault.Drop_transfer { src = 4; dst = 5; round = 9 }; (* never queried: dormant *)
      Fault.Crash_node { node = 2; from_round = 2; until_round = 4 };
    ]
  in
  let inj = Fault.Injector.create plan in
  Alcotest.(check int) "nothing fired yet" 0 (Fault.Injector.total_injected inj);
  Alcotest.(check int) "drop on queried edge" 1
    (List.length (Fault.Injector.edge_faults inj ~round:1 ~src:0 ~dst:1));
  Alcotest.(check bool) "other edge clean" true
    (Fault.Injector.edge_faults inj ~round:1 ~src:1 ~dst:0 = []);
  Alcotest.(check bool) "not crashed before window" false
    (Fault.Injector.crashed inj ~round:1 ~node:2);
  Alcotest.(check bool) "crash starts at round 2" true
    (Fault.Injector.crash_starting inj ~round:2 ~node:2);
  Alcotest.(check bool) "still down at round 3, not starting" true
    (Fault.Injector.crashed inj ~round:3 ~node:2
    && not (Fault.Injector.crash_starting inj ~round:3 ~node:2));
  Alcotest.(check bool) "recovered at round 4" false (Fault.Injector.crashed inj ~round:4 ~node:2);
  Alcotest.(check int) "dormant fault not counted" 2 (Fault.Injector.total_injected inj);
  Alcotest.(check int) "drop count" 1 (List.assoc Fault.Drop (Fault.Injector.injected inj));
  Alcotest.(check int) "crash count" 1 (List.assoc Fault.Crash (Fault.Injector.injected inj))

(* ------------------------------------------------------------------ *)
(* Wire faults and the simulated-time rounding contract                *)
(* ------------------------------------------------------------------ *)

let test_delay_ticks_contract () =
  Alcotest.(check (float 0.0)) "one rule: 1e6 ticks per second" 1_000_000.0
    Fault.ticks_per_second;
  Alcotest.(check int) "50 ms" 50_000 (Fault.delay_ticks 0.05);
  Alcotest.(check int) "truncates toward zero" 1 (Fault.delay_ticks 1.9e-6);
  Alcotest.(check int) "sub-microsecond charges nothing" 0 (Fault.delay_ticks 4.0e-7);
  Alcotest.(check int) "negative never charges" 0 (Fault.delay_ticks (-0.5e-6));
  (* The engine's recovery accounting and the transport's stall
     bookkeeping must share this rule, not re-derive it. *)
  Alcotest.(check (float 0.0)) "Phase aliases the constant"
    Fault.ticks_per_second Dstress_runtime.Phase.ticks_per_recovery_second;
  List.iter
    (fun s ->
      Alcotest.(check int)
        (Printf.sprintf "Phase.recovery_ticks %g aliases Fault.delay_ticks" s)
        (Fault.delay_ticks s)
        (Dstress_runtime.Phase.recovery_ticks s))
    [ 0.0; 1.0e-7; 0.013; 0.05; 1.75; 12.125 ]

let test_wire_kinds_classified () =
  List.iter
    (fun k ->
      let wire = List.mem k [ Fault.Disconnect; Fault.Stall; Fault.Partition ] in
      Alcotest.(check bool) (Fault.kind_name k ^ " classification") wire (Fault.is_wire k))
    Fault.all_kinds;
  Alcotest.(check bool) "constructor kinds" true
    (Fault.kind_of (Fault.Disconnect_worker { worker = 0; batch = 0 }) = Fault.Disconnect
    && Fault.kind_of (Fault.Stall_worker { worker = 0; batch = 0; seconds = 0.1 }) = Fault.Stall
    && Fault.kind_of (Fault.Partition_worker { worker = 0; from_batch = 0; until_batch = 1 })
       = Fault.Partition)

let test_random_wire_plan_deterministic_and_valid () =
  let rates = { Fault.disconnect = 0.4; stall = 0.4; partition = 0.3 } in
  let draw () = Fault.random_wire_plan ~seed:5 ~workers:4 ~batches:6 rates in
  Alcotest.(check bool) "same seed, same plan" true (draw () = draw ());
  Alcotest.(check bool) "different seed, different plan" true
    (draw () <> Fault.random_wire_plan ~seed:6 ~workers:4 ~batches:6 rates);
  let plan = draw () in
  Alcotest.(check bool) "dense rates produce faults" true (plan <> []);
  List.iter
    (fun f ->
      match f with
      | Fault.Disconnect_worker { worker; batch } ->
          Alcotest.(check bool) "disconnect in range" true
            (worker >= 0 && worker < 4 && batch >= 0 && batch < 6)
      | Fault.Stall_worker { worker; batch; seconds } ->
          Alcotest.(check bool) "stall in range" true
            (worker >= 0 && worker < 4 && batch >= 0 && batch < 6
            && seconds >= 0.05 && seconds < 0.25)
      | Fault.Partition_worker { worker; from_batch; until_batch } ->
          let span = until_batch - from_batch in
          Alcotest.(check bool) "partition in range" true
            (worker >= 0 && worker < 4 && from_batch >= 0 && from_batch < 6
            && (span = 1 || span = 2))
      | _ -> Alcotest.fail "wire plan produced a protocol fault")
    plan;
  let rejects rates =
    Alcotest.(check bool) "rejected" true
      (try
         ignore (Fault.random_wire_plan ~seed:1 ~workers:2 ~batches:2 rates);
         false
       with Invalid_argument _ -> true)
  in
  rejects { Fault.no_wire_faults with disconnect = -0.1 };
  rejects { Fault.no_wire_faults with stall = 1.2 };
  Alcotest.(check bool) "workers < 1 rejected" true
    (try
       ignore (Fault.random_wire_plan ~seed:1 ~workers:0 ~batches:2 Fault.no_wire_faults);
       false
     with Invalid_argument _ -> true)

let test_injector_wire_faults () =
  let plan =
    [
      Fault.Disconnect_worker { worker = 1; batch = 0 };
      Fault.Stall_worker { worker = 2; batch = 1; seconds = 0.1 };
      Fault.Partition_worker { worker = 0; from_batch = 1; until_batch = 3 };
      Fault.Disconnect_worker { worker = 5; batch = 9 }; (* dormant *)
    ]
  in
  let inj = Fault.Injector.create plan in
  Alcotest.(check int) "disconnect matched" 1
    (List.length (Fault.Injector.wire_faults inj ~batch:0 ~worker:1));
  Alcotest.(check bool) "other slot clean" true
    (Fault.Injector.wire_faults inj ~batch:0 ~worker:2 = []);
  (* A partition interval matches every batch it covers... *)
  Alcotest.(check int) "partition at start" 1
    (List.length (Fault.Injector.wire_faults inj ~batch:1 ~worker:0));
  Alcotest.(check int) "partition mid-interval" 1
    (List.length (Fault.Injector.wire_faults inj ~batch:2 ~worker:0));
  Alcotest.(check bool) "partition over" true
    (Fault.Injector.wire_faults inj ~batch:3 ~worker:0 = []);
  ignore (Fault.Injector.wire_faults inj ~batch:1 ~worker:2);
  (* ...but fires once however many batches consult it, and the dormant
     fault is never counted. *)
  let by k = List.assoc k (Fault.Injector.injected inj) in
  Alcotest.(check int) "one disconnect fired" 1 (by Fault.Disconnect);
  Alcotest.(check int) "one stall fired" 1 (by Fault.Stall);
  Alcotest.(check int) "partition fired once, not per batch" 1 (by Fault.Partition);
  Alcotest.(check int) "total excludes dormant" 3 (Fault.Injector.total_injected inj)

(* ------------------------------------------------------------------ *)
(* Protocol recovery                                                   *)
(* ------------------------------------------------------------------ *)

let prg tag = Prg.of_string ("test-faults:" ^ tag)
let small_setup = lazy (Setup.run (prg "setup") grp ~n:8 ~k:2 ~degree_bound:3 ~bits:8)
let wide_table = lazy (Exp_elgamal.Table.make grp ~lo:(-300) ~hi:320)

let run_transfer ?recovery ?inject ?(alpha = 0.5) ?(table = Lazy.force wide_table)
    ?(tag = "run") () =
  let s = Lazy.force small_setup in
  let m = Bitvec.of_int ~bits:8 0xA7 in
  let shares = Sharing.share (prg ("msg:" ^ tag)) ~parties:3 m in
  let traffic = Traffic.create 8 in
  let outcome =
    Protocol.transfer ?recovery ?inject { Protocol.alpha; table } ~prg:(prg tag)
      ~noise:(Prng.of_int (Hashtbl.hash tag)) ~traffic ~variant:Protocol.Final ~setup:s
      ~sender:1 ~receiver:5 ~neighbor_slot:1 ~shares
  in
  (m, outcome)

let recovery ?escalation ~max_retries () =
  { Protocol.max_retries;
    escalation_table = Option.map (fun t -> lazy t) escalation }

let test_forced_miss_recovered_by_retry () =
  let m, o =
    run_transfer ~inject:(Protocol.Force_miss { member = 1; bit = 3 })
      ~recovery:(recovery ~max_retries:2 ()) ~tag:"force-miss" ()
  in
  Alcotest.(check bool) "message survives" true
    (Bitvec.equal m (Sharing.reconstruct o.Protocol.shares));
  Alcotest.(check int) "one failure" 1 o.Protocol.failures;
  Alcotest.(check int) "one retry" 1 o.Protocol.retries;
  Alcotest.(check int) "recovered" 1 o.Protocol.recovered;
  Alcotest.(check int) "nothing unrecovered" 0 o.Protocol.unrecovered;
  (* Both attempts decrypted, so the retry re-released one transfer's
     worth of noised sums: k * L sums at -ln(alpha) each. *)
  Alcotest.(check (float 1e-9)) "retry charged to edge budget"
    (Edge_privacy.retry_epsilon ~alpha:0.5 ~k:2 ~bits:8 ~retries:1)
    o.Protocol.extra_epsilon;
  Alcotest.(check bool) "charge is positive" true (o.Protocol.extra_epsilon > 0.0)

let test_forced_miss_without_recovery_is_flagged () =
  let m, o =
    run_transfer ~inject:(Protocol.Force_miss { member = 0; bit = 0 }) ~tag:"no-recovery" ()
  in
  Alcotest.(check int) "failure surfaced" 1 o.Protocol.failures;
  Alcotest.(check int) "no retries without a policy" 0 o.Protocol.retries;
  Alcotest.(check int) "unrecovered" 1 o.Protocol.unrecovered;
  (match o.Protocol.misses with
  | [ { Protocol.member; bit } ] ->
      Alcotest.(check (pair int int)) "miss position" (0, 0) (member, bit)
  | ms -> Alcotest.fail (Printf.sprintf "expected 1 miss, got %d" (List.length ms)));
  (* The substituted 0 makes exactly the missed share bit untrusted; the
     message as reconstructed generally differs from the original. *)
  Alcotest.(check bool) "no epsilon charge without retries" true
    (o.Protocol.extra_epsilon = 0.0);
  ignore m

let test_dropped_transfer_without_recovery () =
  let _, o = run_transfer ~inject:Protocol.Drop_attempt ~tag:"drop-bare" () in
  Alcotest.(check bool) "all shares zero" true
    (Array.for_all (fun s -> not (Bitvec.to_bool_array s |> Array.exists Fun.id)) o.Protocol.shares);
  Alcotest.(check int) "every position untrusted" (3 * 8) o.Protocol.unrecovered;
  Alcotest.(check int) "misses listed" (3 * 8) (List.length o.Protocol.misses)

let test_dropped_transfer_recovered () =
  let m, o =
    run_transfer ~inject:Protocol.Drop_attempt ~recovery:(recovery ~max_retries:1 ())
      ~tag:"drop-retry" ()
  in
  Alcotest.(check bool) "message survives" true
    (Bitvec.equal m (Sharing.reconstruct o.Protocol.shares));
  Alcotest.(check int) "one retry" 1 o.Protocol.retries;
  Alcotest.(check int) "nothing unrecovered" 0 o.Protocol.unrecovered;
  (* The dropped attempt never reached the recipients, so only one release
     happened: no extra budget. *)
  Alcotest.(check (float 1e-9)) "dropped attempt costs no epsilon" 0.0 o.Protocol.extra_epsilon

let test_corrupt_transfer_recovered () =
  let m, o =
    run_transfer ~inject:Protocol.Corrupt_attempt ~recovery:(recovery ~max_retries:1 ())
      ~tag:"corrupt-retry" ()
  in
  Alcotest.(check bool) "message survives" true
    (Bitvec.equal m (Sharing.reconstruct o.Protocol.shares));
  Alcotest.(check int) "one retry" 1 o.Protocol.retries;
  Alcotest.(check (float 1e-9)) "discarded attempt costs no epsilon" 0.0
    o.Protocol.extra_epsilon

let test_escalation_table_rescues_tiny_table () =
  (* A hopeless primary table: alpha = 0.9 noise against [0, 3]. The
     escalation table covers the full noise range, so with zero ordinary
     retries the second (escalated) attempt must succeed. *)
  let tiny = Exp_elgamal.Table.make grp ~lo:0 ~hi:3 in
  let m, o =
    run_transfer ~alpha:0.9 ~table:tiny
      ~recovery:(recovery ~max_retries:0 ~escalation:(Lazy.force wide_table) ())
      ~tag:"escalate" ()
  in
  Alcotest.(check bool) "misses happened" true (o.Protocol.failures > 0);
  Alcotest.(check int) "escalation counted as a retry" 1 o.Protocol.retries;
  Alcotest.(check int) "all recovered" 0 o.Protocol.unrecovered;
  Alcotest.(check bool) "message survives" true
    (Bitvec.equal m (Sharing.reconstruct o.Protocol.shares))

let test_retry_exhaustion_reports_misses () =
  (* Same hopeless table with no escalation: after all attempts some
     positions stay untrusted and are reported, not papered over. *)
  let tiny = Exp_elgamal.Table.make grp ~lo:0 ~hi:3 in
  let _, o =
    run_transfer ~alpha:0.9 ~table:tiny ~recovery:(recovery ~max_retries:1 ())
      ~tag:"exhaust" ()
  in
  Alcotest.(check int) "both retries used" 1 o.Protocol.retries;
  Alcotest.(check bool) "unrecovered misses remain" true (o.Protocol.unrecovered > 0);
  Alcotest.(check int) "misses = unrecovered" o.Protocol.unrecovered
    (List.length o.Protocol.misses);
  Alcotest.(check bool) "recovered + unrecovered <= failures" true
    (o.Protocol.recovered + o.Protocol.unrecovered <= o.Protocol.failures)

let test_negative_retries_rejected () =
  Alcotest.(check bool) "max_retries < 0 rejected" true
    (try
       ignore (run_transfer ~recovery:(recovery ~max_retries:(-1) ()) ~tag:"neg" ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Engine config validation                                            *)
(* ------------------------------------------------------------------ *)

let test_config_validation () =
  let base = Engine.default_config grp ~k:2 ~degree_bound:3 in
  let rejects label cfg =
    Alcotest.(check bool) label true
      (try
         Engine.validate_config cfg;
         false
       with Invalid_argument msg -> String.length msg > String.length "Engine.run: ")
  in
  Engine.validate_config base;
  rejects "k = 0" { base with Engine.k = 0 };
  rejects "degree bound = 0" { base with Engine.degree_bound = 0 };
  rejects "alpha = 0" { base with Engine.transfer_alpha = 0.0 };
  rejects "alpha = 1" { base with Engine.transfer_alpha = 1.0 };
  rejects "alpha > 1" { base with Engine.transfer_alpha = 1.5 };
  rejects "table radius = 0" { base with Engine.table_radius = 0 };
  rejects "two-level fanout = 0" { base with Engine.aggregation = Engine.Two_level 0 };
  rejects "negative retries" { base with Engine.max_retries = -1 };
  rejects "negative backoff" { base with Engine.backoff = -0.1 }

let test_run_validates_before_work () =
  let graph = Graph.create ~n:3 ~edges:[ (0, 1) ] in
  let p = En_program.make ~epsilon:50.0 ~l:8 ~degree:1 ~iterations:1 () in
  let states =
    En_program.encode_instance
      { Reference.en_n = 3; cash = [| 1.0; 1.0; 1.0 |]; debts = [ (0, 1, 1.0) ] }
      ~graph ~l:8 ~degree:1 ~scale:1.0
  in
  let cfg = { (Engine.default_config grp ~k:1 ~degree_bound:1) with Engine.transfer_alpha = 2.0 } in
  Alcotest.(check bool) "run rejects invalid config" true
    (try
       ignore (Engine.run cfg p ~graph ~initial_states:states);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Engine under faults                                                 *)
(* ------------------------------------------------------------------ *)

let small_economy =
  {
    Reference.en_n = 4;
    cash = [| 0.0; 12.0; 20.0; 8.0 |];
    debts = [ (0, 1, 15.0); (1, 2, 10.0); (2, 3, 12.0); (3, 0, 4.0) ];
  }

let en_fixture ?(iterations = 2) () =
  let graph = En_program.graph_of_instance small_economy in
  let d = Graph.max_degree graph in
  let p = En_program.make ~epsilon:50.0 ~sensitivity:1 ~noise_max:2 ~l:12 ~degree:d ~iterations () in
  let states = En_program.encode_instance small_economy ~graph ~l:12 ~degree:d ~scale:0.25 in
  (graph, d, p, states)

let run_en ?(k = 2) ?(seed = "faults") ~plan () =
  let graph, d, p, states = en_fixture () in
  let expected = Engine.run_plaintext p ~degree_bound:d ~graph ~initial_states:states in
  let cfg =
    { (Engine.default_config grp ~k ~degree_bound:d ~seed) with Engine.fault_plan = plan }
  in
  (expected, Engine.run cfg p ~graph ~initial_states:states)

let test_engine_replay_with_faults () =
  let plan =
    [
      Fault.Crash_node { node = 1; from_round = 2; until_round = 3 };
      Fault.Drop_transfer { src = 0; dst = 1; round = 1 };
      Fault.Miss_decrypt { src = 2; dst = 3; round = 2 };
    ]
  in
  let _, r1 = run_en ~plan () in
  let _, r2 = run_en ~plan () in
  Alcotest.(check int) "same output" r1.Engine.output r2.Engine.output;
  Alcotest.(check int) "same retries" r1.Engine.transfer_retries r2.Engine.transfer_retries;
  Alcotest.(check bool) "same fault counters" true
    (r1.Engine.faults_injected = r2.Engine.faults_injected);
  Alcotest.(check (float 0.0)) "same epsilon charge" r1.Engine.retry_epsilon
    r2.Engine.retry_epsilon

let test_engine_crash_recovery_en () =
  let plan = [ Fault.Crash_node { node = 1; from_round = 2; until_round = 3 } ] in
  let expected, r = run_en ~plan () in
  Alcotest.(check int) "crash fired" 1
    (List.assoc Fault.Crash r.Engine.faults_injected);
  Alcotest.(check bool) "blocks re-shared" true (r.Engine.crash_recoveries > 0);
  Alcotest.(check int) "output unaffected by crash" expected r.Engine.output

let test_engine_edge_faults_recovered_en () =
  let graph, _, _, _ = en_fixture () in
  let plan =
    Fault.random_plan ~seed:11 ~rounds:3 ~nodes:4 ~edges:(Graph.edges graph)
      { Fault.no_faults with drop = 0.3; corrupt = 0.2; miss = 0.3; delay = 0.2 }
  in
  let expected, r = run_en ~plan () in
  let fired = List.fold_left (fun a (_, c) -> a + c) 0 r.Engine.faults_injected in
  Alcotest.(check bool) "plan actually injected" true (fired > 0);
  Alcotest.(check bool) "transfers were retried" true (r.Engine.transfer_retries > 0);
  Alcotest.(check int) "nothing left unrecovered" 0 r.Engine.unrecovered_failures;
  Alcotest.(check int) "output exact" expected r.Engine.output;
  let comm_recovery = List.assoc Engine.Communication r.Engine.recovery_seconds in
  Alcotest.(check bool) "backoff accounted" true (comm_recovery > 0.0)

let test_engine_crash_recovery_egj () =
  let inst =
    {
      Reference.egj_n = 3;
      base_assets = [| 20.0; 70.0; 60.0 |];
      orig_val = [| 100.0; 100.0; 90.0 |];
      threshold = [| 80.0; 80.0; 72.0 |];
      penalty = [| 10.0; 10.0; 10.0 |];
      holdings = [ (0, 1, 0.3); (1, 0, 0.3); (1, 2, 0.2); (2, 1, 0.2) ];
    }
  in
  let graph = Egj_program.graph_of_instance inst in
  let d = max 1 (Graph.max_degree graph) in
  let p = Egj_program.make ~epsilon:50.0 ~sensitivity:1 ~noise_max:2 ~l:14 ~frac:4 ~degree:d ~iterations:2 () in
  let states = Egj_program.encode_instance inst ~graph ~l:14 ~frac:4 ~degree:d ~scale:1.0 in
  let expected = Engine.run_plaintext p ~degree_bound:d ~graph ~initial_states:states in
  let plan =
    [
      Fault.Crash_node { node = 2; from_round = 2; until_round = 3 };
      Fault.Drop_transfer { src = 0; dst = 1; round = 1 };
    ]
  in
  let cfg =
    { (Engine.default_config grp ~k:2 ~degree_bound:d ~seed:"egj-crash") with
      Engine.fault_plan = plan }
  in
  let r = Engine.run cfg p ~graph ~initial_states:states in
  Alcotest.(check bool) "crash recovered" true (r.Engine.crash_recoveries > 0);
  Alcotest.(check int) "nothing unrecovered" 0 r.Engine.unrecovered_failures;
  Alcotest.(check int) "output exact" expected r.Engine.output

let test_engine_acceptance_n20 () =
  (* The headline scenario: N = 20 banks, >= 5% per-(edge, round) chance of
     a forced transfer miss plus drops, and a mid-run crash of a block
     member. The run must complete, recover everything, match the
     plaintext reference exactly, and itemize the cost. *)
  let t = Prng.of_int 0x20AC in
  let topo = Dstress_graphgen.Topology.erdos_renyi t ~n:20 ~avg_degree:1.5 ~max_degree:3 in
  let inst = Dstress_graphgen.Banking.en_of_topology t topo () in
  let graph = En_program.graph_of_instance inst in
  let d = max 1 (Graph.max_degree graph) in
  let p = En_program.make ~epsilon:50.0 ~sensitivity:1 ~noise_max:2 ~l:10 ~degree:d ~iterations:2 () in
  let states = En_program.encode_instance inst ~graph ~l:10 ~degree:d ~scale:0.25 in
  let expected = Engine.run_plaintext p ~degree_bound:d ~graph ~initial_states:states in
  let plan =
    Fault.random_plan ~seed:5 ~rounds:3 ~nodes:20 ~edges:(Graph.edges graph)
      { Fault.no_faults with miss = 0.08; drop = 0.05 }
    @ [ Fault.Crash_node { node = 3; from_round = 2; until_round = 3 } ]
  in
  let cfg =
    { (Engine.default_config grp ~k:3 ~degree_bound:d ~seed:"n20") with
      Engine.fault_plan = plan }
  in
  let r = Engine.run cfg p ~graph ~initial_states:states in
  Alcotest.(check int) "output matches plaintext exactly" expected r.Engine.output;
  let by k = List.assoc k r.Engine.faults_injected in
  Alcotest.(check bool) "misses injected" true (by Fault.Decrypt_miss > 0);
  Alcotest.(check int) "crash injected" 1 (by Fault.Crash);
  Alcotest.(check bool) "report itemizes retries" true (r.Engine.transfer_retries > 0);
  Alcotest.(check int) "all failures recovered" 0 r.Engine.unrecovered_failures;
  Alcotest.(check int) "recovered = failures" r.Engine.transfer_failures
    r.Engine.recovered_failures;
  Alcotest.(check bool) "retried releases charged" true (r.Engine.retry_epsilon > 0.0);
  Alcotest.(check bool) "crash handoff accounted" true
    (r.Engine.crash_recoveries > 0
    && List.assoc Engine.Computation r.Engine.recovery_seconds > 0.0)

(* ------------------------------------------------------------------ *)
(* Executor equivalence under faults: a faulty run must produce the     *)
(* same report under the sequential and the domain-pool backends —      *)
(* fault resolution happens in sequential prologues and all recovery    *)
(* randomness is event-keyed, so the schedule cannot change anything.   *)
(* ------------------------------------------------------------------ *)

module Executor = Dstress_runtime.Executor

let check_same_report label (a : Engine.report) (b : Engine.report) =
  let phases l = List.map (fun (p, v) -> (Engine.phase_name p, v)) l in
  Alcotest.(check int) (label ^ ": output") a.Engine.output b.Engine.output;
  Alcotest.(check (list (pair string int))) (label ^ ": phase bytes")
    (phases a.Engine.phase_bytes) (phases b.Engine.phase_bytes);
  Alcotest.(check int) (label ^ ": total traffic")
    (Traffic.total a.Engine.traffic) (Traffic.total b.Engine.traffic);
  Alcotest.(check (list int)) (label ^ ": per-node traffic")
    (List.init (Traffic.parties a.Engine.traffic) (Traffic.by_node a.Engine.traffic))
    (List.init (Traffic.parties b.Engine.traffic) (Traffic.by_node b.Engine.traffic));
  Alcotest.(check int) (label ^ ": failures") a.Engine.transfer_failures
    b.Engine.transfer_failures;
  Alcotest.(check int) (label ^ ": recovered") a.Engine.recovered_failures
    b.Engine.recovered_failures;
  Alcotest.(check int) (label ^ ": unrecovered") a.Engine.unrecovered_failures
    b.Engine.unrecovered_failures;
  Alcotest.(check int) (label ^ ": retries") a.Engine.transfer_retries
    b.Engine.transfer_retries;
  Alcotest.(check int) (label ^ ": crash recoveries") a.Engine.crash_recoveries
    b.Engine.crash_recoveries;
  Alcotest.(check bool) (label ^ ": fault counters") true
    (a.Engine.faults_injected = b.Engine.faults_injected);
  Alcotest.(check (float 0.0)) (label ^ ": retry epsilon") a.Engine.retry_epsilon
    b.Engine.retry_epsilon;
  let recov l = List.map (fun (p, v) -> (Engine.phase_name p, v)) l in
  Alcotest.(check (list (pair string (float 0.0)))) (label ^ ": recovery seconds")
    (recov a.Engine.recovery_seconds) (recov b.Engine.recovery_seconds)

let test_executors_agree_en_faulty () =
  let graph, d, p, states = en_fixture () in
  let plan =
    Fault.random_plan ~seed:11 ~rounds:3 ~nodes:4 ~edges:(Graph.edges graph)
      { Fault.no_faults with drop = 0.3; corrupt = 0.2; miss = 0.3; delay = 0.2 }
    @ [ Fault.Crash_node { node = 1; from_round = 2; until_round = 3 } ]
  in
  let run executor =
    let cfg =
      { (Engine.default_config grp ~k:2 ~degree_bound:d ~seed:"exec-faults") with
        Engine.fault_plan = plan; executor }
    in
    Engine.run cfg p ~graph ~initial_states:states
  in
  let seq = run Executor.sequential and par = run (Executor.parallel ~jobs:4) in
  let fired = List.fold_left (fun a (_, c) -> a + c) 0 seq.Engine.faults_injected in
  Alcotest.(check bool) "plan actually injected" true (fired > 0);
  Alcotest.(check bool) "retries exercised" true (seq.Engine.transfer_retries > 0);
  check_same_report "EN faulty" seq par

let test_executors_agree_egj () =
  let inst =
    {
      Reference.egj_n = 3;
      base_assets = [| 20.0; 70.0; 60.0 |];
      orig_val = [| 100.0; 100.0; 90.0 |];
      threshold = [| 80.0; 80.0; 72.0 |];
      penalty = [| 10.0; 10.0; 10.0 |];
      holdings = [ (0, 1, 0.3); (1, 0, 0.3); (1, 2, 0.2); (2, 1, 0.2) ];
    }
  in
  let graph = Egj_program.graph_of_instance inst in
  let d = max 1 (Graph.max_degree graph) in
  let p = Egj_program.make ~epsilon:50.0 ~sensitivity:1 ~noise_max:2 ~l:14 ~frac:4 ~degree:d ~iterations:2 () in
  let states = Egj_program.encode_instance inst ~graph ~l:14 ~frac:4 ~degree:d ~scale:1.0 in
  let plan = [ Fault.Crash_node { node = 2; from_round = 2; until_round = 3 } ] in
  let run executor =
    let cfg =
      { (Engine.default_config grp ~k:2 ~degree_bound:d ~seed:"exec-egj") with
        Engine.fault_plan = plan; executor }
    in
    Engine.run cfg p ~graph ~initial_states:states
  in
  check_same_report "EGJ" (run Executor.sequential) (run (Executor.parallel ~jobs:4))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "faults"
    [
      ( "plans",
        [
          Alcotest.test_case "random plan deterministic" `Quick test_random_plan_deterministic;
          Alcotest.test_case "bad rates rejected" `Quick test_random_plan_rejects_bad_rates;
          Alcotest.test_case "random crashes distinct" `Quick test_random_crashes_distinct;
          Alcotest.test_case "injector counters" `Quick test_injector_counts_only_fired;
          Alcotest.test_case "delay ticks contract" `Quick test_delay_ticks_contract;
          Alcotest.test_case "wire kinds classified" `Quick test_wire_kinds_classified;
          Alcotest.test_case "random wire plan" `Quick
            test_random_wire_plan_deterministic_and_valid;
          Alcotest.test_case "injector wire faults" `Quick test_injector_wire_faults;
        ] );
      ( "protocol recovery",
        [
          Alcotest.test_case "forced miss recovered" `Quick test_forced_miss_recovered_by_retry;
          Alcotest.test_case "miss without recovery flagged" `Quick
            test_forced_miss_without_recovery_is_flagged;
          Alcotest.test_case "drop without recovery" `Quick test_dropped_transfer_without_recovery;
          Alcotest.test_case "drop recovered" `Quick test_dropped_transfer_recovered;
          Alcotest.test_case "corruption recovered" `Quick test_corrupt_transfer_recovered;
          Alcotest.test_case "escalation table" `Quick test_escalation_table_rescues_tiny_table;
          Alcotest.test_case "retry exhaustion" `Quick test_retry_exhaustion_reports_misses;
          Alcotest.test_case "negative retries rejected" `Quick test_negative_retries_rejected;
        ] );
      ( "config validation",
        [
          Alcotest.test_case "field checks" `Quick test_config_validation;
          Alcotest.test_case "run validates up front" `Quick test_run_validates_before_work;
        ] );
      ( "engine",
        [
          Alcotest.test_case "deterministic replay" `Quick test_engine_replay_with_faults;
          Alcotest.test_case "EN crash recovery" `Quick test_engine_crash_recovery_en;
          Alcotest.test_case "EN edge faults recovered" `Quick test_engine_edge_faults_recovered_en;
          Alcotest.test_case "EGJ crash recovery" `Quick test_engine_crash_recovery_egj;
          Alcotest.test_case "N=20 acceptance scenario" `Slow test_engine_acceptance_n20;
        ] );
      ( "executor equivalence",
        [
          Alcotest.test_case "EN faulty run" `Quick test_executors_agree_en_faulty;
          Alcotest.test_case "EGJ crash run" `Quick test_executors_agree_egj;
        ] );
    ]
