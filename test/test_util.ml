open Dstress_util

let prng () = Prng.of_int 0xD57E55

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.of_int 42 and b = Prng.of_int 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_split_independent () =
  let parent = prng () in
  let child = Prng.split parent in
  let xs = List.init 32 (fun _ -> Prng.next_int64 parent) in
  let ys = List.init 32 (fun _ -> Prng.next_int64 child) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_prng_int_bounds () =
  let t = prng () in
  for _ = 1 to 1000 do
    let v = Prng.int t 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_rejects () =
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound <= 0")
    (fun () -> ignore (Prng.int (prng ()) 0))

let test_prng_bits_range () =
  let t = prng () in
  for n = 0 to 20 do
    for _ = 1 to 50 do
      let v = Prng.bits t n in
      Alcotest.(check bool) "bits in range" true (v >= 0 && v < 1 lsl n)
    done
  done

let test_prng_float_unit_interval () =
  let t = prng () in
  for _ = 1 to 1000 do
    let f = Prng.float t in
    Alcotest.(check bool) "[0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_prng_float_mean () =
  let t = prng () in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.float t
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let test_prng_bool_balanced () =
  let t = prng () in
  let trues = ref 0 in
  for _ = 1 to 10000 do
    if Prng.bool t then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 4500 && !trues < 5500)

let test_prng_sample_without_replacement () =
  let t = prng () in
  for _ = 1 to 100 do
    let s = Prng.sample_without_replacement t 5 10 in
    Alcotest.(check int) "size" 5 (List.length s);
    Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq Stdlib.compare s));
    List.iter (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 10)) s
  done

let test_prng_sample_full () =
  let t = prng () in
  let s = Prng.sample_without_replacement t 10 10 in
  Alcotest.(check (list int)) "permutation of 0..9"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.sort Stdlib.compare s)

let test_prng_shuffle_is_permutation () =
  let t = prng () in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort Stdlib.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

(* bool_words is the bulk OT-extension fill path: [bool_words t n] must
   draw exactly the booleans [bool t] would, in the same order (LSB
   first within each word), and leave the generator in the same state —
   including a partially consumed bit buffer carried across calls. *)
let test_prng_bool_words_differential () =
  List.iter
    (fun sizes ->
      let bulk = Prng.of_int 0xB17F1E and reference = Prng.of_int 0xB17F1E in
      List.iter
        (fun n ->
          let words = Prng.bool_words bulk n in
          Alcotest.(check int)
            (Printf.sprintf "n=%d word count" n)
            ((n + 63) / 64) (Array.length words);
          for i = 0 to n - 1 do
            let bit =
              Int64.logand (Int64.shift_right_logical words.(i / 64) (i mod 64)) 1L = 1L
            in
            Alcotest.(check bool) (Printf.sprintf "n=%d bit %d" n i) (Prng.bool reference) bit
          done)
        sizes;
      (* Same state afterwards: the next raw draws agree. *)
      for i = 0 to 4 do
        Alcotest.(check int64)
          (Printf.sprintf "state resync %d" i)
          (Prng.next_int64 reference) (Prng.next_int64 bulk)
      done)
    [ [ 0 ]; [ 1 ]; [ 63 ]; [ 64 ]; [ 65 ]; [ 130; 7; 1000 ]; [ 1; 1; 62; 64 ] ]

(* ------------------------------------------------------------------ *)
(* Bitvec                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitvec_roundtrip () =
  List.iter
    (fun v ->
      let bv = Bitvec.of_int ~bits:12 v in
      Alcotest.(check int) "roundtrip" v (Bitvec.to_int bv))
    [ 0; 1; 5; 100; 4095 ]

let test_bitvec_signed () =
  List.iter
    (fun v ->
      let bv = Bitvec.of_int ~bits:12 v in
      Alcotest.(check int) "signed roundtrip" v (Bitvec.to_int_signed bv))
    [ 0; 1; -1; -2048; 2047; -100 ]

let test_bitvec_xor_involution () =
  let t = prng () in
  for _ = 1 to 100 do
    let a = Bitvec.random t 16 and b = Bitvec.random t 16 in
    Alcotest.(check bool) "xor twice" true
      (Bitvec.equal a (Bitvec.xor (Bitvec.xor a b) b))
  done

let test_bitvec_xor_all () =
  let a = Bitvec.of_int ~bits:8 0b1010 in
  let b = Bitvec.of_int ~bits:8 0b0110 in
  let c = Bitvec.of_int ~bits:8 0b0001 in
  Alcotest.(check int) "xor_all" 0b1101 (Bitvec.to_int (Bitvec.xor_all [ a; b; c ]))

let test_bitvec_popcount () =
  Alcotest.(check int) "popcount" 3 (Bitvec.popcount (Bitvec.of_int ~bits:8 0b10110))

let test_bitvec_length_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitvec.xor") (fun () ->
      ignore (Bitvec.xor (Bitvec.create 3 false) (Bitvec.create 4 false)))

let test_bitvec_set_get () =
  let v = Bitvec.create 8 false in
  let v = Bitvec.set v 3 true in
  Alcotest.(check bool) "set bit" true (Bitvec.get v 3);
  Alcotest.(check bool) "other bit" false (Bitvec.get v 2)

let test_bitvec_lognot () =
  let v = Bitvec.of_int ~bits:4 0b0101 in
  Alcotest.(check int) "lognot" 0b1010 (Bitvec.to_int (Bitvec.lognot v))

let test_bitvec_of_int64_words () =
  let t = prng () in
  List.iter
    (fun len ->
      let bits = Array.init len (fun _ -> Prng.bool t) in
      let words =
        Array.init ((len + 63) / 64) (fun w ->
            let acc = ref 0L in
            for i = 0 to 63 do
              let idx = (w * 64) + i in
              if idx < len && bits.(idx) then
                acc := Int64.logor !acc (Int64.shift_left 1L i)
            done;
            !acc)
      in
      let bv = Bitvec.of_int64_words ~len words in
      Alcotest.(check int) (Printf.sprintf "len=%d length" len) len (Bitvec.length bv);
      Array.iteri
        (fun i b ->
          Alcotest.(check bool) (Printf.sprintf "len=%d bit %d" len i) b (Bitvec.get bv i))
        bits)
    [ 0; 1; 63; 64; 65; 130 ];
  Alcotest.check_raises "too few words" (Invalid_argument "Bitvec.of_int64_words") (fun () ->
      ignore (Bitvec.of_int64_words ~len:65 [| 0L |]))

(* ------------------------------------------------------------------ *)
(* Hex                                                                 *)
(* ------------------------------------------------------------------ *)

let test_hex_roundtrip () =
  let t = prng () in
  for _ = 1 to 50 do
    let b = Prng.bytes t (Prng.int t 40) in
    Alcotest.(check bytes) "roundtrip" b (Hex.decode (Hex.encode b))
  done

let test_hex_known () =
  Alcotest.(check string) "encode" "deadbeef"
    (Hex.encode (Bytes.of_string "\xde\xad\xbe\xef"));
  Alcotest.(check bytes) "decode upper" (Bytes.of_string "\xde\xad")
    (Hex.decode "DEAD")

let test_hex_invalid () =
  Alcotest.check_raises "odd" (Invalid_argument "Hex.decode: odd length")
    (fun () -> ignore (Hex.decode "abc"));
  Alcotest.check_raises "bad char" (Invalid_argument "Hex.decode: non-hex character")
    (fun () -> ignore (Hex.decode "zz"))

(* ------------------------------------------------------------------ *)
(* Crc32                                                               *)
(* ------------------------------------------------------------------ *)

let test_crc32_known_vectors () =
  (* The zlib/PNG/Ethernet check value, plus a couple of fixed points. *)
  Alcotest.(check int32) "check value" 0xCBF43926l (Crc32.string "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32.string "");
  Alcotest.(check int32) "single zero byte" 0xD202EF8Dl (Crc32.string "\x00");
  Alcotest.(check int32) "ascii" 0x414FA339l (Crc32.string "The quick brown fox jumps over the lazy dog")

let test_crc32_slice () =
  let b = Bytes.of_string "xx123456789yy" in
  Alcotest.(check int32) "offset/len slice" 0xCBF43926l (Crc32.digest ~off:2 ~len:9 b);
  Alcotest.(check int32) "whole buffer default" (Crc32.string "xx123456789yy") (Crc32.digest b);
  Alcotest.(check bool) "out of range rejected" true
    (try
       ignore (Crc32.digest ~off:10 ~len:9 b);
       false
     with Invalid_argument _ -> true)

let test_crc32_detects_flip () =
  let t = prng () in
  for _ = 1 to 50 do
    let b = Prng.bytes t (1 + Prng.int t 64) in
    let c0 = Crc32.digest b in
    let i = Prng.int t (Bytes.length b) in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Prng.int t 8)));
    Alcotest.(check bool) "bit flip changes crc" true (Crc32.digest b <> c0)
  done

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_stats_stddev () =
  Alcotest.(check (float 1e-9)) "stddev" (sqrt (8.75 /. 3.0))
    (Stats.stddev [| 1.0; 2.0; 3.0; 5.0 |])

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.median xs);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p25" 2.0 (Stats.percentile xs 25.0)

let test_stats_linear_fit () =
  let pts = Array.init 10 (fun i -> (float_of_int i, 3.0 +. (2.0 *. float_of_int i))) in
  let a, b = Stats.linear_fit pts in
  Alcotest.(check (float 1e-9)) "intercept" 3.0 a;
  Alcotest.(check (float 1e-9)) "slope" 2.0 b;
  Alcotest.(check (float 1e-9)) "r2" 1.0 (Stats.r_squared pts ~a ~b)

let test_stats_fit_noisy () =
  let t = prng () in
  let pts =
    Array.init 200 (fun i ->
        let x = float_of_int i in
        (x, 5.0 +. (0.5 *. x) +. (Prng.float t -. 0.5)))
  in
  let a, b = Stats.linear_fit pts in
  Alcotest.(check bool) "slope near 0.5" true (abs_float (b -. 0.5) < 0.05);
  Alcotest.(check bool) "intercept near 5" true (abs_float (a -. 5.0) < 1.0)

let test_stats_histogram () =
  let h = Stats.histogram [| 0.1; 0.2; 0.6; 0.9; -1.0; 2.0 |] ~bins:2 ~lo:0.0 ~hi:1.0 in
  Alcotest.(check (array int)) "bins" [| 3; 3 |] h

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_bitvec_int_roundtrip =
  QCheck2.Test.make ~name:"bitvec of_int/to_int roundtrip" ~count:500
    QCheck2.Gen.(int_bound ((1 lsl 16) - 1))
    (fun v -> Bitvec.to_int (Bitvec.of_int ~bits:16 v) = v)

let prop_bitvec_xor_comm =
  QCheck2.Test.make ~name:"bitvec xor commutative" ~count:200
    QCheck2.Gen.(pair (int_bound 255) (int_bound 255))
    (fun (a, b) ->
      let va = Bitvec.of_int ~bits:8 a and vb = Bitvec.of_int ~bits:8 b in
      Bitvec.equal (Bitvec.xor va vb) (Bitvec.xor vb va))

let prop_hex_roundtrip =
  QCheck2.Test.make ~name:"hex roundtrip" ~count:200 QCheck2.Gen.string (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal (Hex.decode (Hex.encode b)) b)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest
      [ prop_bitvec_int_roundtrip; prop_bitvec_xor_comm; prop_hex_roundtrip ]
  in
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int rejects bad bound" `Quick test_prng_int_rejects;
          Alcotest.test_case "bits range" `Quick test_prng_bits_range;
          Alcotest.test_case "float in [0,1)" `Quick test_prng_float_unit_interval;
          Alcotest.test_case "float mean" `Quick test_prng_float_mean;
          Alcotest.test_case "bool balanced" `Quick test_prng_bool_balanced;
          Alcotest.test_case "sample w/o replacement" `Quick
            test_prng_sample_without_replacement;
          Alcotest.test_case "sample full range" `Quick test_prng_sample_full;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_is_permutation;
          Alcotest.test_case "bool_words matches bool stream" `Quick
            test_prng_bool_words_differential;
        ] );
      ( "bitvec",
        [
          Alcotest.test_case "roundtrip" `Quick test_bitvec_roundtrip;
          Alcotest.test_case "signed roundtrip" `Quick test_bitvec_signed;
          Alcotest.test_case "xor involution" `Quick test_bitvec_xor_involution;
          Alcotest.test_case "xor_all" `Quick test_bitvec_xor_all;
          Alcotest.test_case "popcount" `Quick test_bitvec_popcount;
          Alcotest.test_case "length mismatch" `Quick test_bitvec_length_mismatch;
          Alcotest.test_case "set/get" `Quick test_bitvec_set_get;
          Alcotest.test_case "lognot" `Quick test_bitvec_lognot;
          Alcotest.test_case "of int64 words" `Quick test_bitvec_of_int64_words;
        ] );
      ( "hex",
        [
          Alcotest.test_case "roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "known vectors" `Quick test_hex_known;
          Alcotest.test_case "invalid input" `Quick test_hex_invalid;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "known vectors" `Quick test_crc32_known_vectors;
          Alcotest.test_case "offset/len slice" `Quick test_crc32_slice;
          Alcotest.test_case "detects bit flips" `Quick test_crc32_detects_flip;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "linear fit exact" `Quick test_stats_linear_fit;
          Alcotest.test_case "linear fit noisy" `Quick test_stats_fit_noisy;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
        ] );
      ("properties", qsuite);
    ]
