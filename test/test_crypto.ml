open Dstress_crypto
module Nat = Dstress_bignum.Nat

let grp = Group.by_name "toy"
let prg tag = Prg.of_string ("test-crypto:" ^ tag)

(* ------------------------------------------------------------------ *)
(* SHA-256                                                             *)
(* ------------------------------------------------------------------ *)

let test_sha256_fips_vectors () =
  let check msg expected =
    Alcotest.(check string) ("sha256 of " ^ String.escaped msg) expected
      (Sha256.hex_digest msg)
  in
  check "" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
  check "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
  check "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"

let test_sha256_block_boundaries () =
  (* Lengths straddling the 55/56/63/64-byte padding boundaries must all
     produce distinct digests and not crash. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      let d = Sha256.hex_digest (String.make n 'x') in
      Alcotest.(check bool) "distinct" false (Hashtbl.mem seen d);
      Hashtbl.replace seen d ())
    [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 119; 120; 128 ]

let test_sha256_million_a () =
  let msg = String.make 1_000_000 'a' in
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex_digest msg)

let test_hmac_rfc4231 () =
  let key = Bytes.make 20 '\x0b' in
  let data = Bytes.of_string "Hi There" in
  Alcotest.(check string) "rfc4231 case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Dstress_util.Hex.encode (Sha256.hmac ~key data))

let test_hmac_long_key () =
  (* Keys longer than the block size are hashed first (RFC 4231 case 6). *)
  let key = Bytes.make 131 '\xaa' in
  let data = Bytes.of_string "Test Using Larger Than Block-Size Key - Hash Key First" in
  Alcotest.(check string) "rfc4231 case 6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Dstress_util.Hex.encode (Sha256.hmac ~key data))

(* ------------------------------------------------------------------ *)
(* Prg                                                                 *)
(* ------------------------------------------------------------------ *)

let test_prg_deterministic () =
  let a = prg "det" and b = prg "det" in
  Alcotest.(check bytes) "same stream" (Prg.bytes a 100) (Prg.bytes b 100)

let test_prg_distinct_keys () =
  let a = prg "k1" and b = prg "k2" in
  Alcotest.(check bool) "different" false (Bytes.equal (Prg.bytes a 32) (Prg.bytes b 32))

let test_prg_nat_below () =
  let t = prg "below" in
  let bound = Nat.of_decimal "1000000000000" in
  for _ = 1 to 200 do
    Alcotest.(check bool) "in range" true (Nat.compare (Prg.nat_below t bound) bound < 0)
  done

let test_prg_bits_length () =
  let t = prg "bits" in
  Alcotest.(check int) "length" 13 (Dstress_util.Bitvec.length (Prg.bits t 13))

let test_prg_bool_balanced () =
  let t = prg "bool" in
  let ones = ref 0 in
  for _ = 1 to 4000 do
    if Prg.bool t then incr ones
  done;
  Alcotest.(check bool) "balanced" true (!ones > 1700 && !ones < 2300)

(* ------------------------------------------------------------------ *)
(* Group                                                               *)
(* ------------------------------------------------------------------ *)

let test_group_generator_order () =
  Alcotest.(check bool) "g^q = 1" true
    (Nat.is_one (Group.pow grp (Group.g grp) (Group.q grp)));
  Alcotest.(check bool) "g is element" true (Group.is_element grp (Group.g grp))

let test_group_safe_prime () =
  let p = Group.p grp and q = Group.q grp in
  Alcotest.(check bool) "p = 2q+1" true
    (Nat.equal p (Nat.add (Nat.mul Nat.two q) Nat.one))

let test_group_all_sizes () =
  List.iter
    (fun name ->
      let g = Group.by_name name in
      Alcotest.(check bool)
        (name ^ " generator ok")
        true
        (Group.is_element g (Group.g g)))
    [ "toy"; "medium"; "standard" ]

let test_group_unknown_name () =
  (* The error message is generated from Group.names, so it tracks the
     registry automatically. *)
  Alcotest.check_raises "unknown"
    (Invalid_argument
       (Printf.sprintf "Group.by_name: unknown group nope (expected one of: %s)"
          (String.concat ", " Group.names)))
    (fun () -> ignore (Group.by_name "nope"))

let test_group_pow_g_matches_pow () =
  let t = prg "powg" in
  for _ = 1 to 20 do
    let e = Group.random_exponent t grp in
    Alcotest.(check bool) "pow_g = pow g" true
      (Group.elt_equal (Group.pow_g grp e) (Group.pow grp (Group.g grp) e))
  done

let test_group_inverse () =
  let t = prg "inv" in
  for _ = 1 to 20 do
    let e = Group.random_exponent t grp in
    let x = Group.pow_g grp e in
    Alcotest.(check bool) "x * x^-1 = 1" true
      (Nat.is_one (Group.mul grp x (Group.inv grp x)))
  done

let test_group_exp_arith () =
  let q = Group.q grp in
  let a = Nat.sub q Nat.one and b = Nat.two in
  Alcotest.(check bool) "exp_add wraps" true
    (Nat.equal (Group.exp_add grp a b) Nat.one);
  Alcotest.(check bool) "exp_sub wraps" true
    (Nat.equal (Group.exp_sub grp Nat.zero Nat.one) a);
  let t = prg "exparith" in
  let e = Group.random_exponent t grp in
  Alcotest.(check bool) "exp_inv" true
    (Nat.is_one (Group.exp_mul grp e (Group.exp_inv grp e)))

let test_group_make_rejects_bad () =
  Alcotest.(check bool) "bad p rejected" true
    (try
       ignore (Group.make ~p:(Nat.of_int 15) ~q:(Nat.of_int 5) ~g:(Nat.of_int 2));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* ElGamal                                                             *)
(* ------------------------------------------------------------------ *)

let test_elgamal_roundtrip () =
  let t = prg "eg" in
  let sk, pk = Elgamal.keygen t grp in
  for _ = 1 to 20 do
    let m = Group.pow_g grp (Group.random_exponent t grp) in
    let c = Elgamal.encrypt t grp pk m in
    Alcotest.(check bool) "roundtrip" true (Group.elt_equal m (Elgamal.decrypt grp sk c))
  done

let test_elgamal_homomorphism () =
  let t = prg "eg-hom" in
  let sk, pk = Elgamal.keygen t grp in
  let m1 = Group.pow_g grp (Group.random_exponent t grp) in
  let m2 = Group.pow_g grp (Group.random_exponent t grp) in
  let c = Elgamal.mul grp (Elgamal.encrypt t grp pk m1) (Elgamal.encrypt t grp pk m2) in
  Alcotest.(check bool) "product" true
    (Group.elt_equal (Group.mul grp m1 m2) (Elgamal.decrypt grp sk c))

let test_elgamal_wrong_key () =
  let t = prg "eg-wrong" in
  let _, pk = Elgamal.keygen t grp in
  let sk', _ = Elgamal.keygen t grp in
  let m = Group.pow_g grp (Group.random_exponent t grp) in
  let c = Elgamal.encrypt t grp pk m in
  Alcotest.(check bool) "wrong key garbles" false
    (Group.elt_equal m (Elgamal.decrypt grp sk' c))

(* ------------------------------------------------------------------ *)
(* Exponential ElGamal                                                 *)
(* ------------------------------------------------------------------ *)

let table = Exp_elgamal.Table.make grp ~lo:(-1000) ~hi:1000

let test_exp_elgamal_roundtrip () =
  let t = prg "xeg" in
  let sk, pk = Exp_elgamal.keygen t grp in
  List.iter
    (fun v ->
      let c = Exp_elgamal.encrypt t grp pk v in
      Alcotest.(check (option int)) "roundtrip" (Some v)
        (Exp_elgamal.decrypt grp sk table c))
    [ 0; 1; -1; 42; -999; 1000; 500 ]

let test_exp_elgamal_additive () =
  let t = prg "xeg-add" in
  let sk, pk = Exp_elgamal.keygen t grp in
  for _ = 1 to 20 do
    let a = Prg.bool t |> fun b -> if b then 17 else -55 in
    let b = 23 in
    let c =
      Exp_elgamal.add grp (Exp_elgamal.encrypt t grp pk a) (Exp_elgamal.encrypt t grp pk b)
    in
    Alcotest.(check (option int)) "sum" (Some (a + b)) (Exp_elgamal.decrypt grp sk table c)
  done

let test_exp_elgamal_add_clear () =
  let t = prg "xeg-clear" in
  let sk, pk = Exp_elgamal.keygen t grp in
  let c = Exp_elgamal.encrypt t grp pk 100 in
  let c' = Exp_elgamal.add_clear t grp pk c (-30) in
  Alcotest.(check (option int)) "add_clear" (Some 70) (Exp_elgamal.decrypt grp sk table c')

let test_exp_elgamal_out_of_table () =
  let t = prg "xeg-oob" in
  let sk, pk = Exp_elgamal.keygen t grp in
  let c = Exp_elgamal.encrypt t grp pk 5000 in
  Alcotest.(check (option int)) "decryption failure" None
    (Exp_elgamal.decrypt grp sk table c)

let test_exp_elgamal_rerandomized_key () =
  let t = prg "xeg-rr" in
  let sk, pk = Exp_elgamal.keygen t grp in
  let r = Group.random_exponent t grp in
  let pk_r = Exp_elgamal.rerandomize_key grp pk r in
  Alcotest.(check bool) "key changed" false (Group.elt_equal pk pk_r);
  let c = Exp_elgamal.encrypt t grp pk_r 77 in
  (* Without adjustment the original key fails... *)
  Alcotest.(check bool) "unadjusted fails" true
    (Exp_elgamal.decrypt grp sk table c <> Some 77
    || Nat.is_one r);
  (* ...and with adjustment it succeeds. *)
  let c' = Exp_elgamal.adjust grp c r in
  Alcotest.(check (option int)) "adjusted decrypts" (Some 77)
    (Exp_elgamal.decrypt grp sk table c')

let test_exp_elgamal_homomorphism_after_adjust () =
  (* Sums of adjusted ciphertexts decrypt correctly: the exact pattern of
     the transfer protocol (aggregate then adjust via i's neighbor key). *)
  let t = prg "xeg-agg" in
  let sk, pk = Exp_elgamal.keygen t grp in
  let r = Group.random_exponent t grp in
  let pk_r = Exp_elgamal.rerandomize_key grp pk r in
  let cs = List.map (fun v -> Exp_elgamal.encrypt t grp pk_r v) [ 3; 9; -5 ] in
  let sum = List.fold_left (Exp_elgamal.add grp) (List.hd cs) (List.tl cs) in
  let adjusted = Exp_elgamal.adjust grp sum r in
  Alcotest.(check (option int)) "sum decrypts" (Some 7)
    (Exp_elgamal.decrypt grp sk table adjusted)

let test_exp_elgamal_multi_recipient () =
  let t = prg "xeg-multi" in
  let keys = List.init 5 (fun _ -> Exp_elgamal.keygen t grp) in
  let values = [ 1; -2; 30; 0; 999 ] in
  let recipients = List.map2 (fun (_, pk) v -> (pk, v)) keys values in
  let c1, c2s = Exp_elgamal.encrypt_multi t grp recipients in
  List.iteri
    (fun i c2 ->
      let sk, _ = List.nth keys i in
      let expected = List.nth values i in
      Alcotest.(check (option int)) "multi decrypt" (Some expected)
        (Exp_elgamal.decrypt grp sk table { Exp_elgamal.c1; c2 }))
    c2s

let test_exp_elgamal_multi_bandwidth () =
  Alcotest.(check bool) "multi saves bandwidth" true
    (Exp_elgamal.multi_ciphertext_bytes grp 12
    < 12 * Elgamal.ciphertext_bytes grp)

(* ------------------------------------------------------------------ *)
(* Batch entry points vs their scalar loops                            *)
(* ------------------------------------------------------------------ *)

(* The batch paths promise draw-for-draw identity with the scalar loops
   they replace, on every registered group — the ffdhe groups take the
   real 2048/3072-bit kernel paths, so keep their batch sizes small. *)
let small_batch name = if String.length name >= 5 && String.sub name 0 5 = "ffdhe" then 3 else 8

let test_rerandomize_many_matches_scalar () =
  List.iter
    (fun name ->
      let g = Group.by_name name in
      let t = prg ("rr-setup:" ^ name) in
      let _, pk = Elgamal.keygen t g in
      let n = small_batch name in
      let cts =
        Array.init n (fun _ ->
            Elgamal.encrypt t g pk (Group.pow_g g (Group.random_exponent t g)))
      in
      let scalar =
        let s = prg ("rr-draws:" ^ name) in
        Array.map (fun c -> Elgamal.rerandomize s g pk c) cts
      in
      let batch =
        let s = prg ("rr-draws:" ^ name) in
        Elgamal.rerandomize_many s g pk cts
      in
      Array.iteri
        (fun i c ->
          Alcotest.(check bool)
            (Printf.sprintf "%s ct %d identical" name i)
            true
            (Elgamal.ciphertext_equal scalar.(i) c))
        batch)
    Group.names

let test_decrypt_many_matches_scalar () =
  List.iter
    (fun name ->
      let g = Group.by_name name in
      let t = prg ("dm:" ^ name) in
      let sk, pk = Elgamal.keygen t g in
      let n = small_batch name in
      let msgs = Array.init n (fun _ -> Group.pow_g g (Group.random_exponent t g)) in
      let cts = Array.map (Elgamal.encrypt t g pk) msgs in
      let got = Elgamal.decrypt_many g sk cts in
      Array.iteri
        (fun i m ->
          Alcotest.(check bool)
            (Printf.sprintf "%s msg %d" name i)
            true
            (Group.elt_equal m got.(i))
          ;
          Alcotest.(check bool)
            (Printf.sprintf "%s scalar agrees %d" name i)
            true
            (Group.elt_equal (Elgamal.decrypt g sk cts.(i)) got.(i)))
        msgs)
    Group.names

let test_decrypt_shared_matches_scalar () =
  (* Shared-c1 lookup decryption: one bundle to many recipients, each
     recipient decrypted scalar vs the batched shared path. *)
  List.iter
    (fun name ->
      let g = Group.by_name name in
      let t = prg ("ds:" ^ name) in
      let tbl = Exp_elgamal.Table.make g ~lo:(-50) ~hi:50 in
      let n = small_batch name in
      let keys = List.init n (fun _ -> Exp_elgamal.keygen t g) in
      let values = List.init n (fun i -> (i * 7) - 20) in
      let recipients = List.map2 (fun (_, pk) v -> (pk, v)) keys values in
      let c1, c2s = Exp_elgamal.encrypt_multi t g recipients in
      let pairs =
        Array.of_list (List.map2 (fun (sk, _) c2 -> (sk, c2)) keys c2s)
      in
      let got = Exp_elgamal.decrypt_shared g tbl ~c1 pairs in
      List.iteri
        (fun i v ->
          Alcotest.(check (option int))
            (Printf.sprintf "%s shared %d" name i)
            (Some v) got.(i);
          let sk, _ = List.nth keys i in
          Alcotest.(check (option int))
            (Printf.sprintf "%s scalar agrees %d" name i)
            (Exp_elgamal.decrypt g sk tbl
               { Exp_elgamal.c1; c2 = List.nth c2s i })
            got.(i))
        values)
    Group.names

let test_encrypt_multi_batch_matches_sequential () =
  (* Same seed, bundle order: the batched multi-recipient encryption must
     reproduce the sequential encrypt_multi loop draw for draw — keys
     repeat across bundles to exercise the per-key grouping. *)
  let t = prg "emb-setup" in
  let keys = Array.init 4 (fun _ -> Exp_elgamal.keygen t grp) in
  let bundle spec = List.map (fun (k, v) -> (snd keys.(k), v)) spec in
  let bundles =
    [|
      bundle [ (0, 3); (1, -4); (2, 10) ];
      bundle [ (1, 7) ];
      bundle [ (3, 0); (0, 5); (1, 2); (2, -9) ];
      bundle [];
      bundle [ (2, 1); (2, 1) ];
    |]
  in
  let sequential =
    let s = prg "emb-draws" in
    Array.map (Exp_elgamal.encrypt_multi s grp) bundles
  in
  let batched =
    let s = prg "emb-draws" in
    Exp_elgamal.encrypt_multi_batch s grp bundles
  in
  Array.iteri
    (fun i (c1, c2s) ->
      let c1', c2s' = sequential.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "bundle %d c1" i)
        true
        (Group.elt_equal c1 c1');
      List.iteri
        (fun j c2 ->
          Alcotest.(check bool)
            (Printf.sprintf "bundle %d c2 %d" i j)
            true
            (Group.elt_equal c2 (List.nth c2s' j)))
        c2s)
    batched

let test_adjust_many_matches_adjust () =
  let t = prg "adj" in
  let _, pk = Exp_elgamal.keygen t grp in
  let r = Group.random_exponent t grp in
  let cs = Array.init 6 (fun i -> Exp_elgamal.encrypt t grp pk (i - 3)) in
  let got = Exp_elgamal.adjust_many grp cs r in
  Array.iteri
    (fun i c ->
      let e = Exp_elgamal.adjust grp cs.(i) r in
      Alcotest.(check bool)
        (Printf.sprintf "ct %d" i)
        true
        (Group.elt_equal e.Exp_elgamal.c1 c.Exp_elgamal.c1
        && Group.elt_equal e.Exp_elgamal.c2 c.Exp_elgamal.c2))
    got

let test_schnorr_named_groups () =
  (* Shamir-trick verification on every registered group, including the
     RFC 7919 ones. *)
  List.iter
    (fun name ->
      let g = Group.by_name name in
      let t = prg ("schnorr:" ^ name) in
      let sk, pk = Schnorr.keygen t g in
      let s = Schnorr.sign t g sk ("roster:" ^ name) in
      Alcotest.(check bool) (name ^ " verifies") true
        (Schnorr.verify g pk ("roster:" ^ name) s);
      Alcotest.(check bool) (name ^ " rejects") false
        (Schnorr.verify g pk "other" s))
    Group.names

let test_table_size () =
  Alcotest.(check int) "size" 2001 (Exp_elgamal.Table.size table)

let test_table_lookup_hit_and_miss () =
  (* The Nat-keyed table must resolve exactly g^v for v in range and
     nothing else. *)
  List.iter
    (fun v ->
      let elt = Group.pow_g grp (Nat.of_int v) in
      Alcotest.(check (option int)) (Printf.sprintf "hit %d" v) (Some v)
        (Exp_elgamal.Table.lookup table elt))
    [ 0; 1; 42; 999; 1000 ];
  let outside = Group.pow_g grp (Nat.of_int 1001) in
  Alcotest.(check (option int)) "miss" None (Exp_elgamal.Table.lookup table outside)

(* ------------------------------------------------------------------ *)
(* Base OT                                                             *)
(* ------------------------------------------------------------------ *)

let test_base_ot_all_cases () =
  let t = prg "ot" in
  List.iter
    (fun (b0, b1, choice) ->
      let meter = Xfer.create () in
      let got =
        Ot.base_ot_bit grp meter ~sender_prg:t ~receiver_prg:t ~b0 ~b1 ~choice
      in
      Alcotest.(check bool) "selected" (if choice then b1 else b0) got)
    [
      (false, false, false); (false, false, true);
      (false, true, false); (false, true, true);
      (true, false, false); (true, false, true);
      (true, true, false); (true, true, true);
    ]

let test_base_ot_bytes () =
  let t = prg "ot-bytes" in
  for _ = 1 to 10 do
    let m0 = Prg.bytes t 16 and m1 = Prg.bytes t 16 in
    let choice = Prg.bool t in
    let meter = Xfer.create () in
    let got = Ot.base_ot grp meter ~sender_prg:t ~receiver_prg:t ~m0 ~m1 ~choice in
    Alcotest.(check bytes) "chosen message" (if choice then m1 else m0) got;
    Alcotest.(check bool) "traffic metered" true (Xfer.total meter > 0)
  done

let test_base_ot_length_mismatch () =
  let t = prg "ot-len" in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Ot.base_ot: message length mismatch") (fun () ->
      ignore
        (Ot.base_ot grp (Xfer.create ()) ~sender_prg:t ~receiver_prg:t
           ~m0:(Bytes.create 4) ~m1:(Bytes.create 5) ~choice:false))

let test_random_point_is_element () =
  let c = Ot.random_point grp "tag-a" in
  Alcotest.(check bool) "in subgroup" true (Group.is_element grp c);
  let c' = Ot.random_point grp "tag-b" in
  Alcotest.(check bool) "tag-dependent" false (Group.elt_equal c c')

(* ------------------------------------------------------------------ *)
(* OT extension                                                        *)
(* ------------------------------------------------------------------ *)

let test_ot_ext_bytes () =
  let sp = prg "ext-s" and rp = prg "ext-r" in
  let meter = Xfer.create () in
  let session = Ot_ext.setup grp meter ~sender_prg:sp ~receiver_prg:rp in
  let t = prg "ext-data" in
  let m = 64 in
  let pairs = Array.init m (fun _ -> (Prg.bytes t 8, Prg.bytes t 8)) in
  let choices = Array.init m (fun _ -> Prg.bool t) in
  let out = Ot_ext.extend session meter ~pairs ~choices in
  Array.iteri
    (fun j got ->
      let x0, x1 = pairs.(j) in
      Alcotest.(check bytes) "chosen" (if choices.(j) then x1 else x0) got)
    out

let test_ot_ext_bits () =
  let sp = prg "extb-s" and rp = prg "extb-r" in
  let meter = Xfer.create () in
  let session = Ot_ext.setup grp meter ~sender_prg:sp ~receiver_prg:rp in
  let t = prg "extb-data" in
  let m = 200 in
  let pairs = Array.init m (fun _ -> (Prg.bool t, Prg.bool t)) in
  let choices = Array.init m (fun _ -> Prg.bool t) in
  let out = Ot_ext.extend_bits session meter ~pairs ~choices in
  Array.iteri
    (fun j got ->
      let x0, x1 = pairs.(j) in
      Alcotest.(check bool) "chosen bit" (if choices.(j) then x1 else x0) got)
    out;
  Alcotest.(check int) "count" m (Ot_ext.ots_performed session)

let test_ot_ext_multiple_batches () =
  (* The same session must serve several extend calls with fresh
     correlation (stateful column PRGs). *)
  let sp = prg "extm-s" and rp = prg "extm-r" in
  let meter = Xfer.create () in
  let session = Ot_ext.setup grp meter ~sender_prg:sp ~receiver_prg:rp in
  let t = prg "extm-data" in
  for _ = 1 to 5 do
    let m = 32 in
    let pairs = Array.init m (fun _ -> (Prg.bool t, Prg.bool t)) in
    let choices = Array.init m (fun _ -> Prg.bool t) in
    let out = Ot_ext.extend_bits session meter ~pairs ~choices in
    Array.iteri
      (fun j got ->
        let x0, x1 = pairs.(j) in
        Alcotest.(check bool) "batch bit" (if choices.(j) then x1 else x0) got)
      out
  done

let test_ot_ext_simulation_mode () =
  (* Simulation mode must produce correct OTs and meter the same traffic
     as crypto mode. *)
  let run mode =
    let sp = prg "sim-s" and rp = prg "sim-r" in
    let meter = Xfer.create () in
    let session = Ot_ext.setup ~mode grp meter ~sender_prg:sp ~receiver_prg:rp in
    let t = prg "sim-data" in
    let m = 100 in
    let pairs = Array.init m (fun _ -> (Prg.bool t, Prg.bool t)) in
    let choices = Array.init m (fun _ -> Prg.bool t) in
    let out = Ot_ext.extend_bits session meter ~pairs ~choices in
    Array.iteri
      (fun j got ->
        let x0, x1 = pairs.(j) in
        Alcotest.(check bool) "sim chosen bit" (if choices.(j) then x1 else x0) got)
      out;
    Xfer.total meter
  in
  let crypto_traffic = run Ot_ext.Crypto in
  let sim_traffic = run Ot_ext.Simulation in
  Alcotest.(check int) "same metered traffic" crypto_traffic sim_traffic

let test_ot_ext_amortized_traffic () =
  (* Extension OTs must be far cheaper than base OTs: the whole point of
     IKNP. Compare marginal traffic of 1000 extension OTs against 1000
     base OTs (3 group elements + 2 bits each). *)
  let sp = prg "extt-s" and rp = prg "extt-r" in
  let setup_meter = Xfer.create () in
  let session = Ot_ext.setup grp setup_meter ~sender_prg:sp ~receiver_prg:rp in
  let meter = Xfer.create () in
  let m = 1000 in
  let pairs = Array.make m (false, true) in
  let choices = Array.make m true in
  ignore (Ot_ext.extend_bits session meter ~pairs ~choices);
  let per_ot = float_of_int (Xfer.total meter) /. float_of_int m in
  let base_per_ot = float_of_int (3 * Group.element_bytes grp + 2) in
  Alcotest.(check bool) "amortized cheaper than base" true (per_ot < base_per_ot)

let test_ot_ext_words_matches_bits () =
  (* extend_words on w-lane words must agree lane-for-lane with
     extend_bits on the flattened bit stream, in both backends, and
     consume the same session state. *)
  List.iter
    (fun mode ->
      let session_of tag =
        Ot_ext.setup ~mode grp (Xfer.create ()) ~sender_prg:(prg (tag ^ "-s"))
          ~receiver_prg:(prg (tag ^ "-r"))
      in
      let t = prg "extw-data" in
      let m = 17 and width = 5 in
      let word () =
        let w = ref 0L in
        for lane = 0 to width - 1 do
          if Prg.bool t then w := Int64.logor !w (Int64.shift_left 1L lane)
        done;
        !w
      in
      let pairs = Array.init m (fun _ -> (word (), word ())) in
      let choices = Array.init m (fun _ -> word ()) in
      let sw = session_of "extw" and sb = session_of "extw" in
      let out = Ot_ext.extend_words sw (Xfer.create ()) ~width ~pairs ~choices in
      let lane_bit w lane = Int64.logand (Int64.shift_right_logical w lane) 1L = 1L in
      (* Lanes of gate g occupy positions g*width .. g*width+width-1. *)
      let flat f = Array.init (m * width) (fun i -> f (i / width) (i mod width)) in
      let bit_pairs =
        flat (fun g lane ->
            let x0, x1 = pairs.(g) in
            (lane_bit x0 lane, lane_bit x1 lane))
      in
      let bit_choices = flat (fun g lane -> lane_bit choices.(g) lane) in
      let bmeter = Xfer.create () in
      let bits = Ot_ext.extend_bits sb bmeter ~pairs:bit_pairs ~choices:bit_choices in
      Array.iteri
        (fun g w ->
          for lane = 0 to width - 1 do
            Alcotest.(check bool)
              (Printf.sprintf "gate %d lane %d" g lane)
              bits.((g * width) + lane)
              (lane_bit w lane)
          done;
          (* Lanes beyond width must be masked off. *)
          Alcotest.(check int64) (Printf.sprintf "gate %d high lanes" g) 0L
            (Int64.shift_right_logical w width))
        out;
      Alcotest.(check int) "ots consumed" (Ot_ext.ots_performed sb)
        (Ot_ext.ots_performed sw))
    [ Ot_ext.Simulation; Ot_ext.Crypto ]

let test_ot_ext_words_metering () =
  (* A word batch must meter exactly like the equivalent flat bit batch:
     kappa * ceil(total/8) receiver->sender, 2 * ceil(total/8) back. *)
  let session =
    Ot_ext.setup ~mode:Ot_ext.Simulation grp (Xfer.create ()) ~sender_prg:(prg "extwm-s")
      ~receiver_prg:(prg "extwm-r")
  in
  let m = 9 and width = 7 in
  let meter = Xfer.create () in
  ignore
    (Ot_ext.extend_words session meter ~width
       ~pairs:(Array.make m (0L, Int64.minus_one))
       ~choices:(Array.make m 0L));
  let total = m * width in
  let col = Ot_ext.kappa * ((total + 7) / 8) and row = 2 * ((total + 7) / 8) in
  Alcotest.(check int) "metered" (col + row) (Xfer.total meter)

let test_ot_ext_words_rejects_bad_width () =
  let session =
    Ot_ext.setup ~mode:Ot_ext.Simulation grp (Xfer.create ()) ~sender_prg:(prg "extwv-s")
      ~receiver_prg:(prg "extwv-r")
  in
  List.iter
    (fun width ->
      Alcotest.check_raises
        (Printf.sprintf "width %d" width)
        (Invalid_argument "Ot_ext.extend_words: width must be in [1, 64]")
        (fun () ->
          ignore
            (Ot_ext.extend_words session (Xfer.create ()) ~width ~pairs:[| (0L, 0L) |]
               ~choices:[| 0L |])))
    [ 0; 65 ]


(* ------------------------------------------------------------------ *)
(* Schnorr signatures                                                  *)
(* ------------------------------------------------------------------ *)

let test_schnorr_sign_verify () =
  let t = prg "schnorr" in
  let sk, pk = Schnorr.keygen t grp in
  List.iter
    (fun msg ->
      let s = Schnorr.sign t grp sk msg in
      Alcotest.(check bool) ("verifies: " ^ msg) true (Schnorr.verify grp pk msg s))
    [ ""; "roster"; "cert:0:1:deadbeef"; String.make 1000 'x' ]

let test_schnorr_rejects_wrong_message () =
  let t = prg "schnorr-msg" in
  let sk, pk = Schnorr.keygen t grp in
  let s = Schnorr.sign t grp sk "original" in
  Alcotest.(check bool) "tampered message" false (Schnorr.verify grp pk "tampered" s)

let test_schnorr_rejects_wrong_key () =
  let t = prg "schnorr-key" in
  let sk, _ = Schnorr.keygen t grp in
  let _, pk2 = Schnorr.keygen t grp in
  let s = Schnorr.sign t grp sk "msg" in
  Alcotest.(check bool) "wrong key" false (Schnorr.verify grp pk2 "msg" s)

let test_schnorr_rejects_tampered_signature () =
  let t = prg "schnorr-tamper" in
  let sk, pk = Schnorr.keygen t grp in
  let s = Schnorr.sign t grp sk "msg" in
  let bumped = { s with Schnorr.response = Group.exp_add grp s.Schnorr.response Nat.one } in
  Alcotest.(check bool) "tampered response" false (Schnorr.verify grp pk "msg" bumped)

let test_schnorr_signatures_randomized () =
  (* Fresh commitment per signature: signing twice yields different
     signatures that both verify. *)
  let t = prg "schnorr-rand" in
  let sk, pk = Schnorr.keygen t grp in
  let s1 = Schnorr.sign t grp sk "m" and s2 = Schnorr.sign t grp sk "m" in
  Alcotest.(check bool) "distinct" false (Nat.equal s1.Schnorr.response s2.Schnorr.response);
  Alcotest.(check bool) "both verify" true
    (Schnorr.verify grp pk "m" s1 && Schnorr.verify grp pk "m" s2)

(* ------------------------------------------------------------------ *)
(* Wire format                                                         *)
(* ------------------------------------------------------------------ *)

let test_wire_element_roundtrip () =
  let t = prg "wire-elt" in
  for _ = 1 to 20 do
    let e = Group.pow_g grp (Group.random_exponent t grp) in
    let b = Wire.encode_element grp e in
    Alcotest.(check int) "fixed width" (Group.element_bytes grp) (Bytes.length b);
    Alcotest.(check bool) "roundtrip" true
      (Group.elt_equal e (Wire.decode_element grp (Wire.reader b)))
  done

let test_wire_rejects_non_element () =
  (* p - 1 is not in the order-q subgroup of squares. *)
  let bad = Nat.sub (Group.p grp) Nat.one in
  let b = Wire.encode_element grp bad in
  Alcotest.(check bool) "rejected" true
    (try ignore (Wire.decode_element grp (Wire.reader b)); false
     with Failure _ -> true)

let test_wire_rejects_truncation () =
  let t = prg "wire-trunc" in
  let e = Group.pow_g grp (Group.random_exponent t grp) in
  let b = Wire.encode_element grp e in
  let short = Bytes.sub b 0 (Bytes.length b - 1) in
  Alcotest.(check bool) "truncated rejected" true
    (try ignore (Wire.decode_element grp (Wire.reader short)); false
     with Failure _ -> true)

let test_wire_ciphertext_roundtrip () =
  let t = prg "wire-ct" in
  let _, pk = Exp_elgamal.keygen t grp in
  let c = Exp_elgamal.encrypt t grp pk 77 in
  let r = Wire.reader (Wire.encode_ciphertext grp c) in
  Alcotest.(check bool) "roundtrip" true
    (Elgamal.ciphertext_equal c (Wire.decode_ciphertext grp r))

let test_wire_multi_bundle () =
  let t = prg "wire-multi" in
  let keys = List.init 4 (fun _ -> snd (Exp_elgamal.keygen t grp)) in
  let bundle = Exp_elgamal.encrypt_multi t grp (List.map (fun k -> (k, 3)) keys) in
  let encoded = Wire.encode_multi_bundle grp bundle in
  Alcotest.(check int) "exact predicted size" (Wire.multi_bundle_bytes grp 4)
    (Bytes.length encoded);
  let c1, c2s = Wire.decode_multi_bundle grp (Wire.reader encoded) in
  Alcotest.(check bool) "c1" true (Group.elt_equal (fst bundle) c1);
  Alcotest.(check int) "bodies" 4 (List.length c2s);
  List.iter2
    (fun a b -> Alcotest.(check bool) "body" true (Group.elt_equal a b))
    (snd bundle) c2s

let test_wire_bundle_bad_count_rejected () =
  (* A forged length prefix claiming an implausible body count must be
     rejected before any allocation is attempted. *)
  let forged = Bytes.cat (Bytes.of_string "\x7f\xff\xff\xff") (Bytes.create 16) in
  Alcotest.(check bool) "rejected" true
    (try ignore (Wire.decode_multi_bundle grp (Wire.reader forged)); false
     with Failure _ -> true)

let test_wire_signature_roundtrip () =
  let t = prg "wire-sig" in
  let sk, pk = Schnorr.keygen t grp in
  let s = Schnorr.sign t grp sk "hello" in
  let s' = Wire.decode_signature grp (Wire.reader (Wire.encode_signature grp s)) in
  Alcotest.(check bool) "still verifies" true (Schnorr.verify grp pk "hello" s')

let test_wire_bits_roundtrip () =
  let t = prg "wire-bits" in
  List.iter
    (fun n ->
      let v = Prg.bits t n in
      let v' = Wire.decode_bits (Wire.reader (Wire.encode_bits v)) in
      Alcotest.(check bool) (Printf.sprintf "bits %d" n) true
        (Dstress_util.Bitvec.equal v v'))
    [ 0; 1; 7; 8; 9; 64; 100 ]

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_exp_elgamal_roundtrip =
  QCheck2.Test.make ~name:"exp-elgamal roundtrip" ~count:50
    QCheck2.Gen.(int_range (-1000) 1000)
    (fun v ->
      let t = prg ("prop" ^ string_of_int v) in
      let sk, pk = Exp_elgamal.keygen t grp in
      Exp_elgamal.decrypt grp sk table (Exp_elgamal.encrypt t grp pk v) = Some v)

let prop_exp_elgamal_sum =
  QCheck2.Test.make ~name:"exp-elgamal additive homomorphism" ~count:50
    QCheck2.Gen.(pair (int_range (-400) 400) (int_range (-400) 400))
    (fun (a, b) ->
      let t = prg (Printf.sprintf "prop-sum-%d-%d" a b) in
      let sk, pk = Exp_elgamal.keygen t grp in
      let c =
        Exp_elgamal.add grp
          (Exp_elgamal.encrypt t grp pk a)
          (Exp_elgamal.encrypt t grp pk b)
      in
      Exp_elgamal.decrypt grp sk table c = Some (a + b))

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest [ prop_exp_elgamal_roundtrip; prop_exp_elgamal_sum ]
  in
  Alcotest.run "crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha256_fips_vectors;
          Alcotest.test_case "block boundaries" `Quick test_sha256_block_boundaries;
          Alcotest.test_case "million a" `Slow test_sha256_million_a;
          Alcotest.test_case "hmac rfc4231" `Quick test_hmac_rfc4231;
          Alcotest.test_case "hmac long key" `Quick test_hmac_long_key;
        ] );
      ( "prg",
        [
          Alcotest.test_case "deterministic" `Quick test_prg_deterministic;
          Alcotest.test_case "distinct keys" `Quick test_prg_distinct_keys;
          Alcotest.test_case "nat_below" `Quick test_prg_nat_below;
          Alcotest.test_case "bits length" `Quick test_prg_bits_length;
          Alcotest.test_case "bool balanced" `Quick test_prg_bool_balanced;
        ] );
      ( "group",
        [
          Alcotest.test_case "generator order" `Quick test_group_generator_order;
          Alcotest.test_case "safe prime" `Quick test_group_safe_prime;
          Alcotest.test_case "all sizes" `Quick test_group_all_sizes;
          Alcotest.test_case "unknown name" `Quick test_group_unknown_name;
          Alcotest.test_case "pow_g" `Quick test_group_pow_g_matches_pow;
          Alcotest.test_case "inverse" `Quick test_group_inverse;
          Alcotest.test_case "exponent arithmetic" `Quick test_group_exp_arith;
          Alcotest.test_case "make rejects bad params" `Quick test_group_make_rejects_bad;
        ] );
      ( "elgamal",
        [
          Alcotest.test_case "roundtrip" `Quick test_elgamal_roundtrip;
          Alcotest.test_case "homomorphism" `Quick test_elgamal_homomorphism;
          Alcotest.test_case "wrong key" `Quick test_elgamal_wrong_key;
        ] );
      ( "exp-elgamal",
        [
          Alcotest.test_case "roundtrip" `Quick test_exp_elgamal_roundtrip;
          Alcotest.test_case "additive" `Quick test_exp_elgamal_additive;
          Alcotest.test_case "add_clear" `Quick test_exp_elgamal_add_clear;
          Alcotest.test_case "out of table" `Quick test_exp_elgamal_out_of_table;
          Alcotest.test_case "rerandomized key" `Quick test_exp_elgamal_rerandomized_key;
          Alcotest.test_case "sum then adjust" `Quick
            test_exp_elgamal_homomorphism_after_adjust;
          Alcotest.test_case "multi recipient" `Quick test_exp_elgamal_multi_recipient;
          Alcotest.test_case "multi bandwidth" `Quick test_exp_elgamal_multi_bandwidth;
          Alcotest.test_case "table size" `Quick test_table_size;
          Alcotest.test_case "table lookup" `Quick test_table_lookup_hit_and_miss;
        ] );
      ( "batch-vs-scalar",
        [
          Alcotest.test_case "rerandomize_many" `Quick test_rerandomize_many_matches_scalar;
          Alcotest.test_case "decrypt_many" `Quick test_decrypt_many_matches_scalar;
          Alcotest.test_case "decrypt_shared" `Quick test_decrypt_shared_matches_scalar;
          Alcotest.test_case "encrypt_multi_batch" `Quick
            test_encrypt_multi_batch_matches_sequential;
          Alcotest.test_case "adjust_many" `Quick test_adjust_many_matches_adjust;
        ] );
      ( "base-ot",
        [
          Alcotest.test_case "all bit cases" `Quick test_base_ot_all_cases;
          Alcotest.test_case "byte messages" `Quick test_base_ot_bytes;
          Alcotest.test_case "length mismatch" `Quick test_base_ot_length_mismatch;
          Alcotest.test_case "random point" `Quick test_random_point_is_element;
        ] );
      ( "schnorr",
        [
          Alcotest.test_case "sign/verify" `Quick test_schnorr_sign_verify;
          Alcotest.test_case "wrong message" `Quick test_schnorr_rejects_wrong_message;
          Alcotest.test_case "wrong key" `Quick test_schnorr_rejects_wrong_key;
          Alcotest.test_case "tampered signature" `Quick test_schnorr_rejects_tampered_signature;
          Alcotest.test_case "randomized" `Quick test_schnorr_signatures_randomized;
          Alcotest.test_case "named groups" `Quick test_schnorr_named_groups;
        ] );
      ( "wire",
        [
          Alcotest.test_case "element roundtrip" `Quick test_wire_element_roundtrip;
          Alcotest.test_case "rejects non-element" `Quick test_wire_rejects_non_element;
          Alcotest.test_case "rejects truncation" `Quick test_wire_rejects_truncation;
          Alcotest.test_case "ciphertext roundtrip" `Quick test_wire_ciphertext_roundtrip;
          Alcotest.test_case "multi bundle" `Quick test_wire_multi_bundle;
          Alcotest.test_case "forged bundle count" `Quick test_wire_bundle_bad_count_rejected;
          Alcotest.test_case "signature roundtrip" `Quick test_wire_signature_roundtrip;
          Alcotest.test_case "bits roundtrip" `Quick test_wire_bits_roundtrip;
        ] );
      ( "ot-extension",
        [
          Alcotest.test_case "byte messages" `Quick test_ot_ext_bytes;
          Alcotest.test_case "bit messages" `Quick test_ot_ext_bits;
          Alcotest.test_case "multiple batches" `Quick test_ot_ext_multiple_batches;
          Alcotest.test_case "simulation mode" `Quick test_ot_ext_simulation_mode;
          Alcotest.test_case "amortized traffic" `Quick test_ot_ext_amortized_traffic;
          Alcotest.test_case "word lanes match bits" `Quick test_ot_ext_words_matches_bits;
          Alcotest.test_case "word metering" `Quick test_ot_ext_words_metering;
          Alcotest.test_case "word width validation" `Quick test_ot_ext_words_rejects_bad_width;
        ] );
      ("properties", qsuite);
    ]
