open Dstress_bignum

let prng () = Dstress_util.Prng.of_int 0xB16
let nat = Alcotest.testable Nat.pp Nat.equal
let zint = Alcotest.testable Zint.pp Zint.equal

(* ------------------------------------------------------------------ *)
(* Nat basics                                                          *)
(* ------------------------------------------------------------------ *)

let test_nat_of_to_int () =
  List.iter
    (fun v -> Alcotest.(check int) "roundtrip" v (Nat.to_int (Nat.of_int v)))
    [ 0; 1; 2; 1000; 1 lsl 25; (1 lsl 26) - 1; 1 lsl 26; 123456789012345; max_int ]

let test_nat_of_int_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Nat.of_int: negative")
    (fun () -> ignore (Nat.of_int (-1)))

let test_nat_hash () =
  (* Hashtbl contract: equal values (however constructed) hash equally,
     and the hash is nonnegative. *)
  let t = prng () in
  for _ = 1 to 200 do
    let a = Dstress_util.Prng.int t 1_000_000_000 in
    let b = Dstress_util.Prng.int t 1_000_000 in
    let x = Nat.of_int (a + b) in
    let y = Nat.add (Nat.of_int a) (Nat.of_int b) in
    Alcotest.(check bool) "values equal" true (Nat.equal x y);
    Alcotest.(check int) "hashes equal" (Nat.hash x) (Nat.hash y);
    Alcotest.(check bool) "nonnegative" true (Nat.hash x >= 0)
  done;
  Alcotest.(check bool) "0 and 1 distinct" true
    (Nat.hash Nat.zero <> Nat.hash Nat.one)

let test_nat_compare () =
  let a = Nat.of_int 100 and b = Nat.of_int 200 in
  Alcotest.(check bool) "lt" true (Nat.compare a b < 0);
  Alcotest.(check bool) "gt" true (Nat.compare b a > 0);
  Alcotest.(check bool) "eq" true (Nat.compare a a = 0)

let test_nat_add_sub () =
  let t = prng () in
  for _ = 1 to 200 do
    let a = Nat.random_bits t 200 and b = Nat.random_bits t 180 in
    let s = Nat.add a b in
    Alcotest.check nat "sub undoes add (a)" a (Nat.sub s b);
    Alcotest.check nat "sub undoes add (b)" b (Nat.sub s a)
  done

let test_nat_sub_negative () =
  Alcotest.check_raises "negative result"
    (Invalid_argument "Nat.sub: negative result") (fun () ->
      ignore (Nat.sub (Nat.of_int 1) (Nat.of_int 2)))

let test_nat_mul_known () =
  let a = Nat.of_decimal "123456789123456789123456789" in
  let b = Nat.of_decimal "987654321987654321" in
  Alcotest.(check string) "product"
    "121932631356500531469135800347203169112635269"
    (Nat.to_decimal (Nat.mul a b))

let test_nat_divmod_known () =
  let a = Nat.of_decimal "121932631356500531469135800347203169112635269" in
  let b = Nat.of_decimal "987654321987654321" in
  let q, r = Nat.divmod a b in
  Alcotest.(check string) "quotient" "123456789123456789123456789" (Nat.to_decimal q);
  Alcotest.check nat "remainder" Nat.zero r

let test_nat_divmod_small_cases () =
  let q, r = Nat.divmod (Nat.of_int 17) (Nat.of_int 5) in
  Alcotest.(check int) "q" 3 (Nat.to_int q);
  Alcotest.(check int) "r" 2 (Nat.to_int r);
  let q, r = Nat.divmod (Nat.of_int 3) (Nat.of_int 7) in
  Alcotest.(check int) "q small" 0 (Nat.to_int q);
  Alcotest.(check int) "r small" 3 (Nat.to_int r)

let test_nat_div_by_zero () =
  Alcotest.check_raises "div0" Division_by_zero (fun () ->
      ignore (Nat.divmod Nat.one Nat.zero))

let test_nat_shifts () =
  let v = Nat.of_decimal "123456789123456789" in
  Alcotest.check nat "shift roundtrip" v (Nat.shift_right (Nat.shift_left v 100) 100);
  Alcotest.check nat "shl = mul 2^k" (Nat.mul v (Nat.pow Nat.two 37))
    (Nat.shift_left v 37);
  Alcotest.check nat "shr drops" (Nat.of_int 1) (Nat.shift_right (Nat.of_int 3) 1)

let test_nat_num_bits () =
  Alcotest.(check int) "zero" 0 (Nat.num_bits Nat.zero);
  Alcotest.(check int) "one" 1 (Nat.num_bits Nat.one);
  Alcotest.(check int) "255" 8 (Nat.num_bits (Nat.of_int 255));
  Alcotest.(check int) "256" 9 (Nat.num_bits (Nat.of_int 256));
  Alcotest.(check int) "2^100" 101 (Nat.num_bits (Nat.pow Nat.two 100))

let test_nat_pow () =
  Alcotest.(check string) "2^128" "340282366920938463463374607431768211456"
    (Nat.to_decimal (Nat.pow Nat.two 128));
  Alcotest.check nat "x^0" Nat.one (Nat.pow (Nat.of_int 7) 0)

let test_nat_gcd () =
  Alcotest.(check int) "gcd" 6 (Nat.to_int (Nat.gcd (Nat.of_int 48) (Nat.of_int 18)));
  Alcotest.(check int) "coprime" 1 (Nat.to_int (Nat.gcd (Nat.of_int 17) (Nat.of_int 4)));
  Alcotest.check nat "gcd with zero" (Nat.of_int 5) (Nat.gcd (Nat.of_int 5) Nat.zero)

(* ------------------------------------------------------------------ *)
(* Modular arithmetic                                                  *)
(* ------------------------------------------------------------------ *)

let test_mod_pow_known () =
  (* 2^10 mod 1000 = 24, 3^100 mod 101 = 1 (Fermat) *)
  Alcotest.(check int) "2^10 mod 1000" 24
    (Nat.to_int (Nat.mod_pow ~base:Nat.two ~exp:(Nat.of_int 10) ~m:(Nat.of_int 1000)));
  Alcotest.(check int) "fermat" 1
    (Nat.to_int
       (Nat.mod_pow ~base:(Nat.of_int 3) ~exp:(Nat.of_int 100) ~m:(Nat.of_int 101)))

let test_mod_pow_vs_naive () =
  let t = prng () in
  for _ = 1 to 50 do
    let m = Nat.add (Nat.random_below t (Nat.of_int 10000)) Nat.two in
    let b = Nat.random_below t m in
    let e = Dstress_util.Prng.int t 50 in
    let expected = Nat.rem (Nat.pow b e) m in
    Alcotest.check nat "matches naive" expected
      (Nat.mod_pow ~base:b ~exp:(Nat.of_int e) ~m)
  done

let test_mod_pow_even_modulus () =
  Alcotest.(check int) "even modulus" (17 * 17 mod 100)
    (Nat.to_int
       (Nat.mod_pow ~base:(Nat.of_int 17) ~exp:Nat.two ~m:(Nat.of_int 100)))

let test_mod_inv () =
  let t = prng () in
  let m = Nat.of_decimal "1000000007" in
  for _ = 1 to 100 do
    let a = Nat.add Nat.one (Nat.random_below t (Nat.sub m Nat.one)) in
    let inv = Nat.mod_inv a ~m in
    Alcotest.check nat "a * a^-1 = 1" Nat.one (Nat.mod_mul a inv ~m)
  done

let test_mod_inv_no_inverse () =
  Alcotest.check_raises "gcd > 1" Not_found (fun () ->
      ignore (Nat.mod_inv (Nat.of_int 6) ~m:(Nat.of_int 9)))

let test_mod_add_sub () =
  let m = Nat.of_int 13 in
  Alcotest.(check int) "mod_add wraps" 2
    (Nat.to_int (Nat.mod_add (Nat.of_int 7) (Nat.of_int 8) ~m));
  Alcotest.(check int) "mod_sub wraps" 12
    (Nat.to_int (Nat.mod_sub (Nat.of_int 7) (Nat.of_int 8) ~m))

(* ------------------------------------------------------------------ *)
(* Montgomery                                                          *)
(* ------------------------------------------------------------------ *)

let test_mont_roundtrip () =
  let t = prng () in
  let m = Nat.generate_prime t ~bits:128 in
  let ctx = Nat.Mont.create m in
  for _ = 1 to 50 do
    let x = Nat.random_below t m in
    Alcotest.check nat "to/from mont" x (Nat.Mont.from_mont ctx (Nat.Mont.to_mont ctx x))
  done

let test_mont_mul_matches_plain () =
  let t = prng () in
  let m = Nat.generate_prime t ~bits:160 in
  let ctx = Nat.Mont.create m in
  for _ = 1 to 50 do
    let a = Nat.random_below t m and b = Nat.random_below t m in
    let am = Nat.Mont.to_mont ctx a and bm = Nat.Mont.to_mont ctx b in
    let got = Nat.Mont.from_mont ctx (Nat.Mont.mul ctx am bm) in
    Alcotest.check nat "matches mod_mul" (Nat.mod_mul a b ~m) got
  done

let test_mont_pow_matches () =
  let t = prng () in
  let m = Nat.generate_prime t ~bits:96 in
  let ctx = Nat.Mont.create m in
  for _ = 1 to 20 do
    let b = Nat.random_below t m in
    let e = Nat.random_bits t 64 in
    let bm = Nat.Mont.to_mont ctx b in
    let got = Nat.Mont.from_mont ctx (Nat.Mont.pow ctx bm e) in
    Alcotest.check nat "matches mod_pow" (Nat.mod_pow ~base:b ~exp:e ~m) got
  done

let test_mont_rejects_even () =
  Alcotest.check_raises "even modulus"
    (Invalid_argument "Nat.Mont.create: modulus must be odd and >= 3") (fun () ->
      ignore (Nat.Mont.create (Nat.of_int 100)))

(* ------------------------------------------------------------------ *)
(* Differential: word-array kernel vs schoolbook references            *)
(* ------------------------------------------------------------------ *)

(* Schoolbook references built only on the generic divmod path — a
   completely independent computation from the Montgomery word-array
   kernel they check. *)
let school_mod_mul a b ~m = Nat.rem (Nat.mul a b) m

let school_mod_pow ~base ~exp ~m =
  let base = Nat.rem base m in
  let r = ref (Nat.rem Nat.one m) in
  for i = Nat.num_bits exp - 1 downto 0 do
    r := Nat.rem (Nat.mul !r !r) m;
    if Nat.bit exp i then r := Nat.rem (Nat.mul !r base) m
  done;
  !r

(* Random odd modulus of exactly [bits] bits (>= 2). *)
let odd_modulus t bits =
  let m = Nat.add (Nat.shift_left Nat.one (bits - 1)) (Nat.random_bits t (bits - 1)) in
  if Nat.is_even m then Nat.add m Nat.one else m

(* The kernel packs values into 30-bit limbs, so widths straddling limb
   boundaries (1, 2 and many limbs, exact multiples and off-by-one) are
   where carry/reduction bugs hide. *)
let boundary_widths = [ 5; 29; 30; 31; 59; 60; 61; 89; 91; 120; 256; 521 ]

let test_kernel_mul_vs_schoolbook () =
  let t = prng () in
  List.iter
    (fun bits ->
      let m = odd_modulus t bits in
      let ctx = Nat.Mont.create m in
      for _ = 1 to 25 do
        let a = Nat.random_below t m and b = Nat.random_below t m in
        let got =
          Nat.Mont.from_mont ctx
            (Nat.Mont.mul ctx (Nat.Mont.to_mont ctx a) (Nat.Mont.to_mont ctx b))
        in
        Alcotest.check nat
          (Printf.sprintf "mul %d bits" bits)
          (school_mod_mul a b ~m) got;
        Alcotest.check nat
          (Printf.sprintf "mod_mul %d bits" bits)
          (school_mod_mul a b ~m)
          (Nat.mod_mul a b ~m)
      done)
    boundary_widths

let test_kernel_pow_vs_schoolbook () =
  let t = prng () in
  List.iter
    (fun bits ->
      let m = odd_modulus t bits in
      for _ = 1 to 5 do
        let b = Nat.random_below t m in
        let e = Nat.random_bits t (min bits 128) in
        Alcotest.check nat
          (Printf.sprintf "mod_pow %d bits" bits)
          (school_mod_pow ~base:b ~exp:e ~m)
          (Nat.mod_pow ~base:b ~exp:e ~m)
      done;
      (* exponent edge cases *)
      let b = Nat.random_below t m in
      Alcotest.check nat "exp 0" (Nat.rem Nat.one m)
        (Nat.mod_pow ~base:b ~exp:Nat.zero ~m);
      Alcotest.check nat "exp 1" (Nat.rem b m) (Nat.mod_pow ~base:b ~exp:Nat.one ~m))
    boundary_widths

let test_precomp_vs_pow () =
  let t = prng () in
  List.iter
    (fun bits ->
      let m = odd_modulus t bits in
      let ctx = Nat.Mont.create m in
      let base = Nat.random_below t m in
      let bm = Nat.Mont.to_mont ctx base in
      let ebits = 160 in
      let pre = Nat.Mont.precompute ctx bm ~ebits in
      Alcotest.(check bool) "covers ebits" true (Nat.Mont.precomp_bits pre >= ebits);
      let exps =
        Nat.zero :: Nat.one
        :: Nat.sub (Nat.shift_left Nat.one ebits) Nat.one
        :: List.init 10 (fun _ -> Nat.random_bits t ebits)
      in
      List.iter
        (fun e ->
          let got = Nat.Mont.from_mont ctx (Nat.Mont.pow_precomp ctx pre e) in
          Alcotest.check nat
            (Printf.sprintf "pow_precomp %d bits" bits)
            (school_mod_pow ~base ~exp:e ~m)
            got)
        exps;
      (* wider than the table: must fall back, not truncate *)
      let wide = Nat.random_bits t (ebits + 40) in
      Alcotest.check nat "fallback beyond table"
        (school_mod_pow ~base ~exp:wide ~m)
        (Nat.Mont.from_mont ctx (Nat.Mont.pow_precomp ctx pre wide)))
    [ 61; 256 ]

let test_pow_base_many_vs_pow () =
  let t = prng () in
  let m = odd_modulus t 256 in
  let ctx = Nat.Mont.create m in
  let base = Nat.random_below t m in
  let bm = Nat.Mont.to_mont ctx base in
  (* batch sizes on both sides of the shared-chain / window-table cutoff *)
  List.iter
    (fun n ->
      let exps = Array.init n (fun _ -> Nat.random_bits t 200) in
      let got =
        Array.map (Nat.Mont.from_mont ctx) (Nat.Mont.pow_base_many ctx bm exps)
      in
      Array.iteri
        (fun i e ->
          Alcotest.check nat
            (Printf.sprintf "pow_base_many n=%d i=%d" n i)
            (school_mod_pow ~base ~exp:e ~m)
            got.(i))
        exps)
    [ 1; 2; 7; 8; 9; 32 ]

let test_pow_many_vs_pow () =
  let t = prng () in
  let m = odd_modulus t 256 in
  let ctx = Nat.Mont.create m in
  let pairs =
    Array.init 9 (fun _ -> (Nat.random_below t m, Nat.random_bits t 200))
  in
  let pairs_mont =
    Array.map (fun (b, e) -> (Nat.Mont.to_mont ctx b, e)) pairs
  in
  let got = Array.map (Nat.Mont.from_mont ctx) (Nat.Mont.pow_many ctx pairs_mont) in
  Array.iteri
    (fun i (b, e) ->
      Alcotest.check nat
        (Printf.sprintf "pow_many i=%d" i)
        (school_mod_pow ~base:b ~exp:e ~m)
        got.(i))
    pairs

let test_multi_pow_vs_folded () =
  let t = prng () in
  let m = odd_modulus t 256 in
  let ctx = Nat.Mont.create m in
  (* n <= 4 exercises the Shamir combination table, larger n the
     Pippenger bucket path. *)
  List.iter
    (fun n ->
      let pairs =
        Array.init n (fun _ -> (Nat.random_below t m, Nat.random_bits t 200))
      in
      let expected =
        Array.fold_left
          (fun acc (b, e) -> school_mod_mul acc (school_mod_pow ~base:b ~exp:e ~m) ~m)
          (Nat.rem Nat.one m) pairs
      in
      let pairs_mont =
        Array.map (fun (b, e) -> (Nat.Mont.to_mont ctx b, e)) pairs
      in
      let got = Nat.Mont.from_mont ctx (Nat.Mont.multi_pow ctx pairs_mont) in
      Alcotest.check nat (Printf.sprintf "multi_pow n=%d" n) expected got)
    [ 1; 2; 3; 4; 5; 8; 17 ]

let test_multi_pow_zero_exponents () =
  let t = prng () in
  let m = odd_modulus t 128 in
  let ctx = Nat.Mont.create m in
  let pairs =
    [| (Nat.Mont.to_mont ctx (Nat.random_below t m), Nat.zero);
       (Nat.Mont.to_mont ctx (Nat.random_below t m), Nat.zero) |]
  in
  Alcotest.check nat "all-zero exponents" (Nat.rem Nat.one m)
    (Nat.Mont.from_mont ctx (Nat.Mont.multi_pow ctx pairs))

(* ------------------------------------------------------------------ *)
(* to_bytes_be_padded                                                  *)
(* ------------------------------------------------------------------ *)

let test_to_bytes_be_padded () =
  let t = prng () in
  for _ = 1 to 50 do
    let v = Nat.random_bits t 150 in
    let len = ((Nat.num_bits v + 7) / 8) + Dstress_util.Prng.int t 5 in
    let b = Nat.to_bytes_be_padded v ~len in
    Alcotest.(check int) "exact length" len (Bytes.length b);
    Alcotest.check nat "value preserved" v (Nat.of_bytes_be b)
  done;
  Alcotest.(check string) "zero pads to zero bytes" "\x00\x00\x00"
    (Bytes.to_string (Nat.to_bytes_be_padded Nat.zero ~len:3));
  Alcotest.(check string) "255 left-padded" "\x00\xff"
    (Bytes.to_string (Nat.to_bytes_be_padded (Nat.of_int 255) ~len:2))

let test_to_bytes_be_padded_too_narrow () =
  Alcotest.check_raises "too narrow"
    (Invalid_argument "Nat.to_bytes_be_padded: value too wide") (fun () ->
      ignore (Nat.to_bytes_be_padded (Nat.of_int 256) ~len:1))

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)
(* ------------------------------------------------------------------ *)

let test_decimal_roundtrip () =
  let t = prng () in
  for _ = 1 to 50 do
    let v = Nat.random_bits t 300 in
    Alcotest.check nat "decimal roundtrip" v (Nat.of_decimal (Nat.to_decimal v))
  done

let test_hex_roundtrip () =
  let t = prng () in
  for _ = 1 to 50 do
    let v = Nat.random_bits t 300 in
    Alcotest.check nat "hex roundtrip" v (Nat.of_hex (Nat.to_hex v))
  done

let test_hex_known () =
  Alcotest.(check string) "to_hex" "ff" (Nat.to_hex (Nat.of_int 255));
  Alcotest.check nat "of_hex odd length" (Nat.of_int 0xabc) (Nat.of_hex "abc")

let test_bytes_roundtrip () =
  let t = prng () in
  for _ = 1 to 50 do
    let v = Nat.random_bits t 200 in
    Alcotest.check nat "bytes roundtrip" v (Nat.of_bytes_be (Nat.to_bytes_be v))
  done

(* ------------------------------------------------------------------ *)
(* Randomness / primality                                              *)
(* ------------------------------------------------------------------ *)

let test_random_below_in_range () =
  let t = prng () in
  let bound = Nat.of_decimal "123456789123456789" in
  for _ = 1 to 200 do
    let v = Nat.random_below t bound in
    Alcotest.(check bool) "below bound" true (Nat.compare v bound < 0)
  done

let test_primality_known () =
  let t = prng () in
  let primes = [ 2; 3; 5; 7; 97; 7919; 104729 ] in
  let composites = [ 0; 1; 4; 9; 561 (* Carmichael *); 7917; 104730 ] in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "%d prime" p)
        true
        (Nat.is_probable_prime t (Nat.of_int p)))
    primes;
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "%d composite" c)
        false
        (Nat.is_probable_prime t (Nat.of_int c)))
    composites

let test_primality_large_known () =
  let t = prng () in
  (* 2^127 - 1 is a Mersenne prime; 2^128 + 1 is composite. *)
  let m127 = Nat.sub (Nat.pow Nat.two 127) Nat.one in
  Alcotest.(check bool) "2^127-1 prime" true (Nat.is_probable_prime t m127);
  let f7ish = Nat.add (Nat.pow Nat.two 128) Nat.one in
  Alcotest.(check bool) "2^128+1 composite" false (Nat.is_probable_prime t f7ish)

let test_generate_prime () =
  let t = prng () in
  let p = Nat.generate_prime t ~bits:64 in
  Alcotest.(check int) "exact width" 64 (Nat.num_bits p);
  Alcotest.(check bool) "is prime" true (Nat.is_probable_prime t p)

(* ------------------------------------------------------------------ *)
(* Zint                                                                *)
(* ------------------------------------------------------------------ *)

let test_zint_roundtrip () =
  List.iter
    (fun v -> Alcotest.(check int) "roundtrip" v (Zint.to_int (Zint.of_int v)))
    [ 0; 1; -1; 1000; -123456; max_int; min_int + 1 ]

let test_zint_arith () =
  let z = Zint.of_int in
  Alcotest.check zint "add" (z 1) (Zint.add (z 5) (z (-4)));
  Alcotest.check zint "sub" (z (-9)) (Zint.sub (z (-5)) (z 4));
  Alcotest.check zint "mul" (z (-20)) (Zint.mul (z 5) (z (-4)));
  Alcotest.check zint "neg zero" Zint.zero (Zint.neg Zint.zero)

let test_zint_divmod_euclidean () =
  let check a b =
    let q, r = Zint.divmod (Zint.of_int a) (Zint.of_int b) in
    Alcotest.(check bool) "r >= 0" true (Zint.sign r >= 0);
    Alcotest.(check bool) "r < |b|" true (Zint.compare r (Zint.of_int (abs b)) < 0);
    Alcotest.(check int) "a = q*b + r" a
      (Zint.to_int (Zint.add (Zint.mul q (Zint.of_int b)) r))
  in
  List.iter (fun (a, b) -> check a b)
    [ (7, 3); (-7, 3); (7, -3); (-7, -3); (6, 3); (-6, 3); (0, 5) ]

let test_zint_compare () =
  Alcotest.(check bool) "neg < pos" true (Zint.compare (Zint.of_int (-5)) (Zint.of_int 3) < 0);
  Alcotest.(check bool) "-5 < -3" true (Zint.compare (Zint.of_int (-5)) (Zint.of_int (-3)) < 0);
  Alcotest.(check int) "sign" (-1) (Zint.sign (Zint.of_int (-7)))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_nat =
  QCheck2.Gen.(
    map
      (fun (seed, bits) ->
        Nat.random_bits (Dstress_util.Prng.of_int seed) (1 + bits))
      (pair int (int_bound 250)))

let prop_add_comm =
  QCheck2.Test.make ~name:"nat add commutative" ~count:200
    QCheck2.Gen.(pair gen_nat gen_nat)
    (fun (a, b) -> Nat.equal (Nat.add a b) (Nat.add b a))

let prop_mul_comm =
  QCheck2.Test.make ~name:"nat mul commutative" ~count:200
    QCheck2.Gen.(pair gen_nat gen_nat)
    (fun (a, b) -> Nat.equal (Nat.mul a b) (Nat.mul b a))

let prop_mul_assoc =
  QCheck2.Test.make ~name:"nat mul associative" ~count:100
    QCheck2.Gen.(triple gen_nat gen_nat gen_nat)
    (fun (a, b, c) -> Nat.equal (Nat.mul (Nat.mul a b) c) (Nat.mul a (Nat.mul b c)))

let prop_distributive =
  QCheck2.Test.make ~name:"nat mul distributes over add" ~count:100
    QCheck2.Gen.(triple gen_nat gen_nat gen_nat)
    (fun (a, b, c) ->
      Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)))

let prop_divmod_identity =
  QCheck2.Test.make ~name:"nat divmod identity" ~count:300
    QCheck2.Gen.(pair gen_nat gen_nat)
    (fun (a, b) ->
      QCheck2.assume (not (Nat.is_zero b));
      let q, r = Nat.divmod a b in
      Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0)

let prop_decimal_roundtrip =
  QCheck2.Test.make ~name:"nat decimal roundtrip" ~count:200 gen_nat (fun v ->
      Nat.equal v (Nat.of_decimal (Nat.to_decimal v)))

let prop_kernel_mul =
  QCheck2.Test.make ~name:"kernel mod_mul matches schoolbook" ~count:200
    QCheck2.Gen.(pair int (int_range 2 260))
    (fun (seed, bits) ->
      let t = Dstress_util.Prng.of_int seed in
      let m = odd_modulus t bits in
      let a = Nat.random_below t m and b = Nat.random_below t m in
      Nat.equal (Nat.mod_mul a b ~m) (school_mod_mul a b ~m))

let prop_kernel_pow =
  QCheck2.Test.make ~name:"kernel mod_pow matches schoolbook" ~count:60
    QCheck2.Gen.(pair int (int_range 2 200))
    (fun (seed, bits) ->
      let t = Dstress_util.Prng.of_int seed in
      let m = odd_modulus t bits in
      let b = Nat.random_below t m in
      let e = Nat.random_bits t 96 in
      Nat.equal
        (Nat.mod_pow ~base:b ~exp:e ~m)
        (school_mod_pow ~base:b ~exp:e ~m))

let prop_multi_pow_folded =
  QCheck2.Test.make ~name:"multi_pow matches folded pow" ~count:40
    QCheck2.Gen.(triple int (int_range 2 160) (int_range 1 9))
    (fun (seed, bits, n) ->
      let t = Dstress_util.Prng.of_int seed in
      let m = odd_modulus t bits in
      let ctx = Nat.Mont.create m in
      let pairs =
        Array.init n (fun _ -> (Nat.random_below t m, Nat.random_bits t 80))
      in
      let expected =
        Array.fold_left
          (fun acc (b, e) ->
            school_mod_mul acc (school_mod_pow ~base:b ~exp:e ~m) ~m)
          (Nat.rem Nat.one m) pairs
      in
      let pairs_mont =
        Array.map (fun (b, e) -> (Nat.Mont.to_mont ctx b, e)) pairs
      in
      Nat.equal expected
        (Nat.Mont.from_mont ctx (Nat.Mont.multi_pow ctx pairs_mont)))

let prop_zint_divmod =
  QCheck2.Test.make ~name:"zint euclidean divmod" ~count:300
    QCheck2.Gen.(pair (int_range (-100000) 100000) (int_range (-1000) 1000))
    (fun (a, b) ->
      QCheck2.assume (b <> 0);
      let q, r = Zint.divmod (Zint.of_int a) (Zint.of_int b) in
      Zint.sign r >= 0
      && Zint.compare r (Zint.of_int (abs b)) < 0
      && Zint.to_int (Zint.add (Zint.mul q (Zint.of_int b)) r) = a)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_add_comm;
        prop_mul_comm;
        prop_mul_assoc;
        prop_distributive;
        prop_divmod_identity;
        prop_decimal_roundtrip;
        prop_kernel_mul;
        prop_kernel_pow;
        prop_multi_pow_folded;
        prop_zint_divmod;
      ]
  in
  Alcotest.run "bignum"
    [
      ( "nat-basic",
        [
          Alcotest.test_case "of/to int" `Quick test_nat_of_to_int;
          Alcotest.test_case "of_int negative" `Quick test_nat_of_int_negative;
          Alcotest.test_case "compare" `Quick test_nat_compare;
          Alcotest.test_case "hash" `Quick test_nat_hash;
          Alcotest.test_case "add/sub" `Quick test_nat_add_sub;
          Alcotest.test_case "sub negative" `Quick test_nat_sub_negative;
          Alcotest.test_case "mul known" `Quick test_nat_mul_known;
          Alcotest.test_case "divmod known" `Quick test_nat_divmod_known;
          Alcotest.test_case "divmod small" `Quick test_nat_divmod_small_cases;
          Alcotest.test_case "div by zero" `Quick test_nat_div_by_zero;
          Alcotest.test_case "shifts" `Quick test_nat_shifts;
          Alcotest.test_case "num_bits" `Quick test_nat_num_bits;
          Alcotest.test_case "pow" `Quick test_nat_pow;
          Alcotest.test_case "gcd" `Quick test_nat_gcd;
        ] );
      ( "nat-modular",
        [
          Alcotest.test_case "mod_pow known" `Quick test_mod_pow_known;
          Alcotest.test_case "mod_pow vs naive" `Quick test_mod_pow_vs_naive;
          Alcotest.test_case "mod_pow even modulus" `Quick test_mod_pow_even_modulus;
          Alcotest.test_case "mod_inv" `Quick test_mod_inv;
          Alcotest.test_case "mod_inv missing" `Quick test_mod_inv_no_inverse;
          Alcotest.test_case "mod_add/mod_sub" `Quick test_mod_add_sub;
        ] );
      ( "nat-montgomery",
        [
          Alcotest.test_case "roundtrip" `Quick test_mont_roundtrip;
          Alcotest.test_case "mul matches plain" `Quick test_mont_mul_matches_plain;
          Alcotest.test_case "pow matches plain" `Quick test_mont_pow_matches;
          Alcotest.test_case "rejects even modulus" `Quick test_mont_rejects_even;
        ] );
      ( "kernel-differential",
        [
          Alcotest.test_case "mul vs schoolbook" `Quick test_kernel_mul_vs_schoolbook;
          Alcotest.test_case "pow vs schoolbook" `Quick test_kernel_pow_vs_schoolbook;
          Alcotest.test_case "pow_precomp vs pow" `Quick test_precomp_vs_pow;
          Alcotest.test_case "pow_base_many vs pow" `Quick test_pow_base_many_vs_pow;
          Alcotest.test_case "pow_many vs pow" `Quick test_pow_many_vs_pow;
          Alcotest.test_case "multi_pow vs folded" `Quick test_multi_pow_vs_folded;
          Alcotest.test_case "multi_pow zero exps" `Quick test_multi_pow_zero_exponents;
          Alcotest.test_case "to_bytes_be_padded" `Quick test_to_bytes_be_padded;
          Alcotest.test_case "padded too narrow" `Quick test_to_bytes_be_padded_too_narrow;
        ] );
      ( "nat-conversions",
        [
          Alcotest.test_case "decimal roundtrip" `Quick test_decimal_roundtrip;
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "hex known" `Quick test_hex_known;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
        ] );
      ( "nat-primes",
        [
          Alcotest.test_case "random_below range" `Quick test_random_below_in_range;
          Alcotest.test_case "known primes/composites" `Quick test_primality_known;
          Alcotest.test_case "large known" `Quick test_primality_large_known;
          Alcotest.test_case "generate prime" `Quick test_generate_prime;
        ] );
      ( "zint",
        [
          Alcotest.test_case "roundtrip" `Quick test_zint_roundtrip;
          Alcotest.test_case "arithmetic" `Quick test_zint_arith;
          Alcotest.test_case "euclidean divmod" `Quick test_zint_divmod_euclidean;
          Alcotest.test_case "compare/sign" `Quick test_zint_compare;
        ] );
      ("properties", qsuite);
    ]
