open Dstress_bignum

let prng () = Dstress_util.Prng.of_int 0xB16
let nat = Alcotest.testable Nat.pp Nat.equal
let zint = Alcotest.testable Zint.pp Zint.equal

(* ------------------------------------------------------------------ *)
(* Nat basics                                                          *)
(* ------------------------------------------------------------------ *)

let test_nat_of_to_int () =
  List.iter
    (fun v -> Alcotest.(check int) "roundtrip" v (Nat.to_int (Nat.of_int v)))
    [ 0; 1; 2; 1000; 1 lsl 25; (1 lsl 26) - 1; 1 lsl 26; 123456789012345; max_int ]

let test_nat_of_int_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Nat.of_int: negative")
    (fun () -> ignore (Nat.of_int (-1)))

let test_nat_hash () =
  (* Hashtbl contract: equal values (however constructed) hash equally,
     and the hash is nonnegative. *)
  let t = prng () in
  for _ = 1 to 200 do
    let a = Dstress_util.Prng.int t 1_000_000_000 in
    let b = Dstress_util.Prng.int t 1_000_000 in
    let x = Nat.of_int (a + b) in
    let y = Nat.add (Nat.of_int a) (Nat.of_int b) in
    Alcotest.(check bool) "values equal" true (Nat.equal x y);
    Alcotest.(check int) "hashes equal" (Nat.hash x) (Nat.hash y);
    Alcotest.(check bool) "nonnegative" true (Nat.hash x >= 0)
  done;
  Alcotest.(check bool) "0 and 1 distinct" true
    (Nat.hash Nat.zero <> Nat.hash Nat.one)

let test_nat_compare () =
  let a = Nat.of_int 100 and b = Nat.of_int 200 in
  Alcotest.(check bool) "lt" true (Nat.compare a b < 0);
  Alcotest.(check bool) "gt" true (Nat.compare b a > 0);
  Alcotest.(check bool) "eq" true (Nat.compare a a = 0)

let test_nat_add_sub () =
  let t = prng () in
  for _ = 1 to 200 do
    let a = Nat.random_bits t 200 and b = Nat.random_bits t 180 in
    let s = Nat.add a b in
    Alcotest.check nat "sub undoes add (a)" a (Nat.sub s b);
    Alcotest.check nat "sub undoes add (b)" b (Nat.sub s a)
  done

let test_nat_sub_negative () =
  Alcotest.check_raises "negative result"
    (Invalid_argument "Nat.sub: negative result") (fun () ->
      ignore (Nat.sub (Nat.of_int 1) (Nat.of_int 2)))

let test_nat_mul_known () =
  let a = Nat.of_decimal "123456789123456789123456789" in
  let b = Nat.of_decimal "987654321987654321" in
  Alcotest.(check string) "product"
    "121932631356500531469135800347203169112635269"
    (Nat.to_decimal (Nat.mul a b))

let test_nat_divmod_known () =
  let a = Nat.of_decimal "121932631356500531469135800347203169112635269" in
  let b = Nat.of_decimal "987654321987654321" in
  let q, r = Nat.divmod a b in
  Alcotest.(check string) "quotient" "123456789123456789123456789" (Nat.to_decimal q);
  Alcotest.check nat "remainder" Nat.zero r

let test_nat_divmod_small_cases () =
  let q, r = Nat.divmod (Nat.of_int 17) (Nat.of_int 5) in
  Alcotest.(check int) "q" 3 (Nat.to_int q);
  Alcotest.(check int) "r" 2 (Nat.to_int r);
  let q, r = Nat.divmod (Nat.of_int 3) (Nat.of_int 7) in
  Alcotest.(check int) "q small" 0 (Nat.to_int q);
  Alcotest.(check int) "r small" 3 (Nat.to_int r)

let test_nat_div_by_zero () =
  Alcotest.check_raises "div0" Division_by_zero (fun () ->
      ignore (Nat.divmod Nat.one Nat.zero))

let test_nat_shifts () =
  let v = Nat.of_decimal "123456789123456789" in
  Alcotest.check nat "shift roundtrip" v (Nat.shift_right (Nat.shift_left v 100) 100);
  Alcotest.check nat "shl = mul 2^k" (Nat.mul v (Nat.pow Nat.two 37))
    (Nat.shift_left v 37);
  Alcotest.check nat "shr drops" (Nat.of_int 1) (Nat.shift_right (Nat.of_int 3) 1)

let test_nat_num_bits () =
  Alcotest.(check int) "zero" 0 (Nat.num_bits Nat.zero);
  Alcotest.(check int) "one" 1 (Nat.num_bits Nat.one);
  Alcotest.(check int) "255" 8 (Nat.num_bits (Nat.of_int 255));
  Alcotest.(check int) "256" 9 (Nat.num_bits (Nat.of_int 256));
  Alcotest.(check int) "2^100" 101 (Nat.num_bits (Nat.pow Nat.two 100))

let test_nat_pow () =
  Alcotest.(check string) "2^128" "340282366920938463463374607431768211456"
    (Nat.to_decimal (Nat.pow Nat.two 128));
  Alcotest.check nat "x^0" Nat.one (Nat.pow (Nat.of_int 7) 0)

let test_nat_gcd () =
  Alcotest.(check int) "gcd" 6 (Nat.to_int (Nat.gcd (Nat.of_int 48) (Nat.of_int 18)));
  Alcotest.(check int) "coprime" 1 (Nat.to_int (Nat.gcd (Nat.of_int 17) (Nat.of_int 4)));
  Alcotest.check nat "gcd with zero" (Nat.of_int 5) (Nat.gcd (Nat.of_int 5) Nat.zero)

(* ------------------------------------------------------------------ *)
(* Modular arithmetic                                                  *)
(* ------------------------------------------------------------------ *)

let test_mod_pow_known () =
  (* 2^10 mod 1000 = 24, 3^100 mod 101 = 1 (Fermat) *)
  Alcotest.(check int) "2^10 mod 1000" 24
    (Nat.to_int (Nat.mod_pow ~base:Nat.two ~exp:(Nat.of_int 10) ~m:(Nat.of_int 1000)));
  Alcotest.(check int) "fermat" 1
    (Nat.to_int
       (Nat.mod_pow ~base:(Nat.of_int 3) ~exp:(Nat.of_int 100) ~m:(Nat.of_int 101)))

let test_mod_pow_vs_naive () =
  let t = prng () in
  for _ = 1 to 50 do
    let m = Nat.add (Nat.random_below t (Nat.of_int 10000)) Nat.two in
    let b = Nat.random_below t m in
    let e = Dstress_util.Prng.int t 50 in
    let expected = Nat.rem (Nat.pow b e) m in
    Alcotest.check nat "matches naive" expected
      (Nat.mod_pow ~base:b ~exp:(Nat.of_int e) ~m)
  done

let test_mod_pow_even_modulus () =
  Alcotest.(check int) "even modulus" (17 * 17 mod 100)
    (Nat.to_int
       (Nat.mod_pow ~base:(Nat.of_int 17) ~exp:Nat.two ~m:(Nat.of_int 100)))

let test_mod_inv () =
  let t = prng () in
  let m = Nat.of_decimal "1000000007" in
  for _ = 1 to 100 do
    let a = Nat.add Nat.one (Nat.random_below t (Nat.sub m Nat.one)) in
    let inv = Nat.mod_inv a ~m in
    Alcotest.check nat "a * a^-1 = 1" Nat.one (Nat.mod_mul a inv ~m)
  done

let test_mod_inv_no_inverse () =
  Alcotest.check_raises "gcd > 1" Not_found (fun () ->
      ignore (Nat.mod_inv (Nat.of_int 6) ~m:(Nat.of_int 9)))

let test_mod_add_sub () =
  let m = Nat.of_int 13 in
  Alcotest.(check int) "mod_add wraps" 2
    (Nat.to_int (Nat.mod_add (Nat.of_int 7) (Nat.of_int 8) ~m));
  Alcotest.(check int) "mod_sub wraps" 12
    (Nat.to_int (Nat.mod_sub (Nat.of_int 7) (Nat.of_int 8) ~m))

(* ------------------------------------------------------------------ *)
(* Montgomery                                                          *)
(* ------------------------------------------------------------------ *)

let test_mont_roundtrip () =
  let t = prng () in
  let m = Nat.generate_prime t ~bits:128 in
  let ctx = Nat.Mont.create m in
  for _ = 1 to 50 do
    let x = Nat.random_below t m in
    Alcotest.check nat "to/from mont" x (Nat.Mont.from_mont ctx (Nat.Mont.to_mont ctx x))
  done

let test_mont_mul_matches_plain () =
  let t = prng () in
  let m = Nat.generate_prime t ~bits:160 in
  let ctx = Nat.Mont.create m in
  for _ = 1 to 50 do
    let a = Nat.random_below t m and b = Nat.random_below t m in
    let am = Nat.Mont.to_mont ctx a and bm = Nat.Mont.to_mont ctx b in
    let got = Nat.Mont.from_mont ctx (Nat.Mont.mul ctx am bm) in
    Alcotest.check nat "matches mod_mul" (Nat.mod_mul a b ~m) got
  done

let test_mont_pow_matches () =
  let t = prng () in
  let m = Nat.generate_prime t ~bits:96 in
  let ctx = Nat.Mont.create m in
  for _ = 1 to 20 do
    let b = Nat.random_below t m in
    let e = Nat.random_bits t 64 in
    let bm = Nat.Mont.to_mont ctx b in
    let got = Nat.Mont.from_mont ctx (Nat.Mont.pow ctx bm e) in
    Alcotest.check nat "matches mod_pow" (Nat.mod_pow ~base:b ~exp:e ~m) got
  done

let test_mont_rejects_even () =
  Alcotest.check_raises "even modulus"
    (Invalid_argument "Nat.Mont.create: modulus must be odd and >= 3") (fun () ->
      ignore (Nat.Mont.create (Nat.of_int 100)))

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)
(* ------------------------------------------------------------------ *)

let test_decimal_roundtrip () =
  let t = prng () in
  for _ = 1 to 50 do
    let v = Nat.random_bits t 300 in
    Alcotest.check nat "decimal roundtrip" v (Nat.of_decimal (Nat.to_decimal v))
  done

let test_hex_roundtrip () =
  let t = prng () in
  for _ = 1 to 50 do
    let v = Nat.random_bits t 300 in
    Alcotest.check nat "hex roundtrip" v (Nat.of_hex (Nat.to_hex v))
  done

let test_hex_known () =
  Alcotest.(check string) "to_hex" "ff" (Nat.to_hex (Nat.of_int 255));
  Alcotest.check nat "of_hex odd length" (Nat.of_int 0xabc) (Nat.of_hex "abc")

let test_bytes_roundtrip () =
  let t = prng () in
  for _ = 1 to 50 do
    let v = Nat.random_bits t 200 in
    Alcotest.check nat "bytes roundtrip" v (Nat.of_bytes_be (Nat.to_bytes_be v))
  done

(* ------------------------------------------------------------------ *)
(* Randomness / primality                                              *)
(* ------------------------------------------------------------------ *)

let test_random_below_in_range () =
  let t = prng () in
  let bound = Nat.of_decimal "123456789123456789" in
  for _ = 1 to 200 do
    let v = Nat.random_below t bound in
    Alcotest.(check bool) "below bound" true (Nat.compare v bound < 0)
  done

let test_primality_known () =
  let t = prng () in
  let primes = [ 2; 3; 5; 7; 97; 7919; 104729 ] in
  let composites = [ 0; 1; 4; 9; 561 (* Carmichael *); 7917; 104730 ] in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "%d prime" p)
        true
        (Nat.is_probable_prime t (Nat.of_int p)))
    primes;
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "%d composite" c)
        false
        (Nat.is_probable_prime t (Nat.of_int c)))
    composites

let test_primality_large_known () =
  let t = prng () in
  (* 2^127 - 1 is a Mersenne prime; 2^128 + 1 is composite. *)
  let m127 = Nat.sub (Nat.pow Nat.two 127) Nat.one in
  Alcotest.(check bool) "2^127-1 prime" true (Nat.is_probable_prime t m127);
  let f7ish = Nat.add (Nat.pow Nat.two 128) Nat.one in
  Alcotest.(check bool) "2^128+1 composite" false (Nat.is_probable_prime t f7ish)

let test_generate_prime () =
  let t = prng () in
  let p = Nat.generate_prime t ~bits:64 in
  Alcotest.(check int) "exact width" 64 (Nat.num_bits p);
  Alcotest.(check bool) "is prime" true (Nat.is_probable_prime t p)

(* ------------------------------------------------------------------ *)
(* Zint                                                                *)
(* ------------------------------------------------------------------ *)

let test_zint_roundtrip () =
  List.iter
    (fun v -> Alcotest.(check int) "roundtrip" v (Zint.to_int (Zint.of_int v)))
    [ 0; 1; -1; 1000; -123456; max_int; min_int + 1 ]

let test_zint_arith () =
  let z = Zint.of_int in
  Alcotest.check zint "add" (z 1) (Zint.add (z 5) (z (-4)));
  Alcotest.check zint "sub" (z (-9)) (Zint.sub (z (-5)) (z 4));
  Alcotest.check zint "mul" (z (-20)) (Zint.mul (z 5) (z (-4)));
  Alcotest.check zint "neg zero" Zint.zero (Zint.neg Zint.zero)

let test_zint_divmod_euclidean () =
  let check a b =
    let q, r = Zint.divmod (Zint.of_int a) (Zint.of_int b) in
    Alcotest.(check bool) "r >= 0" true (Zint.sign r >= 0);
    Alcotest.(check bool) "r < |b|" true (Zint.compare r (Zint.of_int (abs b)) < 0);
    Alcotest.(check int) "a = q*b + r" a
      (Zint.to_int (Zint.add (Zint.mul q (Zint.of_int b)) r))
  in
  List.iter (fun (a, b) -> check a b)
    [ (7, 3); (-7, 3); (7, -3); (-7, -3); (6, 3); (-6, 3); (0, 5) ]

let test_zint_compare () =
  Alcotest.(check bool) "neg < pos" true (Zint.compare (Zint.of_int (-5)) (Zint.of_int 3) < 0);
  Alcotest.(check bool) "-5 < -3" true (Zint.compare (Zint.of_int (-5)) (Zint.of_int (-3)) < 0);
  Alcotest.(check int) "sign" (-1) (Zint.sign (Zint.of_int (-7)))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_nat =
  QCheck2.Gen.(
    map
      (fun (seed, bits) ->
        Nat.random_bits (Dstress_util.Prng.of_int seed) (1 + bits))
      (pair int (int_bound 250)))

let prop_add_comm =
  QCheck2.Test.make ~name:"nat add commutative" ~count:200
    QCheck2.Gen.(pair gen_nat gen_nat)
    (fun (a, b) -> Nat.equal (Nat.add a b) (Nat.add b a))

let prop_mul_comm =
  QCheck2.Test.make ~name:"nat mul commutative" ~count:200
    QCheck2.Gen.(pair gen_nat gen_nat)
    (fun (a, b) -> Nat.equal (Nat.mul a b) (Nat.mul b a))

let prop_mul_assoc =
  QCheck2.Test.make ~name:"nat mul associative" ~count:100
    QCheck2.Gen.(triple gen_nat gen_nat gen_nat)
    (fun (a, b, c) -> Nat.equal (Nat.mul (Nat.mul a b) c) (Nat.mul a (Nat.mul b c)))

let prop_distributive =
  QCheck2.Test.make ~name:"nat mul distributes over add" ~count:100
    QCheck2.Gen.(triple gen_nat gen_nat gen_nat)
    (fun (a, b, c) ->
      Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)))

let prop_divmod_identity =
  QCheck2.Test.make ~name:"nat divmod identity" ~count:300
    QCheck2.Gen.(pair gen_nat gen_nat)
    (fun (a, b) ->
      QCheck2.assume (not (Nat.is_zero b));
      let q, r = Nat.divmod a b in
      Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0)

let prop_decimal_roundtrip =
  QCheck2.Test.make ~name:"nat decimal roundtrip" ~count:200 gen_nat (fun v ->
      Nat.equal v (Nat.of_decimal (Nat.to_decimal v)))

let prop_zint_divmod =
  QCheck2.Test.make ~name:"zint euclidean divmod" ~count:300
    QCheck2.Gen.(pair (int_range (-100000) 100000) (int_range (-1000) 1000))
    (fun (a, b) ->
      QCheck2.assume (b <> 0);
      let q, r = Zint.divmod (Zint.of_int a) (Zint.of_int b) in
      Zint.sign r >= 0
      && Zint.compare r (Zint.of_int (abs b)) < 0
      && Zint.to_int (Zint.add (Zint.mul q (Zint.of_int b)) r) = a)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_add_comm;
        prop_mul_comm;
        prop_mul_assoc;
        prop_distributive;
        prop_divmod_identity;
        prop_decimal_roundtrip;
        prop_zint_divmod;
      ]
  in
  Alcotest.run "bignum"
    [
      ( "nat-basic",
        [
          Alcotest.test_case "of/to int" `Quick test_nat_of_to_int;
          Alcotest.test_case "of_int negative" `Quick test_nat_of_int_negative;
          Alcotest.test_case "compare" `Quick test_nat_compare;
          Alcotest.test_case "hash" `Quick test_nat_hash;
          Alcotest.test_case "add/sub" `Quick test_nat_add_sub;
          Alcotest.test_case "sub negative" `Quick test_nat_sub_negative;
          Alcotest.test_case "mul known" `Quick test_nat_mul_known;
          Alcotest.test_case "divmod known" `Quick test_nat_divmod_known;
          Alcotest.test_case "divmod small" `Quick test_nat_divmod_small_cases;
          Alcotest.test_case "div by zero" `Quick test_nat_div_by_zero;
          Alcotest.test_case "shifts" `Quick test_nat_shifts;
          Alcotest.test_case "num_bits" `Quick test_nat_num_bits;
          Alcotest.test_case "pow" `Quick test_nat_pow;
          Alcotest.test_case "gcd" `Quick test_nat_gcd;
        ] );
      ( "nat-modular",
        [
          Alcotest.test_case "mod_pow known" `Quick test_mod_pow_known;
          Alcotest.test_case "mod_pow vs naive" `Quick test_mod_pow_vs_naive;
          Alcotest.test_case "mod_pow even modulus" `Quick test_mod_pow_even_modulus;
          Alcotest.test_case "mod_inv" `Quick test_mod_inv;
          Alcotest.test_case "mod_inv missing" `Quick test_mod_inv_no_inverse;
          Alcotest.test_case "mod_add/mod_sub" `Quick test_mod_add_sub;
        ] );
      ( "nat-montgomery",
        [
          Alcotest.test_case "roundtrip" `Quick test_mont_roundtrip;
          Alcotest.test_case "mul matches plain" `Quick test_mont_mul_matches_plain;
          Alcotest.test_case "pow matches plain" `Quick test_mont_pow_matches;
          Alcotest.test_case "rejects even modulus" `Quick test_mont_rejects_even;
        ] );
      ( "nat-conversions",
        [
          Alcotest.test_case "decimal roundtrip" `Quick test_decimal_roundtrip;
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "hex known" `Quick test_hex_known;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
        ] );
      ( "nat-primes",
        [
          Alcotest.test_case "random_below range" `Quick test_random_below_in_range;
          Alcotest.test_case "known primes/composites" `Quick test_primality_known;
          Alcotest.test_case "large known" `Quick test_primality_large_known;
          Alcotest.test_case "generate prime" `Quick test_generate_prime;
        ] );
      ( "zint",
        [
          Alcotest.test_case "roundtrip" `Quick test_zint_roundtrip;
          Alcotest.test_case "arithmetic" `Quick test_zint_arith;
          Alcotest.test_case "euclidean divmod" `Quick test_zint_divmod_euclidean;
          Alcotest.test_case "compare/sign" `Quick test_zint_compare;
        ] );
      ("properties", qsuite);
    ]
