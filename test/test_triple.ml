(* Offline/online split: correlated-randomness preprocessing.

   Gmw.generate_material pre-draws everything a GMW evaluation consumes
   (base-OT setup, per-pair Beaver mask bits, PRG snapshots); a session
   with the material attached must be observationally indistinguishable —
   output shares, traffic matrices, rounds/AND/OT counters, and the PRG
   streams afterwards — from one that generated inline, across scalar and
   bitsliced evaluation, both OT backends, exhaustion fallback and mixed
   consume/inline slices. The Triple.Cache tests pin the one-generation-
   per-key guarantee (including under domain hammering — kept last in the
   file so the distributed-engine test added by the runtime suite can
   fork first) and the disk round-trip with corruption recovery. *)

open Dstress_mpc
module Bitvec = Dstress_util.Bitvec
module Prng = Dstress_util.Prng
module Prg = Dstress_crypto.Prg
module Group = Dstress_crypto.Group
module Ot_ext = Dstress_crypto.Ot_ext
module Circuit = Dstress_circuit.Circuit
module Builder = Dstress_circuit.Builder
module Word = Dstress_circuit.Word
module Obs = Dstress_obs.Obs
module Metrics = Dstress_obs.Obs.Metrics
module Reference = Dstress_risk.Reference
module En_program = Dstress_risk.En_program
open Dstress_runtime

let grp = Group.by_name "toy"

let adder_circuit bits =
  let b = Builder.create () in
  let x = Word.inputs b ~bits in
  let y = Word.inputs b ~bits in
  Builder.finish b ~outputs:(Word.add b x y)

let en_circuit () =
  let degree = 2 in
  let p = En_program.make ~l:8 ~degree ~iterations:1 () in
  Vertex_program.update_circuit p ~degree

let seed_of tag i = Printf.sprintf "triple:%s:%d" tag i

let make_sessions ?(mode = Ot_ext.Simulation) ~parties ~count tag =
  Array.init count (fun i -> Gmw.create_session ~mode grp ~parties ~seed:(seed_of tag i))

let make_inputs ~parties ~count tag (circuit : Circuit.t) =
  let dealer = Prg.of_string ("triple-inputs:" ^ tag) in
  Array.init count (fun _ ->
      Sharing.share dealer ~parties (Prg.bits dealer circuit.Circuit.num_inputs))

let check_sessions_agree tag i a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s: session %d traffic" tag i)
    true
    (Traffic.equal (Gmw.traffic a) (Gmw.traffic b));
  Alcotest.(check int) (Printf.sprintf "%s: session %d rounds" tag i) (Gmw.rounds a)
    (Gmw.rounds b);
  Alcotest.(check int)
    (Printf.sprintf "%s: session %d AND gates" tag i)
    (Gmw.and_gates_evaluated a)
    (Gmw.and_gates_evaluated b);
  Alcotest.(check int)
    (Printf.sprintf "%s: session %d OTs" tag i)
    (Gmw.ots_performed a) (Gmw.ots_performed b)

(* Scalar path: [batches] successive Gmw.eval calls on an inline session
   vs a clone holding material for [evals] of them — when
   [batches > evals] the tail exercises the exhaustion fallback, which
   must stay stream-exact thanks to the restored PRG snapshots. *)
let check_scalar_equiv ?(mode = Ot_ext.Simulation) ~parties ~evals ~batches circuit tag =
  let inline = (make_sessions ~mode ~parties ~count:1 tag).(0) in
  let online = (make_sessions ~mode ~parties ~count:1 tag).(0) in
  let plan = Plan.of_circuit circuit in
  let mat =
    Gmw.generate_material ~mode grp ~parties ~seed:(seed_of tag 0) ~slice_width:1 ~evals plan
  in
  Alcotest.(check int) (tag ^ ": evals available") evals (Triple.evals_available mat);
  Gmw.attach_material online mat;
  Alcotest.(check int) (tag ^ ": remaining after attach") evals
    (Gmw.material_remaining online);
  for e = 0 to batches - 1 do
    let shares = (make_inputs ~parties ~count:1 (Printf.sprintf "%s:%d" tag e) circuit).(0) in
    let out_a = Gmw.eval inline circuit ~input_shares:shares in
    let out_b = Gmw.eval online circuit ~input_shares:shares in
    for p = 0 to parties - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "%s: eval %d party %d output" tag e p)
        true
        (Bitvec.equal out_a.(p) out_b.(p))
    done;
    check_sessions_agree tag e inline online;
    (* Reconstruction must also be plain-circuit correct. *)
    let cleartext = Sharing.reconstruct shares in
    let expected =
      Circuit.eval circuit (Array.of_list (Bitvec.to_bool_list cleartext))
      |> Array.to_list |> Bitvec.of_bool_list
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s: eval %d plaintext" tag e)
      true
      (Bitvec.equal expected (Sharing.reconstruct out_b))
  done;
  Alcotest.(check int) (tag ^ ": remaining at end") (max 0 (evals - batches))
    (Gmw.material_remaining online)

let test_scalar_simulation () =
  check_scalar_equiv ~parties:3 ~evals:3 ~batches:4 (adder_circuit 6) "scalar-sim";
  check_scalar_equiv ~parties:2 ~evals:2 ~batches:2 (en_circuit ()) "scalar-sim-en"

let test_scalar_crypto () =
  check_scalar_equiv ~mode:Ot_ext.Crypto ~parties:2 ~evals:2 ~batches:3 (adder_circuit 4)
    "scalar-crypto"

(* Bitsliced path via eval_many: [batches] rounds over [count] sessions.
   [attach_to] picks which slots get material (a strict subset exercises
   mixed consume/inline slices within one word batch). *)
let check_sliced_equiv ?(mode = Ot_ext.Simulation) ~parties ~count ~evals ~batches
    ?(attach_to = fun _ -> true) circuit tag =
  let inline = make_sessions ~mode ~parties ~count tag in
  let online = make_sessions ~mode ~parties ~count tag in
  let plan = Plan.of_circuit circuit in
  Array.iteri
    (fun i s ->
      if attach_to i then
        Gmw.attach_material s
          (Gmw.generate_material ~mode grp ~parties ~seed:(seed_of tag i)
             ~slice_width:(min count 64) ~evals plan))
    online;
  for e = 0 to batches - 1 do
    let inputs = make_inputs ~parties ~count (Printf.sprintf "%s:%d" tag e) circuit in
    let out_a = Gmw.eval_many inline circuit ~input_shares:inputs in
    let out_b = Gmw.eval_many online circuit ~input_shares:inputs in
    for i = 0 to count - 1 do
      for p = 0 to parties - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "%s: batch %d session %d party %d output" tag e i p)
          true
          (Bitvec.equal out_a.(i).(p) out_b.(i).(p))
      done;
      check_sessions_agree (Printf.sprintf "%s:batch%d" tag e) i inline.(i) online.(i)
    done
  done

let test_sliced_simulation () =
  check_sliced_equiv ~parties:3 ~count:5 ~evals:2 ~batches:3 (en_circuit ()) "sliced-sim-en";
  check_sliced_equiv ~parties:2 ~count:64 ~evals:1 ~batches:2 (adder_circuit 4)
    "sliced-sim-full-word"

let test_sliced_crypto () =
  check_sliced_equiv ~mode:Ot_ext.Crypto ~parties:2 ~count:2 ~evals:2 ~batches:2
    (adder_circuit 4) "sliced-crypto"

let test_mixed_slots () =
  check_sliced_equiv ~parties:3 ~count:4 ~evals:2 ~batches:3
    ~attach_to:(fun i -> i mod 2 = 0)
    (adder_circuit 5) "mixed-slots"

let test_digest_mismatch_drops_material () =
  let circuit_a = adder_circuit 4 and circuit_b = adder_circuit 5 in
  let s = (make_sessions ~parties:2 ~count:1 "mismatch").(0) in
  let mat =
    Gmw.generate_material ~mode:Ot_ext.Simulation grp ~parties:2 ~seed:(seed_of "mismatch" 0)
      ~slice_width:1 ~evals:2 (Plan.of_circuit circuit_a)
  in
  Gmw.attach_material s mat;
  let shares = (make_inputs ~parties:2 ~count:1 "mismatch" circuit_b).(0) in
  let out = Gmw.eval s circuit_b ~input_shares:shares in
  Alcotest.(check int) "material dropped" 0 (Gmw.material_remaining s);
  let cleartext = Sharing.reconstruct shares in
  let expected =
    Circuit.eval circuit_b (Array.of_list (Bitvec.to_bool_list cleartext))
    |> Array.to_list |> Bitvec.of_bool_list
  in
  Alcotest.(check bool) "still correct" true (Bitvec.equal expected (Sharing.reconstruct out))

let test_attach_rejects () =
  let circuit = adder_circuit 4 in
  let plan = Plan.of_circuit circuit in
  let mk () = (make_sessions ~parties:2 ~count:1 "reject").(0) in
  let mat =
    Gmw.generate_material ~mode:Ot_ext.Simulation grp ~parties:2 ~seed:(seed_of "reject" 0)
      ~slice_width:1 ~evals:1 plan
  in
  (* Used session. *)
  let used = mk () in
  let shares = (make_inputs ~parties:2 ~count:1 "reject" circuit).(0) in
  ignore (Gmw.eval used circuit ~input_shares:shares);
  Alcotest.check_raises "used session"
    (Invalid_argument "Gmw.attach_material: session has already evaluated") (fun () ->
      Gmw.attach_material used mat);
  (* Party mismatch. *)
  let three = Gmw.create_session ~mode:Ot_ext.Simulation grp ~parties:3 ~seed:"reject3" in
  Alcotest.check_raises "party mismatch"
    (Invalid_argument "Gmw.attach_material: party count mismatch") (fun () ->
      Gmw.attach_material three mat);
  (* Mode mismatch. *)
  let crypto = Gmw.create_session ~mode:Ot_ext.Crypto grp ~parties:2 ~seed:(seed_of "reject" 0) in
  Alcotest.check_raises "mode mismatch"
    (Invalid_argument "Gmw.attach_material: OT mode mismatch") (fun () ->
      Gmw.attach_material crypto mat)

(* ------------------------------------------------------------------ *)
(* Plan digest and memoization                                          *)
(* ------------------------------------------------------------------ *)

let test_plan_digest_and_memo () =
  let c = adder_circuit 6 in
  let p1 = Plan.of_circuit c in
  let before = Plan.compilations () in
  let p2 = Plan.of_circuit c in
  Alcotest.(check int) "memo hit compiles nothing" before (Plan.compilations ());
  Alcotest.(check bool) "memo returns same plan" true (p1 == p2);
  Alcotest.(check string) "digest stable" (Plan.digest p1) (Plan.digest p2);
  (* Structurally equal circuit, different physical identity: same digest
     (that is the point — material survives Marshal boundaries). *)
  let c' = adder_circuit 6 in
  Alcotest.(check bool) "distinct objects" true (c != c');
  Alcotest.(check string) "structural digest" (Plan.digest p1) (Plan.digest (Plan.compile c'));
  Alcotest.(check bool) "different circuit, different digest" true
    (Plan.digest p1 <> Plan.digest (Plan.compile (adder_circuit 7)))

(* ------------------------------------------------------------------ *)
(* Cache: memory, disk, corruption                                      *)
(* ------------------------------------------------------------------ *)

let gen_for ~parties ~seed ~evals plan ~evals:_ =
  Gmw.generate_material ~mode:Ot_ext.Simulation grp ~parties ~seed ~slice_width:1 ~evals plan

let request ?dir cache plan ~parties ~seed ~evals =
  Triple.Cache.find_or_generate ?dir cache ~digest:(Plan.digest plan) ~parties ~seed
    ~slice_width:1 ~mode:Ot_ext.Simulation ~evals
    ~generate:(gen_for ~parties ~seed ~evals plan)

let test_cache_memory () =
  let cache = Triple.Cache.create () in
  let plan = Plan.of_circuit (adder_circuit 4) in
  let m1 = request cache plan ~parties:2 ~seed:"cache-mem" ~evals:2 in
  let m2 = request cache plan ~parties:2 ~seed:"cache-mem" ~evals:2 in
  Alcotest.(check bool) "hit returns same material" true (m1 == m2);
  Alcotest.(check int) "one generation" 1 (Triple.Cache.generations cache);
  Alcotest.(check int) "one hit" 1 (Triple.Cache.hits cache);
  (* Bigger request on the same key regenerates. *)
  let m3 = request cache plan ~parties:2 ~seed:"cache-mem" ~evals:5 in
  Alcotest.(check int) "regenerated for more evals" 2 (Triple.Cache.generations cache);
  Alcotest.(check int) "larger material" 5 (Triple.evals_available m3);
  (* Different key (other seed) is a fresh generation. *)
  ignore (request cache plan ~parties:2 ~seed:"cache-mem2" ~evals:2);
  Alcotest.(check int) "per-key generation" 3 (Triple.Cache.generations cache);
  Triple.Cache.clear cache;
  Alcotest.(check int) "cleared" 0 (Triple.Cache.generations cache)

let with_cache_dir f =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "dstress-test-triples" in
  Array.iter
    (fun base ->
      let p = Filename.concat dir base in
      if Sys.file_exists p then Sys.remove p)
    (if Sys.file_exists dir then Sys.readdir dir else [||]);
  f dir

let test_cache_disk () =
  with_cache_dir (fun dir ->
      let plan = Plan.of_circuit (adder_circuit 4) in
      let c1 = Triple.Cache.create () in
      let m1 = request ~dir c1 plan ~parties:2 ~seed:"cache-disk" ~evals:2 in
      Alcotest.(check int) "generated once" 1 (Triple.Cache.generations c1);
      let files = Sys.readdir dir in
      Alcotest.(check bool) "file written" true
        (Array.exists (fun f -> Filename.check_suffix f ".triple") files);
      (* A fresh cache (fresh process, conceptually) loads from disk. *)
      let c2 = Triple.Cache.create () in
      let m2 = request ~dir c2 plan ~parties:2 ~seed:"cache-disk" ~evals:2 in
      Alcotest.(check int) "no generation on reload" 0 (Triple.Cache.generations c2);
      Alcotest.(check int) "disk load counted" 1 (Triple.Cache.disk_loads c2);
      Alcotest.(check string) "same digest" (Triple.(m1.digest)) (Triple.(m2.digest));
      Alcotest.(check int) "same evals" (Triple.evals_available m1) (Triple.evals_available m2);
      (* The reloaded material must behave identically. *)
      let circuit = adder_circuit 4 in
      let inline = Gmw.create_session ~mode:Ot_ext.Simulation grp ~parties:2 ~seed:"cache-disk" in
      let online = Gmw.create_session ~mode:Ot_ext.Simulation grp ~parties:2 ~seed:"cache-disk" in
      Gmw.attach_material online m2;
      let shares = (make_inputs ~parties:2 ~count:1 "cache-disk" circuit).(0) in
      let out_a = Gmw.eval inline circuit ~input_shares:shares in
      let out_b = Gmw.eval online circuit ~input_shares:shares in
      Alcotest.(check bool) "reloaded material equivalent" true
        (Bitvec.equal out_a.(0) out_b.(0) && Bitvec.equal out_a.(1) out_b.(1));
      (* Corrupt the payload: the load must fail the CRC and regenerate. *)
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".triple" then begin
            let path = Filename.concat dir f in
            let ic = open_in_bin path in
            let data = really_input_string ic (in_channel_length ic) in
            close_in ic;
            let b = Bytes.of_string data in
            let mid = Bytes.length b / 2 in
            Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0xff));
            let oc = open_out_bin path in
            output_bytes oc b;
            close_out oc
          end)
        (Sys.readdir dir);
      let c3 = Triple.Cache.create () in
      ignore (request ~dir c3 plan ~parties:2 ~seed:"cache-disk" ~evals:2);
      Alcotest.(check int) "corrupt file regenerates" 1 (Triple.Cache.generations c3);
      Alcotest.(check int) "corrupt file does not load" 0 (Triple.Cache.disk_loads c3))

(* Kept last: spawns domains (forking executors must run before this in
   any process that also runs them). One key hammered from several
   domains must generate exactly once; distinct keys generate once each. *)
let test_cache_hammer () =
  let cache = Triple.Cache.create () in
  let plan = Plan.of_circuit (adder_circuit 5) in
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to 9 do
              let seed = Printf.sprintf "hammer-%d" (i mod 3) in
              ignore (request cache plan ~parties:2 ~seed ~evals:1);
              ignore d
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "one generation per key" 3 (Triple.Cache.generations cache);
  Alcotest.(check int) "everything else hit" (4 * 10 - 3) (Triple.Cache.hits cache)

(* ------------------------------------------------------------------ *)
(* Engine: preprocess on/off differentials                             *)
(*                                                                     *)
(* The Distributed test must run FIRST in this binary: its worker pool *)
(* forks, and OCaml 5 forbids forking after a domain has been spawned  *)
(* (the parallel-executor test and the cache hammering both spawn).    *)
(* ------------------------------------------------------------------ *)

let small_economy =
  {
    Reference.en_n = 4;
    cash = [| 0.0; 12.0; 20.0; 8.0 |];
    debts = [ (0, 1, 15.0); (1, 2, 10.0); (2, 3, 12.0); (3, 0, 4.0) ];
  }

let en_fixture ?(iterations = 2) () =
  let graph = En_program.graph_of_instance small_economy in
  let d = Graph.max_degree graph in
  let p =
    En_program.make ~epsilon:50.0 ~sensitivity:1 ~noise_max:2 ~l:12 ~degree:d ~iterations ()
  in
  let states = En_program.encode_instance small_economy ~graph ~l:12 ~degree:d ~scale:0.25 in
  (graph, d, p, states)

let run_engine ?(preprocess = false) ?triple_cache ?(slice_width = 64) ~executor ~seed
    (graph, d, p, states) =
  let cfg =
    { (Engine.default_config grp ~k:2 ~degree_bound:d ~seed) with
      Engine.executor; slice_width; obs_level = Obs.Full; preprocess; triple_cache }
  in
  Engine.run cfg p ~graph ~initial_states:states

(* Everything observable in the tick domain must be byte-identical:
   output, traffic matrix, GMW counters, per-phase bytes and the Obs
   exports. Wall-clock fields are the only thing allowed to move. *)
let check_reports_equal label (a : Engine.report) (b : Engine.report) =
  Alcotest.(check int) (label ^ ": output") a.Engine.output b.Engine.output;
  Alcotest.(check bool) (label ^ ": traffic") true
    (Traffic.equal a.Engine.traffic b.Engine.traffic);
  Alcotest.(check int) (label ^ ": rounds") a.Engine.mpc_rounds b.Engine.mpc_rounds;
  Alcotest.(check int) (label ^ ": AND gates") a.Engine.mpc_and_gates b.Engine.mpc_and_gates;
  Alcotest.(check int) (label ^ ": OTs") a.Engine.mpc_ots b.Engine.mpc_ots;
  Alcotest.(check bool) (label ^ ": phase bytes") true
    (a.Engine.phase_bytes = b.Engine.phase_bytes);
  Alcotest.(check string) (label ^ ": trace bytes") (Obs.trace_json a.Engine.obs)
    (Obs.trace_json b.Engine.obs);
  Alcotest.(check string) (label ^ ": metrics bytes") (Obs.metrics_json a.Engine.obs)
    (Obs.metrics_json b.Engine.obs);
  Alcotest.(check string) (label ^ ": metrics csv") (Obs.metrics_csv a.Engine.obs)
    (Obs.metrics_csv b.Engine.obs)

let quick_opts =
  {
    Distributed.default_opts with
    Distributed.workers = 2;
    heartbeat_interval = 0.02;
    phi = 4.0;
    batch_deadline = 30.0;
  }

let offline_counter (r : Engine.report) name =
  match r.Engine.offline_metrics with
  | Some m -> Metrics.counter m name
  | None -> Alcotest.fail "preprocess run must expose offline metrics"

let test_engine_distributed () =
  let fx = en_fixture () in
  let seed = "triple-engine-dist" in
  let base = run_engine ~executor:Executor.sequential ~seed fx in
  Alcotest.(check bool) "inline run has no offline metrics" true
    (base.Engine.offline_metrics = None);
  Triple.Cache.clear Triple.Cache.shared;
  let g0 = Triple.Cache.generations Triple.Cache.shared in
  let dist =
    run_engine ~preprocess:true ~executor:(Executor.distributed ~opts:quick_opts ()) ~seed fx
  in
  check_reports_equal "EN dist+preprocess = seq inline" base dist;
  (* One generation per block key (one key per vertex block). *)
  Alcotest.(check int) "one generation per block key" Reference.(small_economy.en_n)
    (Triple.Cache.generations Triple.Cache.shared - g0);
  Alcotest.(check int) "sessions preprocessed" Reference.(small_economy.en_n)
    (offline_counter dist "preprocess.sessions");
  Alcotest.(check int) "generations counted" Reference.(small_economy.en_n)
    (offline_counter dist "preprocess.cache.generations");
  Alcotest.(check bool) "evals attached" true
    (offline_counter dist "preprocess.evals" >= Reference.(small_economy.en_n));
  (* A second identical run is served entirely from the shared cache. *)
  let again =
    run_engine ~preprocess:true ~executor:(Executor.distributed ~opts:quick_opts ()) ~seed fx
  in
  check_reports_equal "cached rerun" base again;
  Alcotest.(check int) "no regeneration on rerun" Reference.(small_economy.en_n)
    (Triple.Cache.generations Triple.Cache.shared - g0);
  Alcotest.(check int) "rerun served from cache" Reference.(small_economy.en_n)
    (offline_counter again "preprocess.cache.hits")

let test_engine_disk_reload () =
  with_cache_dir (fun dir ->
      let fx = en_fixture () in
      let seed = "triple-engine-disk" in
      let base = run_engine ~executor:Executor.sequential ~seed fx in
      let first =
        run_engine ~preprocess:true ~triple_cache:dir ~executor:Executor.sequential ~seed fx
      in
      check_reports_equal "disk-backed preprocess" base first;
      Alcotest.(check int) "first run generates" Reference.(small_economy.en_n)
        (offline_counter first "preprocess.cache.generations");
      (* Clearing the in-memory cache models a fresh process: the rerun
         must come entirely from the persisted files. *)
      Triple.Cache.clear Triple.Cache.shared;
      let reload =
        run_engine ~preprocess:true ~triple_cache:dir ~executor:Executor.sequential ~seed fx
      in
      check_reports_equal "disk reload" base reload;
      Alcotest.(check int) "reload generates nothing" 0
        (offline_counter reload "preprocess.cache.generations");
      Alcotest.(check int) "reload comes from disk" Reference.(small_economy.en_n)
        (offline_counter reload "preprocess.cache.disk_loads"))

let test_engine_seq_par () =
  let fx = en_fixture () in
  let seed = "triple-engine-seqpar" in
  let base = run_engine ~executor:Executor.sequential ~seed fx in
  (* Preprocessing must not change how many plans get compiled: the
     offline phase's Plan.of_circuit is served by the same memo the
     online phase uses. *)
  let c0 = Plan.compilations () in
  let pre64 = run_engine ~preprocess:true ~executor:Executor.sequential ~seed fx in
  let d_pre = Plan.compilations () - c0 in
  let c1 = Plan.compilations () in
  let inline_again = run_engine ~executor:Executor.sequential ~seed fx in
  let d_inline = Plan.compilations () - c1 in
  check_reports_equal "seq slice 64" base pre64;
  check_reports_equal "seq inline rerun" base inline_again;
  Alcotest.(check int) "preprocess adds no compilations" d_inline d_pre;
  check_reports_equal "seq slice 1" base
    (run_engine ~preprocess:true ~slice_width:1 ~executor:Executor.sequential ~seed fx);
  check_reports_equal "par slice 64" base
    (run_engine ~preprocess:true ~executor:(Executor.parallel ~jobs:3) ~seed fx);
  check_reports_equal "par slice 1" base
    (run_engine ~preprocess:true ~slice_width:1 ~executor:(Executor.parallel ~jobs:3) ~seed fx)

let () =
  Alcotest.run "triple"
    [
      ( "engine",
        [
          Alcotest.test_case "distributed preprocess differential" `Quick
            test_engine_distributed;
          Alcotest.test_case "disk reload" `Quick test_engine_disk_reload;
          Alcotest.test_case "sequential and parallel differential" `Quick test_engine_seq_par;
        ] );
      ( "gmw-equivalence",
        [
          Alcotest.test_case "scalar simulation" `Quick test_scalar_simulation;
          Alcotest.test_case "scalar crypto" `Quick test_scalar_crypto;
          Alcotest.test_case "sliced simulation" `Quick test_sliced_simulation;
          Alcotest.test_case "sliced crypto" `Quick test_sliced_crypto;
          Alcotest.test_case "mixed slots" `Quick test_mixed_slots;
          Alcotest.test_case "digest mismatch" `Quick test_digest_mismatch_drops_material;
          Alcotest.test_case "attach rejects" `Quick test_attach_rejects;
        ] );
      ( "plan",
        [ Alcotest.test_case "digest and memoization" `Quick test_plan_digest_and_memo ] );
      ( "cache",
        [
          Alcotest.test_case "memory" `Quick test_cache_memory;
          Alcotest.test_case "disk" `Quick test_cache_disk;
          Alcotest.test_case "domain hammering" `Quick test_cache_hammer;
        ] );
    ]
