open Dstress_mpc
module Bitvec = Dstress_util.Bitvec
module Prg = Dstress_crypto.Prg
module Group = Dstress_crypto.Group
module Circuit = Dstress_circuit.Circuit
module Builder = Dstress_circuit.Builder
module Word = Dstress_circuit.Word

let grp = Group.by_name "toy"
let prg tag = Prg.of_string ("test-mpc:" ^ tag)

(* ------------------------------------------------------------------ *)
(* Sharing                                                             *)
(* ------------------------------------------------------------------ *)

let test_share_reconstruct () =
  let t = prg "share" in
  for parties = 1 to 8 do
    let v = Prg.bits t 24 in
    let shares = Sharing.share t ~parties v in
    Alcotest.(check int) "share count" parties (Array.length shares);
    Alcotest.(check bool) "reconstructs" true (Bitvec.equal v (Sharing.reconstruct shares))
  done

let test_share_int () =
  let t = prg "share-int" in
  List.iter
    (fun v ->
      let shares = Sharing.share_int t ~parties:5 ~bits:16 v in
      Alcotest.(check int) "int roundtrip" v (Sharing.reconstruct_int shares))
    [ 0; 1; 1000; 65535 ]

let test_share_hides () =
  (* Any k of k+1 shares XOR to something independent of the secret: with
     the same PRG stream, sharing 0 and sharing v produce identical first
     k shares. *)
  let v = Bitvec.of_int ~bits:16 12345 in
  let zero = Bitvec.of_int ~bits:16 0 in
  let s1 = Sharing.share (prg "hide") ~parties:4 v in
  let s2 = Sharing.share (prg "hide") ~parties:4 zero in
  for i = 0 to 2 do
    Alcotest.(check bool) "prefix shares equal" true (Bitvec.equal s1.(i) s2.(i))
  done

let test_share_bad_parties () =
  Alcotest.check_raises "parties < 1" (Invalid_argument "Sharing.share: parties < 1")
    (fun () -> ignore (Sharing.share (prg "bad") ~parties:0 (Bitvec.create 4 false)))

(* ------------------------------------------------------------------ *)
(* Traffic                                                             *)
(* ------------------------------------------------------------------ *)

let test_traffic_accounting () =
  let t = Traffic.create 3 in
  Traffic.add t ~src:0 ~dst:1 100;
  Traffic.add t ~src:1 ~dst:0 50;
  Traffic.add t ~src:2 ~dst:1 10;
  Alcotest.(check int) "sent by 0" 100 (Traffic.sent_by t 0);
  Alcotest.(check int) "received by 1" 110 (Traffic.received_by t 1);
  Alcotest.(check int) "by node 1" 160 (Traffic.by_node t 1);
  Alcotest.(check int) "total" 160 (Traffic.total t);
  Alcotest.(check int) "max per node" 160 (Traffic.max_per_node t)

let test_traffic_merge_clear () =
  let a = Traffic.create 2 and b = Traffic.create 2 in
  Traffic.add a ~src:0 ~dst:1 5;
  Traffic.add b ~src:0 ~dst:1 7;
  Traffic.merge_into ~dst:a b;
  Alcotest.(check int) "merged" 12 (Traffic.total a);
  Traffic.clear a;
  Alcotest.(check int) "cleared" 0 (Traffic.total a)

let test_traffic_bounds () =
  let t = Traffic.create 2 in
  Alcotest.check_raises "bad party" (Invalid_argument "Traffic.add: party out of range")
    (fun () -> Traffic.add t ~src:0 ~dst:5 1)

let test_traffic_external_row () =
  (* Bytes from outside the party set (the TP's setup download) live on a
     dedicated row: they count as received but are never sent by anyone,
     and the matrix iterator does not visit them. *)
  let t = Traffic.create 3 in
  Traffic.add t ~src:0 ~dst:1 100;
  Traffic.add_external t ~dst:1 40;
  Traffic.add_external t ~dst:2 5;
  Alcotest.(check int) "external to 1" 40 (Traffic.external_to t 1);
  Alcotest.(check int) "external total" 45 (Traffic.external_total t);
  Alcotest.(check int) "received includes external" 140 (Traffic.received_by t 1);
  Alcotest.(check int) "sent excludes external" 0 (Traffic.sent_by t 1);
  Alcotest.(check int) "by_node counts external once" 140 (Traffic.by_node t 1);
  Alcotest.(check int) "total includes external" 145 (Traffic.total t);
  let visited = ref 0 in
  Traffic.iter_nonzero t (fun ~src:_ ~dst:_ _ -> incr visited);
  Alcotest.(check int) "iterator skips external row" 1 !visited;
  let u = Traffic.create 3 in
  Traffic.add_external u ~dst:0 7;
  Traffic.merge_into ~dst:t u;
  Alcotest.(check int) "merge carries external" 52 (Traffic.external_total t);
  Traffic.clear t;
  Alcotest.(check int) "clear resets external" 0 (Traffic.external_total t);
  Alcotest.check_raises "bad external party"
    (Invalid_argument "Traffic.add_external: party out of range") (fun () ->
      Traffic.add_external t ~dst:9 1)

(* ------------------------------------------------------------------ *)
(* GMW vs plaintext evaluation                                         *)
(* ------------------------------------------------------------------ *)

(* Run a circuit both in plaintext and under GMW with [parties] parties,
   and check the reconstructed outputs agree. *)
let gmw_matches_plaintext ?(mode = Dstress_crypto.Ot_ext.Simulation) ~parties circuit inputs =
  let session = Gmw.create_session ~mode grp ~parties ~seed:"match" in
  let input_shares = Gmw.share_input session inputs in
  let out_shares = Gmw.eval session circuit ~input_shares in
  let got = Sharing.reconstruct out_shares in
  let expected =
    Circuit.eval circuit (Array.of_list (Bitvec.to_bool_list inputs)) |> Array.to_list
    |> Bitvec.of_bool_list
  in
  Bitvec.equal got expected

let adder_circuit bits =
  let b = Builder.create () in
  let x = Word.inputs b ~bits in
  let y = Word.inputs b ~bits in
  Builder.finish b ~outputs:(Word.add b x y)

let test_gmw_single_and () =
  let b = Builder.create () in
  let x = Builder.input b and y = Builder.input b in
  let c = Builder.finish b ~outputs:[| Builder.band b x y |] in
  List.iter
    (fun (a, bb) ->
      let inputs = Bitvec.of_bool_list [ a; bb ] in
      Alcotest.(check bool)
        (Printf.sprintf "and %b %b" a bb)
        true
        (gmw_matches_plaintext ~parties:3 c inputs))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_gmw_adder () =
  let c = adder_circuit 8 in
  let t = prg "adder" in
  for _ = 1 to 10 do
    let inputs = Prg.bits t 16 in
    Alcotest.(check bool) "adder matches" true (gmw_matches_plaintext ~parties:3 c inputs)
  done

let test_gmw_adder_crypto_mode () =
  (* Full cryptographic path (real base OTs + SHA hashes), small case. *)
  let c = adder_circuit 4 in
  let inputs = Bitvec.of_int ~bits:8 0b0110_1011 in
  Alcotest.(check bool) "crypto mode matches" true
    (gmw_matches_plaintext ~mode:Dstress_crypto.Ot_ext.Crypto ~parties:2 c inputs)

let test_gmw_many_parties () =
  let c = adder_circuit 6 in
  let t = prg "many" in
  List.iter
    (fun parties ->
      let inputs = Prg.bits t 12 in
      Alcotest.(check bool)
        (Printf.sprintf "%d parties" parties)
        true
        (gmw_matches_plaintext ~parties c inputs))
    [ 2; 4; 8; 12 ]

let test_gmw_multiplier () =
  let b = Builder.create () in
  let x = Word.inputs b ~bits:6 and y = Word.inputs b ~bits:6 in
  let c = Builder.finish b ~outputs:(Word.mul b x y) in
  let t = prg "mul" in
  for _ = 1 to 5 do
    let inputs = Prg.bits t 12 in
    Alcotest.(check bool) "multiplier matches" true (gmw_matches_plaintext ~parties:3 c inputs)
  done

let test_gmw_divider () =
  let b = Builder.create () in
  let x = Word.inputs b ~bits:8 and y = Word.inputs b ~bits:8 in
  let q, r = Word.divmod b x y in
  let c = Builder.finish b ~outputs:(Array.append q r) in
  List.iter
    (fun (a, d) ->
      let inputs = Bitvec.of_int ~bits:16 (a lor (d lsl 8)) in
      Alcotest.(check bool)
        (Printf.sprintf "divide %d/%d" a d)
        true
        (gmw_matches_plaintext ~parties:3 c inputs))
    [ (200, 7); (13, 13); (255, 1); (0, 5) ]

let test_gmw_rounds_equal_depth () =
  let c = adder_circuit 8 in
  let session = Gmw.create_session ~mode:Dstress_crypto.Ot_ext.Simulation grp ~parties:3 ~seed:"depth" in
  let input_shares = Gmw.share_input session (Bitvec.of_int ~bits:16 0xBEEF) in
  ignore (Gmw.eval session c ~input_shares);
  Alcotest.(check int) "rounds = AND depth" (Circuit.and_depth c) (Gmw.rounds session)

let test_gmw_and_count_accounting () =
  let c = adder_circuit 8 in
  let session = Gmw.create_session ~mode:Dstress_crypto.Ot_ext.Simulation grp ~parties:4 ~seed:"acct" in
  let input_shares = Gmw.share_input session (Bitvec.of_int ~bits:16 0x1234) in
  ignore (Gmw.eval session c ~input_shares);
  Alcotest.(check int) "and gates" (Circuit.and_count c) (Gmw.and_gates_evaluated session);
  (* Every AND gate needs one OT per ordered pair: n(n-1). *)
  Alcotest.(check int) "ots" (Circuit.and_count c * 4 * 3) (Gmw.ots_performed session)

let test_gmw_traffic_scales_with_parties () =
  let c = adder_circuit 8 in
  let run parties =
    let session = Gmw.create_session ~mode:Dstress_crypto.Ot_ext.Simulation grp ~parties ~seed:"scale" in
    let input_shares = Gmw.share_input session (Bitvec.of_int ~bits:16 0xCAFE) in
    ignore (Gmw.eval session c ~input_shares);
    Traffic.total (Gmw.traffic session)
  in
  let t3 = run 3 and t6 = run 6 in
  (* Total traffic grows quadratically in the party count. *)
  Alcotest.(check bool) "superlinear growth" true (t6 > 3 * t3)

let test_gmw_outputs_stay_shared () =
  (* No single party's output share should equal the cleartext result in
     general; verify shares differ across parties and reconstruct. *)
  let c = adder_circuit 8 in
  let session = Gmw.create_session ~mode:Dstress_crypto.Ot_ext.Simulation grp ~parties:3 ~seed:"shared" in
  let inputs = Bitvec.of_int ~bits:16 (77 lor (88 lsl 8)) in
  let out_shares = Gmw.eval session c ~input_shares:(Gmw.share_input session inputs) in
  Alcotest.(check int) "reconstruction" ((77 + 88) land 255)
    (Bitvec.to_int (Sharing.reconstruct out_shares))

let test_gmw_reveal_meters () =
  let c = adder_circuit 8 in
  let session = Gmw.create_session ~mode:Dstress_crypto.Ot_ext.Simulation grp ~parties:3 ~seed:"reveal" in
  let inputs = Bitvec.of_int ~bits:16 (1 lor (2 lsl 8)) in
  let out_shares = Gmw.eval session c ~input_shares:(Gmw.share_input session inputs) in
  Gmw.reset_traffic session;
  let v = Gmw.reveal session out_shares in
  Alcotest.(check int) "revealed value" 3 (Bitvec.to_int v);
  Alcotest.(check int) "broadcast bytes" (3 * 2 * 1) (Traffic.total (Gmw.traffic session))

let test_gmw_input_shape_errors () =
  let c = adder_circuit 4 in
  let session = Gmw.create_session ~mode:Dstress_crypto.Ot_ext.Simulation grp ~parties:3 ~seed:"err" in
  Alcotest.check_raises "wrong party count"
    (Invalid_argument "Gmw.eval: need one input share vector per party") (fun () ->
      ignore (Gmw.eval session c ~input_shares:[| Bitvec.create 8 false |]));
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Gmw.eval: input share length mismatch") (fun () ->
      ignore
        (Gmw.eval session c
           ~input_shares:(Array.make 3 (Bitvec.create 5 false))))

let test_gmw_rejects_one_party () =
  Alcotest.check_raises "parties < 2" (Invalid_argument "Gmw.create_session: parties < 2")
    (fun () -> ignore (Gmw.create_session grp ~parties:1 ~seed:"x"))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_gmw_adder =
  QCheck2.Test.make ~name:"gmw adder matches plaintext" ~count:20
    QCheck2.Gen.(pair (int_bound 255) (int_bound 255))
    (fun (a, b) ->
      let c = adder_circuit 8 in
      let inputs = Bitvec.of_int ~bits:16 (a lor (b lsl 8)) in
      gmw_matches_plaintext ~parties:3 c inputs)

let prop_gmw_comparator =
  QCheck2.Test.make ~name:"gmw comparator matches plaintext" ~count:20
    QCheck2.Gen.(pair (int_bound 255) (int_bound 255))
    (fun (a, b) ->
      let bld = Builder.create () in
      let x = Word.inputs bld ~bits:8 and y = Word.inputs bld ~bits:8 in
      let c = Builder.finish bld ~outputs:[| Word.lt bld x y |] in
      let inputs = Bitvec.of_int ~bits:16 (a lor (b lsl 8)) in
      gmw_matches_plaintext ~parties:4 c inputs)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_gmw_adder; prop_gmw_comparator ] in
  Alcotest.run "mpc"
    [
      ( "sharing",
        [
          Alcotest.test_case "share/reconstruct" `Quick test_share_reconstruct;
          Alcotest.test_case "share int" `Quick test_share_int;
          Alcotest.test_case "prefix hides secret" `Quick test_share_hides;
          Alcotest.test_case "bad party count" `Quick test_share_bad_parties;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "accounting" `Quick test_traffic_accounting;
          Alcotest.test_case "merge/clear" `Quick test_traffic_merge_clear;
          Alcotest.test_case "bounds" `Quick test_traffic_bounds;
          Alcotest.test_case "external row" `Quick test_traffic_external_row;
        ] );
      ( "gmw",
        [
          Alcotest.test_case "single AND" `Quick test_gmw_single_and;
          Alcotest.test_case "adder" `Quick test_gmw_adder;
          Alcotest.test_case "adder (crypto mode)" `Quick test_gmw_adder_crypto_mode;
          Alcotest.test_case "many parties" `Quick test_gmw_many_parties;
          Alcotest.test_case "multiplier" `Quick test_gmw_multiplier;
          Alcotest.test_case "divider" `Quick test_gmw_divider;
          Alcotest.test_case "rounds = depth" `Quick test_gmw_rounds_equal_depth;
          Alcotest.test_case "and/ot accounting" `Quick test_gmw_and_count_accounting;
          Alcotest.test_case "traffic scales" `Quick test_gmw_traffic_scales_with_parties;
          Alcotest.test_case "outputs stay shared" `Quick test_gmw_outputs_stay_shared;
          Alcotest.test_case "reveal meters" `Quick test_gmw_reveal_meters;
          Alcotest.test_case "input shape errors" `Quick test_gmw_input_shape_errors;
          Alcotest.test_case "rejects one party" `Quick test_gmw_rejects_one_party;
        ] );
      ("properties", qsuite);
    ]
