(* Live service telemetry: quantile sketches, structured logging,
   request tracing and the Stats admin endpoint.

   Layers under test:

   - Sketch: DDSketch-style log-bucketed quantile histograms — exact
     count/total/min/max, bounded relative error on quantiles (qcheck
     against the exact order statistic), and lossless merging (a merge
     of two sketches is bucket-identical to a sketch of the
     concatenated stream, hence associative and commutative);
   - Log: leveled filtering, the bounded ring (eviction, total/dropped,
     oldest-first tail), deterministic logfmt rendering under an
     injected clock, and sink delivery;
   - Metrics: the Quantiles kind — observe_sketch/sketch accessors,
     merge semantics and the percentile-aware CSV/JSON row shapes;
   - Stats codec: JSON round-trip of a hand-built snapshot plus golden
     files for the JSON document and the Prometheus text exposition. To
     regenerate after an intentional change, run (from the repo root):

       DSTRESS_REGEN_GOLDEN=$PWD/test/golden dune exec test/test_telemetry.exe

     and commit the updated stats_snapshot.{json,prom};
   - pool: end-to-end stats over a live pool (counters, latency
     sketches, worker states, queue gauges), per-request trace IDs on
     every log line, and the slow-request warning;
   - wire: fetch_stats against a forked responder process;
   - differential: tick-domain engine exports are byte-identical across
     sequential / distributed / parallel executors whether pool logging
     is off or on at Debug.

   Fork-before-domain ordering: the pool/wire suites fork, and the
   differential suite runs its distributed (forking) cases before its
   parallel (domain-spawning) case, which is the last fork-relevant
   test in the binary. *)

module Prng = Dstress_util.Prng
module Group = Dstress_crypto.Group
module Fault = Dstress_faults.Fault
module Obs = Dstress_obs.Obs
module Metrics = Dstress_obs.Obs.Metrics
module Sketch = Dstress_obs.Sketch
module Log = Dstress_obs.Log
module Json = Dstress_obs.Json
module En_program = Dstress_risk.En_program
module Topology = Dstress_graphgen.Topology
module Banking = Dstress_graphgen.Banking
open Dstress_runtime

let grp = Group.by_name "toy"

(* ------------------------------------------------------------------ *)
(* Sketch: accuracy and merging                                        *)
(* ------------------------------------------------------------------ *)

let exact_quantile sorted q =
  let n = Array.length sorted in
  sorted.(int_of_float (q *. float_of_int (n - 1)))

let check_relative_error ~alpha values q est =
  let sorted = Array.of_list values in
  Array.sort compare sorted;
  let exact = exact_quantile sorted q in
  (* DDSketch guarantee: the estimate lies within alpha relative error
     of *some* sample rank-adjacent to the target; against the exact
     order statistic a small slack on top of alpha covers bucket
     boundary ties. *)
  let tol = (alpha +. 1e-9) *. Float.max (Float.abs exact) 1e-12 in
  Float.abs (est -. exact) <= tol

let test_sketch_basics () =
  let s = Sketch.create () in
  Alcotest.(check bool) "fresh sketch is empty" true (Sketch.is_empty s);
  Alcotest.(check bool) "empty quantile is None" true (Sketch.quantile s 0.5 = None);
  Alcotest.(check (float 0.0)) "empty quantile_or default" 7.0
    (Sketch.quantile_or ~default:7.0 s 0.5);
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (Sketch.mean s);
  for i = 1 to 1000 do
    Sketch.add s (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Sketch.count s);
  Alcotest.(check (float 1e-9)) "total is exact" 500500.0 (Sketch.total s);
  Alcotest.(check (float 0.0)) "min is exact" 1.0 (Sketch.min_value s);
  Alcotest.(check (float 0.0)) "max is exact" 1000.0 (Sketch.max_value s);
  let values = List.init 1000 (fun i -> float_of_int (i + 1)) in
  List.iter
    (fun q ->
      let est = Sketch.quantile_or ~default:nan s q in
      Alcotest.(check bool)
        (Printf.sprintf "p%g within alpha" (q *. 100.))
        true
        (check_relative_error ~alpha:(Sketch.alpha s) values q est))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ];
  (match Sketch.quantile s 1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "quantile beyond [0,1] must raise");
  (* Non-finite values are ignored; zero and negatives go to the zero
     bucket rather than the log scale. *)
  let z = Sketch.create () in
  Sketch.add z nan;
  Sketch.add z infinity;
  Alcotest.(check bool) "non-finite ignored" true (Sketch.is_empty z);
  Sketch.add z 0.0;
  Sketch.add z (-3.0);
  Alcotest.(check int) "zero bucket counted" 2 (Sketch.count z);
  Alcotest.(check (float 0.0)) "zero-bucket quantile" 0.0
    (Sketch.quantile_or ~default:nan z 0.5)

let positive_values_arb =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 200)
        (map (fun (m, e) -> Float.abs m *. (10.0 ** float_of_int e))
           (pair (float_range 0.1 10.0) (int_range (-5) 6))))
  in
  QCheck.make
    ~print:(fun vs -> String.concat "," (List.map string_of_float vs))
    gen

let sketch_of values =
  let s = Sketch.create () in
  List.iter (Sketch.add s) values;
  s

let sketch_equal a b =
  Sketch.count a = Sketch.count b
  && Sketch.buckets a = Sketch.buckets b
  && Float.abs (Sketch.total a -. Sketch.total b) <= 1e-9 *. (1.0 +. Float.abs (Sketch.total a))
  && Sketch.min_value a = Sketch.min_value b
  && Sketch.max_value a = Sketch.max_value b

let test_sketch_merge_misc () =
  let a = sketch_of [ 1.0; 2.0 ] in
  let b = sketch_of [ 3.0 ] in
  let c = Sketch.merge a b in
  Alcotest.(check int) "merge is a copy" 2 (Sketch.count a);
  Alcotest.(check int) "merged count" 3 (Sketch.count c);
  Sketch.merge_into ~dst:a (Sketch.create ());
  Alcotest.(check int) "merging empty is a no-op" 2 (Sketch.count a);
  (match Sketch.merge_into ~dst:a (Sketch.create ~alpha:0.05 ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "alpha mismatch must raise")

(* ------------------------------------------------------------------ *)
(* Log: levels, ring, rendering                                        *)
(* ------------------------------------------------------------------ *)

let test_log_levels_and_ring () =
  let log = Log.create ~level:Log.Info ~capacity:4 ~clock:(fun () -> 1.0) () in
  Alcotest.(check bool) "info enabled" true (Log.enabled log Log.Info);
  Alcotest.(check bool) "debug filtered" false (Log.enabled log Log.Debug);
  Log.debug log "invisible" [];
  Alcotest.(check int) "filtered events not counted" 0 (Log.total log);
  for i = 1 to 6 do
    Log.info log (Printf.sprintf "m%d" i) []
  done;
  Alcotest.(check int) "total counts accepted" 6 (Log.total log);
  Alcotest.(check int) "eviction counted" 2 (Log.dropped log);
  Alcotest.(check (list string)) "tail is oldest-first, bounded by ring"
    [ "m3"; "m4"; "m5"; "m6" ]
    (List.map (fun (e : Log.event) -> e.Log.msg) (Log.tail log));
  Alcotest.(check (list string)) "tail ~max keeps newest"
    [ "m5"; "m6" ]
    (List.map (fun (e : Log.event) -> e.Log.msg) (Log.tail ~max:2 log));
  Log.set_level log Log.Error;
  Log.warn log "now filtered" [];
  Alcotest.(check int) "set_level tightens" 6 (Log.total log);
  (* The shared nop logger records nothing and ignores set_level. *)
  Log.set_level Log.nop Log.Debug;
  Log.error Log.nop "void" [];
  Alcotest.(check bool) "nop never enables" false (Log.enabled Log.nop Log.Error);
  Alcotest.(check int) "nop records nothing" 0 (Log.total Log.nop);
  Alcotest.(check bool) "level_of_string warning" true
    (Log.level_of_string "warning" = Some Log.Warn)

let test_log_render_golden () =
  let sunk = ref [] in
  let log =
    Log.create ~level:Log.Debug ~clock:(fun () -> 1234.5) ~sink:(fun e -> sunk := e :: !sunk) ()
  in
  Log.info log "request finished"
    [ ("id", Log.Int 3); ("outcome", Log.Str "completed"); ("seconds", Log.Float 0.25) ];
  Log.warn log ~trace:0xbeefL "slow request"
    [ ("quoted", Log.Str "a \"b\"\nc\\d"); ("live", Log.Bool true) ];
  (match List.rev !sunk |> List.map Log.render with
  | [ first; second ] ->
      Alcotest.(check string) "plain line"
        "ts=1234.500000 level=info msg=\"request finished\" id=3 outcome=\"completed\" seconds=0.25"
        first;
      Alcotest.(check string) "traced line with escapes"
        "ts=1234.500000 level=warn trace=beef msg=\"slow request\" quoted=\"a \\\"b\\\"\\nc\\\\d\" live=true"
        second
  | evs -> Alcotest.failf "sink saw %d events, wanted 2" (List.length evs));
  let json = Json.to_string (Log.to_json (List.nth (Log.tail log) 1)) in
  Alcotest.(check string) "event json"
    "{\"ts\":1234.5,\"level\":\"warn\",\"msg\":\"slow request\",\"trace\":\"beef\",\
     \"fields\":{\"quoted\":\"a \\\"b\\\"\\nc\\\\d\",\"live\":true}}"
    json

let test_log_sink_failure_swallowed () =
  let log = Log.create ~level:Log.Info ~sink:(fun _ -> failwith "bad sink") () in
  Log.info log "survives" [];
  Alcotest.(check int) "event still recorded" 1 (Log.total log)

(* ------------------------------------------------------------------ *)
(* Metrics: the Quantiles kind                                         *)
(* ------------------------------------------------------------------ *)

let test_metrics_quantiles () =
  let m = Metrics.create () in
  List.iter (Metrics.observe_sketch m "lat") [ 0.5; 1.0; 2.0; 4.0 ];
  (match Metrics.sketch m "lat" with
  | Some s -> Alcotest.(check int) "sketch accessor" 4 (Sketch.count s)
  | None -> Alcotest.fail "sketch must exist");
  Alcotest.(check bool) "absent sketch is None" true (Metrics.sketch m "nope" = None);
  (match Metrics.observe m "lat" 1.0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "kind mixing must raise");
  (* merge_into copies, so mutating the source later must not leak. *)
  let dst = Metrics.create () in
  Metrics.merge_into ~dst m;
  Metrics.observe_sketch m "lat" 100.0;
  (match Metrics.sketch dst "lat" with
  | Some s -> Alcotest.(check int) "merge copied the sketch" 4 (Sketch.count s)
  | None -> Alcotest.fail "merged sketch must exist");
  Metrics.merge_into ~dst m;
  (match Metrics.sketch dst "lat" with
  | Some s -> Alcotest.(check int) "second merge folds in" 9 (Sketch.count s)
  | None -> Alcotest.fail "merged sketch must exist")

let test_metrics_quantiles_rows () =
  let m = Metrics.create () in
  List.iter (Metrics.observe_sketch m "q") [ 1.0; 2.0; 4.0 ];
  Metrics.incr m "c";
  let csv = Metrics.to_csv m in
  Alcotest.(check bool) "csv row is percentile-aware" true
    (let lines = String.split_on_char '\n' csv in
     List.exists
       (fun l ->
         String.length l > 2
         && String.sub l 0 2 = "q,"
         && List.for_all
              (fun key ->
                let rec contains i =
                  i + String.length key <= String.length l
                  && (String.sub l i (String.length key) = key || contains (i + 1))
                in
                contains 0)
              [ "quantiles"; "count=3"; "total=7"; "p50="; "p90="; "p99=" ])
       lines);
  match Json.member "q" (Metrics.to_json m) with
  | Some j ->
      List.iter
        (fun key ->
          Alcotest.(check bool) ("json has " ^ key) true (Json.member key j <> None))
        [ "count"; "total"; "mean"; "min"; "max"; "p50"; "p90"; "p99" ]
  | None -> Alcotest.fail "sketch missing from metrics json"

(* ------------------------------------------------------------------ *)
(* Stats codec: round-trip and goldens                                 *)
(* ------------------------------------------------------------------ *)

let fixture_stats =
  {
    Service.uptime_s = 12.5;
    queue_depth = 1;
    queue_high_water = 3;
    queue_capacity = 64;
    workers =
      [
        {
          Service.w_slot = 0;
          w_pid = 4242;
          w_state = "busy";
          w_epoch = 2;
          w_respawns = 1;
          w_trace = 0x2aL;
        };
        {
          Service.w_slot = 1;
          w_pid = 4243;
          w_state = "idle";
          w_epoch = 1;
          w_respawns = 0;
          w_trace = 0L;
        };
      ];
    counters =
      [
        ("service.requests_completed", 7);
        ("service.requests_enqueued", 9);
        ("transport.frames_sent", 40);
      ];
    latencies =
      [
        ( "service.request_s",
          {
            Service.l_count = 7;
            l_total = 3.5;
            l_mean = 0.5;
            l_min = 0.125;
            l_max = 1.25;
            l_p50 = 0.5;
            l_p90 = 1.0;
            l_p99 = 1.25;
          } );
      ];
    log_tail = [ "ts=1.000000 level=info msg=\"worker spawned\" pid=4242" ];
  }

let test_stats_roundtrip () =
  let bytes = Service.encode_stats fixture_stats in
  (match Service.decode_stats bytes with
  | Ok st -> Alcotest.(check bool) "wire round-trip" true (st = fixture_stats)
  | Error m -> Alcotest.failf "decode failed: %s" m);
  (match Service.decode_stats (Bytes.of_string "not json") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not decode");
  match
    Service.stats_of_json
      (Json.Obj [ ("schema", Json.Str "dstress-stats/999") ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong schema must not decode"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_golden ~name current =
  match Sys.getenv_opt "DSTRESS_REGEN_GOLDEN" with
  | Some dir ->
      let path = Filename.concat dir name in
      let oc = open_out_bin path in
      output_string oc current;
      close_out oc;
      Printf.printf "regenerated %s\n" path
  | None ->
      (* Under `dune runtest` the cwd is the test directory (the dune
         [deps] copy); under a bare `dune exec` it is the repo root. *)
      let dir = if Sys.file_exists "golden" then "golden" else "test/golden" in
      let expected = read_file (Filename.concat dir name) in
      if String.trim expected = "" then
        Alcotest.fail "golden file is the placeholder; regenerate it (see header)"
      else Alcotest.(check string) name expected current

let test_stats_golden_json () =
  check_golden ~name:"stats_snapshot.json"
    (Json.to_string (Service.stats_to_json fixture_stats))

let test_stats_golden_prometheus () =
  check_golden ~name:"stats_snapshot.prom" (Service.stats_prometheus fixture_stats)

(* ------------------------------------------------------------------ *)
(* Pool: live stats, tracing, slow requests                            *)
(* ------------------------------------------------------------------ *)

let tiny_summary =
  {
    Service.output = 7;
    mpc_rounds = 1;
    mpc_and_gates = 2;
    mpc_ots = 3;
    trace = "{}";
    metrics = "{}";
  }

let tiny_request =
  {
    Service.workload = Service.En;
    core = 2;
    periphery = 2;
    iterations = 1;
    k = 2;
    seed = 1;
    slice_width = 64;
    ot_mode = Dstress_crypto.Ot_ext.Simulation;
    preprocess = false;
    executor = "";
  }

let pool_opts =
  { Service.default_pool_opts with Service.workers = 2; poll_interval = 0.02 }

(* Parent-side events only: worker processes log into their own forked
   copy of the ring. The sink runs under the log mutex, on the pool's
   own thread. *)
let collecting_log ?(level = Log.Debug) () =
  let events = ref [] in
  let log = Log.create ~level ~sink:(fun e -> events := e :: !events) () in
  (log, fun () -> List.rev !events)

let submit_n pool n =
  let pending = ref n in
  for _ = 1 to n do
    match Service.submit pool tiny_request (fun _ -> decr pending) with
    | `Queued -> ()
    | `Queue_full | `No_workers -> Alcotest.fail "submit rejected"
  done;
  let until = Unix.gettimeofday () +. 60.0 in
  while !pending > 0 && Unix.gettimeofday () < until do
    Service.pool_step pool ~timeout:0.05
  done;
  Alcotest.(check int) "all requests resolved" 0 !pending

let test_pool_stats_end_to_end () =
  let log, events = collecting_log () in
  let pool = Service.create_pool ~opts:pool_opts ~log ~handler:(fun _ -> tiny_summary) () in
  submit_n pool 3;
  let st = Service.pool_stats pool in
  Alcotest.(check bool) "uptime advanced" true (st.Service.uptime_s > 0.0);
  Alcotest.(check int) "queue drained" 0 st.Service.queue_depth;
  Alcotest.(check bool) "high water observed" true (st.Service.queue_high_water >= 1);
  Alcotest.(check int) "capacity echoed" pool_opts.Service.queue_depth
    st.Service.queue_capacity;
  Alcotest.(check int) "one stat per slot" 2 (List.length st.Service.workers);
  List.iter
    (fun w ->
      Alcotest.(check string) "worker idle after drain" "idle" w.Service.w_state;
      Alcotest.(check bool) "live pid" true (w.Service.w_pid > 0);
      Alcotest.(check int) "no respawns" 0 w.Service.w_respawns)
    st.Service.workers;
  Alcotest.(check int) "completed counter" 3
    (List.assoc "service.requests_completed" st.Service.counters);
  Alcotest.(check int) "enqueued counter" 3
    (List.assoc "service.requests_enqueued" st.Service.counters);
  let lat = List.assoc "service.request_s" st.Service.latencies in
  Alcotest.(check int) "latency count" 3 lat.Service.l_count;
  Alcotest.(check bool) "nonzero quantiles" true
    (lat.Service.l_p50 > 0.0 && lat.Service.l_p99 >= lat.Service.l_p50);
  Alcotest.(check bool) "queue-wait sketch present" true
    (List.mem_assoc "service.queue_wait_s" st.Service.latencies);
  Alcotest.(check bool) "dispatch sketch present" true
    (List.mem_assoc "service.dispatch_s" st.Service.latencies);
  Alcotest.(check bool) "log tail populated" true (st.Service.log_tail <> []);
  Alcotest.(check bool) "pool_log is the given logger" true (Service.pool_log pool == log);
  (* Every request got a distinct nonzero trace, stamped on its whole
     lifecycle: enqueue, dispatch and finish lines share it. *)
  let evs = events () in
  let traces_of msg =
    List.filter_map
      (fun (e : Log.event) -> if e.Log.msg = msg then Some e.Log.trace else None)
      evs
    |> List.sort_uniq compare
  in
  let enqueued = traces_of "request enqueued" in
  Alcotest.(check int) "three distinct enqueue traces" 3 (List.length enqueued);
  Alcotest.(check bool) "traces are nonzero" true (List.for_all (fun t -> t <> 0L) enqueued);
  Alcotest.(check (list int64)) "dispatch traces match" enqueued
    (traces_of "request dispatched");
  Alcotest.(check (list int64)) "finish traces match" enqueued
    (traces_of "request finished");
  Service.shutdown_pool pool;
  let st = Service.pool_stats pool in
  Alcotest.(check bool) "stats still snapshot after shutdown" true
    (List.assoc "service.requests_completed" st.Service.counters = 3)

let test_pool_slow_request_logged () =
  let log, events = collecting_log ~level:Log.Warn () in
  let opts = { pool_opts with Service.slow_request_s = 0.0 } in
  let pool = Service.create_pool ~opts ~log ~handler:(fun _ -> tiny_summary) () in
  submit_n pool 1;
  let slow =
    List.filter
      (fun (e : Log.event) -> e.Log.level = Log.Warn && e.Log.msg = "slow request")
      (events ())
  in
  Alcotest.(check int) "slow-request warning emitted" 1 (List.length slow);
  List.iter
    (fun (e : Log.event) ->
      Alcotest.(check bool) "slow line is traced" true (e.Log.trace <> 0L))
    slow;
  Service.shutdown_pool pool

(* ------------------------------------------------------------------ *)
(* Wire: fetch_stats against a forked responder                        *)
(* ------------------------------------------------------------------ *)

let test_fetch_stats_wire () =
  let client, server = Transport.pair () in
  match Unix.fork () with
  | 0 ->
      (* Child: answer exactly one Stats admin request, as drain_client
         does, then vanish without running the parent's at_exit. *)
      let code =
        match Transport.recv server ~timeout:10.0 with
        | Some fr when fr.Transport.kind = Transport.Kind.stats ->
            ignore
              (Transport.send server ~kind:Transport.Kind.stats_reply ~epoch:0
                 (Service.encode_stats fixture_stats));
            0
        | _ -> 1
      in
      Unix._exit code
  | pid ->
      let st = Service.fetch_stats ~timeout:10.0 client in
      Alcotest.(check bool) "snapshot survives the wire" true (st = fixture_stats);
      let _, status = Unix.waitpid [] pid in
      Alcotest.(check bool) "responder exited cleanly" true (status = Unix.WEXITED 0);
      Transport.close client;
      Transport.close server

(* ------------------------------------------------------------------ *)
(* Differential: logging must not touch tick-domain exports            *)
(* ------------------------------------------------------------------ *)

let en_fixture () =
  let prng = Prng.of_int 0x7E1 in
  let topo = Topology.core_periphery prng ~core:2 ~periphery:2 () in
  let inst = Banking.en_of_topology prng topo () in
  let graph = En_program.graph_of_instance inst in
  let d = max 1 (Graph.max_degree graph) in
  let p = En_program.make ~l:12 ~degree:d ~iterations:2 () in
  let states = En_program.encode_instance inst ~graph ~l:12 ~degree:d ~scale:0.25 in
  (graph, d, p, states)

let run_with ~executor (graph, d, p, states) =
  let cfg =
    { (Engine.default_config grp ~k:2 ~degree_bound:d ~seed:"telemetry-diff") with
      Engine.executor;
      obs_level = Obs.Full;
    }
  in
  Engine.run cfg p ~graph ~initial_states:states

let check_exports_equal label (a : Engine.report) (b : Engine.report) =
  Alcotest.(check int) (label ^ ": output") a.Engine.output b.Engine.output;
  Alcotest.(check string) (label ^ ": trace bytes") (Obs.trace_json a.Engine.obs)
    (Obs.trace_json b.Engine.obs);
  Alcotest.(check string) (label ^ ": metrics bytes") (Obs.metrics_json a.Engine.obs)
    (Obs.metrics_json b.Engine.obs);
  Alcotest.(check string) (label ^ ": metrics csv") (Obs.metrics_csv a.Engine.obs)
    (Obs.metrics_csv b.Engine.obs)

let dist_opts = { Distributed.default_opts with Distributed.workers = 2 }

let test_differential_logging () =
  let fx = en_fixture () in
  let seq = run_with ~executor:Executor.sequential fx in
  (* Forking backends first (fork-before-domain), parallel last. *)
  let dist_off =
    run_with ~executor:(Executor.Distributed { ctx = Distributed.create ~opts:dist_opts () }) fx
  in
  check_exports_equal "distributed, logging off" seq dist_off;
  let log, events = collecting_log () in
  let dist_on =
    run_with
      ~executor:(Executor.Distributed { ctx = Distributed.create ~opts:dist_opts ~log () })
      fx
  in
  check_exports_equal "distributed, logging on at debug" seq dist_on;
  Alcotest.(check bool) "the logger actually saw pool events" true (events () <> []);
  let par = run_with ~executor:(Executor.parallel ~jobs:3) fx in
  check_exports_equal "parallel" seq par

(* ------------------------------------------------------------------ *)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "telemetry"
    [
      ( "sketch",
        [
          Alcotest.test_case "basics and accuracy" `Quick test_sketch_basics;
          Alcotest.test_case "merge misc" `Quick test_sketch_merge_misc;
        ]
        @ qsuite
            [
              QCheck.Test.make ~count:200 ~name:"quantiles within relative error"
                positive_values_arb (fun values ->
                  let s = Sketch.create () in
                  List.iter (Sketch.add s) values;
                  List.for_all
                    (fun q ->
                      check_relative_error ~alpha:(Sketch.alpha s) values q
                        (Sketch.quantile_or ~default:nan s q))
                    [ 0.0; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ]);
              QCheck.Test.make ~count:100
                ~name:"merge associates and matches the stream"
                QCheck.(triple positive_values_arb positive_values_arb positive_values_arb)
                (fun (xs, ys, zs) ->
                  let merged_lr =
                    Sketch.merge (Sketch.merge (sketch_of xs) (sketch_of ys)) (sketch_of zs)
                  in
                  let merged_rl =
                    Sketch.merge (sketch_of xs) (Sketch.merge (sketch_of ys) (sketch_of zs))
                  in
                  let direct = sketch_of (xs @ ys @ zs) in
                  sketch_equal merged_lr direct && sketch_equal merged_rl direct);
            ] );
      ( "log",
        [
          Alcotest.test_case "levels and ring" `Quick test_log_levels_and_ring;
          Alcotest.test_case "render golden" `Quick test_log_render_golden;
          Alcotest.test_case "sink failure swallowed" `Quick test_log_sink_failure_swallowed;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "quantiles kind" `Quick test_metrics_quantiles;
          Alcotest.test_case "csv and json rows" `Quick test_metrics_quantiles_rows;
        ] );
      ( "stats codec",
        [
          Alcotest.test_case "wire round-trip" `Quick test_stats_roundtrip;
          Alcotest.test_case "golden json" `Quick test_stats_golden_json;
          Alcotest.test_case "golden prometheus" `Quick test_stats_golden_prometheus;
        ] );
      ( "pool",
        [
          Alcotest.test_case "stats end to end" `Quick test_pool_stats_end_to_end;
          Alcotest.test_case "slow request logged" `Quick test_pool_slow_request_logged;
        ] );
      ( "wire",
        [ Alcotest.test_case "fetch_stats round-trip" `Quick test_fetch_stats_wire ] );
      ( "differential",
        [
          Alcotest.test_case "exports byte-identical with logging on" `Quick
            test_differential_logging;
        ] );
    ]
