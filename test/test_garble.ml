(* Yao garbled circuits vs plaintext circuit evaluation. *)

module Bitvec = Dstress_util.Bitvec
module Prng = Dstress_util.Prng
module Group = Dstress_crypto.Group
module Garble = Dstress_crypto.Garble
module Xfer = Dstress_crypto.Xfer
module Ot_ext = Dstress_crypto.Ot_ext
module Circuit = Dstress_circuit.Circuit
module Builder = Dstress_circuit.Builder
module Word = Dstress_circuit.Word

let grp = Group.by_name "toy"

let run_both ?(mode = Ot_ext.Simulation) ?(seed = "tg") circuit ~garbler_bits inputs =
  let n = circuit.Circuit.num_inputs in
  let garbler_input = Bitvec.sub inputs ~pos:0 ~len:garbler_bits in
  let evaluator_input = Bitvec.sub inputs ~pos:garbler_bits ~len:(n - garbler_bits) in
  let meter = Xfer.create () in
  let r =
    Garble.execute ~mode grp meter circuit ~garbler_bits ~garbler_input ~evaluator_input
      ~seed
  in
  let expected =
    Bitvec.of_bool_array (Circuit.eval circuit (Bitvec.to_bool_array inputs))
  in
  (r, expected, meter)

let adder bits =
  let b = Builder.create () in
  let x = Word.inputs b ~bits and y = Word.inputs b ~bits in
  Builder.finish b ~outputs:(Word.add b x y)

let test_single_gates () =
  (* AND, XOR, NOT in one circuit, over every input combination. *)
  let b = Builder.create () in
  let x = Builder.input b and y = Builder.input b in
  let c =
    Builder.finish b
      ~outputs:[| Builder.band b x y; Builder.bxor b x y; Builder.bnot b x |]
  in
  List.iter
    (fun (a, bb) ->
      let inputs = Bitvec.of_bool_list [ a; bb ] in
      let r, expected, _ = run_both c ~garbler_bits:1 inputs in
      Alcotest.(check bool)
        (Printf.sprintf "gates (%b,%b)" a bb)
        true
        (Bitvec.equal r.Garble.output expected))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_adder_matches () =
  let c = adder 8 in
  let t = Prng.of_int 0x6A4 in
  for _ = 1 to 10 do
    let inputs = Bitvec.random t 16 in
    let r, expected, _ = run_both c ~garbler_bits:8 inputs in
    Alcotest.(check bool) "adder" true (Bitvec.equal r.Garble.output expected)
  done

let test_divider_matches () =
  let b = Builder.create () in
  let x = Word.inputs b ~bits:8 and y = Word.inputs b ~bits:8 in
  let q, rem = Word.divmod b x y in
  let c = Builder.finish b ~outputs:(Array.append q rem) in
  List.iter
    (fun (a, d) ->
      let inputs = Bitvec.of_int ~bits:16 (a lor (d lsl 8)) in
      let r, expected, _ = run_both c ~garbler_bits:8 inputs in
      Alcotest.(check bool)
        (Printf.sprintf "div %d/%d" a d)
        true
        (Bitvec.equal r.Garble.output expected))
    [ (200, 7); (255, 255); (13, 1) ]

let test_input_split_boundaries () =
  (* All inputs on one side or the other. *)
  let c = adder 6 in
  let t = Prng.of_int 0x6A5 in
  let inputs = Bitvec.random t 12 in
  List.iter
    (fun garbler_bits ->
      let r, expected, _ = run_both c ~garbler_bits inputs in
      Alcotest.(check bool)
        (Printf.sprintf "split %d" garbler_bits)
        true
        (Bitvec.equal r.Garble.output expected))
    [ 0; 12; 5 ]

let test_crypto_mode () =
  let c = adder 4 in
  let inputs = Bitvec.of_int ~bits:8 0b1011_0110 in
  let r, expected, _ = run_both ~mode:Ot_ext.Crypto c ~garbler_bits:4 inputs in
  Alcotest.(check bool) "crypto backend" true (Bitvec.equal r.Garble.output expected)

let test_free_xor_costs_nothing () =
  (* A circuit of XORs only ships zero tables. *)
  let b = Builder.create () in
  let x = Word.inputs b ~bits:16 and y = Word.inputs b ~bits:16 in
  let c = Builder.finish b ~outputs:(Word.logxor b x y) in
  let inputs = Bitvec.of_int ~bits:32 0xDEAD in
  let r, expected, _ = run_both c ~garbler_bits:16 inputs in
  Alcotest.(check bool) "xor result" true (Bitvec.equal r.Garble.output expected);
  Alcotest.(check int) "no tables" 0 r.Garble.and_tables

let test_table_count_equals_and_count () =
  let c = adder 8 in
  let inputs = Bitvec.of_int ~bits:16 0x1234 in
  let r, _, _ = run_both c ~garbler_bits:8 inputs in
  Alcotest.(check int) "tables = ANDs" (Circuit.and_count c) r.Garble.and_tables;
  Alcotest.(check int) "table bytes" (4 * Garble.label_bytes * Circuit.and_count c)
    r.Garble.table_bytes

let test_traffic_metered () =
  let c = adder 8 in
  let inputs = Bitvec.of_int ~bits:16 0xBEEF in
  let r, _, meter = run_both c ~garbler_bits:8 inputs in
  (* Garbler sends at least the tables + its labels. *)
  Alcotest.(check bool) "g->e covers tables" true
    (Xfer.a_to_b meter >= r.Garble.table_bytes + (8 * Garble.label_bytes));
  Alcotest.(check bool) "e->g only OT" true (Xfer.b_to_a meter > 0)

let test_bad_widths_rejected () =
  let c = adder 4 in
  Alcotest.check_raises "bad garbler width"
    (Invalid_argument "Garble.execute: garbler input width") (fun () ->
      ignore
        (Garble.execute grp (Xfer.create ()) c ~garbler_bits:4
           ~garbler_input:(Bitvec.create 2 false)
           ~evaluator_input:(Bitvec.create 4 false) ~seed:"x"))

let prop_garble_matches_plaintext =
  QCheck2.Test.make ~name:"garbled output = plaintext" ~count:25
    QCheck2.Gen.(triple (int_bound 255) (int_bound 255) (int_bound 100000))
    (fun (a, b, seed) ->
      let c =
        let bld = Builder.create () in
        let x = Word.inputs bld ~bits:8 and y = Word.inputs bld ~bits:8 in
        let product = Word.mul_truncated bld x y ~bits:8 in
        let lt = Word.lt bld x y in
        Builder.finish bld ~outputs:(Array.append product [| lt |])
      in
      let inputs = Bitvec.of_int ~bits:16 (a lor (b lsl 8)) in
      let r, expected, _ =
        run_both ~seed:(string_of_int seed) c ~garbler_bits:8 inputs
      in
      Bitvec.equal r.Garble.output expected)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_garble_matches_plaintext ] in
  Alcotest.run "garble"
    [
      ( "correctness",
        [
          Alcotest.test_case "single gates" `Quick test_single_gates;
          Alcotest.test_case "adder" `Quick test_adder_matches;
          Alcotest.test_case "divider" `Quick test_divider_matches;
          Alcotest.test_case "input splits" `Quick test_input_split_boundaries;
          Alcotest.test_case "crypto mode" `Quick test_crypto_mode;
        ] );
      ( "cost",
        [
          Alcotest.test_case "free XOR" `Quick test_free_xor_costs_nothing;
          Alcotest.test_case "tables = ANDs" `Quick test_table_count_equals_and_count;
          Alcotest.test_case "traffic metered" `Quick test_traffic_metered;
        ] );
      ("validation", [ Alcotest.test_case "bad widths" `Quick test_bad_widths_rejected ]);
      ("properties", qsuite);
    ]
