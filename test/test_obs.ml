(* Observability: determinism, well-formedness, and reconciliation.

   The contract under test (lib/obs + its integration in the runtime):

   - collector semantics: typed metrics registry, span stack, fork/merge
     rebasing, zero-cost Off mode, JSON printer/parser;
   - determinism: the exported trace and metrics of an engine run are
     byte-identical across Sequential/Parallel executors and GMW slice
     widths — with and without injected crash faults;
   - fault sensitivity: injecting crashes changes *only* the metrics that
     describe recovery (faults.*, reshare.*, computation bytes/recovery
     time, traffic shape) and does change them;
   - the span list forms a well-nested tree rooted at a single [run] span;
   - golden report: a small EN run's metrics JSON matches the checked-in
     snapshot. To regenerate after an intentional accounting change, run
     (from the repo root):

       DSTRESS_REGEN_GOLDEN=$PWD/test/golden/en_small_metrics.json \
         dune exec test/test_obs.exe

     and commit the updated file;
   - property: on randomized ring and banking topologies the registry
     totals reconcile exactly with the legacy Traffic row/column sums and
     the Engine.report counters. *)

module Bitvec = Dstress_util.Bitvec
module Prng = Dstress_util.Prng
module Group = Dstress_crypto.Group
module Traffic = Dstress_mpc.Traffic
module Fault = Dstress_faults.Fault
module Obs = Dstress_obs.Obs
module Json = Dstress_obs.Json
module Word = Dstress_circuit.Word
module En_program = Dstress_risk.En_program
module Topology = Dstress_graphgen.Topology
module Banking = Dstress_graphgen.Banking
open Dstress_runtime

let grp = Group.by_name "toy"

(* ------------------------------------------------------------------ *)
(* Collector semantics                                                 *)
(* ------------------------------------------------------------------ *)

let test_metrics_kinds () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "c";
  Obs.Metrics.incr ~by:4 m "c";
  Alcotest.(check int) "counter" 5 (Obs.Metrics.counter m "c");
  Obs.Metrics.add m "s" 1.5;
  Obs.Metrics.add m "s" 2.0;
  Alcotest.(check (float 1e-12)) "sum" 3.5 (Obs.Metrics.sum m "s");
  Obs.Metrics.set m "g" 7.0;
  Obs.Metrics.set m "g" 2.0;
  Alcotest.(check (float 0.0)) "gauge last write" 2.0 (Obs.Metrics.sum m "g");
  Obs.Metrics.observe m "h" 3.0;
  Obs.Metrics.observe m "h" 1.0;
  (match Obs.Metrics.find m "h" with
  | Some (Obs.Metrics.Hist h) ->
      Alcotest.(check int) "hist count" 2 h.count;
      Alcotest.(check (float 0.0)) "hist min" 1.0 h.min;
      Alcotest.(check (float 0.0)) "hist max" 3.0 h.max
  | _ -> Alcotest.fail "expected a histogram");
  Alcotest.(check (list string)) "names sorted" [ "c"; "g"; "h"; "s" ] (Obs.Metrics.names m);
  Alcotest.(check int) "absent counter is 0" 0 (Obs.Metrics.counter m "nope");
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Obs.Metrics: \"c\" already has a different kind") (fun () ->
      Obs.Metrics.add m "c" 1.0)

let test_span_stack () =
  let t = Obs.create ~level:Obs.Basic () in
  Obs.enter t "outer";
  Obs.advance t 10;
  Obs.enter t "inner";
  Obs.advance t 5;
  Obs.leave t;
  Obs.advance t 1;
  Obs.leave t;
  (match Obs.spans t with
  | [ inner; outer ] ->
      Alcotest.(check string) "inner name" "inner" inner.Obs.name;
      Alcotest.(check int) "inner start" 10 inner.Obs.start;
      Alcotest.(check int) "inner dur" 5 inner.Obs.dur;
      Alcotest.(check int) "inner depth" 1 inner.Obs.depth;
      Alcotest.(check string) "outer name" "outer" outer.Obs.name;
      Alcotest.(check int) "outer dur" 16 outer.Obs.dur;
      Alcotest.(check int) "outer depth" 0 outer.Obs.depth
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l));
  Alcotest.check_raises "unbalanced leave" (Invalid_argument "Obs.leave: no open span")
    (fun () -> Obs.leave t);
  (* [span] closes its span even when the body raises. *)
  (try Obs.span t "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "span closed on exception" 3 (List.length (Obs.spans t))

let test_off_is_noop () =
  let t = Obs.create ~level:Obs.Off () in
  Alcotest.(check bool) "create Off returns shared collector" true (t == Obs.off);
  Alcotest.(check bool) "fork returns self" true (Obs.fork t == t);
  Obs.enter t "x";
  Obs.advance t 100;
  Obs.incr t "c";
  Obs.leave t;
  Alcotest.(check int) "no spans" 0 (List.length (Obs.spans t));
  Alcotest.(check int) "no ticks" 0 (Obs.clock t);
  Alcotest.(check (list string)) "no metrics" [] (Obs.Metrics.names (Obs.metrics t))

let test_fork_merge () =
  let parent = Obs.create ~level:Obs.Full () in
  Obs.enter parent "phase";
  Obs.advance parent 100;
  let a = Obs.fork parent and b = Obs.fork parent in
  Obs.span a "task:0" (fun () -> Obs.advance a 10);
  Obs.incr a "n";
  Obs.span b "task:1" (fun () -> Obs.advance b 7);
  Obs.incr ~by:2 b "n";
  Obs.merge_into ~dst:parent a;
  Obs.merge_into ~dst:parent b;
  Obs.leave parent;
  Alcotest.(check int) "metrics folded" 3 (Obs.Metrics.counter (Obs.metrics parent) "n");
  (match List.sort (fun x y -> compare x.Obs.start y.Obs.start) (Obs.spans parent) with
  | [ phase; t0; t1 ] ->
      Alcotest.(check string) "first child" "task:0" t0.Obs.name;
      Alcotest.(check int) "rebased start" 100 t0.Obs.start;
      Alcotest.(check int) "rebased depth" 1 t0.Obs.depth;
      Alcotest.(check int) "second child after first" 110 t1.Obs.start;
      Alcotest.(check int) "parent absorbed child ticks" 117 phase.Obs.dur
  | l -> Alcotest.failf "expected 3 spans, got %d" (List.length l));
  let bad = Obs.fork parent in
  Obs.enter bad "open";
  Alcotest.check_raises "merge with open span"
    (Invalid_argument "Obs.merge_into: child has open spans") (fun () ->
      Obs.merge_into ~dst:parent bad)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Int (-3));
        ("b", Json.Num 1.25);
        ("c", Json.Str "q\"\\\n\tz");
        ("d", Json.List [ Json.Bool true; Json.Null; Json.Obj [] ]);
      ]
  in
  let s = Json.to_string v in
  (match Json.parse s with
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Json.parse "{\"x\": [1, 2.5, \"\\u0041\"]}" with
  | Ok (Json.Obj [ ("x", Json.List [ Json.Int 1; Json.Num 2.5; Json.Str "A" ]) ]) -> ()
  | Ok _ -> Alcotest.fail "unexpected parse tree"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Json.parse "{\"a\": 1,}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing comma accepted")

(* ------------------------------------------------------------------ *)
(* Engine runs used by the differential and property tests             *)
(* ------------------------------------------------------------------ *)

let token_program ~l ~iterations =
  {
    Vertex_program.name = "token";
    state_bits = l;
    message_bits = l;
    iterations;
    sensitivity = 1;
    epsilon = 0.5;
    noise_max_magnitude = 40;
    agg_bits = l + 6;
    build_update =
      (fun b ~state ~incoming ->
        let total =
          Word.truncate (Word.sum b ~bits:(l + 4) (Array.to_list incoming)) ~bits:l
        in
        (total, Array.map (fun _ -> state) incoming));
    build_aggregand = (fun b ~state -> Word.zero_extend b state ~bits:(l + 6));
  }

let ring_graph n = Graph.create ~n ~edges:(List.init n (fun i -> (i, (i + 1) mod n)))

let ring_run ?(level = Obs.Full) ?(fault_plan = Fault.empty) ?(n = 9) ?(iterations = 3)
    ~slice_width ~executor () =
  let l = 8 in
  let g = ring_graph n in
  let p = token_program ~l ~iterations in
  let states =
    let prng = Prng.of_int 17 in
    Array.init n (fun _ -> Bitvec.of_int ~bits:l (1 + Prng.int prng 10))
  in
  let cfg =
    { (Engine.default_config grp ~k:2 ~degree_bound:2 ~seed:"obs-eq") with
      Engine.executor; slice_width; fault_plan; obs_level = level }
  in
  Engine.run cfg p ~graph:g ~initial_states:states

(* ------------------------------------------------------------------ *)
(* Differential: exports must not depend on the schedule               *)
(* ------------------------------------------------------------------ *)

let check_exports_equal label (a : Engine.report) (b : Engine.report) =
  Alcotest.(check string) (label ^ ": trace bytes") (Obs.trace_json a.Engine.obs)
    (Obs.trace_json b.Engine.obs);
  Alcotest.(check string) (label ^ ": metrics bytes") (Obs.metrics_json a.Engine.obs)
    (Obs.metrics_json b.Engine.obs);
  Alcotest.(check string) (label ^ ": metrics csv") (Obs.metrics_csv a.Engine.obs)
    (Obs.metrics_csv b.Engine.obs)

let differential ~fault_plan label =
  let base = ring_run ~fault_plan ~slice_width:1 ~executor:Executor.sequential () in
  check_exports_equal (label ^ ": seq w=7") base
    (ring_run ~fault_plan ~slice_width:7 ~executor:Executor.sequential ());
  check_exports_equal (label ^ ": seq w=64") base
    (ring_run ~fault_plan ~slice_width:64 ~executor:Executor.sequential ());
  check_exports_equal (label ^ ": par4 w=64") base
    (ring_run ~fault_plan ~slice_width:64 ~executor:(Executor.parallel ~jobs:4) ());
  check_exports_equal (label ^ ": par3 w=1") base
    (ring_run ~fault_plan ~slice_width:1 ~executor:(Executor.parallel ~jobs:3) ());
  base

let crash_plan = Fault.random_crashes ~seed:5 ~nodes:9 ~rounds:4 ~count:2

let test_differential_clean () = ignore (differential ~fault_plan:Fault.empty "clean")
let test_differential_faulty () = ignore (differential ~fault_plan:crash_plan "faulty")

(* Crash faults may move exactly the recovery-describing metrics — and
   must actually move them. Everything else (MPC work, transfer counters,
   non-computation phases) is required to be untouched. *)
let metric_map (r : Engine.report) =
  match Json.parse (Obs.metrics_json r.Engine.obs) with
  | Ok (Json.Obj fields) -> fields
  | Ok _ -> Alcotest.fail "metrics JSON is not an object"
  | Error e -> Alcotest.failf "metrics JSON did not parse: %s" e

let fault_sensitive key =
  let has_prefix p = String.length key >= String.length p && String.sub key 0 (String.length p) = p in
  has_prefix "faults." || has_prefix "reshare." || has_prefix "traffic."
  || key = "phase.computation.bytes"
  || key = "phase.computation.recovery_seconds"

let test_fault_diff_is_scoped () =
  let clean = ring_run ~fault_plan:Fault.empty ~slice_width:64 ~executor:Executor.sequential () in
  let faulty = ring_run ~fault_plan:crash_plan ~slice_width:64 ~executor:Executor.sequential () in
  let mc = metric_map clean and mf = metric_map faulty in
  let keys m = List.map fst m in
  List.iter
    (fun k ->
      let vc = List.assoc_opt k mc and vf = List.assoc_opt k mf in
      if vc <> vf && not (fault_sensitive k) then
        Alcotest.failf "metric %S changed under crash faults" k)
    (List.sort_uniq compare (keys mc @ keys mf));
  let faulty_m = Obs.metrics faulty.Engine.obs in
  Alcotest.(check bool) "recovery events recorded" true
    (Obs.Metrics.counter faulty_m "faults.crash_recoveries" > 0);
  Alcotest.(check bool) "reshare traffic recorded" true
    (Obs.Metrics.counter faulty_m "reshare.bytes" > 0);
  Alcotest.(check int) "clean run has no recovery metric" 0
    (Obs.Metrics.counter (Obs.metrics clean.Engine.obs) "faults.crash_recoveries");
  Alcotest.(check int) "same MPC work" clean.Engine.mpc_and_gates faulty.Engine.mpc_and_gates

let test_level_basic_subset () =
  (* Basic must agree with Full on every metric it emits: Full only adds
     names (per-node gauges), never changes shared values. *)
  let basic = ring_run ~level:Obs.Basic ~slice_width:64 ~executor:Executor.sequential () in
  let full = ring_run ~level:Obs.Full ~slice_width:64 ~executor:Executor.sequential () in
  let mb = metric_map basic and mf = metric_map full in
  List.iter
    (fun (k, v) ->
      match List.assoc_opt k mf with
      | Some v' when v = v' -> ()
      | Some _ -> Alcotest.failf "metric %S differs between basic and full" k
      | None -> Alcotest.failf "metric %S missing at full" k)
    mb;
  Alcotest.(check bool) "full emits more names" true (List.length mf > List.length mb);
  (* Off really collects nothing and reuses the shared collector. *)
  let off = ring_run ~level:Obs.Off ~slice_width:64 ~executor:Executor.sequential () in
  Alcotest.(check bool) "off run uses shared collector" true (off.Engine.obs == Obs.off);
  Alcotest.(check int) "off run has no spans" 0 (List.length (Obs.spans off.Engine.obs))

(* ------------------------------------------------------------------ *)
(* Span-tree well-formedness                                           *)
(* ------------------------------------------------------------------ *)

let test_span_tree_well_formed () =
  let r = ring_run ~fault_plan:crash_plan ~slice_width:7 ~executor:Executor.sequential () in
  let spans = Obs.spans r.Engine.obs in
  let roots = List.filter (fun s -> s.Obs.depth = 0) spans in
  (match roots with
  | [ root ] ->
      Alcotest.(check string) "root span" "run" root.Obs.name;
      List.iter
        (fun s ->
          Alcotest.(check bool) (s.Obs.name ^ ": nonneg start") true (s.Obs.start >= 0);
          Alcotest.(check bool) (s.Obs.name ^ ": nonneg dur") true (s.Obs.dur >= 0);
          Alcotest.(check bool) (s.Obs.name ^ ": inside run") true
            (s.Obs.start >= root.Obs.start
            && s.Obs.start + s.Obs.dur <= root.Obs.start + root.Obs.dur))
        spans
  | l -> Alcotest.failf "expected exactly one root span, got %d" (List.length l));
  (* Every non-root span nests inside some span one level up. *)
  List.iter
    (fun s ->
      if s.Obs.depth > 0 then
        let parent =
          List.exists
            (fun p ->
              p.Obs.depth = s.Obs.depth - 1
              && p.Obs.start <= s.Obs.start
              && s.Obs.start + s.Obs.dur <= p.Obs.start + p.Obs.dur)
            spans
        in
        if not parent then
          Alcotest.failf "span %s (depth %d) has no enclosing parent" s.Obs.name s.Obs.depth)
    spans;
  let count prefix =
    List.length
      (List.filter
         (fun s ->
           String.length s.Obs.name >= String.length prefix
           && String.sub s.Obs.name 0 (String.length prefix) = prefix)
         spans)
  in
  (* 9 vertices x (3 iterations + final step), 9 ring edges x 3 rounds. *)
  Alcotest.(check int) "one span per vertex per step" 36 (count "vertex:");
  Alcotest.(check int) "one span per edge per round" 27 (count "xfer:");
  Alcotest.(check int) "round spans" 4 (count "round:");
  Alcotest.(check bool) "attempt spans under transfers" true (count "attempt:" >= 27)

(* ------------------------------------------------------------------ *)
(* Golden EN metrics snapshot                                          *)
(* ------------------------------------------------------------------ *)

(* Under `dune runtest` the cwd is the test directory (the dune [deps]
   copy); under a bare `dune exec test/test_obs.exe` it is the repo root. *)
let golden_path =
  if Sys.file_exists "golden/en_small_metrics.json" then "golden/en_small_metrics.json"
  else "test/golden/en_small_metrics.json"

let small_en_run () =
  let prng = Prng.of_int 0x60 in
  let topo = Topology.erdos_renyi prng ~n:6 ~avg_degree:2.0 ~max_degree:3 in
  let inst = Banking.en_of_topology prng topo () in
  let graph = En_program.graph_of_instance inst in
  let d = max 1 (Graph.max_degree graph) in
  let l = 8 and iterations = 2 in
  let p = En_program.make ~l ~degree:d ~iterations () in
  let states = En_program.encode_instance inst ~graph ~l ~degree:d ~scale:0.25 in
  let cfg =
    { (Engine.default_config grp ~k:1 ~degree_bound:d ~seed:"golden-en") with
      Engine.obs_level = Obs.Full }
  in
  Engine.run cfg p ~graph ~initial_states:states

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_golden_en_metrics () =
  let r = small_en_run () in
  let current = Obs.metrics_json r.Engine.obs ^ "\n" in
  match Sys.getenv_opt "DSTRESS_REGEN_GOLDEN" with
  | Some path ->
      let oc = open_out_bin path in
      output_string oc current;
      close_out oc;
      Printf.printf "regenerated %s\n" path
  | None ->
      let expected = read_file golden_path in
      if String.trim expected = "{}" then
        Alcotest.fail "golden file is the placeholder; regenerate it (see header)"
      else Alcotest.(check string) "EN metrics snapshot" expected current

(* ------------------------------------------------------------------ *)
(* Property: registry reconciles with Traffic and the report           *)
(* ------------------------------------------------------------------ *)

let reconcile (r : Engine.report) =
  let m = Obs.metrics r.Engine.obs in
  let c = Obs.Metrics.counter m and s = Obs.Metrics.sum m in
  let t = r.Engine.traffic in
  Alcotest.(check int) "traffic.bytes = Traffic.total" (Traffic.total t) (c "traffic.bytes");
  Alcotest.(check int) "traffic.external_bytes" (Traffic.external_total t)
    (c "traffic.external_bytes");
  Alcotest.(check (float 0.0)) "traffic.max_node_bytes"
    (float_of_int (Traffic.max_per_node t))
    (s "traffic.max_node_bytes");
  Alcotest.(check (float 1e-9)) "traffic.mean_node_bytes" (Traffic.mean_per_node t)
    (s "traffic.mean_node_bytes");
  (* Per-node gauges are the matrix's row/column sums. *)
  for i = 0 to Traffic.parties t - 1 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "node %d sent" i)
      (float_of_int (Traffic.sent_by t i))
      (s (Printf.sprintf "traffic.node.%03d.sent" i));
    Alcotest.(check (float 0.0))
      (Printf.sprintf "node %d received" i)
      (float_of_int (Traffic.received_by t i))
      (s (Printf.sprintf "traffic.node.%03d.received" i))
  done;
  (* Phase byte counters match the report, and together cover the matrix. *)
  List.iter
    (fun (ph, b) ->
      Alcotest.(check int)
        ("phase bytes: " ^ Engine.phase_name ph)
        b
        (c ("phase." ^ Engine.phase_name ph ^ ".bytes")))
    r.Engine.phase_bytes;
  Alcotest.(check int) "phase bytes sum to total traffic" (Traffic.total t)
    (List.fold_left (fun a (_, b) -> a + b) 0 r.Engine.phase_bytes);
  (* MPC, transfer, fault and privacy counters mirror the report. *)
  Alcotest.(check int) "mpc.rounds" r.Engine.mpc_rounds (c "mpc.rounds");
  Alcotest.(check int) "mpc.and_gates" r.Engine.mpc_and_gates (c "mpc.and_gates");
  Alcotest.(check int) "mpc.ots" r.Engine.mpc_ots (c "mpc.ots");
  Alcotest.(check int) "transfer.failures" r.Engine.transfer_failures (c "transfer.failures");
  Alcotest.(check int) "transfer.retries" r.Engine.transfer_retries (c "transfer.retries");
  Alcotest.(check int) "transfer.recovered" r.Engine.recovered_failures (c "transfer.recovered");
  Alcotest.(check int) "transfer.unrecovered" r.Engine.unrecovered_failures
    (c "transfer.unrecovered");
  Alcotest.(check int) "faults.crash_recoveries" r.Engine.crash_recoveries
    (c "faults.crash_recoveries");
  List.iter
    (fun (k, n) ->
      if n > 0 then
        Alcotest.(check int)
          ("faults.injected." ^ Fault.kind_name k)
          n
          (c ("faults.injected." ^ Fault.kind_name k)))
    r.Engine.faults_injected;
  Alcotest.(check (float 1e-9)) "privacy.retry_epsilon" r.Engine.retry_epsilon
    (s "privacy.retry_epsilon");
  List.iter
    (fun (ph, sec) ->
      Alcotest.(check (float 1e-9))
        ("recovery seconds: " ^ Engine.phase_name ph)
        sec
        (s ("phase." ^ Engine.phase_name ph ^ ".recovery_seconds")))
    (List.filter (fun (_, sec) -> sec > 0.0) r.Engine.recovery_seconds)

let test_reconcile_property () =
  let gen =
    QCheck.Gen.(
      triple (int_range 5 9) (int_range 1 2) (int_range 0 2)
      |> map (fun (n, iters, crashes) -> (n, iters, crashes)))
  in
  let arb = QCheck.make ~print:(fun (n, i, c) -> Printf.sprintf "n=%d i=%d crashes=%d" n i c) gen in
  let prop (n, iterations, crashes) =
    let fault_plan =
      if crashes = 0 then Fault.empty
      else Fault.random_crashes ~seed:(n + iterations) ~nodes:n ~rounds:(iterations + 1) ~count:crashes
    in
    let r = ring_run ~fault_plan ~n ~iterations ~slice_width:64 ~executor:Executor.sequential () in
    reconcile r;
    true
  in
  QCheck.Test.check_exn (QCheck.Test.make ~count:6 ~name:"ring reconciles" arb prop)

let test_reconcile_banking () =
  (* One banking-topology EN run, with edge faults so the transfer and
     retry counters are nonzero. *)
  let prng = Prng.of_int 0xB4 in
  let topo = Topology.core_periphery prng ~core:2 ~periphery:3 () in
  let inst = Banking.en_of_topology prng topo () in
  let graph = En_program.graph_of_instance inst in
  let d = max 1 (Graph.max_degree graph) in
  let iterations = 2 in
  let p = En_program.make ~l:12 ~degree:d ~iterations () in
  let states = En_program.encode_instance inst ~graph ~l:12 ~degree:d ~scale:0.25 in
  let rates = { Fault.no_faults with drop = 0.15; miss = 0.15 } in
  let plan =
    Fault.random_plan ~seed:11 ~rounds:(iterations + 1) ~nodes:(Graph.n graph)
      ~edges:(Graph.edges graph) rates
  in
  let cfg =
    { (Engine.default_config grp ~k:2 ~degree_bound:d ~seed:"obs-banking") with
      Engine.obs_level = Obs.Full;
      fault_plan = plan }
  in
  let r = Engine.run cfg p ~graph ~initial_states:states in
  reconcile r;
  Alcotest.(check bool) "some transfer attempts retried" true (r.Engine.transfer_retries > 0)

let () =
  Alcotest.run "obs"
    [
      ( "collector",
        [
          Alcotest.test_case "metric kinds" `Quick test_metrics_kinds;
          Alcotest.test_case "span stack" `Quick test_span_stack;
          Alcotest.test_case "off is a no-op" `Quick test_off_is_noop;
          Alcotest.test_case "fork and merge" `Quick test_fork_merge;
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "clean run exports" `Quick test_differential_clean;
          Alcotest.test_case "faulty run exports" `Quick test_differential_faulty;
          Alcotest.test_case "fault diff is scoped" `Quick test_fault_diff_is_scoped;
          Alcotest.test_case "basic is a subset of full" `Quick test_level_basic_subset;
        ] );
      ( "trace",
        [ Alcotest.test_case "span tree well-formed" `Quick test_span_tree_well_formed ] );
      ("golden", [ Alcotest.test_case "EN metrics snapshot" `Quick test_golden_en_metrics ]);
      ( "reconciliation",
        [
          Alcotest.test_case "ring topologies" `Quick test_reconcile_property;
          Alcotest.test_case "banking topology with edge faults" `Quick test_reconcile_banking;
        ] );
    ]
