open Dstress_circuit

(* Build a circuit over [n] words of [bits] bits each, apply it to integer
   inputs, and return the outputs as an integer (little-endian bit order).
   This is the harness all gadget tests share. *)
let run ~bits ~arity f values =
  let b = Builder.create () in
  let words = Array.init arity (fun _ -> Word.inputs b ~bits) in
  let outputs = f b words in
  let circuit = Builder.finish b ~outputs in
  let input_bits =
    Array.concat
      (List.map
         (fun v -> Array.init bits (fun i -> (v lsr i) land 1 = 1))
         values)
  in
  let out = Circuit.eval circuit input_bits in
  let r = ref 0 in
  for i = Array.length out - 1 downto 0 do
    r := (!r lsl 1) lor (if out.(i) then 1 else 0)
  done;
  !r

let run2 ~bits f a c = run ~bits ~arity:2 (fun b w -> f b w.(0) w.(1)) [ a; c ]

let bit_of w = [| w |]

(* ------------------------------------------------------------------ *)
(* Circuit IR                                                          *)
(* ------------------------------------------------------------------ *)

let test_eval_basic () =
  let gates =
    [| Circuit.Input 0; Circuit.Input 1; Circuit.Xor (0, 1); Circuit.And (0, 1);
       Circuit.Not 3 |]
  in
  let c = Circuit.make ~gates ~num_inputs:2 ~outputs:[| 2; 4 |] in
  Alcotest.(check (array bool)) "xor/nand of (t,f)" [| true; true |]
    (Circuit.eval c [| true; false |]);
  Alcotest.(check (array bool)) "xor/nand of (t,t)" [| false; false |]
    (Circuit.eval c [| true; true |])

let test_make_rejects_forward_ref () =
  Alcotest.(check bool) "forward ref rejected" true
    (try
       ignore
         (Circuit.make ~gates:[| Circuit.Xor (0, 1) |] ~num_inputs:0 ~outputs:[||]);
       false
     with Invalid_argument _ -> true)

let test_make_rejects_bad_input_index () =
  Alcotest.(check bool) "bad input index" true
    (try
       ignore (Circuit.make ~gates:[| Circuit.Input 3 |] ~num_inputs:2 ~outputs:[||]);
       false
     with Invalid_argument _ -> true)

let test_eval_wrong_arity () =
  let c = Circuit.make ~gates:[| Circuit.Input 0 |] ~num_inputs:1 ~outputs:[| 0 |] in
  Alcotest.check_raises "wrong input length"
    (Invalid_argument "Circuit.eval: wrong input length") (fun () ->
      ignore (Circuit.eval c [||]))

let test_and_depth () =
  let b = Builder.create () in
  let x = Builder.input b and y = Builder.input b and z = Builder.input b in
  (* (x AND y) AND z: two AND levels. *)
  let out = Builder.band b (Builder.band b x y) z in
  let c = Builder.finish b ~outputs:[| out |] in
  Alcotest.(check int) "depth 2" 2 (Circuit.and_depth c);
  Alcotest.(check int) "two ANDs" 2 (Circuit.and_count c)

let test_stats () =
  let b = Builder.create () in
  let x = Builder.input b and y = Builder.input b in
  let out = Builder.bxor b (Builder.band b x y) (Builder.bnot b x) in
  let c = Builder.finish b ~outputs:[| out |] in
  let s = Circuit.stats c in
  Alcotest.(check int) "inputs" 2 s.Circuit.inputs;
  Alcotest.(check int) "ands" 1 s.Circuit.ands;
  Alcotest.(check int) "xors" 1 s.Circuit.xors;
  Alcotest.(check int) "nots" 1 s.Circuit.nots

let test_stats_matches_direct_counts () =
  (* stats is a single fused pass; cross-check it against the per-kind
     fold and the dedicated and_count/and_depth entry points on random
     topologically-valid circuits. *)
  let seed = ref 12345 in
  let rand bound =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    !seed mod bound
  in
  for _ = 1 to 5 do
    let num_inputs = 3 + rand 6 in
    let rev = ref [] and wires = ref 0 in
    let push g =
      rev := g :: !rev;
      incr wires
    in
    for k = 0 to num_inputs - 1 do
      push (Circuit.Input k)
    done;
    for _ = 1 to 40 + rand 40 do
      let w () = rand !wires in
      match rand 8 with
      | 0 -> push (Circuit.Const (rand 2 = 1))
      | 1 | 2 -> push (Circuit.Not (w ()))
      | 3 | 4 -> push (Circuit.Xor (w (), w ()))
      | _ -> push (Circuit.And (w (), w ()))
    done;
    let c =
      Circuit.make ~gates:(Array.of_list (List.rev !rev)) ~num_inputs
        ~outputs:[| !wires - 1 |]
    in
    let s = Circuit.stats c in
    let count p =
      Array.fold_left (fun acc g -> if p g then acc + 1 else acc) 0 c.Circuit.gates
    in
    Alcotest.(check int) "gates" (Array.length c.Circuit.gates) s.Circuit.gates;
    Alcotest.(check int) "inputs"
      (count (function Circuit.Input _ -> true | _ -> false))
      s.Circuit.inputs;
    Alcotest.(check int) "ands vs and_count" (Circuit.and_count c) s.Circuit.ands;
    Alcotest.(check int) "ands vs fold"
      (count (function Circuit.And _ -> true | _ -> false))
      s.Circuit.ands;
    Alcotest.(check int) "xors"
      (count (function Circuit.Xor _ -> true | _ -> false))
      s.Circuit.xors;
    Alcotest.(check int) "nots"
      (count (function Circuit.Not _ -> true | _ -> false))
      s.Circuit.nots;
    Alcotest.(check int) "depth vs and_depth" (Circuit.and_depth c) s.Circuit.depth
  done

(* ------------------------------------------------------------------ *)
(* Builder simplifications                                             *)
(* ------------------------------------------------------------------ *)

let test_builder_folding () =
  let b = Builder.create () in
  let x = Builder.input b in
  let t = Builder.const b true and f = Builder.const b false in
  Alcotest.(check int) "x XOR 0 = x" x (Builder.bxor b x f);
  Alcotest.(check int) "x AND 1 = x" x (Builder.band b x t);
  Alcotest.(check int) "x AND x = x" x (Builder.band b x x);
  Alcotest.(check int) "NOT NOT x = x" x (Builder.bnot b (Builder.bnot b x));
  let zero = Builder.bxor b x x in
  Alcotest.(check int) "x XOR x = 0" f zero

let test_builder_hash_consing () =
  let b = Builder.create () in
  let x = Builder.input b and y = Builder.input b in
  let a1 = Builder.band b x y in
  let a2 = Builder.band b y x in
  Alcotest.(check int) "commutative dedup" a1 a2

let test_builder_dead_code_elimination () =
  let b = Builder.create () in
  let x = Builder.input b and y = Builder.input b in
  let _dead = Builder.band b x y in
  let live = Builder.bxor b x y in
  let c = Builder.finish b ~outputs:[| live |] in
  Alcotest.(check int) "dead AND removed" 0 (Circuit.and_count c)

let test_builder_finish_twice () =
  let b = Builder.create () in
  let x = Builder.input b in
  ignore (Builder.finish b ~outputs:[| x |]);
  Alcotest.check_raises "second finish"
    (Invalid_argument "Builder.finish: already finished") (fun () ->
      ignore (Builder.finish b ~outputs:[| x |]))

let test_constant_add_costs_no_ands () =
  (* Adding a constant word folds the carry chain almost entirely when the
     constant is zero. *)
  let b = Builder.create () in
  let x = Word.inputs b ~bits:8 in
  let zero = Word.constant b ~bits:8 0 in
  let out = Word.add b x zero in
  let c = Builder.finish b ~outputs:out in
  Alcotest.(check int) "x + 0 has no ANDs" 0 (Circuit.and_count c)

(* ------------------------------------------------------------------ *)
(* Word gadgets vs integer semantics                                   *)
(* ------------------------------------------------------------------ *)

let bits = 8
let mask = (1 lsl bits) - 1

let test_word_add () =
  for a = 0 to 20 do
    for b = 0 to 20 do
      let got = run2 ~bits Word.add (a * 11) (b * 9) in
      Alcotest.(check int) "add" (((a * 11) + (b * 9)) land mask) got
    done
  done

let test_word_sub_wraps () =
  Alcotest.(check int) "5 - 9 wraps" ((5 - 9) land mask) (run2 ~bits Word.sub 5 9)

let test_word_saturating_sub () =
  Alcotest.(check int) "5 -sat 9 = 0" 0 (run2 ~bits Word.saturating_sub 5 9);
  Alcotest.(check int) "9 -sat 5 = 4" 4 (run2 ~bits Word.saturating_sub 9 5)

let test_word_comparisons () =
  let check_cmp name f expected a b =
    let got = run2 ~bits (fun bl x y -> bit_of (f bl x y)) a b in
    Alcotest.(check int) (Printf.sprintf "%s %d %d" name a b) (if expected then 1 else 0) got
  in
  List.iter
    (fun (a, b) ->
      check_cmp "lt" Word.lt (a < b) a b;
      check_cmp "le" Word.le (a <= b) a b;
      check_cmp "gt" Word.gt (a > b) a b;
      check_cmp "ge" Word.ge (a >= b) a b;
      check_cmp "eq" Word.eq (a = b) a b)
    [ (0, 0); (1, 0); (0, 1); (255, 255); (254, 255); (100, 100); (7, 200) ]

let test_word_is_zero () =
  let f b w = bit_of (Word.is_zero b w) in
  Alcotest.(check int) "zero" 1 (run ~bits ~arity:1 (fun b ws -> f b ws.(0)) [ 0 ]);
  Alcotest.(check int) "nonzero" 0 (run ~bits ~arity:1 (fun b ws -> f b ws.(0)) [ 64 ])

let test_word_mux () =
  let f sel b ws = Word.mux b (Builder.const b sel) ws.(0) ws.(1) in
  Alcotest.(check int) "sel=1" 42 (run ~bits ~arity:2 (f true) [ 42; 13 ]);
  Alcotest.(check int) "sel=0" 13 (run ~bits ~arity:2 (f false) [ 42; 13 ])

let test_word_min_max () =
  Alcotest.(check int) "min" 13 (run2 ~bits Word.min 42 13);
  Alcotest.(check int) "max" 42 (run2 ~bits Word.max 42 13)

let test_word_mul () =
  List.iter
    (fun (a, b) ->
      let got = run2 ~bits Word.mul a b in
      Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (a * b) got)
    [ (0, 0); (1, 255); (255, 255); (12, 17); (200, 3) ]

let test_word_mul_truncated () =
  let f b x y = Word.mul_truncated b x y ~bits in
  Alcotest.(check int) "truncated product" (12 * 17 land mask) (run2 ~bits f 12 17)

let test_word_divmod () =
  List.iter
    (fun (a, b) ->
      let q = run2 ~bits (fun bl x y -> fst (Word.divmod bl x y)) a b in
      let r = run2 ~bits (fun bl x y -> snd (Word.divmod bl x y)) a b in
      Alcotest.(check int) (Printf.sprintf "%d/%d" a b) (a / b) q;
      Alcotest.(check int) (Printf.sprintf "%d mod %d" a b) (a mod b) r)
    [ (0, 1); (255, 1); (255, 255); (100, 7); (13, 17); (200, 10) ]

let test_word_div_by_zero_all_ones () =
  let q = run2 ~bits (fun bl x y -> fst (Word.divmod bl x y)) 77 0 in
  Alcotest.(check int) "all ones quotient" mask q

let test_word_shifts () =
  let f k b ws = Word.shift_left_const b ws.(0) k in
  Alcotest.(check int) "shl" (0b1010100) (run ~bits ~arity:1 (f 2) [ 0b10101 ]);
  let g k b ws = Word.shift_right_const b ws.(0) k in
  Alcotest.(check int) "shr" 0b101 (run ~bits ~arity:1 (g 2) [ 0b10101 ])

let test_word_sum () =
  let f b ws = Word.sum b ~bits:10 (Array.to_list ws) in
  let got = run ~bits ~arity:4 f [ 200; 200; 200; 100 ] in
  Alcotest.(check int) "sum widened" 700 got

let test_word_negate () =
  Alcotest.(check int) "negate" ((-5) land mask)
    (run ~bits ~arity:1 (fun b ws -> Word.negate b ws.(0)) [ 5 ])

(* ------------------------------------------------------------------ *)
(* Fixed point                                                         *)
(* ------------------------------------------------------------------ *)

let cfg = { Fixed.int_bits = 6; frac_bits = 6 }

let test_fixed_encode_decode () =
  List.iter
    (fun v ->
      let err = abs_float (Fixed.decode cfg (Fixed.encode cfg v) -. v) in
      Alcotest.(check bool) (Printf.sprintf "encode %f" v) true (err < 0.01))
    [ 0.0; 1.0; 0.5; 3.25; 0.984375 ]

let test_fixed_encode_clamps () =
  Alcotest.(check int) "negative clamps" 0 (Fixed.encode cfg (-3.0));
  Alcotest.(check int) "huge clamps" ((1 lsl 12) - 1) (Fixed.encode cfg 1e9)

let run_fixed f a b =
  let bits = Fixed.width cfg in
  let raw =
    run ~bits ~arity:2 (fun bl ws -> f bl cfg ws.(0) ws.(1))
      [ Fixed.encode cfg a; Fixed.encode cfg b ]
  in
  Fixed.decode cfg raw

let test_fixed_mul () =
  List.iter
    (fun (a, b) ->
      let got = run_fixed Fixed.mul a b in
      Alcotest.(check bool)
        (Printf.sprintf "%f*%f" a b)
        true
        (abs_float (got -. (a *. b)) < 0.05))
    [ (0.5, 0.5); (1.0, 3.0); (2.5, 1.5); (0.25, 0.25) ]

let test_fixed_div () =
  List.iter
    (fun (a, b) ->
      let got = run_fixed Fixed.div a b in
      Alcotest.(check bool)
        (Printf.sprintf "%f/%f" a b)
        true
        (abs_float (got -. (a /. b)) < 0.05))
    [ (1.0, 2.0); (3.0, 1.5); (0.5, 4.0); (7.0, 7.0) ]

let test_fixed_clamp () =
  let bits = Fixed.width cfg in
  let raw =
    run ~bits ~arity:1
      (fun bl ws -> Fixed.clamp_to_one bl cfg ws.(0))
      [ Fixed.encode cfg 2.5 ]
  in
  Alcotest.(check (float 0.001)) "clamped" 1.0 (Fixed.decode cfg raw);
  let raw2 =
    run ~bits ~arity:1
      (fun bl ws -> Fixed.clamp_to_one bl cfg ws.(0))
      [ Fixed.encode cfg 0.75 ]
  in
  Alcotest.(check (float 0.001)) "unchanged" 0.75 (Fixed.decode cfg raw2)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_byte = QCheck2.Gen.int_bound 255

let prop_gadget name f reference =
  QCheck2.Test.make ~name ~count:150
    QCheck2.Gen.(pair gen_byte gen_byte)
    (fun (a, b) -> run2 ~bits f a b = reference a b land mask)

let prop_add = prop_gadget "word add matches int" Word.add ( + )
let prop_sub = prop_gadget "word sub matches int" Word.sub ( - )

let prop_mul =
  QCheck2.Test.make ~name:"word mul matches int" ~count:100
    QCheck2.Gen.(pair gen_byte gen_byte)
    (fun (a, b) -> run2 ~bits Word.mul a b = a * b)

let prop_divmod =
  QCheck2.Test.make ~name:"word divmod matches int" ~count:100
    QCheck2.Gen.(pair gen_byte (int_range 1 255))
    (fun (a, b) ->
      run2 ~bits (fun bl x y -> fst (Word.divmod bl x y)) a b = a / b
      && run2 ~bits (fun bl x y -> snd (Word.divmod bl x y)) a b = a mod b)

let prop_lt =
  QCheck2.Test.make ~name:"word lt matches int" ~count:150
    QCheck2.Gen.(pair gen_byte gen_byte)
    (fun (a, b) ->
      run2 ~bits (fun bl x y -> [| Word.lt bl x y |]) a b = if a < b then 1 else 0)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest [ prop_add; prop_sub; prop_mul; prop_divmod; prop_lt ]
  in
  Alcotest.run "circuit"
    [
      ( "ir",
        [
          Alcotest.test_case "eval basic" `Quick test_eval_basic;
          Alcotest.test_case "rejects forward ref" `Quick test_make_rejects_forward_ref;
          Alcotest.test_case "rejects bad input" `Quick test_make_rejects_bad_input_index;
          Alcotest.test_case "eval wrong arity" `Quick test_eval_wrong_arity;
          Alcotest.test_case "and depth" `Quick test_and_depth;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "stats single pass" `Quick test_stats_matches_direct_counts;
        ] );
      ( "builder",
        [
          Alcotest.test_case "constant folding" `Quick test_builder_folding;
          Alcotest.test_case "hash consing" `Quick test_builder_hash_consing;
          Alcotest.test_case "dead code elimination" `Quick
            test_builder_dead_code_elimination;
          Alcotest.test_case "finish twice" `Quick test_builder_finish_twice;
          Alcotest.test_case "constant add folds" `Quick test_constant_add_costs_no_ands;
        ] );
      ( "word",
        [
          Alcotest.test_case "add" `Quick test_word_add;
          Alcotest.test_case "sub wraps" `Quick test_word_sub_wraps;
          Alcotest.test_case "saturating sub" `Quick test_word_saturating_sub;
          Alcotest.test_case "comparisons" `Quick test_word_comparisons;
          Alcotest.test_case "is_zero" `Quick test_word_is_zero;
          Alcotest.test_case "mux" `Quick test_word_mux;
          Alcotest.test_case "min/max" `Quick test_word_min_max;
          Alcotest.test_case "mul" `Quick test_word_mul;
          Alcotest.test_case "mul truncated" `Quick test_word_mul_truncated;
          Alcotest.test_case "divmod" `Quick test_word_divmod;
          Alcotest.test_case "div by zero" `Quick test_word_div_by_zero_all_ones;
          Alcotest.test_case "shifts" `Quick test_word_shifts;
          Alcotest.test_case "sum" `Quick test_word_sum;
          Alcotest.test_case "negate" `Quick test_word_negate;
        ] );
      ( "fixed",
        [
          Alcotest.test_case "encode/decode" `Quick test_fixed_encode_decode;
          Alcotest.test_case "encode clamps" `Quick test_fixed_encode_clamps;
          Alcotest.test_case "mul" `Quick test_fixed_mul;
          Alcotest.test_case "div" `Quick test_fixed_div;
          Alcotest.test_case "clamp to one" `Quick test_fixed_clamp;
        ] );
      ("properties", qsuite);
    ]
