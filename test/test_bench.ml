(* Benchmark harness: schema round-trips, diff gating, and the
   wall-clock profiler.

   The contract under test (lib/obs/{bench_result,bench_diff,prof}):

   - bench-result documents round-trip exactly through the JSON printer
     and parser (property over randomized docs — the printer's float
     format is lossless for the values the harness produces);
   - write_file/read_file round-trip through the filesystem;
   - Bench_diff verdicts: identical docs pass with zero deltas; a
     wall-time regression beyond the threshold fails; any deterministic
     counter change fails; improvements and new rows are informational;
     --counters-only ignores wall-time entirely; a vanished row fails;
   - the profiler rebuilds the span tree from close order, merges
     same-label siblings, handles recursion without double-counting, and
     its invariants (self <= total, children's totals bounded by the
     parent's) hold on a real sequential EN engine run;
   - Prof.to_json and Prof.trace_wall_json emit parseable JSON. *)

module Prng = Dstress_util.Prng
module Group = Dstress_crypto.Group
module Graph = Dstress_runtime.Graph
module Engine = Dstress_runtime.Engine
module Executor = Dstress_runtime.Executor
module En_program = Dstress_risk.En_program
module Topology = Dstress_graphgen.Topology
module Banking = Dstress_graphgen.Banking
module Obs = Dstress_obs.Obs
module Json = Dstress_obs.Json
module Prof = Dstress_obs.Prof
module Bench_result = Dstress_obs.Bench_result
module Bench_diff = Dstress_obs.Bench_diff

(* ------------------------------------------------------------------ *)
(* Document generators                                                  *)
(* ------------------------------------------------------------------ *)

let gen_slug =
  QCheck.Gen.(
    map2
      (fun base n -> Printf.sprintf "%s%d" base n)
      (oneofl [ "mpc"; "xfer"; "round"; "agg"; "noise"; "setup" ])
      (int_range 0 99))

(* Odd-numerator dyadics: never integer-valued (so the printer always
   emits a fraction) and exactly representable in <= 9 significant
   decimal digits, well inside the printer's %.12g. *)
let gen_dyadic =
  QCheck.Gen.(map (fun k -> float_of_int ((2 * k) + 1) /. 64.0) (int_range 0 5000))

let gen_param =
  QCheck.Gen.(
    pair gen_slug
      (oneof
         [ map (fun i -> Json.Int i) (int_range 0 1000); map (fun s -> Json.Str s) gen_slug ]))

let gen_wall =
  QCheck.Gen.(
    map
      (fun (a, b, c, d) -> { Bench_result.median_s = a; min_s = b; p10_s = c; p90_s = d })
      (quad gen_dyadic gen_dyadic gen_dyadic gen_dyadic))

let gen_result =
  QCheck.Gen.(
    map
      (fun ((name, params, repeats, warmup), (wall, throughput, counters, floats)) ->
        Bench_result.make_result ~params ~repeats ~warmup ?wall ?throughput ~counters
          ~floats name)
      (pair
         (quad gen_slug
            (list_size (int_range 0 3) gen_param)
            (int_range 1 5) (int_range 0 2))
         (quad (option gen_wall)
            (option (pair gen_slug gen_dyadic))
            (list_size (int_range 0 4) (pair gen_slug (int_range 0 1_000_000)))
            (list_size (int_range 0 4) (pair gen_slug gen_dyadic)))))

let gen_doc =
  QCheck.Gen.(
    map2
      (fun mode suites -> { Bench_result.mode; suites })
      (oneofl [ "quick"; "full" ])
      (list_size (int_range 1 3)
         (map2
            (fun s rs -> { Bench_result.suite = s; results = rs })
            gen_slug
            (list_size (int_range 0 4) gen_result))))

let print_doc d = Json.to_string (Bench_result.to_json d)

(* ------------------------------------------------------------------ *)
(* Schema round-trips                                                   *)
(* ------------------------------------------------------------------ *)

let test_doc_roundtrip () =
  let arb = QCheck.make ~print:print_doc gen_doc in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"doc json roundtrip" arb (fun doc ->
         let s = Json.to_string (Bench_result.to_json doc) in
         match Json.parse s with
         | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e
         | Ok j -> (
             match Bench_result.of_json j with
             | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
             | Ok doc' -> doc = doc')))

let test_file_roundtrip () =
  let doc =
    {
      Bench_result.mode = "quick";
      suites =
        [
          {
            Bench_result.suite = "fig3-left";
            results =
              [
                Bench_result.make_result
                  ~params:[ ("block", Json.Int 4) ]
                  ~wall:
                    { Bench_result.median_s = 1.5; min_s = 1.25; p10_s = 1.375; p90_s = 1.625 }
                  ~throughput:("gates", 2048.5)
                  ~counters:[ ("and_gates", 30208); ("traffic.total_bytes", 73302) ]
                  ~floats:[ ("per_party_s", 0.125) ]
                  "en-step3";
              ];
          };
        ]
    }
  in
  let path = Filename.temp_file "bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Bench_result.write_file path doc;
      match Bench_result.read_file path with
      | Ok doc' -> Alcotest.(check bool) "read back equals written" true (doc = doc')
      | Error e -> Alcotest.failf "read_file: %s" e)

let test_rejects_foreign_schema () =
  match Bench_result.of_json (Json.Obj [ ("schema", Json.Str "unknown/9"); ("mode", Json.Str "quick"); ("suites", Json.List []) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a foreign schema tag"

let test_make_result_drops_nonfinite () =
  let r =
    Bench_result.make_result
      ~throughput:("items", Float.infinity)
      ~floats:[ ("ok", 1.5); ("bad", Float.nan); ("worse", Float.neg_infinity) ]
      "row"
  in
  Alcotest.(check bool) "non-finite throughput dropped" true (r.Bench_result.throughput = None);
  Alcotest.(check (list string)) "non-finite floats dropped" [ "ok" ]
    (List.map fst r.Bench_result.floats)

(* ------------------------------------------------------------------ *)
(* Diff verdicts                                                        *)
(* ------------------------------------------------------------------ *)

let wall m =
  { Bench_result.median_s = m; min_s = m *. 0.9; p10_s = m *. 0.95; p90_s = m *. 1.1 }

let fixture_doc ?(mode = "quick") ?(median = 1.0) ?(ands = 100) ?(drop_b = false) () =
  let rows =
    [ Bench_result.make_result ~wall:(wall median) ~counters:[ ("and_gates", ands) ] "a" ]
    @ if drop_b then [] else [ Bench_result.make_result ~counters:[ ("bytes", 5) ] "b" ]
  in
  { Bench_result.mode; suites = [ { Bench_result.suite = "s"; results = rows } ] }

let fails report metric =
  List.exists
    (fun d -> d.Bench_diff.severity = Bench_diff.Fail && d.Bench_diff.metric = metric)
    report.Bench_diff.deltas

let test_diff_identical () =
  let doc = fixture_doc () in
  let r = Bench_diff.compare_docs doc doc in
  Alcotest.(check bool) "ok" true (Bench_diff.ok r);
  Alcotest.(check int) "zero deltas" 0 (List.length r.Bench_diff.deltas);
  Alcotest.(check int) "both rows compared" 2 r.Bench_diff.compared

let test_diff_wall_regression () =
  let r = Bench_diff.compare_docs (fixture_doc ()) (fixture_doc ~median:2.0 ()) in
  Alcotest.(check bool) "2x median regression fails" false (Bench_diff.ok r);
  Alcotest.(check bool) "the failing metric is the median" true (fails r "wall.median_s")

let test_diff_wall_within_threshold () =
  let r = Bench_diff.compare_docs (fixture_doc ()) (fixture_doc ~median:1.2 ()) in
  Alcotest.(check bool) "+20%% passes at the default 25%% threshold" true (Bench_diff.ok r);
  let tight = Bench_diff.compare_docs ~threshold:0.1 (fixture_doc ()) (fixture_doc ~median:1.2 ()) in
  Alcotest.(check bool) "+20%% fails at a 10%% threshold" false (Bench_diff.ok tight)

let test_diff_wall_improvement () =
  let r = Bench_diff.compare_docs (fixture_doc ()) (fixture_doc ~median:0.5 ()) in
  Alcotest.(check bool) "2x speedup passes" true (Bench_diff.ok r);
  Alcotest.(check bool) "but is still reported" true (r.Bench_diff.deltas <> [])

let test_diff_counter_drift () =
  let r = Bench_diff.compare_docs (fixture_doc ()) (fixture_doc ~ands:101 ()) in
  Alcotest.(check bool) "a one-off counter change fails" false (Bench_diff.ok r);
  Alcotest.(check bool) "the failing metric names the counter" true
    (fails r "counter:and_gates")

let test_diff_counters_only () =
  let r =
    Bench_diff.compare_docs ~counters_only:true (fixture_doc ())
      (fixture_doc ~median:10.0 ())
  in
  Alcotest.(check bool) "counters-only ignores wall regressions" true (Bench_diff.ok r);
  let drift =
    Bench_diff.compare_docs ~counters_only:true (fixture_doc ()) (fixture_doc ~ands:7 ())
  in
  Alcotest.(check bool) "counters-only still gates counters" false (Bench_diff.ok drift)

let test_diff_missing_and_added_rows () =
  let missing = Bench_diff.compare_docs (fixture_doc ()) (fixture_doc ~drop_b:true ()) in
  Alcotest.(check bool) "vanished row fails" false (Bench_diff.ok missing);
  let added = Bench_diff.compare_docs (fixture_doc ~drop_b:true ()) (fixture_doc ()) in
  Alcotest.(check bool) "new row is informational" true (Bench_diff.ok added);
  Alcotest.(check bool) "and reported" true (added.Bench_diff.deltas <> [])

let test_diff_mode_mismatch () =
  let r = Bench_diff.compare_docs (fixture_doc ()) (fixture_doc ~mode:"full" ()) in
  Alcotest.(check bool) "mode mismatch alone still passes" true (Bench_diff.ok r);
  Alcotest.(check bool) "but warns" true (r.Bench_diff.deltas <> [])

(* ------------------------------------------------------------------ *)
(* Profiler: synthetic span lists                                       *)
(* ------------------------------------------------------------------ *)

(* Spans in close order (children before parents, siblings by timeline),
   exactly as [Obs.spans] on a sequential run produces after a reverse. *)
let span name depth wall_start wall =
  { Obs.name; start = 0; dur = 0; depth; wall; wall_start }

let test_prof_aggregation () =
  let spans =
    [
      span "a" 1 0.0 4.0;
      span "b" 1 4.0 5.0;
      span "a" 1 9.0 1.0;
      span "run" 0 0.0 10.0;
    ]
  in
  let p = Prof.of_spans spans in
  Alcotest.(check (float 1e-12)) "wall total" 10.0 p.Prof.wall_total_s;
  match p.Prof.roots with
  | [ run ] ->
      Alcotest.(check string) "root label" "run" run.Prof.label;
      Alcotest.(check (float 1e-12)) "root self excludes children" 0.0 run.Prof.self_s;
      (match run.Prof.children with
      | [ a; b ] ->
          Alcotest.(check string) "first-appearance order" "a" a.Prof.label;
          Alcotest.(check int) "same-label siblings merge" 2 a.Prof.count;
          Alcotest.(check (float 1e-12)) "merged total" 5.0 a.Prof.total_s;
          Alcotest.(check (float 1e-12)) "leaf self = total" 5.0 a.Prof.self_s;
          Alcotest.(check string) "second child" "b" b.Prof.label
      | l -> Alcotest.failf "expected 2 children, got %d" (List.length l));
      (* Flat report: ties on self break by label, "run" (self 0) last. *)
      let flat = Prof.flatten p in
      Alcotest.(check (list string)) "flatten order"
        [ "a"; "b"; "run" ]
        (List.map (fun f -> f.Prof.flat_label) flat);
      Alcotest.(check (list string)) "top 2" [ "a"; "b" ]
        (List.map (fun f -> f.Prof.flat_label) (Prof.top ~n:2 p))
  | l -> Alcotest.failf "expected 1 root, got %d" (List.length l)

let test_prof_recursion () =
  let spans = [ span "x" 1 1.0 2.0; span "x" 0 0.0 5.0 ] in
  let p = Prof.of_spans spans in
  match Prof.flatten p with
  | [ f ] ->
      Alcotest.(check string) "label" "x" f.Prof.flat_label;
      Alcotest.(check int) "both occurrences counted" 2 f.Prof.flat_count;
      Alcotest.(check (float 1e-12)) "self sums both levels" 5.0 f.Prof.flat_self_s;
      Alcotest.(check (float 1e-12)) "total counts outermost only" 5.0 f.Prof.flat_total_s
  | l -> Alcotest.failf "expected 1 flat row, got %d" (List.length l)

let test_prof_empty () =
  let p = Prof.of_spans [] in
  Alcotest.(check int) "no roots" 0 (List.length p.Prof.roots);
  Alcotest.(check (float 0.0)) "zero total" 0.0 p.Prof.wall_total_s;
  Alcotest.(check int) "no flat rows" 0 (List.length (Prof.flatten p))

(* ------------------------------------------------------------------ *)
(* Profiler: invariants on a real engine run                            *)
(* ------------------------------------------------------------------ *)

let grp = Group.by_name "toy"

let small_en_run () =
  let prng = Prng.of_int 0x60 in
  let topo = Topology.erdos_renyi prng ~n:6 ~avg_degree:2.0 ~max_degree:3 in
  let inst = Banking.en_of_topology prng topo () in
  let graph = En_program.graph_of_instance inst in
  let d = max 1 (Graph.max_degree graph) in
  let l = 8 and iterations = 2 in
  let p = En_program.make ~l ~degree:d ~iterations () in
  let states = En_program.encode_instance inst ~graph ~l ~degree:d ~scale:0.25 in
  let cfg =
    { (Engine.default_config grp ~k:1 ~degree_bound:d ~seed:"prof-en") with
      Engine.obs_level = Obs.Full;
      executor = Executor.sequential }
  in
  Engine.run cfg p ~graph ~initial_states:states

let test_prof_invariants_on_en_run () =
  let r = small_en_run () in
  let p = Prof.of_obs r.Engine.obs in
  Alcotest.(check bool) "profile is non-empty" true (p.Prof.roots <> []);
  let eps = 1e-9 in
  let rec check_node path n =
    let path = path ^ "/" ^ n.Prof.label in
    Alcotest.(check bool) (path ^ ": count >= 1") true (n.Prof.count >= 1);
    Alcotest.(check bool) (path ^ ": total >= 0") true (n.Prof.total_s >= 0.0);
    Alcotest.(check bool) (path ^ ": self >= 0") true (n.Prof.self_s >= 0.0);
    Alcotest.(check bool)
      (path ^ ": self <= total")
      true
      (n.Prof.self_s <= n.Prof.total_s +. eps);
    (* On a sequential run children nest strictly inside their parent. *)
    let child_total =
      List.fold_left (fun a c -> a +. c.Prof.total_s) 0.0 n.Prof.children
    in
    Alcotest.(check bool)
      (path ^ ": children fit inside parent")
      true
      (child_total <= n.Prof.total_s +. eps);
    List.iter (check_node path) n.Prof.children
  in
  List.iter (check_node "") p.Prof.roots;
  Alcotest.(check (float 1e-9)) "wall_total_s = sum of root totals"
    (List.fold_left (fun a n -> a +. n.Prof.total_s) 0.0 p.Prof.roots)
    p.Prof.wall_total_s;
  (* The flat report reconciles with the tree. *)
  let self_by_label = Hashtbl.create 64 and count_by_label = Hashtbl.create 64 in
  let rec fold n =
    let get tbl k = Option.value ~default:0.0 (Hashtbl.find_opt tbl k) in
    Hashtbl.replace self_by_label n.Prof.label (get self_by_label n.Prof.label +. n.Prof.self_s);
    Hashtbl.replace count_by_label n.Prof.label
      (get count_by_label n.Prof.label +. float_of_int n.Prof.count);
    List.iter fold n.Prof.children
  in
  List.iter fold p.Prof.roots;
  List.iter
    (fun f ->
      Alcotest.(check (float 1e-9))
        (f.Prof.flat_label ^ ": flat self sums the tree")
        (Option.value ~default:0.0 (Hashtbl.find_opt self_by_label f.Prof.flat_label))
        f.Prof.flat_self_s;
      Alcotest.(check (float 0.0))
        (f.Prof.flat_label ^ ": flat count sums the tree")
        (Option.value ~default:0.0 (Hashtbl.find_opt count_by_label f.Prof.flat_label))
        (float_of_int f.Prof.flat_count))
    (Prof.flatten p);
  (* Both wall-clock exports are parseable JSON — and only those; the
     deterministic exports are covered byte-exactly by test_obs. *)
  (match Json.parse (Json.to_string (Prof.to_json p)) with
  | Ok (Json.Obj fields) ->
      List.iter
        (fun k ->
          Alcotest.(check bool) ("profile json has " ^ k) true (List.mem_assoc k fields))
        [ "wall_total_s"; "tree"; "flat" ]
  | Ok _ -> Alcotest.fail "profile json is not an object"
  | Error e -> Alcotest.failf "profile json: %s" e);
  match Json.parse (Prof.trace_wall_json r.Engine.obs) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "trace_wall json: %s" e

let () =
  Alcotest.run "bench"
    [
      ( "schema",
        [
          Alcotest.test_case "json roundtrip property" `Quick test_doc_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "foreign schema rejected" `Quick test_rejects_foreign_schema;
          Alcotest.test_case "non-finite floats dropped" `Quick
            test_make_result_drops_nonfinite;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identical docs pass" `Quick test_diff_identical;
          Alcotest.test_case "wall regression fails" `Quick test_diff_wall_regression;
          Alcotest.test_case "threshold boundary" `Quick test_diff_wall_within_threshold;
          Alcotest.test_case "improvement passes" `Quick test_diff_wall_improvement;
          Alcotest.test_case "counter drift fails" `Quick test_diff_counter_drift;
          Alcotest.test_case "counters-only mode" `Quick test_diff_counters_only;
          Alcotest.test_case "missing and added rows" `Quick
            test_diff_missing_and_added_rows;
          Alcotest.test_case "mode mismatch warns" `Quick test_diff_mode_mismatch;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "label aggregation" `Quick test_prof_aggregation;
          Alcotest.test_case "recursion not double-counted" `Quick test_prof_recursion;
          Alcotest.test_case "empty span list" `Quick test_prof_empty;
          Alcotest.test_case "invariants on an EN run" `Quick
            test_prof_invariants_on_en_run;
        ] );
    ]
