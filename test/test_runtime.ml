module Bitvec = Dstress_util.Bitvec
module Prng = Dstress_util.Prng
module Group = Dstress_crypto.Group
module Builder = Dstress_circuit.Builder
module Word = Dstress_circuit.Word
module Circuit = Dstress_circuit.Circuit
open Dstress_runtime

let grp = Group.by_name "toy"

(* ------------------------------------------------------------------ *)
(* Graph                                                               *)
(* ------------------------------------------------------------------ *)

let diamond () = Graph.create ~n:4 ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_graph_basics () =
  let g = diamond () in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check (list int)) "out 0" [ 1; 2 ] (Graph.out_neighbors g 0);
  Alcotest.(check (list int)) "in 3" [ 1; 2 ] (Graph.in_neighbors g 3);
  Alcotest.(check (list int)) "neighbors 1" [ 0; 3 ] (Graph.neighbors g 1);
  Alcotest.(check int) "out degree" 2 (Graph.out_degree g 0);
  Alcotest.(check int) "in degree" 0 (Graph.in_degree g 0);
  Alcotest.(check int) "max degree" 2 (Graph.max_degree g);
  Alcotest.(check bool) "has edge" true (Graph.has_edge g 0 1);
  Alcotest.(check bool) "no reverse edge" false (Graph.has_edge g 1 0)

let test_graph_slots () =
  let g = diamond () in
  Alcotest.(check int) "out slot 0->2" 1 (Graph.out_slot g ~src:0 ~dst:2);
  Alcotest.(check int) "in slot 2->3" 1 (Graph.in_slot g ~src:2 ~dst:3);
  Alcotest.(check int) "neighbor slot" 1 (Graph.neighbor_slot g ~owner:3 ~other:2);
  Alcotest.check_raises "missing edge" Not_found (fun () ->
      ignore (Graph.out_slot g ~src:3 ~dst:0))

let test_graph_rejects_malformed () =
  let bad f = Alcotest.(check bool) "rejected" true
    (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  bad (fun () -> Graph.create ~n:2 ~edges:[ (0, 0) ]);
  bad (fun () -> Graph.create ~n:2 ~edges:[ (0, 5) ]);
  bad (fun () -> Graph.create ~n:2 ~edges:[ (0, 1); (0, 1) ]);
  bad (fun () -> Graph.create ~n:0 ~edges:[])

(* ------------------------------------------------------------------ *)
(* Vertex programs: a tiny "token passing" program for engine tests.   *)
(*                                                                     *)
(* Each vertex's state is one l-bit counter; every round it sends its  *)
(* counter to each out-neighbor and replaces the counter with the sum  *)
(* of incoming messages. The aggregate is the sum of all counters:     *)
(* on a directed ring the total token count is invariant.              *)
(* ------------------------------------------------------------------ *)

let token_program ~l ~iterations ~noisy =
  {
    Vertex_program.name = "token";
    state_bits = l;
    message_bits = l;
    iterations;
    sensitivity = 1;
    epsilon = (if noisy then 0.5 else 50.0 (* huge eps ~ negligible noise *));
    noise_max_magnitude = (if noisy then 40 else 1);
    agg_bits = l + 6;
    build_update =
      (fun b ~state ~incoming ->
        let total =
          Word.truncate
            (Word.sum b ~bits:(l + 4) (Array.to_list incoming))
            ~bits:l
        in
        (total, Array.map (fun _ -> state) incoming));
    build_aggregand = (fun b ~state -> Word.zero_extend b state ~bits:(l + 6));
  }

let ring_graph n = Graph.create ~n ~edges:(List.init n (fun i -> (i, (i + 1) mod n)))

let test_update_circuit_shapes () =
  let p = token_program ~l:8 ~iterations:2 ~noisy:false in
  let c = Vertex_program.update_circuit p ~degree:3 in
  Alcotest.(check int) "inputs" (8 + 24) c.Circuit.num_inputs;
  Alcotest.(check int) "outputs" (8 + 24) (Array.length c.Circuit.outputs)

let test_update_circuit_rejects_bad_fragment () =
  let bad =
    { (token_program ~l:8 ~iterations:1 ~noisy:false) with
      Vertex_program.build_update =
        (fun b ~state ~incoming ->
          ignore incoming;
          (state, [| Word.constant b ~bits:4 0 |]))
    }
  in
  Alcotest.(check bool) "rejected" true
    (try ignore (Vertex_program.update_circuit bad ~degree:1); false
     with Invalid_argument _ -> true)

let test_aggregate_circuit_zero_noise_is_sum () =
  let p = token_program ~l:8 ~iterations:1 ~noisy:false in
  let c = Vertex_program.aggregate_circuit p ~count:3 in
  let inputs =
    Array.concat
      [
        Array.init 8 (fun i -> (10 lsr i) land 1 = 1);
        Array.init 8 (fun i -> (20 lsr i) land 1 = 1);
        Array.init 8 (fun i -> (30 lsr i) land 1 = 1);
        Array.make 33 false;
      ]
  in
  let out = Circuit.eval c inputs in
  Alcotest.(check int) "sum" 60 (Bitvec.to_int (Bitvec.of_bool_array out))

let test_partial_and_combine_match_single () =
  let p = token_program ~l:8 ~iterations:1 ~noisy:false in
  let states = [ 3; 7; 11; 19; 23 ] in
  let eval c inputs =
    Bitvec.to_int (Bitvec.of_bool_array (Circuit.eval c (Array.of_list inputs)))
  in
  let bits_of v n = List.init n (fun i -> (v lsr i) land 1 = 1) in
  (* direct: all five states + zero noise *)
  let direct =
    eval
      (Vertex_program.aggregate_circuit p ~count:5)
      (List.concat_map (fun v -> bits_of v 8) states @ bits_of 0 33)
  in
  (* two-level: groups of 3 and 2, then combine with zero noise *)
  let part1 =
    eval
      (Vertex_program.partial_aggregate_circuit p ~count:3)
      (List.concat_map (fun v -> bits_of v 8) [ 3; 7; 11 ])
  in
  let part2 =
    eval
      (Vertex_program.partial_aggregate_circuit p ~count:2)
      (List.concat_map (fun v -> bits_of v 8) [ 19; 23 ])
  in
  let combined =
    eval
      (Vertex_program.combine_circuit p ~count:2 ~noised:true)
      (bits_of part1 14 @ bits_of part2 14 @ bits_of 0 33)
  in
  Alcotest.(check int) "two-level equals single" direct combined

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let init_states prng n l = Array.init n (fun _ -> Bitvec.of_int ~bits:l (1 + Prng.int prng 10))

let test_engine_matches_plaintext_ring () =
  let n = 6 and l = 8 in
  let g = ring_graph n in
  let p = token_program ~l ~iterations:3 ~noisy:false in
  let states = init_states (Prng.of_int 7) n l in
  let expected = Engine.run_plaintext p ~degree_bound:2 ~graph:g ~initial_states:states in
  let cfg = Engine.default_config grp ~k:2 ~degree_bound:2 in
  let report = Engine.run cfg p ~graph:g ~initial_states:states in
  (* Noise is negligible at eps=50: outputs must agree exactly. *)
  Alcotest.(check int) "engine = plaintext" expected report.Engine.output;
  Alcotest.(check int) "no transfer failures" 0 report.Engine.transfer_failures

let test_engine_token_conservation () =
  (* On a ring, tokens alternate between vertex states (after odd
     computation steps) and in-flight messages (after even ones); with an
     odd iteration count the engine's final computation step lands the
     tokens back in the states, so the aggregate equals the initial
     total. *)
  let n = 5 and l = 8 in
  let g = ring_graph n in
  let p = token_program ~l ~iterations:3 ~noisy:false in
  let states = init_states (Prng.of_int 9) n l in
  let total =
    Array.fold_left (fun acc s -> acc + Bitvec.to_int s) 0 states
  in
  Alcotest.(check int) "tokens conserved" total
    (Engine.run_plaintext p ~degree_bound:2 ~graph:g ~initial_states:states)

let test_engine_noise_applied () =
  (* With real eps, repeated runs under different seeds give different
     outputs centered near the true value. *)
  let n = 4 and l = 8 in
  let g = ring_graph n in
  let p = token_program ~l ~iterations:1 ~noisy:true in
  let states = init_states (Prng.of_int 3) n l in
  let expected = Engine.run_plaintext p ~degree_bound:2 ~graph:g ~initial_states:states
  in
  let outputs =
    List.init 5 (fun i ->
        let cfg =
          { (Engine.default_config grp ~k:1 ~degree_bound:2) with
            Engine.seed = "noise" ^ string_of_int i }
        in
        (Engine.run cfg p ~graph:g ~initial_states:states).Engine.output)
  in
  Alcotest.(check bool) "outputs vary" true
    (List.length (List.sort_uniq compare outputs) > 1);
  List.iter
    (fun o ->
      Alcotest.(check bool) "within noise bound" true (abs (o - expected) <= 40))
    outputs

let test_engine_two_level_aggregation () =
  let n = 6 and l = 8 in
  let g = ring_graph n in
  let p = token_program ~l ~iterations:2 ~noisy:false in
  let states = init_states (Prng.of_int 11) n l in
  let expected = Engine.run_plaintext p ~degree_bound:2 ~graph:g ~initial_states:states in
  let cfg =
    { (Engine.default_config grp ~k:2 ~degree_bound:2) with
      Engine.aggregation = Engine.Two_level 3 }
  in
  let report = Engine.run cfg p ~graph:g ~initial_states:states in
  Alcotest.(check int) "two-level matches" expected report.Engine.output

let test_engine_phase_accounting () =
  let n = 4 and l = 8 in
  let g = ring_graph n in
  let p = token_program ~l ~iterations:2 ~noisy:false in
  let states = init_states (Prng.of_int 5) n l in
  let cfg = Engine.default_config grp ~k:1 ~degree_bound:2 in
  let report = Engine.run cfg p ~graph:g ~initial_states:states in
  List.iter
    (fun phase ->
      let bytes = List.assoc phase report.Engine.phase_bytes in
      Alcotest.(check bool) (Engine.phase_name phase ^ " has traffic") true (bytes > 0))
    [ Engine.Setup; Engine.Initialization; Engine.Computation; Engine.Communication;
      Engine.Aggregation ];
  let total_phases =
    List.fold_left (fun acc (_, b) -> acc + b) 0 report.Engine.phase_bytes
  in
  Alcotest.(check int) "phases sum to total" (Dstress_mpc.Traffic.total report.Engine.traffic)
    total_phases

let test_engine_mpc_counters () =
  let n = 4 and l = 6 in
  let g = ring_graph n in
  let p = token_program ~l ~iterations:1 ~noisy:false in
  let states = init_states (Prng.of_int 13) n l in
  let cfg = Engine.default_config grp ~k:1 ~degree_bound:2 in
  let report = Engine.run cfg p ~graph:g ~initial_states:states in
  Alcotest.(check bool) "rounds counted" true (report.Engine.mpc_rounds > 0);
  Alcotest.(check bool) "ANDs counted" true (report.Engine.mpc_and_gates > 0);
  Alcotest.(check bool) "OTs counted" true (report.Engine.mpc_ots > 0)

(* ------------------------------------------------------------------ *)
(* Executor equivalence: the parallel backend must be bit-identical to  *)
(* the sequential one — output, per-phase bytes, the whole traffic      *)
(* matrix and every counter. Randomness is keyed per task, so the       *)
(* schedule cannot leak into the result.                                *)
(* ------------------------------------------------------------------ *)

module Traffic = Dstress_mpc.Traffic

let check_same_report label (a : Engine.report) (b : Engine.report) =
  let phases l = List.map (fun (p, v) -> (Engine.phase_name p, v)) l in
  Alcotest.(check int) (label ^ ": output") a.Engine.output b.Engine.output;
  Alcotest.(check (list (pair string int))) (label ^ ": phase bytes")
    (phases a.Engine.phase_bytes) (phases b.Engine.phase_bytes);
  let t = a.Engine.traffic and t' = b.Engine.traffic in
  Alcotest.(check int) (label ^ ": total traffic") (Traffic.total t) (Traffic.total t');
  Alcotest.(check (list int)) (label ^ ": per-node traffic")
    (List.init (Traffic.parties t) (Traffic.by_node t))
    (List.init (Traffic.parties t') (Traffic.by_node t'));
  Alcotest.(check int) (label ^ ": external traffic") (Traffic.external_total t)
    (Traffic.external_total t');
  Alcotest.(check int) (label ^ ": failures") a.Engine.transfer_failures
    b.Engine.transfer_failures;
  Alcotest.(check int) (label ^ ": recovered") a.Engine.recovered_failures
    b.Engine.recovered_failures;
  Alcotest.(check int) (label ^ ": unrecovered") a.Engine.unrecovered_failures
    b.Engine.unrecovered_failures;
  Alcotest.(check int) (label ^ ": retries") a.Engine.transfer_retries
    b.Engine.transfer_retries;
  Alcotest.(check int) (label ^ ": crash recoveries") a.Engine.crash_recoveries
    b.Engine.crash_recoveries;
  Alcotest.(check bool) (label ^ ": fault counters") true
    (a.Engine.faults_injected = b.Engine.faults_injected);
  Alcotest.(check (float 0.0)) (label ^ ": retry epsilon") a.Engine.retry_epsilon
    b.Engine.retry_epsilon;
  Alcotest.(check int) (label ^ ": mpc rounds") a.Engine.mpc_rounds b.Engine.mpc_rounds;
  Alcotest.(check int) (label ^ ": mpc ANDs") a.Engine.mpc_and_gates b.Engine.mpc_and_gates;
  Alcotest.(check int) (label ^ ": mpc OTs") a.Engine.mpc_ots b.Engine.mpc_ots

let test_executors_agree_ring () =
  let n = 6 and l = 8 in
  let g = ring_graph n in
  let p = token_program ~l ~iterations:3 ~noisy:true in
  let states = init_states (Prng.of_int 21) n l in
  let run executor =
    let cfg =
      { (Engine.default_config grp ~k:2 ~degree_bound:2 ~seed:"exec-eq") with
        Engine.executor }
    in
    Engine.run cfg p ~graph:g ~initial_states:states
  in
  check_same_report "ring" (run Executor.sequential) (run (Executor.parallel ~jobs:4))

let test_executors_agree_two_level_uneven () =
  (* n = 5 with fan-out 3 leaves an uneven last group (3 + 2): the leaf
     batch has heterogeneous tasks and the root must still combine them
     in group order. *)
  let n = 5 and l = 8 in
  let g = ring_graph n in
  let p = token_program ~l ~iterations:2 ~noisy:true in
  let states = init_states (Prng.of_int 23) n l in
  let run executor =
    let cfg =
      { (Engine.default_config grp ~k:2 ~degree_bound:2 ~seed:"exec-2lvl") with
        Engine.aggregation = Engine.Two_level 3; Engine.executor }
    in
    Engine.run cfg p ~graph:g ~initial_states:states
  in
  check_same_report "two-level" (run Executor.sequential) (run (Executor.parallel ~jobs:4))

let test_executor_map_basics () =
  let sq = Executor.map Executor.sequential 5 (fun i -> i * i) in
  let pl = Executor.map (Executor.parallel ~jobs:3) 5 (fun i -> i * i) in
  Alcotest.(check (array int)) "map results in index order" sq pl;
  Alcotest.(check string) "parallel name" "parallel:3"
    (Executor.name (Executor.parallel ~jobs:3));
  Alcotest.(check bool) "jobs <= 1 collapses to sequential" true
    (Executor.parallel ~jobs:1 = Executor.sequential);
  Alcotest.check_raises "task exception propagates" Exit (fun () ->
      ignore
        (Executor.map (Executor.parallel ~jobs:2) 4 (fun i ->
             if i = 2 then raise Exit else i)))

let test_executor_of_string () =
  let ok spec =
    match Executor.of_string spec with
    | Ok e -> e
    | Error m -> Alcotest.failf "of_string %S rejected: %s" spec m
  in
  Alcotest.(check bool) "sequential" true (ok "sequential" = Executor.sequential);
  Alcotest.(check bool) "seq alias" true (ok "seq" = Executor.sequential);
  Alcotest.(check bool) "case/space insensitive" true
    (ok "  Parallel:4 " = Executor.parallel ~jobs:4);
  Alcotest.(check bool) "bare parallel uses the recommended domain count" true
    (ok "parallel" = Executor.parallel ~jobs:(Domain.recommended_domain_count ()));
  Alcotest.(check string) "distributed:3" "distributed:3" (Executor.name (ok "distributed:3"));
  (match ok "distributed" with
  | Executor.Distributed _ -> ()
  | _ -> Alcotest.fail "bare distributed must pick the Distributed backend");
  (* Names round-trip through the parser. *)
  List.iter
    (fun spec ->
      let e = ok spec in
      Alcotest.(check string)
        (Printf.sprintf "%S round-trips" spec)
        (Executor.name e)
        (Executor.name (ok (Executor.name e))))
    [ "sequential"; "parallel:2"; "parallel:7"; "distributed:1"; "distributed:4" ];
  List.iter
    (fun spec ->
      match Executor.of_string spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "of_string %S must be rejected" spec)
    [ ""; "paralel"; "parallel:"; "parallel:0"; "parallel:x"; "distributed:-1"; "seq:2" ]

let test_setup_traffic_is_external () =
  (* The trusted party's setup download lives on the dedicated external
     row: it equals the Setup phase bytes and never appears as node-sent
     bytes (no self-loops). *)
  let n = 4 and l = 8 in
  let g = ring_graph n in
  let p = token_program ~l ~iterations:1 ~noisy:false in
  let states = init_states (Prng.of_int 31) n l in
  let cfg = Engine.default_config grp ~k:1 ~degree_bound:2 in
  let r = Engine.run cfg p ~graph:g ~initial_states:states in
  let ext = Traffic.external_total r.Engine.traffic in
  Alcotest.(check bool) "setup bytes recorded" true (ext > 0);
  Alcotest.(check int) "external row = setup phase bytes"
    (List.assoc Engine.Setup r.Engine.phase_bytes) ext;
  (* The external row is receive-only: it never inflates anyone's sent
     bytes (a self-loop would count twice in by_node). *)
  let sent = List.init n (Traffic.sent_by r.Engine.traffic) in
  let recv = List.init n (Traffic.received_by r.Engine.traffic) in
  Alcotest.(check int) "sent + external = received totals"
    (List.fold_left ( + ) 0 recv)
    (List.fold_left ( + ) 0 sent + ext)

let test_engine_rejects_bad_inputs () =
  let g = ring_graph 4 in
  let p = token_program ~l:8 ~iterations:1 ~noisy:false in
  let cfg = Engine.default_config grp ~k:1 ~degree_bound:2 in
  Alcotest.check_raises "state count"
    (Invalid_argument "Engine.run: one initial state per vertex required") (fun () ->
      ignore (Engine.run cfg p ~graph:g ~initial_states:[| Bitvec.create 8 false |]));
  Alcotest.check_raises "degree bound"
    (Invalid_argument "Engine.run: vertex degree exceeds bound") (fun () ->
      let tight = { cfg with Engine.degree_bound = 1 } in
      ignore
        (Engine.run tight p ~graph:g
           ~initial_states:(Array.make 4 (Bitvec.create 8 false))))

let () =
  Alcotest.run "runtime"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "slots" `Quick test_graph_slots;
          Alcotest.test_case "rejects malformed" `Quick test_graph_rejects_malformed;
        ] );
      ( "vertex-program",
        [
          Alcotest.test_case "update circuit shapes" `Quick test_update_circuit_shapes;
          Alcotest.test_case "rejects bad fragment" `Quick
            test_update_circuit_rejects_bad_fragment;
          Alcotest.test_case "aggregate zero-noise sum" `Quick
            test_aggregate_circuit_zero_noise_is_sum;
          Alcotest.test_case "two-level = single" `Quick test_partial_and_combine_match_single;
        ] );
      ( "engine",
        [
          Alcotest.test_case "matches plaintext" `Quick test_engine_matches_plaintext_ring;
          Alcotest.test_case "token conservation" `Quick test_engine_token_conservation;
          Alcotest.test_case "noise applied" `Quick test_engine_noise_applied;
          Alcotest.test_case "two-level aggregation" `Quick test_engine_two_level_aggregation;
          Alcotest.test_case "phase accounting" `Quick test_engine_phase_accounting;
          Alcotest.test_case "mpc counters" `Quick test_engine_mpc_counters;
          Alcotest.test_case "rejects bad inputs" `Quick test_engine_rejects_bad_inputs;
        ] );
      ( "executor",
        [
          Alcotest.test_case "map basics" `Quick test_executor_map_basics;
          Alcotest.test_case "of_string specs" `Quick test_executor_of_string;
          Alcotest.test_case "sequential = parallel (ring)" `Quick test_executors_agree_ring;
          Alcotest.test_case "sequential = parallel (two-level, uneven)" `Quick
            test_executors_agree_two_level_uneven;
          Alcotest.test_case "setup traffic on external row" `Quick
            test_setup_traffic_is_external;
        ] );
    ]
