(* Validate that each file named on the command line parses as JSON
   (using the same strict parser the exporters are tested against).
   With --bench, additionally require each file to decode as a
   dstress-bench/1 result document. Exits nonzero on the first
   malformed file — used by bin/ci.sh to smoke-check the
   `dstress stress --trace/--metrics` and `bench --json` outputs. *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let () =
  let ok = ref true in
  let bench = ref false in
  Array.iteri
    (fun i path ->
      if i > 0 then
        if path = "--bench" then bench := true
        else
          match Dstress_obs.Json.parse (read_file path) with
          | Error e ->
              Printf.eprintf "%s: %s\n" path e;
              ok := false
          | Ok _ when not !bench -> Printf.printf "%s: valid JSON\n" path
          | Ok json -> (
              match Dstress_obs.Bench_result.of_json json with
              | Ok doc ->
                  Printf.printf "%s: valid bench document (%d suite(s))\n" path
                    (List.length doc.Dstress_obs.Bench_result.suites)
              | Error e ->
                  Printf.eprintf "%s: not a bench document: %s\n" path e;
                  ok := false))
    Sys.argv;
  if not !ok then exit 1
