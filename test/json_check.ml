(* Validate that each file named on the command line parses as JSON
   (using the same strict parser the exporters are tested against).
   Exits nonzero on the first malformed file — used by bin/ci.sh to
   smoke-check `dstress stress --trace/--metrics` output. *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let () =
  let ok = ref true in
  Array.iteri
    (fun i path ->
      if i > 0 then
        match Dstress_obs.Json.parse (read_file path) with
        | Ok _ -> Printf.printf "%s: valid JSON\n" path
        | Error e ->
            Printf.eprintf "%s: %s\n" path e;
            ok := false)
    Sys.argv;
  if not !ok then exit 1
