(* Cross-layer integration tests: whole-protocol properties that no
   single library suite can check. *)

module Bitvec = Dstress_util.Bitvec
module Prng = Dstress_util.Prng
module Group = Dstress_crypto.Group
module Ot_ext = Dstress_crypto.Ot_ext
module Word = Dstress_circuit.Word
module Builder = Dstress_circuit.Builder
module Graph = Dstress_runtime.Graph
module Engine = Dstress_runtime.Engine
module Vertex_program = Dstress_runtime.Vertex_program
module Reference = Dstress_risk.Reference
module En_program = Dstress_risk.En_program
module Budget = Dstress_dp.Budget

let grp = Group.by_name "toy"

let small_economy =
  {
    Reference.en_n = 4;
    cash = [| 0.0; 12.0; 20.0; 8.0 |];
    debts = [ (0, 1, 15.0); (1, 2, 10.0); (2, 3, 12.0); (3, 0, 4.0) ];
  }

let run_engine ?(epsilon = 50.0) ?(seed = "int") ?(k = 2) ?(iterations = 3) () =
  let graph = En_program.graph_of_instance small_economy in
  let d = Graph.max_degree graph in
  let p = En_program.make ~epsilon ~sensitivity:1 ~noise_max:30 ~l:12 ~degree:d ~iterations () in
  let states = En_program.encode_instance small_economy ~graph ~l:12 ~degree:d ~scale:0.25 in
  let cfg = { (Engine.default_config grp ~k ~degree_bound:d) with Engine.seed } in
  (p, graph, states, Engine.run cfg p ~graph ~initial_states:states)

(* ------------------------------------------------------------------ *)

let test_engine_deterministic () =
  let _, _, _, r1 = run_engine ~seed:"same" () in
  let _, _, _, r2 = run_engine ~seed:"same" () in
  Alcotest.(check int) "same seed, same output" r1.Engine.output r2.Engine.output

let test_noise_varies_with_seed () =
  let outputs =
    List.init 6 (fun i -> (let _, _, _, r = run_engine ~epsilon:0.8 ~seed:("s" ^ string_of_int i) () in r.Engine.output))
  in
  Alcotest.(check bool) "distinct noised outputs" true
    (List.length (List.sort_uniq compare outputs) > 1)

let test_noise_scales_with_epsilon () =
  (* Mean absolute deviation from the plaintext value must shrink as
     epsilon grows. *)
  let p, graph, states, _ = run_engine () in
  let truth =
    Engine.run_plaintext p ~degree_bound:(Graph.max_degree graph) ~graph
      ~initial_states:states
  in
  let mad epsilon =
    let errs =
      List.init 8 (fun i ->
          let _, _, _, r = run_engine ~epsilon ~seed:(Printf.sprintf "e%f-%d" epsilon i) () in
          abs (r.Engine.output - truth))
    in
    float_of_int (List.fold_left ( + ) 0 errs) /. 8.0
  in
  let loose = mad 0.4 and tight = mad 8.0 in
  Alcotest.(check bool)
    (Printf.sprintf "eps=0.4 noisier than eps=8 (%.1f vs %.1f)" loose tight)
    true (loose > tight)

let test_crypto_backend_end_to_end () =
  (* The full cryptographic OT path through the whole engine, on the
     smallest meaningful instance. *)
  let graph = Graph.create ~n:3 ~edges:[ (0, 1); (1, 2); (2, 0) ] in
  let d = Graph.max_degree graph in
  let p = En_program.make ~epsilon:50.0 ~sensitivity:1 ~noise_max:4 ~l:8 ~degree:d ~iterations:1 () in
  let inst =
    { Reference.en_n = 3; cash = [| 0.0; 10.0; 10.0 |];
      debts = [ (0, 1, 8.0); (1, 2, 5.0); (2, 0, 3.0) ] }
  in
  let states = En_program.encode_instance inst ~graph ~l:8 ~degree:d ~scale:1.0 in
  let expected = Engine.run_plaintext p ~degree_bound:d ~graph ~initial_states:states in
  let cfg =
    { (Engine.default_config grp ~k:1 ~degree_bound:d ~seed:"crypto-e2e") with
      Engine.ot_mode = Ot_ext.Crypto }
  in
  let r = Engine.run cfg p ~graph ~initial_states:states in
  Alcotest.(check int) "crypto backend matches" expected r.Engine.output

let test_backends_agree () =
  (* Same run, both OT backends: identical protocol result (noise comes
     from the same engine PRNG, not the OT layer). *)
  let graph = En_program.graph_of_instance small_economy in
  let d = Graph.max_degree graph in
  let p = En_program.make ~epsilon:1.0 ~sensitivity:5 ~noise_max:30 ~l:10 ~degree:d ~iterations:2 () in
  let states = En_program.encode_instance small_economy ~graph ~l:10 ~degree:d ~scale:0.25 in
  let run mode =
    let cfg =
      { (Engine.default_config grp ~k:1 ~degree_bound:d ~seed:"agree") with
        Engine.ot_mode = mode }
    in
    Engine.run cfg p ~graph ~initial_states:states
  in
  let sim = run Ot_ext.Simulation and crypto = run Ot_ext.Crypto in
  Alcotest.(check int) "identical outputs" sim.Engine.output crypto.Engine.output;
  Alcotest.(check int) "identical traffic"
    (Dstress_mpc.Traffic.total sim.Engine.traffic)
    (Dstress_mpc.Traffic.total crypto.Engine.traffic)

let test_isolated_vertex () =
  (* A vertex with no edges must still participate (its block computes,
     it contributes to the aggregate). *)
  let graph = Graph.create ~n:3 ~edges:[ (0, 1) ] in
  let p =
    {
      Vertex_program.name = "count";
      state_bits = 4;
      message_bits = 4;
      iterations = 1;
      sensitivity = 1;
      epsilon = 50.0;
      noise_max_magnitude = 2;
      agg_bits = 8;
      build_update = (fun _b ~state ~incoming -> (state, Array.map (fun _ -> state) incoming));
      build_aggregand = (fun b ~state -> Word.zero_extend b state ~bits:8);
    }
  in
  let states = [| Bitvec.of_int ~bits:4 3; Bitvec.of_int ~bits:4 5; Bitvec.of_int ~bits:4 7 |] in
  let cfg = Engine.default_config grp ~k:1 ~degree_bound:1 ~seed:"iso" in
  let r = Engine.run cfg p ~graph ~initial_states:states in
  Alcotest.(check int) "sum includes isolated vertex" 15 r.Engine.output

let test_edgeless_graph () =
  let graph = Graph.create ~n:3 ~edges:[] in
  let p =
    {
      Vertex_program.name = "sum";
      state_bits = 4;
      message_bits = 4;
      iterations = 2;
      sensitivity = 1;
      epsilon = 50.0;
      noise_max_magnitude = 2;
      agg_bits = 8;
      build_update = (fun _b ~state ~incoming -> (state, Array.map (fun _ -> state) incoming));
      build_aggregand = (fun b ~state -> Word.zero_extend b state ~bits:8);
    }
  in
  let states = Array.init 3 (fun i -> Bitvec.of_int ~bits:4 (i + 1)) in
  let cfg = Engine.default_config grp ~k:1 ~degree_bound:1 ~seed:"edgeless" in
  let r = Engine.run cfg p ~graph ~initial_states:states in
  Alcotest.(check int) "no communication, correct sum" 6 r.Engine.output;
  Alcotest.(check int) "no comm traffic" 0
    (List.assoc Engine.Communication r.Engine.phase_bytes)

let test_tiny_table_failures_surface () =
  (* Undersized decryption tables must show up in the report, not crash. *)
  let graph = En_program.graph_of_instance small_economy in
  let d = Graph.max_degree graph in
  let p = En_program.make ~epsilon:50.0 ~sensitivity:1 ~noise_max:4 ~l:8 ~degree:d ~iterations:2 () in
  let states = En_program.encode_instance small_economy ~graph ~l:8 ~degree:d ~scale:1.0 in
  let cfg =
    { (Engine.default_config grp ~k:2 ~degree_bound:d ~seed:"tiny") with
      Engine.table_radius = 1; Engine.transfer_alpha = 0.95 }
  in
  let r = Engine.run cfg p ~graph ~initial_states:states in
  Alcotest.(check bool) "failures recorded" true (r.Engine.transfer_failures > 0)

let test_budget_over_runs () =
  (* The §4.5 policy driven through the accountant across a year. *)
  let eps_max, eps_q, runs = Dstress_risk.Sensitivity.paper_epsilon_budget () in
  let b = Budget.create ~epsilon_max:eps_max in
  for i = 1 to runs do
    Alcotest.(check bool)
      (Printf.sprintf "run %d allowed" i)
      true
      (Result.is_ok (Budget.spend b ~label:(Printf.sprintf "stress-test-%d" i) ~epsilon:eps_q))
  done;
  Alcotest.(check bool) "fourth run refused" true
    (Result.is_error (Budget.spend b ~label:"one-too-many" ~epsilon:eps_q));
  Budget.replenish b;
  Alcotest.(check bool) "next year allowed" true
    (Result.is_ok (Budget.spend b ~label:"next-year" ~epsilon:eps_q))

let test_executors_agree_en () =
  (* The EN integration scenario must be bit-identical under the
     sequential and the domain-pool executors: output, per-phase bytes
     and the full per-node traffic breakdown. *)
  let graph = En_program.graph_of_instance small_economy in
  let d = Graph.max_degree graph in
  let p = En_program.make ~epsilon:1.0 ~sensitivity:1 ~noise_max:30 ~l:12 ~degree:d ~iterations:3 () in
  let states = En_program.encode_instance small_economy ~graph ~l:12 ~degree:d ~scale:0.25 in
  let run executor =
    let cfg =
      { (Engine.default_config grp ~k:2 ~degree_bound:d ~seed:"exec-en") with
        Engine.executor }
    in
    Engine.run cfg p ~graph ~initial_states:states
  in
  let seq = run Dstress_runtime.Executor.sequential in
  let par = run (Dstress_runtime.Executor.parallel ~jobs:4) in
  Alcotest.(check int) "same output" seq.Engine.output par.Engine.output;
  Alcotest.(check (list (pair string int))) "same phase bytes"
    (List.map (fun (p, b) -> (Engine.phase_name p, b)) seq.Engine.phase_bytes)
    (List.map (fun (p, b) -> (Engine.phase_name p, b)) par.Engine.phase_bytes);
  let module T = Dstress_mpc.Traffic in
  Alcotest.(check (list int)) "same per-node traffic"
    (List.init (T.parties seq.Engine.traffic) (T.by_node seq.Engine.traffic))
    (List.init (T.parties par.Engine.traffic) (T.by_node par.Engine.traffic));
  Alcotest.(check int) "same mpc OTs" seq.Engine.mpc_ots par.Engine.mpc_ots

let test_report_internal_consistency () =
  let _, _, _, r = run_engine () in
  (* OT count = AND gates x n(n-1) summed across sessions; with uniform
     block size it divides evenly. *)
  Alcotest.(check int) "OTs = ANDs * pairs" (r.Engine.mpc_and_gates * 3 * 2) r.Engine.mpc_ots;
  let phase_total = List.fold_left (fun a (_, b) -> a + b) 0 r.Engine.phase_bytes in
  Alcotest.(check int) "phase bytes sum to matrix total"
    (Dstress_mpc.Traffic.total r.Engine.traffic)
    phase_total

(* ------------------------------------------------------------------ *)

let prop_engine_matches_plaintext_on_random_graphs =
  QCheck2.Test.make ~name:"engine = plaintext circuit on random instances" ~count:6
    QCheck2.Gen.(int_bound 1000)
    (fun seed ->
      let t = Prng.of_int seed in
      let topo =
        Dstress_graphgen.Topology.erdos_renyi t ~n:5 ~avg_degree:1.5 ~max_degree:3
      in
      let inst = Dstress_graphgen.Banking.en_of_topology t topo () in
      let graph = En_program.graph_of_instance inst in
      let d = max 1 (Graph.max_degree graph) in
      let p =
        En_program.make ~epsilon:50.0 ~sensitivity:1 ~noise_max:2 ~l:10 ~degree:d
          ~iterations:2 ()
      in
      let states = En_program.encode_instance inst ~graph ~l:10 ~degree:d ~scale:0.25 in
      let expected = Engine.run_plaintext p ~degree_bound:d ~graph ~initial_states:states in
      let cfg = Engine.default_config grp ~k:1 ~degree_bound:d ~seed:(string_of_int seed) in
      let r = Engine.run cfg p ~graph ~initial_states:states in
      r.Engine.output = expected)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest [ prop_engine_matches_plaintext_on_random_graphs ]
  in
  Alcotest.run "integration"
    [
      ( "engine",
        [
          Alcotest.test_case "deterministic" `Quick test_engine_deterministic;
          Alcotest.test_case "noise varies with seed" `Quick test_noise_varies_with_seed;
          Alcotest.test_case "noise scales with epsilon" `Slow test_noise_scales_with_epsilon;
          Alcotest.test_case "crypto backend e2e" `Slow test_crypto_backend_end_to_end;
          Alcotest.test_case "backends agree" `Slow test_backends_agree;
          Alcotest.test_case "isolated vertex" `Quick test_isolated_vertex;
          Alcotest.test_case "edgeless graph" `Quick test_edgeless_graph;
          Alcotest.test_case "table failures surface" `Quick test_tiny_table_failures_surface;
          Alcotest.test_case "report consistency" `Quick test_report_internal_consistency;
          Alcotest.test_case "executors agree on EN" `Quick test_executors_agree_en;
        ] );
      ( "policy",
        [ Alcotest.test_case "yearly budget" `Quick test_budget_over_runs ] );
      ("properties", qsuite);
    ]
