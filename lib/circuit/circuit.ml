type wire = int

type gate =
  | Input of int
  | Const of bool
  | Not of wire
  | Xor of wire * wire
  | And of wire * wire

type t = { gates : gate array; num_inputs : int; outputs : wire array }

let make ~gates ~num_inputs ~outputs =
  let n = Array.length gates in
  let check_wire i w =
    if w < 0 || w >= i then
      invalid_arg (Printf.sprintf "Circuit.make: gate %d refers to wire %d" i w)
  in
  Array.iteri
    (fun i g ->
      match g with
      | Input k ->
          if k < 0 || k >= num_inputs then
            invalid_arg (Printf.sprintf "Circuit.make: bad input index %d" k)
      | Const _ -> ()
      | Not a -> check_wire i a
      | Xor (a, b) | And (a, b) ->
          check_wire i a;
          check_wire i b)
    gates;
  Array.iter
    (fun w ->
      if w < 0 || w >= n then invalid_arg "Circuit.make: output refers to missing wire")
    outputs;
  { gates; num_inputs; outputs }

let eval t inputs =
  if Array.length inputs <> t.num_inputs then
    invalid_arg "Circuit.eval: wrong input length";
  let values = Array.make (Array.length t.gates) false in
  Array.iteri
    (fun i g ->
      values.(i) <-
        (match g with
        | Input k -> inputs.(k)
        | Const b -> b
        | Not a -> not values.(a)
        | Xor (a, b) -> values.(a) <> values.(b)
        | And (a, b) -> values.(a) && values.(b)))
    t.gates;
  Array.map (fun w -> values.(w)) t.outputs

let num_gates t = Array.length t.gates

let count p t = Array.fold_left (fun acc g -> if p g then acc + 1 else acc) 0 t.gates

let and_count = count (function And _ -> true | Input _ | Const _ | Not _ | Xor _ -> false)
let xor_count = count (function Xor _ -> true | Input _ | Const _ | Not _ | And _ -> false)
let not_count = count (function Not _ -> true | Input _ | Const _ | Xor _ | And _ -> false)

let and_levels t =
  let levels = Array.make (Array.length t.gates) 0 in
  Array.iteri
    (fun i g ->
      levels.(i) <-
        (match g with
        | Input _ | Const _ -> 0
        | Not a -> levels.(a)
        | Xor (a, b) -> max levels.(a) levels.(b)
        | And (a, b) -> max levels.(a) levels.(b) + 1))
    t.gates;
  levels

let and_depth t =
  if Array.length t.gates = 0 then 0
  else Array.fold_left max 0 (and_levels t)

type stats = {
  inputs : int;
  gates : int;
  ands : int;
  xors : int;
  nots : int;
  depth : int;
}

(* One pass over the gate array: count gate kinds and track AND levels
   (same recurrence as [and_levels]) simultaneously. *)
let stats (t : t) =
  let n = Array.length t.gates in
  let levels = Array.make n 0 in
  let ands = ref 0 and xors = ref 0 and nots = ref 0 and depth = ref 0 in
  Array.iteri
    (fun i g ->
      match g with
      | Input _ | Const _ -> ()
      | Not a ->
          levels.(i) <- levels.(a);
          incr nots
      | Xor (a, b) ->
          levels.(i) <- max levels.(a) levels.(b);
          incr xors
      | And (a, b) ->
          let l = max levels.(a) levels.(b) + 1 in
          levels.(i) <- l;
          if l > !depth then depth := l;
          incr ands)
    t.gates;
  {
    inputs = t.num_inputs;
    gates = n;
    ands = !ands;
    xors = !xors;
    nots = !nots;
    depth = !depth;
  }

let pp_stats ppf s =
  Format.fprintf ppf "%d inputs, %d gates (%d AND / %d XOR / %d NOT), AND-depth %d"
    s.inputs s.gates s.ands s.xors s.nots s.depth
