(** Daemon mode: a persistent worker pool serving concurrent clearing
    requests over the framed transport ([DSTRESS-REQ/1]).

    The {!Distributed} backend pays its dispatch tax per batch: every
    [map] forks a fresh worker set so the children snapshot the current
    coordinator heap. A long-running daemon inverts the economics — the
    work arrives as self-contained {e requests} (plain wire data, no
    closures), so workers can be forked {b once at startup} and reused
    across requests forever. This module provides the three layers of
    that daemon:

    + a typed request/response codec ([DSTRESS-REQ/1], {!request} /
      {!response}) carried in {!Transport.Kind.request} /
      [response] frames;
    + a persistent {!pool}: workers forked at creation (inheriting the
      handler via copy-on-write), kept warm across requests, supervised
      by the same phi-accrual heartbeat detection, epoch fencing and
      respawn/re-dispatch machinery as the per-batch pool — plus a
      bounded submission queue with typed backpressure;
    + a single-threaded {!serve} loop multiplexing a listener (Unix
      socket or TCP), client connections and the pool, with graceful
      drain on SIGTERM/SIGINT.

    {b Fork-before-domain startup order (OCaml 5).} [Unix.fork] is
    forbidden once {e any} [Domain.spawn] has happened in the process —
    permanently, even after the domain is joined. The daemon therefore
    forks its whole worker pool before touching any domain pool, and the
    coordinator process never spawns domains at all (so respawning a
    crashed worker mid-service stays legal). Inside a worker the
    constraint resurfaces per request: see {!request_executor}.

    {b Determinism.} A request is executed by exactly one worker as one
    ordinary engine run with its own per-request [Obs] registry, so the
    tick-domain trace/metrics exports returned in {!summary} are
    byte-identical to a solo run of the same seeded config — whichever
    worker serves it, whatever else the daemon is doing, and under every
    in-worker executor (the executor invariance is already proven for
    the engine). Warm state carried across requests ({!Dstress_mpc}'s
    [Triple.Cache], keyed by plan digest/parties/seed/slice width/OT
    mode) only moves wall-clock, never ticks. *)

type workload = En | Egj

(** A [DSTRESS-REQ/1] clearing request: everything needed to rebuild the
    seeded network and engine config on the far side of the wire. *)
type request = {
  workload : workload;
  core : int;  (** core banks in the synthetic network *)
  periphery : int;  (** peripheral banks *)
  iterations : int;  (** protocol rounds *)
  k : int;  (** collusion bound *)
  seed : int;  (** network + run seed *)
  slice_width : int;  (** bitsliced GMW batch width, 1-64 *)
  ot_mode : Dstress_crypto.Ot_ext.mode;
  preprocess : bool;  (** run the offline phase before the online rounds *)
  executor : string;
      (** in-worker executor spec ({!Executor.of_string}); [""] means
          sequential. See {!request_executor} for the downgrade rule. *)
}

(** The deterministic outcome of one served request. [trace] / [metrics]
    are the tick-domain Obs exports — byte-identical to a solo run. *)
type summary = {
  output : int;  (** the noised aggregate — the only opened value *)
  mpc_rounds : int;
  mpc_and_gates : int;
  mpc_ots : int;
  trace : string;
  metrics : string;
}

type response =
  | Completed of summary
  | Rejected of string
      (** refused before execution: malformed or invalid request, queue
          full, daemon draining *)
  | Degraded of string
      (** accepted but failed in execution despite recovery: respawn /
          re-dispatch budgets exhausted, worker error, shutdown deadline *)

val encode_request : request -> bytes
val decode_request : bytes -> (request, string) result
(** Structural validation only (magic ["DREQ"], version, bounds of the
    byte stream); {!validate_request} checks the field values. *)

val encode_response : response -> bytes
val decode_response : bytes -> (response, string) result

val validate_request : request -> (unit, string) result
(** Field-level checks: positive sizes, [slice_width] in [1, 64], a
    parseable [executor] spec, sane payload lengths. *)

val request_executor : request -> (Executor.t, string) result
(** Resolve the request's executor spec inside a worker process, under
    the OCaml 5 fork-after-domain prohibition: once this worker has run
    any [parallel[:N]] request it can never fork again, so a later
    [distributed[:N]] spec silently downgrades to sequential (results
    and tick-domain exports are executor-invariant, so the response is
    unchanged). The taint is per process and monotone. *)

(** {1 Persistent pool} *)

type pool_opts = {
  workers : int;  (** persistent worker processes, forked at creation *)
  queue_depth : int;  (** bound on requests awaiting dispatch *)
  heartbeat_interval : float;
  phi : float;  (** suspicion threshold of the phi-accrual detector *)
  io_deadline : float;  (** per-frame read/write deadline, seconds *)
  poll_interval : float;  (** max wait per {!pool_step} select *)
  request_deadline : float;
      (** wall bound on one dispatched attempt; exceeding it fences the
          worker and re-dispatches — a wedged worker can never hang a
          request *)
  max_respawns_per_slot : int;  (** then the slot is abandoned *)
  max_attempts_per_request : int;  (** then the request degrades *)
  slow_request_s : float;
      (** end-to-end latency above which a finished request logs at
          [Warn] instead of [Info] (the slow-request log) *)
}

val default_pool_opts : pool_opts
(** 2 workers, queue depth 64, 50 ms heartbeats, phi 8, 10 s io
    deadline, 20 ms poll, 120 s request deadline, 2 respawns per slot,
    3 attempts per request, 5 s slow-request threshold. *)

type pool

val create_pool :
  ?opts:pool_opts ->
  ?log:Dstress_obs.Log.t ->
  ?fork_fds:(unit -> Unix.file_descr list) ->
  handler:(request -> summary) ->
  unit ->
  pool
(** Fork [opts.workers] persistent workers over anonymous socketpairs.
    Must run before any [Domain.spawn] in this process. Each worker
    inherits [handler] via fork and serves requests one at a time:
    heartbeating from a side thread, replying [Completed] (or a typed
    error that surfaces as [Degraded]) in an epoch-tagged result frame.
    A handler exception inside a worker fails only that request, never
    the worker. [fork_fds] (consulted at every fork, including respawns)
    names descriptors the embedding process holds — listener, client
    connections — that children must close; SIGPIPE is set to ignore so
    a write racing a worker death stays a typed [Closed] error.

    [log] (default {!Dstress_obs.Log.nop}) receives the pool's
    wall-domain lifecycle events — spawn/respawn/abandon, suspicion and
    fencing, per-request enqueue/dispatch/finish (the per-request lines
    at [Debug], completions at [Info], failures and slow requests at
    [Warn]/[Error]) — every line stamped with the request's trace ID.
    The same logger is inherited by the forked workers and threaded into
    their transports. *)

val pool_metrics : pool -> Dstress_obs.Obs.Metrics.t
(** Wall-domain supervision counters ([service.*], [pool.*],
    [transport.*]) plus the latency sketches ([service.queue_wait_s],
    [service.dispatch_s], [service.request_s]) and queue/uptime gauges
    ([service.queue_depth], [service.queue_high_water],
    [service.uptime_seconds]) — never merged into any request's
    tick-domain Obs. *)

val pool_log : pool -> Dstress_obs.Log.t
(** The logger given at {!create_pool} ({!Dstress_obs.Log.nop} by
    default); its ring tail feeds {!pool_stats}. *)

val set_pool_fault_source :
  pool -> (request_index:int -> worker:int -> Dstress_faults.Fault.fault list) -> unit
(** Deterministic wire-fault injection for chaos tests, consulted at
    each dispatch ([request_index] counts dispatches, the "batch" of a
    {!Dstress_faults.Fault.random_wire_plan}). Only wire kinds apply:
    disconnect closes the worker mid-request, stall delays its reply
    past the suspicion window, partition mutes it (no reply, no
    heartbeats) long enough to be fenced. *)

val submit :
  pool -> request -> (response -> unit) -> [ `Queued | `Queue_full | `No_workers ]
(** Enqueue a request. The callback fires exactly once, from inside a
    later {!pool_step} — with [Completed], or [Degraded] when every
    recovery lever is exhausted. [`Queue_full] and [`No_workers] (all
    slots abandoned) reject immediately without invoking the callback:
    the caller owns the backpressure reply. *)

val pool_step : pool -> timeout:float -> unit
(** One supervision turn: dispatch queued requests to idle live workers,
    wait up to [timeout] for worker frames, apply epoch-fenced results,
    run heartbeat suspicion / request deadlines, respawn and re-dispatch
    as needed, reap exited children. [timeout] 0 polls. *)

val pool_idle : pool -> bool
(** No queued and no in-flight requests. *)

val pool_fds : pool -> Unix.file_descr list
(** Live worker descriptors, for embedding in an outer select. *)

val shutdown_pool : ?drain_deadline:float -> pool -> unit
(** Finish queued + in-flight requests (stepping until {!pool_idle} or
    [drain_deadline] seconds, default 30 — any survivors degrade with a
    shutdown message), then stop workers: shutdown frames, a grace
    period, SIGKILL stragglers, reap every child. Idempotent. *)

(** {1 Live stats}

    A point-in-time snapshot of the daemon's wall-domain state, served
    over the wire as the [Stats] admin request ({!Transport.Kind.stats}
    / [stats_reply], JSON payload) and rendered either as JSON
    ({!stats_to_json}) or Prometheus text ({!stats_prometheus}). *)

type worker_stat = {
  w_slot : int;  (** slot index, stable across respawns *)
  w_pid : int;
  w_state : string;  (** ["idle" | "busy" | "abandoned"] *)
  w_epoch : int;  (** current fencing epoch *)
  w_respawns : int;
  w_trace : int64;  (** trace of the running request; [0L] when idle *)
}

(** Flattened quantile-sketch summary: exact count/total/mean/min/max,
    p50/p90/p99 within {!Dstress_obs.Sketch.default_alpha} relative
    error ([0.] when empty). *)
type latency_stat = {
  l_count : int;
  l_total : float;
  l_mean : float;
  l_min : float;
  l_max : float;
  l_p50 : float;
  l_p90 : float;
  l_p99 : float;
}

type stats = {
  uptime_s : float;
  queue_depth : int;
  queue_high_water : int;  (** max depth observed since startup *)
  queue_capacity : int;
  workers : worker_stat list;  (** one per slot, in slot order *)
  counters : (string * int) list;
      (** every wall-domain counter ([service.*], [pool.*],
          [transport.*]), sorted by name *)
  latencies : (string * latency_stat) list;
      (** every latency sketch, sorted by name *)
  log_tail : string list;  (** rendered tail of the log ring, oldest first *)
}

val pool_stats : pool -> stats
(** Snapshot the pool now. Cheap (no locking beyond the log ring). *)

val stats_schema : string
(** ["dstress-stats/1"], the [schema] tag of the JSON encoding. *)

val stats_to_json : stats -> Dstress_obs.Json.t
val stats_of_json : Dstress_obs.Json.t -> (stats, string) result

val encode_stats : stats -> bytes
(** The wire payload of a [stats_reply] frame: the JSON document,
    deterministic for a given snapshot. *)

val decode_stats : bytes -> (stats, string) result

val stats_prometheus : stats -> string
(** Prometheus text exposition: [dstress_]-prefixed sanitized names,
    per-worker labeled gauges, summary-style quantile rows
    ([..{quantile="0.5"} v] plus [_sum]/[_count]), and the log tail as
    trailing comment lines. *)

val fetch_stats : ?timeout:float -> Transport.t -> stats
(** Client side of the [Stats] admin request ([timeout] default 10 s,
    raising {!Transport.Error} on timeout or an undecodable reply).
    Works on the same connection as {!call}, even mid-drain. *)

(** {1 Server} *)

type listen_addr =
  | Unix_socket of string  (** path *)
  | Tcp of string * int  (** host, port — port 0 binds an ephemeral one *)

val bind_listener : listen_addr -> Unix.file_descr * string
(** Bind and listen; returns the descriptor and a printable bound
    address ("path" or "host:port" with the actual port). Exposed
    separately from {!serve} so a test can learn the ephemeral TCP port
    before forking the daemon. *)

val serve :
  ?pool_opts:pool_opts ->
  ?log:Dstress_obs.Log.t ->
  ?ready:(addr:string -> unit) ->
  ?stop:(unit -> bool) ->
  handler:(request -> summary) ->
  listener:Unix.file_descr ->
  addr:string ->
  unit ->
  unit
(** Run the daemon on an already-bound listener: fork the pool (before
    any domains — callers must not have spawned any), then multiplex the
    listener, every client connection and the pool in one select loop.
    Each client connection carries at most one in-flight request;
    malformed frames get a typed [Rejected] reply, a queue-full submit
    gets typed backpressure, an integrity violation drops the
    connection. SIGTERM/SIGINT (or [stop ()] returning true) starts a
    graceful drain: stop accepting, finish queued and in-flight
    requests, reply to their clients, shut the pool down, restore the
    signal handlers and return. [ready] is called once listening.
    [Stats] admin frames are answered on any client connection at any
    time — including while draining and while a clearing request is in
    flight on that connection. [log] is passed to the pool
    ({!create_pool}) and also receives server-level events. *)

val call : ?timeout:float -> Transport.t -> request -> response
(** Client side: send one request frame and decode the matching response
    ([timeout] default 120 s, raising {!Transport.Error} on timeout or a
    dropped connection). *)
