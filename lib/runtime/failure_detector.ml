type t = {
  phi : float;
  min_interval : float;
  mutable interval : float;  (* EWMA of observed inter-arrival times *)
  mutable last : float option;  (* last observe arrival *)
  mutable origin : float option;  (* start reference, pre-first-heartbeat *)
}

let create ?(phi = 8.0) ?min_interval ~expected_interval () =
  if not (expected_interval > 0.0) then
    invalid_arg "Failure_detector.create: expected_interval <= 0";
  if not (phi > 1.0) then invalid_arg "Failure_detector.create: phi <= 1";
  let min_interval =
    match min_interval with Some m -> m | None -> expected_interval /. 4.0
  in
  { phi; min_interval; interval = expected_interval; last = None; origin = None }

let start t ~now = t.origin <- Some now

let observe t ~now =
  (match t.last with
  | Some prev ->
      let gap = Float.max 0.0 (now -. prev) in
      (* EWMA, factor 0.8 toward history, floored so heartbeat bursts
         can't hair-trigger the detector. *)
      t.interval <- Float.max t.min_interval ((0.8 *. t.interval) +. (0.2 *. gap))
  | None -> ());
  let clamped = match t.last with Some prev when now < prev -> prev | _ -> now in
  t.last <- Some clamped

let suspicion t ~now =
  let reference =
    match t.last with Some l -> Some l | None -> t.origin
  in
  match reference with
  | None -> 0.0
  | Some r -> Float.max 0.0 (now -. r) /. t.interval

let suspected t ~now = suspicion t ~now >= t.phi
let last_heard t = t.last
let interval_estimate t = t.interval
let phi t = t.phi
