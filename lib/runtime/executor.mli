(** Execution backends for the runtime's independent work units.

    The paper's whole design rests on per-vertex blocks computing
    {e independently} — 100 EC2 nodes run their block MPCs concurrently.
    This module is the simulation-side equivalent: a phase hands the
    executor a list of index-addressed tasks, and the executor runs them
    either on the calling domain ([Sequential]) or across an OCaml 5
    [Domain] pool ([Parallel]).

    Tasks must be pairwise independent: a task may mutate only state that
    no other task in the same batch reads or writes (its own block's
    shares, its own traffic matrix, its own PRG). Under that contract the
    two backends are interchangeable — {!map} always returns results in
    index order, and the engine merges them sequentially, so outputs and
    reports are bit-identical regardless of scheduling (see DESIGN.md,
    "Runtime architecture").

    The same contract carries the observability layer: {!Phase.run_tasks}
    hands every task its own forked {!Dstress_obs.Obs} collector (never
    shared across tasks, so no synchronization on the hot path) and folds
    them back in index order after the batch — which is why a run's
    exported trace and metrics are also byte-identical under either
    backend and any [jobs] count. *)

type t =
  | Sequential  (** run every task on the calling domain, in index order *)
  | Parallel of { jobs : int }  (** work-stealing pool of [jobs] domains *)
  | Distributed of { ctx : Distributed.ctx }
      (** forked worker processes behind a fault-tolerant {!Transport};
          see {!Distributed} *)

val sequential : t

val parallel : jobs:int -> t
(** [jobs <= 1] collapses to {!Sequential}. *)

val distributed : ?opts:Distributed.opts -> ?workers:int -> unit -> t
(** A multi-process backend with its own {!Distributed.ctx}. [workers]
    (default from {!Distributed.default_opts}) overrides the worker
    count in [opts]. Even [workers = 1] keeps the Distributed backend —
    a single worker still exercises the full transport path. *)

val distributed_ctx : t -> Distributed.ctx option

val of_string : string -> (t, string) result
(** Parse an executor spec: ["sequential"] (or ["seq"]),
    ["parallel[:N]"] (bare ["parallel"] uses
    [Domain.recommended_domain_count]), ["distributed[:N]"]. Case- and
    whitespace-insensitive; [Error] explains rejects. This is the one
    parser behind [--executor] in [bin/dstress.ml] and the bench
    harness. *)

val of_env : unit -> t
(** [DSTRESS_EXECUTOR] (an {!of_string} spec) wins when set and valid;
    otherwise the legacy [DSTRESS_JOBS] integer selects
    [Parallel { jobs }] when [>= 2]. Absent or unparsable selects
    [Sequential]. This is how CI runs the whole test suite under every
    backend without touching any call site. *)

val jobs : t -> int
(** 1 for [Sequential]; worker count for the other backends. *)

val name : t -> string
(** ["sequential"], ["parallel:N"] or ["distributed:N"], for reports and
    benchmarks. Round-trips through {!of_string}. *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map exec count f] evaluates [f i] for [0 <= i < count] and returns
    the results in index order. [Sequential] evaluates in increasing [i]
    on the calling domain. [Parallel] distributes indices over a domain
    pool via an atomic work counter; completion order is arbitrary but
    the result array is always index-ordered. If any task raises, the
    batch finishes draining and the first (lowest-index) exception is
    re-raised. [Distributed] dispatches indices dynamically to forked
    worker processes ({!Distributed.map}); results must then be
    marshal-safe plain data, and worker-side exceptions surface as
    {!Distributed.Task_failed} for the lowest failing index. *)
