(** Fault-tolerant framed transport over Unix domain sockets.

    This is the wire layer of the {!Distributed} runtime: the coordinator
    and its worker processes exchange length-prefixed, checksummed frames
    over [AF_UNIX] stream sockets (anonymous [socketpair]s by default, or
    named sockets under a directory). The layer is built {e failure
    first} — every operation has a deadline, connections are established
    with bounded jittered-exponential-backoff retry, every frame carries a
    CRC-32 and a sequence number, and receivers drop duplicates
    idempotently so a retransmission after a reconnect can never be
    applied twice.

    {b Frame format} (little-endian):
    {v
      magic   4 B  "DSTR"
      version 1 B  (2)
      kind    1 B  caller-defined message kind
      pad     2 B  zero
      epoch   4 B  fencing epoch (see Distributed)
      seq     8 B  per-connection monotone sequence number
      trace   8 B  request trace ID (0 = none; see Service)
      length  4 B  payload bytes
      crc32   4 B  CRC-32 (IEEE) of the payload
      payload
    v}

    {b Domains.} Everything this module measures is {e wall-domain}: RTTs,
    backoff sleeps, retransmits, reconnects. Its metrics live in a
    registry that is never merged into a run's deterministic tick-domain
    collector — Obs exports stay byte-identical whether or not a
    transport sits under the run (see DESIGN.md §10).

    {b Fault injection.} A connection accepts an injection hook consulted
    on every send: the hook can stall the write (a slow or wedged peer)
    or sever the connection (a crashed peer / broken socket). The wire
    fault kinds of {!Dstress_faults.Fault} are translated into hook
    actions by the {!Distributed} pool, so every transport failure path
    is replayable from a deterministic plan. *)

type error =
  | Timeout of string  (** a read/write/connect/accept deadline expired *)
  | Closed of string  (** peer EOF, EPIPE/ECONNRESET, or injected sever *)
  | Integrity of string
      (** CRC mismatch, bad magic/version, or oversized frame — the byte
          stream is no longer trustworthy; callers must drop the
          connection *)

exception Error of error

val error_message : error -> string

type frame = {
  kind : int;
  epoch : int;
  seq : int64;
  trace : int64;
      (** request trace ID propagated end-to-end by the {!Service} layer;
          [0L] when the frame belongs to no request *)
  payload : bytes;
}

type action =
  | Pass
  | Stall of float  (** sleep this many wall seconds before the write *)
  | Sever  (** close the socket abruptly instead of writing *)

type t

val of_fd :
  ?metrics:Dstress_obs.Obs.Metrics.t ->
  ?log:Dstress_obs.Log.t ->
  ?read_deadline:float ->
  ?write_deadline:float ->
  ?retain:bool ->
  Unix.file_descr ->
  t
(** Wrap a connected socket (set non-blocking here). [read_deadline] /
    [write_deadline] (default 10 s) bound every frame-level operation —
    a peer that stalls mid-frame surfaces as [Error (Timeout _)], never a
    hang. With [retain] (default false) sent frames are kept until
    {!ack}ed so {!retransmit_from} can replay them after a reconnect.
    [log] (default {!Dstress_obs.Log.nop}) receives wall-domain events for
    timeouts, framing/CRC violations and duplicate drops. *)

val pair :
  ?metrics:Dstress_obs.Obs.Metrics.t ->
  ?log:Dstress_obs.Log.t ->
  ?read_deadline:float ->
  ?write_deadline:float ->
  unit ->
  t * t
(** An anonymous [socketpair] — the default coordinator/worker link. *)

val listen : path:string -> Unix.file_descr
(** Bind and listen on a named Unix socket, unlinking a stale file first. *)

val listen_tcp : ?backlog:int -> host:string -> port:int -> unit -> Unix.file_descr * int
(** Bind and listen on a TCP address ([SO_REUSEADDR] set, backlog default
    16). [host] is a dotted quad or resolvable name; [port] 0 asks the
    kernel for an ephemeral port. Returns the listening descriptor and
    the actually bound port. The descriptor feeds the same {!accept} as
    the Unix-socket listener — deadline semantics are identical. *)

val accept :
  ?metrics:Dstress_obs.Obs.Metrics.t ->
  ?log:Dstress_obs.Log.t ->
  ?read_deadline:float ->
  ?write_deadline:float ->
  ?retain:bool ->
  deadline:float ->
  Unix.file_descr ->
  t
(** Accept one connection within [deadline] seconds — address-family
    agnostic (Unix-socket and TCP listeners alike; an accepted TCP
    connection gets [TCP_NODELAY]). *)

val connect :
  ?metrics:Dstress_obs.Obs.Metrics.t ->
  ?log:Dstress_obs.Log.t ->
  ?read_deadline:float ->
  ?write_deadline:float ->
  ?retain:bool ->
  ?attempts:int ->
  ?backoff:float ->
  ?jitter_seed:int ->
  path:string ->
  unit ->
  t
(** Connect to a named socket with bounded retry: up to [attempts]
    (default 8) tries, sleeping [backoff * 2^i * (0.5 + u_i)] between
    them ([u_i] uniform in [0,1) from a SplitMix stream seeded by
    [jitter_seed], so two workers hammering the same coordinator desync).
    Default [backoff] 10 ms. Exhausted attempts raise [Error (Timeout _)].
    Sleeps are recorded under [transport.backoff_sleep_s]. *)

val connect_tcp :
  ?metrics:Dstress_obs.Obs.Metrics.t ->
  ?log:Dstress_obs.Log.t ->
  ?read_deadline:float ->
  ?write_deadline:float ->
  ?retain:bool ->
  ?attempts:int ->
  ?backoff:float ->
  ?jitter_seed:int ->
  host:string ->
  port:int ->
  unit ->
  t
(** {!connect} over TCP: the same bounded jittered-exponential-backoff
    retry loop and the same [transport.connect_*] / [transport.backoff_*]
    counters, with the transient-errno set widened to the TCP ones
    ([ECONNREFUSED], [ETIMEDOUT], [EHOSTUNREACH], [ENETUNREACH]).
    [TCP_NODELAY] is set on the connected socket. *)

val set_fault_hook : t -> (kind:int -> seq:int64 -> action) -> unit
(** Installed hook is consulted before every frame write. *)

val send : t -> kind:int -> epoch:int -> ?trace:int64 -> bytes -> int64
(** Frame and write the payload within the write deadline; returns the
    assigned sequence number. [trace] (default [0L]) is carried verbatim
    in the frame header and delivered in {!recv}'s [frame.trace]. *)

val recv : t -> timeout:float -> frame option
(** Next fresh frame within [timeout] seconds, or [None]. Duplicate
    sequence numbers (<= the highest already delivered) are dropped and
    counted under [transport.dup_dropped]; ack frames are consumed
    internally. A CRC or framing violation raises [Error (Integrity _)]. *)

val ack : t -> int64 -> unit
(** Tell the peer every frame up to [seq] arrived; a retaining peer prunes
    its replay buffer. *)

val retransmit_from : t -> int64 -> int
(** Re-send every retained frame with seq > the given ack point (in seq
    order, original seq numbers — the receiver's dedup makes replay
    idempotent). Returns the number of frames retransmitted and counts
    them under [transport.retransmits]. Requires [retain]. *)

val takeover : old:t -> t -> unit
(** Carry a dead connection's sequencing state — next send seq, highest
    delivered seq, retained unacked frames — onto a freshly connected
    replacement, so {!retransmit_from} can replay across a reconnect and
    the peer's dedup window stays valid. The old connection's retain
    buffer is drained into the new one. *)

val close : t -> unit
(** Idempotent. *)

val fd : t -> Unix.file_descr
val metrics : t -> Dstress_obs.Obs.Metrics.t
val last_delivered : t -> int64
(** Highest sequence number delivered by {!recv} (-1 initially). *)

(** Well-known frame kinds shared by the {!Distributed} pool and the
    [dstress transport] CLI tool. The transport itself interprets only
    [ack]. *)
module Kind : sig
  val ack : int
  val hello : int
  val heartbeat : int
  val task : int
  val result : int
  val error : int
  val shutdown : int
  val ping : int
  val echo : int

  val request : int
  (** a [DSTRESS-REQ/1] clearing request (client -> daemon, see {!Service}) *)

  val response : int
  (** a [DSTRESS-REQ/1] response (daemon -> client) *)

  val stats : int
  (** admin: ask a daemon for its live {!Service.stats} snapshot *)

  val stats_reply : int
  (** admin: the JSON-encoded stats snapshot (daemon -> client) *)

  val name : int -> string
end
