module Traffic = Dstress_mpc.Traffic
module Obs = Dstress_obs.Obs
module Fault = Dstress_faults.Fault

type id = Setup | Initialization | Computation | Communication | Aggregation

let name = function
  | Setup -> "setup"
  | Initialization -> "initialization"
  | Computation -> "computation"
  | Communication -> "communication"
  | Aggregation -> "aggregation"

let all = [ Setup; Initialization; Computation; Communication; Aggregation ]

(* The seconds→ticks rounding rule lives in Fault so the engine's
   recovery accounting and the transport's stall bookkeeping can never
   disagree; these are retained as the runtime-facing aliases. *)
let ticks_per_recovery_second = Fault.ticks_per_second

let recovery_ticks = Fault.delay_ticks

module Accounting = struct
  type t = {
    global : Traffic.t;
    seconds : (id, float ref) Hashtbl.t;
    bytes : (id, int ref) Hashtbl.t;
    recovery : (id, float ref) Hashtbl.t;
    obs : Obs.t;
  }

  let create ?(obs = Obs.off) ~parties () =
    let seconds = Hashtbl.create 8
    and bytes = Hashtbl.create 8
    and recovery = Hashtbl.create 8 in
    List.iter
      (fun p ->
        Hashtbl.replace seconds p (ref 0.0);
        Hashtbl.replace bytes p (ref 0);
        Hashtbl.replace recovery p (ref 0.0))
      all;
    { global = Traffic.create parties; seconds; bytes; recovery; obs }

  let traffic t = t.global
  let obs t = t.obs

  let add_seconds t phase s =
    let r = Hashtbl.find t.seconds phase in
    r := !r +. s

  let add_bytes t phase b =
    let r = Hashtbl.find t.bytes phase in
    r := !r + b;
    Obs.incr t.obs ~by:b ("phase." ^ name phase ^ ".bytes")

  (* Recovery time is metered here but its simulated ticks are charged by
     the caller (with {!recovery_ticks}) at the exact point in the task's
     timeline where the wait happens, so trace placement does not depend
     on merge granularity (per-vertex vs per-slice-group). *)
  let add_recovery t phase s =
    let r = Hashtbl.find t.recovery phase in
    r := !r +. s;
    Obs.add t.obs ("phase." ^ name phase ^ ".recovery_seconds") s

  let phase_seconds t = List.map (fun p -> (p, !(Hashtbl.find t.seconds p))) all
  let phase_bytes t = List.map (fun p -> (p, !(Hashtbl.find t.bytes p))) all
  let recovery_seconds t = List.map (fun p -> (p, !(Hashtbl.find t.recovery p))) all
end

let run_sequential acc phase f =
  let obs = acc.Accounting.obs in
  Obs.enter obs ("phase:" ^ name phase);
  let t0 = Unix.gettimeofday () in
  let b0 = Traffic.total acc.Accounting.global in
  let result = f () in
  Accounting.add_seconds acc phase (Unix.gettimeofday () -. t0);
  let bytes = Traffic.total acc.Accounting.global - b0 in
  Accounting.add_bytes acc phase bytes;
  Obs.advance obs bytes;
  Obs.leave obs;
  result

type 'a task_result = { traffic : Traffic.t; payload : 'a }

let run_tasks exec acc phase ?task_label ~count ~task ~merge () =
  let obs = acc.Accounting.obs in
  Obs.enter obs ("phase:" ^ name phase);
  let t0 = Unix.gettimeofday () in
  (* Per-task child collectors keep span/metric emission race-free under
     a domain pool; the index-ordered merge below rebases them onto the
     parent timeline, so the collected trace is schedule-independent.
     The child is created {e inside} the mapped function and returned
     with the result: under the Distributed backend the task runs in a
     forked worker, so the collector must travel with the task's payload
     across the process boundary (Obs.t is plain marshal-safe data).
     When observability is off, fork returns the collector unchanged and
     the merge below is skipped. *)
  let results =
    Executor.map exec count (fun i ->
        let child = Obs.fork obs in
        let r =
          match task_label with
          | Some label ->
              if Obs.detailed child then Obs.enter child (label i);
              let r = task child i in
              if Obs.enabled child then Obs.advance child (Traffic.total r.traffic);
              if Obs.detailed child then Obs.leave child;
              r
          | None -> task child i
        in
        (r, child))
  in
  let bytes = ref 0 in
  Array.iteri
    (fun i (r, child) ->
      bytes := !bytes + Traffic.total r.traffic;
      Traffic.merge_into ~dst:acc.Accounting.global r.traffic;
      if Obs.enabled obs then Obs.merge_into ~dst:obs child;
      merge i r.payload)
    results;
  Accounting.add_seconds acc phase (Unix.gettimeofday () -. t0);
  Accounting.add_bytes acc phase !bytes;
  Obs.leave obs
