module Traffic = Dstress_mpc.Traffic

type id = Setup | Initialization | Computation | Communication | Aggregation

let name = function
  | Setup -> "setup"
  | Initialization -> "initialization"
  | Computation -> "computation"
  | Communication -> "communication"
  | Aggregation -> "aggregation"

let all = [ Setup; Initialization; Computation; Communication; Aggregation ]

module Accounting = struct
  type t = {
    global : Traffic.t;
    seconds : (id, float ref) Hashtbl.t;
    bytes : (id, int ref) Hashtbl.t;
    recovery : (id, float ref) Hashtbl.t;
  }

  let create ~parties =
    let seconds = Hashtbl.create 8
    and bytes = Hashtbl.create 8
    and recovery = Hashtbl.create 8 in
    List.iter
      (fun p ->
        Hashtbl.replace seconds p (ref 0.0);
        Hashtbl.replace bytes p (ref 0);
        Hashtbl.replace recovery p (ref 0.0))
      all;
    { global = Traffic.create parties; seconds; bytes; recovery }

  let traffic t = t.global

  let add_seconds t phase s =
    let r = Hashtbl.find t.seconds phase in
    r := !r +. s

  let add_bytes t phase b =
    let r = Hashtbl.find t.bytes phase in
    r := !r + b

  let add_recovery t phase s =
    let r = Hashtbl.find t.recovery phase in
    r := !r +. s

  let phase_seconds t = List.map (fun p -> (p, !(Hashtbl.find t.seconds p))) all
  let phase_bytes t = List.map (fun p -> (p, !(Hashtbl.find t.bytes p))) all
  let recovery_seconds t = List.map (fun p -> (p, !(Hashtbl.find t.recovery p))) all
end

let run_sequential acc phase f =
  let t0 = Unix.gettimeofday () in
  let b0 = Traffic.total acc.Accounting.global in
  let result = f () in
  Accounting.add_seconds acc phase (Unix.gettimeofday () -. t0);
  Accounting.add_bytes acc phase (Traffic.total acc.Accounting.global - b0);
  result

type 'a task_result = { traffic : Traffic.t; payload : 'a }

let run_tasks exec acc phase ~count ~task ~merge =
  let t0 = Unix.gettimeofday () in
  let results = Executor.map exec count task in
  let bytes = ref 0 in
  Array.iteri
    (fun i r ->
      bytes := !bytes + Traffic.total r.traffic;
      Traffic.merge_into ~dst:acc.Accounting.global r.traffic;
      merge i r.payload)
    results;
  Accounting.add_seconds acc phase (Unix.gettimeofday () -. t0);
  Accounting.add_bytes acc phase !bytes
