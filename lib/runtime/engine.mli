(** The DStress execution engine (§3.3, §3.6).

    Given a vertex program and a distributed graph, the engine drives the
    full protocol among simulated nodes:

    + {b Setup} — the trusted party assigns blocks and issues certificates
      ({!Dstress_transfer.Setup});
    + {b Initialization} — every node XOR-shares its vertex's initial
      state and D no-op messages to its block;
    + {b Computation steps} — each block evaluates the vertex update
      circuit under GMW; inputs and outputs stay shared;
    + {b Communication steps} — each directed edge moves its message
      shares between blocks with the §3.5 transfer protocol (final
      variant, with geometric wire noise);
    + {b Aggregation and noising} — vertex states are re-shared to the
      aggregation block (or a two-level tree of blocks, §3.6), summed by
      the aggregation circuit, and released with in-circuit geometric
      noise of parameter [exp(-eps/s)].

    The engine never reconstructs any intermediate value: the only opened
    value is the noised aggregate. All traffic is recorded per node, and
    wall-clock time is attributed to phases, which is exactly the
    instrumentation the paper's Figures 3–6 report.

    {b Layered runtime.} The engine itself is orchestration glue over
    three layers: {!Block} owns one vertex's share state, mailboxes and
    GMW session; {!Phase} expresses each protocol phase as a batch of
    independent tasks over blocks or edges plus a sequential, index-ordered
    merge into run-wide accounting; {!Executor} schedules a batch on the
    calling domain or on an OCaml 5 domain pool. All randomness is derived
    per task by key ([seed ^ ":" ^ purpose], see {!Block.derive_prg}), so a
    run's output and its full report are bit-identical under every
    executor and schedule.

    {b Fault injection and recovery.} A {!Dstress_faults.Fault.plan} in the
    config injects deterministic faults into a run: crash a block member
    for a window of rounds, drop/delay/corrupt an edge transfer, or force
    a decryption-table miss. The engine degrades gracefully: crashed
    members are replaced by standbys and the block's state is re-shared;
    failed transfers are retried up to [max_retries] times with
    exponential backoff (simulated, accounted separately from measured
    wall-clock), escalating to an {!escalation_widening}-times-wider
    lookup table before giving up. The {!report} itemizes injected faults,
    retries, recovered/unrecovered failures, and the extra edge-privacy
    budget consumed by retried transfers.

    {b Observability.} When [config.obs_level] is above
    {!Dstress_obs.Obs.Off}, the run collects a hierarchical span trace
    ([run > round:<r> > phase:<name> > vertex/xfer/init/agg tasks]) on a
    simulated timeline (1 tick per wire byte, 10{^6} per simulated recovery
    second) and a typed metrics registry (GMW rounds/ANDs/OTs, transfer
    retry and escalation counts, crash recoveries, edge-privacy spend,
    per-phase bytes, traffic shape). Collection is deterministic: spans
    are gathered per task and merged in task-index order, and computation
    spans are per {e vertex} rather than per slice group, so the exported
    trace and metrics are bit-identical across executors and slice widths
    for a given seed. At [Off] the shared no-op collector is used and the
    hot paths do no work. The collector is returned in [report.obs];
    export it with {!Dstress_obs.Obs.trace_json} /
    {!Dstress_obs.Obs.metrics_json} / {!Dstress_obs.Obs.metrics_csv}. *)

type aggregation = Single_block | Two_level of int  (** fan-out of the leaf level *)

type config = {
  grp : Dstress_crypto.Group.t;
  k : int;  (** collusion bound; blocks have k+1 members *)
  degree_bound : int;  (** public bound D on vertex degree *)
  ot_mode : Dstress_crypto.Ot_ext.mode;
  transfer_alpha : float;  (** wire-noise parameter of the transfer protocol *)
  table_radius : int;  (** decryption lookup covers [-radius, k+1+radius] *)
  aggregation : aggregation;
  seed : string;
  fault_plan : Dstress_faults.Fault.plan;  (** faults to inject (empty = none) *)
  max_retries : int;  (** transfer retries before table escalation *)
  backoff : float;  (** base simulated backoff in seconds (doubles per retry) *)
  executor : Executor.t;  (** Sequential, or Parallel on a domain pool *)
  slice_width : int;
      (** max vertices per bitsliced GMW batch in a computation step
          (1–64). Every vertex runs the same update circuit, so up to
          [slice_width] instances are packed into [int64] wire words and
          evaluated together ({!Dstress_mpc.Gmw.eval_many}); [1] selects
          the scalar per-vertex path. Either setting produces bit-identical
          reports — outputs, traffic matrix, fault/retry counters. *)
  obs_level : Dstress_obs.Obs.level;
      (** observability level: [Off] (default; zero-cost no-op), [Basic]
          (metrics + run/round/phase spans), [Full] (adds per-task,
          per-vertex, per-transfer-attempt spans and per-node traffic
          gauges) *)
  preprocess : bool;
      (** run the offline phase: before the timed online rounds, generate
          (or fetch from the triple cache) each block session's correlated
          randomness for the whole run — [iterations + 1] update-circuit
          evaluations per block ({!Dstress_mpc.Gmw.generate_material}) —
          and attach it, so the online critical path consumes pre-drawn
          material. The run's outputs, traffic, counters and tick-domain
          observability exports are bit-identical with or without
          preprocessing, on every executor and slice width; only
          wall-clock shifts from the online phases to the offline one
          (reported in [report.offline_metrics]). Default [false]. *)
  triple_cache : string option;
      (** directory for persisting preprocessed material across processes
          and runs (daemon restarts, distributed worker reloads); created
          on demand. Only consulted when [preprocess] is set. Default
          [None] (in-memory caching only). *)
}

val default_config : ?seed:string -> Dstress_crypto.Group.t -> k:int -> degree_bound:int -> config
(** Simulation OT mode, [transfer_alpha = 0.5], table radius 120,
    single-block aggregation, no faults, 2 retries, 50 ms base backoff,
    slice width 64, observability off. The executor comes from
    {!Executor.of_env} — sequential unless the [DSTRESS_JOBS] environment
    variable requests a domain pool. *)

val escalation_widening : int
(** Factor by which the last-resort decryption table is wider than
    [table_radius]. *)

val validate_config : config -> unit
(** Raises [Invalid_argument] with a descriptive message if any field is
    out of range ([k < 1], [transfer_alpha] outside (0,1), nonpositive
    [table_radius], a [Two_level] fan-out < 1, negative [max_retries] or
    [backoff], a [Parallel] executor with [jobs < 1], [slice_width]
    outside [1, 64]). Called by {!run} before any work starts. *)

type phase = Phase.id = Setup | Initialization | Computation | Communication | Aggregation

val phase_name : phase -> string

val all_phases : phase list

type report = {
  output : int;  (** the noised aggregate (signed) — the only public value *)
  iterations : int;
  traffic : Dstress_mpc.Traffic.t;  (** per-node, global node ids *)
  phase_bytes : (phase * int) list;
  phase_seconds : (phase * float) list;
  transfer_failures : int;
      (** decryption misses across all transfer attempts (incl. recovered) *)
  recovered_failures : int;  (** misses fixed by a retry or table escalation *)
  unrecovered_failures : int;
      (** (member, bit) positions still untrusted after all attempts; the
          protocol substituted the no-op value 0 and flagged them *)
  transfer_retries : int;  (** transfer attempts beyond the first *)
  crash_recoveries : int;  (** standby replacements of crashed block members *)
  faults_injected : (Dstress_faults.Fault.kind * int) list;
      (** per-kind count of plan entries that actually fired *)
  retry_epsilon : float;
      (** extra edge-privacy budget spent by retried transfers
          ({!Dstress_transfer.Edge_privacy.retry_epsilon}) *)
  recovery_seconds : (phase * float) list;
      (** simulated backoff/handoff delay per phase — kept separate from
          the measured [phase_seconds] *)
  mpc_rounds : int;
  mpc_and_gates : int;
  mpc_ots : int;
  update_stats : Dstress_circuit.Circuit.stats;
  obs : Dstress_obs.Obs.t;
      (** the run's observability collector (the shared no-op collector
          when [obs_level = Off]); all spans are closed — ready for the
          {!Dstress_obs.Obs} exporters *)
  transport_metrics : Dstress_obs.Obs.Metrics.t option;
      (** wall-domain transport/pool counters when the executor was
          [Distributed] (reconnects, retransmits, backoff sleeps,
          respawns, fenced frames, ...); [None] for in-process backends.
          Deliberately separate from [obs] — tick-domain exports stay
          byte-identical across executors. *)
  offline_metrics : Dstress_obs.Obs.Metrics.t option;
      (** wall-domain offline-phase counters when [config.preprocess] was
          set: [preprocess.sessions] / [preprocess.evals] (work attached),
          [preprocess.cache.generations] / [.disk_loads] / [.hits] (where
          it came from) and the [preprocess.wall_s] gauge. Kept out of
          [obs] for the same byte-identity reason as transport metrics. *)
}

val run :
  config ->
  Vertex_program.t ->
  graph:Graph.t ->
  initial_states:Dstress_util.Bitvec.t array ->
  report
(** Raises [Invalid_argument] if a vertex degree exceeds [degree_bound],
    the state widths are wrong, or the graph size does not match. *)

val run_plaintext :
  Vertex_program.t ->
  degree_bound:int ->
  graph:Graph.t ->
  initial_states:Dstress_util.Bitvec.t array ->
  int
(** Reference executor: runs the *same circuits* in cleartext with zero
    noise. The MPC output minus this value is exactly the DP noise — the
    oracle used by the integration tests. *)

val pp_report : Format.formatter -> report -> unit
