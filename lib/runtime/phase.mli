(** Protocol phases as schedulable work units.

    Each engine phase (setup, initialization, computation round,
    communication round, aggregation) is expressed as a batch of
    {e independent tasks} — one per block or per edge — plus a
    {e sequential merge} that folds each task's private traffic matrix and
    counters into the run-wide accounting in task-index order. The batch
    runs under any {!Executor} backend; because tasks touch only
    task-owned state and the merge order is fixed, the run's output and
    its report are identical under every schedule. *)

type id = Setup | Initialization | Computation | Communication | Aggregation

val name : id -> string
val all : id list

(** Run-wide accounting: the global traffic matrix plus wall-clock
    seconds, wire bytes and simulated recovery delay attributed per phase.
    Multiple batches may charge the same phase (e.g. one computation batch
    per round); the entries accumulate. *)
module Accounting : sig
  type t

  val create : parties:int -> t

  val traffic : t -> Dstress_mpc.Traffic.t
  (** The global per-node matrix, under global node ids. *)

  val add_recovery : t -> id -> float -> unit
  (** Add simulated backoff/handoff seconds (kept apart from measured
      wall-clock). *)

  val phase_seconds : t -> (id * float) list
  val phase_bytes : t -> (id * int) list
  val recovery_seconds : t -> (id * float) list
  (** All three list every phase in {!all} order. *)
end

val run_sequential : Accounting.t -> id -> (unit -> 'a) -> 'a
(** [run_sequential acc phase f] runs [f] as the phase's single sequential
    step on the calling domain. [f] writes the global matrix directly;
    its wall-clock time and traffic growth are charged to [phase]. *)

type 'a task_result = {
  traffic : Dstress_mpc.Traffic.t;
      (** the task's private matrix (global node ids), merged by the
          framework *)
  payload : 'a;  (** counters etc., handed to [merge] in index order *)
}

val run_tasks :
  Executor.t ->
  Accounting.t ->
  id ->
  count:int ->
  task:(int -> 'a task_result) ->
  merge:(int -> 'a -> unit) ->
  unit
(** [run_tasks exec acc phase ~count ~task ~merge] executes the batch
    under [exec], then — sequentially, in increasing task index — merges
    each task's traffic into the global matrix and calls [merge i
    payload]. Tasks must not touch the global matrix or any state another
    task reads. Wall-clock of the whole batch (including the merge) and
    the merged bytes are charged to [phase]. *)
