(** Protocol phases as schedulable work units.

    Each engine phase (setup, initialization, computation round,
    communication round, aggregation) is expressed as a batch of
    {e independent tasks} — one per block or per edge — plus a
    {e sequential merge} that folds each task's private traffic matrix and
    counters into the run-wide accounting in task-index order. The batch
    runs under any {!Executor} backend; because tasks touch only
    task-owned state and the merge order is fixed, the run's output and
    its report are identical under every schedule.

    {b Observability.} The accounting owns a {!Dstress_obs.Obs} collector.
    Every phase step is wrapped in a [phase:<name>] span; task batches
    fork one child collector per task (handed to the task function) and
    merge them back in index order, so spans and metrics collected inside
    parallel tasks are deterministic — bit-identical across executors.
    Byte counts are charged to the simulated span timeline at one tick per
    byte, simulated recovery delay at 10{^6} ticks per second
    ({!Accounting.add_recovery}). *)

type id = Setup | Initialization | Computation | Communication | Aggregation

val name : id -> string
val all : id list

val ticks_per_recovery_second : float
(** 10{^6}: one simulated-recovery second costs as many trace ticks as one
    megabyte of wire traffic (wire bytes cost 1 tick each). *)

val recovery_ticks : float -> int
(** [recovery_ticks s] is the simulated-tick cost of [s] recovery seconds,
    for {!Dstress_obs.Obs.advance}. *)

(** Run-wide accounting: the global traffic matrix plus wall-clock
    seconds, wire bytes and simulated recovery delay attributed per phase,
    and the run's observability collector. Multiple batches may charge the
    same phase (e.g. one computation batch per round); the entries
    accumulate. *)
module Accounting : sig
  type t

  val create : ?obs:Dstress_obs.Obs.t -> parties:int -> unit -> t
  (** [obs] defaults to the no-op collector {!Dstress_obs.Obs.off}. *)

  val traffic : t -> Dstress_mpc.Traffic.t
  (** The global per-node matrix, under global node ids. *)

  val obs : t -> Dstress_obs.Obs.t

  val add_recovery : t -> id -> float -> unit
  (** Add simulated backoff/handoff seconds (kept apart from measured
      wall-clock). Also emitted as the [phase.<name>.recovery_seconds]
      metric. The trace-timeline ticks are {e not} advanced here: the
      caller charges them with {!recovery_ticks} at the point in the task
      timeline where the wait happens, so span placement does not depend
      on how tasks are grouped. *)

  val phase_seconds : t -> (id * float) list
  val phase_bytes : t -> (id * int) list
  val recovery_seconds : t -> (id * float) list
  (** All three list every phase in {!all} order. *)
end

val run_sequential : Accounting.t -> id -> (unit -> 'a) -> 'a
(** [run_sequential acc phase f] runs [f] as the phase's single sequential
    step on the calling domain. [f] writes the global matrix directly;
    its wall-clock time and traffic growth are charged to [phase] (and to
    the phase's span and byte metric). *)

type 'a task_result = {
  traffic : Dstress_mpc.Traffic.t;
      (** the task's private matrix (global node ids), merged by the
          framework *)
  payload : 'a;  (** counters etc., handed to [merge] in index order *)
}

val run_tasks :
  Executor.t ->
  Accounting.t ->
  id ->
  ?task_label:(int -> string) ->
  count:int ->
  task:(Dstress_obs.Obs.t -> int -> 'a task_result) ->
  merge:(int -> 'a -> unit) ->
  unit ->
  unit
(** [run_tasks exec acc phase ~count ~task ~merge ()] executes the batch
    under [exec], then — sequentially, in increasing task index — merges
    each task's traffic into the global matrix, rebases its observability
    child into the run collector, and calls [merge i payload]. Tasks must
    not touch the global matrix or any state another task reads; they may
    freely use the child collector they are handed.

    When [task_label] is given, each task is wrapped (at level [Full]) in
    a span named [task_label i] and the framework advances the child's
    timeline by the task's total traffic bytes. When it is omitted the
    task body owns its own span/timeline emission — used by the
    computation phase, whose spans are per {e vertex} so that traces stay
    identical across GMW slice widths.

    Wall-clock of the whole batch (including the merge) and the merged
    bytes are charged to [phase]. *)
