module Fault = Dstress_faults.Fault
module Metrics = Dstress_obs.Obs.Metrics
module Log = Dstress_obs.Log

type opts = {
  workers : int;
  socket_dir : string option;
  heartbeat_interval : float;
  phi : float;
  io_deadline : float;
  poll_interval : float;
  batch_deadline : float;
  max_respawns_per_slot : int;
  max_respawns_total : int;
}

let default_opts =
  {
    workers = 2;
    socket_dir = None;
    heartbeat_interval = 0.05;
    phi = 8.0;
    io_deadline = 10.0;
    poll_interval = 0.02;
    batch_deadline = 60.0;
    max_respawns_per_slot = 2;
    max_respawns_total = 8;
  }

type degradation = {
  batch : int;
  reason : string;
  completed : int;
  count : int;
  respawns : int;
  abandoned : int;
}

exception Degraded of degradation
exception Task_failed of { index : int; message : string }

let pp_degradation ppf d =
  Format.fprintf ppf
    "@[<v>distributed batch %d degraded beyond recovery: %s@,\
     %d/%d task(s) completed, %d respawn(s), %d slot(s) abandoned@]"
    d.batch d.reason d.completed d.count d.respawns d.abandoned

let () =
  Printexc.register_printer (function
    | Degraded d -> Some (Format.asprintf "Distributed.Degraded (%a)" pp_degradation d)
    | Task_failed { index; message } ->
        Some (Printf.sprintf "Distributed.Task_failed (task %d: %s)" index message)
    | _ -> None)

type ctx = {
  o : opts;
  log : Log.t;
  mutable m : Metrics.t;
  mutable fault_source : (batch:int -> worker:int -> Fault.fault list) option;
  mutable next_batch : int;
  mutable next_epoch : int;
}

let create ?(opts = default_opts) ?(log = Log.nop) () =
  if opts.workers < 1 then invalid_arg "Distributed.create: workers < 1";
  if not (opts.heartbeat_interval > 0.0) then
    invalid_arg "Distributed.create: heartbeat_interval <= 0";
  if not (opts.phi > 1.0) then invalid_arg "Distributed.create: phi <= 1";
  if not (opts.io_deadline > 0.0 && opts.poll_interval > 0.0 && opts.batch_deadline > 0.0)
  then invalid_arg "Distributed.create: non-positive deadline";
  if opts.max_respawns_per_slot < 0 || opts.max_respawns_total < 0 then
    invalid_arg "Distributed.create: negative respawn budget";
  {
    o = opts;
    log;
    m = Metrics.create ();
    fault_source = None;
    next_batch = 0;
    next_epoch = 0;
  }

let opts c = c.o
let metrics c = c.m

let begin_run c =
  c.m <- Metrics.create ();
  c.next_batch <- 0

let set_fault_source c src = c.fault_source <- Some src
let clear_fault_source c = c.fault_source <- None
let batches_dispatched c = c.next_batch

(* ------------------------------------------------------------------ *)
(* Worker side (forked child — only ever exits through Unix._exit, so  *)
(* test-harness at_exit handlers never run in a child)                 *)
(* ------------------------------------------------------------------ *)

let worker_loop conn ~epoch ~heartbeat_interval ~partitioned ~stall ~disconnect f =
  if partitioned then begin
    (* Unreachable slot: read (so the socket never backpressures) but
       drop everything and send nothing — the coordinator can only learn
       about this worker through its failure detector. *)
    (try
       while true do
         ignore (Transport.recv conn ~timeout:600.0)
       done
     with _ -> ());
    Unix._exit 0
  end;
  (* The heartbeat thread and the task loop share the connection for
     writes; [mu] serializes them. A stall fault holds [mu] for its whole
     duration — the worker literally stops writing, heartbeats included,
     which is what trips the coordinator's suspicion. *)
  let mu = Mutex.create () in
  let send ~kind payload =
    Mutex.lock mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mu)
      (fun () -> ignore (Transport.send conn ~kind ~epoch payload))
  in
  (try send ~kind:Transport.Kind.hello Bytes.empty with _ -> Unix._exit 1);
  let (_ : Thread.t) =
    Thread.create
      (fun () ->
        try
          while true do
            Thread.delay heartbeat_interval;
            send ~kind:Transport.Kind.heartbeat Bytes.empty
          done
        with _ -> ())
      ()
  in
  let stall = ref stall in
  let disconnect = ref disconnect in
  (try
     while true do
       match Transport.recv conn ~timeout:1.0 with
       | None -> ()
       | Some fr when fr.Transport.kind = Transport.Kind.shutdown -> Unix._exit 0
       | Some fr when fr.Transport.kind = Transport.Kind.task ->
           let i : int = Marshal.from_bytes fr.Transport.payload 0 in
           (match !stall with
           | Some s ->
               stall := None;
               Mutex.lock mu;
               Thread.delay s;
               Mutex.unlock mu
           | None -> ());
           if !disconnect then begin
             disconnect := false;
             Transport.close conn;
             Unix._exit 0
           end;
           (match f i with
           | r -> send ~kind:Transport.Kind.result (Marshal.to_bytes (i, r) [])
           | exception e ->
               send ~kind:Transport.Kind.error
                 (Marshal.to_bytes (i, Printexc.to_string e) []))
       | Some _ -> ()
     done
   with _ -> Unix._exit 1);
  Unix._exit 0

(* ------------------------------------------------------------------ *)
(* Coordinator side                                                    *)
(* ------------------------------------------------------------------ *)

type slot = {
  sid : int;  (* stable slot id — the fault plans' "worker" *)
  mutable pid : int;
  mutable conn : Transport.t;
  mutable epoch : int;
  mutable det : Failure_detector.t;
  mutable running : int option;
  mutable alive : bool;
  mutable abandoned : bool;
  mutable respawns : int;
}

let now () = Unix.gettimeofday ()

let has_partition = List.exists (function Fault.Partition_worker _ -> true | _ -> false)
let has_disconnect = List.exists (function Fault.Disconnect_worker _ -> true | _ -> false)

let find_stall =
  List.find_map (function Fault.Stall_worker { seconds; _ } -> Some seconds | _ -> None)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Fork one worker for [sid] under a fresh [epoch]. [extra_close] lists
   every coordinator-side socket the child inherits but must not keep
   open (a leaked write end would mask a sibling's EOF). Returns
   (pid, coordinator connection, epoch). *)
let spawn ctx ~batch ~sid ~fresh ~extra_close f =
  let o = ctx.o in
  let epoch = ctx.next_epoch in
  ctx.next_epoch <- epoch + 1;
  let faults =
    match ctx.fault_source with
    | None -> []
    | Some src -> List.filter (fun fl -> Fault.is_wire (Fault.kind_of fl)) (src ~batch ~worker:sid)
  in
  let partitioned = has_partition faults in
  (* Disconnect/stall attack the slot's first spawn of the batch; a
     respawned replacement is healthy (a partition covers respawns too —
     that is what forces abandonment). *)
  let stall = if fresh then find_stall faults else None in
  let disconnect = fresh && has_disconnect faults in
  flush stdout;
  flush stderr;
  match o.socket_dir with
  | None ->
      let cfd, wfd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (match Unix.fork () with
      | 0 ->
          close_quietly cfd;
          List.iter close_quietly extra_close;
          let conn =
            Transport.of_fd ~read_deadline:o.io_deadline ~write_deadline:o.io_deadline wfd
          in
          worker_loop conn ~epoch ~heartbeat_interval:o.heartbeat_interval ~partitioned
            ~stall ~disconnect f
      | pid ->
          Unix.close wfd;
          let conn =
            Transport.of_fd ~metrics:ctx.m ~log:ctx.log ~read_deadline:o.io_deadline
              ~write_deadline:o.io_deadline cfd
          in
          Log.debug ctx.log "distributed worker spawned"
            [
              ("batch", Log.Int batch);
              ("worker", Log.Int sid);
              ("pid", Log.Int pid);
              ("epoch", Log.Int epoch);
            ];
          (pid, conn, epoch))
  | Some dir ->
      let path =
        Filename.concat dir (Printf.sprintf "dstress-%d-w%d-e%d.sock" (Unix.getpid ()) sid epoch)
      in
      let lfd = Transport.listen ~path in
      (match Unix.fork () with
      | 0 ->
          close_quietly lfd;
          List.iter close_quietly extra_close;
          (match
             Transport.connect ~read_deadline:o.io_deadline ~write_deadline:o.io_deadline
               ~attempts:10 ~backoff:0.005
               ~jitter_seed:(sid + (31 * epoch))
               ~path ()
           with
          | conn ->
              worker_loop conn ~epoch ~heartbeat_interval:o.heartbeat_interval ~partitioned
                ~stall ~disconnect f
          | exception _ -> Unix._exit 1)
      | pid ->
          let conn =
            match
              Transport.accept ~metrics:ctx.m ~log:ctx.log ~read_deadline:o.io_deadline
                ~write_deadline:o.io_deadline ~deadline:10.0 lfd
            with
            | conn -> conn
            | exception e ->
                close_quietly lfd;
                (try Unix.unlink path with Unix.Unix_error _ -> ());
                (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
                (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
                raise e
          in
          close_quietly lfd;
          (try Unix.unlink path with Unix.Unix_error _ -> ());
          Log.debug ctx.log "distributed worker spawned"
            [
              ("batch", Log.Int batch);
              ("worker", Log.Int sid);
              ("pid", Log.Int pid);
              ("epoch", Log.Int epoch);
            ];
          (pid, conn, epoch))

let run_batch ctx ~batch count f =
  let o = ctx.o in
  let m = ctx.m in
  let nworkers = max 1 (min o.workers count) in
  Metrics.incr m "pool.batches";
  let results = Array.make count None in
  let errors = Array.make count None in
  let completed = ref 0 in
  let pending = Queue.create () in
  for i = 0 to count - 1 do
    Queue.add i pending
  done;
  let pids = ref [] in
  let fenced = ref [] in
  let total_respawns = ref 0 in
  let abandoned_slots = ref 0 in
  let fresh_detector () =
    let det = Failure_detector.create ~phi:o.phi ~expected_interval:o.heartbeat_interval () in
    Failure_detector.start det ~now:(now ());
    det
  in
  let make_slot ~extra_close sid =
    let pid, conn, epoch = spawn ctx ~batch ~sid ~fresh:true ~extra_close f in
    pids := pid :: !pids;
    {
      sid;
      pid;
      conn;
      epoch;
      det = fresh_detector ();
      running = None;
      alive = true;
      abandoned = false;
      respawns = 0;
    }
  in
  let created = ref [] in
  let slots =
    Array.init nworkers (fun sid ->
        let s = make_slot ~extra_close:!created sid in
        created := Transport.fd s.conn :: !created;
        s)
  in
  let open_coordinator_fds () =
    let live =
      Array.to_list slots
      |> List.filter_map (fun s -> if s.alive then Some (Transport.fd s.conn) else None)
    in
    live @ List.map (fun (c, _) -> Transport.fd c) !fenced
  in
  let degrade reason =
    Log.error ctx.log "distributed batch degraded"
      [
        ("batch", Log.Int batch);
        ("reason", Log.Str reason);
        ("completed", Log.Int !completed);
        ("count", Log.Int count);
        ("respawns", Log.Int !total_respawns);
      ];
    raise
      (Degraded
         {
           batch;
           reason;
           completed = !completed;
           count;
           respawns = !total_respawns;
           abandoned = !abandoned_slots;
         })
  in
  let requeue s =
    (match s.running with
    | Some i when Option.is_none results.(i) && Option.is_none errors.(i) ->
        Queue.add i pending
    | _ -> ());
    s.running <- None
  in
  let respawn s =
    incr total_respawns;
    s.respawns <- s.respawns + 1;
    Metrics.incr m "pool.respawns";
    if !total_respawns > o.max_respawns_total then degrade "respawn budget exhausted"
    else if s.respawns > o.max_respawns_per_slot then begin
      s.abandoned <- true;
      incr abandoned_slots;
      Metrics.incr m "pool.slots_abandoned";
      Log.error ctx.log "distributed worker slot abandoned"
        [ ("batch", Log.Int batch); ("worker", Log.Int s.sid) ]
    end
    else begin
      let pid, conn, epoch =
        spawn ctx ~batch ~sid:s.sid ~fresh:false ~extra_close:(open_coordinator_fds ()) f
      in
      pids := pid :: !pids;
      s.pid <- pid;
      s.conn <- conn;
      s.epoch <- epoch;
      s.det <- fresh_detector ();
      s.alive <- true
    end
  in
  (* [fence]d retirement keeps the old socket readable until batch end so
     a straggler's late reply is observed (and dropped by epoch) instead
     of poisoning a reused slot. Non-fenced death closes immediately. *)
  let on_dead ?(fence = false) s metric =
    Metrics.incr m metric;
    Log.warn ctx.log "distributed worker lost"
      [
        ("batch", Log.Int batch);
        ("worker", Log.Int s.sid);
        ("pid", Log.Int s.pid);
        ("epoch", Log.Int s.epoch);
        ("reason", Log.Str metric);
        ("fenced", Log.Bool fence);
      ];
    if fence then fenced := (s.conn, s.epoch) :: !fenced else Transport.close s.conn;
    s.alive <- false;
    requeue s;
    respawn s
  in
  let record_result ~epoch s_opt payload =
    let ((i : int), r) = Marshal.from_bytes payload 0 in
    let current = match s_opt with Some s -> s.epoch = epoch | None -> false in
    if (not current) || Option.is_some results.(i) || Option.is_some errors.(i) then
      Metrics.incr m "transport.fenced_frames"
    else begin
      results.(i) <- Some r;
      incr completed;
      match s_opt with
      | Some s when s.running = Some i -> s.running <- None
      | _ -> ()
    end
  in
  let record_error ~epoch s_opt payload =
    let ((i : int), (msg : string)) = Marshal.from_bytes payload 0 in
    let current = match s_opt with Some s -> s.epoch = epoch | None -> false in
    if (not current) || Option.is_some results.(i) || Option.is_some errors.(i) then
      Metrics.incr m "transport.fenced_frames"
    else begin
      errors.(i) <- Some msg;
      incr completed;
      Metrics.incr m "pool.task_errors";
      match s_opt with
      | Some s when s.running = Some i -> s.running <- None
      | _ -> ()
    end
  in
  let drain_slot s =
    let continue_ = ref true in
    while !continue_ && s.alive do
      match Transport.recv s.conn ~timeout:0.002 with
      | None -> continue_ := false
      | Some fr ->
          Failure_detector.observe s.det ~now:(now ());
          let k = fr.Transport.kind in
          if k = Transport.Kind.result then record_result ~epoch:fr.Transport.epoch (Some s) fr.Transport.payload
          else if k = Transport.Kind.error then record_error ~epoch:fr.Transport.epoch (Some s) fr.Transport.payload
      | exception Transport.Error (Transport.Closed _) ->
          continue_ := false;
          on_dead s "pool.worker_disconnects"
      | exception Transport.Error (Transport.Integrity _) ->
          continue_ := false;
          on_dead s "pool.integrity_failures"
      | exception Transport.Error (Transport.Timeout _) ->
          continue_ := false;
          on_dead s "pool.io_timeouts"
    done
  in
  (* Returns [true] to keep the fenced connection alive. *)
  let drain_fenced (c, epoch) =
    try
      let continue_ = ref true in
      while !continue_ do
        match Transport.recv c ~timeout:0.002 with
        | None -> continue_ := false
        | Some fr ->
            let k = fr.Transport.kind in
            if k = Transport.Kind.result then record_result ~epoch None fr.Transport.payload
            else if k = Transport.Kind.error then record_error ~epoch None fr.Transport.payload
      done;
      true
    with Transport.Error _ ->
      Transport.close c;
      false
  in
  let cleanup () =
    Array.iter
      (fun s ->
        if s.alive then begin
          (try
             ignore
               (Transport.send s.conn ~kind:Transport.Kind.shutdown ~epoch:s.epoch Bytes.empty)
           with _ -> ());
          Transport.close s.conn
        end)
      slots;
    List.iter (fun (c, _) -> Transport.close c) !fenced;
    fenced := [];
    let grace = now () +. 2.0 in
    let rec reap remaining =
      match remaining with
      | [] -> ()
      | _ when now () > grace ->
          List.iter
            (fun pid ->
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
            remaining
      | _ ->
          let still =
            List.filter
              (fun pid ->
                match Unix.waitpid [ Unix.WNOHANG ] pid with
                | 0, _ -> true
                | _ -> false
                | exception Unix.Unix_error _ -> false)
              remaining
          in
          if still <> [] then Unix.sleepf 0.01;
          reap still
    in
    reap !pids;
    pids := []
  in
  Fun.protect ~finally:cleanup (fun () ->
      let batch_deadline_at = now () +. o.batch_deadline in
      while !completed < count do
        if now () > batch_deadline_at then degrade "batch deadline expired";
        let live = Array.to_list slots |> List.filter (fun s -> s.alive) in
        if live = [] then degrade "no live workers remain";
        (* Dynamic dispatch: any idle live slot takes the next index. *)
        List.iter
          (fun s ->
            if s.alive && s.running = None && not (Queue.is_empty pending) then begin
              let i = Queue.peek pending in
              match
                Transport.send s.conn ~kind:Transport.Kind.task ~epoch:s.epoch
                  (Marshal.to_bytes i [])
              with
              | _ ->
                  ignore (Queue.pop pending);
                  s.running <- Some i;
                  Metrics.incr m "pool.tasks_dispatched"
              | exception Transport.Error _ -> on_dead s "pool.worker_disconnects"
            end)
          live;
        let fds = open_coordinator_fds () in
        let readable =
          match Unix.select fds [] [] o.poll_interval with
          | r, _, _ -> r
          | exception Unix.Unix_error (EINTR, _, _) -> []
        in
        if readable <> [] then begin
          Array.iter
            (fun s -> if s.alive && List.mem (Transport.fd s.conn) readable then drain_slot s)
            slots;
          fenced :=
            List.filter
              (fun ((c, _) as entry) ->
                if List.mem (Transport.fd c) readable then drain_fenced entry else true)
              !fenced
        end;
        (* Heartbeat suspicion: a slot that stopped writing is treated
           like a crashed node — requeue, fence, respawn under a new
           epoch. *)
        Array.iter
          (fun s ->
            if s.alive && Failure_detector.suspected s.det ~now:(now ()) then
              on_dead ~fence:true s "pool.suspicions")
          slots
      done);
  (match
     Array.to_seq errors
     |> Seq.mapi (fun i e -> (i, e))
     |> Seq.find_map (fun (i, e) -> Option.map (fun msg -> (i, msg)) e)
   with
  | Some (index, message) -> raise (Task_failed { index; message })
  | None -> ());
  Array.map (function Some v -> v | None -> assert false) results

let map ctx count f =
  if count < 0 then invalid_arg "Distributed.map: negative count";
  let batch = ctx.next_batch in
  ctx.next_batch <- batch + 1;
  if count = 0 then [||] else run_batch ctx ~batch count f
