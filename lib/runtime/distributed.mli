(** Multi-process executor backend: blocks run as separate OS processes.

    A {!map} call is one {e dispatch batch}: the pool forks [workers]
    worker processes, each inheriting (copy-on-write) the coordinator's
    full state snapshot — so the task closure needs no marshalling; only
    the task {e results} (plain data by the {!Executor} task contract)
    cross the process boundary, as [Marshal]-encoded payloads in
    {!Transport} frames over Unix domain sockets (anonymous socketpairs
    by default, named sockets under [socket_dir] to exercise the
    listen/connect/backoff path).

    {b Fault tolerance.} Tasks are dispatched dynamically: any idle
    worker takes the next pending index, so a lost worker only costs a
    redispatch. The coordinator runs a heartbeat {!Failure_detector} per
    worker slot; a suspected worker is treated exactly like a
    [Crash_node] fault at the protocol layer — its task is requeued, its
    slot respawned under a {b new epoch} — but its socket is kept
    readable until the batch ends, so a straggler's late reply is
    dropped by epoch fence ([transport.fenced_frames]) rather than
    applied twice. Respawns are bounded per slot and per batch; a slot
    that keeps failing is {e abandoned} and its work degrades onto the
    remaining workers. When nothing live remains, the respawn budget is
    exhausted, or the batch deadline expires, {!map} fails fast with the
    typed {!Degraded} report — it never hangs.

    {b Determinism.} The pool touches only wall-domain state: results
    are merged in index order by {!Phase.run_tasks} exactly as for the
    in-process backends, so tick-domain Obs exports are byte-identical
    to [Sequential]. Everything the pool itself measures (respawns,
    suspicions, fenced frames, plus the per-connection transport
    counters) lives in {!metrics}, a registry that is never merged into
    a run collector.

    {b Wire faults.} A fault source installed with {!set_fault_source}
    is consulted at every worker spawn: [Disconnect_worker] makes the
    worker sever its socket on its first task, [Stall_worker] makes it
    sleep before replying (tripping the failure detector and exercising
    the epoch fence), [Partition_worker] makes the slot — including its
    respawns — drop every frame for a batch interval, forcing
    abandonment. *)

type opts = {
  workers : int;  (** worker processes per batch (>= 1) *)
  socket_dir : string option;
      (** [None] (default): anonymous socketpairs. [Some dir]: named
          sockets under [dir], connected with bounded jittered backoff. *)
  heartbeat_interval : float;  (** worker heartbeat period, seconds *)
  phi : float;  (** failure-detector suspicion threshold *)
  io_deadline : float;  (** per-frame read/write deadline, seconds *)
  poll_interval : float;  (** coordinator select slice, seconds *)
  batch_deadline : float;  (** whole-batch wall bound, seconds *)
  max_respawns_per_slot : int;
      (** respawns of one slot within a batch before it is abandoned *)
  max_respawns_total : int;
      (** respawns across all slots within a batch before {!Degraded} *)
}

val default_opts : opts
(** 2 workers over socketpairs, 50 ms heartbeats, [phi] 8, 10 s frame
    deadlines, 20 ms poll, 60 s batch deadline, 2 respawns per slot,
    8 per batch. *)

type degradation = {
  batch : int;
  reason : string;
  completed : int;  (** tasks finished before the pool gave up *)
  count : int;  (** tasks in the batch *)
  respawns : int;
  abandoned : int;  (** slots written off *)
}

exception Degraded of degradation
(** The batch could not finish under the failure budget. Raised fast —
    every wait in the pool is deadline-bounded. *)

exception Task_failed of { index : int; message : string }
(** A task raised on its worker; the exception text made the round trip
    in an error frame. Raised for the lowest failing index after the
    batch drains, mirroring the in-process backends. *)

val pp_degradation : Format.formatter -> degradation -> unit

type ctx

val create : ?opts:opts -> ?log:Dstress_obs.Log.t -> unit -> ctx
(** Raises [Invalid_argument] if [workers < 1] or an interval/deadline
    is not positive. [log] (default {!Dstress_obs.Log.nop}) receives
    wall-domain pool lifecycle events — spawns at [Debug], lost workers
    at [Warn], abandonment/degradation at [Error] — and is threaded into
    the coordinator-side transports; it never affects tick-domain
    exports. *)

val opts : ctx -> opts

val metrics : ctx -> Dstress_obs.Obs.Metrics.t
(** Wall-domain pool + transport counters for the current run (fresh
    after {!begin_run}); never part of tick-domain exports. *)

val begin_run : ctx -> unit
(** Reset the batch counter and start a fresh metrics registry: batches
    of a new run line up with a wire-fault plan's batch indices. *)

val set_fault_source : ctx -> (batch:int -> worker:int -> Dstress_faults.Fault.fault list) -> unit
(** Consulted at every worker spawn with the slot's batch and slot id;
    only wire-level faults ({!Dstress_faults.Fault.is_wire}) are acted
    on. Typically [Fault.Injector.wire_faults], so firings are recorded
    in the same injector the engine reports from. *)

val clear_fault_source : ctx -> unit

val batches_dispatched : ctx -> int
(** Batches dispatched since {!begin_run} — the next batch index. *)

val map : ctx -> int -> (int -> 'a) -> 'a array
(** [map ctx count f] evaluates [f i] for [0 <= i < count] on forked
    worker processes and returns the results in index order. ['a] must
    be marshal-safe plain data (no closures — the {!Executor} task
    contract). Raises {!Degraded} or {!Task_failed} as above. *)
