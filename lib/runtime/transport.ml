module Crc32 = Dstress_util.Crc32
module Prng = Dstress_util.Prng
module Fault = Dstress_faults.Fault
module Metrics = Dstress_obs.Obs.Metrics
module Log = Dstress_obs.Log

type error = Timeout of string | Closed of string | Integrity of string

exception Error of error

let error_message = function
  | Timeout m -> "timeout: " ^ m
  | Closed m -> "closed: " ^ m
  | Integrity m -> "integrity: " ^ m

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Transport.Error (" ^ error_message e ^ ")")
    | _ -> None)

type frame = {
  kind : int;
  epoch : int;
  seq : int64;
  trace : int64;  (* request trace ID; 0L = none *)
  payload : bytes;
}

type action = Pass | Stall of float | Sever

let magic = "DSTR"
let version = 2
let header_bytes = 36
let max_payload = 1 lsl 28 (* 256 MB: anything bigger is a framing bug *)

type t = {
  fdesc : Unix.file_descr;
  read_deadline : float;
  write_deadline : float;
  m : Metrics.t;
  log : Log.t;
  retain : bool;
  mutable next_seq : int64;
  mutable delivered : int64; (* highest seq handed to the application *)
  mutable sent : (int64 * (int * int * int64 * bytes)) list; (* retained, newest first *)
  mutable hook : (kind:int -> seq:int64 -> action) option;
  mutable closed : bool;
}

let fd t = t.fdesc
let metrics t = t.m
let last_delivered t = t.delivered

let of_fd ?(metrics = Metrics.create ()) ?(log = Log.nop) ?(read_deadline = 10.0)
    ?(write_deadline = 10.0) ?(retain = false) fdesc =
  Unix.set_nonblock fdesc;
  {
    fdesc;
    read_deadline;
    write_deadline;
    m = metrics;
    log;
    retain;
    next_seq = 0L;
    delivered = -1L;
    sent = [];
    hook = None;
    closed = false;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fdesc with Unix.Unix_error _ -> ()
  end

let set_fault_hook t h = t.hook <- Some h

let pair ?metrics ?log ?read_deadline ?write_deadline () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (of_fd ?metrics ?log ?read_deadline ?write_deadline a,
   of_fd ?metrics ?log ?read_deadline ?write_deadline b)

let listen ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fdesc = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fdesc (Unix.ADDR_UNIX path);
  Unix.listen fdesc 16;
  fdesc

let close_quietly fdesc = try Unix.close fdesc with Unix.Unix_error _ -> ()

(* Nagle batches our small frames behind earlier unacked data; every
   framed message here is a complete request/response, so latency wins. *)
let set_nodelay_if_inet fdesc =
  match Unix.getsockname fdesc with
  | Unix.ADDR_INET _ -> ( try Unix.setsockopt fdesc Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
  | _ | (exception Unix.Unix_error _) -> ()

let resolve_inet host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list; _ } when Array.length h_addr_list > 0 -> h_addr_list.(0)
      | _ | (exception Not_found) ->
          raise (Error (Closed (Printf.sprintf "resolve %s: unknown host" host))))

let listen_tcp ?(backlog = 16) ~host ~port () =
  let addr = resolve_inet host in
  let fdesc = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fdesc Unix.SO_REUSEADDR true;
     Unix.bind fdesc (Unix.ADDR_INET (addr, port));
     Unix.listen fdesc backlog
   with e ->
     close_quietly fdesc;
     raise e);
  let bound =
    match Unix.getsockname fdesc with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  (fdesc, bound)

(* A signal (e.g. a daemon's SIGTERM drain handler) interrupts select
   with EINTR; treat it as an empty readiness set and let the caller's
   deadline arithmetic decide whether to keep waiting. *)
let select_r fds timeout =
  match Unix.select fds [] [] timeout with
  | r, _, _ -> r
  | exception Unix.Unix_error (EINTR, _, _) -> []

let select_w fds timeout =
  match Unix.select [] fds [] timeout with
  | _, w, _ -> w
  | exception Unix.Unix_error (EINTR, _, _) -> []

let accept ?metrics ?log ?read_deadline ?write_deadline ?retain ~deadline lfd =
  let until = Unix.gettimeofday () +. deadline in
  let rec wait () =
    let remaining = until -. Unix.gettimeofday () in
    if remaining <= 0.0 then raise (Error (Timeout "accept"));
    match select_r [ lfd ] remaining with [] -> wait () | _ -> ()
  in
  wait ();
  let fdesc, _ = Unix.accept lfd in
  set_nodelay_if_inet fdesc;
  of_fd ?metrics ?log ?read_deadline ?write_deadline ?retain fdesc

(* One bounded-retry connect loop for both address families; only the
   socket domain, target address and the set of transient errnos differ.
   Jittered exponential backoff: base * 2^i * (0.5 + u). *)
let connect_retry ~metrics ?(log = Log.nop) ?read_deadline ?write_deadline ?retain
    ~attempts ~backoff ~jitter_seed ~domain ~addr ~transient ~describe () =
  let prng = Prng.create (Int64.of_int (Hashtbl.hash ("transport-jitter", jitter_seed))) in
  let rec go i =
    Metrics.incr metrics "transport.connect_attempts";
    let fdesc = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fdesc addr with
    | () ->
        if i > 0 then begin
          Metrics.incr metrics "transport.reconnects";
          Log.info log "transport connected after retries"
            [ ("target", Log.Str describe); ("attempts", Log.Int (i + 1)) ]
        end;
        set_nodelay_if_inet fdesc;
        of_fd ~metrics ~log ?read_deadline ?write_deadline ?retain fdesc
    | exception Unix.Unix_error (e, _, _) when transient e ->
        close_quietly fdesc;
        Metrics.incr metrics "transport.connect_failures";
        Log.warn log "transport connect failed"
          [
            ("target", Log.Str describe);
            ("attempt", Log.Int (i + 1));
            ("error", Log.Str (Unix.error_message e));
          ];
        if i + 1 >= attempts then
          raise (Error (Timeout (Printf.sprintf "connect %s: %d attempts" describe attempts)));
        let sleep = backoff *. (2.0 ** float_of_int i) *. (0.5 +. Prng.float prng) in
        Metrics.incr metrics "transport.backoff_sleeps";
        Metrics.add metrics "transport.backoff_sleep_s" sleep;
        Unix.sleepf sleep;
        go (i + 1)
    | exception Unix.Unix_error (e, _, _) ->
        close_quietly fdesc;
        raise (Error (Closed (Printf.sprintf "connect %s: %s" describe (Unix.error_message e))))
  in
  go 0

let connect ?(metrics = Metrics.create ()) ?log ?read_deadline ?write_deadline ?retain
    ?(attempts = 8) ?(backoff = 0.01) ?(jitter_seed = 0) ~path () =
  connect_retry ~metrics ?log ?read_deadline ?write_deadline ?retain ~attempts ~backoff
    ~jitter_seed ~domain:Unix.PF_UNIX ~addr:(Unix.ADDR_UNIX path)
    ~transient:(function
      | Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN | Unix.EINTR -> true
      | _ -> false)
    ~describe:path ()

let connect_tcp ?(metrics = Metrics.create ()) ?log ?read_deadline ?write_deadline
    ?retain ?(attempts = 8) ?(backoff = 0.01) ?(jitter_seed = 0) ~host ~port () =
  let addr = resolve_inet host in
  connect_retry ~metrics ?log ?read_deadline ?write_deadline ?retain ~attempts ~backoff
    ~jitter_seed ~domain:Unix.PF_INET
    ~addr:(Unix.ADDR_INET (addr, port))
    ~transient:(function
      | Unix.ECONNREFUSED | Unix.ETIMEDOUT | Unix.EHOSTUNREACH | Unix.ENETUNREACH
      | Unix.EAGAIN | Unix.EINTR ->
          true
      | _ -> false)
    ~describe:(Printf.sprintf "%s:%d" host port)
    ()

(* ------------------------------------------------------------------ *)
(* Deadline-bounded exact reads and writes on a non-blocking socket     *)
(* ------------------------------------------------------------------ *)

let now () = Unix.gettimeofday ()

let read_exact t buf len ~deadline ~what =
  let got = ref 0 in
  while !got < len do
    let remaining = deadline -. now () in
    if remaining <= 0.0 then begin
      Metrics.incr t.m "transport.timeouts";
      Log.warn t.log "transport read timeout" [ ("what", Log.Str what) ];
      raise (Error (Timeout what))
    end;
    match select_r [ t.fdesc ] remaining with
    | [] -> ()
    | _ -> (
        match Unix.read t.fdesc buf !got (len - !got) with
        | 0 -> raise (Error (Closed (what ^ ": EOF")))
        | n -> got := !got + n
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
        | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
            raise (Error (Closed (what ^ ": reset"))))
  done

let write_all t buf ~what =
  let deadline = now () +. t.write_deadline in
  let len = Bytes.length buf in
  let sent = ref 0 in
  while !sent < len do
    let remaining = deadline -. now () in
    if remaining <= 0.0 then begin
      Metrics.incr t.m "transport.timeouts";
      Log.warn t.log "transport write timeout" [ ("what", Log.Str what) ];
      raise (Error (Timeout what))
    end;
    match select_w [ t.fdesc ] remaining with
    | [] -> ()
    | _ -> (
        match Unix.write t.fdesc buf !sent (len - !sent) with
        | n -> sent := !sent + n
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
        | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
            raise (Error (Closed (what ^ ": reset"))))
  done

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let encode_frame ~kind ~epoch ~seq ?(trace = 0L) payload =
  let len = Bytes.length payload in
  let b = Bytes.create (header_bytes + len) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_uint8 b 4 version;
  Bytes.set_uint8 b 5 kind;
  Bytes.set_uint16_le b 6 0;
  Bytes.set_int32_le b 8 (Int32.of_int epoch);
  Bytes.set_int64_le b 12 seq;
  Bytes.set_int64_le b 20 trace;
  Bytes.set_int32_le b 28 (Int32.of_int len);
  Bytes.set_int32_le b 32 (Crc32.digest payload);
  Bytes.blit payload 0 b header_bytes len;
  b

let write_frame t ~kind ~epoch ~seq ?trace payload =
  let b = encode_frame ~kind ~epoch ~seq ?trace payload in
  write_all t b ~what:"send";
  Metrics.incr t.m "transport.frames_sent";
  Metrics.incr t.m ~by:(Bytes.length b) "transport.bytes_sent"

let send t ~kind ~epoch ?(trace = 0L) payload =
  if t.closed then raise (Error (Closed "send on closed connection"));
  let seq = t.next_seq in
  t.next_seq <- Int64.add seq 1L;
  if t.retain then
    t.sent <- (seq, (kind, epoch, trace, Bytes.copy payload)) :: t.sent;
  (match t.hook with
  | None -> ()
  | Some h -> (
      match h ~kind ~seq with
      | Pass -> ()
      | Stall s ->
          Metrics.incr t.m "transport.stalls_injected";
          (* Fault.delay_ticks is the one simulated-time rounding rule;
             recording the stall's tick-equivalent here keeps wall-domain
             bookkeeping comparable with the engine's recovery charges. *)
          Metrics.incr t.m ~by:(Fault.delay_ticks s) "transport.stall_ticks";
          Unix.sleepf s
      | Sever ->
          Metrics.incr t.m "transport.severs_injected";
          close t;
          raise (Error (Closed "injected sever"))));
  write_frame t ~kind ~epoch ~seq ~trace payload;
  seq

(* One raw frame off the wire, however long since the last one — the
   caller bounds the wait; once the header starts arriving the per-frame
   read deadline takes over. *)
let read_frame t ~first_timeout =
  match select_r [ t.fdesc ] first_timeout with
  | [] -> None
  | _ ->
      let hdr = Bytes.create header_bytes in
      let deadline = now () +. t.read_deadline in
      read_exact t hdr header_bytes ~deadline ~what:"recv header";
      if Bytes.sub_string hdr 0 4 <> magic then begin
        Metrics.incr t.m "transport.framing_errors";
        Log.error t.log "transport framing error" [ ("what", Log.Str "bad magic") ];
        raise (Error (Integrity "bad magic"))
      end;
      if Bytes.get_uint8 hdr 4 <> version then begin
        Metrics.incr t.m "transport.framing_errors";
        Log.error t.log "transport framing error"
          [
            ("what", Log.Str "bad version");
            ("got", Log.Int (Bytes.get_uint8 hdr 4));
            ("want", Log.Int version);
          ];
        raise (Error (Integrity "bad version"))
      end;
      let kind = Bytes.get_uint8 hdr 5 in
      let epoch = Int32.to_int (Bytes.get_int32_le hdr 8) in
      let seq = Bytes.get_int64_le hdr 12 in
      let trace = Bytes.get_int64_le hdr 20 in
      let len = Int32.to_int (Bytes.get_int32_le hdr 28) in
      let crc = Bytes.get_int32_le hdr 32 in
      if len < 0 || len > max_payload then begin
        Metrics.incr t.m "transport.framing_errors";
        Log.error t.log "transport framing error"
          [ ("what", Log.Str "bad length"); ("len", Log.Int len) ];
        raise (Error (Integrity (Printf.sprintf "frame length %d" len)))
      end;
      let payload = Bytes.create len in
      read_exact t payload len ~deadline ~what:"recv payload";
      if Crc32.digest payload <> crc then begin
        Metrics.incr t.m "transport.crc_failures";
        Log.error t.log "transport crc mismatch" ~trace
          [ ("kind", Log.Str (Printf.sprintf "%d" kind)); ("len", Log.Int len) ];
        raise (Error (Integrity "crc mismatch"))
      end;
      Metrics.incr t.m "transport.frames_received";
      Metrics.incr t.m ~by:(header_bytes + len) "transport.bytes_received";
      Some { kind; epoch; seq; trace; payload }

let kind_ack = 0

let handle_ack t payload =
  if Bytes.length payload = 8 then begin
    let upto = Bytes.get_int64_le payload 0 in
    Metrics.incr t.m "transport.acks_received";
    t.sent <- List.filter (fun (s, _) -> Int64.compare s upto > 0) t.sent
  end

let recv t ~timeout =
  if t.closed then raise (Error (Closed "recv on closed connection"));
  let deadline = now () +. timeout in
  let rec loop () =
    let remaining = deadline -. now () in
    if remaining < 0.0 then None
    else
      match read_frame t ~first_timeout:(max remaining 0.0) with
      | None -> None
      | Some f when f.kind = kind_ack ->
          handle_ack t f.payload;
          loop ()
      | Some f when Int64.compare f.seq t.delivered <= 0 ->
          (* Idempotent dedup: a retransmitted frame that already made it
             through is acknowledged by silence, never re-applied. *)
          Metrics.incr t.m "transport.dup_dropped";
          Log.debug t.log "transport duplicate dropped" ~trace:f.trace
            [ ("seq", Log.Int (Int64.to_int f.seq)) ];
          loop ()
      | Some f ->
          t.delivered <- f.seq;
          Some f
  in
  loop ()

let ack t upto =
  let payload = Bytes.create 8 in
  Bytes.set_int64_le payload 0 upto;
  Metrics.incr t.m "transport.acks_sent";
  (* Acks bypass the retained-frame buffer and the fault hook: they are
     transport housekeeping, not application traffic. *)
  let seq = t.next_seq in
  t.next_seq <- Int64.add seq 1L;
  write_frame t ~kind:kind_ack ~epoch:0 ~seq payload

let takeover ~old t =
  t.next_seq <- old.next_seq;
  t.delivered <- old.delivered;
  t.sent <- old.sent;
  old.sent <- [];
  Metrics.incr t.m "transport.reconnects"

let retransmit_from t upto =
  if not t.retain then invalid_arg "Transport.retransmit_from: connection does not retain";
  let pending =
    List.filter (fun (s, _) -> Int64.compare s upto > 0) t.sent |> List.rev
  in
  List.iter
    (fun (seq, (kind, epoch, trace, payload)) ->
      Metrics.incr t.m "transport.retransmits";
      write_frame t ~kind ~epoch ~seq ~trace payload)
    pending;
  List.length pending

module Kind = struct
  let ack = kind_ack
  let hello = 1
  let heartbeat = 2
  let task = 3
  let result = 4
  let error = 5
  let shutdown = 6
  let ping = 7
  let echo = 8
  let request = 9
  let response = 10
  let stats = 11
  let stats_reply = 12

  let name = function
    | 0 -> "ack"
    | 1 -> "hello"
    | 2 -> "heartbeat"
    | 3 -> "task"
    | 4 -> "result"
    | 5 -> "error"
    | 6 -> "shutdown"
    | 7 -> "ping"
    | 8 -> "echo"
    | 9 -> "request"
    | 10 -> "response"
    | 11 -> "stats"
    | 12 -> "stats_reply"
    | k -> "kind:" ^ string_of_int k
end
