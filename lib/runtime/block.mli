(** One vertex's block (§3.3): the k+1 members holding XOR shares of the
    vertex's state and of its D message slots, plus the block's GMW
    session.

    A block is the runtime's unit of independent work: computation tasks
    touch exactly one block, communication tasks touch one source block's
    outbox (read) and one destination block's inbox slot (write, slots are
    disjoint per edge). The module also provides the {e keyed randomness}
    derivations that give every block and every edge transfer its own
    independent stream — [H(seed ":" purpose)] — so no task ever draws
    from a shared generator and scheduling order cannot change outputs. *)

type t = {
  vertex : int;
  members : int array;  (** k+1 global node ids, first is the vertex *)
  mutable session : Dstress_mpc.Gmw.session;
      (** reused across all rounds; mutable so the Distributed backend
          can write a worker's evolved session (PRG counters, round/OT
          tallies) back after a computation batch *)
  state_bits : int;
  message_bits : int;
  degree : int;
  mutable state : Dstress_util.Bitvec.t array;  (** one share per member *)
  inbox : Dstress_util.Bitvec.t array array;
      (** [inbox.(slot).(member)] — shares of the message last received on
          each in-slot; no-op (all-zero) when nothing arrived *)
  outbox : Dstress_util.Bitvec.t array array;
      (** [outbox.(slot).(member)] — shares produced by the last update *)
}

val session_seed : seed:string -> vertex:int -> string
(** The seed string a block's GMW session is created from
    (["<seed>:block:<vertex>"]) — exposed so the offline preprocessing
    phase can generate correlated randomness for exactly the session a
    block will hold. *)

val create :
  ot_mode:Dstress_crypto.Ot_ext.mode ->
  grp:Dstress_crypto.Group.t ->
  seed:string ->
  kp1:int ->
  degree:int ->
  state_bits:int ->
  message_bits:int ->
  vertex:int ->
  members:int array ->
  t
(** State and both mailboxes start as all-zero shares; the GMW session is
    seeded ["gmw:<seed>:block:<vertex>:party:<p>"] per party (via
    {!Dstress_mpc.Gmw.create_session}). *)

val clear_inbox : t -> unit
(** Reset every in-slot to no-op shares (each communication round starts
    from silence; real messages overwrite their slot). *)

val gather_inputs : t -> Dstress_util.Bitvec.t array
(** Per-member concatenation [state @ inbox slots] — the update circuit's
    input shares. *)

val scatter_outputs : t -> Dstress_util.Bitvec.t array -> unit
(** Split the update circuit's output shares back into [state] and
    [outbox]. *)

val derive_prg : seed:string -> string -> Dstress_crypto.Prg.t
(** [derive_prg ~seed purpose] keys an independent SHA-256 PRG stream as
    [seed ^ ":" ^ purpose]. Every consumer of runtime randomness (per-block
    initialization, per-edge transfer, per-event re-sharing, aggregation)
    derives its own stream with a distinct purpose label. *)

val derive_prng : seed:string -> string -> Dstress_util.Prng.t
(** Same derivation for the simulation PRNG (transfer wire noise), seeded
    with {!Dstress_crypto.Prg.seed64} — collision-resistant, unlike the
    [Hashtbl.hash] seeding it replaces. *)

val reshare :
  ?obs:Dstress_obs.Obs.t ->
  prg:Dstress_crypto.Prg.t ->
  kp1:int ->
  ebytes:int ->
  traffic:Dstress_mpc.Traffic.t ->
  src_blocks:int array list ->
  dst_members:int array ->
  Dstress_util.Bitvec.t array list ->
  Dstress_util.Bitvec.t array list
(** Re-share values held as XOR shares in source blocks into a destination
    block: each source member subshares its share and sends one piece to
    each destination member, who XORs everything received (§3.6). Returns
    the destination members' shares, one Bitvec per member per value; the
    wire bytes are charged to [traffic] under global node ids, and counted
    in the [reshare.values] / [reshare.bytes] metrics of [obs] (default:
    the no-op collector). *)
