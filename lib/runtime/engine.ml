module Bitvec = Dstress_util.Bitvec
module Prg = Dstress_crypto.Prg
module Group = Dstress_crypto.Group
module Exp_elgamal = Dstress_crypto.Exp_elgamal
module Ot_ext = Dstress_crypto.Ot_ext
module Circuit = Dstress_circuit.Circuit
module Traffic = Dstress_mpc.Traffic
module Sharing = Dstress_mpc.Sharing
module Gmw = Dstress_mpc.Gmw
module Plan = Dstress_mpc.Plan
module Triple = Dstress_mpc.Triple
module Setup = Dstress_transfer.Setup
module Protocol = Dstress_transfer.Protocol
module Noise_circuit = Dstress_dp.Noise_circuit
module Fault = Dstress_faults.Fault
module Obs = Dstress_obs.Obs

type aggregation = Single_block | Two_level of int

type config = {
  grp : Group.t;
  k : int;
  degree_bound : int;
  ot_mode : Ot_ext.mode;
  transfer_alpha : float;
  table_radius : int;
  aggregation : aggregation;
  seed : string;
  fault_plan : Fault.plan;
  max_retries : int;
  backoff : float;
  executor : Executor.t;
  slice_width : int;
  obs_level : Obs.level;
  preprocess : bool;
  triple_cache : string option;
}

(* How much wider the escalation lookup table is than the regular one:
   the last recovery attempt covers [-8r, k+1+8r] instead of [-r, k+1+r],
   which drops the residual miss probability by ~alpha^(7r). *)
let escalation_widening = 8

let default_config ?(seed = "dstress") grp ~k ~degree_bound =
  {
    grp;
    k;
    degree_bound;
    ot_mode = Ot_ext.Simulation;
    transfer_alpha = 0.5;
    table_radius = 120;
    aggregation = Single_block;
    seed;
    fault_plan = Fault.empty;
    max_retries = 2;
    backoff = 0.05;
    executor = Executor.of_env ();
    slice_width = 64;
    obs_level = Obs.Off;
    preprocess = false;
    triple_cache = None;
  }

let validate_config cfg =
  if cfg.k < 1 then invalid_arg "Engine.run: k must be >= 1 (blocks need k+1 >= 2 members)";
  if cfg.degree_bound < 1 then invalid_arg "Engine.run: degree_bound must be >= 1";
  if not (cfg.transfer_alpha > 0.0 && cfg.transfer_alpha < 1.0) then
    invalid_arg "Engine.run: transfer_alpha must lie in (0, 1)";
  if cfg.table_radius <= 0 then invalid_arg "Engine.run: table_radius must be > 0";
  (match cfg.aggregation with
  | Two_level fanout when fanout < 1 ->
      invalid_arg "Engine.run: Two_level aggregation fan-out must be >= 1"
  | Two_level _ | Single_block -> ());
  if cfg.max_retries < 0 then invalid_arg "Engine.run: max_retries must be >= 0";
  if cfg.backoff < 0.0 then invalid_arg "Engine.run: backoff must be >= 0";
  if cfg.slice_width < 1 || cfg.slice_width > 64 then
    invalid_arg "Engine.run: slice_width must be in [1, 64]";
  match cfg.executor with
  | Executor.Parallel { jobs } when jobs < 1 ->
      invalid_arg "Engine.run: executor jobs must be >= 1"
  | Executor.Parallel _ | Executor.Sequential | Executor.Distributed _ -> ()

type phase = Phase.id = Setup | Initialization | Computation | Communication | Aggregation

let phase_name = Phase.name
let all_phases = Phase.all

type report = {
  output : int;
  iterations : int;
  traffic : Traffic.t;
  phase_bytes : (phase * int) list;
  phase_seconds : (phase * float) list;
  transfer_failures : int;
  recovered_failures : int;
  unrecovered_failures : int;
  transfer_retries : int;
  crash_recoveries : int;
  faults_injected : (Fault.kind * int) list;
  retry_epsilon : float;
  recovery_seconds : (phase * float) list;
  mpc_rounds : int;
  mpc_and_gates : int;
  mpc_ots : int;
  update_stats : Circuit.stats;
  obs : Obs.t;
  transport_metrics : Obs.Metrics.t option;
  offline_metrics : Obs.Metrics.t option;
}

(* Everything a computation task mutates on its (possibly fork-local)
   block, shipped back in the payload so the coordinator's authoritative
   copy catches up. Under the in-process executors the writeback applies
   the very same objects — an idempotent no-op. *)
type vertex_writeback = {
  wb_events : int;  (* crash recoveries replayed by the merge *)
  wb_state : Bitvec.t array;
  wb_inbox : Bitvec.t array array;
  wb_outbox : Bitvec.t array array;
  wb_session : Gmw.session;
}

let vertex_writeback ~events b =
  {
    wb_events = events;
    wb_state = b.Block.state;
    wb_inbox = b.Block.inbox;
    wb_outbox = b.Block.outbox;
    wb_session = b.Block.session;
  }

let apply_writeback b wb =
  b.Block.state <- wb.wb_state;
  Array.blit wb.wb_inbox 0 b.Block.inbox 0 (Array.length b.Block.inbox);
  Array.blit wb.wb_outbox 0 b.Block.outbox 0 (Array.length b.Block.outbox);
  b.Block.session <- wb.wb_session

(* Total simulated wait for [retries] exponential-backoff retransmissions
   starting at [backoff] seconds: backoff * (2^retries - 1). *)
let backoff_seconds ~backoff ~retries =
  if retries <= 0 then 0.0 else backoff *. ((2.0 ** float_of_int retries) -. 1.0)

(* Fold a block-local GMW traffic matrix (member indices) into a run-wide
   matrix (global node ids) and reset it. *)
let merge_session_traffic traffic session members =
  Traffic.iter_nonzero (Gmw.traffic session) (fun ~src ~dst v ->
      Traffic.add traffic ~src:members.(src) ~dst:members.(dst) v);
  Gmw.reset_traffic session

(* Input shares for the noise section of a noised circuit: every member
   contributes uniform bits; the XOR (the cleartext nobody knows) is
   uniform as long as one member is honest. *)
let noise_input_shares prg ~kp1 =
  let ubits = Noise_circuit.default_uniform_bits in
  Array.init kp1 (fun _ -> Prg.bits prg (ubits + 1))

let run cfg p ~graph ~initial_states =
  validate_config cfg;
  let n = Graph.n graph in
  let kp1 = cfg.k + 1 in
  let d = cfg.degree_bound in
  let sb = p.Vertex_program.state_bits and l = p.Vertex_program.message_bits in
  if Array.length initial_states <> n then
    invalid_arg "Engine.run: one initial state per vertex required";
  Array.iter
    (fun s -> if Bitvec.length s <> sb then invalid_arg "Engine.run: bad state width")
    initial_states;
  if Graph.max_degree graph > d then invalid_arg "Engine.run: vertex degree exceeds bound";
  let exec = cfg.executor and seed = cfg.seed in
  let obs = Obs.create ~level:cfg.obs_level () in
  let acc = Phase.Accounting.create ~obs ~parties:n () in
  let global = Phase.Accounting.traffic acc in
  Obs.enter obs "run";
  let ebytes = Group.element_bytes cfg.grp in
  let injector = Fault.Injector.create cfg.fault_plan in
  (* The Distributed pool consults the same injector for wire faults, so
     one plan drives both protocol- and transport-level failures and the
     fired-fault report covers both. *)
  (match Executor.distributed_ctx exec with
  | Some ctx ->
      Distributed.begin_run ctx;
      Distributed.set_fault_source ctx (fun ~batch ~worker ->
          Fault.Injector.wire_faults injector ~batch ~worker)
  | None -> ());
  (* --- Setup --------------------------------------------------- *)
  let setup =
    Phase.run_sequential acc Setup (fun () ->
        let s =
          Setup.run (Prg.of_string ("engine:" ^ seed)) cfg.grp ~n ~k:cfg.k ~degree_bound:d
            ~bits:l
        in
        (* The one-time setup download is TP->node traffic: charged on the
           dedicated external row, spread uniformly for per-node reporting. *)
        let per_node = Setup.setup_traffic_bytes s / n in
        for i = 0 to n - 1 do
          Traffic.add_external global ~dst:i per_node
        done;
        s)
  in
  let table =
    Exp_elgamal.Table.make cfg.grp ~lo:(-cfg.table_radius) ~hi:(kp1 + cfg.table_radius)
  in
  (* The widened escalation table is built at most once, under a mutex
     (parallel communication tasks may race to need it first); every task
     gets its own lazy cell so no Lazy.t is ever forced from two domains. *)
  let escalation = ref None in
  let escalation_mutex = Mutex.create () in
  let escalation_table () =
    Mutex.protect escalation_mutex (fun () ->
        match !escalation with
        | Some t -> t
        | None ->
            let radius = escalation_widening * cfg.table_radius in
            let t = Exp_elgamal.Table.make cfg.grp ~lo:(-radius) ~hi:(kp1 + radius) in
            escalation := Some t;
            t)
  in
  let recovery () =
    { Protocol.max_retries = cfg.max_retries;
      escalation_table = Some (lazy (escalation_table ())) }
  in
  let params = { Protocol.alpha = cfg.transfer_alpha; table } in
  let update_c = Vertex_program.update_circuit p ~degree:d in
  let blocks =
    Array.init n (fun i ->
        Block.create ~ot_mode:cfg.ot_mode ~grp:cfg.grp ~seed ~kp1 ~degree:d ~state_bits:sb
          ~message_bits:l ~vertex:i ~members:(Setup.block_of setup i))
  in
  (* --- Offline preprocessing ------------------------------------ *)
  (* Pre-generate (or load from the triple cache) every block session's
     correlated randomness for the whole run — iterations + 1 update-
     circuit evaluations per block — and attach it, so the timed online
     rounds consume pre-drawn material instead of running the PRG/OT
     machinery inline. Runs sequentially on the coordinator before any
     task batch: under the Distributed backend the material reaches the
     workers through fork copy-on-write, and no domain has been spawned
     yet. Metrics go to a separate wall-domain registry (never the tick-
     domain [obs]): a run must export byte-identical traces and metrics
     with and without preprocessing. *)
  let offline_metrics =
    if not cfg.preprocess then None
    else begin
      let m = Obs.Metrics.create () in
      let t0 = Unix.gettimeofday () in
      let cache = Triple.Cache.shared in
      let g0 = Triple.Cache.generations cache in
      let d0 = Triple.Cache.disk_loads cache in
      let h0 = Triple.Cache.hits cache in
      let plan = Plan.of_circuit update_c in
      let digest = Plan.digest plan in
      let evals = p.Vertex_program.iterations + 1 in
      Array.iter
        (fun b ->
          let bseed = Block.session_seed ~seed ~vertex:b.Block.vertex in
          let mat =
            Triple.Cache.find_or_generate ?dir:cfg.triple_cache cache ~digest ~parties:kp1
              ~seed:bseed ~slice_width:cfg.slice_width ~mode:cfg.ot_mode ~evals
              ~generate:(fun ~evals ->
                Gmw.generate_material ~mode:cfg.ot_mode cfg.grp ~parties:kp1 ~seed:bseed
                  ~slice_width:cfg.slice_width ~evals plan)
          in
          Gmw.attach_material b.Block.session mat)
        blocks;
      Obs.Metrics.incr m ~by:n "preprocess.sessions";
      Obs.Metrics.incr m ~by:(n * evals) "preprocess.evals";
      Obs.Metrics.incr m ~by:(Triple.Cache.generations cache - g0)
        "preprocess.cache.generations";
      Obs.Metrics.incr m ~by:(Triple.Cache.disk_loads cache - d0)
        "preprocess.cache.disk_loads";
      Obs.Metrics.incr m ~by:(Triple.Cache.hits cache - h0) "preprocess.cache.hits";
      Obs.Metrics.set m "preprocess.wall_s" (Unix.gettimeofday () -. t0);
      Some m
    end
  in
  (* --- Initialization ------------------------------------------ *)
  Phase.run_tasks exec acc Initialization
    ~task_label:(fun i -> Printf.sprintf "init:%d" i)
    ~count:n
    ~task:(fun _obs i ->
      let traffic = Traffic.create n in
      let b = blocks.(i) in
      let prg = Block.derive_prg ~seed (Printf.sprintf "init:%d" i) in
      b.Block.state <- Sharing.share prg ~parties:kp1 initial_states.(i);
      (* Node i distributes state and D no-op message shares to the other
         members of its block. *)
      let bytes = ((sb + (d * l) + 7) / 8) + ebytes in
      Array.iter
        (fun member -> if member <> i then Traffic.add traffic ~src:i ~dst:member bytes)
        b.Block.members;
      { Phase.traffic; payload = b.Block.state })
    ~merge:(fun i shares -> blocks.(i).Block.state <- shares)
    ();
  let failures = ref 0 and recovered = ref 0 and unrecovered = ref 0 in
  let retries = ref 0 and crash_recoveries = ref 0 and retry_epsilon = ref 0.0 in
  (* --- Computation step ----------------------------------------- *)
  (* Crash recovery (§3.6): a crashed member is fail-stop; a standby takes
     over its slot and the surviving members re-share every value the
     block holds, so the XOR invariant is preserved. Fault queries hit the
     stateful injector in a sequential prologue (deterministic fired-fault
     book-keeping); the re-sharing runs inside the block's task with an
     event-keyed PRG and is charged as re-sharing traffic plus one backoff
     period. *)
  (* Crash handoff for vertex [i]: re-share every value block [i] holds,
     once per crashed member. Charges re-sharing traffic to [traffic] and
     returns the number of recovery events. *)
  let recover_crashes ~obs ~round ~traffic i crashed_members =
    let b = blocks.(i) in
    List.iter
      (fun m ->
        let prg = Block.derive_prg ~seed (Printf.sprintf "reshare:%d:%d:%d" round i m) in
        let values = b.Block.state :: Array.to_list b.Block.inbox in
        let src_blocks = List.map (fun _ -> b.Block.members) values in
        match
          Block.reshare ~obs ~prg ~kp1 ~ebytes ~traffic ~src_blocks
            ~dst_members:b.Block.members values
        with
        | st :: msgs ->
            b.Block.state <- st;
            List.iteri (fun s v -> b.Block.inbox.(s) <- v) msgs
        | [] -> assert false)
      crashed_members;
    List.length crashed_members
  in
  let compute ~round () =
    let crashed =
      Array.init n (fun i ->
          Array.to_list blocks.(i).Block.members
          |> List.filter (fun m -> Fault.Injector.crash_starting injector ~round ~node:m))
    in
    (* Merge: write each vertex's mutations back onto the coordinator's
       blocks (a no-op for the in-process executors, the state handoff for
       Distributed), then replay crash-recovery accounting in vertex order
       on the root collector, so the counters and recovery ticks are
       identical for every executor and slice grouping. *)
    let merge_group lo wbs =
      Array.iteri
        (fun o wb ->
          apply_writeback blocks.(lo + o) wb;
          let e = wb.wb_events in
          if e > 0 then begin
            crash_recoveries := !crash_recoveries + e;
            Obs.incr obs ~by:e "faults.crash_recoveries";
            Phase.Accounting.add_recovery acc Computation (float_of_int e *. cfg.backoff)
          end)
        wbs
    in
    if cfg.slice_width = 1 then
      (* Scalar path: one task per vertex, one scalar GMW evaluation each.
         The vertex span covers the vertex's recovery re-sharing plus its
         GMW traffic, matching the sliced path's per-vertex attribution. *)
      Phase.run_tasks exec acc Computation ~count:n
        ~task:(fun obs i ->
          let traffic = Traffic.create n in
          let b = blocks.(i) in
          if Obs.detailed obs then Obs.enter obs (Printf.sprintf "vertex:%d" i);
          let events = recover_crashes ~obs ~round ~traffic i crashed.(i) in
          let out =
            Gmw.eval b.Block.session update_c ~input_shares:(Block.gather_inputs b)
          in
          Block.scatter_outputs b out;
          merge_session_traffic traffic b.Block.session b.Block.members;
          if Obs.enabled obs then begin
            Obs.advance obs (Traffic.total traffic);
            if Obs.detailed obs then Obs.leave obs;
            Obs.advance obs (Phase.recovery_ticks (float_of_int events *. cfg.backoff))
          end;
          { Phase.traffic; payload = [| vertex_writeback ~events b |] })
        ~merge:merge_group ()
    else begin
      (* Bitsliced path: every vertex runs the same update circuit, so a
         task takes a contiguous group of vertices and evaluates them as
         one sliced GMW batch (Gmw.eval_many). Under a domain pool the
         group shrinks so every worker stays busy; the partition is free
         to vary because eval_many is observably identical per instance,
         and the merge replays per-vertex recovery accounting in vertex
         order, so reports stay bit-identical to the scalar path. *)
      let group_size =
        match exec with
        | Executor.Sequential -> cfg.slice_width
        | Executor.Parallel _ | Executor.Distributed _ ->
            let jobs = Executor.jobs exec in
            max 1 (min cfg.slice_width ((n + jobs - 1) / jobs))
      in
      let groups = (n + group_size - 1) / group_size in
      Phase.run_tasks exec acc Computation ~count:groups
        ~task:(fun obs gi ->
          let lo = gi * group_size in
          let len = min group_size (n - lo) in
          let traffic = Traffic.create n in
          if Obs.detailed obs then begin
            (* Detailed tracing meters each vertex into its own matrix so
               the emitted [vertex:<i>] spans (recovery re-sharing + GMW
               bytes, then recovery ticks) are laid out exactly as on the
               scalar path, for any slice grouping. *)
            let vtraffic = Array.init len (fun _ -> Traffic.create n) in
            let events =
              Array.init len (fun o ->
                  recover_crashes ~obs ~round ~traffic:vtraffic.(o) (lo + o) crashed.(lo + o))
            in
            let sessions = Array.init len (fun o -> blocks.(lo + o).Block.session) in
            let inputs = Array.init len (fun o -> Block.gather_inputs blocks.(lo + o)) in
            let outs = Gmw.eval_many sessions update_c ~input_shares:inputs in
            Array.iteri
              (fun o out ->
                let b = blocks.(lo + o) in
                Block.scatter_outputs b out;
                Obs.enter obs (Printf.sprintf "vertex:%d" (lo + o));
                merge_session_traffic vtraffic.(o) b.Block.session b.Block.members;
                Obs.advance obs (Traffic.total vtraffic.(o));
                Obs.leave obs;
                Obs.advance obs
                  (Phase.recovery_ticks (float_of_int events.(o) *. cfg.backoff));
                Traffic.merge_into ~dst:traffic vtraffic.(o))
              outs;
            {
              Phase.traffic;
              payload =
                Array.init len (fun o ->
                    vertex_writeback ~events:events.(o) blocks.(lo + o));
            }
          end
          else begin
            let events =
              Array.init len (fun o ->
                  recover_crashes ~obs ~round ~traffic (lo + o) crashed.(lo + o))
            in
            let sessions = Array.init len (fun o -> blocks.(lo + o).Block.session) in
            let inputs = Array.init len (fun o -> Block.gather_inputs blocks.(lo + o)) in
            let outs = Gmw.eval_many sessions update_c ~input_shares:inputs in
            Array.iteri
              (fun o out ->
                let b = blocks.(lo + o) in
                Block.scatter_outputs b out;
                merge_session_traffic traffic b.Block.session b.Block.members)
              outs;
            if Obs.enabled obs then begin
              Obs.advance obs (Traffic.total traffic);
              Array.iter
                (fun e ->
                  Obs.advance obs (Phase.recovery_ticks (float_of_int e *. cfg.backoff)))
                events
            end;
            {
              Phase.traffic;
              payload =
                Array.init len (fun o ->
                    vertex_writeback ~events:events.(o) blocks.(lo + o));
            }
          end)
        ~merge:(fun gi wbs -> merge_group (gi * group_size) wbs) ()
    end
  in
  (* --- Communication step ---------------------------------------- *)
  let edges = Array.of_list (Graph.edges graph) in
  let communicate ~round () =
    (* Reset all inboxes to no-op shares; real messages overwrite. Edge
       faults are resolved sequentially (the injector is stateful); each
       edge task then runs the §3.5 transfer with its own keyed PRG and
       noise stream and writes the one inbox slot it owns. *)
    Array.iter Block.clear_inbox blocks;
    let faults =
      Array.map (fun (i, j) -> Fault.Injector.edge_faults injector ~round ~src:i ~dst:j) edges
    in
    Phase.run_tasks exec acc Communication ~count:(Array.length edges)
      ~task:(fun obs e ->
        let i, j = edges.(e) in
        let traffic = Traffic.create n in
        let delay =
          List.fold_left
            (fun a -> function Fault.Delay_transfer { seconds; _ } -> a +. seconds | _ -> a)
            0.0 faults.(e)
        in
        let has k = List.exists (fun f -> Fault.kind_of f = k) faults.(e) in
        let inject =
          if has Fault.Drop then Some Protocol.Drop_attempt
          else if has Fault.Corrupt then Some Protocol.Corrupt_attempt
          else if has Fault.Decrypt_miss then
            (* Deterministic position derived from the edge and round,
               so replays force the same miss. *)
            Some
              (Protocol.Force_miss
                 { member = (i + j + round) mod kp1; bit = ((7 * i) + round) mod l })
          else None
        in
        let shares = Array.copy blocks.(i).Block.outbox.(Graph.out_slot graph ~src:i ~dst:j) in
        let prg = Block.derive_prg ~seed (Printf.sprintf "xfer:%d:%d:%d" round i j) in
        let noise = Block.derive_prng ~seed (Printf.sprintf "noise:%d:%d:%d" round i j) in
        if Obs.detailed obs then Obs.enter obs (Printf.sprintf "xfer:%d->%d" i j);
        let outcome =
          Protocol.transfer ~recovery:(recovery ()) ?inject ~obs params ~prg ~noise ~traffic
            ~variant:Protocol.Final ~setup ~sender:i ~receiver:j
            ~neighbor_slot:(Graph.neighbor_slot graph ~owner:j ~other:i) ~shares
        in
        if Obs.detailed obs then Obs.leave obs;
        Obs.advance obs
          (Phase.recovery_ticks
             (delay +. backoff_seconds ~backoff:cfg.backoff ~retries:outcome.Protocol.retries));
        { Phase.traffic; payload = (outcome, delay) })
      ~merge:(fun e (o, delay) ->
        (* The inbox write happens here, not in the task: an edge task may
           run in a forked worker whose blocks are a private snapshot. *)
        let i, j = edges.(e) in
        blocks.(j).Block.inbox.(Graph.in_slot graph ~src:i ~dst:j) <- o.Protocol.shares;
        failures := !failures + o.Protocol.failures;
        recovered := !recovered + o.Protocol.recovered;
        unrecovered := !unrecovered + o.Protocol.unrecovered;
        retries := !retries + o.Protocol.retries;
        retry_epsilon := !retry_epsilon +. o.Protocol.extra_epsilon;
        Phase.Accounting.add_recovery acc Communication
          (delay +. backoff_seconds ~backoff:cfg.backoff ~retries:o.Protocol.retries))
      ()
  in
  for it = 1 to p.Vertex_program.iterations do
    Obs.span obs (Printf.sprintf "round:%d" it) (fun () ->
        compute ~round:it ();
        communicate ~round:it ())
  done;
  (* Final computation step (§3.6): process the last round of messages. *)
  Obs.span obs (Printf.sprintf "round:%d" (p.Vertex_program.iterations + 1)) (fun () ->
      compute ~round:(p.Vertex_program.iterations + 1) ());
  (* --- Aggregation + noising ------------------------------------ *)
  let agg_sessions = ref [] in
  let eval_in_block ~label members circuit input_shares =
    let session =
      Gmw.create_session ~mode:cfg.ot_mode cfg.grp ~parties:kp1
        ~seed:(Printf.sprintf "%s:agg:%s" seed label)
    in
    agg_sessions := session :: !agg_sessions;
    let out = Gmw.eval session circuit ~input_shares in
    merge_session_traffic global session members;
    (session, out)
  in
  let concat_inputs per_value_shares extra =
    (* per_value_shares : Bitvec array list (one array of kp1 shares per
       value); build per-member concatenation, appending the per-member
       extra bits. *)
    Array.init kp1 (fun m ->
        Bitvec.concat
          (List.map (fun shares -> (shares : Bitvec.t array).(m)) per_value_shares
          @ [ extra.(m) ]))
  in
  let combine_at_root ~src_blocks ~values ~circuit =
    let dst_members = setup.Setup.agg_block in
    let prg = Block.derive_prg ~seed "agg:reshare:root" in
    let reshared =
      Block.reshare ~obs ~prg ~kp1 ~ebytes ~traffic:global ~src_blocks ~dst_members values
    in
    let noise = noise_input_shares (Block.derive_prg ~seed "agg:noise") ~kp1 in
    let session, out = eval_in_block ~label:"root" dst_members circuit
        (concat_inputs reshared noise)
    in
    let revealed = Gmw.reveal session out in
    merge_session_traffic global session dst_members;
    revealed
  in
  let output_bits =
    match cfg.aggregation with
    | Single_block ->
        Phase.run_sequential acc Aggregation (fun () ->
            combine_at_root
              ~src_blocks:(List.init n (fun i -> blocks.(i).Block.members))
              ~values:(List.init n (fun i -> blocks.(i).Block.state))
              ~circuit:(Vertex_program.aggregate_circuit p ~count:n))
    | Two_level fanout ->
        let groups =
          let rec chunks start =
            if start >= n then []
            else begin
              let len = min fanout (n - start) in
              List.init len (fun o -> start + o) :: chunks (start + len)
            end
          in
          Array.of_list (chunks 0)
        in
        let empty_extra = Array.init kp1 (fun _ -> Bitvec.create 0 false) in
        let partials = Array.make (Array.length groups) None in
        (* Leaf groups sum their members' states independently; only the
           root combine (which adds the noise and opens the result) is a
           sequential step. *)
        Phase.run_tasks exec acc Aggregation
          ~task_label:(fun gi -> Printf.sprintf "agg:leaf:%d" gi)
          ~count:(Array.length groups)
          ~task:(fun obs gi ->
            let traffic = Traffic.create n in
            let group = groups.(gi) in
            let leaf_members = blocks.(List.hd group).Block.members in
            let prg = Block.derive_prg ~seed (Printf.sprintf "agg:reshare:leaf:%d" gi) in
            let reshared =
              Block.reshare ~obs ~prg ~kp1 ~ebytes ~traffic
                ~src_blocks:(List.map (fun v -> blocks.(v).Block.members) group)
                ~dst_members:leaf_members
                (List.map (fun v -> blocks.(v).Block.state) group)
            in
            let circuit =
              Vertex_program.partial_aggregate_circuit p ~count:(List.length group)
            in
            let session =
              Gmw.create_session ~mode:cfg.ot_mode cfg.grp ~parties:kp1
                ~seed:(Printf.sprintf "%s:agg:leaf:%d" seed gi)
            in
            let out = Gmw.eval session circuit ~input_shares:(concat_inputs reshared empty_extra) in
            merge_session_traffic traffic session leaf_members;
            { Phase.traffic; payload = (session, leaf_members, out) })
          ~merge:(fun gi (session, leaf_members, out) ->
            agg_sessions := session :: !agg_sessions;
            partials.(gi) <- Some (leaf_members, out))
          ();
        Phase.run_sequential acc Aggregation (fun () ->
            let parts =
              Array.to_list
                (Array.map (function Some v -> v | None -> assert false) partials)
            in
            combine_at_root ~src_blocks:(List.map fst parts) ~values:(List.map snd parts)
              ~circuit:
                (Vertex_program.combine_circuit p ~count:(List.length parts) ~noised:true))
  in
  let mpc_sessions =
    Array.to_list (Array.map (fun b -> b.Block.session) blocks) @ !agg_sessions
  in
  (* Fold run-level totals into the metrics registry: GMW session counters,
     injected-fault tallies, edge-privacy budget spend and the final
     traffic shape. Order is fixed, so exports are reproducible. *)
  List.iter (fun s -> Gmw.observe s obs) mpc_sessions;
  (* Wire-level firings are excluded from the tick-domain registry: a run
     that recovered from transport faults must export byte-identically to
     the same run without a transport (Fault.is_wire's contract). They
     remain visible in [faults_injected] and the transport metrics. *)
  List.iter
    (fun (k, c) ->
      if c > 0 && not (Fault.is_wire k) then
        Obs.incr obs ~by:c ("faults.injected." ^ Fault.kind_name k))
    (Fault.Injector.injected injector);
  if !retry_epsilon > 0.0 then Obs.add obs "privacy.retry_epsilon" !retry_epsilon;
  Obs.set obs "privacy.epsilon_query" p.Vertex_program.epsilon;
  Obs.incr obs ~by:p.Vertex_program.iterations "run.iterations";
  Obs.incr obs ~by:n "run.nodes";
  Traffic.observe global obs;
  Obs.leave obs;
  let transport_metrics =
    match Executor.distributed_ctx exec with
    | Some ctx ->
        Distributed.clear_fault_source ctx;
        Some (Distributed.metrics ctx)
    | None -> None
  in
  {
    output = Bitvec.to_int_signed output_bits;
    iterations = p.Vertex_program.iterations;
    traffic = global;
    phase_bytes = Phase.Accounting.phase_bytes acc;
    phase_seconds = Phase.Accounting.phase_seconds acc;
    transfer_failures = !failures;
    recovered_failures = !recovered;
    unrecovered_failures = !unrecovered;
    transfer_retries = !retries;
    crash_recoveries = !crash_recoveries;
    faults_injected = Fault.Injector.injected injector;
    retry_epsilon = !retry_epsilon;
    recovery_seconds = Phase.Accounting.recovery_seconds acc;
    mpc_rounds = List.fold_left (fun a s -> a + Gmw.rounds s) 0 mpc_sessions;
    mpc_and_gates = List.fold_left (fun a s -> a + Gmw.and_gates_evaluated s) 0 mpc_sessions;
    mpc_ots = List.fold_left (fun a s -> a + Gmw.ots_performed s) 0 mpc_sessions;
    update_stats = Circuit.stats update_c;
    obs;
    transport_metrics;
    offline_metrics;
  }

(* ------------------------------------------------------------------ *)
(* Plaintext reference executor                                        *)
(* ------------------------------------------------------------------ *)

let run_plaintext p ~degree_bound ~graph ~initial_states =
  let n = Graph.n graph in
  let d = degree_bound in
  let sb = p.Vertex_program.state_bits and l = p.Vertex_program.message_bits in
  if Graph.max_degree graph > d then
    invalid_arg "Engine.run_plaintext: vertex degree exceeds bound";
  let update_c = Vertex_program.update_circuit p ~degree:d in
  let states = Array.map Bitvec.to_bool_array initial_states in
  let msg_in = Array.init n (fun _ -> Array.make_matrix d l false) in
  let out_msgs = Array.init n (fun _ -> Array.make_matrix d l false) in
  let compute () =
    for i = 0 to n - 1 do
      let inputs = Array.concat (states.(i) :: Array.to_list msg_in.(i)) in
      let out = Circuit.eval update_c inputs in
      states.(i) <- Array.sub out 0 sb;
      for s = 0 to d - 1 do
        out_msgs.(i).(s) <- Array.sub out (sb + (s * l)) l
      done
    done
  in
  let communicate () =
    for i = 0 to n - 1 do
      for s = 0 to d - 1 do
        msg_in.(i).(s) <- Array.make l false
      done
    done;
    List.iter
      (fun (i, j) ->
        msg_in.(j).(Graph.in_slot graph ~src:i ~dst:j) <-
          Array.copy out_msgs.(i).(Graph.out_slot graph ~src:i ~dst:j))
      (Graph.edges graph)
  in
  for _it = 1 to p.Vertex_program.iterations do
    compute ();
    communicate ()
  done;
  compute ();
  let agg = Vertex_program.aggregate_circuit p ~count:n in
  let noise_zeros = Array.make (Noise_circuit.default_uniform_bits + 1) false in
  let inputs = Array.concat (Array.to_list states @ [ noise_zeros ]) in
  let out = Circuit.eval agg inputs in
  Bitvec.to_int_signed (Bitvec.of_bool_array out)

let pp_report ppf r =
  let mb b = float_of_int b /. 1048576.0 in
  Format.fprintf ppf "@[<v>output: %d@,transfer failures: %d (%d recovered, %d unrecovered, %d retries)@,"
    r.output r.transfer_failures r.recovered_failures r.unrecovered_failures
    r.transfer_retries;
  let injected_total = List.fold_left (fun a (_, c) -> a + c) 0 r.faults_injected in
  if injected_total > 0 || r.crash_recoveries > 0 then begin
    Format.fprintf ppf "faults injected:";
    List.iter
      (fun (k, c) -> if c > 0 then Format.fprintf ppf " %s=%d" (Fault.kind_name k) c)
      r.faults_injected;
    Format.fprintf ppf " (crash recoveries: %d)@," r.crash_recoveries
  end;
  if r.retry_epsilon > 0.0 then
    Format.fprintf ppf "extra edge-privacy eps from retries: %.4g@," r.retry_epsilon;
  Format.fprintf ppf "MPC: %d rounds, %d AND gates, %d OTs@,update circuit: %a@,"
    r.mpc_rounds r.mpc_and_gates r.mpc_ots Circuit.pp_stats r.update_stats;
  List.iter
    (fun (ph, b) ->
      let s = List.assoc ph r.phase_seconds in
      let rs = List.assoc ph r.recovery_seconds in
      if rs > 0.0 then
        Format.fprintf ppf "%-14s %8.3f s %10.3f MB (+%.3f s recovery)@," (phase_name ph) s
          (mb b) rs
      else Format.fprintf ppf "%-14s %8.3f s %10.3f MB@," (phase_name ph) s (mb b))
    r.phase_bytes;
  (match r.transport_metrics with
  | Some m ->
      let c = Obs.Metrics.counter m in
      Format.fprintf ppf
        "transport: %d frame(s), %d respawn(s), %d suspicion(s), %d fenced, %d retransmit(s)@,"
        (c "transport.frames_sent") (c "pool.respawns") (c "pool.suspicions")
        (c "transport.fenced_frames") (c "transport.retransmits")
  | None -> ());
  (match r.offline_metrics with
  | Some m ->
      let c = Obs.Metrics.counter m in
      Format.fprintf ppf
        "offline: %d session(s) preprocessed, %d eval(s) (%d generated, %d from disk, %d cached) in %.3f s@,"
        (c "preprocess.sessions") (c "preprocess.evals") (c "preprocess.cache.generations")
        (c "preprocess.cache.disk_loads")
        (c "preprocess.cache.hits")
        (Obs.Metrics.sum m "preprocess.wall_s")
  | None -> ());
  Format.fprintf ppf "total traffic: %.3f MB (mean %.3f MB/node)@]"
    (mb (Traffic.total r.traffic))
    (Traffic.mean_per_node r.traffic /. 1048576.0)
