module Bitvec = Dstress_util.Bitvec
module Prng = Dstress_util.Prng
module Prg = Dstress_crypto.Prg
module Group = Dstress_crypto.Group
module Exp_elgamal = Dstress_crypto.Exp_elgamal
module Ot_ext = Dstress_crypto.Ot_ext
module Circuit = Dstress_circuit.Circuit
module Traffic = Dstress_mpc.Traffic
module Sharing = Dstress_mpc.Sharing
module Gmw = Dstress_mpc.Gmw
module Setup = Dstress_transfer.Setup
module Protocol = Dstress_transfer.Protocol
module Noise_circuit = Dstress_dp.Noise_circuit
module Fault = Dstress_faults.Fault

type aggregation = Single_block | Two_level of int

type config = {
  grp : Group.t;
  k : int;
  degree_bound : int;
  ot_mode : Ot_ext.mode;
  transfer_alpha : float;
  table_radius : int;
  aggregation : aggregation;
  seed : string;
  fault_plan : Fault.plan;
  max_retries : int;
  backoff : float;
}

(* How much wider the escalation lookup table is than the regular one:
   the last recovery attempt covers [-8r, k+1+8r] instead of [-r, k+1+r],
   which drops the residual miss probability by ~alpha^(7r). *)
let escalation_widening = 8

let default_config ?(seed = "dstress") grp ~k ~degree_bound =
  {
    grp;
    k;
    degree_bound;
    ot_mode = Ot_ext.Simulation;
    transfer_alpha = 0.5;
    table_radius = 120;
    aggregation = Single_block;
    seed;
    fault_plan = Fault.empty;
    max_retries = 2;
    backoff = 0.05;
  }

let validate_config cfg =
  if cfg.k < 1 then invalid_arg "Engine.run: k must be >= 1 (blocks need k+1 >= 2 members)";
  if cfg.degree_bound < 1 then invalid_arg "Engine.run: degree_bound must be >= 1";
  if not (cfg.transfer_alpha > 0.0 && cfg.transfer_alpha < 1.0) then
    invalid_arg "Engine.run: transfer_alpha must lie in (0, 1)";
  if cfg.table_radius <= 0 then invalid_arg "Engine.run: table_radius must be > 0";
  (match cfg.aggregation with
  | Two_level fanout when fanout < 1 ->
      invalid_arg "Engine.run: Two_level aggregation fan-out must be >= 1"
  | Two_level _ | Single_block -> ());
  if cfg.max_retries < 0 then invalid_arg "Engine.run: max_retries must be >= 0";
  if cfg.backoff < 0.0 then invalid_arg "Engine.run: backoff must be >= 0"

type phase = Setup | Initialization | Computation | Communication | Aggregation

let phase_name = function
  | Setup -> "setup"
  | Initialization -> "initialization"
  | Computation -> "computation"
  | Communication -> "communication"
  | Aggregation -> "aggregation"

let all_phases = [ Setup; Initialization; Computation; Communication; Aggregation ]

type report = {
  output : int;
  iterations : int;
  traffic : Traffic.t;
  phase_bytes : (phase * int) list;
  phase_seconds : (phase * float) list;
  transfer_failures : int;
  recovered_failures : int;
  unrecovered_failures : int;
  transfer_retries : int;
  crash_recoveries : int;
  faults_injected : (Fault.kind * int) list;
  retry_epsilon : float;
  recovery_seconds : (phase * float) list;
  mpc_rounds : int;
  mpc_and_gates : int;
  mpc_ots : int;
  update_stats : Circuit.stats;
}

(* Accumulates wall-clock seconds, wire bytes, and simulated recovery
   delay (backoff, retransmissions) per phase. *)
type accounting = {
  global : Traffic.t;
  seconds : (phase, float ref) Hashtbl.t;
  bytes : (phase, int ref) Hashtbl.t;
  recovery : (phase, float ref) Hashtbl.t;
}

let make_accounting n =
  let seconds = Hashtbl.create 8
  and bytes = Hashtbl.create 8
  and recovery = Hashtbl.create 8 in
  List.iter
    (fun p ->
      Hashtbl.replace seconds p (ref 0.0);
      Hashtbl.replace bytes p (ref 0);
      Hashtbl.replace recovery p (ref 0.0))
    all_phases;
  { global = Traffic.create n; seconds; bytes; recovery }

let in_phase acc phase f =
  let t0 = Unix.gettimeofday () in
  let b0 = Traffic.total acc.global in
  let result = f () in
  let sec = Hashtbl.find acc.seconds phase and byt = Hashtbl.find acc.bytes phase in
  sec := !sec +. (Unix.gettimeofday () -. t0);
  byt := !byt + (Traffic.total acc.global - b0);
  result

let add_recovery_seconds acc phase s =
  let r = Hashtbl.find acc.recovery phase in
  r := !r +. s

(* Total simulated wait for [retries] exponential-backoff retransmissions
   starting at [backoff] seconds: backoff * (2^retries - 1). *)
let backoff_seconds ~backoff ~retries =
  if retries <= 0 then 0.0 else backoff *. ((2.0 ** float_of_int retries) -. 1.0)

(* Fold a block-local GMW traffic matrix into the global one. *)
let merge_block_traffic acc session members =
  Traffic.iter_nonzero (Gmw.traffic session) (fun ~src ~dst v ->
      Traffic.add acc.global ~src:members.(src) ~dst:members.(dst) v);
  Gmw.reset_traffic session

(* Re-share values held as XOR shares in source blocks into a destination
   block: each source member subshares its share and sends one piece to
   each destination member, who XORs everything received (§3.6). Returns
   the destination members' shares, one Bitvec per member per value. *)
let reshare acc prg ~kp1 ~ebytes ~src_blocks ~dst_members values =
  let payload_bytes bits = ((bits + 7) / 8) + ebytes in
  List.map2
    (fun src_block (shares : Bitvec.t array) ->
      let bits = Bitvec.length shares.(0) in
      let pieces = Array.map (fun s -> Sharing.subshare prg ~parties:kp1 s) shares in
      Array.iteri
        (fun x _ ->
          Array.iter
            (fun y_node ->
              Traffic.add acc.global ~src:src_block.(x) ~dst:y_node (payload_bytes bits))
            dst_members)
        pieces;
      Array.init kp1 (fun y ->
          Bitvec.xor_all (Array.to_list (Array.map (fun p -> p.(y)) pieces))))
    src_blocks values

(* Input shares for the noise section of a noised circuit: every member
   contributes uniform bits; the XOR (the cleartext nobody knows) is
   uniform as long as one member is honest. *)
let noise_input_shares prg ~kp1 =
  let ubits = Noise_circuit.default_uniform_bits in
  Array.init kp1 (fun _ -> Prg.bits prg (ubits + 1))

let run cfg p ~graph ~initial_states =
  validate_config cfg;
  let n = Graph.n graph in
  let kp1 = cfg.k + 1 in
  let d = cfg.degree_bound in
  let sb = p.Vertex_program.state_bits and l = p.Vertex_program.message_bits in
  if Array.length initial_states <> n then
    invalid_arg "Engine.run: one initial state per vertex required";
  Array.iter
    (fun s -> if Bitvec.length s <> sb then invalid_arg "Engine.run: bad state width")
    initial_states;
  if Graph.max_degree graph > d then invalid_arg "Engine.run: vertex degree exceeds bound";
  let prg = Prg.of_string ("engine:" ^ cfg.seed) in
  let noise_prng = Prng.create (Int64.of_int (Hashtbl.hash ("noise:" ^ cfg.seed))) in
  let acc = make_accounting n in
  let ebytes = Group.element_bytes cfg.grp in
  let injector = Fault.Injector.create cfg.fault_plan in
  (* --- Setup --------------------------------------------------- *)
  let setup =
    in_phase acc Setup (fun () ->
        let s = Setup.run prg cfg.grp ~n ~k:cfg.k ~degree_bound:d ~bits:l in
        (* The one-time setup exchange is charged to the TP<->node links;
           spread uniformly for per-node reporting. *)
        let per_node = Setup.setup_traffic_bytes s / n in
        for i = 0 to n - 1 do
          Traffic.add acc.global ~src:i ~dst:i per_node
        done;
        s)
  in
  let table =
    Exp_elgamal.Table.make cfg.grp ~lo:(-cfg.table_radius) ~hi:(kp1 + cfg.table_radius)
  in
  let escalation_table =
    lazy
      (let radius = escalation_widening * cfg.table_radius in
       Exp_elgamal.Table.make cfg.grp ~lo:(-radius) ~hi:(kp1 + radius))
  in
  let recovery =
    { Protocol.max_retries = cfg.max_retries; escalation_table = Some escalation_table }
  in
  let params = { Protocol.alpha = cfg.transfer_alpha; table } in
  let update_c = Vertex_program.update_circuit p ~degree:d in
  let sessions =
    Array.init n (fun i ->
        Gmw.create_session ~mode:cfg.ot_mode cfg.grp ~parties:kp1
          ~seed:(Printf.sprintf "%s:block:%d" cfg.seed i))
  in
  let zero_msg_shares () = Array.init kp1 (fun _ -> Bitvec.create l false) in
  (* --- Initialization ------------------------------------------ *)
  let state_shares =
    in_phase acc Initialization (fun () ->
        Array.init n (fun i ->
            let shares = Sharing.share prg ~parties:kp1 initial_states.(i) in
            (* Node i distributes state and D no-op message shares to the
               other members of its block. *)
            let block = Setup.block_of setup i in
            let bytes = ((sb + (d * l) + 7) / 8) + ebytes in
            Array.iter
              (fun member -> if member <> i then Traffic.add acc.global ~src:i ~dst:member bytes)
              block;
            shares))
  in
  let msg_in = Array.init n (fun _ -> Array.init d (fun _ -> zero_msg_shares ())) in
  let out_msgs = Array.init n (fun _ -> Array.init d (fun _ -> zero_msg_shares ())) in
  let failures = ref 0 in
  let recovered = ref 0 in
  let unrecovered = ref 0 in
  let retries = ref 0 in
  let crash_recoveries = ref 0 in
  let retry_epsilon = ref 0.0 in
  (* --- Crash recovery ------------------------------------------- *)
  (* A crashed block member is fail-stop: the engine detects it by timeout
     and a standby replacement takes over its slot. The surviving members
     re-share every value the block holds for vertex i (state + inbox), so
     the replacement starts from fresh shares and the XOR invariant is
     preserved; the handoff is charged as re-sharing traffic plus one
     backoff period. *)
  let recover_crashes ~round i members =
    Array.iter
      (fun m ->
        if Fault.Injector.crash_starting injector ~round ~node:m then begin
          let values = state_shares.(i) :: Array.to_list msg_in.(i) in
          let src_blocks = List.map (fun _ -> members) values in
          let reshared =
            reshare acc prg ~kp1 ~ebytes ~src_blocks ~dst_members:members values
          in
          (match reshared with
          | st :: msgs ->
              state_shares.(i) <- st;
              List.iteri (fun s v -> msg_in.(i).(s) <- v) msgs
          | [] -> assert false);
          incr crash_recoveries;
          add_recovery_seconds acc Computation cfg.backoff
        end)
      members
  in
  (* --- Computation step ----------------------------------------- *)
  let compute ~round () =
    in_phase acc Computation (fun () ->
        for i = 0 to n - 1 do
          let members = Setup.block_of setup i in
          recover_crashes ~round i members;
          let input_shares =
            Array.init kp1 (fun m ->
                Bitvec.concat
                  (state_shares.(i).(m)
                  :: List.init d (fun s -> msg_in.(i).(s).(m))))
          in
          let out = Gmw.eval sessions.(i) update_c ~input_shares in
          Array.iteri
            (fun m vec ->
              state_shares.(i).(m) <- Bitvec.sub vec ~pos:0 ~len:sb;
              for s = 0 to d - 1 do
                out_msgs.(i).(s).(m) <- Bitvec.sub vec ~pos:(sb + (s * l)) ~len:l
              done)
            out;
          merge_block_traffic acc sessions.(i) members
        done)
  in
  (* --- Communication step ---------------------------------------- *)
  let communicate ~round () =
    in_phase acc Communication (fun () ->
        (* Reset all inboxes to no-op shares; real messages overwrite. *)
        for i = 0 to n - 1 do
          for s = 0 to d - 1 do
            msg_in.(i).(s) <- zero_msg_shares ()
          done
        done;
        List.iter
          (fun (i, j) ->
            let slot_out = Graph.out_slot graph ~src:i ~dst:j in
            let shares = Array.copy out_msgs.(i).(slot_out) in
            let nslot = Graph.neighbor_slot graph ~owner:j ~other:i in
            let faults = Fault.Injector.edge_faults injector ~round ~src:i ~dst:j in
            List.iter
              (function
                | Fault.Delay_transfer { seconds; _ } ->
                    add_recovery_seconds acc Communication seconds
                | _ -> ())
              faults;
            let has k = List.exists (fun f -> Fault.kind_of f = k) faults in
            let inject =
              if has Fault.Drop then Some Protocol.Drop_attempt
              else if has Fault.Corrupt then Some Protocol.Corrupt_attempt
              else if has Fault.Decrypt_miss then
                (* Deterministic position derived from the edge and round,
                   so replays force the same miss. *)
                Some
                  (Protocol.Force_miss
                     { member = (i + j + round) mod kp1; bit = ((7 * i) + round) mod l })
              else None
            in
            let outcome =
              Protocol.transfer ~recovery ?inject params ~prg ~noise:noise_prng
                ~traffic:acc.global ~variant:Protocol.Final ~setup ~sender:i ~receiver:j
                ~neighbor_slot:nslot ~shares
            in
            failures := !failures + outcome.Protocol.failures;
            recovered := !recovered + outcome.Protocol.recovered;
            unrecovered := !unrecovered + outcome.Protocol.unrecovered;
            retries := !retries + outcome.Protocol.retries;
            retry_epsilon := !retry_epsilon +. outcome.Protocol.extra_epsilon;
            add_recovery_seconds acc Communication
              (backoff_seconds ~backoff:cfg.backoff ~retries:outcome.Protocol.retries);
            msg_in.(j).(Graph.in_slot graph ~src:i ~dst:j) <- outcome.Protocol.shares)
          (Graph.edges graph))
  in
  for it = 1 to p.Vertex_program.iterations do
    compute ~round:it ();
    communicate ~round:it ()
  done;
  (* Final computation step (§3.6): process the last round of messages. *)
  compute ~round:(p.Vertex_program.iterations + 1) ();
  (* --- Aggregation + noising ------------------------------------ *)
  let agg_sessions = ref [] in
  let eval_in_block ~label members circuit input_shares =
    let session =
      Gmw.create_session ~mode:cfg.ot_mode cfg.grp ~parties:kp1
        ~seed:(Printf.sprintf "%s:agg:%s" cfg.seed label)
    in
    agg_sessions := session :: !agg_sessions;
    let out = Gmw.eval session circuit ~input_shares in
    merge_block_traffic acc session members;
    (session, out)
  in
  let output_bits =
    in_phase acc Aggregation (fun () ->
        let concat_inputs per_value_shares extra =
          (* per_value_shares : Bitvec array list (one array of kp1 shares
             per value); build per-member concatenation, appending the
             per-member extra bits. *)
          Array.init kp1 (fun m ->
              Bitvec.concat
                (List.map (fun shares -> (shares : Bitvec.t array).(m)) per_value_shares
                @ [ extra.(m) ]))
        in
        match cfg.aggregation with
        | Single_block ->
            let dst_members = setup.Setup.agg_block in
            let src_blocks = List.init n (fun i -> Setup.block_of setup i) in
            let values = List.init n (fun i -> state_shares.(i)) in
            let reshared = reshare acc prg ~kp1 ~ebytes ~src_blocks ~dst_members values in
            let noise = noise_input_shares prg ~kp1 in
            let inputs = concat_inputs reshared noise in
            let circuit = Vertex_program.aggregate_circuit p ~count:n in
            let session, out = eval_in_block ~label:"root" dst_members circuit inputs in
            let revealed = Gmw.reveal session out in
            merge_block_traffic acc session dst_members;
            revealed
        | Two_level fanout ->
            let groups =
              let rec chunks start =
                if start >= n then []
                else begin
                  let len = min fanout (n - start) in
                  List.init len (fun o -> start + o) :: chunks (start + len)
                end
              in
              chunks 0
            in
            let empty_extra = Array.init kp1 (fun _ -> Bitvec.create 0 false) in
            let partials =
              List.mapi
                (fun gi group ->
                  let leaf_members = Setup.block_of setup (List.hd group) in
                  let src_blocks = List.map (Setup.block_of setup) group in
                  let values = List.map (fun i -> state_shares.(i)) group in
                  let reshared =
                    reshare acc prg ~kp1 ~ebytes ~src_blocks ~dst_members:leaf_members values
                  in
                  let inputs = concat_inputs reshared empty_extra in
                  let circuit =
                    Vertex_program.partial_aggregate_circuit p ~count:(List.length group)
                  in
                  let _, out =
                    eval_in_block ~label:(Printf.sprintf "leaf:%d" gi) leaf_members circuit
                      inputs
                  in
                  (leaf_members, out))
                groups
            in
            let dst_members = setup.Setup.agg_block in
            let src_blocks = List.map fst partials in
            let values = List.map snd partials in
            let reshared = reshare acc prg ~kp1 ~ebytes ~src_blocks ~dst_members values in
            let noise = noise_input_shares prg ~kp1 in
            let inputs = concat_inputs reshared noise in
            let circuit =
              Vertex_program.combine_circuit p ~count:(List.length partials) ~noised:true
            in
            let session, out = eval_in_block ~label:"root" dst_members circuit inputs in
            let revealed = Gmw.reveal session out in
            merge_block_traffic acc session dst_members;
            revealed)
  in
  let mpc_sessions = Array.to_list sessions @ !agg_sessions in
  {
    output = Bitvec.to_int_signed output_bits;
    iterations = p.Vertex_program.iterations;
    traffic = acc.global;
    phase_bytes = List.map (fun ph -> (ph, !(Hashtbl.find acc.bytes ph))) all_phases;
    phase_seconds = List.map (fun ph -> (ph, !(Hashtbl.find acc.seconds ph))) all_phases;
    transfer_failures = !failures;
    recovered_failures = !recovered;
    unrecovered_failures = !unrecovered;
    transfer_retries = !retries;
    crash_recoveries = !crash_recoveries;
    faults_injected = Fault.Injector.injected injector;
    retry_epsilon = !retry_epsilon;
    recovery_seconds = List.map (fun ph -> (ph, !(Hashtbl.find acc.recovery ph))) all_phases;
    mpc_rounds = List.fold_left (fun a s -> a + Gmw.rounds s) 0 mpc_sessions;
    mpc_and_gates = List.fold_left (fun a s -> a + Gmw.and_gates_evaluated s) 0 mpc_sessions;
    mpc_ots = List.fold_left (fun a s -> a + Gmw.ots_performed s) 0 mpc_sessions;
    update_stats = Circuit.stats update_c;
  }

(* ------------------------------------------------------------------ *)
(* Plaintext reference executor                                        *)
(* ------------------------------------------------------------------ *)

let run_plaintext p ~degree_bound ~graph ~initial_states =
  let n = Graph.n graph in
  let d = degree_bound in
  let sb = p.Vertex_program.state_bits and l = p.Vertex_program.message_bits in
  if Graph.max_degree graph > d then
    invalid_arg "Engine.run_plaintext: vertex degree exceeds bound";
  let update_c = Vertex_program.update_circuit p ~degree:d in
  let states = Array.map Bitvec.to_bool_array initial_states in
  let msg_in = Array.init n (fun _ -> Array.make_matrix d l false) in
  let out_msgs = Array.init n (fun _ -> Array.make_matrix d l false) in
  let compute () =
    for i = 0 to n - 1 do
      let inputs = Array.concat (states.(i) :: Array.to_list msg_in.(i)) in
      let out = Circuit.eval update_c inputs in
      states.(i) <- Array.sub out 0 sb;
      for s = 0 to d - 1 do
        out_msgs.(i).(s) <- Array.sub out (sb + (s * l)) l
      done
    done
  in
  let communicate () =
    for i = 0 to n - 1 do
      for s = 0 to d - 1 do
        msg_in.(i).(s) <- Array.make l false
      done
    done;
    List.iter
      (fun (i, j) ->
        msg_in.(j).(Graph.in_slot graph ~src:i ~dst:j) <-
          Array.copy out_msgs.(i).(Graph.out_slot graph ~src:i ~dst:j))
      (Graph.edges graph)
  in
  for _it = 1 to p.Vertex_program.iterations do
    compute ();
    communicate ()
  done;
  compute ();
  let agg = Vertex_program.aggregate_circuit p ~count:n in
  let noise_zeros = Array.make (Noise_circuit.default_uniform_bits + 1) false in
  let inputs = Array.concat (Array.to_list states @ [ noise_zeros ]) in
  let out = Circuit.eval agg inputs in
  Bitvec.to_int_signed (Bitvec.of_bool_array out)

let pp_report ppf r =
  let mb b = float_of_int b /. 1048576.0 in
  Format.fprintf ppf "@[<v>output: %d@,transfer failures: %d (%d recovered, %d unrecovered, %d retries)@,"
    r.output r.transfer_failures r.recovered_failures r.unrecovered_failures
    r.transfer_retries;
  let injected_total = List.fold_left (fun a (_, c) -> a + c) 0 r.faults_injected in
  if injected_total > 0 || r.crash_recoveries > 0 then begin
    Format.fprintf ppf "faults injected:";
    List.iter
      (fun (k, c) -> if c > 0 then Format.fprintf ppf " %s=%d" (Fault.kind_name k) c)
      r.faults_injected;
    Format.fprintf ppf " (crash recoveries: %d)@," r.crash_recoveries
  end;
  if r.retry_epsilon > 0.0 then
    Format.fprintf ppf "extra edge-privacy eps from retries: %.4g@," r.retry_epsilon;
  Format.fprintf ppf "MPC: %d rounds, %d AND gates, %d OTs@,update circuit: %a@,"
    r.mpc_rounds r.mpc_and_gates r.mpc_ots Circuit.pp_stats r.update_stats;
  List.iter
    (fun (ph, b) ->
      let s = List.assoc ph r.phase_seconds in
      let rs = List.assoc ph r.recovery_seconds in
      if rs > 0.0 then
        Format.fprintf ppf "%-14s %8.3f s %10.3f MB (+%.3f s recovery)@," (phase_name ph) s
          (mb b) rs
      else Format.fprintf ppf "%-14s %8.3f s %10.3f MB@," (phase_name ph) s (mb b))
    r.phase_bytes;
  Format.fprintf ppf "total traffic: %.3f MB (mean %.3f MB/node)@]"
    (mb (Traffic.total r.traffic))
    (mb (int_of_float (Traffic.mean_per_node r.traffic)))
