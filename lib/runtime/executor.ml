type t = Sequential | Parallel of { jobs : int }

let sequential = Sequential

let parallel ~jobs = if jobs <= 1 then Sequential else Parallel { jobs }

let of_env () =
  match Sys.getenv_opt "DSTRESS_JOBS" with
  | None -> Sequential
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j -> parallel ~jobs:j
      | None -> Sequential)

let jobs = function Sequential -> 1 | Parallel { jobs } -> jobs

let name = function
  | Sequential -> "sequential"
  | Parallel { jobs } -> Printf.sprintf "parallel:%d" jobs

let map_sequential count f =
  let results = Array.make count None in
  for i = 0 to count - 1 do
    results.(i) <- Some (f i)
  done;
  results

(* Work-stealing over an atomic index: each domain repeatedly claims the
   next unclaimed task. Result slots are disjoint per task and the final
   Domain.join provides the happens-before edge that makes every write
   visible to the caller. A raising task poisons only its own slot; the
   pool drains the rest, then the lowest-index exception is re-raised so
   Sequential and Parallel fail with the same error. *)
let map_parallel jobs count f =
  let results = Array.make count None in
  let errors = Array.make count None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < count then begin
        (try results.(i) <- Some (f i)
         with e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
        loop ()
      end
    in
    loop ()
  in
  let helpers = Array.init (min jobs count - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join helpers;
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    errors;
  results

let map t count f =
  if count < 0 then invalid_arg "Executor.map: negative count";
  let results =
    match t with
    | Sequential -> map_sequential count f
    | Parallel { jobs } when jobs <= 1 || count <= 1 -> map_sequential count f
    | Parallel { jobs } -> map_parallel jobs count f
  in
  Array.map (function Some v -> v | None -> assert false) results
