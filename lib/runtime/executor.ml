type t =
  | Sequential
  | Parallel of { jobs : int }
  | Distributed of { ctx : Distributed.ctx }

let sequential = Sequential

let parallel ~jobs = if jobs <= 1 then Sequential else Parallel { jobs }

let distributed ?opts ?(workers = Distributed.default_opts.Distributed.workers) () =
  let opts =
    match opts with
    | Some o -> { o with Distributed.workers }
    | None -> { Distributed.default_opts with Distributed.workers }
  in
  Distributed { ctx = Distributed.create ~opts () }

let distributed_ctx = function Distributed { ctx } -> Some ctx | _ -> None

let of_string s =
  let s = String.trim (String.lowercase_ascii s) in
  let split_count name =
    let prefix = name ^ ":" in
    let plen = String.length prefix in
    if String.length s > plen && String.sub s 0 plen = prefix then
      match int_of_string_opt (String.sub s plen (String.length s - plen)) with
      | Some n when n >= 1 -> Ok (Some n)
      | _ -> Error (Printf.sprintf "invalid worker count in %S" s)
    else Ok None
  in
  if s = "sequential" || s = "seq" then Ok Sequential
  else if s = "parallel" then Ok (parallel ~jobs:(Domain.recommended_domain_count ()))
  else if s = "distributed" then Ok (distributed ())
  else
    match split_count "parallel" with
    | Ok (Some n) -> Ok (parallel ~jobs:n)
    | Error e -> Error e
    | Ok None -> (
        match split_count "distributed" with
        | Ok (Some n) -> Ok (distributed ~workers:n ())
        | Error e -> Error e
        | Ok None ->
            Error
              (Printf.sprintf
                 "unknown executor %S (expected sequential, parallel[:N] or distributed[:N])"
                 s))

let of_env () =
  match Sys.getenv_opt "DSTRESS_EXECUTOR" with
  | Some s -> ( match of_string s with Ok t -> t | Error _ -> Sequential)
  | None -> (
      match Sys.getenv_opt "DSTRESS_JOBS" with
      | None -> Sequential
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some j -> parallel ~jobs:j
          | None -> Sequential))

let jobs = function
  | Sequential -> 1
  | Parallel { jobs } -> jobs
  | Distributed { ctx } -> (Distributed.opts ctx).Distributed.workers

let name = function
  | Sequential -> "sequential"
  | Parallel { jobs } -> Printf.sprintf "parallel:%d" jobs
  | Distributed { ctx } ->
      Printf.sprintf "distributed:%d" (Distributed.opts ctx).Distributed.workers

let map_sequential count f =
  let results = Array.make count None in
  for i = 0 to count - 1 do
    results.(i) <- Some (f i)
  done;
  results

(* Work-stealing over an atomic index: each domain repeatedly claims the
   next unclaimed task. Result slots are disjoint per task and the final
   Domain.join provides the happens-before edge that makes every write
   visible to the caller. A raising task poisons only its own slot; the
   pool drains the rest, then the lowest-index exception is re-raised so
   Sequential and Parallel fail with the same error. *)
let map_parallel jobs count f =
  let results = Array.make count None in
  let errors = Array.make count None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < count then begin
        (try results.(i) <- Some (f i)
         with e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
        loop ()
      end
    in
    loop ()
  in
  let helpers = Array.init (min jobs count - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join helpers;
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    errors;
  results

let map t count f =
  if count < 0 then invalid_arg "Executor.map: negative count";
  match t with
  | Distributed { ctx } -> Distributed.map ctx count f
  | _ ->
      let results =
        match t with
        | Sequential -> map_sequential count f
        | Parallel { jobs } when jobs <= 1 || count <= 1 -> map_sequential count f
        | Parallel { jobs } -> map_parallel jobs count f
        | Distributed _ -> assert false
      in
      Array.map (function Some v -> v | None -> assert false) results
