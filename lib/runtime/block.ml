module Bitvec = Dstress_util.Bitvec
module Prng = Dstress_util.Prng
module Prg = Dstress_crypto.Prg
module Traffic = Dstress_mpc.Traffic
module Sharing = Dstress_mpc.Sharing
module Gmw = Dstress_mpc.Gmw

type t = {
  vertex : int;
  members : int array;
  mutable session : Gmw.session;
  state_bits : int;
  message_bits : int;
  degree : int;
  mutable state : Bitvec.t array;
  inbox : Bitvec.t array array;
  outbox : Bitvec.t array array;
}

let zero_shares kp1 bits = Array.init kp1 (fun _ -> Bitvec.create bits false)

let session_seed ~seed ~vertex = Printf.sprintf "%s:block:%d" seed vertex

let create ~ot_mode ~grp ~seed ~kp1 ~degree ~state_bits ~message_bits ~vertex ~members =
  {
    vertex;
    members;
    session =
      Gmw.create_session ~mode:ot_mode grp ~parties:kp1 ~seed:(session_seed ~seed ~vertex);
    state_bits;
    message_bits;
    degree;
    state = zero_shares kp1 state_bits;
    inbox = Array.init degree (fun _ -> zero_shares kp1 message_bits);
    outbox = Array.init degree (fun _ -> zero_shares kp1 message_bits);
  }

let clear_inbox b =
  let kp1 = Array.length b.members in
  for s = 0 to b.degree - 1 do
    b.inbox.(s) <- zero_shares kp1 b.message_bits
  done

let gather_inputs b =
  Array.init (Array.length b.members) (fun m ->
      Bitvec.concat (b.state.(m) :: List.init b.degree (fun s -> b.inbox.(s).(m))))

let scatter_outputs b out =
  Array.iteri
    (fun m vec ->
      b.state.(m) <- Bitvec.sub vec ~pos:0 ~len:b.state_bits;
      for s = 0 to b.degree - 1 do
        b.outbox.(s).(m) <-
          Bitvec.sub vec ~pos:(b.state_bits + (s * b.message_bits)) ~len:b.message_bits
      done)
    out

let derive_prg ~seed purpose = Prg.of_string (seed ^ ":" ^ purpose)

let derive_prng ~seed purpose = Prng.create (Prg.seed64 (seed ^ ":" ^ purpose))

let reshare ?(obs = Dstress_obs.Obs.off) ~prg ~kp1 ~ebytes ~traffic ~src_blocks
    ~dst_members values =
  let payload_bytes bits = ((bits + 7) / 8) + ebytes in
  (* Traffic.total is O(parties^2); skip the delta when nothing collects. *)
  let live = Dstress_obs.Obs.enabled obs in
  let before = if live then Traffic.total traffic else 0 in
  let result =
    List.map2
      (fun src_block (shares : Bitvec.t array) ->
        let bits = Bitvec.length shares.(0) in
        let pieces = Array.map (fun s -> Sharing.subshare prg ~parties:kp1 s) shares in
        Array.iteri
          (fun x _ ->
            Array.iter
              (fun y_node ->
                Traffic.add traffic ~src:src_block.(x) ~dst:y_node (payload_bytes bits))
              dst_members)
          pieces;
        Array.init kp1 (fun y ->
            Bitvec.xor_all (Array.to_list (Array.map (fun p -> p.(y)) pieces))))
      src_blocks values
  in
  if live then begin
    Dstress_obs.Obs.incr obs ~by:(List.length values) "reshare.values";
    Dstress_obs.Obs.incr obs ~by:(Traffic.total traffic - before) "reshare.bytes"
  end;
  result
