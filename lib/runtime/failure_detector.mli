(** Heartbeat-based failure detection for the {!Distributed} pool.

    Each worker process writes a heartbeat frame every
    [expected_interval] seconds; the coordinator feeds arrival times to a
    per-peer detector and polls a {e suspicion level} — a simplified
    phi-accrual detector (Hayashibara et al.): the level is the time
    since the last heartbeat divided by a smoothed estimate of the
    arrival interval. A healthy peer hovers near 1; a stalled or dead
    peer's level grows without bound, and once it crosses [phi] the peer
    is {e suspected}. Suspicion is advisory — the {!Distributed}
    coordinator treats a suspected worker like a [Crash_node] fault
    (redispatch its task, respawn its slot) but keeps reading the old
    socket until the batch ends, so a falsely-suspected straggler's late
    reply is fenced by epoch rather than double-applied.

    The detector never reads the clock itself: every call takes [now],
    so tests drive it with a simulated clock and the suspicion timeline
    is fully deterministic. *)

type t

val create : ?phi:float -> ?min_interval:float -> expected_interval:float -> unit -> t
(** [expected_interval] is the nominal heartbeat period (seconds). The
    interval estimate starts there and is EWMA-smoothed (factor 0.8
    toward history) over observed arrivals, floored at [min_interval]
    (default [expected_interval /. 4.]) so a burst of rapid heartbeats
    cannot collapse the estimate and hair-trigger the detector. [phi]
    (default 8.0) is the suspicion threshold. Raises [Invalid_argument]
    if [expected_interval <= 0.] or [phi <= 1.]. *)

val observe : t -> now:float -> unit
(** Record a heartbeat (or any proof of life — task results count)
    arriving at [now]. Non-monotone [now] is clamped: an arrival earlier
    than the previous one is treated as simultaneous with it. *)

val suspicion : t -> now:float -> float
(** [elapsed-since-last-heard / smoothed-interval]. Before the first
    {!observe} the reference point is the creation of the detector by
    {!start}; if {!start} was never called, 0. *)

val start : t -> now:float -> unit
(** Set the grace-period reference point: a freshly spawned worker that
    never says hello is suspected [phi * expected_interval] seconds
    after [start], not never. Does not count as an arrival for the
    interval estimate. *)

val suspected : t -> now:float -> bool
(** [suspicion t ~now >= phi]. *)

val last_heard : t -> float option
(** Arrival time of the most recent {!observe}, if any. *)

val interval_estimate : t -> float
(** Current smoothed inter-arrival estimate (seconds). *)

val phi : t -> float
