module Fault = Dstress_faults.Fault
module Metrics = Dstress_obs.Obs.Metrics
module Sketch = Dstress_obs.Sketch
module Log = Dstress_obs.Log
module Json = Dstress_obs.Json

(* ------------------------------------------------------------------ *)
(* DSTRESS-REQ/1 codec                                                 *)
(* ------------------------------------------------------------------ *)

type workload = En | Egj

type request = {
  workload : workload;
  core : int;
  periphery : int;
  iterations : int;
  k : int;
  seed : int;
  slice_width : int;
  ot_mode : Dstress_crypto.Ot_ext.mode;
  preprocess : bool;
  executor : string;
}

type summary = {
  output : int;
  mpc_rounds : int;
  mpc_and_gates : int;
  mpc_ots : int;
  trace : string;
  metrics : string;
}

type response = Completed of summary | Rejected of string | Degraded of string

let req_magic = "DREQ"
let rsp_magic = "DRSP"
let req_version = 1
let max_executor_len = 1024
let req_fixed_bytes = 38 (* magic..slice_width + executor length prefix *)

let encode_request r =
  let elen = String.length r.executor in
  if elen > 0xFFFF then invalid_arg "Service.encode_request: executor spec too long";
  let b = Bytes.create (req_fixed_bytes + elen) in
  Bytes.blit_string req_magic 0 b 0 4;
  Bytes.set_uint8 b 4 req_version;
  Bytes.set_uint8 b 5 (match r.workload with En -> 0 | Egj -> 1);
  Bytes.set_uint8 b 6
    (match r.ot_mode with Dstress_crypto.Ot_ext.Simulation -> 0 | Dstress_crypto.Ot_ext.Crypto -> 1);
  Bytes.set_uint8 b 7 (if r.preprocess then 1 else 0);
  Bytes.set_int64_le b 8 (Int64.of_int r.seed);
  Bytes.set_int32_le b 16 (Int32.of_int r.core);
  Bytes.set_int32_le b 20 (Int32.of_int r.periphery);
  Bytes.set_int32_le b 24 (Int32.of_int r.iterations);
  Bytes.set_int32_le b 28 (Int32.of_int r.k);
  Bytes.set_int32_le b 32 (Int32.of_int r.slice_width);
  Bytes.set_uint16_le b 36 elen;
  Bytes.blit_string r.executor 0 b req_fixed_bytes elen;
  b

let decode_request b =
  let len = Bytes.length b in
  if len < req_fixed_bytes then Error (Printf.sprintf "truncated request: %d bytes" len)
  else if Bytes.sub_string b 0 4 <> req_magic then Error "bad request magic"
  else if Bytes.get_uint8 b 4 <> req_version then
    Error (Printf.sprintf "unsupported request version %d" (Bytes.get_uint8 b 4))
  else
    let workload_byte = Bytes.get_uint8 b 5 in
    let ot_byte = Bytes.get_uint8 b 6 in
    let flags = Bytes.get_uint8 b 7 in
    let elen = Bytes.get_uint16_le b 36 in
    if len < req_fixed_bytes + elen then
      Error
        (Printf.sprintf "truncated request body: %d bytes, executor spec wants %d" len
           (req_fixed_bytes + elen))
    else if len > req_fixed_bytes + elen then
      Error (Printf.sprintf "trailing bytes after request: %d" (len - req_fixed_bytes - elen))
    else
      match
        ( (match workload_byte with 0 -> Some En | 1 -> Some Egj | _ -> None),
          match ot_byte with
          | 0 -> Some Dstress_crypto.Ot_ext.Simulation
          | 1 -> Some Dstress_crypto.Ot_ext.Crypto
          | _ -> None )
      with
      | None, _ -> Error (Printf.sprintf "unknown workload %d" workload_byte)
      | _, None -> Error (Printf.sprintf "unknown OT mode %d" ot_byte)
      | Some workload, Some ot_mode ->
          Ok
            {
              workload;
              core = Int32.to_int (Bytes.get_int32_le b 16);
              periphery = Int32.to_int (Bytes.get_int32_le b 20);
              iterations = Int32.to_int (Bytes.get_int32_le b 24);
              k = Int32.to_int (Bytes.get_int32_le b 28);
              seed = Int64.to_int (Bytes.get_int64_le b 8);
              slice_width = Int32.to_int (Bytes.get_int32_le b 32);
              ot_mode;
              preprocess = flags land 1 <> 0;
              executor = Bytes.sub_string b req_fixed_bytes elen;
            }

(* status byte *)
let st_completed = 0
let st_rejected = 1
let st_degraded = 2

let put_lstring buf s =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int (String.length s));
  Buffer.add_bytes buf b;
  Buffer.add_string buf s

let encode_response = function
  | Completed s ->
      let buf = Buffer.create (64 + String.length s.trace + String.length s.metrics) in
      Buffer.add_string buf rsp_magic;
      Buffer.add_uint8 buf req_version;
      Buffer.add_uint8 buf st_completed;
      let b = Bytes.create 32 in
      Bytes.set_int64_le b 0 (Int64.of_int s.output);
      Bytes.set_int64_le b 8 (Int64.of_int s.mpc_rounds);
      Bytes.set_int64_le b 16 (Int64.of_int s.mpc_and_gates);
      Bytes.set_int64_le b 24 (Int64.of_int s.mpc_ots);
      Buffer.add_bytes buf b;
      put_lstring buf s.trace;
      put_lstring buf s.metrics;
      Buffer.to_bytes buf
  | (Rejected msg | Degraded msg) as r ->
      let buf = Buffer.create (10 + String.length msg) in
      Buffer.add_string buf rsp_magic;
      Buffer.add_uint8 buf req_version;
      Buffer.add_uint8 buf (match r with Rejected _ -> st_rejected | _ -> st_degraded);
      put_lstring buf msg;
      Buffer.to_bytes buf

let get_lstring b ~at ~len ~what =
  if at + 4 > len then Error (Printf.sprintf "truncated response: no %s length" what)
  else
    let n = Int32.to_int (Bytes.get_int32_le b at) in
    if n < 0 || at + 4 + n > len then
      Error (Printf.sprintf "truncated response: %s wants %d bytes" what n)
    else Ok (Bytes.sub_string b (at + 4) n, at + 4 + n)

let decode_response b =
  let len = Bytes.length b in
  if len < 6 then Error (Printf.sprintf "truncated response: %d bytes" len)
  else if Bytes.sub_string b 0 4 <> rsp_magic then Error "bad response magic"
  else if Bytes.get_uint8 b 4 <> req_version then
    Error (Printf.sprintf "unsupported response version %d" (Bytes.get_uint8 b 4))
  else
    let status = Bytes.get_uint8 b 5 in
    if status = st_completed then
      if len < 38 then Error "truncated response: short completed body"
      else
        match get_lstring b ~at:38 ~len ~what:"trace" with
        | Error e -> Error e
        | Ok (trace, at) -> (
            match get_lstring b ~at ~len ~what:"metrics" with
            | Error e -> Error e
            | Ok (metrics, at) ->
                if at <> len then Error "trailing bytes after response"
                else
                  Ok
                    (Completed
                       {
                         output = Int64.to_int (Bytes.get_int64_le b 6);
                         mpc_rounds = Int64.to_int (Bytes.get_int64_le b 14);
                         mpc_and_gates = Int64.to_int (Bytes.get_int64_le b 22);
                         mpc_ots = Int64.to_int (Bytes.get_int64_le b 30);
                         trace;
                         metrics;
                       }))
    else if status = st_rejected || status = st_degraded then
      match get_lstring b ~at:6 ~len ~what:"message" with
      | Error e -> Error e
      | Ok (msg, at) ->
          if at <> len then Error "trailing bytes after response"
          else Ok (if status = st_rejected then Rejected msg else Degraded msg)
    else Error (Printf.sprintf "unknown response status %d" status)

let validate_request r =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if r.core < 1 then err "core must be >= 1 (got %d)" r.core
  else if r.periphery < 1 then err "periphery must be >= 1 (got %d)" r.periphery
  else if r.core + r.periphery > 4096 then
    err "network too large: core + periphery = %d > 4096" (r.core + r.periphery)
  else if r.iterations < 1 || r.iterations > 1024 then
    err "iterations must be in [1, 1024] (got %d)" r.iterations
  else if r.k < 1 || r.k > 64 then err "k must be in [1, 64] (got %d)" r.k
  else if r.slice_width < 1 || r.slice_width > 64 then
    err "slice_width must be in [1, 64] (got %d)" r.slice_width
  else if String.length r.executor > max_executor_len then
    err "executor spec longer than %d bytes" max_executor_len
  else if r.executor = "" then Ok ()
  else
    match Executor.of_string r.executor with
    | Ok _ -> Ok ()
    | Error m -> err "executor spec: %s" m

(* Once a worker process has spawned domains for a parallel request it
   may never fork again (OCaml 5), so a later distributed spec quietly
   becomes sequential — legal because results and tick-domain exports
   are executor-invariant. Monotone, per process. *)
let domains_tainted = ref false

let request_executor r =
  let parsed =
    if r.executor = "" then Ok Executor.sequential else Executor.of_string r.executor
  in
  match parsed with
  | Error _ as e -> e
  | Ok (Executor.Parallel _ as e) ->
      domains_tainted := true;
      Ok e
  | Ok (Executor.Distributed _) when !domains_tainted -> Ok Executor.sequential
  | Ok e -> Ok e

(* ------------------------------------------------------------------ *)
(* Task / result frame payloads (coordinator <-> persistent worker)     *)
(* ------------------------------------------------------------------ *)

(* task: reqid, injected stall/mute seconds, disconnect flag, request *)
let task_header_bytes = 29

let task_payload ~reqid ~stall ~mute ~disconnect req_bytes =
  let rlen = Bytes.length req_bytes in
  let b = Bytes.create (task_header_bytes + rlen) in
  Bytes.set_int64_le b 0 (Int64.of_int reqid);
  Bytes.set_int64_le b 8 (Int64.bits_of_float stall);
  Bytes.set_int64_le b 16 (Int64.bits_of_float mute);
  Bytes.set_uint8 b 24 (if disconnect then 1 else 0);
  Bytes.set_int32_le b 25 (Int32.of_int rlen);
  Bytes.blit req_bytes 0 b task_header_bytes rlen;
  b

let parse_task p =
  if Bytes.length p < task_header_bytes then None
  else
    let rlen = Int32.to_int (Bytes.get_int32_le p 25) in
    if rlen < 0 || task_header_bytes + rlen > Bytes.length p then None
    else
      Some
        ( Int64.to_int (Bytes.get_int64_le p 0),
          Int64.float_of_bits (Bytes.get_int64_le p 8),
          Int64.float_of_bits (Bytes.get_int64_le p 16),
          Bytes.get_uint8 p 24 <> 0,
          Bytes.sub p task_header_bytes rlen )

(* result / error: reqid then the body (an encoded response / a message) *)
let reply_payload ~reqid body =
  let blen = Bytes.length body in
  let b = Bytes.create (8 + blen) in
  Bytes.set_int64_le b 0 (Int64.of_int reqid);
  Bytes.blit body 0 b 8 blen;
  b

let parse_reply p =
  if Bytes.length p < 8 then None
  else Some (Int64.to_int (Bytes.get_int64_le p 0), Bytes.sub p 8 (Bytes.length p - 8))

(* ------------------------------------------------------------------ *)
(* Worker side (forked child — exits only through Unix._exit)          *)
(* ------------------------------------------------------------------ *)

let worker_loop conn ~heartbeat_interval ?(log = Log.nop) handler =
  (* Writes are shared between the task loop and the heartbeat thread;
     [mu] serializes them. An injected stall or mute holds [mu] for its
     whole duration, so the worker genuinely stops writing — heartbeats
     included — which is what trips the coordinator's suspicion. *)
  let mu = Mutex.create () in
  let send ~kind ~epoch ?trace payload =
    Mutex.lock mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mu)
      (fun () -> ignore (Transport.send conn ~kind ~epoch ?trace payload))
  in
  (try send ~kind:Transport.Kind.hello ~epoch:0 Bytes.empty with _ -> Unix._exit 1);
  let (_ : Thread.t) =
    Thread.create
      (fun () ->
        try
          while true do
            Thread.delay heartbeat_interval;
            send ~kind:Transport.Kind.heartbeat ~epoch:0 Bytes.empty
          done
        with _ -> ())
      ()
  in
  (try
     while true do
       match Transport.recv conn ~timeout:1.0 with
       | None -> ()
       | Some fr when fr.Transport.kind = Transport.Kind.shutdown -> Unix._exit 0
       | Some fr when fr.Transport.kind = Transport.Kind.task -> (
           match parse_task fr.Transport.payload with
           | None ->
               send ~kind:Transport.Kind.error ~epoch:fr.Transport.epoch
                 (reply_payload ~reqid:(-1) (Bytes.of_string "malformed task frame"))
           | Some (reqid, stall, mute, disconnect, req_bytes) ->
               let trace = fr.Transport.trace in
               Log.debug log ~trace "worker task received"
                 [ ("reqid", Log.Int reqid) ];
               if mute > 0.0 then begin
                 (* Injected partition: swallow the task and go silent long
                    enough to be fenced; the coordinator re-dispatches. *)
                 Mutex.lock mu;
                 Thread.delay mute;
                 Mutex.unlock mu
               end
               else begin
                 if stall > 0.0 then begin
                   Mutex.lock mu;
                   Thread.delay stall;
                   Mutex.unlock mu
                 end;
                 if disconnect then begin
                   Transport.close conn;
                   Unix._exit 0
                 end;
                 match decode_request req_bytes with
                 | Error e ->
                     send ~kind:Transport.Kind.error ~epoch:fr.Transport.epoch ~trace
                       (reply_payload ~reqid (Bytes.of_string e))
                 | Ok req -> (
                     match handler req with
                     | s ->
                         Log.debug log ~trace "worker task completed"
                           [ ("reqid", Log.Int reqid) ];
                         send ~kind:Transport.Kind.result ~epoch:fr.Transport.epoch
                           ~trace
                           (reply_payload ~reqid (encode_response (Completed s)))
                     | exception e ->
                         (* A failed request must not take the worker down:
                            report and stay warm for the next one. *)
                         Log.warn log ~trace "worker task failed"
                           [
                             ("reqid", Log.Int reqid);
                             ("error", Log.Str (Printexc.to_string e));
                           ];
                         send ~kind:Transport.Kind.error ~epoch:fr.Transport.epoch
                           ~trace
                           (reply_payload ~reqid (Bytes.of_string (Printexc.to_string e))))
               end)
       | Some _ -> ()
     done
   with _ -> Unix._exit 1);
  Unix._exit 0

(* ------------------------------------------------------------------ *)
(* Persistent pool (coordinator side)                                  *)
(* ------------------------------------------------------------------ *)

type pool_opts = {
  workers : int;
  queue_depth : int;
  heartbeat_interval : float;
  phi : float;
  io_deadline : float;
  poll_interval : float;
  request_deadline : float;
  max_respawns_per_slot : int;
  max_attempts_per_request : int;
  slow_request_s : float;
}

let default_pool_opts =
  {
    workers = 2;
    queue_depth = 64;
    heartbeat_interval = 0.05;
    phi = 8.0;
    io_deadline = 10.0;
    poll_interval = 0.02;
    request_deadline = 120.0;
    max_respawns_per_slot = 2;
    max_attempts_per_request = 3;
    slow_request_s = 5.0;
  }

type entry = {
  id : int;
  req : request;
  reply : response -> unit;
  trace : int64;  (** trace ID stamped on every frame and log line *)
  submitted_at : float;
  mutable attempts : int;  (** dispatches so far *)
}

type slot = {
  sid : int;
  mutable pid : int;
  mutable conn : Transport.t;
  mutable epoch : int;
  mutable det : Failure_detector.t;
  mutable running : entry option;
  mutable dispatched_at : float;
  mutable alive : bool;
  mutable abandoned : bool;
  mutable respawns : int;
}

type pool = {
  po : pool_opts;
  handler : request -> summary;
  m : Metrics.t;
  log : Log.t;
  started_at : float;
  fork_fds : unit -> Unix.file_descr list;
  mutable next_trace : int64;
  mutable queue_high_water : int;
  mutable slots : slot array;
  queue : entry Queue.t;
  mutable next_id : int;
  mutable next_epoch : int;
  mutable dispatched : int;  (** dispatch counter — the fault plans' "batch" *)
  mutable fenced : (Transport.t * int) list;
  mutable pids : int list;  (** every child ever forked, for reaping *)
  mutable fault_source :
    (request_index:int -> worker:int -> Fault.fault list) option;
  mutable closed : bool;
}

let now () = Unix.gettimeofday ()
let close_quietly fdesc = try Unix.close fdesc with Unix.Unix_error _ -> ()

let has_partition = List.exists (function Fault.Partition_worker _ -> true | _ -> false)
let has_disconnect = List.exists (function Fault.Disconnect_worker _ -> true | _ -> false)

let find_stall =
  List.find_map (function Fault.Stall_worker { seconds; _ } -> Some seconds | _ -> None)

let pool_metrics p = p.m
let pool_log p = p.log
let set_pool_fault_source p src = p.fault_source <- Some src
let pool_fds p =
  Array.to_list p.slots
  |> List.filter_map (fun s -> if s.alive then Some (Transport.fd s.conn) else None)

let pool_idle p =
  Queue.is_empty p.queue && Array.for_all (fun s -> s.running = None) p.slots

(* Fork one persistent worker under a fresh epoch. [extra_close] lists
   every coordinator-side descriptor the child inherits but must not
   keep open: sibling worker sockets, fenced stragglers, and whatever
   the embedding server reports (listener + client connections) — a
   leaked fd would mask an EOF elsewhere. *)
let spawn p ~extra_close =
  let o = p.po in
  let epoch = p.next_epoch in
  p.next_epoch <- epoch + 1;
  flush stdout;
  flush stderr;
  let cfd, wfd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.fork () with
  | 0 ->
      close_quietly cfd;
      List.iter close_quietly extra_close;
      let conn =
        Transport.of_fd ~log:p.log ~read_deadline:o.io_deadline
          ~write_deadline:o.io_deadline wfd
      in
      worker_loop conn ~heartbeat_interval:o.heartbeat_interval ~log:p.log p.handler
  | pid ->
      Unix.close wfd;
      let conn =
        Transport.of_fd ~metrics:p.m ~log:p.log ~read_deadline:o.io_deadline
          ~write_deadline:o.io_deadline cfd
      in
      p.pids <- pid :: p.pids;
      Log.info p.log "worker spawned"
        [ ("pid", Log.Int pid); ("epoch", Log.Int epoch) ];
      (pid, conn, epoch)

let fresh_detector o =
  let det = Failure_detector.create ~phi:o.phi ~expected_interval:o.heartbeat_interval () in
  Failure_detector.start det ~now:(now ());
  det

let open_coordinator_fds p =
  pool_fds p @ List.map (fun (c, _) -> Transport.fd c) p.fenced

let create_pool ?(opts = default_pool_opts) ?(log = Log.nop)
    ?(fork_fds = fun () -> []) ~handler () =
  if opts.workers < 1 then invalid_arg "Service.create_pool: workers < 1";
  if opts.queue_depth < 1 then invalid_arg "Service.create_pool: queue_depth < 1";
  if not (opts.heartbeat_interval > 0.0) then
    invalid_arg "Service.create_pool: heartbeat_interval <= 0";
  if not (opts.phi > 1.0) then invalid_arg "Service.create_pool: phi <= 1";
  if
    not
      (opts.io_deadline > 0.0 && opts.poll_interval > 0.0 && opts.request_deadline > 0.0)
  then invalid_arg "Service.create_pool: non-positive deadline";
  if opts.max_respawns_per_slot < 0 || opts.max_attempts_per_request < 1 then
    invalid_arg "Service.create_pool: bad budget";
  (* Writes to a worker that died race its EOF; without this the EPIPE
     becomes a fatal SIGPIPE instead of a typed [Closed] error. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let p =
    {
      po = opts;
      handler;
      m = Metrics.create ();
      log;
      started_at = now ();
      fork_fds;
      next_trace = 1L;
      queue_high_water = 0;
      slots = [||];
      queue = Queue.create ();
      next_id = 0;
      next_epoch = 0;
      dispatched = 0;
      fenced = [];
      pids = [];
      fault_source = None;
      closed = false;
    }
  in
  let created = ref [] in
  p.slots <-
    Array.init opts.workers (fun sid ->
        let pid, conn, epoch = spawn p ~extra_close:(!created @ fork_fds ()) in
        created := Transport.fd conn :: !created;
        {
          sid;
          pid;
          conn;
          epoch;
          det = fresh_detector opts;
          running = None;
          dispatched_at = 0.0;
          alive = true;
          abandoned = false;
          respawns = 0;
        });
  p

let submit p req reply =
  if p.closed then invalid_arg "Service.submit: pool is shut down";
  if Array.for_all (fun s -> s.abandoned) p.slots then begin
    Log.error p.log "request refused: no live workers" [];
    `No_workers
  end
  else if Queue.length p.queue >= p.po.queue_depth then begin
    Metrics.incr p.m "service.requests_rejected";
    Log.warn p.log "request rejected: queue full"
      [ ("queue_depth", Log.Int (Queue.length p.queue)) ];
    `Queue_full
  end
  else begin
    let trace = p.next_trace in
    p.next_trace <- Int64.add trace 1L;
    let e =
      { id = p.next_id; req; reply; trace; submitted_at = now (); attempts = 0 }
    in
    p.next_id <- p.next_id + 1;
    Queue.add e p.queue;
    Metrics.incr p.m "service.requests_enqueued";
    let depth = Queue.length p.queue in
    if depth > p.queue_high_water then p.queue_high_water <- depth;
    Metrics.set p.m "service.queue_depth" (float_of_int depth);
    Metrics.set p.m "service.queue_high_water" (float_of_int p.queue_high_water);
    if Log.enabled p.log Log.Debug then
      Log.debug p.log ~trace "request enqueued"
        [ ("id", Log.Int e.id); ("queue_depth", Log.Int depth) ];
    `Queued
  end

let finish p e resp =
  let outcome =
    match resp with
    | Completed _ ->
        Metrics.incr p.m "service.requests_completed";
        "completed"
    | Degraded _ ->
        Metrics.incr p.m "service.requests_degraded";
        "degraded"
    | Rejected _ ->
        Metrics.incr p.m "service.requests_rejected";
        "rejected"
  in
  let e2e = now () -. e.submitted_at in
  Metrics.observe_sketch p.m "service.request_s" e2e;
  if e2e > p.po.slow_request_s then
    Log.warn p.log ~trace:e.trace "slow request"
      [
        ("id", Log.Int e.id);
        ("outcome", Log.Str outcome);
        ("seconds", Log.Float e2e);
        ("threshold_s", Log.Float p.po.slow_request_s);
        ("attempts", Log.Int e.attempts);
      ]
  else if Log.enabled p.log Log.Info then
    Log.info p.log ~trace:e.trace "request finished"
      [
        ("id", Log.Int e.id);
        ("outcome", Log.Str outcome);
        ("seconds", Log.Float e2e);
      ];
  e.reply resp

(* A redispatch burns one attempt; past the budget the request degrades
   with a typed outcome instead of cycling through respawns forever. *)
let redispatch p e reason =
  if e.attempts >= p.po.max_attempts_per_request then
    finish p e
      (Degraded
         (Printf.sprintf "request failed after %d attempt(s): %s" e.attempts reason))
  else begin
    Metrics.incr p.m "service.redispatches";
    Log.warn p.log ~trace:e.trace "request re-queued"
      [ ("id", Log.Int e.id); ("attempts", Log.Int e.attempts);
        ("reason", Log.Str reason) ];
    Queue.add e p.queue
  end

let fail_all_queued p reason =
  Queue.iter (fun e -> finish p e (Degraded reason)) p.queue;
  Queue.clear p.queue

let respawn p s =
  s.respawns <- s.respawns + 1;
  Metrics.incr p.m "pool.respawns";
  if s.respawns > p.po.max_respawns_per_slot then begin
    s.abandoned <- true;
    Metrics.incr p.m "pool.slots_abandoned";
    Log.error p.log "worker slot abandoned: respawn budget exhausted"
      [ ("worker", Log.Int s.sid); ("respawns", Log.Int s.respawns) ];
    if Array.for_all (fun s -> s.abandoned) p.slots then
      fail_all_queued p "no live workers remain"
  end
  else begin
    let pid, conn, epoch =
      spawn p ~extra_close:(open_coordinator_fds p @ p.fork_fds ())
    in
    s.pid <- pid;
    s.conn <- conn;
    s.epoch <- epoch;
    s.det <- fresh_detector p.po;
    s.alive <- true
  end

(* Fenced retirement keeps the dead slot's socket readable so a
   straggler's late reply is observed (and dropped by epoch) instead of
   lingering in a kernel buffer; the entry is re-queued under a fresh
   attempt, and the slot respawns under a fresh epoch. *)
let on_dead ?(fence = false) p s metric reason =
  Metrics.incr p.m metric;
  Log.warn p.log
    ?trace:(match s.running with Some e -> Some e.trace | None -> None)
    "worker lost"
    [
      ("worker", Log.Int s.sid);
      ("pid", Log.Int s.pid);
      ("epoch", Log.Int s.epoch);
      ("reason", Log.Str reason);
      ("fenced", Log.Bool fence);
    ];
  if fence then p.fenced <- (s.conn, s.epoch) :: p.fenced else Transport.close s.conn;
  s.alive <- false;
  (match s.running with
  | Some e ->
      s.running <- None;
      redispatch p e reason
  | None -> ());
  respawn p s

let dispatch_ready p =
  Array.iter
    (fun s ->
      if s.alive && (not s.abandoned) && s.running = None && not (Queue.is_empty p.queue)
      then begin
        let e = Queue.pop p.queue in
        let idx = p.dispatched in
        p.dispatched <- idx + 1;
        e.attempts <- e.attempts + 1;
        let faults =
          match p.fault_source with
          | None -> []
          | Some src ->
              List.filter
                (fun fl -> Fault.is_wire (Fault.kind_of fl))
                (src ~request_index:idx ~worker:s.sid)
        in
        let stall = Option.value (find_stall faults) ~default:0.0 in
        (* Long enough that the heartbeat detector fences the mute worker
           even when the request deadline is generous. *)
        let mute =
          if has_partition faults then (3.0 *. p.po.phi *. p.po.heartbeat_interval) +. 0.5
          else 0.0
        in
        let disconnect = has_disconnect faults in
        s.running <- Some e;
        s.dispatched_at <- now ();
        Metrics.observe_sketch p.m "service.queue_wait_s"
          (s.dispatched_at -. e.submitted_at);
        if Log.enabled p.log Log.Debug then
          Log.debug p.log ~trace:e.trace "request dispatched"
            [
              ("id", Log.Int e.id);
              ("worker", Log.Int s.sid);
              ("attempt", Log.Int e.attempts);
            ];
        match
          Transport.send s.conn ~kind:Transport.Kind.task ~epoch:s.epoch
            ~trace:e.trace
            (task_payload ~reqid:e.id ~stall ~mute ~disconnect (encode_request e.req))
        with
        | _ -> Metrics.incr p.m "service.requests_dispatched"
        | exception Transport.Error _ ->
            on_dead p s "pool.worker_disconnects" "worker connection died at dispatch"
      end)
    p.slots;
  Metrics.set p.m "service.queue_depth" (float_of_int (Queue.length p.queue))

let apply_reply p ~slot ~epoch ~is_error payload =
  match parse_reply payload with
  | None -> Metrics.incr p.m "transport.fenced_frames"
  | Some (reqid, body) -> (
      let current =
        match slot with
        | Some s -> (
            s.epoch = epoch && match s.running with Some e -> e.id = reqid | None -> false)
        | None -> false
      in
      if not current then Metrics.incr p.m "transport.fenced_frames"
      else
        match slot with
        | None -> ()
        | Some s -> (
            let e = Option.get s.running in
            s.running <- None;
            Metrics.observe_sketch p.m "service.dispatch_s"
              (now () -. s.dispatched_at);
            if is_error then begin
              (* A worker-side failure is deterministic — retrying on
                 another worker would fail identically. Degrade. *)
              Metrics.incr p.m "pool.task_errors";
              finish p e (Degraded ("request failed on worker: " ^ Bytes.to_string body))
            end
            else
              match decode_response body with
              | Ok resp -> finish p e resp
              | Error msg ->
                  Metrics.incr p.m "pool.task_errors";
                  finish p e (Degraded ("undecodable worker response: " ^ msg))))

let drain_slot p s =
  let continue_ = ref true in
  while !continue_ && s.alive do
    (* Poll, never wait: the caller's select already proved readability,
       and a blocking drain would tax every reply with a full timeout
       spent discovering the stream is empty. *)
    match Transport.recv s.conn ~timeout:0.0 with
    | None -> continue_ := false
    | Some fr ->
        Failure_detector.observe s.det ~now:(now ());
        let k = fr.Transport.kind in
        if k = Transport.Kind.result then
          apply_reply p ~slot:(Some s) ~epoch:fr.Transport.epoch ~is_error:false
            fr.Transport.payload
        else if k = Transport.Kind.error then
          apply_reply p ~slot:(Some s) ~epoch:fr.Transport.epoch ~is_error:true
            fr.Transport.payload
    | exception Transport.Error (Transport.Closed _) ->
        continue_ := false;
        on_dead p s "pool.worker_disconnects" "worker connection closed"
    | exception Transport.Error (Transport.Integrity _) ->
        continue_ := false;
        on_dead p s "pool.integrity_failures" "worker stream integrity failure"
    | exception Transport.Error (Transport.Timeout _) ->
        continue_ := false;
        on_dead p s "pool.io_timeouts" "worker io timeout"
  done

(* Returns [true] to keep the fenced connection alive. *)
let drain_fenced p (c, epoch) =
  try
    let continue_ = ref true in
    while !continue_ do
      match Transport.recv c ~timeout:0.0 with
      | None -> continue_ := false
      | Some fr ->
          let k = fr.Transport.kind in
          if k = Transport.Kind.result || k = Transport.Kind.error then
            apply_reply p ~slot:None ~epoch ~is_error:(k = Transport.Kind.error)
              fr.Transport.payload
    done;
    true
  with Transport.Error _ ->
    Transport.close c;
    false

let reap_exited p =
  p.pids <-
    List.filter
      (fun pid ->
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> true
        | _ -> false
        | exception Unix.Unix_error _ -> false)
      p.pids

let pool_step p ~timeout =
  if p.closed then invalid_arg "Service.pool_step: pool is shut down";
  Metrics.set p.m "service.uptime_seconds" (now () -. p.started_at);
  dispatch_ready p;
  let fds = open_coordinator_fds p in
  let readable =
    if fds = [] then []
    else
      match Unix.select fds [] [] timeout with
      | r, _, _ -> r
      | exception Unix.Unix_error (EINTR, _, _) -> []
  in
  if readable <> [] then begin
    Array.iter
      (fun s -> if s.alive && List.mem (Transport.fd s.conn) readable then drain_slot p s)
      p.slots;
    p.fenced <-
      List.filter
        (fun ((c, _) as entry) ->
          if List.mem (Transport.fd c) readable then drain_fenced p entry else true)
        p.fenced
  end;
  (* Heartbeat suspicion and the per-attempt deadline both retire the
     slot's epoch — a wedged or muted worker can never hang a request. *)
  Array.iter
    (fun s ->
      if s.alive then
        if Failure_detector.suspected s.det ~now:(now ()) then
          on_dead ~fence:true p s "pool.suspicions" "worker suspected by heartbeat detector"
        else if
          s.running <> None && now () -. s.dispatched_at > p.po.request_deadline
        then on_dead ~fence:true p s "pool.request_timeouts" "request deadline expired")
    p.slots;
  (* Re-queued work should not wait for the caller's next turn. *)
  dispatch_ready p;
  reap_exited p

let shutdown_pool ?(drain_deadline = 30.0) p =
  if not p.closed then begin
    let deadline = now () +. drain_deadline in
    (try
       while (not (pool_idle p)) && now () < deadline do
         pool_step p ~timeout:(min p.po.poll_interval (max 0.0 (deadline -. now ())))
       done
     with _ -> ());
    (* Anything still unfinished gets a typed outcome, never silence. *)
    Array.iter
      (fun s ->
        match s.running with
        | Some e ->
            s.running <- None;
            finish p e (Degraded "daemon shutting down before the request finished")
        | None -> ())
      p.slots;
    fail_all_queued p "daemon shutting down before the request finished";
    p.closed <- true;
    Array.iter
      (fun s ->
        if s.alive then begin
          (try
             ignore
               (Transport.send s.conn ~kind:Transport.Kind.shutdown ~epoch:s.epoch
                  Bytes.empty)
           with _ -> ());
          Transport.close s.conn
        end)
      p.slots;
    List.iter (fun (c, _) -> Transport.close c) p.fenced;
    p.fenced <- [];
    let grace = now () +. 2.0 in
    let rec reap remaining =
      match remaining with
      | [] -> ()
      | _ when now () > grace ->
          List.iter
            (fun pid ->
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
            remaining
      | _ ->
          let still =
            List.filter
              (fun pid ->
                match Unix.waitpid [ Unix.WNOHANG ] pid with
                | 0, _ -> true
                | _ -> false
                | exception Unix.Unix_error _ -> false)
              remaining
          in
          if still <> [] then Unix.sleepf 0.01;
          reap still
    in
    reap p.pids;
    p.pids <- []
  end


(* ------------------------------------------------------------------ *)
(* Live stats snapshot (the Stats admin request)                       *)
(* ------------------------------------------------------------------ *)

type worker_stat = {
  w_slot : int;
  w_pid : int;
  w_state : string; (* "idle" | "busy" | "abandoned" *)
  w_epoch : int;
  w_respawns : int;
  w_trace : int64; (* trace of the running request; 0L when idle *)
}

type latency_stat = {
  l_count : int;
  l_total : float;
  l_mean : float;
  l_min : float;
  l_max : float;
  l_p50 : float;
  l_p90 : float;
  l_p99 : float;
}

type stats = {
  uptime_s : float;
  queue_depth : int;
  queue_high_water : int;
  queue_capacity : int;
  workers : worker_stat list;
  counters : (string * int) list;
  latencies : (string * latency_stat) list;
  log_tail : string list;
}

let stats_schema = "dstress-stats/1"

let latency_of_sketch sk =
  let q p = Sketch.quantile_or ~default:0.0 sk p in
  {
    l_count = Sketch.count sk;
    l_total = Sketch.total sk;
    l_mean = Sketch.mean sk;
    l_min = Sketch.min_value sk;
    l_max = Sketch.max_value sk;
    l_p50 = q 0.5;
    l_p90 = q 0.9;
    l_p99 = q 0.99;
  }

let pool_stats p =
  let counters =
    List.filter_map
      (fun name ->
        match Metrics.find p.m name with
        | Some (Metrics.Counter c) -> Some (name, c)
        | _ -> None)
      (Metrics.names p.m)
  in
  let latencies =
    List.filter_map
      (fun name ->
        match Metrics.find p.m name with
        | Some (Metrics.Quantiles sk) -> Some (name, latency_of_sketch sk)
        | _ -> None)
      (Metrics.names p.m)
  in
  let workers =
    Array.to_list p.slots
    |> List.map (fun s ->
           {
             w_slot = s.sid;
             w_pid = s.pid;
             w_state =
               (if s.abandoned then "abandoned"
                else if s.running <> None then "busy"
                else "idle");
             w_epoch = s.epoch;
             w_respawns = s.respawns;
             w_trace =
               (match s.running with Some e -> e.trace | None -> 0L);
           })
  in
  {
    uptime_s = now () -. p.started_at;
    queue_depth = Queue.length p.queue;
    queue_high_water = p.queue_high_water;
    queue_capacity = p.po.queue_depth;
    workers;
    counters;
    latencies;
    log_tail = List.map Log.render (Log.tail ~max:32 p.log);
  }

let trace_hex t = Printf.sprintf "%Lx" t

let worker_stat_to_json w =
  Json.Obj
    [
      ("slot", Json.Int w.w_slot);
      ("pid", Json.Int w.w_pid);
      ("state", Json.Str w.w_state);
      ("epoch", Json.Int w.w_epoch);
      ("respawns", Json.Int w.w_respawns);
      ("trace", Json.Str (trace_hex w.w_trace));
    ]

let latency_stat_to_json l =
  Json.Obj
    [
      ("count", Json.Int l.l_count);
      ("total", Json.Num l.l_total);
      ("mean", Json.Num l.l_mean);
      ("min", Json.Num l.l_min);
      ("max", Json.Num l.l_max);
      ("p50", Json.Num l.l_p50);
      ("p90", Json.Num l.l_p90);
      ("p99", Json.Num l.l_p99);
    ]

let stats_to_json st =
  Json.Obj
    [
      ("schema", Json.Str stats_schema);
      ("uptime_s", Json.Num st.uptime_s);
      ( "queue",
        Json.Obj
          [
            ("depth", Json.Int st.queue_depth);
            ("high_water", Json.Int st.queue_high_water);
            ("capacity", Json.Int st.queue_capacity);
          ] );
      ("workers", Json.List (List.map worker_stat_to_json st.workers));
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) st.counters));
      ( "latencies",
        Json.Obj (List.map (fun (k, l) -> (k, latency_stat_to_json l)) st.latencies)
      );
      ("log_tail", Json.List (List.map (fun l -> Json.Str l) st.log_tail));
    ]

let stats_of_json j =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let int_field name j =
    match Json.member name j with
    | Some (Json.Int i) -> Ok i
    | _ -> err "stats: missing int field %S" name
  in
  let num_field name j =
    match Json.member name j with
    | Some (Json.Num f) -> Ok f
    | Some (Json.Int i) -> Ok (float_of_int i)
    | _ -> err "stats: missing number field %S" name
  in
  let str_field name j =
    match Json.member name j with
    | Some (Json.Str v) -> Ok v
    | _ -> err "stats: missing string field %S" name
  in
  let rec map_result f = function
    | [] -> Ok []
    | x :: rest ->
        let* y = f x in
        let* ys = map_result f rest in
        Ok (y :: ys)
  in
  let* tag = str_field "schema" j in
  if tag <> stats_schema then err "unsupported stats schema %S" tag
  else
    let* uptime_s = num_field "uptime_s" j in
    let* queue =
      match Json.member "queue" j with
      | Some q -> Ok q
      | None -> err "stats: missing field %S" "queue"
    in
    let* queue_depth = int_field "depth" queue in
    let* queue_high_water = int_field "high_water" queue in
    let* queue_capacity = int_field "capacity" queue in
    let* workers =
      match Json.member "workers" j with
      | Some (Json.List ws) ->
          map_result
            (fun w ->
              let* w_slot = int_field "slot" w in
              let* w_pid = int_field "pid" w in
              let* w_state = str_field "state" w in
              let* w_epoch = int_field "epoch" w in
              let* w_respawns = int_field "respawns" w in
              let* hex = str_field "trace" w in
              let* w_trace =
                match Int64.of_string_opt ("0x" ^ hex) with
                | Some t -> Ok t
                | None -> err "stats: bad trace %S" hex
              in
              Ok { w_slot; w_pid; w_state; w_epoch; w_respawns; w_trace })
            ws
      | _ -> err "stats: missing list field %S" "workers"
    in
    let* counters =
      match Json.member "counters" j with
      | Some (Json.Obj kvs) ->
          map_result
            (function
              | k, Json.Int v -> Ok (k, v)
              | k, _ -> err "stats: counter %S is not an int" k)
            kvs
      | _ -> err "stats: missing object field %S" "counters"
    in
    let* latencies =
      match Json.member "latencies" j with
      | Some (Json.Obj kvs) ->
          map_result
            (fun (k, l) ->
              let* l_count = int_field "count" l in
              let* l_total = num_field "total" l in
              let* l_mean = num_field "mean" l in
              let* l_min = num_field "min" l in
              let* l_max = num_field "max" l in
              let* l_p50 = num_field "p50" l in
              let* l_p90 = num_field "p90" l in
              let* l_p99 = num_field "p99" l in
              Ok (k, { l_count; l_total; l_mean; l_min; l_max; l_p50; l_p90; l_p99 }))
            kvs
      | _ -> err "stats: missing object field %S" "latencies"
    in
    let* log_tail =
      match Json.member "log_tail" j with
      | Some (Json.List ls) ->
          map_result
            (function
              | Json.Str l -> Ok l
              | _ -> err "stats: log_tail entry is not a string")
            ls
      | _ -> err "stats: missing list field %S" "log_tail"
    in
    Ok
      {
        uptime_s;
        queue_depth;
        queue_high_water;
        queue_capacity;
        workers;
        counters;
        latencies;
        log_tail;
      }

let encode_stats st = Bytes.of_string (Json.to_string (stats_to_json st))

let decode_stats b =
  match Json.parse (Bytes.to_string b) with
  | Error e -> Error ("stats: " ^ e)
  | Ok j -> stats_of_json j

(* Prometheus text exposition: every name is sanitized to
   [a-zA-Z0-9_] under a dstress_ prefix; quantile sketches become
   summary-style rows. The output is deterministic given the snapshot
   (sorted metric names, fixed float format). *)
let prom_name name =
  "dstress_"
  ^ String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      name

let prom_float f = Printf.sprintf "%.9g" f

let stats_prometheus st =
  let b = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun l ->
        Buffer.add_string b l;
        Buffer.add_char b '\n')
      fmt
  in
  line "# dstress daemon live stats (scrape of the Stats admin request)";
  line "dstress_uptime_seconds %s" (prom_float st.uptime_s);
  line "dstress_queue_depth %d" st.queue_depth;
  line "dstress_queue_high_water %d" st.queue_high_water;
  line "dstress_queue_capacity %d" st.queue_capacity;
  List.iter
    (fun w ->
      line "dstress_worker_up{worker=\"%d\",pid=\"%d\",state=\"%s\"} %d" w.w_slot
        w.w_pid w.w_state
        (if w.w_state = "abandoned" then 0 else 1);
      line "dstress_worker_respawns{worker=\"%d\"} %d" w.w_slot w.w_respawns)
    st.workers;
  List.iter (fun (k, v) -> line "%s %d" (prom_name k) v) st.counters;
  List.iter
    (fun (k, l) ->
      let n = prom_name k in
      line "%s{quantile=\"0.5\"} %s" n (prom_float l.l_p50);
      line "%s{quantile=\"0.9\"} %s" n (prom_float l.l_p90);
      line "%s{quantile=\"0.99\"} %s" n (prom_float l.l_p99);
      line "%s_sum %s" n (prom_float l.l_total);
      line "%s_count %d" n l.l_count)
    st.latencies;
  if st.log_tail <> [] then begin
    line "# log tail:";
    List.iter (fun l -> line "# %s" l) st.log_tail
  end;
  Buffer.contents b

let fetch_stats ?(timeout = 10.0) conn =
  ignore (Transport.send conn ~kind:Transport.Kind.stats ~epoch:0 Bytes.empty);
  let deadline = now () +. timeout in
  let rec await () =
    let remaining = deadline -. now () in
    if remaining <= 0.0 then
      raise (Transport.Error (Transport.Timeout "stats: no reply"))
    else
      match Transport.recv conn ~timeout:remaining with
      | None -> await ()
      | Some fr when fr.Transport.kind = Transport.Kind.stats_reply -> (
          match decode_stats fr.Transport.payload with
          | Ok st -> st
          | Error e -> raise (Transport.Error (Transport.Integrity e)))
      | Some _ -> await ()
  in
  await ()

(* ------------------------------------------------------------------ *)
(* Server                                                              *)
(* ------------------------------------------------------------------ *)

type listen_addr = Unix_socket of string | Tcp of string * int

let bind_listener = function
  | Unix_socket path -> (Transport.listen ~path, path)
  | Tcp (host, port) ->
      let lfd, bound = Transport.listen_tcp ~host ~port () in
      (lfd, Printf.sprintf "%s:%d" host bound)

type client = {
  cconn : Transport.t;
  mutable inflight : bool;
  mutable dead : bool;
}

let serve ?(pool_opts = default_pool_opts) ?(log = Log.nop)
    ?(ready = fun ~addr:_ -> ()) ?(stop = fun () -> false) ~handler ~listener ~addr
    () =
  let clients : client list ref = ref [] in
  let listener_open = ref true in
  (* The respawn path forks mid-service: children must drop the listener
     and every client connection they inherit. *)
  let fork_fds () =
    (if !listener_open then [ listener ] else [])
    @ List.filter_map (fun c -> if c.dead then None else Some (Transport.fd c.cconn)) !clients
  in
  (* Workers fork here — before any Domain.spawn in this process. *)
  let pool = create_pool ~opts:pool_opts ~log ~fork_fds ~handler () in
  Log.info log "daemon listening"
    [ ("addr", Log.Str addr); ("workers", Log.Int pool_opts.workers) ];
  let draining = ref false in
  let install signal =
    match Sys.signal signal (Sys.Signal_handle (fun _ -> draining := true)) with
    | old -> Some (signal, old)
    | exception (Invalid_argument _ | Sys_error _) -> None
  in
  let saved = List.filter_map install [ Sys.sigterm; Sys.sigint ] in
  let restore () =
    List.iter (fun (signal, old) -> try Sys.set_signal signal old with _ -> ()) saved
  in
  let reply_to c resp =
    if not c.dead then
      match
        Transport.send c.cconn ~kind:Transport.Kind.response ~epoch:0
          (encode_response resp)
      with
      | _ -> ()
      | exception Transport.Error _ ->
          c.dead <- true;
          Transport.close c.cconn
  in
  let handle_request c payload =
    if c.inflight then
      reply_to c (Rejected "one request per connection at a time")
    else if !draining then reply_to c (Rejected "daemon is draining")
    else
      match decode_request payload with
      | Error e -> reply_to c (Rejected ("malformed request: " ^ e))
      | Ok req -> (
          match validate_request req with
          | Error e -> reply_to c (Rejected ("invalid request: " ^ e))
          | Ok () -> (
              let on_done resp =
                c.inflight <- false;
                reply_to c resp
              in
              match submit pool req on_done with
              | `Queued -> c.inflight <- true
              | `Queue_full ->
                  reply_to c
                    (Rejected
                       (Printf.sprintf "queue full (depth %d)" pool_opts.queue_depth))
              | `No_workers -> reply_to c (Rejected "no live workers remain")))
  in
  let drain_client c =
    let continue_ = ref true in
    while !continue_ && not c.dead do
      match Transport.recv c.cconn ~timeout:0.0 with
      | None -> continue_ := false
      | Some fr when fr.Transport.kind = Transport.Kind.request ->
          handle_request c fr.Transport.payload
      | Some fr when fr.Transport.kind = Transport.Kind.stats -> (
          (* Admin request: always answered, even while draining or with a
             clearing request in flight on this connection. *)
          match
            Transport.send c.cconn ~kind:Transport.Kind.stats_reply ~epoch:0
              (encode_stats (pool_stats pool))
          with
          | _ -> ()
          | exception Transport.Error _ ->
              c.dead <- true;
              Transport.close c.cconn)
      | Some _ -> ()
      | exception Transport.Error _ ->
          continue_ := false;
          c.dead <- true;
          Transport.close c.cconn
    done
  in
  ready ~addr;
  Fun.protect ~finally:restore (fun () ->
      let finished () = !draining && pool_idle pool in
      while not (finished ()) do
        if stop () then draining := true;
        if !draining && !listener_open then begin
          listener_open := false;
          Log.info log "daemon draining: listener closed" [];
          close_quietly listener
        end;
        let client_fds =
          List.filter_map (fun c -> if c.dead then None else Some (Transport.fd c.cconn)) !clients
        in
        let fds =
          (if !listener_open then [ listener ] else [])
          @ client_fds @ pool_fds pool
        in
        let readable =
          if fds = [] then []
          else
            match Unix.select fds [] [] pool.po.poll_interval with
            | r, _, _ -> r
            | exception Unix.Unix_error (EINTR, _, _) -> []
        in
        if !listener_open && List.mem listener readable then begin
          match Unix.accept listener with
          | fdesc, _ ->
              (try Unix.setsockopt fdesc Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
              let cconn =
                Transport.of_fd ~metrics:(pool_metrics pool) ~log
                  ~read_deadline:pool.po.io_deadline ~write_deadline:pool.po.io_deadline
                  fdesc
              in
              clients := { cconn; inflight = false; dead = false } :: !clients
          | exception Unix.Unix_error _ -> ()
        end;
        List.iter
          (fun c ->
            if (not c.dead) && List.mem (Transport.fd c.cconn) readable then drain_client c)
          !clients;
        clients := List.filter (fun c -> not c.dead) !clients;
        pool_step pool ~timeout:0.0
      done;
      List.iter (fun c -> if not c.dead then Transport.close c.cconn) !clients;
      clients := [];
      shutdown_pool pool;
      if !listener_open then begin
        listener_open := false;
        close_quietly listener
      end)

let call ?(timeout = 120.0) conn req =
  ignore (Transport.send conn ~kind:Transport.Kind.request ~epoch:0 (encode_request req));
  let deadline = now () +. timeout in
  let rec await () =
    let remaining = deadline -. now () in
    if remaining <= 0.0 then
      raise (Transport.Error (Transport.Timeout "service call: no response"))
    else
      match Transport.recv conn ~timeout:remaining with
      | None -> await ()
      | Some fr when fr.Transport.kind = Transport.Kind.response -> (
          match decode_response fr.Transport.payload with
          | Ok resp -> resp
          | Error e -> raise (Transport.Error (Transport.Integrity ("service call: " ^ e))))
      | Some _ -> await ()
  in
  await ()
