(** Compare two {!Bench_result} documents and gate regressions.

    The comparison embodies the telemetry split documented in
    {!Bench_result}: wall-clock metrics are gated by a relative
    [threshold] (machine noise is expected), deterministic counters are
    gated exactly (any change is a protocol-behaviour drift), and other
    floats are reported but never gated. [~counters_only:true] restricts
    gating {e and} reporting to counters — the mode used to compare a
    fresh run against a baseline committed from different hardware. *)

type severity =
  | Info  (** reported, never affects the verdict *)
  | Fail  (** makes the comparison fail *)

type delta = {
  suite : string;
  key : string;  (** row identity within the suite ({!Bench_result.key}) *)
  metric : string;  (** e.g. [wall.median_s], [counter:mpc.and_gates] *)
  detail : string;  (** human rendering: old → new and relative change *)
  severity : severity;
}

type report = {
  deltas : delta list;
  compared : int;  (** result rows present in both documents *)
}

val compare_docs :
  ?threshold:float -> ?counters_only:bool -> Bench_result.doc -> Bench_result.doc -> report
(** [compare_docs ~threshold old new_]. Defaults: [threshold = 0.25],
    [counters_only = false]. Produces one {!delta} per difference:

    - a row or suite present in [old] but missing from [new_] is a [Fail];
      rows only in [new_] are [Info] (new coverage);
    - a counter whose value changes, appears or disappears is a [Fail];
    - [wall.median_s] increasing by more than [threshold] relative is a
      [Fail]; any other wall/throughput/float change is [Info];
    - comparing documents with different [mode] fields adds an [Info]
      warning (quick vs full runs are not comparable).

    Identical documents produce an empty [deltas] list. *)

val ok : report -> bool
(** No [Fail] deltas. *)

val pp : Format.formatter -> report -> unit
(** One line per delta (prefixed [FAIL]/[info]) and a summary line. *)
