type severity = Info | Fail

type delta = {
  suite : string;
  key : string;
  metric : string;
  detail : string;
  severity : severity;
}

type report = { deltas : delta list; compared : int }

let pct_change ~old_v ~new_v =
  if old_v = 0.0 then if new_v = 0.0 then 0.0 else infinity
  else (new_v -. old_v) /. old_v *. 100.0

let render_pct ~old_v ~new_v =
  Printf.sprintf "%.6g -> %.6g (%+.1f%%)" old_v new_v (pct_change ~old_v ~new_v)

(* Compare two sorted (name, value) association lists, emitting one delta
   per name whose value appears, disappears or changes. *)
let assoc_deltas ~suite ~key ~prefix ~severity ~render ~equal old_kvs new_kvs =
  let mk metric detail =
    { suite; key; metric = prefix ^ ":" ^ metric; detail; severity }
  in
  let rec go acc old_kvs new_kvs =
    match (old_kvs, new_kvs) with
    | [], [] -> List.rev acc
    | (k, v) :: rest, [] ->
        go (mk k (Printf.sprintf "removed (was %s)" (render v)) :: acc) rest []
    | [], (k, v) :: rest ->
        go (mk k (Printf.sprintf "added (now %s)" (render v)) :: acc) [] rest
    | (ko, vo) :: resto, (kn, vn) :: restn ->
        if ko < kn then
          go (mk ko (Printf.sprintf "removed (was %s)" (render vo)) :: acc) resto new_kvs
        else if kn < ko then
          go (mk kn (Printf.sprintf "added (now %s)" (render vn)) :: acc) old_kvs restn
        else if equal vo vn then go acc resto restn
        else
          go (mk ko (Printf.sprintf "%s -> %s" (render vo) (render vn)) :: acc) resto restn
  in
  go [] old_kvs new_kvs

let wall_deltas ~suite ~key ~threshold (old_r : Bench_result.result)
    (new_r : Bench_result.result) =
  match (old_r.wall, new_r.wall) with
  | None, None -> []
  | Some w, None ->
      [
        {
          suite;
          key;
          metric = "wall";
          detail = Printf.sprintf "removed (was median %.6gs)" w.median_s;
          severity = Info;
        };
      ]
  | None, Some w ->
      [
        {
          suite;
          key;
          metric = "wall";
          detail = Printf.sprintf "added (now median %.6gs)" w.median_s;
          severity = Info;
        };
      ]
  | Some ow, Some nw ->
      let median =
        if ow.median_s = nw.median_s then []
        else
          let severity =
            if nw.median_s > ow.median_s *. (1.0 +. threshold) then Fail
            else Info
          in
          [
            {
              suite;
              key;
              metric = "wall.median_s";
              detail = render_pct ~old_v:ow.median_s ~new_v:nw.median_s;
              severity;
            };
          ]
      in
      let informational name old_v new_v =
        if old_v = new_v then []
        else
          [
            {
              suite;
              key;
              metric = "wall." ^ name;
              detail = render_pct ~old_v ~new_v;
              severity = Info;
            };
          ]
      in
      median
      @ informational "min_s" ow.min_s nw.min_s
      @ informational "p10_s" ow.p10_s nw.p10_s
      @ informational "p90_s" ow.p90_s nw.p90_s

let throughput_deltas ~suite ~key (old_r : Bench_result.result)
    (new_r : Bench_result.result) =
  match (old_r.throughput, new_r.throughput) with
  | Some (u, ov), Some (_, nv) when ov <> nv ->
      [
        {
          suite;
          key;
          metric = "throughput." ^ u;
          detail = render_pct ~old_v:ov ~new_v:nv;
          severity = Info;
        };
      ]
  | _ -> []

let result_deltas ~suite ~threshold ~counters_only (old_r : Bench_result.result)
    (new_r : Bench_result.result) =
  let key = Bench_result.key old_r in
  let counters =
    assoc_deltas ~suite ~key ~prefix:"counter" ~severity:Fail
      ~render:string_of_int ~equal:Int.equal old_r.counters new_r.counters
  in
  if counters_only then counters
  else
    counters
    @ wall_deltas ~suite ~key ~threshold old_r new_r
    @ throughput_deltas ~suite ~key old_r new_r
    @ assoc_deltas ~suite ~key ~prefix:"float" ~severity:Info
        ~render:(Printf.sprintf "%.6g")
        ~equal:(fun (a : float) b -> a = b)
        old_r.floats new_r.floats

let suite_deltas ~threshold ~counters_only (old_s : Bench_result.suite)
    (new_s : Bench_result.suite) =
  let suite = old_s.suite in
  let new_by_key =
    List.map (fun r -> (Bench_result.key r, r)) new_s.results
  in
  let seen = Hashtbl.create 16 in
  let compared = ref 0 in
  let deltas =
    List.concat_map
      (fun old_r ->
        let key = Bench_result.key old_r in
        match List.assoc_opt key new_by_key with
        | Some new_r ->
            Hashtbl.replace seen key ();
            incr compared;
            result_deltas ~suite ~threshold ~counters_only old_r new_r
        | None ->
            [
              {
                suite;
                key;
                metric = "result";
                detail = "missing from new run";
                severity = Fail;
              };
            ])
      old_s.results
  in
  (* New coverage is worth a line when comparing like for like, but in
     counters-only mode (a partial baseline against a full run) it is
     expected noise. *)
  let added =
    if counters_only then []
    else
      List.filter_map
        (fun (key, _) ->
          if Hashtbl.mem seen key then None
          else
            Some
              { suite; key; metric = "result"; detail = "new row"; severity = Info })
        new_by_key
  in
  (deltas @ added, !compared)

let compare_docs ?(threshold = 0.25) ?(counters_only = false)
    (old_d : Bench_result.doc) (new_d : Bench_result.doc) =
  let mode_warn =
    if old_d.mode = new_d.mode then []
    else
      [
        {
          suite = "";
          key = "";
          metric = "mode";
          detail =
            Printf.sprintf "comparing %S against %S runs" old_d.mode new_d.mode;
          severity = Info;
        };
      ]
  in
  let seen = Hashtbl.create 16 in
  let compared = ref 0 in
  let deltas =
    List.concat_map
      (fun (old_s : Bench_result.suite) ->
        match
          List.find_opt
            (fun (s : Bench_result.suite) -> s.suite = old_s.suite)
            new_d.suites
        with
        | Some new_s ->
            Hashtbl.replace seen old_s.suite ();
            let ds, n = suite_deltas ~threshold ~counters_only old_s new_s in
            compared := !compared + n;
            ds
        | None ->
            [
              {
                suite = old_s.suite;
                key = "";
                metric = "suite";
                detail = "missing from new run";
                severity = Fail;
              };
            ])
      old_d.suites
  in
  let added =
    if counters_only then []
    else
      List.filter_map
        (fun (s : Bench_result.suite) ->
          if Hashtbl.mem seen s.suite then None
          else
            Some
              {
                suite = s.suite;
                key = "";
                metric = "suite";
                detail = "new suite";
                severity = Info;
              })
        new_d.suites
  in
  { deltas = mode_warn @ deltas @ added; compared = !compared }

let ok r = List.for_all (fun d -> d.severity <> Fail) r.deltas

let pp ppf r =
  List.iter
    (fun d ->
      Format.fprintf ppf "%s %s%s%s: %s@."
        (match d.severity with Fail -> "FAIL" | Info -> "info")
        (if d.suite = "" then "" else d.suite ^ "/")
        (if d.key = "" then "" else d.key ^ " ")
        d.metric d.detail)
    r.deltas;
  let fails =
    List.length (List.filter (fun d -> d.severity = Fail) r.deltas)
  in
  Format.fprintf ppf "%d rows compared, %d deltas (%d failing)@." r.compared
    (List.length r.deltas) fails
