(** Wall-clock hot-spot profiler over {!Obs} spans.

    {!Obs} records two timelines per span: the deterministic simulated-tick
    one (what the protocol did — exported by {!Obs.trace_json} and pinned
    byte-identical by [test/test_obs.ml]) and a measured wall-clock one
    ([wall]/[wall_start] — what the machine did). This module is the only
    consumer of the latter: it rebuilds the span tree from close order,
    aggregates wall seconds per span label into a hierarchical profile
    (self/total/count), flattens it into a top-N hot-spot report, and
    exports all of it as JSON, a human table, or an opt-in wall-clock
    Chrome trace ({!trace_wall_json}).

    None of these exports are deterministic — they vary run to run with
    machine load — so they are produced only on explicit request
    ([dstress --profile], [--trace-wall]) and never mix with the
    tick-based exports. *)

(** One node of the label-aggregated profile tree. Sibling spans with the
    same label merge into one node; recursion (a label nested under
    itself) appears as a child node of the same label. *)
type node = {
  label : string;
  count : int;  (** spans merged into this node *)
  total_s : float;  (** wall seconds inside these spans, children included *)
  self_s : float;
      (** [total_s] minus the children's [total_s], clamped at 0 — wall
          time attributable to this label itself. On a sequential run
          children nest inside their parent so the clamp never fires;
          merged parallel children can overlap and make it bind. *)
  children : node list;  (** ordered by first appearance in the timeline *)
}

type t = {
  roots : node list;
  wall_total_s : float;  (** sum of the roots' [total_s] *)
}

val of_spans : Obs.span list -> t
(** Build the profile from {!Obs.spans} output (siblings in timeline
    order, parents after their children — the order {!Obs.leave}
    produces). Spans still open at capture time are simply absent. *)

val of_obs : Obs.t -> t
(** [of_spans (Obs.spans o)]. *)

(** One row of the flattened hot-spot report. *)
type flat = {
  flat_label : string;
  flat_count : int;  (** all spans with this label, at any depth *)
  flat_self_s : float;  (** summed over every node with this label *)
  flat_total_s : float;
      (** summed over outermost nodes only — a label nested under itself
          is not double-counted *)
}

val flatten : t -> flat list
(** All labels, sorted by [flat_self_s] descending (ties by label). *)

val top : ?n:int -> t -> flat list
(** First [n] (default 10) rows of {!flatten}. *)

val to_json : t -> Json.t
(** [{"wall_total_s": ..., "tree": [...], "flat": [...]}] — the full tree
    (recursive [children]) plus the flat report. *)

val pp_table : ?top_n:int -> Format.formatter -> t -> unit
(** Human hot-spot table: one row per {!flat} entry ([top_n] defaults to
    all), with self/total seconds and percent-of-run columns. *)

val trace_wall_json : Obs.t -> string
(** Chrome [trace_event] export on the {e wall-clock} timeline:
    [ts]/[dur] in microseconds relative to the earliest [wall_start].
    The wall-clock sibling of {!Obs.trace_json}; never byte-stable across
    runs, so only produced when explicitly requested. *)
