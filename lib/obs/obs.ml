type level = Off | Basic | Full

let level_name = function Off -> "off" | Basic -> "basic" | Full -> "full"

let level_of_string = function
  | "off" -> Some Off
  | "basic" -> Some Basic
  | "full" -> Some Full
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  type histogram = { count : int; total : float; min : float; max : float }

  type value =
    | Counter of int
    | Sum of float
    | Gauge of float
    | Hist of histogram
    | Quantiles of Sketch.t

  type t = { tbl : (string, value) Hashtbl.t }

  let create () = { tbl = Hashtbl.create 32 }

  let kind_error name =
    invalid_arg (Printf.sprintf "Obs.Metrics: %S already has a different kind" name)

  let incr ?(by = 1) t name =
    match Hashtbl.find_opt t.tbl name with
    | None -> Hashtbl.replace t.tbl name (Counter by)
    | Some (Counter c) -> Hashtbl.replace t.tbl name (Counter (c + by))
    | Some _ -> kind_error name

  let add t name v =
    match Hashtbl.find_opt t.tbl name with
    | None -> Hashtbl.replace t.tbl name (Sum v)
    | Some (Sum s) -> Hashtbl.replace t.tbl name (Sum (s +. v))
    | Some _ -> kind_error name

  let set t name v =
    match Hashtbl.find_opt t.tbl name with
    | None | Some (Gauge _) -> Hashtbl.replace t.tbl name (Gauge v)
    | Some _ -> kind_error name

  let observe t name v =
    match Hashtbl.find_opt t.tbl name with
    | None -> Hashtbl.replace t.tbl name (Hist { count = 1; total = v; min = v; max = v })
    | Some (Hist h) ->
        Hashtbl.replace t.tbl name
          (Hist
             {
               count = h.count + 1;
               total = h.total +. v;
               min = Float.min h.min v;
               max = Float.max h.max v;
             })
    | Some _ -> kind_error name

  let observe_sketch ?alpha t name v =
    match Hashtbl.find_opt t.tbl name with
    | None ->
        let s = Sketch.create ?alpha () in
        Sketch.add s v;
        Hashtbl.replace t.tbl name (Quantiles s)
    | Some (Quantiles s) -> Sketch.add s v
    | Some _ -> kind_error name

  let find t name = Hashtbl.find_opt t.tbl name

  let counter t name =
    match Hashtbl.find_opt t.tbl name with
    | None -> 0
    | Some (Counter c) -> c
    | Some _ -> kind_error name

  let sum t name =
    match Hashtbl.find_opt t.tbl name with
    | None -> 0.0
    | Some (Sum s) | Some (Gauge s) -> s
    | Some _ -> kind_error name

  let hist t name =
    match Hashtbl.find_opt t.tbl name with
    | None -> None
    | Some (Hist h) -> Some h
    | Some _ -> kind_error name

  (* Empty histograms can reach here via a [merge_into] of fresh
     registries, so the empty case returns 0. rather than dividing. *)
  let hist_mean h = if h.count = 0 then 0.0 else h.total /. float_of_int h.count

  let sketch t name =
    match Hashtbl.find_opt t.tbl name with
    | None -> None
    | Some (Quantiles s) -> Some s
    | Some _ -> kind_error name

  let names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] |> List.sort compare

  let merge_into ~dst src =
    List.iter
      (fun name ->
        match Hashtbl.find_opt src.tbl name with
        | None -> ()
        | Some (Counter c) -> incr ~by:c dst name
        | Some (Sum s) -> add dst name s
        | Some (Gauge g) -> set dst name g
        | Some (Hist h) -> (
            match Hashtbl.find_opt dst.tbl name with
            | None -> Hashtbl.replace dst.tbl name (Hist h)
            | Some (Hist d) ->
                Hashtbl.replace dst.tbl name
                  (Hist
                     {
                       count = d.count + h.count;
                       total = d.total +. h.total;
                       min = Float.min d.min h.min;
                       max = Float.max d.max h.max;
                     })
            | Some _ -> kind_error name)
        | Some (Quantiles s) -> (
            match Hashtbl.find_opt dst.tbl name with
            | None -> Hashtbl.replace dst.tbl name (Quantiles (Sketch.copy s))
            | Some (Quantiles d) -> Sketch.merge_into ~dst:d s
            | Some _ -> kind_error name))
      (names src)

  let value_to_json = function
    | Counter c -> Json.Int c
    | Sum s -> Json.Num s
    | Gauge g -> Json.Num g
    | Hist h ->
        Json.Obj
          [
            ("count", Json.Int h.count);
            ("total", Json.Num h.total);
            ("mean", Json.Num (hist_mean h));
            ("min", Json.Num h.min);
            ("max", Json.Num h.max);
          ]
    | Quantiles s -> Sketch.to_json s

  let to_json t =
    Json.Obj
      (List.map (fun name -> (name, value_to_json (Hashtbl.find t.tbl name))) (names t))

  let float_csv f = Printf.sprintf "%.12g" f

  let to_csv t =
    let buf = Buffer.create 256 in
    Buffer.add_string buf "name,kind,value\n";
    List.iter
      (fun name ->
        let kind, value =
          match Hashtbl.find t.tbl name with
          | Counter c -> ("counter", string_of_int c)
          | Sum s -> ("sum", float_csv s)
          | Gauge g -> ("gauge", float_csv g)
          | Hist h ->
              ( "hist",
                Printf.sprintf "count=%d;total=%s;mean=%s;min=%s;max=%s" h.count
                  (float_csv h.total) (float_csv (hist_mean h)) (float_csv h.min)
                  (float_csv h.max) )
          | Quantiles s ->
              let q p = float_csv (Sketch.quantile_or ~default:0.0 s p) in
              ( "quantiles",
                Printf.sprintf
                  "count=%d;total=%s;mean=%s;min=%s;max=%s;p50=%s;p90=%s;p99=%s"
                  (Sketch.count s)
                  (float_csv (Sketch.total s))
                  (float_csv (Sketch.mean s))
                  (float_csv (Sketch.min_value s))
                  (float_csv (Sketch.max_value s))
                  (q 0.5) (q 0.9) (q 0.99) )
        in
        Buffer.add_string buf (Printf.sprintf "%s,%s,%s\n" name kind value))
      (names t);
    Buffer.contents buf
end

(* ------------------------------------------------------------------ *)
(* Span collector                                                      *)
(* ------------------------------------------------------------------ *)

type span = {
  name : string;
  start : int;
  dur : int;
  depth : int;
  wall : float;
  wall_start : float;
}

type open_span = { oname : string; ostart : int; odepth : int; owall : float }

type t = {
  lvl : level;
  m : Metrics.t;
  mutable closed : span list; (* reverse close order *)
  mutable stack : open_span list;
  mutable cursor : int;
}

let make lvl = { lvl; m = Metrics.create (); closed = []; stack = []; cursor = 0 }

(* The shared Off collector: every operation guards on the level, so its
   mutable fields are never written and it is safe to share across
   domains. *)
let off = make Off

let create ~level () = match level with Off -> off | l -> make l

let level t = t.lvl
let enabled t = t.lvl <> Off
let detailed t = t.lvl = Full
let metrics t = t.m

let incr ?by t name = if enabled t then Metrics.incr ?by t.m name
let add t name v = if enabled t then Metrics.add t.m name v
let set t name v = if enabled t then Metrics.set t.m name v
let observe t name v = if enabled t then Metrics.observe t.m name v

let advance t n = if enabled t && n > 0 then t.cursor <- t.cursor + n
let clock t = t.cursor

let enter t name =
  if enabled t then
    t.stack <-
      {
        oname = name;
        ostart = t.cursor;
        odepth = List.length t.stack;
        owall = Unix.gettimeofday ();
      }
      :: t.stack

let leave t =
  if enabled t then
    match t.stack with
    | [] -> invalid_arg "Obs.leave: no open span"
    | o :: rest ->
        t.stack <- rest;
        t.closed <-
          {
            name = o.oname;
            start = o.ostart;
            dur = t.cursor - o.ostart;
            depth = o.odepth;
            wall = Unix.gettimeofday () -. o.owall;
            wall_start = o.owall;
          }
          :: t.closed

let span t name f =
  enter t name;
  match f () with
  | v ->
      leave t;
      v
  | exception e ->
      leave t;
      raise e

let fork t = if enabled t then make t.lvl else t

let merge_into ~dst child =
  if dst != child && enabled child then begin
    if child.stack <> [] then invalid_arg "Obs.merge_into: child has open spans";
    Metrics.merge_into ~dst:dst.m child.m;
    let toff = dst.cursor and doff = List.length dst.stack in
    dst.closed <-
      List.map
        (fun s -> { s with start = s.start + toff; depth = s.depth + doff })
        child.closed
      @ dst.closed;
    dst.cursor <- dst.cursor + child.cursor
  end

let spans t = List.rev t.closed

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let trace_json ?(wall = false) t =
  let event s =
    let args =
      ("depth", Json.Int s.depth)
      :: (if wall then [ ("wall_s", Json.Num s.wall) ] else [])
    in
    Json.Obj
      [
        ("name", Json.Str s.name);
        ("cat", Json.Str "dstress");
        ("ph", Json.Str "X");
        ("ts", Json.Int s.start);
        ("dur", Json.Int s.dur);
        ("pid", Json.Int 0);
        ("tid", Json.Int 0);
        ("args", Json.Obj args);
      ]
  in
  Json.to_string
    (Json.Obj
       [
         ("displayTimeUnit", Json.Str "ms");
         ("traceEvents", Json.List (List.map event (spans t)));
       ])

let metrics_json t = Json.to_string (Metrics.to_json t.m)

let metrics_csv t = Metrics.to_csv t.m
