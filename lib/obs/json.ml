type t =
  | Null
  | Bool of bool
  | Int of int
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)
(* ------------------------------------------------------------------ *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Num f -> add_float buf f
  | Str s -> add_escaped buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Fail of int * string

let parse input =
  let len = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < len then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= len && String.sub input !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let hex4 () =
    if !pos + 4 > len then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub input !pos 4) in
    pos := !pos + 4;
    v
  in
  let utf8 buf code =
    (* Enough UTF-8 encoding for validation round-trips. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'u' ->
              advance ();
              (try utf8 buf (hex4 ()) with Failure _ -> fail "bad \\u escape")
          | _ -> fail "bad escape");
          loop ()
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let any = ref false in
      while !pos < len && input.[!pos] >= '0' && input.[!pos] <= '9' do
        any := true;
        advance ()
      done;
      if not !any then fail "expected digit"
    in
    if peek () = Some '-' then advance ();
    digits ();
    let fractional = ref false in
    if peek () = Some '.' then begin
      fractional := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        fractional := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub input start (!pos - start) in
    if !fractional then Num (float_of_string text)
    else match int_of_string_opt text with Some i -> Int i | None -> Num (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
