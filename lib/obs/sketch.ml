(* Mergeable log-bucketed quantile sketch (DDSketch-style).

   Values are mapped to geometrically-spaced buckets: value [v] lands in
   bucket [ceil (log_gamma v)] where [gamma = (1 + alpha) / (1 - alpha)].
   The midpoint estimate [2 * gamma^i / (gamma + 1)] of any bucket is
   within relative error [alpha] of every value in that bucket, so any
   quantile estimate is within [alpha] relative error of the exact order
   statistic.  Buckets are sparse (a small hashtable), values at or below
   [zero_cutoff] (and negatives) collapse into a dedicated zero bucket,
   and sketches built with the same [alpha] merge by bucket-wise
   addition — merging is associative and commutative on bucket
   contents. *)

type t = {
  alpha : float;
  gamma : float;
  log_gamma : float;
  buckets : (int, int) Hashtbl.t;
  mutable zero : int;
  mutable count : int;
  mutable total : float;
  mutable min_v : float;
  mutable max_v : float;
}

let default_alpha = 0.01
let zero_cutoff = 1e-12

let create ?(alpha = default_alpha) () =
  if not (alpha > 0.0 && alpha < 1.0) then
    invalid_arg "Sketch.create: alpha must be in (0, 1)";
  let gamma = (1.0 +. alpha) /. (1.0 -. alpha) in
  {
    alpha;
    gamma;
    log_gamma = log gamma;
    buckets = Hashtbl.create 64;
    zero = 0;
    count = 0;
    total = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
  }

let alpha t = t.alpha
let count t = t.count
let total t = t.total
let is_empty t = t.count = 0
let min_value t = if t.count = 0 then 0.0 else t.min_v
let max_value t = if t.count = 0 then 0.0 else t.max_v
let mean t = if t.count = 0 then 0.0 else t.total /. float_of_int t.count

let bucket_index t v = int_of_float (Float.ceil (log v /. t.log_gamma))

(* Midpoint of bucket [i]'s value range (gamma^(i-1), gamma^i]: the
   estimate is 2 * gamma^i / (gamma + 1), within alpha of all of it. *)
let bucket_estimate t i = 2.0 *. (t.gamma ** float_of_int i) /. (t.gamma +. 1.0)

let add t v =
  if Float.is_finite v then begin
    if v <= zero_cutoff then t.zero <- t.zero + 1
    else begin
      let i = bucket_index t v in
      let n = try Hashtbl.find t.buckets i with Not_found -> 0 in
      Hashtbl.replace t.buckets i (n + 1)
    end;
    t.count <- t.count + 1;
    t.total <- t.total +. v;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let buckets t =
  Hashtbl.fold (fun i n acc -> (i, n) :: acc) t.buckets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let quantile t q =
  if t.count = 0 then None
  else if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Sketch.quantile: q must be in [0, 1]"
  else begin
    (* Zero-based target rank of the exact order statistic. *)
    let target = int_of_float (q *. float_of_int (t.count - 1)) in
    if target < t.zero then Some 0.0
    else begin
      let est = ref t.max_v and cum = ref t.zero and found = ref false in
      List.iter
        (fun (i, n) ->
          if not !found then begin
            cum := !cum + n;
            if !cum > target then begin
              est := bucket_estimate t i;
              found := true
            end
          end)
        (buckets t);
      (* Clamping into the observed range only ever shrinks the error. *)
      Some (Float.max t.min_v (Float.min t.max_v !est))
    end
  end

let quantile_or ~default t q = match quantile t q with Some v -> v | None -> default

let copy t =
  {
    t with
    buckets = Hashtbl.copy t.buckets;
    zero = t.zero;
    count = t.count;
    total = t.total;
    min_v = t.min_v;
    max_v = t.max_v;
  }

let merge_into ~dst src =
  if dst.alpha <> src.alpha then
    invalid_arg "Sketch.merge_into: alpha mismatch";
  Hashtbl.iter
    (fun i n ->
      let m = try Hashtbl.find dst.buckets i with Not_found -> 0 in
      Hashtbl.replace dst.buckets i (m + n))
    src.buckets;
  dst.zero <- dst.zero + src.zero;
  dst.count <- dst.count + src.count;
  dst.total <- dst.total +. src.total;
  if src.count > 0 then begin
    if src.min_v < dst.min_v then dst.min_v <- src.min_v;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v
  end

let merge a b =
  let t = copy a in
  merge_into ~dst:t b;
  t

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("total", Json.Num t.total);
      ("mean", Json.Num (mean t));
      ("min", Json.Num (min_value t));
      ("max", Json.Num (max_value t));
      ("p50", Json.Num (quantile_or ~default:0.0 t 0.5));
      ("p90", Json.Num (quantile_or ~default:0.0 t 0.9));
      ("p99", Json.Num (quantile_or ~default:0.0 t 0.99));
    ]
