(** Leveled structured logging with a bounded in-memory ring buffer.

    Wall-domain only: events carry real timestamps and must never feed
    the deterministic tick-domain exports (spans, typed metrics), which
    stay byte-identical across executors whether logging is on or off.

    Events are structured — a message plus typed key/value fields plus
    an optional request trace ID — and are only formatted when rendered,
    so the hot path is an [enabled] check, one small allocation, and a
    ring slot write.  The clock and sink are injectable for
    deterministic tests.  All operations are thread-safe. *)

type level = Error | Warn | Info | Debug

val level_name : level -> string
(** ["error" | "warn" | "info" | "debug"]. *)

val level_of_string : string -> level option
(** Inverse of {!level_name} (also accepts ["warning"]). *)

type field = Str of string | Int of int | Float of float | Bool of bool

type event = {
  ts : float;  (** wall-clock seconds from the injected clock *)
  level : level;
  msg : string;
  trace : int64;  (** request trace ID; [0L] = no trace *)
  fields : (string * field) list;
}

type t

val create :
  ?level:level ->
  ?capacity:int ->
  ?clock:(unit -> float) ->
  ?sink:(event -> unit) ->
  unit ->
  t
(** [create ()] makes a logger keeping the last [capacity] (default 256)
    events at or above [level] (default [Info]) in a ring buffer.
    [clock] defaults to [Unix.gettimeofday]. If [sink] is given, every
    accepted event is also passed to it (exceptions are swallowed). *)

val nop : t
(** Shared disabled logger: every level is off, nothing is recorded and
    nothing is allocated. The default everywhere a logger is optional. *)

val enabled : t -> level -> bool
(** Whether events at this level are currently accepted. Check before
    building expensive field lists. *)

val set_level : t -> level -> unit
(** Change the acceptance threshold. No effect on {!nop}. *)

val log : t -> level -> ?trace:int64 -> string -> (string * field) list -> unit
(** Record one event; a no-op when the level is disabled. *)

val error : t -> ?trace:int64 -> string -> (string * field) list -> unit
val warn : t -> ?trace:int64 -> string -> (string * field) list -> unit
val info : t -> ?trace:int64 -> string -> (string * field) list -> unit
val debug : t -> ?trace:int64 -> string -> (string * field) list -> unit

val total : t -> int
(** Events accepted since creation (including any evicted from the ring). *)

val dropped : t -> int
(** Events evicted from the ring to make room for newer ones. *)

val tail : ?max:int -> t -> event list
(** Ring contents, oldest first; at most [max] newest events if given. *)

val render : event -> string
(** One logfmt-style line:
    [ts=… level=… trace=… msg="…" key=value …] (trace omitted when 0). *)

val stderr_sink : event -> unit
(** [render] to stderr — the sink used by [dstress serve]. *)

val to_json : event -> Json.t
(** Structured event as JSON (trace as a hex string; omitted when 0). *)
