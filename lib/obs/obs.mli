(** Structured, deterministic tracing and metrics for the DStress runtime.

    The paper's whole evaluation (Figures 3–6) is instrumentation — per-node
    traffic, per-phase cost, OT/AND counts, privacy-budget spend. This module
    is the one place all of that accounting flows through:

    - {b Spans} form the hierarchy [run > round > phase > block/edge task].
      A span's timeline is {e simulated}: its duration is the number of
      ticks explicitly charged inside it with {!advance} (the runtime
      charges one tick per wire byte and 10{^6} ticks per simulated recovery
      second). Wall-clock is recorded alongside each span but excluded from
      the default export, so the exported trace depends only on what the
      protocol did — never on the schedule.
    - {b Metrics} ({!Metrics}) are a typed name→value registry of counters,
      float sums, gauges and histograms that replaces the ad-hoc meter
      fields formerly scattered across [Engine.report] producers.
    - {b Exporters} write Chrome [trace_event] JSON ({!trace_json}) and flat
      metrics JSON/CSV dumps ({!metrics_json}, {!metrics_csv}).

    {b Determinism.} Parallel task batches collect into per-task child
    collectors ({!fork}) merged in task-index order ({!merge_into}): a
    child's spans are shifted onto the parent's cursor and its metrics are
    folded in sorted-name order. Because every charged tick is derived from
    deterministic protocol quantities, the exported trace and metrics are
    bit-identical across {!Dstress_runtime.Executor} backends and GMW slice
    widths on the same seed (locked down by [test/test_obs.ml]).

    {b Cost.} At level {!Off} (the default) every operation is a single
    branch on an immutable shared collector and {!fork} returns its
    argument — no allocation on the hot path, so benchmarks that leave
    observability off are unaffected. *)

type level =
  | Off  (** no-op: nothing is recorded *)
  | Basic  (** metrics plus run/round/phase spans *)
  | Full  (** [Basic] plus per-task spans (vertices, edges, transfer
              attempts) and per-node traffic gauges *)

val level_name : level -> string
val level_of_string : string -> level option

(** Typed metrics registry. Names are free-form dotted strings
    ([transfer.retries], [phase.computation.bytes], ...). The first
    emission under a name fixes its kind; mixing kinds under one name
    raises [Invalid_argument]. *)
module Metrics : sig
  type histogram = { count : int; total : float; min : float; max : float }

  type value =
    | Counter of int  (** additive integer count *)
    | Sum of float  (** additive float accumulator *)
    | Gauge of float  (** last-write-wins float *)
    | Hist of histogram
    | Quantiles of Sketch.t
        (** mergeable quantile sketch — wall-domain only; its estimates
            depend on arrival values, so it must never enter a registry
            that feeds the deterministic tick-domain exports *)

  type t

  val create : unit -> t
  val incr : ?by:int -> t -> string -> unit
  val add : t -> string -> float -> unit
  val set : t -> string -> float -> unit
  val observe : t -> string -> float -> unit

  val observe_sketch : ?alpha:float -> t -> string -> float -> unit
  (** Record into a {!Quantiles} sketch under [name], creating it (with
      [alpha], default {!Sketch.default_alpha}) on first use. [alpha] is
      ignored on an existing sketch. *)

  val find : t -> string -> value option
  val counter : t -> string -> int
  (** 0 when absent; raises [Invalid_argument] on a non-counter. *)

  val sum : t -> string -> float
  (** 0. when absent; reads [Sum] and [Gauge] values. *)

  val hist : t -> string -> histogram option
  (** [None] when absent; raises [Invalid_argument] on a non-histogram.
      Lets consumers (bench harness, profiler) read distributions without
      pattern-matching {!value} internals. *)

  val hist_mean : histogram -> float
  (** [total /. count], or [0.] when [count = 0]. Empty histograms do
      occur — e.g. a [Hist] merged from a registry whose own source was
      empty — so the convention is explicit rather than an error. *)

  val sketch : t -> string -> Sketch.t option
  (** [None] when absent; raises [Invalid_argument] on a non-sketch.
      The returned sketch is live — callers must not mutate it. *)

  val names : t -> string list
  (** Sorted. *)

  val merge_into : dst:t -> t -> unit
  (** Fold counters/sums additively, overwrite gauges, combine histograms
      and quantile sketches — visiting the source in sorted-name order so
      float accumulation is deterministic. *)

  val to_json : t -> Json.t
  (** Histograms carry the derived [mean] alongside count/total/min/max;
      quantile sketches additionally carry [p50]/[p90]/[p99]. *)

  val to_csv : t -> string
end

type span = {
  name : string;
  start : int;  (** simulated ticks from the collector's origin *)
  dur : int;
  depth : int;  (** nesting depth; the containing span is the innermost
                    enclosing span at [depth - 1] *)
  wall : float;  (** measured wall-clock seconds — informational only,
                     excluded from deterministic exports *)
  wall_start : float;
      (** absolute [Unix.gettimeofday] at {!enter} — feeds the opt-in
          wall-clock exports in {!Prof}; like [wall], never part of the
          deterministic tick-based exports. Unchanged by {!merge_into}
          (all collectors of a process share one clock). *)
}

type t

val off : t
(** The shared no-op collector (level {!Off}); safe to use from any domain. *)

val create : level:level -> unit -> t
val level : t -> level

val enabled : t -> bool
(** [level t <> Off]. *)

val detailed : t -> bool
(** [level t = Full]. *)

val metrics : t -> Metrics.t

val incr : ?by:int -> t -> string -> unit
val add : t -> string -> float -> unit
val set : t -> string -> float -> unit
val observe : t -> string -> float -> unit

val advance : t -> int -> unit
(** Charge simulated ticks to the open span (and the cursor). Negative or
    zero amounts are ignored. *)

val clock : t -> int
(** Current cursor position in ticks. *)

val enter : t -> string -> unit
val leave : t -> unit
(** Close the innermost open span; its duration is the ticks {!advance}d
    (including by merged children) since the matching {!enter}. Raises
    [Invalid_argument] when no span is open. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] = {!enter}; [f ()]; {!leave} — exception-safe. *)

val fork : t -> t
(** A fresh child collector at the same level (the shared {!off} when
    disabled) for one parallel task. The child starts at tick 0 and depth
    0; {!merge_into} rebases it under the parent. *)

val merge_into : dst:t -> t -> unit
(** Append a forked child: shift its spans by the parent cursor and open
    depth, fold its metrics, advance the parent cursor by the child's.
    No-op when [dst == child] (the disabled case). Raises
    [Invalid_argument] if the child still has open spans. *)

val spans : t -> span list
(** Closed spans. Siblings appear in timeline order; a parent appears
    after its children (it closes last). *)

val trace_json : ?wall:bool -> t -> string
(** Chrome [trace_event] export (load in [chrome://tracing] or Perfetto):
    one complete ("ph":"X") event per span, [ts]/[dur] in simulated ticks.
    Deterministic byte-for-byte on equal span lists; [~wall:true] adds the
    non-deterministic measured seconds under [args.wall_s]. *)

val metrics_json : t -> string
(** Flat object keyed by metric name, sorted. *)

val metrics_csv : t -> string
(** [name,kind,value] rows, sorted by name; histograms flatten to
    [count=..;total=..;mean=..;min=..;max=..] and quantile sketches to
    the same plus [p50=..;p90=..;p99=..]. *)
