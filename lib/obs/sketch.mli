(** Mergeable log-bucketed quantile sketch (DDSketch-style).

    A sketch summarizes a stream of non-negative floats (wall-clock
    latencies, sizes) into geometrically-spaced buckets so any quantile
    can be estimated with bounded {e relative} error [alpha]: for a
    stream [xs] the estimate of the [q]-quantile [x] satisfies
    [|est - x| <= alpha * x].  Exact count/total/min/max ride along.

    Sketches live in the {e wall} domain — they are never part of the
    deterministic tick-domain exports, which must stay byte-identical
    across executors. *)

type t

val default_alpha : float
(** Relative-error bound used by {!create} when none is given (0.01). *)

val create : ?alpha:float -> unit -> t
(** Fresh empty sketch. [alpha] is the relative-error bound, in (0, 1).
    @raise Invalid_argument if [alpha] is out of range. *)

val alpha : t -> float
(** The relative-error bound this sketch was built with. *)

val add : t -> float -> unit
(** Record one observation. Non-finite values are ignored; values at or
    below ~1e-12 (including negatives) collapse into a zero bucket and
    estimate as exactly [0.]. *)

val count : t -> int
(** Number of recorded observations. *)

val total : t -> float
(** Exact sum of recorded observations. *)

val mean : t -> float
(** Exact mean; [0.] for an empty sketch. *)

val min_value : t -> float
(** Exact minimum; [0.] for an empty sketch. *)

val max_value : t -> float
(** Exact maximum; [0.] for an empty sketch. *)

val is_empty : t -> bool

val quantile : t -> float -> float option
(** [quantile t q] estimates the [q]-quantile ([0. <= q <= 1.]) within
    relative error [alpha t]; [None] when the sketch is empty.
    @raise Invalid_argument if [q] is out of range. *)

val quantile_or : default:float -> t -> float -> float
(** {!quantile} with a default for the empty case. *)

val merge_into : dst:t -> t -> unit
(** Bucket-wise addition of the source into [dst]. Merging is
    associative and commutative on bucket contents and preserves the
    [alpha] error bound.
    @raise Invalid_argument if the two sketches' [alpha] differ. *)

val merge : t -> t -> t
(** Non-destructive {!merge_into} onto a copy of the first argument. *)

val copy : t -> t
(** Independent deep copy. *)

val buckets : t -> (int * int) list
(** Non-zero buckets as [(index, count)], sorted by index. The zero
    bucket is not included (derivable as [count] minus the sum). Exposed
    for tests and serialization. *)

val to_json : t -> Json.t
(** [{"count": _, "total": _, "mean": _, "min": _, "max": _,
     "p50": _, "p90": _, "p99": _}] with quantiles [0.] when empty. *)
