type wall = { median_s : float; min_s : float; p10_s : float; p90_s : float }

type result = {
  name : string;
  params : (string * Json.t) list;
  repeats : int;
  warmup : int;
  wall : wall option;
  throughput : (string * float) option;
  counters : (string * int) list;
  floats : (string * float) list;
}

type suite = { suite : string; results : result list }

type doc = { mode : string; suites : suite list }

let schema = "dstress-bench/1"

let by_name (a, _) (b, _) = compare (a : string) b

let make_result ?(params = []) ?(repeats = 1) ?(warmup = 0) ?wall ?throughput
    ?(counters = []) ?(floats = []) name =
  (* Non-finite floats would print as JSON null and fail to parse back;
     they carry no comparable information, so drop them. *)
  let finite = List.filter (fun (_, v) -> Float.is_finite v) in
  {
    name;
    params;
    repeats;
    warmup;
    wall;
    throughput =
      (match throughput with
      | Some (_, v) when not (Float.is_finite v) -> None
      | t -> t);
    counters = List.sort by_name counters;
    floats = List.sort by_name (finite floats);
  }

let wall_of_samples samples =
  if samples = [] then invalid_arg "Bench_result.wall_of_samples: empty";
  let xs = Array.of_list samples in
  {
    median_s = Dstress_util.Stats.median xs;
    min_s = Array.fold_left Float.min xs.(0) xs;
    p10_s = Dstress_util.Stats.percentile xs 10.0;
    p90_s = Dstress_util.Stats.percentile xs 90.0;
  }

let key r =
  if r.params = [] then r.name
  else r.name ^ " " ^ Json.to_string (Json.Obj r.params)

(* ------------------------------------------------------------------ *)
(* Metrics snapshot                                                    *)
(* ------------------------------------------------------------------ *)

let counters_of_metrics m =
  List.filter_map
    (fun name ->
      match Obs.Metrics.find m name with
      | Some (Obs.Metrics.Counter c) -> Some (name, c)
      | Some (Obs.Metrics.Hist h) -> Some (name ^ ".count", h.count)
      | Some (Obs.Metrics.Quantiles s) -> Some (name ^ ".count", Sketch.count s)
      | _ -> None)
    (Obs.Metrics.names m)
  |> List.sort by_name

let floats_of_metrics m =
  List.concat_map
    (fun name ->
      match Obs.Metrics.find m name with
      | Some (Obs.Metrics.Sum v) | Some (Obs.Metrics.Gauge v) -> [ (name, v) ]
      | Some (Obs.Metrics.Hist h) ->
          [
            (name ^ ".mean", Obs.Metrics.hist_mean h);
            (name ^ ".min", h.min);
            (name ^ ".max", h.max);
          ]
      | Some (Obs.Metrics.Quantiles s) ->
          let q p = Sketch.quantile_or ~default:0.0 s p in
          [
            (name ^ ".mean", Sketch.mean s);
            (name ^ ".min", Sketch.min_value s);
            (name ^ ".max", Sketch.max_value s);
            (name ^ ".p50", q 0.5);
            (name ^ ".p90", q 0.9);
            (name ^ ".p99", q 0.99);
          ]
      | _ -> [])
    (Obs.Metrics.names m)
  |> List.sort by_name

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let wall_to_json w =
  Json.Obj
    [
      ("median_s", Json.Num w.median_s);
      ("min_s", Json.Num w.min_s);
      ("p10_s", Json.Num w.p10_s);
      ("p90_s", Json.Num w.p90_s);
    ]

let result_to_json r =
  let base =
    [
      ("name", Json.Str r.name);
      ("params", Json.Obj r.params);
      ("repeats", Json.Int r.repeats);
      ("warmup", Json.Int r.warmup);
    ]
  in
  let wall =
    match r.wall with None -> [] | Some w -> [ ("wall", wall_to_json w) ]
  in
  let throughput =
    match r.throughput with
    | None -> []
    | Some (unit_, v) ->
        [
          ( "throughput",
            Json.Obj [ ("unit", Json.Str unit_); ("per_s", Json.Num v) ] );
        ]
  in
  let counters =
    [ ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.counters)) ]
  in
  let floats =
    [ ("floats", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) r.floats)) ]
  in
  Json.Obj (base @ wall @ throughput @ counters @ floats)

let suite_to_json s =
  Json.Obj
    [
      ("suite", Json.Str s.suite);
      ("results", Json.List (List.map result_to_json s.results));
    ]

let to_json d =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("mode", Json.Str d.mode);
      ("suites", Json.List (List.map suite_to_json d.suites));
    ]

(* --- parsing ------------------------------------------------------- *)

let ( let* ) = Result.bind

let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

let str_field ctx name j =
  match Json.member name j with
  | Some (Json.Str s) -> Ok s
  | _ -> fail "%s: missing string field %S" ctx name

let int_field ctx name j =
  match Json.member name j with
  | Some (Json.Int i) -> Ok i
  | _ -> fail "%s: missing int field %S" ctx name

let num ctx name = function
  | Json.Num f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | _ -> fail "%s: field %S is not a number" ctx name

let num_field ctx name j =
  match Json.member name j with
  | Some v -> num ctx name v
  | None -> fail "%s: missing number field %S" ctx name

let obj_field ctx name j =
  match Json.member name j with
  | Some (Json.Obj kvs) -> Ok kvs
  | _ -> fail "%s: missing object field %S" ctx name

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let wall_of_json ctx j =
  let* median_s = num_field ctx "median_s" j in
  let* min_s = num_field ctx "min_s" j in
  let* p10_s = num_field ctx "p10_s" j in
  let* p90_s = num_field ctx "p90_s" j in
  Ok { median_s; min_s; p10_s; p90_s }

let result_of_json j =
  let* name = str_field "result" "name" j in
  let ctx = Printf.sprintf "result %S" name in
  let* params = obj_field ctx "params" j in
  let* repeats = int_field ctx "repeats" j in
  let* warmup = int_field ctx "warmup" j in
  let* wall =
    match Json.member "wall" j with
    | None -> Ok None
    | Some w ->
        let* w = wall_of_json ctx w in
        Ok (Some w)
  in
  let* throughput =
    match Json.member "throughput" j with
    | None -> Ok None
    | Some t ->
        let* unit_ = str_field ctx "unit" t in
        let* v = num_field ctx "per_s" t in
        Ok (Some (unit_, v))
  in
  let* counter_kvs = obj_field ctx "counters" j in
  let* counters =
    map_result
      (function
        | k, Json.Int v -> Ok (k, v)
        | k, _ -> fail "%s: counter %S is not an int" ctx k)
      counter_kvs
  in
  let* float_kvs = obj_field ctx "floats" j in
  let* floats =
    map_result (fun (k, v) -> Result.map (fun f -> (k, f)) (num ctx k v)) float_kvs
  in
  Ok { name; params; repeats; warmup; wall; throughput; counters; floats }

let suite_of_json j =
  let* suite = str_field "suite" "suite" j in
  match Json.member "results" j with
  | Some (Json.List rs) ->
      let* results = map_result result_of_json rs in
      Ok { suite; results }
  | _ -> fail "suite %S: missing list field \"results\"" suite

let of_json j =
  let* tag = str_field "doc" "schema" j in
  if tag <> schema then fail "unsupported schema %S (want %S)" tag schema
  else
    let* mode = str_field "doc" "mode" j in
    match Json.member "suites" j with
    | Some (Json.List ss) ->
        let* suites = map_result suite_of_json ss in
        Ok { mode; suites }
    | _ -> fail "doc: missing list field \"suites\""

let write_file path d =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json d));
      output_char oc '\n')

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match Json.parse contents with
      | Error msg -> fail "%s: %s" path msg
      | Ok j -> of_json j)
