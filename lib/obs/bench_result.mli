(** Typed benchmark results and their JSON wire format.

    Every benchmark in [bench/] reports through this schema
    (["dstress-bench/1"]): a {!doc} holds one {!suite} per bench
    experiment, each a list of {!result} rows. A row separates three
    kinds of telemetry with different comparison semantics:

    - [wall]/[throughput]: measured wall-clock — machine-dependent, so
      the diff tool ([Bench_diff]) gates them by a relative threshold;
    - [counters]: integers snapshotted from {!Obs.Metrics} (AND gates,
      OT batches, phase/traffic bytes) — seed-deterministic and
      machine-independent, so any change at all is a drift;
    - [floats]: other derived numbers (projections, rates) —
      informational only, never gated.

    [to_json]/[of_json] round-trip exactly (pinned by [test/test_bench]):
    the printer emits fields in a fixed order and sorts [counters] and
    [floats] by name. *)

type wall = {
  median_s : float;
  min_s : float;
  p10_s : float;
  p90_s : float;
}

type result = {
  name : string;  (** row id, unique within a suite together with [params] *)
  params : (string * Json.t) list;
      (** experiment coordinates (n, nodes, width, ...) — part of the
          row's identity when diffing *)
  repeats : int;  (** timed repetitions summarised in [wall] *)
  warmup : int;  (** untimed repetitions before the timed ones *)
  wall : wall option;  (** [None] for rows that only carry counters *)
  throughput : (string * float) option;
      (** derived [(unit, items-per-second)] from the median repeat *)
  counters : (string * int) list;  (** sorted by name *)
  floats : (string * float) list;  (** sorted by name *)
}

type suite = { suite : string; results : result list }

type doc = { mode : string; suites : suite list }
(** [mode] is ["quick"] or ["full"] — recorded so a diff can warn when
    comparing across modes. *)

val schema : string
(** ["dstress-bench/1"] — stamped into every document. *)

val make_result :
  ?params:(string * Json.t) list ->
  ?repeats:int ->
  ?warmup:int ->
  ?wall:wall ->
  ?throughput:string * float ->
  ?counters:(string * int) list ->
  ?floats:(string * float) list ->
  string ->
  result
(** Row constructor; sorts [counters] and [floats] by name and drops
    non-finite float entries (they have no JSON representation).
    Defaults: no params, 1 repeat, 0 warmup, no wall/throughput, empty
    lists. *)

val wall_of_samples : float list -> wall
(** Summarise raw per-repeat seconds: median/min/p10/p90. Raises
    [Invalid_argument] on an empty list. *)

val key : result -> string
(** Identity of a row within its suite: [name] plus rendered [params]. *)

val to_json : doc -> Json.t
val of_json : Json.t -> (doc, string) Stdlib.result
(** Strict: unknown schema tags and malformed rows are errors. *)

val write_file : string -> doc -> unit
(** Render [to_json] to [path] (with a trailing newline). *)

val read_file : string -> (doc, string) Stdlib.result
(** Parse a document from [path]; IO and parse errors as [Error]. *)

val counters_of_metrics : Obs.Metrics.t -> (string * int) list
(** Snapshot every [Counter] in a registry, sorted by name — the bridge
    from an instrumented run to a result row. *)

val floats_of_metrics : Obs.Metrics.t -> (string * float) list
(** Snapshot [Sum]/[Gauge] values directly and histograms as derived
    [name.mean]/[name.min]/[name.max] (plus a [name.count] entry in
    {!counters_of_metrics}), sorted by name. *)
