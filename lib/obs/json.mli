(** Minimal JSON tree, printer and parser.

    The observability exporters ({!Obs.trace_json}, {!Obs.metrics_json})
    emit Chrome [trace_event] files and flat metrics dumps; nothing else in
    the dependency closure provides JSON, so this module carries just
    enough of RFC 8259 for those formats: a value tree, a deterministic
    printer (object fields in the order given, floats via ["%.12g"],
    non-finite floats as [null]) and a strict recursive-descent parser used
    by the test suite and [bin/ci.sh] to smoke-check exported files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace), deterministic: equal
    trees print to equal strings. *)

val parse : string -> (t, string) result
(** Strict parse of one JSON document (trailing whitespace allowed).
    [Error msg] carries a byte offset. Numbers parse to [Int] when they
    contain no fraction/exponent and fit in [int], to [Num] otherwise;
    [\uXXXX] escapes decode to UTF-8. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)
