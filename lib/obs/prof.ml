type node = {
  label : string;
  count : int;
  total_s : float;
  self_s : float;
  children : node list;
}

type t = { roots : node list; wall_total_s : float }

(* ------------------------------------------------------------------ *)
(* Tree reconstruction                                                 *)
(* ------------------------------------------------------------------ *)

(* A raw (unaggregated) tree node: one span plus its children in
   timeline order. *)
type raw = { span : Obs.span; kids : raw list }

(* [Obs.spans] lists spans in close order: a parent closes after its
   children, siblings close in timeline order. So a single left-to-right
   pass can reparent greedily: keep, per depth, the nodes still waiting
   for a parent; a span at depth [d] adopts everything waiting at depth
   [d + 1]. Spans still open at capture never appear, so their closed
   children may be left waiting — those become extra roots. *)
let build_raw spans =
  let pending : (int, raw list) Hashtbl.t = Hashtbl.create 8 in
  let take d =
    match Hashtbl.find_opt pending d with
    | None -> []
    | Some rs ->
        Hashtbl.remove pending d;
        List.rev rs
  in
  let put d r =
    Hashtbl.replace pending d
      (r :: (match Hashtbl.find_opt pending d with None -> [] | Some rs -> rs))
  in
  List.iter
    (fun (s : Obs.span) -> put s.depth { span = s; kids = take (s.depth + 1) })
    spans;
  let depths = Hashtbl.fold (fun d _ acc -> d :: acc) pending [] in
  List.concat_map take (List.sort compare depths)

(* ------------------------------------------------------------------ *)
(* Label aggregation                                                   *)
(* ------------------------------------------------------------------ *)

(* Merge same-label siblings, preserving first-appearance order. *)
let rec aggregate (raws : raw list) : node list =
  let order = ref [] in
  let groups : (string, raw list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let label = r.span.Obs.name in
      (match Hashtbl.find_opt groups label with
      | None ->
          order := label :: !order;
          Hashtbl.replace groups label [ r ]
      | Some rs -> Hashtbl.replace groups label (r :: rs)))
    raws;
  List.map
    (fun label ->
      let group = List.rev (Hashtbl.find groups label) in
      let count = List.length group in
      let total_s =
        List.fold_left (fun acc r -> acc +. r.span.Obs.wall) 0.0 group
      in
      let children = aggregate (List.concat_map (fun r -> r.kids) group) in
      let child_total =
        List.fold_left (fun acc c -> acc +. c.total_s) 0.0 children
      in
      let self_s = Float.max 0.0 (total_s -. child_total) in
      { label; count; total_s; self_s; children })
    (List.rev !order)

let of_spans spans =
  let roots = aggregate (build_raw spans) in
  let wall_total_s = List.fold_left (fun acc n -> acc +. n.total_s) 0.0 roots in
  { roots; wall_total_s }

let of_obs o = of_spans (Obs.spans o)

(* ------------------------------------------------------------------ *)
(* Flat report                                                         *)
(* ------------------------------------------------------------------ *)

type flat = {
  flat_label : string;
  flat_count : int;
  flat_self_s : float;
  flat_total_s : float;
}

let flatten t =
  let order = ref [] in
  let acc : (string, flat) Hashtbl.t = Hashtbl.create 16 in
  (* [ancestors] is the set of labels on the path to the root: a node
     whose label already appears above it is recursion, and its total is
     already counted by the outermost occurrence. *)
  let rec walk ancestors n =
    let outermost = not (List.mem n.label ancestors) in
    (match Hashtbl.find_opt acc n.label with
    | None ->
        order := n.label :: !order;
        Hashtbl.replace acc n.label
          {
            flat_label = n.label;
            flat_count = n.count;
            flat_self_s = n.self_s;
            flat_total_s = (if outermost then n.total_s else 0.0);
          }
    | Some f ->
        Hashtbl.replace acc n.label
          {
            f with
            flat_count = f.flat_count + n.count;
            flat_self_s = f.flat_self_s +. n.self_s;
            flat_total_s =
              (f.flat_total_s +. if outermost then n.total_s else 0.0);
          });
    List.iter (walk (n.label :: ancestors)) n.children
  in
  List.iter (walk []) t.roots;
  List.rev_map (fun label -> Hashtbl.find acc label) !order
  |> List.sort (fun a b ->
         match compare b.flat_self_s a.flat_self_s with
         | 0 -> compare a.flat_label b.flat_label
         | c -> c)

let top ?(n = 10) t = List.filteri (fun i _ -> i < n) (flatten t)

(* ------------------------------------------------------------------ *)
(* Exports                                                             *)
(* ------------------------------------------------------------------ *)

let rec node_to_json n =
  Json.Obj
    [
      ("label", Json.Str n.label);
      ("count", Json.Int n.count);
      ("total_s", Json.Num n.total_s);
      ("self_s", Json.Num n.self_s);
      ("children", Json.List (List.map node_to_json n.children));
    ]

let flat_to_json f =
  Json.Obj
    [
      ("label", Json.Str f.flat_label);
      ("count", Json.Int f.flat_count);
      ("self_s", Json.Num f.flat_self_s);
      ("total_s", Json.Num f.flat_total_s);
    ]

let to_json t =
  Json.Obj
    [
      ("wall_total_s", Json.Num t.wall_total_s);
      ("tree", Json.List (List.map node_to_json t.roots));
      ("flat", Json.List (List.map flat_to_json (flatten t)));
    ]

let pp_table ?top_n ppf t =
  let rows =
    match top_n with None -> flatten t | Some n -> top ~n t
  in
  let pct s = if t.wall_total_s <= 0.0 then 0.0 else 100.0 *. s /. t.wall_total_s in
  Format.fprintf ppf "%10s %6s %10s %6s %8s  %s@."
    "self(s)" "self%" "total(s)" "tot%" "count" "label";
  List.iter
    (fun f ->
      Format.fprintf ppf "%10.4f %5.1f%% %10.4f %5.1f%% %8d  %s@."
        f.flat_self_s (pct f.flat_self_s) f.flat_total_s (pct f.flat_total_s)
        f.flat_count f.flat_label)
    rows;
  Format.fprintf ppf "%10.4f %5.1f%% %s@." t.wall_total_s 100.0 "  (wall total)"

let trace_wall_json o =
  let spans = Obs.spans o in
  let t0 =
    List.fold_left
      (fun acc (s : Obs.span) -> Float.min acc s.wall_start)
      infinity spans
  in
  let event (s : Obs.span) =
    Json.Obj
      [
        ("name", Json.Str s.name);
        ("cat", Json.Str "dstress-wall");
        ("ph", Json.Str "X");
        ("ts", Json.Num ((s.wall_start -. t0) *. 1e6));
        ("dur", Json.Num (s.wall *. 1e6));
        ("pid", Json.Int 0);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("depth", Json.Int s.depth) ]);
      ]
  in
  Json.to_string
    (Json.Obj
       [
         ("displayTimeUnit", Json.Str "ms");
         ("traceEvents", Json.List (List.map event spans));
       ])
