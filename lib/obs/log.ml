(* Leveled structured logging with a bounded in-memory ring buffer.

   Wall-domain only: log events carry real timestamps and must never
   feed the deterministic tick-domain exports.  The hot path is cheap by
   construction — fields are typed values (no formatting until render),
   and a disabled level short-circuits before any allocation.  The ring
   and sink are behind a mutex because the service pool logs from both
   its serve loop and worker heartbeat threads. *)

type level = Error | Warn | Info | Debug

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let level_name = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string = function
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

type field = Str of string | Int of int | Float of float | Bool of bool

type event = {
  ts : float;
  level : level;
  msg : string;
  trace : int64;
  fields : (string * field) list;
}

type t = {
  mutable threshold : int; (* max enabled severity; -1 disables all *)
  clock : unit -> float;
  sink : (event -> unit) option;
  ring : event option array; (* capacity 0 => no ring *)
  mutable next : int; (* total events accepted; ring slot = next mod cap *)
  mutable dropped : int; (* events evicted from the ring *)
  mu : Mutex.t;
}

let create ?(level = Info) ?(capacity = 256) ?(clock = Unix.gettimeofday) ?sink
    () =
  if capacity < 0 then invalid_arg "Log.create: negative capacity";
  {
    threshold = severity level;
    clock;
    sink;
    ring = Array.make capacity None;
    next = 0;
    dropped = 0;
    mu = Mutex.create ();
  }

(* Shared disabled logger: [enabled] is always false, so it never takes
   the mutex and never allocates. *)
let nop =
  {
    threshold = -1;
    clock = (fun () -> 0.0);
    sink = None;
    ring = [||];
    next = 0;
    dropped = 0;
    mu = Mutex.create ();
  }

let enabled t lvl = severity lvl <= t.threshold
let set_level t lvl = if t != nop then t.threshold <- severity lvl

let log t lvl ?(trace = 0L) msg fields =
  if enabled t lvl then begin
    let ev = { ts = t.clock (); level = lvl; msg; trace; fields } in
    Mutex.lock t.mu;
    let cap = Array.length t.ring in
    if cap > 0 then begin
      let slot = t.next mod cap in
      if t.ring.(slot) <> None then t.dropped <- t.dropped + 1;
      t.ring.(slot) <- Some ev
    end;
    t.next <- t.next + 1;
    (match t.sink with
    | Some f -> ( try f ev with _ -> ())
    | None -> ());
    Mutex.unlock t.mu
  end

let error t ?trace msg fields = log t Error ?trace msg fields
let warn t ?trace msg fields = log t Warn ?trace msg fields
let info t ?trace msg fields = log t Info ?trace msg fields
let debug t ?trace msg fields = log t Debug ?trace msg fields

let total t = t.next
let dropped t = t.dropped

(* Oldest-first tail of the ring. *)
let tail ?max t =
  Mutex.lock t.mu;
  let cap = Array.length t.ring in
  let out = ref [] in
  if cap > 0 then
    for k = 0 to cap - 1 do
      (* Walk slots from oldest to newest. *)
      let slot = (t.next + k) mod cap in
      match t.ring.(slot) with Some ev -> out := ev :: !out | None -> ()
    done;
  Mutex.unlock t.mu;
  let evs = List.rev !out in
  match max with
  | None -> evs
  | Some m ->
      let n = List.length evs in
      if n <= m then evs else List.filteri (fun i _ -> i >= n - m) evs

let quote s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let field_to_string = function
  | Str s -> quote s
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.6g" f
  | Bool b -> string_of_bool b

(* logfmt-style single line: ts=… level=… [trace=…] msg=… k=v … *)
let render ev =
  let b = Buffer.create 96 in
  Buffer.add_string b (Printf.sprintf "ts=%.6f level=%s" ev.ts (level_name ev.level));
  if ev.trace <> 0L then
    Buffer.add_string b (Printf.sprintf " trace=%Lx" ev.trace);
  Buffer.add_string b " msg=";
  Buffer.add_string b (quote ev.msg);
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ' ';
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b (field_to_string v))
    ev.fields;
  Buffer.contents b

let stderr_sink ev =
  prerr_endline (render ev)

let field_to_json = function
  | Str s -> Json.Str s
  | Int i -> Json.Int i
  | Float f -> Json.Num f
  | Bool b -> Json.Bool b

let to_json ev =
  Json.Obj
    ([
       ("ts", Json.Num ev.ts);
       ("level", Json.Str (level_name ev.level));
       ("msg", Json.Str ev.msg);
     ]
    @ (if ev.trace <> 0L then [ ("trace", Json.Str (Printf.sprintf "%Lx" ev.trace)) ] else [])
    @
    match ev.fields with
    | [] -> []
    | fs -> [ ("fields", Json.Obj (List.map (fun (k, v) -> (k, field_to_json v)) fs)) ])
