module Group = Dstress_crypto.Group
module Prg = Dstress_crypto.Prg
module Xfer = Dstress_crypto.Xfer
module Ot_ext = Dstress_crypto.Ot_ext
module Circuit = Dstress_circuit.Circuit
module En_program = Dstress_risk.En_program
module Vertex_program = Dstress_runtime.Vertex_program

type units = {
  ot_seconds_per_and_per_pair : float;
  mpc_bytes_per_and_per_pair : float;
  exp_seconds : float;
  element_bytes : int;
}

let measure_units ?(mode = Ot_ext.Simulation) grp ~seed =
  (* OT unit: run a sizeable extension batch through one session pair. *)
  let sender_prg = Prg.of_string ("units-s:" ^ seed) in
  let receiver_prg = Prg.of_string ("units-r:" ^ seed) in
  let session = Ot_ext.setup ~mode grp (Xfer.create ()) ~sender_prg ~receiver_prg in
  let meter = Xfer.create () in
  let batch = 20000 in
  let pairs = Array.make batch (false, true) in
  let choices = Array.init batch (fun i -> i land 1 = 0) in
  let t0 = Unix.gettimeofday () in
  ignore (Ot_ext.extend_bits session meter ~pairs ~choices);
  let ot_seconds = (Unix.gettimeofday () -. t0) /. float_of_int batch in
  let bytes_per = float_of_int (Xfer.total meter) /. float_of_int batch in
  (* Exponentiation unit. *)
  let prg = Prg.of_string ("units-exp:" ^ seed) in
  let reps = 200 in
  let exps = Array.init reps (fun _ -> Group.random_exponent prg grp) in
  let t1 = Unix.gettimeofday () in
  Array.iter (fun e -> ignore (Group.pow_g grp e)) exps;
  let exp_seconds = (Unix.gettimeofday () -. t1) /. float_of_int reps in
  {
    ot_seconds_per_and_per_pair = ot_seconds;
    mpc_bytes_per_and_per_pair = bytes_per;
    exp_seconds;
    element_bytes = Group.element_bytes grp;
  }

type params = {
  n : int;
  d : int;
  k : int;
  l : int;
  iterations : int option;
  tree_fanout : int;
}

let paper_scale = { n = 1750; d = 100; k = 19; l = 16; iterations = None; tree_fanout = 100 }

type projection = {
  params : params;
  iterations_used : int;
  compute_seconds : float;
  communicate_seconds : float;
  aggregate_seconds : float;
  total_seconds : float;
  mpc_bytes_per_node : float;
  transfer_bytes_per_node : float;
  total_bytes_per_node : float;
  update_ands : int;
}

(* Exact AND counts by building the circuits once per shape; memoized
   because the Fig. 6 sweep evaluates many N at the same D. *)
let update_ands_memo : (int * int, int) Hashtbl.t = Hashtbl.create 16

let update_ands ~l ~d =
  match Hashtbl.find_opt update_ands_memo (l, d) with
  | Some v -> v
  | None ->
      let p = En_program.make ~l ~degree:d ~iterations:1 () in
      let v = Circuit.and_count (Vertex_program.update_circuit p ~degree:d) in
      Hashtbl.replace update_ands_memo (l, d) v;
      v

let agg_ands_memo : (int * int, int) Hashtbl.t = Hashtbl.create 16

let agg_ands ~l ~count =
  match Hashtbl.find_opt agg_ands_memo (l, count) with
  | Some v -> v
  | None ->
      let p = En_program.make ~l ~degree:1 ~iterations:1 () in
      let v = Circuit.and_count (Vertex_program.aggregate_circuit p ~count) in
      Hashtbl.replace agg_ands_memo (l, count) v;
      v

let transfer_wall_seconds u ~k ~l =
  let kp1 = float_of_int (k + 1) and lf = float_of_int l in
  (* Senders encrypt in parallel: one ephemeral plus (k+1)L key
     exponentiations each. The relay then adds noise ((k+1)L + 1 exps,
     the homomorphic multiplications are negligible), the receiver node
     adjusts one ephemeral, and each recipient decrypts its L values
     (parallel across recipients). *)
  let sender = (1.0 +. (kp1 *. lf)) *. u.exp_seconds in
  let relay_noise = (1.0 +. (kp1 *. lf)) *. u.exp_seconds in
  let adjust = u.exp_seconds in
  let decrypt = lf *. u.exp_seconds in
  sender +. relay_noise +. adjust +. decrypt

(* Per-party wall-clock of one block evaluation: each party serves 2k of
   the k(k+1) directional OT sessions, and sender/receiver work per OT is
   roughly balanced. *)
let block_eval_seconds u ~k ~ands =
  2.0 *. float_of_int k *. float_of_int ands *. u.ot_seconds_per_and_per_pair

let project u p =
  let iters =
    match p.iterations with
    | Some i -> i
    | None -> max 1 (int_of_float (ceil (log (float_of_int p.n) /. log 2.0)))
  in
  let kp1 = p.k + 1 in
  let ands = update_ands ~l:p.l ~d:p.d in
  (* Computation: k+1 non-overlapping block memberships per node. *)
  let compute =
    float_of_int iters *. float_of_int kp1 *. block_eval_seconds u ~k:p.k ~ands
  in
  (* Communication: a node's own D edges, serially. *)
  let communicate =
    float_of_int iters *. float_of_int p.d *. transfer_wall_seconds u ~k:p.k ~l:p.l
  in
  (* Aggregation: leaf groups in parallel, then the (noised) root. *)
  let leaf_ands = agg_ands ~l:p.l ~count:(min p.n p.tree_fanout) in
  let root_count = max 1 ((p.n + p.tree_fanout - 1) / p.tree_fanout) in
  let root_ands = agg_ands ~l:p.l ~count:root_count in
  let aggregate =
    block_eval_seconds u ~k:p.k ~ands:leaf_ands
    +. block_eval_seconds u ~k:p.k ~ands:root_ands
  in
  (* --- Traffic ---------------------------------------------------- *)
  let mpc_bytes_per_party ~ands =
    (* A party is an endpoint of 2k of the k(k+1) directional sessions
       and handles every byte of those sessions. *)
    float_of_int ands *. float_of_int (2 * p.k) *. u.mpc_bytes_per_and_per_pair
  in
  let mpc_bytes =
    float_of_int iters *. float_of_int kp1 *. mpc_bytes_per_party ~ands
    +. mpc_bytes_per_party ~ands:leaf_ands
    +. mpc_bytes_per_party ~ands:root_ands
  in
  let eb = float_of_int u.element_bytes in
  let multi c = (float_of_int c +. 1.0) *. eb in
  let kp1f = float_of_int kp1 and df = float_of_int p.d in
  (* Transfer roles per iteration (§5.3): as relay-out i, as relay-in j,
     and as block member (sender and recipient sides) of k+1 blocks. *)
  let as_relay_out = df *. (kp1f +. 1.0) *. multi (kp1 * p.l) in
  let as_relay_in = df *. (multi (kp1 * p.l) +. (kp1f *. multi p.l)) in
  let as_member = kp1f *. df *. (multi (kp1 * p.l) +. multi p.l) in
  let transfer_bytes = float_of_int iters *. (as_relay_out +. as_relay_in +. as_member) in
  {
    params = p;
    iterations_used = iters;
    compute_seconds = compute;
    communicate_seconds = communicate;
    aggregate_seconds = aggregate;
    total_seconds = compute +. communicate +. aggregate;
    mpc_bytes_per_node = mpc_bytes;
    transfer_bytes_per_node = transfer_bytes;
    total_bytes_per_node = mpc_bytes +. transfer_bytes;
    update_ands = ands;
  }

let pp ppf pr =
  let minutes s = s /. 60.0 in
  let mb b = b /. 1048576.0 in
  Format.fprintf ppf
    "@[<v>projection N=%d D=%d k=%d L=%d (I=%d):@,\
     \  compute     %8.1f min@,\
     \  communicate %8.1f min@,\
     \  aggregate   %8.1f min@,\
     \  total       %8.1f min (%.2f h)@,\
     \  traffic/node %7.1f MB (MPC %.1f + transfer %.1f)@]"
    pr.params.n pr.params.d pr.params.k pr.params.l pr.iterations_used
    (minutes pr.compute_seconds) (minutes pr.communicate_seconds)
    (minutes pr.aggregate_seconds) (minutes pr.total_seconds)
    (pr.total_seconds /. 3600.0) (mb pr.total_bytes_per_node)
    (mb pr.mpc_bytes_per_node) (mb pr.transfer_bytes_per_node)
