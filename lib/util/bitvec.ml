(* Bits live in a bool array; vectors are short (tens of bits), so the
   simple representation wins on clarity with no realistic cost. The array
   is never mutated after construction, preserving value semantics. *)
type t = bool array

let length = Array.length

let create n v = Array.make n v

let init = Array.init

let get t i =
  if i < 0 || i >= Array.length t then invalid_arg "Bitvec.get";
  t.(i)

let unsafe_get (t : t) i = Array.unsafe_get t i

let set t i v =
  if i < 0 || i >= Array.length t then invalid_arg "Bitvec.set";
  let t' = Array.copy t in
  t'.(i) <- v;
  t'

let of_int ~bits v =
  if bits < 0 then invalid_arg "Bitvec.of_int";
  Array.init bits (fun i -> (v lsr i) land 1 = 1)

let to_int t =
  if Array.length t > 62 then invalid_arg "Bitvec.to_int: too long";
  let r = ref 0 in
  for i = Array.length t - 1 downto 0 do
    r := (!r lsl 1) lor (if t.(i) then 1 else 0)
  done;
  !r

let to_int_signed t =
  let n = Array.length t in
  if n = 0 then 0
  else
    let u = to_int t in
    if t.(n - 1) then u - (1 lsl n) else u

let check_len a b name = if Array.length a <> Array.length b then invalid_arg name

let xor a b =
  check_len a b "Bitvec.xor";
  Array.mapi (fun i x -> x <> b.(i)) a

let logand a b =
  check_len a b "Bitvec.logand";
  Array.mapi (fun i x -> x && b.(i)) a

let lognot a = Array.map not a

let random prng n = Array.init n (fun _ -> Prng.bool prng)

let of_int64_words ~len words =
  if len < 0 || (len + 63) / 64 > Array.length words then
    invalid_arg "Bitvec.of_int64_words";
  Array.init len (fun i ->
      Int64.logand (Int64.shift_right_logical words.(i lsr 6) (i land 63)) 1L = 1L)

let xor_all = function
  | [] -> invalid_arg "Bitvec.xor_all: empty list"
  | x :: rest -> List.fold_left xor x rest

let popcount t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t

let to_bool_list = Array.to_list
let of_bool_list = Array.of_list

let concat = Array.concat

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length t then invalid_arg "Bitvec.sub";
  Array.sub t pos len

let to_bool_array = Array.copy
let of_bool_array = Array.copy

let equal a b = a = b

let pp ppf t =
  Format.pp_print_string ppf "0b";
  for i = Array.length t - 1 downto 0 do
    Format.pp_print_char ppf (if t.(i) then '1' else '0')
  done
