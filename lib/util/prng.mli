(** Deterministic, splittable pseudo-random number generator.

    All randomness in the library flows through this module so that every
    protocol run, test, and benchmark is reproducible from a single seed.
    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny
    state, good statistical quality, and an O(1) [split] that derives an
    independent stream — which is exactly what we need to hand each simulated
    protocol party its own generator.

    This is NOT a cryptographically secure generator; the crypto layer
    ([Dstress_crypto.Prg]) builds a hash-based PRG on top for key material
    inside simulated parties. For a simulation testbed this distinction is
    about hygiene, not security of deployed systems. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator from a 64-bit seed. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val copy : t -> t
(** Independent snapshot of the generator: the copy and the original
    produce the same stream from this point on, without affecting each
    other. Used to checkpoint and restore draw positions (the GMW
    preprocessing pipeline snapshots per-party generators per eval). *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent
    generator. Streams obtained by [split] do not overlap in practice. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int -> int
(** [bits t n] returns a uniform integer in [\[0, 2^n)] for [0 <= n <= 62]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val int64_range : t -> int64 -> int64
(** [int64_range t bound] is uniform in [\[0, bound)] for positive [bound]. *)

val bool : t -> bool
(** Uniform boolean. *)

val bool_words : t -> int -> int64 array
(** [bool_words t n] draws [n] booleans packed LSB-first into
    [ceil(n/64)] words (bit [i mod 64] of word [i / 64] is draw [i]);
    bits at and above [n] are zero. The draw stream and the state left
    behind are exactly those of [n] successive {!bool} calls — including
    consuming any bits left buffered by earlier {!bool} draws — so word
    and bit consumers can interleave freely. Raises [Invalid_argument]
    when [n < 0]. *)

val float : t -> float
(** Uniform float in [\[0, 1)], with 53 bits of precision. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] uniform bytes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on an
    empty array. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [\[0, n)], in uniformly random order. Raises [Invalid_argument] if
    [k > n] or [k < 0]. *)
