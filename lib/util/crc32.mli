(** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-frame
    integrity check of the runtime transport ({!Dstress_runtime.Transport}).

    A CRC detects wire corruption (bit flips, truncation, framing bugs),
    not adversarial tampering; the protocol-level integrity of transfers
    stays with the SHA-256 MACs in [lib/transfer]. The implementation is
    the standard 256-entry table driven byte loop; values match the
    ubiquitous zlib/PNG/Ethernet convention (["123456789"] ->
    [0xCBF43926]). *)

val digest : ?off:int -> ?len:int -> bytes -> int32
(** CRC-32 of [len] bytes of [b] starting at [off] (defaults: the whole
    buffer). Raises [Invalid_argument] on an out-of-range slice. *)

val string : string -> int32
(** [string s] is {!digest} over the bytes of [s]. *)
