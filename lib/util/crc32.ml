(* Reflected CRC-32, polynomial 0xEDB88320, init/final XOR 0xFFFFFFFF —
   the zlib convention. The table is built once at module init. *)

let table =
  let t = Array.make 256 0l in
  for n = 0 to 255 do
    let c = ref (Int32.of_int n) in
    for _ = 0 to 7 do
      c :=
        if Int32.logand !c 1l <> 0l then
          Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
        else Int32.shift_right_logical !c 1
    done;
    t.(n) <- !c
  done;
  t

let digest ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Crc32.digest: slice out of range";
  let c = ref 0xFFFFFFFFl in
  for i = off to off + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get b i)))) 0xFFl) in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let string s = digest (Bytes.unsafe_of_string s)
