(** Fixed-length bit vectors.

    Used throughout the MPC layer: wire values, XOR shares, and the
    bit-decomposition step of the share-transfer protocol all manipulate
    short vectors of bits. Index 0 is the least-significant bit when a
    vector is interpreted as an integer. *)

type t
(** An immutable vector of bits of fixed length. *)

val length : t -> int

val create : int -> bool -> t
(** [create n v] is the length-[n] vector with every bit equal to [v]. *)

val init : int -> (int -> bool) -> t

val get : t -> int -> bool
(** Raises [Invalid_argument] when out of range. *)

val unsafe_get : t -> int -> bool
(** [get] without the bounds check, for hot loops (the GMW evaluator reads
    every input share once per gate) that have already validated lengths.
    Out-of-range indices are undefined behaviour. *)

val set : t -> int -> bool -> t
(** Functional update. *)

val of_int : bits:int -> int -> t
(** [of_int ~bits v] is the two's-complement encoding of [v] on [bits]
    bits (so negative [v] is accepted). *)

val to_int : t -> int
(** Unsigned interpretation. Raises [Invalid_argument] if the length
    exceeds 62 bits. *)

val to_int_signed : t -> int
(** Two's-complement interpretation. *)

val xor : t -> t -> t
(** Pointwise exclusive-or. Raises [Invalid_argument] on length mismatch. *)

val logand : t -> t -> t
val lognot : t -> t

val random : Prng.t -> int -> t
(** [random prng n] is a uniform length-[n] vector. *)

val of_int64_words : len:int -> int64 array -> t
(** [of_int64_words ~len words] reads [len] bits LSB-first from packed
    words (bit [i mod 64] of [words.(i / 64)] becomes bit [i]) — the
    inverse layout of {!Prng.bool_words}. Raises [Invalid_argument] when
    [len < 0] or [words] is too short. *)

val xor_all : t list -> t
(** XOR of a non-empty list of equal-length vectors — reconstruction of an
    XOR-shared secret. Raises [Invalid_argument] on an empty list. *)

val popcount : t -> int

val to_bool_list : t -> bool list
val of_bool_list : bool list -> t

val concat : t list -> t
(** Concatenation; index 0 of the first vector stays index 0. *)

val sub : t -> pos:int -> len:int -> t
(** Slice of [len] bits starting at [pos].
    Raises [Invalid_argument] when out of range. *)

val to_bool_array : t -> bool array
val of_bool_array : bool array -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Most-significant bit first, e.g. [0b0101] for [of_int ~bits:4 5]. *)
