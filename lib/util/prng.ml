type t = {
  mutable state : int64;
  (* Buffer so single-bit draws consume one mix per 64 bits, not per bit
     (the OT-extension column expansion draws bits by the million). *)
  mutable bitbuf : int64;
  mutable bitcnt : int;
}

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed; bitbuf = 0L; bitcnt = 0 }

let of_int seed = create (Int64.of_int seed)

let copy t = { state = t.state; bitbuf = t.bitbuf; bitcnt = t.bitcnt }

(* SplitMix64 finalizer: two xor-shift-multiply rounds. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  (* A distinct finalization constant decorrelates the child stream. *)
  create (mix (Int64.logxor seed 0xA0761D6478BD642FL))

let bits t n =
  if n < 0 || n > 62 then invalid_arg "Prng.bits: n must be in [0, 62]";
  if n = 0 then 0
  else
    let raw = Int64.shift_right_logical (next_int64 t) (64 - n) in
    Int64.to_int raw

let int64_range t bound =
  if Int64.compare bound 0L <= 0 then invalid_arg "Prng.int64_range: bound <= 0";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let rec loop () =
    let raw = Int64.shift_right_logical (next_int64 t) 1 in
    let v = Int64.rem raw bound in
    if Int64.(compare (sub raw v) (sub (sub max_int bound) 1L)) > 0 then loop ()
    else v
  in
  loop ()

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  Int64.to_int (int64_range t (Int64.of_int bound))

let bool t =
  if t.bitcnt = 0 then begin
    t.bitbuf <- next_int64 t;
    t.bitcnt <- 64
  end;
  let b = Int64.logand t.bitbuf 1L <> 0L in
  t.bitbuf <- Int64.shift_right_logical t.bitbuf 1;
  t.bitcnt <- t.bitcnt - 1;
  b

(* [n] bool draws at once, packed LSB-first into int64 words. The bit
   stream — and the generator state afterwards — is exactly that of [n]
   successive [bool] calls: the leftover [bitbuf] bits are consumed first,
   then whole [next_int64] words, and the remainder is stashed back. The
   OT-extension column expansion draws bits by the million, so filling
   words wholesale instead of bit-at-a-time matters. *)
let bool_words t n =
  if n < 0 then invalid_arg "Prng.bool_words: n < 0";
  let words = Array.make ((n + 63) / 64) 0L in
  let filled = ref 0 in
  while !filled < n do
    if t.bitcnt = 0 then begin
      t.bitbuf <- next_int64 t;
      t.bitcnt <- 64
    end;
    let take = min (n - !filled) t.bitcnt in
    let chunk =
      if take = 64 then t.bitbuf
      else Int64.logand t.bitbuf (Int64.sub (Int64.shift_left 1L take) 1L)
    in
    let idx = !filled lsr 6 and off = !filled land 63 in
    words.(idx) <- Int64.logor words.(idx) (Int64.shift_left chunk off);
    if off + take > 64 then
      words.(idx + 1) <-
        Int64.logor words.(idx + 1) (Int64.shift_right_logical chunk (64 - off));
    t.bitbuf <- (if take = 64 then 0L else Int64.shift_right_logical t.bitbuf take);
    t.bitcnt <- t.bitcnt - take;
    filled := !filled + take
  done;
  words

let float t =
  let raw = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float raw *. (1.0 /. 9007199254740992.0)

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (bits t 8))
  done;
  b

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  let a = Array.init n (fun i -> i) in
  (* Partial Fisher-Yates: only the first k positions need shuffling. *)
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list (Array.sub a 0 k)
