(** Arbitrary-precision natural numbers.

    This is the arithmetic substrate for the ElGamal layer: the container is
    sealed (no [opam install]), so we implement multi-precision arithmetic
    from scratch rather than depending on zarith. Numbers are immutable.

    The representation is a little-endian array of 30-bit limbs — the
    widest width for which the fused Montgomery multiply-and-reduce step
    (two limb products plus carries per inner iteration) stays exact in
    OCaml's 63-bit native [int]. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** Raises [Invalid_argument] on negative input. *)

val to_int : t -> int
(** Raises [Failure] if the value exceeds [max_int]. *)

val to_int_opt : t -> int option

val is_zero : t -> bool
val is_one : t -> bool
val is_even : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Cheap non-cryptographic hash over the limbs, consistent with {!equal}
    (the representation is canonical). Lets hash tables key directly on
    numbers instead of on allocated hex strings. *)

val num_bits : t -> int
(** Position of the highest set bit plus one; [num_bits zero = 0]. *)

val bit : t -> int -> bool
(** [bit t i] is bit [i] (little-endian); [false] beyond [num_bits]. *)

val add : t -> t -> t

val sub : t -> t -> t
(** Raises [Invalid_argument] if the result would be negative. *)

val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b = (q, r)] with [a = q*b + r], [0 <= r < b].
    Raises [Division_by_zero] if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val sqr : t -> t

val pow : t -> int -> t
(** Plain (non-modular) exponentiation; exponent must be non-negative. *)

val gcd : t -> t -> t

val mod_add : t -> t -> m:t -> t
(** Arguments must already be reduced modulo [m]. *)

val mod_sub : t -> t -> m:t -> t
val mod_mul : t -> t -> m:t -> t

val mod_pow : base:t -> exp:t -> m:t -> t
(** Modular exponentiation. Uses Montgomery reduction with a 4-bit window
    when [m] is odd, plain square-and-multiply otherwise.
    Raises [Division_by_zero] if [m] is zero. *)

val mod_inv : t -> m:t -> t
(** Multiplicative inverse modulo [m]. Raises [Not_found] when the inverse
    does not exist (i.e. [gcd t m <> 1]). *)

val of_bytes_be : bytes -> t
val to_bytes_be : t -> bytes
(** Minimal-length big-endian encoding; [to_bytes_be zero] is empty. *)

val to_bytes_be_padded : t -> len:int -> bytes
(** Fixed-width big-endian encoding, left-padded with zero bytes to exactly
    [len] bytes. Raises [Invalid_argument] if the value needs more than
    [len] bytes. *)

val of_hex : string -> t
(** Accepts an even- or odd-length hex string. *)

val to_hex : t -> string

val of_decimal : string -> t
(** Raises [Invalid_argument] on empty strings or non-digit characters. *)

val to_decimal : t -> string

val random_below : Dstress_util.Prng.t -> t -> t
(** [random_below prng bound] is uniform in [\[0, bound)]; [bound] must be
    positive. *)

val random_bits : Dstress_util.Prng.t -> int -> t
(** Uniform value with at most [n] bits. *)

val is_probable_prime : ?rounds:int -> Dstress_util.Prng.t -> t -> bool
(** Miller–Rabin with [rounds] random bases (default 32). *)

val generate_prime : Dstress_util.Prng.t -> bits:int -> t
(** Random probable prime with exactly [bits] bits ([bits >= 2]). *)

val pp : Format.formatter -> t -> unit
(** Decimal rendering. *)

(** Montgomery-form contexts, exposed for hot loops in the crypto layer that
    perform many operations modulo the same odd modulus.

    Internally this is a mutable word-array kernel: fixed-width limb
    buffers sized per modulus, in-place fused CIOS multiplication and SOS
    squaring, with per-context scratch space reused across calls so the
    inner loops never allocate. The API below stays immutable — every
    entry point takes and returns normalized [t] values. *)
module Mont : sig
  type ctx

  val create : t -> ctx
  (** Raises [Invalid_argument] if the modulus is even or < 3. *)

  val modulus : ctx -> t
  val to_mont : ctx -> t -> t
  val from_mont : ctx -> t -> t

  val mul : ctx -> t -> t -> t
  (** Multiplication of two Montgomery-form values. *)

  val pow : ctx -> t -> t -> t
  (** [pow ctx base_mont exp] with Montgomery-form base and plain exponent;
      result in Montgomery form (as for every other entry point below). *)

  type precomp
  (** Fixed-base window table: all powers [base^(d * 2^(w*i))] for a 4–6
      bit window [w], covering exponents up to a fixed bit width. *)

  val precompute : ctx -> t -> ebits:int -> precomp
  (** [precompute ctx base_mont ~ebits] builds the window table of a
      Montgomery-form base for exponents of at most [ebits] bits. *)

  val precomp_bits : precomp -> int
  (** Exponent bit width the table covers. *)

  val pow_precomp : ctx -> precomp -> t -> t
  (** Fixed-base exponentiation through the table: ~[ebits/w] multiplies
      and no squarings. Falls back to {!pow} when the exponent is wider
      than the table. *)

  val pow_base_many : ctx -> t -> t array -> t array
  (** One shared Montgomery-form base raised to many exponents. Small
      batches share one right-to-left squaring chain across the batch;
      large batches build a throwaway window table. *)

  val pow_many : ctx -> (t * t) array -> t array
  (** Independent (base, exponent) pairs, Montgomery-form bases. *)

  val multi_pow : ctx -> (t * t) array -> t
  (** Simultaneous multi-exponentiation [prod_i base_i ^ exp_i] over
      Montgomery-form bases: Shamir's trick (joint combination table) up
      to four bases, Pippenger-style bucket windows beyond. *)
end
