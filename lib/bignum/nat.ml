(* Little-endian arrays of 26-bit limbs, normalized: no trailing zero limb,
   and zero is the empty array. 26-bit limbs keep every intermediate product
   (< 2^52) plus carries inside OCaml's 63-bit native int, so all arithmetic
   below is exact without Int64 boxing. *)

let limb_bits = 26
let base = 1 lsl limb_bits
let mask = base - 1

type t = int array

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let is_zero t = Array.length t = 0
let is_one t = Array.length t = 1 && t.(0) = 1
let is_even t = Array.length t = 0 || t.(0) land 1 = 0

let of_int v =
  if v < 0 then invalid_arg "Nat.of_int: negative";
  if v = 0 then zero
  else begin
    let rec count n acc = if n = 0 then acc else count (n lsr limb_bits) (acc + 1) in
    let len = count v 0 in
    Array.init len (fun i -> (v lsr (i * limb_bits)) land mask)
  end

let to_int_opt t =
  (* max_int has 62 bits = 2 limbs + 10 bits of a third. *)
  let n = Array.length t in
  if n > 3 then None
  else begin
    let rec build i acc =
      if i < 0 then Some acc
      else if acc > (max_int - t.(i)) lsr limb_bits then None
      else build (i - 1) ((acc lsl limb_bits) lor t.(i))
    in
    build (n - 1) 0
  end

let to_int t =
  match to_int_opt t with
  | Some v -> v
  | None -> failwith "Nat.to_int: value exceeds max_int"

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

(* FNV-style limb fold. Normalization makes the representation canonical,
   so [equal a b] implies [hash a = hash b]; masking keeps it positive. *)
let hash (t : t) =
  Array.fold_left (fun acc limb -> ((acc * 16777619) lxor limb) land max_int)
    (Array.length t + 2166136261) t

let num_bits t =
  let n = Array.length t in
  if n = 0 then 0
  else begin
    let top = t.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + width top 0
  end

let bit t i =
  let limb = i / limb_bits in
  limb < Array.length t && (t.(limb) lsr (i mod limb_bits)) land 1 = 1

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let x =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- x land mask;
    carry := x lsr limb_bits
  done;
  r.(n) <- !carry;
  normalize r

let sub a b =
  if compare a b < 0 then invalid_arg "Nat.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let x = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    r.(i) <- x land mask;
    borrow := if x < 0 then 1 else 0
  done;
  normalize r

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let x = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- x land mask;
          carry := x lsr limb_bits
        done;
        r.(i + lb) <- r.(i + lb) + !carry
      end
    done;
    normalize r
  end

let sqr a = mul a a

let shift_left t k =
  if k < 0 then invalid_arg "Nat.shift_left";
  if is_zero t || k = 0 then t
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let n = Array.length t in
    let r = Array.make (n + limbs + 1) 0 in
    for i = 0 to n - 1 do
      let v = t.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land mask);
      r.(i + limbs + 1) <- v lsr limb_bits
    done;
    normalize r
  end

let shift_right t k =
  if k < 0 then invalid_arg "Nat.shift_right";
  if is_zero t || k = 0 then t
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let n = Array.length t in
    if limbs >= n then zero
    else begin
      let r = Array.make (n - limbs) 0 in
      for i = 0 to n - limbs - 1 do
        let lo = t.(i + limbs) lsr bits in
        let hi =
          if bits = 0 || i + limbs + 1 >= n then 0
          else (t.(i + limbs + 1) lsl (limb_bits - bits)) land mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

(* Short division by a single limb. *)
let divmod_limb a d =
  let n = Array.length a in
  let q = Array.make n 0 in
  let r = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, !r)

(* Knuth algorithm D. Preconditions: [b] has >= 2 limbs and [a >= b]. *)
let divmod_long a b =
  let nb = Array.length b in
  (* Normalize so the top limb of the divisor has its high bit set; this
     guarantees the quotient-digit estimate is off by at most 2. *)
  let rec top_width v acc = if v = 0 then acc else top_width (v lsr 1) (acc + 1) in
  let shift = limb_bits - top_width b.(nb - 1) 0 in
  let u0 = shift_left a shift and v = shift_left b shift in
  let n = Array.length v in
  let mu = Array.length u0 in
  let m = mu - n in
  (* Working copy of the dividend with one extra high limb. *)
  let u = Array.make (mu + 1) 0 in
  Array.blit u0 0 u 0 mu;
  let q = Array.make (m + 1) 0 in
  let vtop = v.(n - 1) and vnext = v.(n - 2) in
  for j = m downto 0 do
    let num = (u.(j + n) lsl limb_bits) lor u.(j + n - 1) in
    let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
    if !qhat >= base then begin
      qhat := base - 1;
      rhat := num - ((base - 1) * vtop)
    end;
    let continue = ref true in
    while !continue && !rhat < base do
      if !qhat * vnext > (!rhat lsl limb_bits) lor u.(j + n - 2) then begin
        decr qhat;
        rhat := !rhat + vtop
      end
      else continue := false
    done;
    (* Multiply-and-subtract qhat * v from u[j .. j+n]. *)
    let carry = ref 0 and borrow = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr limb_bits;
      let d = u.(j + i) - (p land mask) - !borrow in
      u.(j + i) <- d land mask;
      borrow := if d < 0 then 1 else 0
    done;
    let d = u.(j + n) - !carry - !borrow in
    u.(j + n) <- d land mask;
    if d < 0 then begin
      (* Estimate was one too high: add the divisor back. *)
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let s = u.(j + i) + v.(i) + !c in
        u.(j + i) <- s land mask;
        c := s lsr limb_bits
      done;
      u.(j + n) <- (u.(j + n) + !c) land mask
    end;
    q.(j) <- !qhat
  done;
  let r = normalize (Array.sub u 0 n) in
  (normalize q, shift_right r shift)

let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_limb a b.(0) in
    (q, of_int r)
  end
  else divmod_long a b

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow b e =
  if e < 0 then invalid_arg "Nat.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (sqr b) (e lsr 1)
    end
  in
  go one b e

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

let mod_add a b ~m =
  let s = add a b in
  if compare s m >= 0 then sub s m else s

let mod_sub a b ~m = if compare a b >= 0 then sub a b else sub (add a m) b

let mod_mul a b ~m = rem (mul a b) m

(* ------------------------------------------------------------------ *)
(* Montgomery arithmetic (odd moduli).                                 *)
(* ------------------------------------------------------------------ *)

module Mont = struct
  type ctx = {
    m : t; (* odd modulus, k limbs *)
    k : int;
    m0' : int; (* -m[0]^{-1} mod 2^26 *)
    r2 : t; (* (2^26)^{2k} mod m, converts into Montgomery form *)
  }

  let modulus ctx = ctx.m

  (* Inverse of an odd limb modulo 2^26 by Newton–Hensel lifting: each step
     doubles the number of correct low bits, so five steps from a 1-bit
     seed cover 26 bits. *)
  let inv_limb m0 =
    let x = ref m0 in
    for _ = 1 to 5 do
      x := !x * (2 - (m0 * !x)) land mask
    done;
    !x land mask

  let create m =
    if is_even m || compare m (of_int 3) < 0 then
      invalid_arg "Nat.Mont.create: modulus must be odd and >= 3";
    let k = Array.length m in
    let m0' = (base - inv_limb m.(0)) land mask in
    let r2 = rem (shift_left one (2 * k * limb_bits)) m in
    { m; k; m0' ; r2 }

  (* CIOS multiplication: interleaved multiply and reduce. Both inputs are
     Montgomery-form values < m (k limbs, zero-padded). *)
  let mul ctx a b =
    let k = ctx.k in
    let m = ctx.m in
    let aa = Array.make k 0 and bb = Array.make k 0 in
    Array.blit a 0 aa 0 (Array.length a);
    Array.blit b 0 bb 0 (Array.length b);
    let tloc = Array.make (k + 2) 0 in
    for i = 0 to k - 1 do
      let ai = aa.(i) in
      (* t <- t + ai * b *)
      let c = ref 0 in
      for j = 0 to k - 1 do
        let x = tloc.(j) + (ai * bb.(j)) + !c in
        tloc.(j) <- x land mask;
        c := x lsr limb_bits
      done;
      let x = tloc.(k) + !c in
      tloc.(k) <- x land mask;
      tloc.(k + 1) <- tloc.(k + 1) + (x lsr limb_bits);
      (* t <- (t + mu * m) / base *)
      let mu = tloc.(0) * ctx.m0' land mask in
      let c = ref ((tloc.(0) + (mu * m.(0))) lsr limb_bits) in
      for j = 1 to k - 1 do
        let x = tloc.(j) + (mu * m.(j)) + !c in
        tloc.(j - 1) <- x land mask;
        c := x lsr limb_bits
      done;
      let x = tloc.(k) + !c in
      tloc.(k - 1) <- x land mask;
      let x2 = tloc.(k + 1) + (x lsr limb_bits) in
      tloc.(k) <- x2 land mask;
      tloc.(k + 1) <- x2 lsr limb_bits
    done;
    let r = normalize (Array.sub tloc 0 (k + 1)) in
    if compare r m >= 0 then sub r m else r

  let to_mont ctx x = mul ctx x ctx.r2

  let from_mont ctx x = mul ctx x one

  (* 4-bit fixed-window exponentiation. *)
  let pow ctx base_mont exp =
    let bits = num_bits exp in
    if bits = 0 then to_mont ctx one
    else begin
      let table = Array.make 16 (to_mont ctx one) in
      for i = 1 to 15 do
        table.(i) <- mul ctx table.(i - 1) base_mont
      done;
      let nwin = (bits + 3) / 4 in
      let acc = ref table.(0) in
      for w = nwin - 1 downto 0 do
        if w < nwin - 1 then
          for _ = 1 to 4 do
            acc := mul ctx !acc !acc
          done;
        let d =
          (if bit exp ((4 * w) + 3) then 8 else 0)
          lor (if bit exp ((4 * w) + 2) then 4 else 0)
          lor (if bit exp ((4 * w) + 1) then 2 else 0)
          lor (if bit exp (4 * w) then 1 else 0)
        in
        if d <> 0 then acc := mul ctx !acc table.(d)
      done;
      !acc
    end
end

let mod_pow ~base:b ~exp ~m =
  if is_zero m then raise Division_by_zero;
  if is_one m then zero
  else if is_even m then begin
    (* Rare in this code base (our moduli are odd primes); plain
       square-and-multiply keeps the even case correct. *)
    let rec go acc b i =
      if i >= num_bits exp then acc
      else begin
        let acc = if bit exp i then mod_mul acc b ~m else acc in
        go acc (mod_mul b b ~m) (i + 1)
      end
    in
    go one (rem b m) 0
  end
  else begin
    let ctx = Mont.create m in
    Mont.from_mont ctx (Mont.pow ctx (Mont.to_mont ctx (rem b m)) exp)
  end

(* Extended Euclid with signed cofactors, tracked as (negative?, magnitude). *)
let mod_inv a ~m =
  if is_zero m then raise Division_by_zero;
  let signed_sub (sa, va) (sb, vb) =
    (* (sa,va) - (sb,vb) *)
    if sa = sb then
      if compare va vb >= 0 then (sa, sub va vb) else (not sa, sub vb va)
    else (sa, add va vb)
  in
  let rec go (r0, s0) (r1, s1) =
    if is_zero r1 then (r0, s0)
    else begin
      let q, r2 = divmod r0 r1 in
      let qs1 = (fst s1, mul q (snd s1)) in
      go (r1, s1) (r2, signed_sub s0 qs1)
    end
  in
  let g, (neg, v) = go (rem a m, (false, one)) (m, (false, zero)) in
  if not (is_one g) then raise Not_found;
  let v = rem v m in
  if neg && not (is_zero v) then sub m v else v

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)
(* ------------------------------------------------------------------ *)

let of_bytes_be b =
  let n = Bytes.length b in
  let acc = ref zero in
  for i = 0 to n - 1 do
    acc := add (shift_left !acc 8) (of_int (Char.code (Bytes.get b i)))
  done;
  !acc

let to_bytes_be t =
  let nbytes = (num_bits t + 7) / 8 in
  let out = Bytes.create nbytes in
  for i = 0 to nbytes - 1 do
    let byte = ref 0 in
    for j = 0 to 7 do
      if bit t ((8 * (nbytes - 1 - i)) + j) then byte := !byte lor (1 lsl j)
    done;
    Bytes.set out i (Char.chr !byte)
  done;
  out

let of_hex s =
  let s = if String.length s mod 2 = 1 then "0" ^ s else s in
  of_bytes_be (Dstress_util.Hex.decode s)

let to_hex t =
  let s = Dstress_util.Hex.encode (to_bytes_be t) in
  if s = "" then "0" else s

let chunk_pow = 10_000_000 (* 10^7 < 2^26: fits a single limb *)
let chunk_digits = 7

let of_decimal s =
  if s = "" then invalid_arg "Nat.of_decimal: empty";
  String.iter
    (fun c -> if c < '0' || c > '9' then invalid_arg "Nat.of_decimal: bad digit")
    s;
  let acc = ref zero in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    let take = min chunk_digits (n - !i) in
    let chunk = int_of_string (String.sub s !i take) in
    acc := add (mul !acc (of_int (int_of_float (10.0 ** float_of_int take)))) (of_int chunk);
    i := !i + take
  done;
  !acc

let to_decimal t =
  if is_zero t then "0"
  else begin
    let rec go t acc =
      if is_zero t then acc
      else begin
        let q, r = divmod_limb t chunk_pow in
        if is_zero q then string_of_int r :: acc
        else go q (Printf.sprintf "%07d" r :: acc)
      end
    in
    String.concat "" (go t [])
  end

let pp ppf t = Format.pp_print_string ppf (to_decimal t)

(* ------------------------------------------------------------------ *)
(* Randomness and primality                                            *)
(* ------------------------------------------------------------------ *)

let random_bits prng n =
  if n < 0 then invalid_arg "Nat.random_bits";
  let limbs = (n + limb_bits - 1) / limb_bits in
  let r = Array.init limbs (fun _ -> Dstress_util.Prng.bits prng limb_bits) in
  let extra = (limbs * limb_bits) - n in
  if limbs > 0 && extra > 0 then r.(limbs - 1) <- r.(limbs - 1) lsr extra;
  normalize r

let random_below prng bound =
  if is_zero bound then invalid_arg "Nat.random_below: zero bound";
  let nb = num_bits bound in
  let rec loop () =
    let candidate = random_bits prng nb in
    if compare candidate bound < 0 then candidate else loop ()
  in
  loop ()

let is_probable_prime ?(rounds = 32) prng n =
  if compare n two < 0 then false
  else if compare n (of_int 4) < 0 then true (* 2 and 3 *)
  else if is_even n then false
  else begin
    let n1 = sub n one in
    (* n - 1 = d * 2^s with d odd *)
    let rec split d s = if is_even d then split (shift_right d 1) (s + 1) else (d, s) in
    let d, s = split n1 0 in
    let try_base a =
      let x = ref (mod_pow ~base:a ~exp:d ~m:n) in
      if is_one !x || equal !x n1 then true
      else begin
        let rec squares i =
          if i >= s - 1 then false
          else begin
            x := mod_mul !x !x ~m:n;
            if equal !x n1 then true else squares (i + 1)
          end
        in
        squares 0
      end
    in
    let rec rounds_loop i =
      if i = rounds then true
      else begin
        let a = add two (random_below prng (sub n (of_int 3))) in
        if try_base a then rounds_loop (i + 1) else false
      end
    in
    rounds_loop 0
  end

let generate_prime prng ~bits =
  if bits < 2 then invalid_arg "Nat.generate_prime: bits < 2";
  let rec loop () =
    let c = random_bits prng (bits - 1) in
    (* Force the top bit (exact width) and the low bit (oddness). *)
    let c = add (shift_left one (bits - 1)) c in
    let c = if is_even c then add c one else c in
    if is_probable_prime prng c then c else loop ()
  in
  loop ()
