(* Little-endian arrays of 30-bit limbs, normalized: no trailing zero limb,
   and zero is the empty array. 30 bits is the widest limb for which the
   fused Montgomery step below stays exact in OCaml's 63-bit native int:
   its accumulator t + a_i*b_j + mu*m_j + carry is bounded by
   (2^30-1) + 2*(2^30-1)^2 + (2^31+2) < 2^61 < max_int. (At 31 bits the
   two limb products alone exceed 2^63.) Schoolbook multiplication and
   Knuth division have strictly smaller intermediates, so everything here
   is exact without Int64 boxing. *)

let limb_bits = 30
let base = 1 lsl limb_bits
let mask = base - 1

type t = int array

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let is_zero t = Array.length t = 0
let is_one t = Array.length t = 1 && t.(0) = 1
let is_even t = Array.length t = 0 || t.(0) land 1 = 0

let of_int v =
  if v < 0 then invalid_arg "Nat.of_int: negative";
  if v = 0 then zero
  else begin
    let rec count n acc = if n = 0 then acc else count (n lsr limb_bits) (acc + 1) in
    let len = count v 0 in
    Array.init len (fun i -> (v lsr (i * limb_bits)) land mask)
  end

let to_int_opt t =
  (* max_int has 62 bits = 2 limbs + 2 bits of a third. *)
  let n = Array.length t in
  if n > 3 then None
  else begin
    let rec build i acc =
      if i < 0 then Some acc
      else if acc > (max_int - t.(i)) lsr limb_bits then None
      else build (i - 1) ((acc lsl limb_bits) lor t.(i))
    in
    build (n - 1) 0
  end

let to_int t =
  match to_int_opt t with
  | Some v -> v
  | None -> failwith "Nat.to_int: value exceeds max_int"

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

(* FNV-style limb fold. Normalization makes the representation canonical,
   so [equal a b] implies [hash a = hash b]; masking keeps it positive. *)
let hash (t : t) =
  Array.fold_left (fun acc limb -> ((acc * 16777619) lxor limb) land max_int)
    (Array.length t + 2166136261) t

let num_bits t =
  let n = Array.length t in
  if n = 0 then 0
  else begin
    let top = t.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + width top 0
  end

let bit t i =
  let limb = i / limb_bits in
  limb < Array.length t && (t.(limb) lsr (i mod limb_bits)) land 1 = 1

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let x =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- x land mask;
    carry := x lsr limb_bits
  done;
  r.(n) <- !carry;
  normalize r

let sub a b =
  if compare a b < 0 then invalid_arg "Nat.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let x = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    r.(i) <- x land mask;
    borrow := if x < 0 then 1 else 0
  done;
  normalize r

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let x = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- x land mask;
          carry := x lsr limb_bits
        done;
        r.(i + lb) <- r.(i + lb) + !carry
      end
    done;
    normalize r
  end

let sqr a = mul a a

let shift_left t k =
  if k < 0 then invalid_arg "Nat.shift_left";
  if is_zero t || k = 0 then t
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let n = Array.length t in
    let r = Array.make (n + limbs + 1) 0 in
    for i = 0 to n - 1 do
      let v = t.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land mask);
      r.(i + limbs + 1) <- v lsr limb_bits
    done;
    normalize r
  end

let shift_right t k =
  if k < 0 then invalid_arg "Nat.shift_right";
  if is_zero t || k = 0 then t
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let n = Array.length t in
    if limbs >= n then zero
    else begin
      let r = Array.make (n - limbs) 0 in
      for i = 0 to n - limbs - 1 do
        let lo = t.(i + limbs) lsr bits in
        let hi =
          if bits = 0 || i + limbs + 1 >= n then 0
          else (t.(i + limbs + 1) lsl (limb_bits - bits)) land mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

(* Short division by a single limb. *)
let divmod_limb a d =
  let n = Array.length a in
  let q = Array.make n 0 in
  let r = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, !r)

(* Knuth algorithm D. Preconditions: [b] has >= 2 limbs and [a >= b]. *)
let divmod_long a b =
  let nb = Array.length b in
  (* Normalize so the top limb of the divisor has its high bit set; this
     guarantees the quotient-digit estimate is off by at most 2. *)
  let rec top_width v acc = if v = 0 then acc else top_width (v lsr 1) (acc + 1) in
  let shift = limb_bits - top_width b.(nb - 1) 0 in
  let u0 = shift_left a shift and v = shift_left b shift in
  let n = Array.length v in
  let mu = Array.length u0 in
  let m = mu - n in
  (* Working copy of the dividend with one extra high limb. *)
  let u = Array.make (mu + 1) 0 in
  Array.blit u0 0 u 0 mu;
  let q = Array.make (m + 1) 0 in
  let vtop = v.(n - 1) and vnext = v.(n - 2) in
  for j = m downto 0 do
    let num = (u.(j + n) lsl limb_bits) lor u.(j + n - 1) in
    let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
    if !qhat >= base then begin
      qhat := base - 1;
      rhat := num - ((base - 1) * vtop)
    end;
    let continue = ref true in
    while !continue && !rhat < base do
      if !qhat * vnext > (!rhat lsl limb_bits) lor u.(j + n - 2) then begin
        decr qhat;
        rhat := !rhat + vtop
      end
      else continue := false
    done;
    (* Multiply-and-subtract qhat * v from u[j .. j+n]. *)
    let carry = ref 0 and borrow = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr limb_bits;
      let d = u.(j + i) - (p land mask) - !borrow in
      u.(j + i) <- d land mask;
      borrow := if d < 0 then 1 else 0
    done;
    let d = u.(j + n) - !carry - !borrow in
    u.(j + n) <- d land mask;
    if d < 0 then begin
      (* Estimate was one too high: add the divisor back. *)
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let s = u.(j + i) + v.(i) + !c in
        u.(j + i) <- s land mask;
        c := s lsr limb_bits
      done;
      u.(j + n) <- (u.(j + n) + !c) land mask
    end;
    q.(j) <- !qhat
  done;
  let r = normalize (Array.sub u 0 n) in
  (normalize q, shift_right r shift)

let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_limb a b.(0) in
    (q, of_int r)
  end
  else divmod_long a b

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow b e =
  if e < 0 then invalid_arg "Nat.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (sqr b) (e lsr 1)
    end
  in
  go one b e

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

let mod_add a b ~m =
  let s = add a b in
  if compare s m >= 0 then sub s m else s

let mod_sub a b ~m = if compare a b >= 0 then sub a b else sub (add a m) b

let mod_mul a b ~m = rem (mul a b) m

(* ------------------------------------------------------------------ *)
(* Montgomery arithmetic (odd moduli).                                 *)
(* ------------------------------------------------------------------ *)

module Mont = struct
  (* Mutable word-array kernel. Internally a value is a little-endian
     [int array] of exactly [k] limbs (zero-padded), always < m and in
     Montgomery form (x*R mod m, R = base^k). The exported entry points
     keep the immutable normalized [t] representation at the boundary;
     the buffers below are per-context scratch or per-call staging, so
     the inner multiplication loops never allocate. *)

  type scratch = {
    s_tmp : int array; (* k + 1: fused-CIOS accumulator *)
    s_sq : int array; (* 2k + 1: squaring buffer *)
    s_wa : int array; (* k: operand staging *)
    s_wb : int array; (* k *)
    s_acc : int array; (* k: exponentiation accumulator *)
  }

  type ctx = {
    m : t; (* odd modulus, normalized *)
    mk : int array; (* the modulus as exactly k limbs *)
    k : int;
    m0' : int; (* -m[0]^{-1} mod base *)
    r2w : int array; (* R^2 mod m: converts into Montgomery form *)
    onew : int array; (* R mod m, i.e. 1 in Montgomery form *)
    pool : scratch option Atomic.t;
        (* One-slot lock-free scratch pool: sequential callers reuse the
           same buffers allocation-free; a domain that finds the slot empty
           allocates a fresh scratch, and at most one copy is retained. *)
  }

  let modulus ctx = ctx.m

  let alloc_scratch k =
    {
      s_tmp = Array.make (k + 1) 0;
      s_sq = Array.make ((2 * k) + 1) 0;
      s_wa = Array.make k 0;
      s_wb = Array.make k 0;
      s_acc = Array.make k 0;
    }

  let with_scratch ctx f =
    let s =
      match Atomic.exchange ctx.pool None with
      | Some s -> s
      | None -> alloc_scratch ctx.k
    in
    let r = f s in
    Atomic.set ctx.pool (Some s);
    r

  (* Inverse of an odd limb modulo 2^30 by Newton–Hensel lifting: the seed
     x = m0 is correct to 3 low bits (odd^2 = 1 mod 8) and each step doubles
     the count, so five steps reach 48 >= 30 correct bits. *)
  let inv_limb m0 =
    let x = ref m0 in
    for _ = 1 to 5 do
      x := !x * (2 - (m0 * !x)) land mask
    done;
    !x land mask

  let create m =
    if is_even m || compare m (of_int 3) < 0 then
      invalid_arg "Nat.Mont.create: modulus must be odd and >= 3";
    let k = Array.length m in
    let pad x =
      let w = Array.make k 0 in
      Array.blit x 0 w 0 (Array.length x);
      w
    in
    let m0' = (base - inv_limb m.(0)) land mask in
    let r2 = rem (shift_left one (2 * k * limb_bits)) m in
    let one_r = rem (shift_left one (k * limb_bits)) m in
    {
      m;
      mk = Array.copy m;
      k;
      m0';
      r2w = pad r2;
      onew = pad one_r;
      pool = Atomic.make (Some (alloc_scratch k));
    }

  (* --- word-level kernel ------------------------------------------- *)

  (* [dst] <- [x] as exactly k limbs; [x] must have <= k limbs. *)
  let word_blit ctx x dst =
    let n = Array.length x in
    Array.blit x 0 dst 0 n;
    Array.fill dst n (ctx.k - n) 0

  let word_fresh ctx x =
    let dst = Array.make ctx.k 0 in
    Array.blit x 0 dst 0 (Array.length x);
    dst

  let word_to_t w = normalize (Array.copy w)

  (* Does the low-k-limb window of [w] exceed or equal the modulus? *)
  let word_ge_m ctx w =
    let rec go i =
      i < 0
      || (let wi = Array.unsafe_get w i and mi = Array.unsafe_get ctx.mk i in
          if wi <> mi then wi > mi else go (i - 1))
    in
    go (ctx.k - 1)

  (* Move a (k+1)-limb value < 2m (top limb [top] in {0,1}) into [dst] as a
     canonical k-limb word, subtracting m once if needed. The final borrow
     of the subtraction cancels against [top]. *)
  let word_reduce_into ctx src ~top dst =
    let k = ctx.k and m = ctx.mk in
    if top <> 0 || word_ge_m ctx src then begin
      let borrow = ref 0 in
      for i = 0 to k - 1 do
        let x = Array.unsafe_get src i - Array.unsafe_get m i - !borrow in
        Array.unsafe_set dst i (x land mask);
        borrow := if x < 0 then 1 else 0
      done
    end
    else Array.blit src 0 dst 0 k

  (* dst <- a*b*R^-1 mod m. Fused CIOS: each pass over a limb of [a] does
     the multiply step and the Montgomery reduction step in one inner loop
     (one load/store sweep of the accumulator instead of two). [tmp] is the
     (k+1)-limb accumulator; [dst] may alias [a] or [b]. *)
  let cios ctx ~tmp a b dst =
    let k = ctx.k and m = ctx.mk and m0' = ctx.m0' in
    Array.fill tmp 0 (k + 1) 0;
    for i = 0 to k - 1 do
      let ai = Array.unsafe_get a i in
      let t0 = Array.unsafe_get tmp 0 + (ai * Array.unsafe_get b 0) in
      let mu = t0 * m0' land mask in
      let c = ref ((t0 + (mu * Array.unsafe_get m 0)) lsr limb_bits) in
      for j = 1 to k - 1 do
        let x =
          Array.unsafe_get tmp j + (ai * Array.unsafe_get b j)
          + (mu * Array.unsafe_get m j)
          + !c
        in
        Array.unsafe_set tmp (j - 1) (x land mask);
        c := x lsr limb_bits
      done;
      let x = Array.unsafe_get tmp k + !c in
      Array.unsafe_set tmp (k - 1) (x land mask);
      Array.unsafe_set tmp k (x lsr limb_bits)
    done;
    word_reduce_into ctx tmp ~top:tmp.(k) dst

  (* dst <- a^2*R^-1 mod m. Routed through the fused multiply: a separate
     SOS squaring (schoolbook-with-doubling then a reduction sweep) was
     measured ~30% slower here despite ~25% fewer limb products — the two
     extra memory sweeps over the double-width buffer cost more than the
     products saved. [sq] doubles as the accumulator; [dst] may alias
     [a]. *)
  let sqr ctx ~sq a dst = cios ctx ~tmp:sq a a dst

  let digit_of exp ~w i =
    let d = ref 0 in
    for b = w - 1 downto 0 do
      d := (!d lsl 1) lor (if bit exp ((i * w) + b) then 1 else 0)
    done;
    !d

  (* acc <- base_w ^ exp, 4-bit fixed window over k-limb words. [acc] must
     not alias [base_w]. *)
  let pow_words ctx ~s base_w exp acc =
    let bits = num_bits exp in
    if bits = 0 then Array.blit ctx.onew 0 acc 0 ctx.k
    else begin
      let table = Array.init 16 (fun _ -> Array.make ctx.k 0) in
      Array.blit ctx.onew 0 table.(0) 0 ctx.k;
      for i = 1 to 15 do
        cios ctx ~tmp:s.s_tmp table.(i - 1) base_w table.(i)
      done;
      let nwin = (bits + 3) / 4 in
      Array.blit ctx.onew 0 acc 0 ctx.k;
      for w = nwin - 1 downto 0 do
        if w < nwin - 1 then
          for _ = 1 to 4 do
            sqr ctx ~sq:s.s_sq acc acc
          done;
        let d = digit_of exp ~w:4 w in
        if d <> 0 then cios ctx ~tmp:s.s_tmp acc table.(d) acc
      done
    end

  let mul ctx a b =
    with_scratch ctx (fun s ->
        word_blit ctx a s.s_wa;
        word_blit ctx b s.s_wb;
        cios ctx ~tmp:s.s_tmp s.s_wa s.s_wb s.s_wa;
        word_to_t s.s_wa)

  let to_mont ctx x =
    let x = if Array.length x > ctx.k || compare x ctx.m >= 0 then rem x ctx.m else x in
    with_scratch ctx (fun s ->
        word_blit ctx x s.s_wa;
        cios ctx ~tmp:s.s_tmp s.s_wa ctx.r2w s.s_wa;
        word_to_t s.s_wa)

  let from_mont ctx x =
    with_scratch ctx (fun s ->
        word_blit ctx x s.s_wa;
        word_blit ctx one s.s_wb;
        cios ctx ~tmp:s.s_tmp s.s_wa s.s_wb s.s_wa;
        word_to_t s.s_wa)

  let pow ctx base_mont exp =
    with_scratch ctx (fun s ->
        word_blit ctx base_mont s.s_wb;
        pow_words ctx ~s s.s_wb exp s.s_acc;
        word_to_t s.s_acc)

  (* --- fixed-base precomputation ------------------------------------ *)

  type precomp = {
    p_m : t; (* modulus the table belongs to *)
    p_w : int; (* window width in bits *)
    p_bits : int; (* exponent bits covered *)
    p_rows : int array array array;
        (* p_rows.(i).(d-1) = base^(d * 2^(w*i)) in Montgomery form *)
  }

  let precomp_bits pre = pre.p_bits

  let precompute ctx base_mont ~ebits =
    if ebits <= 0 then invalid_arg "Nat.Mont.precompute: ebits must be > 0";
    (* Wider windows amortize better at large exponents: 2^w-1 row entries
       are built once, and each pow costs ~ebits/w multiplications. *)
    let w = if ebits >= 1024 then 5 else 4 in
    let nwin = (ebits + w - 1) / w in
    let row_len = (1 lsl w) - 1 in
    let rows =
      Array.init nwin (fun _ ->
          Array.init row_len (fun _ -> Array.make ctx.k 0))
    in
    with_scratch ctx (fun s ->
        let cur = word_fresh ctx base_mont in
        for i = 0 to nwin - 1 do
          let row = rows.(i) in
          Array.blit cur 0 row.(0) 0 ctx.k;
          for d = 1 to row_len - 1 do
            cios ctx ~tmp:s.s_tmp row.(d - 1) cur row.(d)
          done;
          if i < nwin - 1 then cios ctx ~tmp:s.s_tmp row.(row_len - 1) cur cur
        done);
    { p_m = ctx.m; p_w = w; p_bits = nwin * w; p_rows = rows }

  let pow_precomp ctx pre exp =
    if not (equal pre.p_m ctx.m) then
      invalid_arg "Nat.Mont.pow_precomp: precomp belongs to another modulus";
    if num_bits exp > pre.p_bits then
      (* wider than the table: fall back to the generic path *)
      pow ctx (word_to_t pre.p_rows.(0).(0)) exp
    else
      with_scratch ctx (fun s ->
          let acc = s.s_acc in
          Array.blit ctx.onew 0 acc 0 ctx.k;
          let nwin = Array.length pre.p_rows in
          for i = 0 to nwin - 1 do
            let d = digit_of exp ~w:pre.p_w i in
            if d <> 0 then cios ctx ~tmp:s.s_tmp acc pre.p_rows.(i).(d - 1) acc
          done;
          word_to_t acc)

  (* --- batched exponentiation --------------------------------------- *)

  (* Shared base, many exponents. Small batches share the right-to-left
     squaring chain of the base across the whole batch; large batches build
     a throwaway fixed-base window table instead. The crossover is decided
     by estimated multiplication counts. *)
  let pow_base_many ctx base_mont exps =
    let bn = Array.length exps in
    if bn = 0 then [||]
    else begin
      let maxbits = Array.fold_left (fun a e -> max a (num_bits e)) 0 exps in
      if maxbits = 0 then Array.map (fun _ -> word_to_t ctx.onew) exps
      else begin
        let w = if maxbits >= 1024 then 5 else 4 in
        let nwin = (maxbits + w - 1) / w in
        let cost_table = (nwin * ((1 lsl w) - 1)) + (bn * nwin) in
        let cost_r2l = (3 * maxbits / 4) + (bn * maxbits / 2) in
        if cost_table < cost_r2l then begin
          let pre = precompute ctx base_mont ~ebits:maxbits in
          Array.map (fun e -> pow_precomp ctx pre e) exps
        end
        else
          with_scratch ctx (fun s ->
              let accs = Array.init bn (fun _ -> Array.copy ctx.onew) in
              let p = word_fresh ctx base_mont in
              for i = 0 to maxbits - 1 do
                for j = 0 to bn - 1 do
                  if bit exps.(j) i then cios ctx ~tmp:s.s_tmp accs.(j) p accs.(j)
                done;
                if i < maxbits - 1 then sqr ctx ~sq:s.s_sq p p
              done;
              Array.map word_to_t accs)
      end
    end

  let pow_many ctx pairs = Array.map (fun (b, e) -> pow ctx b e) pairs

  (* Simultaneous multi-exponentiation: prod_i base_i^exp_i. Up to four
     bases use Shamir's trick with a combination table (one shared squaring
     chain, one multiply per nonzero joint bit); larger products use
     Pippenger-style bucket windows. *)
  let multi_pow ctx pairs =
    let n = Array.length pairs in
    if n = 0 then word_to_t ctx.onew
    else if n = 1 then begin
      let b, e = pairs.(0) in
      pow ctx b e
    end
    else begin
      let maxbits =
        Array.fold_left (fun a (_, e) -> max a (num_bits e)) 0 pairs
      in
      if maxbits = 0 then word_to_t ctx.onew
      else if n <= 4 then
        with_scratch ctx (fun s ->
            let k = ctx.k in
            let words = Array.map (fun (b, _) -> word_fresh ctx b) pairs in
            (* combos.(msk-1) = prod of bases whose bit is set in msk *)
            let combos =
              Array.init ((1 lsl n) - 1) (fun _ -> Array.make k 0)
            in
            for msk = 1 to (1 lsl n) - 1 do
              let lsb = msk land -msk in
              let rest = msk - lsb in
              let rec log2 v = if v <= 1 then 0 else 1 + log2 (v lsr 1) in
              if rest = 0 then Array.blit words.(log2 lsb) 0 combos.(msk - 1) 0 k
              else
                cios ctx ~tmp:s.s_tmp combos.(lsb - 1) combos.(rest - 1)
                  combos.(msk - 1)
            done;
            let acc = s.s_acc in
            Array.blit ctx.onew 0 acc 0 k;
            let started = ref false in
            for i = maxbits - 1 downto 0 do
              if !started then sqr ctx ~sq:s.s_sq acc acc;
              let msk = ref 0 in
              for j = 0 to n - 1 do
                if bit (snd pairs.(j)) i then msk := !msk lor (1 lsl j)
              done;
              if !msk <> 0 then begin
                cios ctx ~tmp:s.s_tmp acc combos.(!msk - 1) acc;
                started := true
              end
            done;
            word_to_t acc)
      else
        with_scratch ctx (fun s ->
            let k = ctx.k in
            let c = if n >= 32 then 6 else if n >= 12 then 5 else 4 in
            let nwin = (maxbits + c - 1) / c in
            let nb = (1 lsl c) - 1 in
            let words = Array.map (fun (b, _) -> word_fresh ctx b) pairs in
            let buckets = Array.init nb (fun _ -> Array.make k 0) in
            let occupied = Array.make nb false in
            let running = Array.make k 0 and total = Array.make k 0 in
            let acc = s.s_acc in
            Array.blit ctx.onew 0 acc 0 k;
            let started = ref false in
            for w = nwin - 1 downto 0 do
              if !started then
                for _ = 1 to c do
                  sqr ctx ~sq:s.s_sq acc acc
                done;
              Array.fill occupied 0 nb false;
              for j = 0 to n - 1 do
                let d = digit_of (snd pairs.(j)) ~w:c w in
                if d <> 0 then begin
                  if occupied.(d - 1) then
                    cios ctx ~tmp:s.s_tmp buckets.(d - 1) words.(j)
                      buckets.(d - 1)
                  else begin
                    Array.blit words.(j) 0 buckets.(d - 1) 0 k;
                    occupied.(d - 1) <- true
                  end
                end
              done;
              (* window total = prod_d bucket_d^d via a running suffix
                 product scanned from the heaviest bucket down *)
              let have_run = ref false and have_tot = ref false in
              for d = nb downto 1 do
                if occupied.(d - 1) then begin
                  if !have_run then
                    cios ctx ~tmp:s.s_tmp running buckets.(d - 1) running
                  else begin
                    Array.blit buckets.(d - 1) 0 running 0 k;
                    have_run := true
                  end
                end;
                if !have_run then
                  if !have_tot then cios ctx ~tmp:s.s_tmp total running total
                  else begin
                    Array.blit running 0 total 0 k;
                    have_tot := true
                  end
              done;
              if !have_tot then begin
                if !started then cios ctx ~tmp:s.s_tmp acc total acc
                else Array.blit total 0 acc 0 k;
                started := true
              end
            done;
            word_to_t acc)
    end
end

let mod_pow ~base:b ~exp ~m =
  if is_zero m then raise Division_by_zero;
  if is_one m then zero
  else if is_even m then begin
    (* Rare in this code base (our moduli are odd primes); plain
       square-and-multiply keeps the even case correct. *)
    let rec go acc b i =
      if i >= num_bits exp then acc
      else begin
        let acc = if bit exp i then mod_mul acc b ~m else acc in
        go acc (mod_mul b b ~m) (i + 1)
      end
    in
    go one (rem b m) 0
  end
  else begin
    let ctx = Mont.create m in
    Mont.from_mont ctx (Mont.pow ctx (Mont.to_mont ctx (rem b m)) exp)
  end

(* Extended Euclid with signed cofactors, tracked as (negative?, magnitude). *)
let mod_inv a ~m =
  if is_zero m then raise Division_by_zero;
  let signed_sub (sa, va) (sb, vb) =
    (* (sa,va) - (sb,vb) *)
    if sa = sb then
      if compare va vb >= 0 then (sa, sub va vb) else (not sa, sub vb va)
    else (sa, add va vb)
  in
  let rec go (r0, s0) (r1, s1) =
    if is_zero r1 then (r0, s0)
    else begin
      let q, r2 = divmod r0 r1 in
      let qs1 = (fst s1, mul q (snd s1)) in
      go (r1, s1) (r2, signed_sub s0 qs1)
    end
  in
  let g, (neg, v) = go (rem a m, (false, one)) (m, (false, zero)) in
  if not (is_one g) then raise Not_found;
  let v = rem v m in
  if neg && not (is_zero v) then sub m v else v

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)
(* ------------------------------------------------------------------ *)

let of_bytes_be b =
  let n = Bytes.length b in
  let acc = ref zero in
  for i = 0 to n - 1 do
    acc := add (shift_left !acc 8) (of_int (Char.code (Bytes.get b i)))
  done;
  !acc

let to_bytes_be t =
  let nbytes = (num_bits t + 7) / 8 in
  let out = Bytes.create nbytes in
  for i = 0 to nbytes - 1 do
    let byte = ref 0 in
    for j = 0 to 7 do
      if bit t ((8 * (nbytes - 1 - i)) + j) then byte := !byte lor (1 lsl j)
    done;
    Bytes.set out i (Char.chr !byte)
  done;
  out

let to_bytes_be_padded t ~len =
  let b = to_bytes_be t in
  let nb = Bytes.length b in
  if nb > len then invalid_arg "Nat.to_bytes_be_padded: value too wide";
  let out = Bytes.make len '\000' in
  Bytes.blit b 0 out (len - nb) nb;
  out

let of_hex s =
  let s = if String.length s mod 2 = 1 then "0" ^ s else s in
  of_bytes_be (Dstress_util.Hex.decode s)

let to_hex t =
  let s = Dstress_util.Hex.encode (to_bytes_be t) in
  if s = "" then "0" else s

let chunk_pow = 1_000_000_000 (* 10^9 < 2^30: fits a single limb *)
let chunk_digits = 9

let of_decimal s =
  if s = "" then invalid_arg "Nat.of_decimal: empty";
  String.iter
    (fun c -> if c < '0' || c > '9' then invalid_arg "Nat.of_decimal: bad digit")
    s;
  let acc = ref zero in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    let take = min chunk_digits (n - !i) in
    let chunk = int_of_string (String.sub s !i take) in
    acc := add (mul !acc (of_int (int_of_float (10.0 ** float_of_int take)))) (of_int chunk);
    i := !i + take
  done;
  !acc

let to_decimal t =
  if is_zero t then "0"
  else begin
    let rec go t acc =
      if is_zero t then acc
      else begin
        let q, r = divmod_limb t chunk_pow in
        if is_zero q then string_of_int r :: acc
        else go q (Printf.sprintf "%09d" r :: acc)
      end
    in
    String.concat "" (go t [])
  end

let pp ppf t = Format.pp_print_string ppf (to_decimal t)

(* ------------------------------------------------------------------ *)
(* Randomness and primality                                            *)
(* ------------------------------------------------------------------ *)

let random_bits prng n =
  if n < 0 then invalid_arg "Nat.random_bits";
  let limbs = (n + limb_bits - 1) / limb_bits in
  let r = Array.init limbs (fun _ -> Dstress_util.Prng.bits prng limb_bits) in
  let extra = (limbs * limb_bits) - n in
  if limbs > 0 && extra > 0 then r.(limbs - 1) <- r.(limbs - 1) lsr extra;
  normalize r

let random_below prng bound =
  if is_zero bound then invalid_arg "Nat.random_below: zero bound";
  let nb = num_bits bound in
  let rec loop () =
    let candidate = random_bits prng nb in
    if compare candidate bound < 0 then candidate else loop ()
  in
  loop ()

let is_probable_prime ?(rounds = 32) prng n =
  if compare n two < 0 then false
  else if compare n (of_int 4) < 0 then true (* 2 and 3 *)
  else if is_even n then false
  else begin
    let n1 = sub n one in
    (* n - 1 = d * 2^s with d odd *)
    let rec split d s = if is_even d then split (shift_right d 1) (s + 1) else (d, s) in
    let d, s = split n1 0 in
    let try_base a =
      let x = ref (mod_pow ~base:a ~exp:d ~m:n) in
      if is_one !x || equal !x n1 then true
      else begin
        let rec squares i =
          if i >= s - 1 then false
          else begin
            x := mod_mul !x !x ~m:n;
            if equal !x n1 then true else squares (i + 1)
          end
        in
        squares 0
      end
    in
    let rec rounds_loop i =
      if i = rounds then true
      else begin
        let a = add two (random_below prng (sub n (of_int 3))) in
        if try_base a then rounds_loop (i + 1) else false
      end
    in
    rounds_loop 0
  end

let generate_prime prng ~bits =
  if bits < 2 then invalid_arg "Nat.generate_prime: bits < 2";
  let rec loop () =
    let c = random_bits prng (bits - 1) in
    (* Force the top bit (exact width) and the low bit (oddness). *)
    let c = add (shift_left one (bits - 1)) c in
    let c = if is_even c then add c one else c in
    if is_probable_prime prng c then c else loop ()
  in
  loop ()
