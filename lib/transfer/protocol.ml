module Group = Dstress_crypto.Group
module Prg = Dstress_crypto.Prg
module Exp_elgamal = Dstress_crypto.Exp_elgamal
module Elgamal = Dstress_crypto.Elgamal
module Bitvec = Dstress_util.Bitvec
module Traffic = Dstress_mpc.Traffic
module Sharing = Dstress_mpc.Sharing
module Mechanism = Dstress_dp.Mechanism
module Obs = Dstress_obs.Obs

type variant = Strawman1 | Strawman2 | Strawman3 | Final

type params = { alpha : float; table : Exp_elgamal.Table.t }

type recovery = {
  max_retries : int;
  escalation_table : Exp_elgamal.Table.t Lazy.t option;
}

let no_recovery = { max_retries = 0; escalation_table = None }

type inject = Drop_attempt | Corrupt_attempt | Force_miss of { member : int; bit : int }

type miss = { member : int; bit : int }

type outcome = {
  shares : Bitvec.t array;
  failures : int;
  misses : miss list;
  retries : int;
  recovered : int;
  unrecovered : int;
  extra_epsilon : float;
  sums : int array array option;
}

let parity v = ((v mod 2) + 2) mod 2 = 1

let expected_bytes variant ~k ~bits ~element_bytes =
  let kp1 = k + 1 in
  let multi l = (l + 1) * element_bytes in
  match variant with
  | Strawman1 ->
      (* Each member sends one L-bit bundle for one recipient; i forwards
         them unchanged; each recipient gets one bundle. *)
      let per_sender = multi bits in
      let i_to_j = kp1 * multi bits in
      let per_receiver = multi bits in
      (per_sender, i_to_j, per_receiver, (kp1 * per_sender) + i_to_j + (kp1 * per_receiver))
  | Strawman2 ->
      (* Each member sends subshare bundles for all k+1 recipients; i
         forwards all of them; each recipient gets k+1 bundles. *)
      let per_sender = multi (kp1 * bits) in
      let i_to_j = kp1 * per_sender in
      let per_receiver = kp1 * multi bits in
      (per_sender, i_to_j, per_receiver, (kp1 * per_sender) + i_to_j + (kp1 * per_receiver))
  | Strawman3 | Final ->
      (* i combines: one shared ephemeral plus (k+1)*L summed ciphertext
         bodies; each recipient gets its L bodies plus the ephemeral. *)
      let per_sender = multi (kp1 * bits) in
      let i_to_j = multi (kp1 * bits) in
      let per_receiver = multi bits in
      (per_sender, i_to_j, per_receiver, (kp1 * per_sender) + i_to_j + (kp1 * per_receiver))

(* One attempt of the transfer either delivers decrypted values (with the
   positions that missed the lookup table) or is killed in flight by an
   injected drop/corruption, which the receiver detects (timeout or failed
   integrity check) without learning anything. *)
type 'a attempt_status = Killed | Decrypted of 'a

let transfer ?(recovery = no_recovery) ?inject ?(obs = Obs.off) params ~prg ~noise ~traffic
    ~variant ~setup ~sender ~receiver ~neighbor_slot ~shares =
  let grp = setup.Setup.grp in
  let l = setup.Setup.bits in
  let kp1 = setup.Setup.k + 1 in
  let bi = Setup.block_of setup sender and bj = Setup.block_of setup receiver in
  if Array.length shares <> kp1 then invalid_arg "Protocol.transfer: wrong share count";
  Array.iter
    (fun s -> if Bitvec.length s <> l then invalid_arg "Protocol.transfer: share width")
    shares;
  if neighbor_slot < 0 || neighbor_slot >= setup.Setup.degree_bound then
    invalid_arg "Protocol.transfer: bad neighbor slot";
  if recovery.max_retries < 0 then invalid_arg "Protocol.transfer: max_retries < 0";
  let cert = setup.Setup.nodes.(receiver).certificates.(neighbor_slot) in
  let r = setup.Setup.nodes.(receiver).neighbor_keys.(neighbor_slot) in
  let ebytes = Group.element_bytes grp in
  let multi_bytes l = (l + 1) * ebytes in
  let secret_of y t = setup.Setup.nodes.(bj.(y)).keys.Keys.secrets.(t) in
  let zero_shares () = Array.init kp1 (fun _ -> Bitvec.create l false) in
  let killed = function Some Drop_attempt | Some Corrupt_attempt -> true | _ -> false in
  let forced inj ~member ~bit =
    match inj with Some (Force_miss m) -> m.member = member && m.bit = bit | _ -> false
  in
  (* Run the whole protocol once with fresh randomness: new subshares, new
     ephemerals, and (for Final) newly drawn geometric noise. *)
  let attempt ~table ~inject =
    let missed = ref [] in
    (* Batched decryption of one member's L-bit bundle (all ciphertexts
       share an already-adjusted ephemeral part): the blindings [c1^x_t]
       are one shared-base batch and the unblinding inverses one batch
       inversion. Injected misses overwrite the decrypted value, so the
       missed-position order (bit ascending) matches the scalar loop. *)
    let dec_bundle ~member ~c1 c2s =
      let pairs = Array.mapi (fun bit c2 -> (secret_of member bit, c2)) c2s in
      let results = Exp_elgamal.decrypt_shared grp table ~c1 pairs in
      Array.mapi
        (fun bit r ->
          let r = if forced inject ~member ~bit then None else r in
          match r with
          | Some v -> v
          | None ->
              missed := { member; bit } :: !missed;
              0)
        results
    in
    match variant with
    | Strawman1 ->
        (* Member x of B_i encrypts its own share, bit by bit, to the x-th
           member of B_j. One batched call for the whole block (ephemerals
           drawn in member order, as a scalar loop would). *)
        let bundles =
          Exp_elgamal.encrypt_multi_batch prg grp
            (Array.mapi
               (fun x share ->
                 List.init l (fun t ->
                     (cert.Setup.member_keys.(x).(t), if Bitvec.get share t then 1 else 0)))
               shares)
        in
        Array.iteri
          (fun x _ -> Traffic.add traffic ~src:bi.(x) ~dst:sender (multi_bytes l))
          bundles;
        Traffic.add traffic ~src:sender ~dst:receiver (kp1 * multi_bytes l);
        if killed inject then (zero_shares (), Killed, None)
        else begin
          (* j adjusts every ephemeral — one shared-exponent batch — and
             forwards each bundle to its member. *)
          let c1s = Group.rerandomize_many grp (Array.map fst bundles) r in
          let new_shares =
            Array.mapi
              (fun y (_, c2s) ->
                Traffic.add traffic ~src:receiver ~dst:bj.(y) (multi_bytes l);
                let vals = dec_bundle ~member:y ~c1:c1s.(y) (Array.of_list c2s) in
                Bitvec.init l (fun t -> vals.(t) = 1))
              bundles
          in
          (new_shares, Decrypted (List.rev !missed), None)
        end
    | Strawman2 | Strawman3 | Final ->
        (* Every member x splits its share into k+1 subshares (one per
           recipient) and encrypts all (k+1)*L bits under one ephemeral.
           All bundles of an attempt address the same (k+1)*L member keys,
           so the whole attempt is one batched encryption call that groups
           the h^y work per key across bundles. The subshares and then the
           ephemerals are drawn in member order, exactly as the scalar
           loop drew them. *)
        let subshares = Array.map (fun s -> Sharing.subshare prg ~parties:kp1 s) shares in
        let recipient_lists =
          Array.mapi
            (fun x _ ->
              List.concat
                (List.init kp1 (fun y ->
                     List.init l (fun t ->
                         ( cert.Setup.member_keys.(y).(t),
                           if Bitvec.get subshares.(x).(y) t then 1 else 0 )))))
            shares
        in
        let charge_senders () =
          Array.iteri
            (fun x _ -> Traffic.add traffic ~src:bi.(x) ~dst:sender (multi_bytes (kp1 * l)))
            shares
        in
        let c2_of (_, c2s) y t = List.nth c2s ((y * l) + t) in
        let finish_shared_sums c1_combined c2_combined =
          (* j adjusts the single combined ephemeral and hands each member
             its L summed ciphertexts, decrypted as one shared-c1 batch per
             member. *)
          Traffic.add traffic ~src:sender ~dst:receiver (multi_bytes (kp1 * l));
          if killed inject then (zero_shares (), Killed, None)
          else begin
            let c1_adjusted = Group.pow grp c1_combined r in
            let sums =
              Array.init kp1 (fun y ->
                  Traffic.add traffic ~src:receiver ~dst:bj.(y) (multi_bytes l);
                  dec_bundle ~member:y ~c1:c1_adjusted c2_combined.(y))
            in
            let new_shares =
              Array.map (fun row -> Bitvec.init l (fun t -> parity row.(t))) sums
            in
            (new_shares, Decrypted (List.rev !missed), Some sums)
          end
        in
        let strawman2 bundles =
          (* i forwards every bundle unchanged; j adjusts all ephemerals in
             one shared-exponent batch; each recipient decrypts k+1
             subshare bundles and XORs them. *)
          Traffic.add traffic ~src:sender ~dst:receiver (kp1 * multi_bytes (kp1 * l));
          if killed inject then (zero_shares (), Killed, None)
          else begin
            let c1s = Group.rerandomize_many grp (Array.map fst bundles) r in
            let new_shares =
              Array.init kp1 (fun y ->
                  Traffic.add traffic ~src:receiver ~dst:bj.(y) (kp1 * multi_bytes l);
                  let received =
                    Array.mapi
                      (fun x bundle ->
                        let vals =
                          dec_bundle ~member:y ~c1:c1s.(x)
                            (Array.init l (fun t -> c2_of bundle y t))
                        in
                        Bitvec.init l (fun t -> vals.(t) = 1))
                      bundles
                  in
                  Bitvec.xor_all (Array.to_list received))
            in
            (new_shares, Decrypted (List.rev !missed), None)
          end
        in
        let combined bundles =
          (* i homomorphically sums the per-bit ciphertexts across the k+1
             senders; the shared ephemerals multiply into a single one. *)
          let c1_senders =
            Array.fold_left (fun acc (c1, _) -> Group.mul grp acc c1) Dstress_bignum.Nat.one
              bundles
          in
          let combined_c2 =
            Array.init kp1 (fun y ->
                Array.init l (fun t ->
                    Array.fold_left
                      (fun acc bundle -> Group.mul grp acc (c2_of bundle y t))
                      Dstress_bignum.Nat.one bundles))
          in
          (c1_senders, combined_c2)
        in
        (match variant with
        | Strawman2 ->
            let bundles = Exp_elgamal.encrypt_multi_batch prg grp recipient_lists in
            charge_senders ();
            strawman2 bundles
        | Strawman3 ->
            let bundles = Exp_elgamal.encrypt_multi_batch prg grp recipient_lists in
            charge_senders ();
            let c1, c2 = combined bundles in
            finish_shared_sums c1 c2
        | Final ->
            (* i additionally encrypts an even geometric noise term for
               every (recipient, bit) under one more shared ephemeral and
               multiplies it in. The noise bundle rides in the same batched
               encryption as the share bundles (it addresses the same
               keys); its values come from the independent [noise] stream,
               drawn in the same (member, bit) order as before, and the
               ephemerals still leave [prg] in bundle order — so both
               streams yield the values the unbatched code drew. *)
            let noise_values =
              Array.init kp1 (fun _ ->
                  Array.init l (fun _ ->
                      Mechanism.transfer_noise noise ~alpha:params.alpha ~delta:kp1))
            in
            let noise_recipients =
              List.concat
                (List.init kp1 (fun y ->
                     List.init l (fun t ->
                         (cert.Setup.member_keys.(y).(t), noise_values.(y).(t)))))
            in
            let all =
              Exp_elgamal.encrypt_multi_batch prg grp
                (Array.append recipient_lists [| noise_recipients |])
            in
            let bundles = Array.sub all 0 kp1 in
            let noise_c1, noise_c2s = all.(kp1) in
            charge_senders ();
            let c1_senders, combined_c2 = combined bundles in
            let c1_combined = Group.mul grp c1_senders noise_c1 in
            let noised_c2 =
              Array.mapi
                (fun y row ->
                  Array.mapi
                    (fun t c2 -> Group.mul grp c2 (List.nth noise_c2s ((y * l) + t)))
                    row)
                combined_c2
            in
            finish_shared_sums c1_combined noised_c2
        | Strawman1 -> assert false)
  in
  (* Recovery driver: retry with fresh randomness while decryptions miss
     the table (or the attempt was lost in flight); the last attempt may
     escalate to a widened lookup table. Every retry that re-releases
     decrypted sums is charged to the edge-privacy budget. *)
  let has_escalation = recovery.escalation_table <> None in
  let max_attempts = 1 + recovery.max_retries + if has_escalation then 1 else 0 in
  let all_missing =
    List.concat (List.init kp1 (fun member -> List.init l (fun bit -> { member; bit })))
  in
  (* Observability wrapper around one attempt: a span (at Full) whose
     simulated duration is exactly the bytes the attempt put on the wire.
     [obs] is this edge task's private collector, so emission here is
     deterministic under any executor. *)
  let metered_attempt ~table ~inject idx =
    (* Traffic.total is O(parties^2): only pay for the before/after delta
       when the collector is live. *)
    if not (Obs.enabled obs) then attempt ~table ~inject
    else begin
      let before = Traffic.total traffic in
      if Obs.detailed obs then Obs.enter obs (Printf.sprintf "attempt:%d" idx);
      Obs.incr obs "transfer.attempts";
      let result = attempt ~table ~inject in
      Obs.advance obs (Traffic.total traffic - before);
      if Obs.detailed obs then Obs.leave obs;
      result
    end
  in
  let finalize ~retries ~revealed ~failures result =
    let extra_epsilon =
      match variant with
      | Final ->
          Edge_privacy.retry_epsilon ~alpha:params.alpha ~k:setup.Setup.k ~bits:l
            ~retries:(max 0 (revealed - 1))
      | Strawman1 | Strawman2 | Strawman3 -> 0.0
    in
    let outcome =
      match result with
      | Killed ->
          (* The message never arrived: the receiver's block keeps no-op
             (all-zero) shares and every position is flagged unrecovered. *)
          {
            shares = zero_shares ();
            failures;
            misses = all_missing;
            retries;
            recovered = failures;
            unrecovered = kp1 * l;
            extra_epsilon;
            sums = None;
          }
      | Decrypted (new_shares, misses, sums) ->
          let unrecovered = List.length misses in
          {
            shares = new_shares;
            failures;
            misses;
            retries;
            recovered = failures - unrecovered;
            unrecovered;
            extra_epsilon;
            sums;
          }
    in
    Obs.incr obs ~by:outcome.failures "transfer.failures";
    Obs.incr obs ~by:outcome.recovered "transfer.recovered";
    Obs.incr obs ~by:outcome.unrecovered "transfer.unrecovered";
    Obs.incr obs ~by:outcome.retries "transfer.retries";
    outcome
  in
  let rec go attempt_idx ~failures ~revealed =
    let inject = if attempt_idx = 0 then inject else None in
    let table =
      if attempt_idx > recovery.max_retries then
        match recovery.escalation_table with
        | Some t -> Lazy.force t
        | None -> params.table
      else params.table
    in
    let new_shares, status, sums = metered_attempt ~table ~inject attempt_idx in
    match status with
    | Killed ->
        if attempt_idx + 1 < max_attempts then go (attempt_idx + 1) ~failures ~revealed
        else finalize ~retries:attempt_idx ~revealed ~failures Killed
    | Decrypted misses ->
        let failures = failures + List.length misses in
        let revealed = revealed + 1 in
        if misses = [] || attempt_idx + 1 >= max_attempts then
          finalize ~retries:attempt_idx ~revealed ~failures
            (Decrypted (new_shares, misses, sums))
        else go (attempt_idx + 1) ~failures ~revealed
  in
  go 0 ~failures:0 ~revealed:0
