(** The §3.5 message-transfer protocol: moving an XOR-shared L-bit message
    from block [B_i] to block [B_j] along the (private) edge (i, j).

    All four protocol versions from the paper are implemented so the design
    progression can be tested and benchmarked:

    - {!Strawman1}: each member of [B_i] encrypts its whole share to one
      member of [B_j] (weak: a node in both blocks, or a colluding pair,
      learns two shares);
    - {!Strawman2}: shares are split into subshares, one per recipient
      (collusion-resistant, but colluding endpoints can *recognize*
      subshares and infer the edge);
    - {!Strawman3}: the relay node [i] homomorphically sums the encrypted
      subshare bits, so recipients see only sums (the exact sums still
      leak edge information — the Appendix-B side channel);
    - {!Final}: strawman 3 plus even geometric noise [2·Geo(alpha^(2/(k+1)))]
      added by [i] to every encrypted bit-sum, making the side channel
      epsilon-differentially-private in the graph's edges.

    All variants route via the endpoint nodes [i] and [j] (blocks never
    talk directly — that would reveal the edge to them), use the
    re-randomized keys from [j]'s block certificate, and apply the
    Kurosawa shared-ephemeral optimization across the L bit positions.

    {b Failure and recovery.} The geometric noise pushes a decryption
    outside the lookup table with probability [P_fail > 0] (Appendix B),
    and a real network loses or corrupts messages; both are first-class
    here. A decryption miss is never papered over: it is surfaced per
    (member, bit) in the {!outcome}, and — when a {!recovery} policy is
    supplied — the whole transfer is retried with fresh subshares, fresh
    ephemerals and freshly drawn noise, escalating to a widened lookup
    table on the last attempt. Every retry re-releases one transfer's
    worth of noised sums and is charged to the edge-privacy budget
    ({!Edge_privacy.retry_epsilon}); every attempt's bytes are metered.

    Every byte is recorded in the caller's {!Dstress_mpc.Traffic} matrix
    under the *global* node ids, which is what the Figure 4/5 benchmarks
    report. *)

type variant = Strawman1 | Strawman2 | Strawman3 | Final

type params = {
  alpha : float;  (** geometric noise parameter for {!Final} (in (0,1)) *)
  table : Dstress_crypto.Exp_elgamal.Table.t;
      (** discrete-log lookup for decryption; must cover
          [\[-noise_range, k+1+noise_range\]] *)
}

type recovery = {
  max_retries : int;
      (** additional full attempts (fresh randomness) after a failed one *)
  escalation_table : Dstress_crypto.Exp_elgamal.Table.t Lazy.t option;
      (** widened lookup table for one final attempt after the retries are
          exhausted; forced at most once per transfer *)
}

val no_recovery : recovery
(** Zero retries, no escalation: a miss is reported, not retried — the
    pre-fault-model behaviour, still used by the strawman ablations. *)

type inject =
  | Drop_attempt  (** the relay leg [i -> j] of the first attempt is lost *)
  | Corrupt_attempt
      (** the first attempt arrives but fails its integrity check and is
          discarded by [j] without decrypting *)
  | Force_miss of { member : int; bit : int }
      (** the first attempt's decryption at (member, bit) misses the table *)

type miss = { member : int; bit : int }
(** One decryption that fell outside the lookup table, identified by the
    receiving member's block index and the bit position. *)

type outcome = {
  shares : Dstress_util.Bitvec.t array;
      (** new shares, one per member of [B_j] (same order as the block);
          all-zero (the no-op message) if the transfer was unrecoverably
          lost in flight *)
  failures : int;
      (** decryption misses across {e all} attempts (recovered or not) *)
  misses : miss list;
      (** positions whose final value is untrusted: decryption misses of
          the last attempt (0 was substituted and flagged), or every
          position if the final attempt was lost in flight *)
  retries : int;  (** attempts beyond the first *)
  recovered : int;  (** decryption misses fixed by a later attempt *)
  unrecovered : int;  (** [List.length misses] *)
  extra_epsilon : float;
      (** edge-privacy budget consumed by retries that re-released sums
          ({!Final} only; the baseline release is accounted elsewhere) *)
  sums : int array array option;
      (** for {!Strawman3}/{!Final}: the decrypted bit-sums
          [sums.(member).(bit)] each recipient observes — exposed so tests
          and the edge-privacy analysis can quantify the side channel *)
}

val transfer :
  ?recovery:recovery ->
  ?inject:inject ->
  ?obs:Dstress_obs.Obs.t ->
  params ->
  prg:Dstress_crypto.Prg.t ->
  noise:Dstress_util.Prng.t ->
  traffic:Dstress_mpc.Traffic.t ->
  variant:variant ->
  setup:Setup.t ->
  sender:int ->
  receiver:int ->
  neighbor_slot:int ->
  shares:Dstress_util.Bitvec.t array ->
  outcome
(** [transfer params ... ~sender:i ~receiver:j ~neighbor_slot ~shares] runs
    one edge transfer. [shares] are the current shares of [B_i]'s members
    (block order); [neighbor_slot] selects which of [j]'s certificates was
    handed to [i] during setup. The reconstructed message is preserved:
    XOR of output shares = XOR of input shares (Theorem 1) whenever
    [unrecovered = 0]. [recovery] defaults to {!no_recovery}; [inject]
    applies a simulated fault to the first attempt only.

    [obs] (default: the no-op collector) receives phase-attributed
    observability: [transfer.attempts] per protocol attempt plus the
    outcome's [transfer.failures]/[.recovered]/[.unrecovered]/[.retries]
    counters, and — at level [Full] — one [attempt:<n>] span per attempt
    whose simulated duration is the bytes that attempt put on [traffic].
    Pass the calling task's private collector so emission stays
    deterministic under parallel schedules. Raises
    [Invalid_argument] on shape mismatches or a negative retry bound. *)

val expected_bytes :
  variant -> k:int -> bits:int -> element_bytes:int -> int * int * int * int
(** Closed-form wire cost [(bi_member_to_i, i_to_j, j_to_member, total)]
    per §5.3, for validating the metered traffic. [bi_member_to_i] is per
    sending member; [j_to_member] per receiving member. Costs are per
    attempt: a retried transfer pays the total again. *)
