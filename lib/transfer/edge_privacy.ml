module Mechanism = Dstress_dp.Mechanism

type config = {
  years : int;
  runs_per_year : int;
  iterations : int;
  nodes : int;
  degree_bound : int;
  bits : int;
  k : int;
}

let paper_example =
  { years = 10; runs_per_year = 3; iterations = 11; nodes = 1750; degree_bound = 100;
    bits = 16; k = 19 }

let sensitivity cfg = cfg.k + 1

let total_transfers cfg =
  float_of_int cfg.years
  *. float_of_int cfg.runs_per_year
  *. float_of_int cfg.iterations
  *. float_of_int cfg.nodes
  *. float_of_int cfg.degree_bound
  *. float_of_int cfg.bits
  *. (float_of_int (cfg.k + 1) ** 2.0)

let lookup_table_entries ~ram_bytes ~ciphertext_bits =
  ram_bytes *. 8.0 /. float_of_int ciphertext_bits

(* Inequality (1): P_fail(alpha, N_l) <= 1 / N_q, solved for alpha by
   bisection on the monotone failure probability. The magnitudes here are
   far beyond native ints, so the computation runs in log space. *)
let max_alpha cfg ~table_entries =
  let n_q = total_transfers cfg in
  let target = 1.0 /. n_q in
  (* P_fail ~= 2 alpha^(N_l/2) for alpha near 1 (the additive alpha-1 term
     vanishes); solve exactly with bisection on log P_fail. *)
  let log_pfail alpha =
    let half = table_entries /. 2.0 in
    (* log (2 a^half + a - 1) - log (1 + a); compute the first term
       stably: for a < 1 the a-1 term only reduces failure, so bounding
       with 2 a^half is safe and matches the paper's arithmetic. *)
    (log 2.0 +. (half *. log alpha)) -. log (1.0 +. alpha)
  in
  let rec bisect lo hi iters =
    if iters = 0 then lo
    else begin
      let mid = (lo +. hi) /. 2.0 in
      if log_pfail mid <= log target then bisect mid hi (iters - 1) else bisect lo mid (iters - 1)
    end
  in
  bisect 0.0 1.0 200

let per_transfer_epsilon ~alpha = Mechanism.epsilon_of_alpha ~alpha

let observed_per_transfer ~k ~bits =
  if k < 1 || bits < 1 then invalid_arg "Edge_privacy.observed_per_transfer: bad parameters";
  k * bits

let retry_epsilon ~alpha ~k ~bits ~retries =
  if retries < 0 then invalid_arg "Edge_privacy.retry_epsilon: retries < 0";
  float_of_int (retries * observed_per_transfer ~k ~bits) *. per_transfer_epsilon ~alpha

let per_iteration_epsilon cfg ~alpha =
  float_of_int cfg.k *. float_of_int (cfg.k + 1) *. float_of_int cfg.bits
  *. per_transfer_epsilon ~alpha

let yearly_epsilon cfg ~alpha =
  float_of_int (cfg.runs_per_year * cfg.iterations) *. per_iteration_epsilon cfg ~alpha

type report = {
  cfg : config;
  delta : int;
  n_q : float;
  n_l : float;
  alpha : float;
  eps_per_transfer : float;
  eps_per_iteration : float;
  eps_per_year : float;
}

let analyze ?(ram_bytes = 8.0 *. 1024.0 *. 1024.0 *. 1024.0) ?(ciphertext_bits = 384) cfg =
  let n_l = lookup_table_entries ~ram_bytes ~ciphertext_bits in
  let n_q = total_transfers cfg in
  let alpha = max_alpha cfg ~table_entries:n_l in
  {
    cfg;
    delta = sensitivity cfg;
    n_q;
    n_l;
    alpha;
    eps_per_transfer = per_transfer_epsilon ~alpha;
    eps_per_iteration = per_iteration_epsilon cfg ~alpha;
    eps_per_year = yearly_epsilon cfg ~alpha;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>edge-privacy (Appendix B):@,\
     \  Delta            = %d@,\
     \  N_q (transfers)  = %.3g@,\
     \  N_l (table)      = %.3g entries@,\
     \  alpha_max        = %.9f@,\
     \  eps / transfer   = %.3g@,\
     \  eps / iteration  = %.4f@,\
     \  eps / year       = %.4f@]"
    r.delta r.n_q r.n_l r.alpha r.eps_per_transfer r.eps_per_iteration r.eps_per_year
