module Group = Dstress_crypto.Group
module Prg = Dstress_crypto.Prg
module Schnorr = Dstress_crypto.Schnorr
module Nat = Dstress_bignum.Nat
module Prng = Dstress_util.Prng

type certificate = {
  owner : int;
  neighbor_slot : int;
  member_keys : Group.elt array array;
  signature : Schnorr.signature;
}

type node_state = {
  node : int;
  keys : Keys.t;
  neighbor_keys : Group.exponent array;
  block : int array;
  certificates : certificate array;
}

type t = {
  grp : Group.t;
  n : int;
  k : int;
  degree_bound : int;
  bits : int;
  nodes : node_state array;
  agg_block : int array;
  tp_public : Dstress_crypto.Elgamal.public_key;
  roster_signature : Schnorr.signature;
}

let certificate_string grp owner slot keys =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "cert:%d:%d" owner slot);
  ignore grp;
  Array.iter
    (fun member_keys ->
      Array.iter
        (fun key ->
          Buffer.add_char buf ':';
          Buffer.add_string buf (Nat.to_hex key))
        member_keys)
    keys;
  Buffer.contents buf

let roster_string blocks agg_block =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "roster";
  Array.iteri
    (fun i block ->
      Buffer.add_string buf (Printf.sprintf "|%d:" i);
      Array.iter (fun m -> Buffer.add_string buf (string_of_int m ^ ",")) block)
    blocks;
  Buffer.add_string buf "|agg:";
  Array.iter (fun m -> Buffer.add_string buf (string_of_int m ^ ",")) agg_block;
  Buffer.contents buf

(* Random block for node i: i itself plus k distinct others, drawn with a
   PRNG derived from the TP's generator. *)
let draw_block prng ~n ~k i =
  let others = Array.make k (-1) in
  let chosen = Hashtbl.create 8 in
  Hashtbl.replace chosen i ();
  let filled = ref 0 in
  while !filled < k do
    let candidate = Prng.int prng n in
    if not (Hashtbl.mem chosen candidate) then begin
      Hashtbl.replace chosen candidate ();
      others.(!filled) <- candidate;
      incr filled
    end
  done;
  Array.append [| i |] others

let run prg grp ~n ~k ~degree_bound ~bits =
  if k < 1 then invalid_arg "Setup.run: k < 1";
  if k + 1 > n then invalid_arg "Setup.run: block size exceeds node count";
  if degree_bound < 1 then invalid_arg "Setup.run: degree_bound < 1";
  if bits < 1 then invalid_arg "Setup.run: bits < 1";
  let tp_secret, tp_public = Schnorr.keygen prg grp in
  (* Node-side material: keys and neighbor keys are chosen by the nodes
     themselves; the TP only relays public parts. *)
  let node_keys = Array.init n (fun node -> Keys.generate prg grp ~node ~bits) in
  let neighbor_keys =
    Array.init n (fun _ -> Array.init degree_bound (fun _ -> Group.random_exponent prg grp))
  in
  (* TP draws blocks from non-cryptographic randomness (public anyway). *)
  let block_prng = Prng.create 0x7A0BEEFL in
  let blocks = Array.init n (fun i -> draw_block block_prng ~n ~k i) in
  let agg_block = Array.of_list (Prng.sample_without_replacement block_prng (k + 1) n) in
  let roster_signature = Schnorr.sign prg grp tp_secret (roster_string blocks agg_block) in
  let make_certificate i slot =
    let r = neighbor_keys.(i).(slot) in
    (* All (k+1)*L member keys of a certificate are raised to one shared
       neighbor key: a single many-bases/one-exponent batch. *)
    let keys =
      Array.map
        (fun member -> Group.rerandomize_many grp node_keys.(member).publics r)
        blocks.(i)
    in
    {
      owner = i;
      neighbor_slot = slot;
      member_keys = keys;
      signature = Schnorr.sign prg grp tp_secret (certificate_string grp i slot keys);
    }
  in
  let nodes =
    Array.init n (fun i ->
        {
          node = i;
          keys = node_keys.(i);
          neighbor_keys = neighbor_keys.(i);
          block = blocks.(i);
          certificates = Array.init degree_bound (make_certificate i);
        })
  in
  { grp; n; k; degree_bound; bits; nodes; agg_block; tp_public; roster_signature }

let verify_roster t =
  let blocks = Array.map (fun ns -> ns.block) t.nodes in
  Schnorr.verify t.grp t.tp_public (roster_string blocks t.agg_block) t.roster_signature

let verify_certificate t cert =
  Schnorr.verify t.grp t.tp_public
    (certificate_string t.grp cert.owner cert.neighbor_slot cert.member_keys)
    cert.signature

let block_of t i = t.nodes.(i).block

let member_index t ~block_owner ~node =
  let block = t.nodes.(block_owner).block in
  let rec find i =
    if i >= Array.length block then raise Not_found
    else if block.(i) = node then i
    else find (i + 1)
  in
  find 0

let setup_traffic_bytes t =
  let ebytes = Group.element_bytes t.grp in
  let exp_bytes = (Nat.num_bits (Group.q t.grp) + 7) / 8 in
  let sig_bytes = Schnorr.signature_bytes t.grp in
  (* Up: each node sends L public keys + D neighbor keys.
     Down: the signed roster (block ids) + D certificates per node, each
     holding (k+1)*L re-randomized keys and a signature. *)
  let up = t.n * ((t.bits * ebytes) + (t.degree_bound * exp_bytes)) in
  let roster = (t.n * (t.k + 1) * 4) + sig_bytes in
  let certs = t.n * t.degree_bound * (((t.k + 1) * t.bits * ebytes) + sig_bytes) in
  up + roster + certs
