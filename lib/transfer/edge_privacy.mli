(** Edge-privacy accounting for the transfer protocol (Appendix B).

    Every bit-sum a recipient decrypts is treated as one query
    [Q_(i,j)(G)] against the graph, released through the geometric
    mechanism. This module reproduces the paper's book-keeping: the query
    sensitivity, the per-transfer epsilon, the total number of transfers,
    the decryption-failure constraint that bounds how much noise can be
    added, and the resulting per-iteration and yearly budget spend. *)

type config = {
  years : int;  (** Y: deployment lifetime *)
  runs_per_year : int;  (** R *)
  iterations : int;  (** I: rounds per run *)
  nodes : int;  (** N *)
  degree_bound : int;  (** D *)
  bits : int;  (** L: message width *)
  k : int;  (** collusion bound; block size k+1 *)
}

val paper_example : config
(** The concrete instantiation of Appendix B: Y=10, R=3, I=11, N=1750,
    D=100, L=16, k=19. *)

val sensitivity : config -> int
(** Delta = k + 1: a bit-sum over one block moves by at most the block
    size when an edge changes. *)

val total_transfers : config -> float
(** N_q = Y * R * I * N * D * L * (k+1)^2. *)

val lookup_table_entries : ram_bytes:float -> ciphertext_bits:int -> float
(** N_l: how many table entries fit in RAM. *)

val max_alpha : config -> table_entries:float -> float
(** Largest noise parameter such that the system fails to decrypt at most
    once in [total_transfers] transfers (inequality (1)). *)

val per_transfer_epsilon : alpha:float -> float
(** eps = -ln alpha per revealed sum. *)

val observed_per_transfer : k:int -> bits:int -> int
(** [k * bits]: how many noised bit-sums a coalition of [k] corrupted
    members of the receiving block observes when one transfer's sums are
    released. Raises [Invalid_argument] on nonpositive parameters. *)

val retry_epsilon : alpha:float -> k:int -> bits:int -> retries:int -> float
(** Budget cost of re-running a transfer [retries] times after decryption
    failures: every retry re-releases a fresh set of noised sums, so each
    one is charged [observed_per_transfer * per_transfer_epsilon] on top
    of the baseline accounting. Raises [Invalid_argument] if
    [retries < 0]. *)

val per_iteration_epsilon : config -> alpha:float -> float
(** k * (k+1) * L * eps: an adversary controlling k members of the
    receiving block observes that many sums per iteration per edge. *)

val yearly_epsilon : config -> alpha:float -> float
(** R * I iterations per year. *)

type report = {
  cfg : config;
  delta : int;
  n_q : float;
  n_l : float;
  alpha : float;
  eps_per_transfer : float;
  eps_per_iteration : float;
  eps_per_year : float;
}

val analyze : ?ram_bytes:float -> ?ciphertext_bits:int -> config -> report
(** End-to-end Appendix-B computation. Defaults: 8 GiB of lookup RAM and
    384-bit ciphertexts, as in the paper's concrete example. *)

val pp_report : Format.formatter -> report -> unit
