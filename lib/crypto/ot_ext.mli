(** IKNP oblivious-transfer extension (Ishai–Kilian–Nissim–Petrank,
    CRYPTO'03), the optimization the paper's GMW implementation relies on
    ("Wysteria's GMW implementation includes oblivious transfer extensions",
    §5.3) to keep MPC traffic low.

    After [kappa = 128] public-key base OTs per party pair (run once per
    session via {!Ot.base_ot}), every further OT costs only symmetric
    operations: roughly [kappa] bits from receiver to sender and two masked
    messages back. This is what makes AND-gate evaluation affordable in the
    GMW engine.

    A {!session} is directional: the party that called {!setup} as [sender]
    supplies message pairs to every subsequent {!extend}; the [receiver]
    supplies choice bits. Sessions are stateful (column PRGs advance), so a
    single session serves any number of OTs.

    {2 Modes}

    [Crypto] runs the construction end to end: ElGamal base OTs, SHA-based
    column PRGs and row hashes. [Simulation] replaces the base OTs with the
    ideal OT functionality and the symmetric primitives with a fast
    non-cryptographic mixer, while keeping the IKNP data flow, correctness
    behaviour and *metered traffic* identical — the mode exists so that
    paper-scale benchmark runs (millions of AND-gate OTs, all parties
    simulated on one machine) finish in minutes. Unit tests cover both
    modes against each other. *)

val kappa : int
(** Computational security parameter (128). *)

type mode = Crypto | Simulation

type session

val setup :
  ?mode:mode -> Group.t -> Xfer.t -> sender_prg:Prg.t -> receiver_prg:Prg.t -> session
(** Runs the [kappa] base OTs (with reversed roles, per IKNP) and installs
    the column PRGs. Default mode is [Crypto]. *)

val extend :
  session -> Xfer.t -> pairs:(bytes * bytes) array -> choices:bool array -> bytes array
(** [extend s meter ~pairs ~choices] performs [Array.length pairs] OTs and
    returns the receiver's outputs. All messages must share one length;
    [pairs] and [choices] must have equal lengths.
    Raises [Invalid_argument] otherwise. *)

val extend_bits :
  session -> Xfer.t -> pairs:(bool * bool) array -> choices:bool array -> bool array
(** Bit-message fast path used by the GMW AND gates: messages are single
    bits and the wire format packs them, so the metered traffic is
    [kappa/8] bytes per OT plus two packed bit vectors. *)

val extend_words :
  session ->
  Xfer.t ->
  width:int ->
  pairs:(int64 * int64) array ->
  choices:int64 array ->
  int64 array
(** Bitsliced bit-OT batch: entry [g] of [pairs] and [choices] packs the
    same logical OT for [width <= 64] independent protocol instances, one
    per bit lane (lane [l] = bit [l] of each word); the result packs the
    receiver outputs the same way, with lanes at and above [width] zero.
    A call performs [width * Array.length pairs] OTs and meters exactly
    the bytes {!extend_bits} would move for that many OTs in one batch.

    In [Simulation] mode the outputs are produced by the ideal OT
    functionality evaluated directly on the words — observably equivalent
    because IKNP always hands the receiver exactly its chosen message —
    without unpacking to [bool array]; [Crypto] mode runs the full
    construction lane by lane. Raises [Invalid_argument] on length
    mismatch or [width] outside [1, 64]. *)

val ots_performed : session -> int
(** Total OTs served so far (diagnostics). *)

val copy_session : session -> session
(** Independent deep snapshot: column PRGs and the OT counter are copied,
    so extending the copy does not disturb the original. The GMW offline
    phase uses this to hand pre-generated correlated randomness to a live
    session without aliasing the generator's state. *)
