module Nat = Dstress_bignum.Nat

type signature = { challenge : Nat.t; response : Nat.t }

let keygen = Elgamal.keygen

(* Hash (commitment, public key, message) into Z_q. *)
let challenge_of grp commitment pk msg =
  let payload =
    Bytes.concat (Bytes.of_string "|")
      [
        Nat.to_bytes_be commitment;
        Nat.to_bytes_be pk;
        Bytes.of_string msg;
      ]
  in
  (* Two digest blocks give enough entropy for any of our group sizes. *)
  let d1 = Sha256.digest payload in
  let d2 = Sha256.digest (Bytes.cat d1 payload) in
  Nat.rem (Nat.of_bytes_be (Bytes.cat d1 d2)) (Group.q grp)

let sign prg grp sk msg =
  let k = Group.random_exponent prg grp in
  let commitment = Group.pow_g grp k in
  let pk = Group.pow_g grp sk in
  let c = challenge_of grp commitment pk msg in
  (* s = k - c*x mod q *)
  let s = Group.exp_sub grp k (Group.exp_mul grp c sk) in
  { challenge = c; response = s }

let verify grp pk msg { challenge; response } =
  (* r' = g^s * pk^c as one simultaneous exponentiation; accept iff
     H(r', pk, msg) = c. Group.multi_pow sends the g term through the
     fixed-base table, so only the short pk^c factor pays for a squaring
     chain. *)
  let r' = Group.multi_pow grp [| (Group.g grp, response); (pk, challenge) |] in
  Nat.equal (challenge_of grp r' pk msg) challenge

let signature_bytes grp = 2 * ((Nat.num_bits (Group.q grp) + 7) / 8)
