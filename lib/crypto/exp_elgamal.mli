(** Exponential ElGamal (Cramer–Gennaro–Schoenmakers encoding): the message
    [v] is carried in the exponent as [g^v], which turns ElGamal's
    multiplicative homomorphism into the *additive* homomorphism the
    DStress transfer protocol needs — the product of two ciphertexts
    decrypts to the sum of the plaintexts.

    Decryption recovers [g^v] and must then solve a small discrete log; as
    in the paper, this is done with a precomputed lookup {!Table} covering
    the (bounded) range of valid plaintexts, and failing — with the failure
    probability analyzed in Appendix B of the paper — when geometric noise
    pushes a value outside the table.

    The module also implements the two "unusual properties" of §3:
    {!rerandomize_key} (raising a public key to a neighbor key [r]) and
    {!adjust} (raising the ephemeral part of a ciphertext to the same [r]
    so the original secret key decrypts it again), plus the Kurosawa
    multi-recipient optimization (§5.1) that reuses one ephemeral key
    across the [L] bit-ciphertexts of a share. *)

type ciphertext = Elgamal.ciphertext = { c1 : Group.elt; c2 : Group.elt }

val keygen : Prg.t -> Group.t -> Elgamal.secret_key * Elgamal.public_key

val encrypt : Prg.t -> Group.t -> Elgamal.public_key -> int -> ciphertext
(** [encrypt prg grp h v] encrypts integer [v] (negative allowed; encoded
    mod q) as [(g^y, g^v * h^y)]. *)

val add : Group.t -> ciphertext -> ciphertext -> ciphertext
(** Homomorphic addition of plaintexts. *)

val add_clear : Prg.t -> Group.t -> Elgamal.public_key -> ciphertext -> int -> ciphertext
(** [add_clear prg grp h c v] homomorphically adds the known integer [v]
    to [c] (used by node [i] to inject geometric noise into a forwarded
    ciphertext without knowing its plaintext). Re-randomizes the
    ciphertext as a side effect. *)

val rerandomize_key : Group.t -> Elgamal.public_key -> Group.exponent -> Elgamal.public_key
(** [rerandomize_key grp h r] is [h^r]: a fresh-looking public key that
    no longer matches [h] but whose holder can still decrypt adjusted
    ciphertexts. *)

val adjust : Group.t -> ciphertext -> Group.exponent -> ciphertext
(** [adjust grp c r] raises the ephemeral part to [r], converting a
    ciphertext under [h^r] into one under [h]. *)

val decrypt_elt : Group.t -> Elgamal.secret_key -> ciphertext -> Group.elt
(** Recovers [g^v] (not [v] itself). *)

(** Bounded discrete-log lookup table, the paper's decryption mechanism. *)
module Table : sig
  type t

  val make : Group.t -> lo:int -> hi:int -> t
  (** Precomputes [g^v] for all [v] in [\[lo, hi\]]. O(hi - lo) group
      operations, built incrementally (one multiplication per entry). *)

  val lookup : t -> Group.elt -> int option
  val size : t -> int
end

val decrypt : Group.t -> Elgamal.secret_key -> Table.t -> ciphertext -> int option
(** [None] is a decryption failure (plaintext outside the table) — the
    [P_fail] event of Appendix B. *)

(** Multi-recipient encryption with a shared ephemeral key (Kurosawa). *)
val encrypt_multi :
  Prg.t -> Group.t -> (Elgamal.public_key * int) list -> Group.elt * Group.elt list
(** [encrypt_multi prg grp [(h_1,v_1); ...]] returns [(g^y, [c2_1; ...])]
    where [c2_i = g^(v_i) * h_i^y]. The ciphertext of recipient [i] is
    [(g^y, c2_i)]; one group element is shared by all recipients, saving
    both exponentiations and bandwidth. *)

val encrypt_multi_batch :
  Prg.t ->
  Group.t ->
  (Elgamal.public_key * int) list array ->
  (Group.elt * Group.elt list) array
(** A whole block transfer's bundles through one batched call. Ephemerals
    are drawn in bundle order (same PRG state ⇒ bit-identical to a
    sequential {!encrypt_multi} loop) and the [h^y] exponentiations are
    regrouped per distinct key into shared-base batches. *)

val decrypt_shared :
  Group.t ->
  Table.t ->
  c1:Group.elt ->
  (Elgamal.secret_key * Group.elt) array ->
  int option array
(** Batched {!decrypt} of ciphertexts [(c1, c2_i)] sharing one (already
    adjusted) ephemeral part: the [c1^x_i] blindings are one shared-base
    batch and the inverses one batch inversion. *)

val adjust_many : Group.t -> ciphertext array -> Group.exponent -> ciphertext array
(** {!adjust} over a block with a shared [r]. *)

val multi_ciphertext_bytes : Group.t -> int -> int
(** [multi_ciphertext_bytes grp l]: wire size of [l] messages sent with the
    shared-ephemeral optimization ([l + 1] group elements). *)
