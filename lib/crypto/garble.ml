module Bitvec = Dstress_util.Bitvec
module Circuit = Dstress_circuit.Circuit

let label_bytes = 16

type result = {
  output : Bitvec.t;
  and_tables : int;
  table_bytes : int;
}

let xor_labels a b =
  Bytes.init label_bytes (fun i ->
      Char.chr (Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i)))

let lsb label = Char.code (Bytes.get label 0) land 1

(* Row mask: H(gate id, label_a, label_b) truncated to one label. *)
let row_hash gid la lb =
  let payload =
    Bytes.concat (Bytes.of_string "|")
      [ Bytes.of_string (string_of_int gid); la; lb ]
  in
  Bytes.sub (Sha256.digest payload) 0 label_bytes

let execute ?(mode = Ot_ext.Crypto) grp meter circuit ~garbler_bits ~garbler_input
    ~evaluator_input ~seed =
  let num_inputs = circuit.Circuit.num_inputs in
  if garbler_bits < 0 || garbler_bits > num_inputs then
    invalid_arg "Garble.execute: bad garbler_bits";
  if Bitvec.length garbler_input <> garbler_bits then
    invalid_arg "Garble.execute: garbler input width";
  if Bitvec.length evaluator_input <> num_inputs - garbler_bits then
    invalid_arg "Garble.execute: evaluator input width";
  let prg = Prg.of_string ("garble:" ^ seed) in
  (* Global free-XOR offset; low bit forced so the two labels of a wire
     always carry opposite permute bits. *)
  let delta = Prg.bytes prg label_bytes in
  Bytes.set delta 0 (Char.chr (Char.code (Bytes.get delta 0) lor 1));
  let fresh_label () = Prg.bytes prg label_bytes in
  let gates = circuit.Circuit.gates in
  let ngates = Array.length gates in
  (* Garbler side: zero-labels for every wire (label for value 1 is
     label0 XOR delta), plus tables for AND gates. *)
  let label0 = Array.make ngates (Bytes.create 0) in
  let tables : (int * bytes array) list ref = ref [] in
  let and_count = ref 0 in
  Array.iteri
    (fun gid gate ->
      match gate with
      | Circuit.Input _ | Circuit.Const _ -> label0.(gid) <- fresh_label ()
      | Circuit.Xor (a, b) -> label0.(gid) <- xor_labels label0.(a) label0.(b)
      | Circuit.Not a -> label0.(gid) <- xor_labels label0.(a) delta
      | Circuit.And (a, b) ->
          let out0 = fresh_label () in
          label0.(gid) <- out0;
          incr and_count;
          let table = Array.make 4 (Bytes.create 0) in
          List.iter
            (fun (va, vb) ->
              let la = if va = 1 then xor_labels label0.(a) delta else label0.(a) in
              let lb = if vb = 1 then xor_labels label0.(b) delta else label0.(b) in
              let out = if va land vb = 1 then xor_labels out0 delta else out0 in
              (* Point-and-permute row index from the labels' low bits. *)
              table.((2 * lsb la) + lsb lb) <- xor_labels (row_hash gid la lb) out)
            [ (0, 0); (0, 1); (1, 0); (1, 1) ];
          tables := (gid, table) :: !tables)
    gates;
  let tables = List.rev !tables in
  let label_of gid v = if v then xor_labels label0.(gid) delta else label0.(gid) in
  (* --- Wire: garbler -> evaluator ------------------------------- *)
  (* Tables. *)
  let table_bytes = 4 * label_bytes * !and_count in
  Xfer.add_a_to_b meter table_bytes;
  (* Garbler's input labels and the (public) constant labels. *)
  let active = Array.make ngates (Bytes.create 0) in
  let garbler_label_count = ref 0 in
  Array.iteri
    (fun gid gate ->
      match gate with
      | Circuit.Input k when k < garbler_bits ->
          active.(gid) <- label_of gid (Bitvec.get garbler_input k);
          incr garbler_label_count
      | Circuit.Const b ->
          active.(gid) <- label_of gid b;
          incr garbler_label_count
      | Circuit.Input _ | Circuit.Xor _ | Circuit.Not _ | Circuit.And _ -> ())
    gates;
  Xfer.add_a_to_b meter (!garbler_label_count * label_bytes);
  (* Evaluator's input labels via OT (garbler = sender). *)
  let evaluator_wires =
    Array.of_list
      (List.concat
         (List.init ngates (fun gid ->
              match gates.(gid) with
              | Circuit.Input k when k >= garbler_bits -> [ (gid, k - garbler_bits) ]
              | Circuit.Input _ | Circuit.Const _ | Circuit.Xor _ | Circuit.Not _
              | Circuit.And _ -> [])))
  in
  if Array.length evaluator_wires > 0 then begin
    let ot =
      Ot_ext.setup ~mode grp meter ~sender_prg:(Prg.of_string ("garble-ot-s:" ^ seed))
        ~receiver_prg:(Prg.of_string ("garble-ot-r:" ^ seed))
    in
    let pairs =
      Array.map (fun (gid, _) -> (label_of gid false, label_of gid true)) evaluator_wires
    in
    let choices = Array.map (fun (_, k) -> Bitvec.get evaluator_input k) evaluator_wires in
    let received = Ot_ext.extend ot meter ~pairs ~choices in
    Array.iteri (fun i (gid, _) -> active.(gid) <- received.(i)) evaluator_wires
  end;
  (* Output decode bits. *)
  Xfer.add_a_to_b meter ((Array.length circuit.Circuit.outputs + 7) / 8);
  (* --- Evaluation (evaluator side) ------------------------------- *)
  let table_of = Hashtbl.create (max 1 !and_count) in
  List.iter (fun (gid, t) -> Hashtbl.replace table_of gid t) tables;
  Array.iteri
    (fun gid gate ->
      match gate with
      | Circuit.Input _ | Circuit.Const _ -> ()
      | Circuit.Xor (a, b) -> active.(gid) <- xor_labels active.(a) active.(b)
      (* NOT is free for the evaluator too: the garbler flipped the wire's
         semantics (label0_c = label1_a), so the active label is reused
         unchanged — delta never leaves the garbler. *)
      | Circuit.Not a -> active.(gid) <- active.(a)
      | Circuit.And (a, b) ->
          let table = Hashtbl.find table_of gid in
          let row = table.((2 * lsb active.(a)) + lsb active.(b)) in
          active.(gid) <- xor_labels row (row_hash gid active.(a) active.(b)))
    gates;
  let output =
    Bitvec.init (Array.length circuit.Circuit.outputs) (fun o ->
        let w = circuit.Circuit.outputs.(o) in
        (* decode: value = lsb(active) XOR permute bit of the wire *)
        lsb active.(w) lxor lsb label0.(w) = 1)
  in
  { output; and_tables = !and_count; table_bytes }
