(** Two-way traffic accounting for a pair of protocol parties, backed by
    the {!Dstress_obs.Obs.Metrics} registry.

    The pairwise crypto primitives ({!Ot}, {!Ot_ext}, {!Garble}) charge
    every wire byte they would send to one of these: [a] is the protocol
    sender/garbler, [b] the receiver/evaluator. Callers create one
    short-lived [Xfer.t] per exchange and fold it into phase-attributed
    accounting (a {!Dstress_mpc.Traffic} matrix, a run-wide registry via
    {!metrics} and [Obs.Metrics.merge_into]) — there is deliberately no
    [reset]: in-place resetting is what loses attribution. *)

type t

val create : unit -> t

val add_a_to_b : t -> int -> unit
(** Charge bytes on the a→b direction (sender/garbler to receiver). *)

val add_b_to_a : t -> int -> unit

val a_to_b : t -> int
val b_to_a : t -> int

val total : t -> int
(** [a_to_b + b_to_a]. *)

val metrics : t -> Dstress_obs.Obs.Metrics.t
(** The backing registry — two counters, [xfer.a_to_b] and [xfer.b_to_a]
    — for merging an exchange into a run-wide registry. *)

val pp : Format.formatter -> t -> unit
