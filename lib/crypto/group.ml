module Nat = Dstress_bignum.Nat

type elt = Nat.t
type exponent = Nat.t

type t = {
  p : Nat.t;
  q : Nat.t;
  g : elt;
  mont : Nat.Mont.ctx;
  g_mont : Nat.t; (* generator in Montgomery form, for pow_g *)
  one_mont : Nat.t;
  g_table : Nat.t array array;
      (* fixed-base window table: g_table.(i).(d-1) is g^(d * 2^(w*i)) in
         Montgomery form, for digits d in [1, 2^w). Covers every exponent
         below q; built eagerly so parallel domains never race a lazy. *)
}

let fixed_base_window = 4

let build_g_table mont g_mont ~ebits =
  let w = fixed_base_window in
  let windows = (ebits + w - 1) / w in
  let digits = (1 lsl w) - 1 in
  let base = ref g_mont in
  Array.init windows (fun _ ->
      let row = Array.make digits !base in
      for d = 1 to digits - 1 do
        row.(d) <- Nat.Mont.mul mont row.(d - 1) !base
      done;
      base := Nat.Mont.mul mont row.(digits - 1) !base;
      row)

let p t = t.p
let q t = t.q
let g t = t.g

let element_bytes t = (Nat.num_bits t.p + 7) / 8

let make ~p ~q ~g =
  if not (Nat.equal p (Nat.add (Nat.mul Nat.two q) Nat.one)) then
    invalid_arg "Group.make: p <> 2q + 1";
  let mont = Nat.Mont.create p in
  let pow_plain b e = Nat.mod_pow ~base:b ~exp:e ~m:p in
  if Nat.is_one g || not (Nat.is_one (pow_plain g q)) then
    invalid_arg "Group.make: generator does not have order q";
  let g_mont = Nat.Mont.to_mont mont g in
  {
    p;
    q;
    g;
    mont;
    g_mont;
    one_mont = Nat.Mont.to_mont mont Nat.one;
    g_table = build_g_table mont g_mont ~ebits:(Nat.num_bits q);
  }

(* Parameters generated offline (see DESIGN.md): safe primes with fixed
   seed 0xD57E55; g = 4 = 2^2 is a square, hence a generator of the
   order-q subgroup. *)
let toy =
  lazy
    (make
       ~p:(Nat.of_hex "a869b1df7b8fb963")
       ~q:(Nat.of_hex "5434d8efbdc7dcb1")
       ~g:(Nat.of_int 4))

let medium =
  lazy
    (make
       ~p:(Nat.of_hex "babd616a6267f018a748355aae61269b")
       ~q:(Nat.of_hex "5d5eb0b53133f80c53a41aad5730934d")
       ~g:(Nat.of_int 4))

let standard =
  lazy
    (make
       ~p:(Nat.of_hex "a8d5a83392ab254e1558c9d68097b79e9804a125c4a9dc0ed2d2765dd6c74b0b")
       ~q:(Nat.of_hex "546ad419c95592a70aac64eb404bdbcf4c025092e254ee0769693b2eeb63a585")
       ~g:(Nat.of_int 4))

let by_name = function
  | "toy" -> Lazy.force toy
  | "medium" -> Lazy.force medium
  | "standard" -> Lazy.force standard
  | s -> invalid_arg ("Group.by_name: unknown group " ^ s)

let mul t a b =
  Nat.Mont.from_mont t.mont
    (Nat.Mont.mul t.mont (Nat.Mont.to_mont t.mont a) (Nat.Mont.to_mont t.mont b))

let pow t b e =
  Nat.Mont.from_mont t.mont (Nat.Mont.pow t.mont (Nat.Mont.to_mont t.mont b) e)

(* Fixed-base exponentiation: one precomputed-table multiplication per
   nonzero w-bit digit of the exponent, no squarings. Exponents wider than
   the table (never produced by the exponent arithmetic, which reduces
   mod q) fall back to the generic ladder. *)
let pow_g t e =
  let w = fixed_base_window in
  let nb = Nat.num_bits e in
  if nb > w * Array.length t.g_table then
    Nat.Mont.from_mont t.mont (Nat.Mont.pow t.mont t.g_mont e)
  else begin
    let acc = ref t.one_mont in
    for i = 0 to ((nb + w - 1) / w) - 1 do
      let lo = w * i in
      let d =
        (if Nat.bit e lo then 1 else 0)
        lor (if Nat.bit e (lo + 1) then 2 else 0)
        lor (if Nat.bit e (lo + 2) then 4 else 0)
        lor (if Nat.bit e (lo + 3) then 8 else 0)
      in
      if d <> 0 then acc := Nat.Mont.mul t.mont !acc t.g_table.(i).(d - 1)
    done;
    Nat.Mont.from_mont t.mont !acc
  end

let inv t a = Nat.mod_inv a ~m:t.p

let random_exponent prg t =
  let rec loop () =
    let e = Prg.nat_below prg t.q in
    if Nat.is_zero e then loop () else e
  in
  loop ()

let exp_add t a b = Nat.mod_add a b ~m:t.q
let exp_sub t a b = Nat.mod_sub a b ~m:t.q
let exp_mul t a b = Nat.mod_mul a b ~m:t.q
let exp_inv t a = Nat.mod_inv a ~m:t.q

let is_element t x =
  Nat.compare x Nat.zero > 0
  && Nat.compare x t.p < 0
  && Nat.is_one (pow t x t.q)

let elt_equal = Nat.equal
let pp_elt = Nat.pp
