module Nat = Dstress_bignum.Nat

type elt = Nat.t
type exponent = Nat.t

module Nat_table = Hashtbl.Make (struct
  type t = Nat.t

  let equal = Nat.equal
  let hash = Nat.hash
end)

type t = {
  p : Nat.t;
  q : Nat.t;
  g : elt;
  mont : Nat.Mont.ctx;
  g_mont : Nat.t; (* generator in Montgomery form *)
  one_mont : Nat.t;
  g_pre : Nat.Mont.precomp;
      (* fixed-base window table for g, covering every exponent below q;
         built eagerly so parallel domains never race a lazy *)
  key_tables : Nat.Mont.precomp Nat_table.t;
      (* per-key window tables, built lazily the first time a key carries a
         batch big enough to amortize the build; bounded (cleared wholesale
         at [key_tables_cap]) and guarded by [cache_lock] *)
  g_int_cache : (int, elt) Hashtbl.t;
      (* memo of g^v for the small signed plaintexts of exponential
         ElGamal; values are deterministic so concurrent double-computes
         are harmless. Guarded by [cache_lock]. *)
}

(* One module-level lock guards every group's caches. It cannot live inside
   [t]: a Mutex is a custom block, and groups travel inside task writebacks
   that the distributed executor marshals between processes. Contention is
   negligible (lock-holding sections are a hash probe or replace). *)
let cache_lock = Mutex.create ()

let key_tables_cap = 8
let g_int_cache_cap = 1 lsl 16

let p t = t.p
let q t = t.q
let g t = t.g

let element_bytes t = (Nat.num_bits t.p + 7) / 8

let make ~p ~q ~g =
  if not (Nat.equal p (Nat.add (Nat.mul Nat.two q) Nat.one)) then
    invalid_arg "Group.make: p <> 2q + 1";
  let mont = Nat.Mont.create p in
  let pow_plain b e = Nat.mod_pow ~base:b ~exp:e ~m:p in
  if Nat.is_one g || not (Nat.is_one (pow_plain g q)) then
    invalid_arg "Group.make: generator does not have order q";
  let g_mont = Nat.Mont.to_mont mont g in
  {
    p;
    q;
    g;
    mont;
    g_mont;
    one_mont = Nat.Mont.to_mont mont Nat.one;
    g_pre = Nat.Mont.precompute mont g_mont ~ebits:(Nat.num_bits q);
    key_tables = Nat_table.create 16;
    g_int_cache = Hashtbl.create 256;
  }

(* Parameters generated offline (see DESIGN.md): safe primes with fixed
   seed 0xD57E55; g = 4 = 2^2 is a square, hence a generator of the
   order-q subgroup. *)
let toy =
  lazy
    (make
       ~p:(Nat.of_hex "a869b1df7b8fb963")
       ~q:(Nat.of_hex "5434d8efbdc7dcb1")
       ~g:(Nat.of_int 4))

let medium =
  lazy
    (make
       ~p:(Nat.of_hex "babd616a6267f018a748355aae61269b")
       ~q:(Nat.of_hex "5d5eb0b53133f80c53a41aad5730934d")
       ~g:(Nat.of_int 4))

let standard =
  lazy
    (make
       ~p:(Nat.of_hex "a8d5a83392ab254e1558c9d68097b79e9804a125c4a9dc0ed2d2765dd6c74b0b")
       ~q:(Nat.of_hex "546ad419c95592a70aac64eb404bdbcf4c025092e254ee0769693b2eeb63a585")
       ~g:(Nat.of_int 4))

(* RFC 7919 finite-field Diffie-Hellman safe primes. q = (p - 1) / 2 is
   prime, and g = 2 is a quadratic residue (p = 7 mod 8), hence a
   generator of the order-q subgroup. These are the paper-scale parameter
   sets: real 2048/3072-bit moduli rather than the offline-generated toy
   primes above. *)
let make_ffdhe p_hex =
  let p = Nat.of_hex p_hex in
  let q = Nat.shift_right (Nat.sub p Nat.one) 1 in
  make ~p ~q ~g:Nat.two

let ffdhe2048 =
  lazy
    (make_ffdhe
       ("ffffffffffffffffadf85458a2bb4a9aafdc5620273d3cf1d8b9c583ce2d3695"
      ^ "a9e13641146433fbcc939dce249b3ef97d2fe363630c75d8f681b202aec4617a"
      ^ "d3df1ed5d5fd65612433f51f5f066ed0856365553ded1af3b557135e7f57c935"
      ^ "984f0c70e0e68b77e2a689daf3efe8721df158a136ade73530acca4f483a797a"
      ^ "bc0ab182b324fb61d108a94bb2c8e3fbb96adab760d7f4681d4f42a3de394df4"
      ^ "ae56ede76372bb190b07a7c8ee0a6d709e02fce1cdf7e2ecc03404cd28342f61"
      ^ "9172fe9ce98583ff8e4f1232eef28183c3fe3b1b4c6fad733bb5fcbc2ec22005"
      ^ "c58ef1837d1683b2c6f34a26c1b2effa886b423861285c97ffffffffffffffff"))

let ffdhe3072 =
  lazy
    (make_ffdhe
       ("ffffffffffffffffadf85458a2bb4a9aafdc5620273d3cf1d8b9c583ce2d3695"
      ^ "a9e13641146433fbcc939dce249b3ef97d2fe363630c75d8f681b202aec4617a"
      ^ "d3df1ed5d5fd65612433f51f5f066ed0856365553ded1af3b557135e7f57c935"
      ^ "984f0c70e0e68b77e2a689daf3efe8721df158a136ade73530acca4f483a797a"
      ^ "bc0ab182b324fb61d108a94bb2c8e3fbb96adab760d7f4681d4f42a3de394df4"
      ^ "ae56ede76372bb190b07a7c8ee0a6d709e02fce1cdf7e2ecc03404cd28342f61"
      ^ "9172fe9ce98583ff8e4f1232eef28183c3fe3b1b4c6fad733bb5fcbc2ec22005"
      ^ "c58ef1837d1683b2c6f34a26c1b2effa886b4238611fcfdcde355b3b6519035b"
      ^ "bc34f4def99c023861b46fc9d6e6c9077ad91d2691f7f7ee598cb0fac186d91c"
      ^ "aefe130985139270b4130c93bc437944f4fd4452e2d74dd364f2e21e71f54bff"
      ^ "5cae82ab9c9df69ee86d2bc522363a0dabc521979b0deada1dbf9a42d5c4484e"
      ^ "0abcd06bfa53ddef3c1b20ee3fd59d7c25e41d2b66c62e37ffffffffffffffff"))

let registry =
  [
    ("toy", toy);
    ("medium", medium);
    ("standard", standard);
    ("ffdhe2048", ffdhe2048);
    ("ffdhe3072", ffdhe3072);
  ]

let names = List.map fst registry

let by_name name =
  match List.assoc_opt name registry with
  | Some g -> Lazy.force g
  | None ->
      invalid_arg
        (Printf.sprintf "Group.by_name: unknown group %s (expected one of: %s)"
           name (String.concat ", " names))

let mul t a b =
  Nat.Mont.from_mont t.mont
    (Nat.Mont.mul t.mont (Nat.Mont.to_mont t.mont a) (Nat.Mont.to_mont t.mont b))

let pow t b e =
  Nat.Mont.from_mont t.mont (Nat.Mont.pow t.mont (Nat.Mont.to_mont t.mont b) e)

(* Fixed-base exponentiation: one precomputed-table multiplication per
   nonzero window digit of the exponent, no squarings. Exponents wider
   than the table (never produced by the exponent arithmetic, which
   reduces mod q) fall back to the generic ladder inside [pow_precomp]. *)
let pow_g t e = Nat.Mont.from_mont t.mont (Nat.Mont.pow_precomp t.mont t.g_pre e)

let inv t a = Nat.mod_inv a ~m:t.p

let random_exponent prg t =
  let rec loop () =
    let e = Prg.nat_below prg t.q in
    if Nat.is_zero e then loop () else e
  in
  loop ()

let exp_add t a b = Nat.mod_add a b ~m:t.q
let exp_sub t a b = Nat.mod_sub a b ~m:t.q
let exp_mul t a b = Nat.mod_mul a b ~m:t.q
let exp_inv t a = Nat.mod_inv a ~m:t.q

let is_element t x =
  Nat.compare x Nat.zero > 0
  && Nat.compare x t.p < 0
  && Nat.is_one (pow t x t.q)

let elt_equal = Nat.equal
let pp_elt = Nat.pp

(* ------------------------------------------------------------------ *)
(* Batch entry points                                                  *)
(* ------------------------------------------------------------------ *)

(* g^v for a signed machine integer, through a memo of the (heavily
   repeated) small plaintexts of exponential ElGamal. Negative values
   encode as q - |v|, a full-width exponent, which makes the memo
   worthwhile even for tiny |v|. *)
let pow_g_int t v =
  let cached =
    Mutex.lock cache_lock;
    let r = Hashtbl.find_opt t.g_int_cache v in
    Mutex.unlock cache_lock;
    r
  in
  match cached with
  | Some e -> e
  | None ->
      let exp =
        if v >= 0 then Nat.rem (Nat.of_int v) t.q
        else Nat.mod_sub Nat.zero (Nat.rem (Nat.of_int (-v)) t.q) ~m:t.q
      in
      let e = pow_g t exp in
      Mutex.lock cache_lock;
      if Hashtbl.length t.g_int_cache < g_int_cache_cap then
        Hashtbl.replace t.g_int_cache v e;
      Mutex.unlock cache_lock;
      e

(* Look up (or, when a batch of [hint] exponentiations justifies the build
   cost, create) the window table of a non-generator base. *)
let key_table t base_mont ~hint =
  let key = base_mont in
  Mutex.lock cache_lock;
  let found = Nat_table.find_opt t.key_tables key in
  Mutex.unlock cache_lock;
  match found with
  | Some pre -> Some pre
  | None ->
      if hint < 8 then None
      else begin
        let pre =
          Nat.Mont.precompute t.mont base_mont ~ebits:(Nat.num_bits t.q)
        in
        Mutex.lock cache_lock;
        if Nat_table.length t.key_tables >= key_tables_cap then
          Nat_table.reset t.key_tables;
        Nat_table.replace t.key_tables key pre;
        Mutex.unlock cache_lock;
        Some pre
      end

let pow_base_many t b exps =
  if Array.length exps = 0 then [||]
  else if elt_equal b t.g then Array.map (fun e -> pow_g t e) exps
  else begin
    let bm = Nat.Mont.to_mont t.mont b in
    match key_table t bm ~hint:(Array.length exps) with
    | Some pre ->
        Array.map
          (fun e -> Nat.Mont.from_mont t.mont (Nat.Mont.pow_precomp t.mont pre e))
          exps
    | None ->
        Array.map (Nat.Mont.from_mont t.mont) (Nat.Mont.pow_base_many t.mont bm exps)
  end

let pow_many t pairs =
  Array.map
    (fun (b, e) ->
      if elt_equal b t.g then pow_g t e
      else
        Nat.Mont.from_mont t.mont
          (Nat.Mont.pow t.mont (Nat.Mont.to_mont t.mont b) e))
    pairs

(* Shared-exponent batch (certificate blinding, ciphertext adjustment).
   The bases are all distinct so no cross-element work can be shared; the
   win over a caller-side loop is the kernel (scratch reuse, no per-op
   context) plus one API the transfer layer can hand a whole block to. *)
let rerandomize_many t bases r =
  Array.map
    (fun b ->
      Nat.Mont.from_mont t.mont
        (Nat.Mont.pow t.mont (Nat.Mont.to_mont t.mont b) r))
    bases

(* Simultaneous product exponentiation. Pairs based on the group generator
   are merged by summing their exponents mod q (every subgroup element has
   order dividing q) and routed through the fixed-base table; the rest go
   through Shamir/Pippenger. Bases must be subgroup elements. *)
let multi_pow t pairs =
  let g_exp = ref None in
  let rest = ref [] in
  Array.iter
    (fun (b, e) ->
      if elt_equal b t.g then
        g_exp := Some (match !g_exp with None -> e | Some a -> exp_add t a e)
      else rest := (Nat.Mont.to_mont t.mont b, e) :: !rest)
    pairs;
  let rest = Array.of_list (List.rev !rest) in
  let parts = [] in
  let parts =
    match !g_exp with
    | None -> parts
    | Some e -> Nat.Mont.pow_precomp t.mont t.g_pre e :: parts
  in
  let parts =
    if Array.length rest = 0 then parts
    else Nat.Mont.multi_pow t.mont rest :: parts
  in
  match parts with
  | [] -> Nat.one
  | [ x ] -> Nat.Mont.from_mont t.mont x
  | [ x; y ] -> Nat.Mont.from_mont t.mont (Nat.Mont.mul t.mont x y)
  | _ -> assert false

(* Montgomery's batch-inversion trick: one modular inverse plus 3(n-1)
   multiplications instead of n inverses. *)
let inv_many t elts =
  let n = Array.length elts in
  if n = 0 then [||]
  else if n = 1 then [| inv t elts.(0) |]
  else begin
    let mont = t.mont in
    let ms = Array.map (Nat.Mont.to_mont mont) elts in
    let prefix = Array.make n ms.(0) in
    for i = 1 to n - 1 do
      prefix.(i) <- Nat.Mont.mul mont prefix.(i - 1) ms.(i)
    done;
    (* inv of the total product, back in Montgomery form *)
    let total = Nat.Mont.from_mont mont prefix.(n - 1) in
    let inv_run = ref (Nat.Mont.to_mont mont (inv t total)) in
    let out = Array.make n Nat.one in
    for i = n - 1 downto 1 do
      out.(i) <- Nat.Mont.from_mont mont (Nat.Mont.mul mont !inv_run prefix.(i - 1));
      inv_run := Nat.Mont.mul mont !inv_run ms.(i)
    done;
    out.(0) <- Nat.Mont.from_mont mont !inv_run;
    out
  end
