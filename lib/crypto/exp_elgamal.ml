module Nat = Dstress_bignum.Nat

type ciphertext = Elgamal.ciphertext = { c1 : Group.elt; c2 : Group.elt }

let keygen = Elgamal.keygen

(* Encode an integer (possibly negative) as an exponent mod q. *)
let encode_exponent grp v =
  let q = Group.q grp in
  if v >= 0 then Nat.rem (Nat.of_int v) q
  else Nat.mod_sub Nat.zero (Nat.rem (Nat.of_int (-v)) q) ~m:q

let g_to_the grp v = Group.pow_g grp (encode_exponent grp v)

let encrypt prg grp h v = Elgamal.encrypt prg grp h (g_to_the grp v)

let add = Elgamal.mul

let add_clear prg grp h c v =
  add grp c (encrypt prg grp h v)

let rerandomize_key grp h r = Group.pow grp h r

let adjust grp c r = { c with c1 = Group.pow grp c.c1 r }

let decrypt_elt = Elgamal.decrypt

(* Keying the table on the number itself (canonical limb array, cheap
   Nat.hash) avoids allocating a hex string per probe on the transfer hot
   path. *)
module Nat_table = Hashtbl.Make (struct
  type t = Nat.t

  let equal = Nat.equal
  let hash = Nat.hash
end)

module Table = struct
  type t = { entries : int Nat_table.t; size : int }

  let make grp ~lo ~hi =
    if hi < lo then invalid_arg "Exp_elgamal.Table.make: hi < lo";
    let entries = Nat_table.create (2 * (hi - lo + 1)) in
    (* Walk the range with one group multiplication per entry instead of a
       full exponentiation each. *)
    let g = Group.g grp in
    let cur = ref (g_to_the grp lo) in
    for v = lo to hi do
      Nat_table.replace entries !cur v;
      cur := Group.mul grp !cur g
    done;
    { entries; size = hi - lo + 1 }

  let lookup t elt = Nat_table.find_opt t.entries elt

  let size t = t.size
end

let decrypt grp x table c = Table.lookup table (decrypt_elt grp x c)

let encrypt_multi prg grp recipients =
  let y = Group.random_exponent prg grp in
  let c1 = Group.pow_g grp y in
  let c2s =
    List.map
      (fun (h, v) -> Group.mul grp (g_to_the grp v) (Group.pow grp h y))
      recipients
  in
  (c1, c2s)

let multi_ciphertext_bytes grp l = (l + 1) * Group.element_bytes grp
