module Nat = Dstress_bignum.Nat

type ciphertext = Elgamal.ciphertext = { c1 : Group.elt; c2 : Group.elt }

let keygen = Elgamal.keygen

(* The mod-q encoding of signed plaintexts lives in Group.pow_g_int, which
   also memoizes the resulting powers. *)
let g_to_the grp v = Group.pow_g_int grp v

let encrypt prg grp h v = Elgamal.encrypt prg grp h (g_to_the grp v)

let add = Elgamal.mul

let add_clear prg grp h c v =
  add grp c (encrypt prg grp h v)

let rerandomize_key grp h r = Group.pow grp h r

let adjust grp c r = { c with c1 = Group.pow grp c.c1 r }

let decrypt_elt = Elgamal.decrypt

(* Keying the table on the number itself (canonical limb array, cheap
   Nat.hash) avoids allocating a hex string per probe on the transfer hot
   path. *)
module Nat_table = Hashtbl.Make (struct
  type t = Nat.t

  let equal = Nat.equal
  let hash = Nat.hash
end)

module Table = struct
  type t = { entries : int Nat_table.t; size : int }

  let make grp ~lo ~hi =
    if hi < lo then invalid_arg "Exp_elgamal.Table.make: hi < lo";
    let entries = Nat_table.create (2 * (hi - lo + 1)) in
    (* Walk the range with one group multiplication per entry instead of a
       full exponentiation each. *)
    let g = Group.g grp in
    let cur = ref (g_to_the grp lo) in
    for v = lo to hi do
      Nat_table.replace entries !cur v;
      cur := Group.mul grp !cur g
    done;
    { entries; size = hi - lo + 1 }

  let lookup t elt = Nat_table.find_opt t.entries elt

  let size t = t.size
end

let decrypt grp x table c = Table.lookup table (decrypt_elt grp x c)

let encrypt_multi prg grp recipients =
  let y = Group.random_exponent prg grp in
  let c1 = Group.pow_g grp y in
  let c2s =
    List.map
      (fun (h, v) -> Group.mul grp (g_to_the grp v) (Group.pow grp h y))
      recipients
  in
  (c1, c2s)

(* A block transfer's worth of multi-recipient bundles in one batched
   call. Ephemerals are drawn in bundle order — a seeded PRG yields
   exactly the bundles a sequential [encrypt_multi] loop would — and the
   per-recipient [h^y] exponentiations are then regrouped by key: each
   member key appears in every bundle of a transfer, so one shared-base
   batch per distinct key replaces a generic exponentiation per
   (bundle, recipient). *)
let encrypt_multi_batch prg grp bundles =
  let ys = Array.map (fun _ -> Group.random_exponent prg grp) bundles in
  let c1s = Array.map (Group.pow_g grp) ys in
  let occs_by_key : (int * int) list Nat_table.t = Nat_table.create 16 in
  Array.iteri
    (fun bi recipients ->
      List.iteri
        (fun pi (h, _) ->
          let prev = try Nat_table.find occs_by_key h with Not_found -> [] in
          Nat_table.replace occs_by_key h ((bi, pi) :: prev))
        recipients)
    bundles;
  let hys =
    Array.map (fun recipients -> Array.make (List.length recipients) Nat.zero) bundles
  in
  Nat_table.iter
    (fun h occs ->
      let occs = Array.of_list (List.rev occs) in
      let rs = Group.pow_base_many grp h (Array.map (fun (bi, _) -> ys.(bi)) occs) in
      Array.iteri (fun j (bi, pi) -> hys.(bi).(pi) <- rs.(j)) occs)
    occs_by_key;
  Array.mapi
    (fun bi recipients ->
      ( c1s.(bi),
        List.mapi
          (fun pi (_, v) -> Group.mul grp (g_to_the grp v) hys.(bi).(pi))
          recipients ))
    bundles

(* Batched lookup decryption of ciphertexts sharing one ephemeral part
   (the Kurosawa bundles after adjustment): the blinding factors c1^x are
   one shared-base batch, and their inverses one batch inversion. *)
let decrypt_shared grp table ~c1 pairs =
  let ss = Group.pow_base_many grp c1 (Array.map fst pairs) in
  let invs = Group.inv_many grp ss in
  Array.mapi
    (fun i (_, c2) -> Table.lookup table (Group.mul grp c2 invs.(i)))
    pairs

let adjust_many grp cs r =
  let c1s = Group.rerandomize_many grp (Array.map (fun c -> c.c1) cs) r in
  Array.mapi (fun i c -> { c with c1 = c1s.(i) }) cs

let multi_ciphertext_bytes grp l = (l + 1) * Group.element_bytes grp
