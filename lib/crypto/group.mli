(** Schnorr groups: the prime-order subgroup of Z_p* used by the ElGamal
    layer.

    The paper's prototype uses the secp384r1 elliptic curve; this build
    substitutes a multiplicative Schnorr group (a safe prime [p = 2q + 1]
    and the order-[q] subgroup of squares). Every property the protocol
    needs — additive homomorphism of exponential ElGamal, public-key
    re-randomization, ephemeral-key reuse — is generic over the group, so
    the substitution changes constants but not behaviour.

    Five parameter sets are provided: [toy] (64-bit, for fast unit tests),
    [medium] (128-bit) and [standard] (256-bit) generated offline with a
    fixed seed, plus the RFC 7919 [ffdhe2048] and [ffdhe3072] groups —
    real paper-scale moduli with [g = 2] — for Crypto-backend runs at
    full key sizes. All are embedded as hex. *)

type t
(** Group parameters plus a Montgomery context for fast arithmetic mod p. *)

type elt = Dstress_bignum.Nat.t
(** Group elements are naturals in [\[1, p)]. *)

type exponent = Dstress_bignum.Nat.t
(** Exponents are naturals in [\[0, q)]. *)

val make : p:Dstress_bignum.Nat.t -> q:Dstress_bignum.Nat.t -> g:elt -> t
(** Build group parameters. Raises [Invalid_argument] if [p <> 2q + 1] or
    if [g] does not have order [q]. *)

val toy : t Lazy.t
val medium : t Lazy.t
val standard : t Lazy.t

val ffdhe2048 : t Lazy.t
val ffdhe3072 : t Lazy.t
(** RFC 7919 finite-field DH groups: safe primes with [g = 2] (a quadratic
    residue since [p = 7 mod 8], hence of order [q = (p-1)/2]). *)

val names : string list
(** Every name {!by_name} accepts, in registry order. CLI help and error
    messages are generated from this list so they cannot drift. *)

val by_name : string -> t
(** Looks a group up in {!names}. Raises [Invalid_argument] (listing the
    valid names) otherwise. *)

val p : t -> Dstress_bignum.Nat.t
val q : t -> Dstress_bignum.Nat.t
val g : t -> elt

val element_bytes : t -> int
(** Serialized size of one group element (the ciphertext-size unit used by
    the traffic model). *)

val mul : t -> elt -> elt -> elt
val inv : t -> elt -> elt
val pow : t -> elt -> exponent -> elt

val pow_g : t -> exponent -> elt
(** [pow_g t e] is [g^e] through the group's precomputed fixed-base window
    table: one table multiplication per window digit, no squarings. *)

val pow_g_int : t -> int -> elt
(** [pow_g_int t v] is [g^v] for a signed machine integer (negative [v]
    encodes as [q - |v|]), memoized — exponential ElGamal re-encrypts the
    same small plaintexts constantly, and the negative encodings are
    full-width exponents. *)

val pow_many : t -> (elt * exponent) array -> elt array
(** Independent exponentiations; generator-based pairs go through the
    fixed-base table. *)

val pow_base_many : t -> elt -> exponent array -> elt array
(** One shared base, many exponents — the shape of batched lookup-table
    decryption (shared adjusted ephemeral) and per-key bundle encryption.
    Large batches build (and cache, per key) a window table; small ones
    share a single squaring chain across the batch. *)

val rerandomize_many : t -> elt array -> exponent -> elt array
(** Many bases, one shared exponent — the shape of certificate blinding
    ([pk_i^r]) and ciphertext adjustment. *)

val multi_pow : t -> (elt * exponent) array -> elt
(** Simultaneous product exponentiation [prod_i b_i^e_i] (Shamir's trick /
    Pippenger buckets); generator-based pairs are merged mod q and routed
    through the fixed-base table. Bases must be subgroup elements. *)

val inv_many : t -> elt array -> elt array
(** Montgomery's batch-inversion trick: one modular inverse plus [3(n-1)]
    multiplications for the whole batch. *)

val random_exponent : Prg.t -> t -> exponent
(** Uniform in [\[1, q)] (never zero, so re-randomizers are invertible). *)

val exp_add : t -> exponent -> exponent -> exponent
val exp_sub : t -> exponent -> exponent -> exponent
val exp_mul : t -> exponent -> exponent -> exponent
val exp_inv : t -> exponent -> exponent
(** Arithmetic in Z_q. [exp_inv] raises [Not_found] on zero. *)

val is_element : t -> elt -> bool
(** Membership test for the order-q subgroup. *)

val elt_equal : elt -> elt -> bool
val pp_elt : Format.formatter -> elt -> unit
