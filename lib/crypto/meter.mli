(** Two-way traffic meter for a pair of protocol parties.

    @deprecated This is the legacy, phase-blind accounting primitive: a
    bare byte-pair with no notion of {e which} protocol phase (or span)
    the bytes belong to, which is why every consumer immediately drains it
    into a {!Dstress_mpc.Traffic} matrix and resets it. New code should
    emit through the structured observability layer instead —
    {!Dstress_obs.Obs.Metrics} for counters and {!Dstress_obs.Obs} spans
    for phase attribution; see {!Dstress_mpc.Traffic.observe} and
    {!Dstress_mpc.Gmw.observe} for the migrated patterns. [Meter] remains
    only as the low-level currency of the pairwise crypto primitives
    ({!Ot}, {!Ot_ext}, {!Garble}), whose call sites are metered and then
    folded into phase-attributed accounting by their callers. *)

type t = { mutable a_to_b : int; mutable b_to_a : int }

val create : unit -> t
val add_a_to_b : t -> int -> unit
val add_b_to_a : t -> int -> unit
val total : t -> int

val reset : t -> unit
(** @deprecated Resetting in place is what loses attribution — prefer one
    short-lived meter per exchange, drained into {!Dstress_mpc.Traffic}
    (see [Gmw.drain_meter]) or into {!Dstress_obs.Obs.Metrics}. *)

val pp : Format.formatter -> t -> unit
