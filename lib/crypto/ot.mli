(** 1-out-of-2 oblivious transfer.

    {!base_ot} is the Bellare–Micali construction over our Schnorr group:
    the receiver publishes a key pair of which it knows only one secret
    (the other is pinned to a common point of unknown discrete log), and
    the sender encrypts each message to the corresponding key with hashed
    ElGamal. Semi-honest secure, matching the paper's HbC threat model.

    Both parties run inside one process; each function takes both sides'
    PRGs and returns the receiver's output while metering the bytes the
    real protocol would exchange ([a] = sender, [b] = receiver in the
    {!Xfer} convention). *)

val random_point : Group.t -> string -> Group.elt
(** Hash-to-group: a nothing-up-my-sleeve subgroup element whose discrete
    log is unknown to everyone (derived by hashing [tag] and squaring). *)

val base_ot :
  Group.t ->
  Xfer.t ->
  sender_prg:Prg.t ->
  receiver_prg:Prg.t ->
  m0:bytes ->
  m1:bytes ->
  choice:bool ->
  bytes
(** [base_ot grp meter ~sender_prg ~receiver_prg ~m0 ~m1 ~choice] returns
    [m_choice]. [m0] and [m1] must have equal length.
    Raises [Invalid_argument] otherwise. *)

val base_ot_bit :
  Group.t ->
  Xfer.t ->
  sender_prg:Prg.t ->
  receiver_prg:Prg.t ->
  b0:bool ->
  b1:bool ->
  choice:bool ->
  bool
(** Single-bit convenience wrapper. *)
