module Bitvec = Dstress_util.Bitvec
module Prng = Dstress_util.Prng

let kappa = 128
let seed_bytes = 16

type mode = Crypto | Simulation

(* A column generator: SHA-CTR in crypto mode, SplitMix in simulation
   mode. Both are deterministic expansions of a 16-byte seed. *)
type colgen = Sha_col of Prg.t | Fast_col of Prng.t

let colgen_of_seed mode seed =
  match mode with
  | Crypto -> Sha_col (Prg.create seed)
  | Simulation ->
      (* Condense the seed into 64 bits for SplitMix. *)
      let acc = ref 0L in
      Bytes.iteri
        (fun i c ->
          acc := Int64.logxor !acc (Int64.shift_left (Int64.of_int (Char.code c)) (8 * (i mod 8))))
        seed;
      Fast_col (Prng.create !acc)

let pack_bools_to_words bits =
  let w = Array.make ((Array.length bits + 63) / 64) 0L in
  Array.iteri
    (fun i b ->
      if b then w.(i / 64) <- Int64.logor w.(i / 64) (Int64.shift_left 1L (i mod 64)))
    bits;
  w

(* Simulation columns are filled in 64-bit chunks ({!Prng.bool_words})
   instead of one [Prng.bool] per bit; the draw order (and the generator
   state left behind) is pinned to the historical bit-at-a-time loop by
   Prng.bool_words' contract, so existing transcripts are unchanged. *)
let colgen_bits g m =
  match g with
  | Sha_col prg -> Prg.bits prg m
  | Fast_col prng -> Bitvec.of_int64_words ~len:m (Prng.bool_words prng m)

type session = {
  mode : mode;
  s : bool array; (* sender's secret correlation string, kappa bits *)
  s_words : int64 array; (* s packed 64 bits per word, for fast hashing *)
  sender_cols : colgen array; (* sender's view: PRG(k_i^{s_i}) *)
  recv_cols0 : colgen array; (* receiver's view: PRG(k_i^0) *)
  recv_cols1 : colgen array; (* PRG(k_i^1) *)
  mutable index : int; (* monotone OT counter, tweaks the row hash *)
}

let setup ?(mode = Crypto) grp meter ~sender_prg ~receiver_prg =
  let s = Array.init kappa (fun _ -> Prg.bool sender_prg) in
  let recv_cols0 = Array.make kappa (colgen_of_seed mode (Bytes.create seed_bytes)) in
  let recv_cols1 = Array.make kappa (colgen_of_seed mode (Bytes.create seed_bytes)) in
  let sender_cols = Array.make kappa (colgen_of_seed mode (Bytes.create seed_bytes)) in
  for i = 0 to kappa - 1 do
    (* Roles reverse in the base phase: the extension receiver owns both
       seeds; the extension sender obliviously learns the one selected by
       its secret bit s_i. *)
    let k0 = Prg.bytes receiver_prg seed_bytes in
    let k1 = Prg.bytes receiver_prg seed_bytes in
    let chosen =
      match mode with
      | Crypto ->
          (* The meter convention stays (a = extension sender), so meter
             through a flipped sub-meter. *)
          let sub = Xfer.create () in
          let out =
            Ot.base_ot grp sub ~sender_prg:receiver_prg ~receiver_prg:sender_prg
              ~m0:k0 ~m1:k1 ~choice:s.(i)
          in
          Xfer.add_b_to_a meter (Xfer.a_to_b sub);
          Xfer.add_a_to_b meter (Xfer.b_to_a sub);
          out
      | Simulation ->
          (* Ideal base-OT functionality; meter the bytes the real base OT
             would have moved (receiver key + two ciphertexts). *)
          let ebytes = Group.element_bytes grp in
          Xfer.add_a_to_b meter ebytes;
          Xfer.add_b_to_a meter (2 * (ebytes + seed_bytes));
          if s.(i) then k1 else k0
    in
    recv_cols0.(i) <- colgen_of_seed mode k0;
    recv_cols1.(i) <- colgen_of_seed mode k1;
    sender_cols.(i) <- colgen_of_seed mode chosen
  done;
  { mode; s; s_words = pack_bools_to_words s; sender_cols; recv_cols0; recv_cols1; index = 0 }

(* ------------------------------------------------------------------ *)
(* Row hashing                                                         *)
(* ------------------------------------------------------------------ *)

let pack_row row =
  let packed = Bytes.make (kappa / 8) '\x00' in
  Array.iteri
    (fun i b ->
      if b then
        Bytes.set packed (i / 8)
          (Char.chr (Char.code (Bytes.get packed (i / 8)) lor (1 lsl (i mod 8)))))
    row;
  packed

let sha_row_hash j row len =
  let tag = Bytes.of_string (Printf.sprintf "iknp:%d:" j) in
  Prg.bytes (Prg.create (Sha256.digest (Bytes.cat tag (pack_row row)))) len

(* SplitMix-style mixing of (j, row) for simulation mode. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let fast_seed_of_words j w =
  let acc = ref (mix (Int64.of_int j)) in
  Array.iter (fun wi -> acc := mix (Int64.logxor !acc wi)) w;
  !acc

let fast_row_seed j row = fast_seed_of_words j (pack_bools_to_words row)

let fast_row_hash j row len =
  let state = Prng.create (fast_row_seed j row) in
  Prng.bytes state len

(* 64x64 in-place bit transpose (Hacker's Delight 7-3): afterwards
   a.(c) bit r equals the original a.(r) bit c, LSB-first. *)
let transpose64 a =
  let j = ref 32 and m = ref 0x00000000FFFFFFFFL in
  while !j <> 0 do
    let k = ref 0 in
    while !k < 64 do
      let t =
        Int64.logand (Int64.logxor (Int64.shift_right_logical a.(!k) !j) a.(!k + !j)) !m
      in
      a.(!k + !j) <- Int64.logxor a.(!k + !j) t;
      a.(!k) <- Int64.logxor a.(!k) (Int64.shift_left t !j);
      k := (!k + !j + 1) land lnot !j
    done;
    j := !j lsr 1;
    m := Int64.logxor !m (Int64.shift_left !m !j)
  done

let row_hash mode j row len =
  match mode with Crypto -> sha_row_hash j row len | Simulation -> fast_row_hash j row len

(* ------------------------------------------------------------------ *)
(* Extension                                                           *)
(* ------------------------------------------------------------------ *)

(* Shared core: expand the column PRGs for a batch of m OTs and derive
   the sender's q-columns (q_i = t_i xor s_i * r), metering the u-matrix
   transfer. Columns are plain bool arrays: [.(i).(j)] is bit j of
   column i. *)
let run_matrix session meter choices =
  let m = Array.length choices in
  let expand g = Bitvec.to_bool_array (colgen_bits g m) in
  let t_cols = Array.map expand session.recv_cols0 in
  let w_cols = Array.map expand session.recv_cols1 in
  (* u_i = t_i xor w_i xor r is sent to the sender: kappa * m bits. *)
  Xfer.add_b_to_a meter (kappa * ((m + 7) / 8));
  let q_cols =
    Array.init kappa (fun i ->
        let own = expand session.sender_cols.(i) in
        if not session.s.(i) then own
        else
          Array.mapi
            (fun j o -> o <> t_cols.(i).(j) <> w_cols.(i).(j) <> choices.(j))
            own)
  in
  (t_cols, q_cols)

let row_of cols j = Array.init kappa (fun i -> cols.(i).(j))

let xor_bytes a b =
  Bytes.init (Bytes.length a) (fun i ->
      Char.chr (Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i)))

let extend session meter ~pairs ~choices =
  let m = Array.length pairs in
  if Array.length choices <> m then invalid_arg "Ot_ext.extend: length mismatch";
  if m = 0 then [||]
  else begin
    let len = Bytes.length (fst pairs.(0)) in
    Array.iter
      (fun (a, b) ->
        if Bytes.length a <> len || Bytes.length b <> len then
          invalid_arg "Ot_ext.extend: message length mismatch")
      pairs;
    let t_cols, q_cols = run_matrix session meter choices in
    let base = session.index in
    session.index <- session.index + m;
    let hash = row_hash session.mode in
    (* Sender masks both messages of each OT with row hashes. *)
    let masked =
      Array.init m (fun j ->
          let q = row_of q_cols j in
          let q_xor_s = Array.mapi (fun i b -> b <> session.s.(i)) q in
          let x0, x1 = pairs.(j) in
          (xor_bytes x0 (hash (base + j) q len), xor_bytes x1 (hash (base + j) q_xor_s len)))
    in
    Xfer.add_a_to_b meter (2 * m * len);
    (* Receiver unmasks the chosen message with its t-row. *)
    Array.init m (fun j ->
        let y0, y1 = masked.(j) in
        let y = if choices.(j) then y1 else y0 in
        xor_bytes y (hash (base + j) (row_of t_cols j) len))
  end

(* Word-level column expansion for the simulation fast path. *)
let fast_words g nwords =
  match g with
  | Fast_col prng -> Array.init nwords (fun _ -> Prng.next_int64 prng)
  | Sha_col _ -> assert false (* Simulation sessions only hold Fast_col *)

(* Transpose a kappa x (64*mwords) packed bit matrix into per-row words:
   result.(h).(j) holds bits of columns 64h..64h+63 at row j. *)
let transpose_columns cols ~mwords ~m =
  let halves = kappa / 64 in
  let rows = Array.init halves (fun _ -> Array.make m 0L) in
  let buf = Array.make 64 0L in
  for h = 0 to halves - 1 do
    for b = 0 to mwords - 1 do
      for r = 0 to 63 do
        buf.(r) <- cols.((64 * h) + r).(b)
      done;
      transpose64 buf;
      let limit = min 63 (m - (64 * b) - 1) in
      for c = 0 to limit do
        rows.(h).((64 * b) + c) <- buf.(c)
      done
    done
  done;
  rows

(* seed of (j, row words) — equivalent to fast_seed_of_words on the
   kappa/64 = 2 row words, without allocating. *)
let seed2 j w0 w1 = mix (Int64.logxor (mix (Int64.logxor (mix (Int64.of_int j)) w0)) w1)

let extend_bits_fast session meter ~pairs ~choices =
  let m = Array.length pairs in
  let mwords = (m + 63) / 64 in
  let cw = Array.make mwords 0L in
  Array.iteri
    (fun j c ->
      if c then cw.(j lsr 6) <- Int64.logor cw.(j lsr 6) (Int64.shift_left 1L (j land 63)))
    choices;
  let t_cols = Array.map (fun g -> fast_words g mwords) session.recv_cols0 in
  let w_cols = Array.map (fun g -> fast_words g mwords) session.recv_cols1 in
  Xfer.add_b_to_a meter (kappa * ((m + 7) / 8));
  let q_cols =
    Array.init kappa (fun i ->
        let own = fast_words session.sender_cols.(i) mwords in
        if not session.s.(i) then own
        else
          Array.init mwords (fun w ->
              Int64.logxor own.(w)
                (Int64.logxor t_cols.(i).(w) (Int64.logxor w_cols.(i).(w) cw.(w)))))
  in
  let q_rows = transpose_columns q_cols ~mwords ~m in
  let t_rows = transpose_columns t_cols ~mwords ~m in
  let base = session.index in
  session.index <- session.index + m;
  Xfer.add_a_to_b meter (2 * ((m + 7) / 8));
  let s0 = session.s_words.(0) and s1 = session.s_words.(1) in
  let bit_of seed = Int64.logand seed 1L = 1L in
  Array.init m (fun j ->
      let q0 = q_rows.(0).(j) and q1 = q_rows.(1).(j) in
      let x0, x1 = pairs.(j) in
      let y0 = x0 <> bit_of (seed2 (base + j) q0 q1) in
      let y1 = x1 <> bit_of (seed2 (base + j) (Int64.logxor q0 s0) (Int64.logxor q1 s1)) in
      (if choices.(j) then y1 else y0)
      <> bit_of (seed2 (base + j) t_rows.(0).(j) t_rows.(1).(j)))

let extend_bits session meter ~pairs ~choices =
  let m = Array.length pairs in
  if Array.length choices <> m then invalid_arg "Ot_ext.extend_bits: length mismatch";
  if m = 0 then [||]
  else
    match session.mode with
    | Simulation -> extend_bits_fast session meter ~pairs ~choices
    | Crypto ->
        let t_cols, q_cols = run_matrix session meter choices in
        let base = session.index in
        session.index <- session.index + m;
        (* Two packed bit vectors from sender to receiver. *)
        Xfer.add_a_to_b meter (2 * ((m + 7) / 8));
        let hash_bit j row = Char.code (Bytes.get (sha_row_hash j row 1) 0) land 1 = 1 in
        Array.init m (fun j ->
            let q = row_of q_cols j in
            let q_xor_s = Array.mapi (fun i b -> b <> session.s.(i)) q in
            let x0, x1 = pairs.(j) in
            let y0 = x0 <> hash_bit (base + j) q in
            let y1 = x1 <> hash_bit (base + j) q_xor_s in
            (if choices.(j) then y1 else y0) <> hash_bit (base + j) (row_of t_cols j))

(* Word-level extension for bitsliced GMW: entry [g] of [pairs]/[choices]
   carries the same logical OT for [width] independent instances, one per
   bit lane, so one call performs [width * Array.length pairs] bit OTs.

   In [Simulation] mode the receiver's output is computed directly as the
   ideal functionality [x0 xor (c land (x0 xor x1))] per lane: IKNP is
   correct — the receiver always ends up with exactly the chosen message,
   because the sender masks it with the hash of [q_j = t_j xor c_j * s],
   which is the hash of [t_j] when [c_j] selects it, i.e. the receiver's
   own unmask. Skipping the expand/transpose/hash machinery changes no
   observable output; the metered bytes and the OT counter advance exactly
   as the bit-level Simulation path would for the same batch. [Crypto]
   mode keeps the faithful construction: lanes are unpacked, run through
   {!extend_bits}, and repacked (which also meters identically). *)
let extend_words session meter ~width ~pairs ~choices =
  let m = Array.length pairs in
  if Array.length choices <> m then invalid_arg "Ot_ext.extend_words: length mismatch";
  if width < 1 || width > 64 then
    invalid_arg "Ot_ext.extend_words: width must be in [1, 64]";
  if m = 0 then [||]
  else begin
    let total = m * width in
    match session.mode with
    | Simulation ->
        let lane_mask =
          if width = 64 then -1L else Int64.sub (Int64.shift_left 1L width) 1L
        in
        Xfer.add_b_to_a meter (kappa * ((total + 7) / 8));
        Xfer.add_a_to_b meter (2 * ((total + 7) / 8));
        session.index <- session.index + total;
        Array.init m (fun g ->
            let x0, x1 = pairs.(g) in
            Int64.logand lane_mask
              (Int64.logxor x0 (Int64.logand choices.(g) (Int64.logxor x0 x1))))
    | Crypto ->
        let bit w l = Int64.logand (Int64.shift_right_logical w l) 1L = 1L in
        let bpairs =
          Array.init total (fun i ->
              let x0, x1 = pairs.(i / width) in
              let l = i mod width in
              (bit x0 l, bit x1 l))
        in
        let bchoices =
          Array.init total (fun i -> bit choices.(i / width) (i mod width))
        in
        let outs = extend_bits session meter ~pairs:bpairs ~choices:bchoices in
        Array.init m (fun g ->
            let w = ref 0L in
            for l = width - 1 downto 0 do
              w :=
                Int64.logor (Int64.shift_left !w 1)
                  (if outs.((g * width) + l) then 1L else 0L)
            done;
            !w)
  end

let ots_performed session = session.index

let copy_colgen = function
  | Sha_col prg -> Sha_col (Prg.copy prg)
  | Fast_col prng -> Fast_col (Prng.copy prng)

(* Deep snapshot: the column PRGs and the OT counter are the only mutable
   state, so copying them makes the two sessions fully independent while
   sharing the immutable correlation string. *)
let copy_session s =
  {
    mode = s.mode;
    s = s.s;
    s_words = s.s_words;
    sender_cols = Array.map copy_colgen s.sender_cols;
    recv_cols0 = Array.map copy_colgen s.recv_cols0;
    recv_cols1 = Array.map copy_colgen s.recv_cols1;
    index = s.index;
  }
