(** Classic ElGamal over a {!Group}: multiplicatively homomorphic
    encryption of group elements. The exponential variant used by the
    DStress transfer protocol lives in {!Exp_elgamal}; this module is the
    common base and is also used (in hashed-KEM form) by the oblivious
    transfer in {!Ot}. *)

type public_key = Group.elt
type secret_key = Group.exponent

type ciphertext = { c1 : Group.elt; c2 : Group.elt }

val keygen : Prg.t -> Group.t -> secret_key * public_key
(** [keygen prg grp] draws [x] uniform in [\[1, q)] and returns
    [(x, g^x)]. *)

val encrypt : Prg.t -> Group.t -> public_key -> Group.elt -> ciphertext
(** [encrypt prg grp h m] with a fresh ephemeral key [y]:
    [(g^y, m * h^y)]. The message must be a group element. *)

val decrypt : Group.t -> secret_key -> ciphertext -> Group.elt

val mul : Group.t -> ciphertext -> ciphertext -> ciphertext
(** Multiplicative homomorphism: decrypts to the product of plaintexts. *)

val rerandomize : Prg.t -> Group.t -> public_key -> ciphertext -> ciphertext
(** Multiplies in a fresh encryption of the identity: same plaintext,
    unlinkable ciphertext. *)

val rerandomize_many :
  Prg.t -> Group.t -> public_key -> ciphertext array -> ciphertext array
(** Block {!rerandomize} under one key. Ephemerals are drawn in ciphertext
    order, so with the same PRG state this returns exactly what a scalar
    {!rerandomize} loop would; the exponentiations are batched (fixed-base
    table for [g], one shared-base batch for [h]). *)

val decrypt_many : Group.t -> secret_key -> ciphertext array -> Group.elt array
(** Batch {!decrypt} under one key; the unblinding inverses are computed
    with one batch inversion. *)

val ciphertext_bytes : Group.t -> int
(** Wire size of one ciphertext (two group elements). *)

val ciphertext_equal : ciphertext -> ciphertext -> bool
